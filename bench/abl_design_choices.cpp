/// Ablation bench (beyond the paper's figures): isolates the design
/// choices DESIGN.md calls out — bounded look-ahead depth, the top-10%
/// candidate filter, locality-conscious processor selection, and
/// backfilling — on communication-heavy synthetic graphs.

#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "schedule/event_sim.hpp"
#include "schedulers/loc_mps.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "workloads/synthetic.hpp"

using namespace locmps;

namespace {

struct Variant {
  std::string name;
  LocMPSOptions opt;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("abl_design_choices", argc, argv);
  SyntheticParams p;
  p.ccr = 1.0;
  p.amax = 64.0;
  p.sigma = 1.0;
  const std::size_t P = bench::full_scale() ? 32 : 16;
  p.max_procs = P;
  const std::size_t n_graphs = std::min<std::size_t>(bench::suite_size(), 8);
  const auto graphs = make_synthetic_suite(p, n_graphs, 20060904);
  const Cluster cluster(P, p.bandwidth_Bps);
  const CommModel comm(cluster);

  std::vector<Variant> variants;
  auto add = [&](std::string name, auto&& mutate) {
    LocMPSOptions opt;
    mutate(opt);
    variants.push_back({std::move(name), opt});
  };
  add("baseline (depth=20, top10%, locality, backfill)", [](auto&) {});
  add("look-ahead depth 1 (greedy)",
      [](auto& o) { o.look_ahead_depth = 1; });
  add("look-ahead depth 5", [](auto& o) { o.look_ahead_depth = 5; });
  add("look-ahead depth 40", [](auto& o) { o.look_ahead_depth = 40; });
  add("greedy candidate (top 0%, max gain only)",
      [](auto& o) { o.candidate_top_fraction = 0.0; });
  add("candidate pool 50%",
      [](auto& o) { o.candidate_top_fraction = 0.5; });
  add("no locality in LoCBS",
      [](auto& o) { o.locbs.locality = false; });
  add("no backfill in LoCBS",
      [](auto& o) { o.locbs.backfill = false; });
  add("marks bind first step only (paper text)",
      [](auto& o) { o.marks_bind_lookahead = false; });

  std::cout << "Ablation of LoC-MPS design choices (" << n_graphs
            << " synthetic graphs, CCR=1, P=" << P << ")\n";
  std::cout << "mean relative makespan: baseline / variant "
               "(< 1: variant worse)\n\n";
  Table t({"variant", "rel.makespan", "mean sched(s)"});

  // Telemetry mirror: variants play the scheme role of a Comparison.
  Comparison c;
  for (const auto& v : variants) c.schemes.push_back(v.name);
  c.procs = {P};
  c.relative.assign(1, std::vector<double>(variants.size(), 0.0));
  c.makespan = c.relative;
  c.sched_seconds = c.relative;
  c.relative_samples.assign(
      1, std::vector<std::vector<double>>(variants.size()));
  c.makespan_samples = c.relative_samples;
  c.sched_samples = c.relative_samples;

  std::vector<double> base_makespans;
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    const Variant& v = variants[vi];
    const LocMPSScheduler sched(v.opt);
    std::vector<double> rel;
    std::vector<double> times;
    std::vector<double> mks;
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      Stopwatch sw;
      const SchedulerResult r = sched.schedule(graphs[gi], cluster);
      times.push_back(sw.seconds());
      const double mk =
          simulate_execution(graphs[gi], r.schedule, comm).makespan;
      mks.push_back(mk);
      if (v.name.rfind("baseline", 0) == 0) {
        base_makespans.push_back(mk);
        rel.push_back(1.0);
      } else {
        rel.push_back(base_makespans[gi] / mk);
      }
    }
    t.add_row({v.name, fmt(mean(rel), 3), fmt(mean(times), 3)});
    c.relative[0][vi] = mean(rel);
    c.makespan[0][vi] = mean(mks);
    c.sched_seconds[0][vi] = mean(times);
    c.relative_samples[0][vi] = std::move(rel);
    c.makespan_samples[0][vi] = std::move(mks);
    c.sched_samples[0][vi] = std::move(times);
  }
  t.print(std::cout);
  t.maybe_write_csv("abl_design_choices.csv");
  bench::telemetry().record("ablation", c, graphs);
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  return 0;
}
