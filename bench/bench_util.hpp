#pragma once
/// \file bench_util.hpp
/// Shared plumbing for the figure-reproduction harness.
///
/// Every fig* binary prints the series of one paper figure. Default sizes
/// are chosen to finish in minutes on a laptop; set LOCMPS_FULL=1 to run
/// the paper's full scale (30 graphs, up to 128 processors). Individual
/// knobs: LOCMPS_GRAPHS (suite size), LOCMPS_MAXP (largest processor
/// count), LOCMPS_CSV=1 (mirror each table to a CSV file next to the
/// binary).
///
/// Observability: every harness binary accepts `--obs-out <path>` (or the
/// LOCMPS_OBS_OUT environment variable). When set, the binary finishes by
/// running one instrumented LoC-MPS planning + execution pass and writes
///  * <path>             — the JSONL decision trace (docs/observability.md),
///  * <path>.trace.json  — a chrome trace whose "planner" track renders
///    the scheduler's phase timers and counter series next to the
///    schedule. Open either trace in https://ui.perfetto.dev.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/events.hpp"
#include "schedule/trace_export.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace locmps::bench {

inline bool full_scale() {
  const char* env = std::getenv("LOCMPS_FULL");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const long v = std::atol(env);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

/// Number of random graphs per configuration (paper: 30).
inline std::size_t suite_size() {
  return env_size("LOCMPS_GRAPHS", full_scale() ? 30 : 6);
}

/// Processor-count sweep (paper: up to 128). The sweep must reach the
/// task-scalability limit (Amax <= 64) for the figures to show the paper's
/// DATA crossover, so even the quick pass goes to 128.
inline std::vector<std::size_t> proc_sweep() {
  const std::size_t maxp = env_size("LOCMPS_MAXP", 128);
  std::vector<std::size_t> ps;
  for (std::size_t p = 4; p <= maxp; p *= 2) ps.push_back(p);
  return ps;
}

inline void banner(const std::string& what) {
  std::cout << "\n=== " << what << " ===\n";
  std::cout << "(relative performance = makespan(LoC-MPS) / makespan(scheme);"
               " < 1 means worse than LoC-MPS)\n";
}

/// Destination of the `--obs-out` decision trace; disabled when empty.
struct ObsOut {
  std::string path;
  bool enabled() const { return !path.empty(); }
};

/// Parses `--obs-out <path>` / `--obs-out=<path>` from argv, falling back
/// to the LOCMPS_OBS_OUT environment variable. Unknown arguments are
/// ignored (the harness binaries take no other flags).
inline ObsOut parse_obs(int argc, char** argv) {
  ObsOut out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--obs-out" && i + 1 < argc) {
      out.path = argv[i + 1];
      return out;
    }
    if (arg.rfind("--obs-out=", 0) == 0) {
      out.path = arg.substr(10);
      return out;
    }
  }
  if (const char* env = std::getenv("LOCMPS_OBS_OUT"))
    if (*env != '\0') out.path = env;
  return out;
}

/// Runs one instrumented pass of \p scheme on \p g / \p cluster and
/// writes the JSONL decision trace plus the planner+schedule chrome
/// trace (see the file header). No-op when \p obs is disabled.
inline void dump_obs_run(const ObsOut& obs, const TaskGraph& g,
                         const Cluster& cluster,
                         const std::string& scheme = "loc-mps") {
  if (!obs.enabled()) return;
  std::ofstream jsonl(obs.path);
  if (!jsonl) {
    std::cerr << "obs: cannot open " << obs.path << " for writing\n";
    return;
  }
  obs::JsonlSink sink(jsonl);
  const SchemeRun run = evaluate_scheme(scheme, g, cluster, {}, &sink);

  const std::string trace_path = obs.path + ".trace.json";
  std::ofstream trace(trace_path);
  write_chrome_trace(trace, g, run.schedule, &run.counters);
  std::cout << "\nobs: " << scheme << " decision trace -> " << obs.path
            << " (makespan " << fmt(run.makespan) << "s, "
            << run.iterations << " LoCBS calls)\n"
            << "obs: planner+schedule chrome trace -> " << trace_path
            << " (open in https://ui.perfetto.dev)\n";
}

/// dump_obs_run on a default representative workload (a mid-size
/// synthetic DAG on 32 processors), for binaries whose graph suites are
/// built internally.
inline void maybe_dump_obs(const ObsOut& obs) {
  if (!obs.enabled()) return;
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 32;
  Rng rng(20060901);
  const TaskGraph g = make_synthetic_dag(p, rng);
  dump_obs_run(obs, g, Cluster(32, p.bandwidth_Bps));
}

}  // namespace locmps::bench
