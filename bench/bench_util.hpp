#pragma once
/// \file bench_util.hpp
/// Shared plumbing for the figure-reproduction harness.
///
/// Every fig* binary prints the series of one paper figure. Default sizes
/// are chosen to finish in minutes on a laptop; set LOCMPS_FULL=1 to run
/// the paper's full scale (30 graphs, up to 128 processors). Individual
/// knobs: LOCMPS_GRAPHS (suite size), LOCMPS_MAXP (largest processor
/// count), LOCMPS_CSV=1 (mirror each table to a CSV file next to the
/// binary).
///
/// Observability: every harness binary accepts `--obs-out <path>` (or the
/// LOCMPS_OBS_OUT environment variable). When set, the binary finishes by
/// running one instrumented LoC-MPS planning + execution pass and writes
///  * <path>             — the JSONL decision trace (docs/observability.md),
///  * <path>.trace.json  — a chrome trace whose "planner" track renders
///    the scheduler's phase timers and counter series next to the
///    schedule. Open either trace in https://ui.perfetto.dev.
/// `--report-out <path>` (LOCMPS_REPORT_OUT) additionally renders that
/// run's post-mortem as a self-contained HTML report (obs/report.hpp);
/// both flags share the single instrumented pass.
///
/// Telemetry: `--bench-out <path>` (LOCMPS_BENCH_OUT; the value `1` means
/// `BENCH_<name>.json` next to the cwd) makes the binary emit a
/// machine-readable summary of every recorded Comparison — per-scheme
/// makespan / relative-performance / SLR statistics with medians and
/// distribution-free (order-statistic) confidence intervals, scheduling
/// times, the git SHA and a UTC timestamp. scripts/bench_diff.py compares
/// two such files and flags regressions.

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "obs/log.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "schedule/metrics.hpp"
#include "schedule/trace_export.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workloads/synthetic.hpp"

#ifndef LOCMPS_GIT_SHA
#define LOCMPS_GIT_SHA "unknown"
#endif

namespace locmps::bench {

inline bool full_scale() {
  const char* env = std::getenv("LOCMPS_FULL");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const long v = std::atol(env);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

/// Number of random graphs per configuration (paper: 30).
inline std::size_t suite_size() {
  return env_size("LOCMPS_GRAPHS", full_scale() ? 30 : 6);
}

/// Timed planning repetitions per (graph, scheme, procs) cell
/// (LOCMPS_SCHED_REPS). Panels whose sched_seconds medians are ratcheted
/// by scripts/bench_diff.py need n >= 5 samples for the order-statistic
/// CIs to exist; planning is deterministic, so extra reps change no
/// result (core/experiment.hpp).
inline std::size_t sched_reps() { return env_size("LOCMPS_SCHED_REPS", 5); }

/// Processor-count sweep (paper: up to 128). The sweep must reach the
/// task-scalability limit (Amax <= 64) for the figures to show the paper's
/// DATA crossover, so even the quick pass goes to 128.
inline std::vector<std::size_t> proc_sweep() {
  const std::size_t maxp = env_size("LOCMPS_MAXP", 128);
  std::vector<std::size_t> ps;
  for (std::size_t p = 4; p <= maxp; p *= 2) ps.push_back(p);
  return ps;
}

/// Speculative-probe thread counts to sweep: `--threads <csv>` /
/// `--threads=<csv>` (e.g. `--threads 1,2,4,8`), falling back to the
/// LOCMPS_BENCH_THREADS environment variable, then to \p fallback. The
/// sweep feeds SchedulerOptions::threads, which changes only planning
/// wall-clock — every count yields bit-identical schedules
/// (docs/parallelism.md), so the swept panels stay diffable.
inline std::vector<std::size_t> thread_sweep(
    int argc, char** argv, std::vector<std::size_t> fallback = {1, 4}) {
  std::string spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc)
      spec = argv[++i];
    else if (arg.rfind("--threads=", 0) == 0)
      spec = arg.substr(10);
  }
  if (spec.empty())
    if (const char* env = std::getenv("LOCMPS_BENCH_THREADS"))
      if (*env != '\0') spec = env;
  if (spec.empty()) return fallback;
  std::vector<std::size_t> counts;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const long v = std::atol(spec.substr(pos, comma - pos).c_str());
    if (v > 0) counts.push_back(static_cast<std::size_t>(v));
    pos = comma + 1;
  }
  return counts.empty() ? fallback : counts;
}

inline void banner(const std::string& what) {
  std::cout << "\n=== " << what << " ===\n";
  std::cout << "(relative performance = makespan(LoC-MPS) / makespan(scheme);"
               " < 1 means worse than LoC-MPS)\n";
}

/// Destinations of the `--obs-out` decision trace and the `--report-out`
/// HTML post-mortem; each is disabled when empty.
struct ObsOut {
  std::string path;    ///< JSONL decision trace (+ chrome trace)
  std::string report;  ///< self-contained HTML report
  bool enabled() const { return !path.empty() || !report.empty(); }
};

/// Parses `--obs-out <path>` / `--obs-out=<path>` and `--report-out
/// <path>` / `--report-out=<path>` from argv, falling back to the
/// LOCMPS_OBS_OUT / LOCMPS_REPORT_OUT environment variables. Also
/// applies `--log-level <l>` / `--log-level=<l>` (every bench binary
/// parses its argv through here, so the logger flag works uniformly;
/// the LOCMPS_LOG environment variable is the fallback — obs/log.hpp).
/// Unknown arguments are ignored.
inline ObsOut parse_obs(int argc, char** argv) {
  ObsOut out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string level_spec;
    if (arg == "--obs-out" && i + 1 < argc)
      out.path = argv[++i];
    else if (arg.rfind("--obs-out=", 0) == 0)
      out.path = arg.substr(10);
    else if (arg == "--report-out" && i + 1 < argc)
      out.report = argv[++i];
    else if (arg.rfind("--report-out=", 0) == 0)
      out.report = arg.substr(13);
    else if (arg == "--log-level" && i + 1 < argc)
      level_spec = argv[++i];
    else if (arg.rfind("--log-level=", 0) == 0)
      level_spec = arg.substr(12);
    if (!level_spec.empty()) {
      obs::LogLevel level = obs::LogLevel::kInfo;
      if (obs::parse_log_level(level_spec, level))
        obs::set_log_level(level);
      else
        obs::log(obs::LogLevel::kWarn, "bench")
            << "ignoring unknown --log-level '" << level_spec << "'";
    }
  }
  if (out.path.empty())
    if (const char* env = std::getenv("LOCMPS_OBS_OUT"))
      if (*env != '\0') out.path = env;
  if (out.report.empty())
    if (const char* env = std::getenv("LOCMPS_REPORT_OUT"))
      if (*env != '\0') out.report = env;
  return out;
}

/// Runs one instrumented pass of \p scheme on \p g / \p cluster and
/// writes whatever \p obs asks for: the JSONL decision trace plus the
/// planner+schedule chrome trace, and/or the HTML post-mortem report.
/// When the trace is written it is also read back and joined into the
/// report's analysis (backfill attribution). No-op when \p obs is
/// disabled.
inline void dump_obs_run(const ObsOut& obs, const TaskGraph& g,
                         const Cluster& cluster,
                         const std::string& scheme = "loc-mps") {
  if (!obs.enabled()) return;
  obs::Profiler profiler;
  SchemeRun run;
  if (!obs.path.empty()) {
    std::ofstream jsonl(obs.path);
    if (!jsonl) {
      obs::log(obs::LogLevel::kError, "obs")
          << "cannot open " << obs.path << " for writing";
      return;
    }
    obs::JsonlSink sink(jsonl);
    run = evaluate_scheme(scheme, g, cluster, {}, &sink, {}, &profiler);
  } else {
    run = evaluate_scheme(scheme, g, cluster, {}, nullptr, {}, &profiler);
  }
  const obs::ProfileSnapshot prof = profiler.snapshot();

  if (!obs.path.empty()) {
    std::ifstream back(obs.path);
    if (back) {
      const auto records = obs::read_trace(back);
      obs::join_trace(run.analysis,
                      obs::summarize_trace(records, run.analysis.num_tasks));
    }
    const std::string trace_path = obs.path + ".trace.json";
    std::ofstream trace(trace_path);
    write_chrome_trace(trace, g, run.schedule, &run.counters, &prof);
    std::cout << "\nobs: " << scheme << " decision trace -> " << obs.path
              << " (makespan " << fmt(run.makespan) << "s, "
              << run.iterations << " LoCBS calls)\n"
              << "obs: planner+schedule chrome trace -> " << trace_path
              << " (open in https://ui.perfetto.dev)\n";
  }
  if (!obs.report.empty()) {
    std::ofstream html(obs.report);
    if (!html) {
      obs::log(obs::LogLevel::kError, "obs")
          << "cannot open " << obs.report << " for writing";
      return;
    }
    obs::ReportOptions ropt;
    ropt.title = scheme + " schedule on " +
                 std::to_string(cluster.processors) + " processors";
    ropt.subtitle = std::to_string(g.num_tasks()) + " tasks, " +
                    std::to_string(g.num_edges()) + " edges";
    ropt.profile = &prof;
    obs::write_html_report(html, g, run.schedule, run.analysis, ropt);
    std::cout << "obs: HTML post-mortem report -> " << obs.report << "\n";
  }
}

/// dump_obs_run on a default representative workload (a mid-size
/// synthetic DAG on 32 processors), for binaries whose graph suites are
/// built internally.
inline void maybe_dump_obs(const ObsOut& obs) {
  if (!obs.enabled()) return;
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 32;
  Rng rng(20060901);
  const TaskGraph g = make_synthetic_dag(p, rng);
  dump_obs_run(obs, g, Cluster(32, p.bandwidth_Bps));
}

// ---------------------------------------------------------------------------
// Machine-readable benchmark telemetry (BENCH_<name>.json).

/// Accumulates every Comparison a bench binary produces, then serializes
/// them with median + order-statistic-CI statistics. One per process
/// (telemetry()); panels record into it without signature changes.
class BenchTelemetry {
 public:
  struct Panel {
    std::string label;
    Comparison c;
    /// slr[pi][si][gi]: makespan / max(CP, area) lower bound — empty when
    /// the recording site did not pass its graph suite.
    std::vector<std::vector<std::vector<double>>> slr;
  };

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  const std::string& name() const { return name_; }

  /// Parses --bench-out <path> / --bench-out=<path>, falling back to
  /// LOCMPS_BENCH_OUT (the value "1" selects ./BENCH_<name>.json).
  void init(const std::string& bench_name, int argc, char** argv) {
    name_ = bench_name;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--bench-out" && i + 1 < argc)
        path_ = argv[++i];
      else if (arg.rfind("--bench-out=", 0) == 0)
        path_ = arg.substr(12);
    }
    if (path_.empty())
      if (const char* env = std::getenv("LOCMPS_BENCH_OUT"))
        if (*env != '\0') path_ = env;
    if (path_ == "1") path_ = "BENCH_" + name_ + ".json";
  }

  /// Records one Comparison under \p label. Pass the graph suite it was
  /// computed from to additionally get SLR (makespan / lower bound)
  /// statistics; omit it when the suite is out of scope at the call site.
  void record(const std::string& label, const Comparison& c,
              std::span<const TaskGraph> graphs = {}) {
    if (!enabled()) return;
    Panel p;
    p.label = label;
    p.c = c;
    if (!graphs.empty()) {
      p.slr.assign(c.procs.size(),
                   std::vector<std::vector<double>>(c.schemes.size()));
      for (std::size_t pi = 0; pi < c.procs.size(); ++pi) {
        std::vector<double> lb(graphs.size());
        for (std::size_t gi = 0; gi < graphs.size(); ++gi)
          lb[gi] = std::max(
              critical_path_lower_bound(graphs[gi], c.procs[pi]),
              area_lower_bound(graphs[gi], c.procs[pi]));
        for (std::size_t si = 0; si < c.schemes.size(); ++si) {
          const auto& ms = c.makespan_samples[pi][si];
          if (ms.size() != graphs.size()) continue;
          std::vector<double> slr(ms.size());
          for (std::size_t gi = 0; gi < ms.size(); ++gi)
            slr[gi] = lb[gi] > 0.0 ? ms[gi] / lb[gi] : 0.0;
          p.slr[pi][si] = std::move(slr);
        }
      }
    }
    panels_.push_back(std::move(p));
  }

  /// Writes the JSON file (schema: docs/observability.md) and prints the
  /// destination. No-op when disabled or nothing was recorded.
  void write() const;

 private:
  std::string name_;
  std::string path_;
  std::vector<Panel> panels_;
};

/// The process-wide telemetry accumulator.
inline BenchTelemetry& telemetry() {
  static BenchTelemetry t;
  return t;
}

/// Convenience wrappers mirroring parse_obs / maybe_dump_obs.
inline void init_telemetry(const std::string& bench_name, int argc,
                           char** argv) {
  telemetry().init(bench_name, argc, argv);
}

inline void write_telemetry() { telemetry().write(); }

namespace detail {

inline std::string iso_utc_now() {
  // Telemetry metadata timestamp, never a scheduling input: the harness
  // stamps when a BENCH_*.json was produced. LINT-ALLOW(nondet-source)
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// {"mean":..,"median":..,"ci_lo":..,"ci_hi":..,"ci_coverage":..,"n":..}
/// — the CI is the distribution-free order-statistic interval of the
/// median (util/stats.hpp).
inline void write_stat(std::ostream& os, std::span<const double> xs) {
  const MedianCI ci = median_ci(xs);
  os << "{\"mean\":" << mean(xs) << ",\"median\":" << ci.median
     << ",\"ci_lo\":" << ci.lo << ",\"ci_hi\":" << ci.hi
     << ",\"ci_coverage\":" << ci.coverage << ",\"n\":" << xs.size() << "}";
}

}  // namespace detail

inline void BenchTelemetry::write() const {
  if (!enabled()) return;
  std::ofstream os(path_);
  if (!os) {
    obs::log(obs::LogLevel::kError, "bench")
        << "cannot open " << path_ << " for writing";
    return;
  }
  // Process-level resource footprint of the whole bench run. Peak RSS is
  // always available (getrusage); allocation totals are live only in
  // LOCMPS_PROFILE builds — alloc_tracking says which.
  const obs::AllocCounters alloc = obs::process_alloc_totals();
  os.precision(17);
  os << "{\n"
     << "  \"bench\": \"" << name_ << "\",\n"
     << "  \"git_sha\": \"" << LOCMPS_GIT_SHA << "\",\n"
     << "  \"timestamp\": \"" << detail::iso_utc_now() << "\",\n"
     << "  \"graphs\": " << suite_size() << ",\n"
     << "  \"full_scale\": " << (full_scale() ? "true" : "false") << ",\n"
     << "  \"peak_rss_bytes\": " << obs::peak_rss_bytes() << ",\n"
     << "  \"alloc_tracking\": "
     << (obs::alloc_counting_enabled() ? "true" : "false") << ",\n"
     << "  \"alloc_bytes\": " << alloc.bytes << ",\n"
     << "  \"allocs\": " << alloc.count << ",\n"
     << "  \"panels\": [";
  for (std::size_t bi = 0; bi < panels_.size(); ++bi) {
    const Panel& p = panels_[bi];
    os << (bi ? ",\n" : "\n") << "    {\"label\": \"" << p.label
       << "\", \"results\": [";
    bool first = true;
    for (std::size_t pi = 0; pi < p.c.procs.size(); ++pi) {
      for (std::size_t si = 0; si < p.c.schemes.size(); ++si) {
        os << (first ? "\n" : ",\n") << "      {\"scheme\": \""
           << p.c.schemes[si] << "\", \"procs\": " << p.c.procs[pi]
           << ", \"makespan\": ";
        detail::write_stat(os, p.c.makespan_samples[pi][si]);
        os << ", \"relative\": ";
        detail::write_stat(os, p.c.relative_samples[pi][si]);
        os << ", \"sched_seconds\": ";
        detail::write_stat(os, p.c.sched_samples[pi][si]);
        if (!p.slr.empty() && !p.slr[pi][si].empty()) {
          os << ", \"slr\": ";
          detail::write_stat(os, p.slr[pi][si]);
        }
        os << "}";
        first = false;
      }
    }
    os << "\n    ]}";
  }
  os << "\n  ]\n}\n";
  std::cout << "\nbench: telemetry -> " << path_ << " (" << panels_.size()
            << " panel(s), git " << LOCMPS_GIT_SHA << ")\n";
}

// ---------------------------------------------------------------------------
// Phase-budget profiles (BENCH_<name>_profile.json).
//
// `--profile-out <path>` (LOCMPS_PROFILE_OUT; the value `1` means
// `BENCH_<name>_profile.json`) makes the binary finish by running a few
// self-profiled planning+execution reps of one representative workload
// and writing per-span-path wall/CPU medians with order-statistic CIs
// plus exact (deterministic) count/allocation columns. The file is the
// "phases" document scripts/bench_diff.py diffs against a committed
// baseline — the phase-budget ratchet of docs/observability.md.

/// Destination and repetition count of the phase-budget profile dump.
struct ProfileOut {
  std::string path;      ///< profile JSON; empty = disabled
  std::size_t reps = 5;  ///< self-profiled reps behind the medians
  bool enabled() const { return !path.empty(); }
};

/// Parses `--profile-out <path>` / `--profile-out=<path>` and
/// `--profile-reps <n>`, falling back to LOCMPS_PROFILE_OUT /
/// LOCMPS_PROFILE_REPS. Unknown arguments are ignored.
inline ProfileOut parse_profile_out(const std::string& bench_name, int argc,
                                    char** argv) {
  ProfileOut out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile-out" && i + 1 < argc)
      out.path = argv[++i];
    else if (arg.rfind("--profile-out=", 0) == 0)
      out.path = arg.substr(14);
    else if (arg == "--profile-reps" && i + 1 < argc)
      out.reps =
          static_cast<std::size_t>(std::max(1L, std::atol(argv[++i])));
    else if (arg.rfind("--profile-reps=", 0) == 0)
      out.reps = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.substr(15).c_str())));
  }
  if (out.path.empty())
    if (const char* env = std::getenv("LOCMPS_PROFILE_OUT"))
      if (*env != '\0') out.path = env;
  if (out.path == "1") out.path = "BENCH_" + bench_name + "_profile.json";
  out.reps = env_size("LOCMPS_PROFILE_REPS", out.reps);
  return out;
}

namespace detail {

/// Per-span-path samples across self-profiled reps. count/alloc columns
/// come from the first rep and are cross-checked against later reps:
/// they are deterministic (docs/parallelism.md), so a mismatch is a bug
/// worth a warning, not an averaged-away detail.
struct ProfilePhase {
  std::uint64_t count = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t allocs = 0;
  std::vector<double> wall_s;
  std::vector<double> cpu_s;
};

inline void collect_phases(const obs::ProfileNode& node,
                           const std::string& prefix,
                           std::vector<std::string>& order,
                           std::map<std::string, ProfilePhase>& phases) {
  for (const obs::ProfileNode& c : node.children) {
    const std::string path = prefix.empty() ? c.name : prefix + ";" + c.name;
    auto [it, inserted] = phases.try_emplace(path);
    ProfilePhase& ph = it->second;
    if (inserted) {
      order.push_back(path);
      ph.count = c.count;
      ph.alloc_bytes = c.alloc_bytes;
      ph.allocs = c.allocs;
    } else if (ph.count != c.count) {
      obs::log(obs::LogLevel::kWarn, "bench")
          << "span " << path << " count varies across reps (" << ph.count
          << " vs " << c.count << ") — determinism bug?";
    }
    ph.wall_s.push_back(c.wall_s);
    ph.cpu_s.push_back(c.cpu_s);
    collect_phases(c, path, order, phases);
  }
}

}  // namespace detail

/// Runs \p po.reps self-profiled passes of \p scheme on \p g / \p cluster
/// and writes the phase-budget profile JSON. No-op when disabled.
inline void dump_profile_run(const ProfileOut& po,
                             const std::string& bench_name,
                             const TaskGraph& g, const Cluster& cluster,
                             const std::string& scheme = "loc-mps") {
  if (!po.enabled()) return;
  std::vector<std::string> order;
  std::map<std::string, detail::ProfilePhase> phases;
  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, po.reps); ++rep) {
    obs::Profiler profiler;
    evaluate_scheme(scheme, g, cluster, {}, nullptr, {}, &profiler);
    const obs::ProfileSnapshot snap = profiler.snapshot();
    detail::collect_phases(snap.root, "", order, phases);
  }
  std::ofstream os(po.path);
  if (!os) {
    obs::log(obs::LogLevel::kError, "bench")
        << "cannot open " << po.path << " for writing";
    return;
  }
  os.precision(17);
  os << "{\n"
     << "  \"bench\": \"" << bench_name << "\",\n"
     << "  \"kind\": \"profile\",\n"
     << "  \"git_sha\": \"" << LOCMPS_GIT_SHA << "\",\n"
     << "  \"timestamp\": \"" << detail::iso_utc_now() << "\",\n"
     << "  \"scheme\": \"" << scheme << "\",\n"
     << "  \"reps\": " << std::max<std::size_t>(1, po.reps) << ",\n"
     << "  \"tasks\": " << g.num_tasks() << ",\n"
     << "  \"procs\": " << cluster.processors << ",\n"
     << "  \"alloc_tracking\": "
     << (obs::alloc_counting_enabled() ? "true" : "false") << ",\n"
     << "  \"phases\": [";
  for (std::size_t i = 0; i < order.size(); ++i) {
    const detail::ProfilePhase& ph = phases.at(order[i]);
    os << (i ? ",\n" : "\n") << "    {\"path\": \"" << order[i]
       << "\", \"count\": " << ph.count << ", \"wall_s\": ";
    detail::write_stat(os, ph.wall_s);
    os << ", \"cpu_s\": ";
    detail::write_stat(os, ph.cpu_s);
    os << ", \"alloc_bytes\": " << ph.alloc_bytes
       << ", \"allocs\": " << ph.allocs << "}";
  }
  os << "\n  ]\n}\n";
  std::cout << "\nbench: phase-budget profile -> " << po.path << " ("
            << order.size() << " span path(s), "
            << std::max<std::size_t>(1, po.reps) << " rep(s))\n";
}

/// dump_profile_run on the same default representative workload as
/// maybe_dump_obs (mid-size synthetic DAG, 32 processors).
inline void maybe_dump_profile(const ProfileOut& po,
                               const std::string& bench_name) {
  if (!po.enabled()) return;
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 32;
  Rng rng(20060901);
  const TaskGraph g = make_synthetic_dag(p, rng);
  dump_profile_run(po, bench_name, g, Cluster(32, p.bandwidth_Bps));
}

}  // namespace locmps::bench
