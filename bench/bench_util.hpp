#pragma once
/// \file bench_util.hpp
/// Shared plumbing for the figure-reproduction harness.
///
/// Every fig* binary prints the series of one paper figure. Default sizes
/// are chosen to finish in minutes on a laptop; set LOCMPS_FULL=1 to run
/// the paper's full scale (30 graphs, up to 128 processors). Individual
/// knobs: LOCMPS_GRAPHS (suite size), LOCMPS_MAXP (largest processor
/// count), LOCMPS_CSV=1 (mirror each table to a CSV file next to the
/// binary).

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

namespace locmps::bench {

inline bool full_scale() {
  const char* env = std::getenv("LOCMPS_FULL");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const long v = std::atol(env);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

/// Number of random graphs per configuration (paper: 30).
inline std::size_t suite_size() {
  return env_size("LOCMPS_GRAPHS", full_scale() ? 30 : 6);
}

/// Processor-count sweep (paper: up to 128). The sweep must reach the
/// task-scalability limit (Amax <= 64) for the figures to show the paper's
/// DATA crossover, so even the quick pass goes to 128.
inline std::vector<std::size_t> proc_sweep() {
  const std::size_t maxp = env_size("LOCMPS_MAXP", 128);
  std::vector<std::size_t> ps;
  for (std::size_t p = 4; p <= maxp; p *= 2) ps.push_back(p);
  return ps;
}

inline void banner(const std::string& what) {
  std::cout << "\n=== " << what << " ===\n";
  std::cout << "(relative performance = makespan(LoC-MPS) / makespan(scheme);"
               " < 1 means worse than LoC-MPS)\n";
}

}  // namespace locmps::bench
