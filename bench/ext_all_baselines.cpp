/// Extension bench: the full baseline family. The paper cites that CPR
/// and CPA were shown superior to the older two-step schemes (TSAS, ref
/// [3]) and layer-based scheduling (TwoL, ref [7]) and therefore compares
/// only against them; this bench closes the loop by running the whole
/// lineage on the same workloads.

#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "workloads/synthetic.hpp"

using namespace locmps;

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("ext_all_baselines", argc, argv);
  SyntheticParams p;
  p.ccr = 0.5;
  p.amax = 64.0;
  p.sigma = 1.0;
  const std::vector<std::size_t> procs{4, 8, 16, 32};
  p.max_procs = procs.back();
  const std::size_t n_graphs = std::min<std::size_t>(bench::suite_size(), 8);
  const auto graphs = make_synthetic_suite(p, n_graphs, 20060907);

  const std::vector<std::string> schemes{
      "loc-mps", "cpr", "cpa", "tsas", "twol", "task", "data"};
  std::cout << "Extension: the full baseline lineage (" << n_graphs
            << " synthetic graphs, CCR=0.5, Amax=64, sigma=1)\n";
  bench::banner("relative performance of every generation of schemes");
  const Comparison c =
      compare_schemes(graphs, schemes, procs, p.bandwidth_Bps);
  Table t = relative_performance_table(c);
  t.print(std::cout);
  t.maybe_write_csv("ext_all_baselines.csv");

  std::cout << "\nmean scheduling time (seconds):\n";
  Table times = scheduling_time_table(c);
  times.print(std::cout);
  bench::telemetry().record("ext_all_baselines", c, graphs);
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  return 0;
}
