/// Extension bench: DAG-shape sensitivity. The paper evaluates random
/// TGFF-style graphs; here the canonical structured families (fork-join,
/// pipeline, dense layers, series-parallel) isolate how the schemes react
/// to structure. Pipelines have no task parallelism (DATA-like schedules
/// win); dense layers maximize redistribution pressure (locality wins);
/// fork-join sits in between.

#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "schedulers/registry.hpp"
#include "workloads/structured.hpp"

using namespace locmps;

namespace {

void family(const char* name, std::vector<TaskGraph> graphs,
            const std::vector<std::string>& schemes, Table& t,
            std::size_t P) {
  const Cluster cluster(P, kFastEthernetBytesPerSec);
  Comparison c;
  c.schemes = schemes;
  c.procs = {P};
  c.relative.assign(1, std::vector<double>(schemes.size(), 0.0));
  c.makespan = c.relative;
  c.sched_seconds = c.relative;
  c.relative_samples.assign(
      1, std::vector<std::vector<double>>(
             schemes.size(), std::vector<double>(graphs.size())));
  c.makespan_samples = c.relative_samples;
  c.sched_samples = c.relative_samples;
  std::vector<double> sums(schemes.size(), 0.0);
  for (std::size_t gi = 0; gi < graphs.size(); ++gi)
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      const SchemeRun run = evaluate_scheme(schemes[si], graphs[gi], cluster);
      sums[si] += run.makespan;
      c.makespan_samples[0][si][gi] = run.makespan;
      c.sched_samples[0][si][gi] = run.scheduling_seconds;
    }
  for (std::size_t si = 0; si < schemes.size(); ++si) {
    for (std::size_t gi = 0; gi < graphs.size(); ++gi)
      c.relative_samples[0][si][gi] =
          c.makespan_samples[0][0][gi] / c.makespan_samples[0][si][gi];
    c.relative[0][si] = mean(c.relative_samples[0][si]);
    c.makespan[0][si] = mean(c.makespan_samples[0][si]);
    c.sched_seconds[0][si] = mean(c.sched_samples[0][si]);
  }
  bench::telemetry().record(name, c, graphs);
  std::vector<std::string> row{name};
  for (std::size_t si = 0; si < schemes.size(); ++si)
    row.push_back(fmt(sums[0] / sums[si], 3));
  t.add_row(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("ext_dag_shapes", argc, argv);
  const std::size_t P = 16;
  StructuredParams p;
  p.max_procs = P;
  p.ccr = 0.5;
  const std::vector<std::string> schemes{"loc-mps", "icaslb", "cpr",
                                         "cpa",     "task",   "data"};
  std::cout << "Extension: DAG-shape sensitivity (P=" << P
            << ", CCR=0.5, Amax=64)\n"
            << "relative performance per family "
               "(makespan(loc-mps)/makespan(scheme))\n\n";

  std::vector<std::string> header{"family"};
  for (const auto& s : schemes) header.push_back(s);
  Table t(header);

  Rng rng(20060906);
  auto suite = [&](auto&& make) {
    std::vector<TaskGraph> graphs;
    for (int i = 0; i < 4; ++i) {
      Rng child = rng.split(i + 1);
      graphs.push_back(make(child));
    }
    return graphs;
  };

  family("fork-join 4x6",
         suite([&](Rng& r) { return make_fork_join(4, 6, p, r); }), schemes,
         t, P);
  family("pipeline 24",
         suite([&](Rng& r) { return make_pipeline(24, p, r); }), schemes, t,
         P);
  family("layered 5x5",
         suite([&](Rng& r) { return make_layered(5, 5, p, r); }), schemes, t,
         P);
  family("series-parallel 28",
         suite([&](Rng& r) { return make_series_parallel(28, p, r); }),
         schemes, t, P);

  t.print(std::cout);
  t.maybe_write_csv("ext_dag_shapes.csv");
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  return 0;
}
