/// Extension bench (robustness): fault-tolerant execution. Each run plans
/// with LoC-MPS, executes under a seeded fail-stop FaultPlan, and recovers
/// with one of the two policies of src/faults/recovery.hpp — degraded-
/// cluster replanning (mask failed processors, freeze committed work,
/// re-run LoC-MPS on the survivors) vs retry-in-place (wait for the repair
/// and restart with exponential backoff). Both policies face the exact
/// same failures (same FaultPlan per seed), so the realized-makespan
/// comparison is paired. Repairs are slow (half the fault-free makespan),
/// which is what makes the policy choice interesting: waiting is cheap at
/// low failure rates and ruinous at high ones.

#include <iostream>

#include "bench_util.hpp"
#include "faults/recovery.hpp"
#include "schedulers/loc_mps.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

using namespace locmps;

namespace {

void sweep(const char* label, const TaskGraph& g, const Cluster& cluster,
           Table& t) {
  const double base = LocMPSScheduler().schedule(g, cluster).estimated_makespan;
  for (const double rate : {0.1, 0.25, 0.4}) {
    std::vector<double> rep, ret;
    double masked = 0.0, retries = 0.0;
    std::size_t giveups = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      FaultPlanParams prm;
      prm.fail_fraction = rate;
      prm.horizon_s = 0.6 * base;
      prm.repairs = true;
      prm.repair_delay_s = 0.5 * base;
      prm.seed = seed * 7919;
      const FaultPlan plan = make_fault_plan(cluster.processors, prm);

      RecoveryOptions a;
      a.policy = RecoveryPolicy::kDegradedReplan;
      const RecoveryResult replan = run_with_faults(g, cluster, plan, a);
      RecoveryOptions b;
      b.policy = RecoveryPolicy::kRetryInPlace;
      const RecoveryResult retry = run_with_faults(g, cluster, plan, b);
      if (!replan.completed || !retry.completed) {
        ++giveups;  // drop the seed from the paired stats
        continue;
      }
      rep.push_back(replan.makespan);
      ret.push_back(retry.makespan);
      masked += static_cast<double>(replan.masked.count());
      retries += static_cast<double>(retry.retries);
    }
    if (rep.empty()) {
      t.add_row({label, fmt(rate, 2), "-", "-", "-", "-", "-",
                 std::to_string(giveups)});
      continue;
    }
    const double n = static_cast<double>(rep.size());
    t.add_row({label, fmt(rate, 2), fmt(mean(rep), 3), fmt(mean(ret), 3),
               fmt(mean(ret) / mean(rep), 3), fmt(masked / n, 1),
               fmt(retries / n, 1), std::to_string(giveups)});

    // Telemetry mirror: the policies play the scheme role (replan is the
    // reference), the fault seeds are the samples.
    Comparison c;
    c.schemes = {"replan", "retry"};
    c.procs = {cluster.processors};
    std::vector<double> rel_retry(rep.size());
    for (std::size_t k = 0; k < rep.size(); ++k)
      rel_retry[k] = rep[k] / ret[k];
    c.relative = {{1.0, mean(rel_retry)}};
    c.makespan = {{mean(rep), mean(ret)}};
    c.sched_seconds = {{0.0, 0.0}};
    c.relative_samples = {{std::vector<double>(rep.size(), 1.0), rel_retry}};
    c.makespan_samples = {{rep, ret}};
    c.sched_samples = {{std::vector<double>(rep.size(), 0.0),
                        std::vector<double>(ret.size(), 0.0)}};
    bench::telemetry().record(std::string(label) + "/rate=" + fmt(rate, 2),
                              c);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("ext_fault_tolerance", argc, argv);
  std::cout << "Extension: fail-stop fault tolerance, degraded-cluster "
               "replan vs retry-in-place (5 fault seeds per point)\n"
            << "gain = retry makespan / replan makespan (> 1: replanning "
               "around failures beats waiting for repairs)\n\n";
  Table t({"workload", "rate", "replan", "retry", "gain", "masked",
           "retries", "giveups"});

  SyntheticParams p;
  p.ccr = 0.3;
  p.max_procs = 16;
  const auto graphs = make_synthetic_suite(p, 2, 20060905);
  const Cluster cluster(16);
  sweep("synthetic#1", graphs[0], cluster, t);
  sweep("synthetic#2", graphs[1], cluster, t);

  TCEParams tp;
  tp.occupied = 16;
  tp.virt = 64;
  tp.max_procs = 16;
  sweep("ccsd-t1", make_ccsd_t1(tp), Cluster(16, 250e6), t);

  t.print(std::cout);
  t.maybe_write_csv("ext_fault_tolerance.csv");
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  return 0;
}
