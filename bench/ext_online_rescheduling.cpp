/// Extension bench (the paper's future work, Section VI): online
/// rescheduling in a runtime framework. The static LoC-MPS plan is
/// executed under runtime-estimate noise; the online executor replans the
/// not-yet-started tasks whenever a finished task deviates beyond a
/// threshold. Reported: realized makespan of the static plan vs the
/// online executor, across noise levels.

#include <iostream>

#include "bench_util.hpp"
#include "schedulers/online.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

using namespace locmps;

namespace {

void sweep(const char* label, const TaskGraph& g, const Cluster& cluster,
           Table& t) {
  for (const double noise : {0.1, 0.3, 0.5}) {
    std::vector<double> stat, onl, replans;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      OnlineOptions opt;
      opt.runtime_noise = noise;
      opt.seed = seed * 7919;
      const OnlineResult r = run_online(g, cluster, opt);
      stat.push_back(r.static_makespan);
      onl.push_back(r.makespan);
      replans.push_back(static_cast<double>(r.replans));
    }
    t.add_row({label, fmt(noise, 1), fmt(mean(stat), 3), fmt(mean(onl), 3),
               fmt(mean(stat) / mean(onl), 3), fmt(mean(replans), 1)});

    // Telemetry mirror: static vs online play the scheme role, the noise
    // seeds are the samples.
    Comparison c;
    c.schemes = {"static", "online"};
    c.procs = {cluster.processors};
    std::vector<double> rel_onl(onl.size());
    for (std::size_t k = 0; k < onl.size(); ++k)
      rel_onl[k] = stat[k] / onl[k];
    c.relative = {{1.0, mean(rel_onl)}};
    c.makespan = {{mean(stat), mean(onl)}};
    c.sched_seconds = {{0.0, 0.0}};
    c.relative_samples = {
        {std::vector<double>(stat.size(), 1.0), rel_onl}};
    c.makespan_samples = {{stat, onl}};
    c.sched_samples = {{std::vector<double>(stat.size(), 0.0),
                        std::vector<double>(onl.size(), 0.0)}};
    bench::telemetry().record(std::string(label) + "/noise=" + fmt(noise, 1),
                              c);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("ext_online_rescheduling", argc, argv);
  std::cout << "Extension: online rescheduling under runtime-estimate "
               "noise (5 seeds per point)\n"
            << "gain = static makespan / online makespan (> 1: replanning "
               "helps)\n\n";
  Table t({"workload", "noise", "static", "online", "gain", "replans"});

  SyntheticParams p;
  p.ccr = 0.3;
  p.max_procs = 16;
  const auto graphs = make_synthetic_suite(p, 2, 20060905);
  const Cluster cluster(16);
  sweep("synthetic#1", graphs[0], cluster, t);
  sweep("synthetic#2", graphs[1], cluster, t);

  TCEParams tp;
  tp.occupied = 16;
  tp.virt = 64;
  tp.max_procs = 16;
  sweep("ccsd-t1", make_ccsd_t1(tp), Cluster(16, 250e6), t);

  t.print(std::cout);
  t.maybe_write_csv("ext_online_rescheduling.csv");
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  return 0;
}
