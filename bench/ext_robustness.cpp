/// Extension bench (robustness): slack-aware placement under performance
/// faults. Each workload is planned with LoC-MPS at several
/// LocBSOptions::slack_factor settings and every schedule is scored by the
/// Monte-Carlo robustness harness (src/faults/robustness.hpp) under ONE
/// shared perturbation family — the ensemble seeds and horizon derive from
/// the slack-1.0 schedule's realized unperturbed makespan, never from the
/// (slack-inflated) planner estimate, so the comparison is fair and
/// paired. The tradeoff on the table: slack > 1 reserves headroom during
/// the hole scan, which should cut the p95/worst perturbed makespan at a
/// bounded cost in the mean.

#include <iostream>

#include "bench_util.hpp"
#include "faults/robustness.hpp"
#include "schedule/event_sim.hpp"
#include "schedulers/loc_mps.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

using namespace locmps;

namespace {

constexpr double kSlacks[] = {1.0, 1.25, 1.5};
constexpr std::size_t kSamples = 16;
constexpr std::size_t kNumSlacks = std::size(kSlacks);

/// Per-slack (p95/base, mean/base) ratios accumulated across workloads,
/// for the closing aggregate line.
std::vector<double> g_p95_ratios[kNumSlacks];
std::vector<double> g_mean_ratios[kNumSlacks];

void sweep(const char* label, const TaskGraph& g, const Cluster& cluster,
           const CommModel& comm, Table& t) {
  // Plan once per slack setting; the slack-1.0 plan anchors the family.
  std::vector<RobustnessReport> reports;
  std::vector<double> nominals;
  double horizon = 0.0;
  for (const double slack : kSlacks) {
    LocMPSOptions opt;
    opt.locbs.slack_factor = slack;
    const SchedulerResult plan = LocMPSScheduler(opt).schedule(g, cluster);
    const double nominal =
        simulate_execution(g, plan.schedule, comm).makespan;
    if (slack == kSlacks[0]) horizon = nominal;  // LINT-ALLOW(float-eq)

    RobustnessOptions ropt;
    ropt.samples = kSamples;
    ropt.perturb.seed = 20060905;
    ropt.perturb.slow_factor = 4.0;
    ropt.perturb.horizon_s = horizon;
    ropt.perturb.slow_duration_s = 0.5 * horizon;
    ropt.perturb.link_windows = 2;
    ropt.perturb.link_duration_s = 0.2 * horizon;
    reports.push_back(score_robustness(g, plan.schedule, comm, ropt));
    nominals.push_back(nominal);
  }

  const RobustnessReport& base = reports[0];
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const RobustnessReport& r = reports[i];
    t.add_row({label, fmt(kSlacks[i], 2), fmt(nominals[i], 3),
               fmt(r.mean, 3), fmt(r.p95, 3), fmt(r.worst, 3),
               fmt(r.p95 / base.p95, 3), fmt(r.mean / base.mean, 3)});
    g_p95_ratios[i].push_back(r.p95 / base.p95);
    g_mean_ratios[i].push_back(r.mean / base.mean);
  }

  // Telemetry mirror: the slack settings play the scheme role (slack 1.0
  // is the reference), the perturbation seeds are the paired samples.
  Comparison c;
  c.procs = {cluster.processors};
  c.relative.resize(1);
  c.makespan.resize(1);
  c.sched_seconds.resize(1);
  c.relative_samples.resize(1);
  c.makespan_samples.resize(1);
  c.sched_samples.resize(1);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const RobustnessReport& r = reports[i];
    c.schemes.push_back("slack=" + fmt(kSlacks[i], 2));
    std::vector<double> rel(r.makespans.size());
    for (std::size_t k = 0; k < r.makespans.size(); ++k)
      rel[k] = base.makespans[k] / r.makespans[k];
    c.relative[0].push_back(mean(rel));
    c.makespan[0].push_back(r.mean);
    c.sched_seconds[0].push_back(0.0);
    c.relative_samples[0].push_back(rel);
    c.makespan_samples[0].push_back(r.makespans);
    c.sched_samples[0].push_back(
        std::vector<double>(r.makespans.size(), 0.0));
  }
  bench::telemetry().record(label, c);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("ext_robustness", argc, argv);
  std::cout << "Extension: slack-aware placement vs performance faults ("
            << kSamples << "-sample Monte-Carlo per point, one shared "
            << "perturbation family per workload)\n"
            << "p95/base and mean/base are relative to slack=1.00; the "
               "slack pays off when p95/base < 1 at a bounded mean/base\n\n";
  Table t({"workload", "slack", "nominal", "mean", "p95", "worst",
           "p95/base", "mean/base"});

  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 16;
  const auto graphs = make_synthetic_suite(p, 2, 20060905);
  const Cluster cluster(16);
  const CommModel comm(cluster);
  sweep("synthetic#1", graphs[0], cluster, comm, t);
  sweep("synthetic#2", graphs[1], cluster, comm, t);

  TCEParams tp;
  tp.occupied = 16;
  tp.virt = 64;
  tp.max_procs = 16;
  const Cluster tcluster(16, 250e6);
  sweep("ccsd-t1", make_ccsd_t1(tp), tcluster, CommModel(tcluster), t);

  t.print(std::cout);
  std::cout << "\naggregate over the suite (mean of per-workload ratios):\n";
  for (std::size_t i = 1; i < kNumSlacks; ++i)
    std::cout << "  slack=" << fmt(kSlacks[i], 2)
              << "  p95/base=" << fmt(mean(g_p95_ratios[i]), 3)
              << "  mean/base=" << fmt(mean(g_mean_ratios[i]), 3) << "\n";
  t.maybe_write_csv("ext_robustness.csv");
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  return 0;
}
