/// Extension bench: how close is LoC-MPS to the best allocation its own
/// scheduler can realize? A simulated-annealing reference (thousands of
/// LoCBS evaluations, multiple restarts) approximates the best
/// LoCBS-realizable makespan; the gap separates search error from model
/// error. Reported per CCR: mean makespans, LoC-MPS's gap to the
/// reference, and the evaluation budgets spent.

#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "schedulers/annealing.hpp"
#include "schedulers/loc_mps.hpp"
#include "util/stats.hpp"
#include "workloads/synthetic.hpp"

using namespace locmps;

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("ext_search_quality", argc, argv);
  const std::size_t P = 16;
  const std::size_t n_graphs = 4;
  std::cout << "Extension: LoC-MPS vs simulated-annealing reference (P=" << P
            << ", " << n_graphs << " graphs per CCR)\n"
            << "gap = makespan(loc-mps) / makespan(SA); 1.0 = the heuristic "
               "matches the reference\n\n";

  Table t({"CCR", "loc-mps", "SA-ref", "gap", "mps evals", "SA evals"});
  for (const double ccr : {0.0, 0.1, 1.0}) {
    SyntheticParams p;
    p.ccr = ccr;
    p.max_procs = P;
    p.min_tasks = 15;
    p.max_tasks = 30;
    const auto graphs = make_synthetic_suite(p, n_graphs, 20060908);
    const Cluster cluster(P, p.bandwidth_Bps);

    std::vector<double> mps, sa, mps_ev, sa_ev;
    for (const auto& g : graphs) {
      const SchedulerResult a = LocMPSScheduler().schedule(g, cluster);
      AnnealingOptions opt;
      opt.iterations = 6000;
      opt.restarts = 3;
      const SchedulerResult b = AnnealingScheduler(opt).schedule(g, cluster);
      mps.push_back(a.estimated_makespan);
      sa.push_back(b.estimated_makespan);
      mps_ev.push_back(static_cast<double>(a.iterations));
      sa_ev.push_back(static_cast<double>(b.iterations));
    }
    t.add_row({fmt(ccr, 1), fmt(mean(mps), 2), fmt(mean(sa), 2),
               fmt(mean(mps) / mean(sa), 3), fmt(mean(mps_ev), 0),
               fmt(mean(sa_ev), 0)});

    // Telemetry mirror: per-graph estimated makespans of both searches.
    Comparison c;
    c.schemes = {"loc-mps", "sa-ref"};
    c.procs = {P};
    std::vector<double> rel(mps.size());
    for (std::size_t k = 0; k < mps.size(); ++k) rel[k] = mps[k] / sa[k];
    c.relative = {{1.0, mean(rel)}};
    c.makespan = {{mean(mps), mean(sa)}};
    c.sched_seconds = {{0.0, 0.0}};
    c.relative_samples = {{std::vector<double>(mps.size(), 1.0), rel}};
    c.makespan_samples = {{mps, sa}};
    c.sched_samples = {{std::vector<double>(mps.size(), 0.0),
                        std::vector<double>(sa.size(), 0.0)}};
    bench::telemetry().record("ccr=" + fmt(ccr, 1), c, graphs);
  }
  t.print(std::cout);
  t.maybe_write_csv("ext_search_quality.csv");
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  return 0;
}
