/// Figure 4: relative performance of the scheduling schemes on synthetic
/// graphs with CCR = 0, for (a) Amax = 64, sigma = 1 and
/// (b) Amax = 48, sigma = 2 (Section IV-A).
///
/// Expected shape: LoC-MPS and iCASLB coincide (communication is free);
/// CPR/CPA/TASK fall behind as P grows; DATA is competitive for highly
/// scalable tasks (panel a) and degrades for poorly scaling ones (panel b).

#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "schedulers/registry.hpp"
#include "workloads/synthetic.hpp"

using namespace locmps;

namespace {

void panel(const char* title, double amax, double sigma) {
  SyntheticParams p;
  p.ccr = 0.0;
  p.amax = amax;
  p.sigma = sigma;
  const auto procs = bench::proc_sweep();
  p.max_procs = procs.back();
  const auto graphs = make_synthetic_suite(p, bench::suite_size(), 20060901);

  bench::banner(std::string("Fig 4") + title + ": CCR=0, Amax=" +
                fmt(amax, 0) + ", sigma=" + fmt(sigma, 0));
  const Comparison c = compare_schemes(graphs, paper_schemes(), procs,
                                       p.bandwidth_Bps);
  Table t = relative_performance_table(c);
  t.print(std::cout);
  t.maybe_write_csv(std::string("fig04") + title + ".csv");
  bench::telemetry().record(std::string("fig04") + title, c, graphs);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("fig04_synthetic_ccr0", argc, argv);
  std::cout << "Reproduction of Fig 4 (synthetic graphs, CCR=0): "
            << bench::suite_size() << " graphs per configuration\n";
  panel("a", 64.0, 1.0);
  panel("b", 48.0, 2.0);
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  return 0;
}
