/// Figure 5: relative performance on synthetic graphs with Amax = 64,
/// sigma = 1 as communication becomes significant: (a) CCR = 0.1 and
/// (b) CCR = 1 (Section IV-A).
///
/// Expected shape: iCASLB deteriorates with CCR (it plans comm-blind);
/// CPR and CPA also fall behind at CCR = 1 (no locality awareness); the
/// relative standing of DATA improves with CCR (it pays no redistribution)
/// but worsens again as P outgrows task scalability.

#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "schedulers/registry.hpp"
#include "workloads/synthetic.hpp"

using namespace locmps;

namespace {

void panel(const char* title, double ccr) {
  SyntheticParams p;
  p.ccr = ccr;
  p.amax = 64.0;
  p.sigma = 1.0;
  const auto procs = bench::proc_sweep();
  p.max_procs = procs.back();
  const auto graphs = make_synthetic_suite(p, bench::suite_size(), 20060902);

  bench::banner(std::string("Fig 5") + title + ": CCR=" + fmt(ccr, 1) +
                ", Amax=64, sigma=1");
  const Comparison c = compare_schemes(graphs, paper_schemes(), procs,
                                       p.bandwidth_Bps);
  Table t = relative_performance_table(c);
  t.print(std::cout);
  t.maybe_write_csv(std::string("fig05") + title + ".csv");
  bench::telemetry().record(std::string("fig05") + title, c, graphs);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("fig05_synthetic_ccr", argc, argv);
  std::cout << "Reproduction of Fig 5 (synthetic graphs, CCR > 0): "
            << bench::suite_size() << " graphs per configuration\n";
  panel("a", 0.1);
  panel("b", 1.0);
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  return 0;
}
