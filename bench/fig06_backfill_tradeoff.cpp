/// Figure 6: performance / scheduling-time tradeoff of LoC-MPS with and
/// without backfilling, on synthetic graphs with CCR = 0.1, Amax = 48,
/// sigma = 2 (Section IV-A).
///
/// Expected shape: the no-backfill variant schedules noticeably faster but
/// produces makespans up to ~8% worse.

#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "workloads/synthetic.hpp"

using namespace locmps;

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  const bench::ProfileOut prof =
      bench::parse_profile_out("fig06_backfill_tradeoff", argc, argv);
  bench::init_telemetry("fig06_backfill_tradeoff", argc, argv);
  SyntheticParams p;
  p.ccr = 0.1;
  p.amax = 48.0;
  p.sigma = 2.0;
  const auto procs = bench::proc_sweep();
  p.max_procs = procs.back();
  const auto graphs = make_synthetic_suite(p, bench::suite_size(), 20060903);

  std::cout << "Reproduction of Fig 6 (backfill vs no-backfill): "
            << bench::suite_size()
            << " graphs, CCR=0.1, Amax=48, sigma=2\n";
  bench::banner("Fig 6a: schedule quality (ratio of makespans)");
  const Comparison c = compare_schemes(graphs, {"loc-mps", "loc-mps-nbf"},
                                       procs, p.bandwidth_Bps);
  Table quality({"P", "with-backfill", "no-backfill"});
  for (std::size_t pi = 0; pi < procs.size(); ++pi)
    quality.add_row_numeric(std::to_string(procs[pi]),
                            {c.relative[pi][0], c.relative[pi][1]});
  quality.print(std::cout);
  quality.maybe_write_csv("fig06a.csv");

  std::cout << "\n--- Fig 6b: mean scheduling time (seconds) ---\n";
  Table times({"P", "with-backfill", "no-backfill", "speedup"});
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const double bf = c.sched_seconds[pi][0];
    const double nbf = c.sched_seconds[pi][1];
    times.add_row({std::to_string(procs[pi]), fmt(bf, 4), fmt(nbf, 4),
                   fmt(nbf > 0 ? bf / nbf : 0.0, 1) + "x"});
  }
  times.print(std::cout);
  times.maybe_write_csv("fig06b.csv");
  bench::telemetry().record("fig06", c, graphs);
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  bench::maybe_dump_profile(prof, "fig06_backfill_tradeoff");
  return 0;
}
