/// Figure 8: relative performance of the schemes on the TCE CCSD T1
/// computation, (a) with full overlap of computation and communication and
/// (b) with no overlap (Section IV-B).
///
/// Expected shape: DATA performs poorly (a few large tasks, many small
/// non-scalable ones); LoC-MPS leads iCASLB/CPR/CPA, with the margin
/// growing on the no-overlap platform where unhidden communication makes
/// locality more valuable; DATA's *relative* standing improves without
/// overlap because it does no communication at all.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "schedulers/registry.hpp"
#include "workloads/tce.hpp"

using namespace locmps;

namespace {

/// 2 Gbps Myrinet-like interconnect of the paper's application testbed.
constexpr double kMyrinetBps = 2e9 / 8.0;

void panel(const char* title, bool overlap) {
  const auto procs = bench::proc_sweep();
  TCEParams tp;
  tp.max_procs = procs.back();
  const TaskGraph g = make_ccsd_t1(tp);
  const std::vector<TaskGraph> graphs{g};

  bench::banner(std::string("Fig 8") + title + ": CCSD T1, " +
                (overlap ? "overlap" : "no overlap") +
                " of computation and communication");
  const Comparison c =
      compare_schemes(graphs, paper_schemes(), procs, kMyrinetBps, overlap);
  Table t = relative_performance_table(c);
  t.print(std::cout);
  t.maybe_write_csv(std::string("fig08") + title + ".csv");
  bench::telemetry().record(std::string("fig08") + title, c, graphs);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("fig08_tce_ccsd", argc, argv);
  TCEParams tp;
  std::cout << "Reproduction of Fig 8 (TCE CCSD T1, o=" << tp.occupied
            << ", v=" << tp.virt << ")\n";
  panel("a", true);
  panel("b", false);
  bench::write_telemetry();
  if (obs.enabled()) bench::dump_obs_run(obs, make_ccsd_t1(tp), Cluster(32));
  return 0;
}
