/// Figure 9: relative performance of the schemes on Strassen matrix
/// multiplication for (a) 1024x1024 and (b) 4096x4096 matrices
/// (Section IV-B).
///
/// Expected shape: at 1024 the blocks scale poorly and DATA trails badly;
/// growing the problem 16x improves task scalability and with it DATA's
/// relative standing. LoC-MPS leads CPR/CPA/TASK throughout.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "schedulers/registry.hpp"
#include "workloads/strassen.hpp"

using namespace locmps;

namespace {

constexpr double kMyrinetBps = 2e9 / 8.0;

void panel(const char* title, std::size_t n) {
  const auto procs = bench::proc_sweep();
  StrassenParams sp;
  sp.n = n;
  sp.max_procs = procs.back();
  const std::vector<TaskGraph> graphs{make_strassen(sp)};

  bench::banner(std::string("Fig 9") + title + ": Strassen " +
                std::to_string(n) + "x" + std::to_string(n));
  const Comparison c =
      compare_schemes(graphs, paper_schemes(), procs, kMyrinetBps);
  Table t = relative_performance_table(c);
  t.print(std::cout);
  t.maybe_write_csv(std::string("fig09") + title + ".csv");
  bench::telemetry().record(std::string("fig09") + title, c, graphs);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("fig09_strassen", argc, argv);
  std::cout << "Reproduction of Fig 9 (Strassen matrix multiplication)\n";
  panel("a", 1024);
  panel("b", 4096);
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  return 0;
}
