/// Figure 10: scheduling times of the schemes for (a) the CCSD T1
/// computation and (b) Strassen matrix multiplication (Section IV-B).
///
/// Expected shape: LoC-MPS is the most expensive scheme and CPA the
/// cheapest, but LoC-MPS's planning time stays orders of magnitude below
/// the application makespans it improves.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "schedulers/registry.hpp"
#include "workloads/strassen.hpp"
#include "workloads/tce.hpp"

using namespace locmps;

namespace {

constexpr double kMyrinetBps = 2e9 / 8.0;

void panel(const char* name, const TaskGraph& g, const char* csv) {
  const auto procs = bench::proc_sweep();
  const std::vector<TaskGraph> graphs{g};
  const Comparison c =
      compare_schemes(graphs, paper_schemes(), procs, kMyrinetBps);

  std::cout << "\n=== Fig 10" << name << ": scheduling time (seconds) ===\n";
  Table t = scheduling_time_table(c);
  t.print(std::cout);
  t.maybe_write_csv(csv);
  bench::telemetry().record(name, c, graphs);

  // The paper's observation: planning cost vs application makespan.
  std::cout << "\nLoC-MPS planning time vs resulting makespan:\n";
  Table ratio({"P", "sched(s)", "makespan(s)", "ratio"});
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const double st = c.sched_seconds[pi][0];
    const double mk = c.makespan[pi][0];
    ratio.add_row({std::to_string(procs[pi]), fmt(st, 4), fmt(mk, 2),
                   fmt(mk > 0 ? st / mk : 0.0, 4)});
  }
  ratio.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("fig10_scheduling_times", argc, argv);
  std::cout << "Reproduction of Fig 10 (scheduling times)\n";
  const auto procs = bench::proc_sweep();
  // A production-size problem instance (o=48, v=192): the paper's point is
  // that planning time stays orders of magnitude below the application
  // makespan, which requires the application not to be toy-sized.
  TCEParams tp;
  tp.occupied = 48;
  tp.virt = 192;
  tp.max_procs = procs.back();
  StrassenParams sp;
  sp.n = 4096;
  sp.max_procs = procs.back();
  panel("a (CCSD T1)", make_ccsd_t1(tp), "fig10a.csv");
  panel("b (Strassen 4096)", make_strassen(sp), "fig10b.csv");
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  return 0;
}
