/// Figure 10: scheduling times of the schemes for (a) the CCSD T1
/// computation and (b) Strassen matrix multiplication (Section IV-B).
///
/// Expected shape: LoC-MPS is the most expensive scheme and CPA the
/// cheapest, but LoC-MPS's planning time stays orders of magnitude below
/// the application makespans it improves.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "schedulers/registry.hpp"
#include "workloads/strassen.hpp"
#include "workloads/tce.hpp"

using namespace locmps;

namespace {

constexpr double kMyrinetBps = 2e9 / 8.0;

void panel(const char* name, const TaskGraph& g, const char* csv) {
  const auto procs = bench::proc_sweep();
  const std::vector<TaskGraph> graphs{g};
  const Comparison c =
      compare_schemes(graphs, paper_schemes(), procs, kMyrinetBps);

  std::cout << "\n=== Fig 10" << name << ": scheduling time (seconds) ===\n";
  Table t = scheduling_time_table(c);
  t.print(std::cout);
  t.maybe_write_csv(csv);
  bench::telemetry().record(name, c, graphs);

  // The paper's observation: planning cost vs application makespan.
  std::cout << "\nLoC-MPS planning time vs resulting makespan:\n";
  Table ratio({"P", "sched(s)", "makespan(s)", "ratio"});
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const double st = c.sched_seconds[pi][0];
    const double mk = c.makespan[pi][0];
    ratio.add_row({std::to_string(procs[pi]), fmt(st, 4), fmt(mk, 2),
                   fmt(mk > 0 ? st / mk : 0.0, 4)});
  }
  ratio.print(std::cout);
}

/// Planning-time scaling of the speculative LoC-MPS probe pool
/// (docs/parallelism.md) on a suite of large synthetic DAGs. Every thread
/// count produces bit-identical schedules, so the panels differ only in
/// sched_seconds; the per-count panel labels keep scripts/bench_diff.py's
/// (label, scheme, procs) join stable across runs.
void thread_sweep_panel(const std::vector<std::size_t>& thread_counts) {
  const auto procs = bench::proc_sweep();
  std::vector<TaskGraph> graphs;
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = procs.back();
  Rng rng(777001);
  for (std::size_t i = 0; i < bench::suite_size(); ++i)
    graphs.push_back(make_synthetic_dag(p, rng));

  std::cout << "\n=== Fig 10c: LoC-MPS planning time vs probe threads"
            << " (synthetic suite, " << graphs.size() << " graphs) ===\n";
  std::vector<Comparison> runs;
  for (std::size_t t : thread_counts) {
    SchedulerOptions so;
    so.threads = t;
    runs.push_back(compare_schemes(graphs, {"loc-mps"}, procs, kMyrinetBps,
                                   true, {}, 1, so));
    bench::telemetry().record(
        "c (synthetic, threads=" + std::to_string(t) + ")", runs.back(),
        graphs);
  }

  Table t({"P", "threads", "sched(s)", "speedup", "makespan(s)"});
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const double base = runs.front().sched_seconds[pi][0];
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
      const double st = runs[ti].sched_seconds[pi][0];
      t.add_row({std::to_string(procs[pi]),
                 std::to_string(thread_counts[ti]), fmt(st, 4),
                 fmt(st > 0 ? base / st : 0.0, 2),
                 fmt(runs[ti].makespan[pi][0], 2)});
    }
  }
  t.print(std::cout);
  t.maybe_write_csv("fig10c.csv");
  std::cout << "(speedup = sched time at threads=" << thread_counts.front()
            << " / sched time at the row's count; schedules are"
               " bit-identical across counts)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  const bench::ProfileOut prof =
      bench::parse_profile_out("fig10_scheduling_times", argc, argv);
  bench::init_telemetry("fig10_scheduling_times", argc, argv);
  std::cout << "Reproduction of Fig 10 (scheduling times)\n";
  const auto procs = bench::proc_sweep();
  // A production-size problem instance (o=48, v=192): the paper's point is
  // that planning time stays orders of magnitude below the application
  // makespan, which requires the application not to be toy-sized.
  TCEParams tp;
  tp.occupied = 48;
  tp.virt = 192;
  tp.max_procs = procs.back();
  StrassenParams sp;
  sp.n = 4096;
  sp.max_procs = procs.back();
  panel("a (CCSD T1)", make_ccsd_t1(tp), "fig10a.csv");
  panel("b (Strassen 4096)", make_strassen(sp), "fig10b.csv");
  thread_sweep_panel(bench::thread_sweep(argc, argv));
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  bench::maybe_dump_profile(prof, "fig10_scheduling_times");
  return 0;
}
