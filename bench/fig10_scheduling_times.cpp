/// Figure 10: scheduling times of the schemes for (a) the CCSD T1
/// computation and (b) Strassen matrix multiplication (Section IV-B).
///
/// Expected shape: LoC-MPS is the most expensive scheme and CPA the
/// cheapest, but LoC-MPS's planning time stays orders of magnitude below
/// the application makespans it improves.
///
/// Every timed panel re-plans each cell LOCMPS_SCHED_REPS times (default
/// 5) so the sched_seconds medians carry order-statistic CIs the
/// scripts/bench_diff.py ratchet can gate on. Panel c additionally runs a
/// from-scratch (incremental = false) companion at the reference thread
/// count: the committed telemetry then contains both sides of the
/// incremental-replanning speedup, which CI pins with
/// `--speedup-gate` (an intra-document ratio, machine-independent).
/// Panel d stresses planning on a |V| >= 2000 synthetic DAG under a
/// bounded refinement budget (docs/incremental.md).

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "schedulers/registry.hpp"
#include "workloads/strassen.hpp"
#include "workloads/tce.hpp"

using namespace locmps;

namespace {

constexpr double kMyrinetBps = 2e9 / 8.0;

void panel(const char* name, const TaskGraph& g, const char* csv) {
  const auto procs = bench::proc_sweep();
  const std::vector<TaskGraph> graphs{g};
  const Comparison c =
      compare_schemes(graphs, paper_schemes(), procs, kMyrinetBps, true, {},
                      0, {}, bench::sched_reps());

  std::cout << "\n=== Fig 10" << name << ": scheduling time (seconds) ===\n";
  Table t = scheduling_time_table(c);
  t.print(std::cout);
  t.maybe_write_csv(csv);
  bench::telemetry().record(name, c, graphs);

  // The paper's observation: planning cost vs application makespan.
  std::cout << "\nLoC-MPS planning time vs resulting makespan:\n";
  Table ratio({"P", "sched(s)", "makespan(s)", "ratio"});
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const double st = c.sched_seconds[pi][0];
    const double mk = c.makespan[pi][0];
    ratio.add_row({std::to_string(procs[pi]), fmt(st, 4), fmt(mk, 2),
                   fmt(mk > 0 ? st / mk : 0.0, 4)});
  }
  ratio.print(std::cout);
}

/// Planning-time scaling of the speculative LoC-MPS probe pool
/// (docs/parallelism.md) on a suite of large synthetic DAGs, plus a
/// from-scratch companion at the reference thread count that pins the
/// incremental-replanning speedup. Every configuration produces
/// bit-identical schedules, so the panels differ only in sched_seconds;
/// the per-count panel labels keep scripts/bench_diff.py's
/// (label, scheme, procs) join stable across runs.
void thread_sweep_panel(const std::vector<std::size_t>& thread_counts) {
  const auto procs = bench::proc_sweep();
  std::vector<TaskGraph> graphs;
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = procs.back();
  Rng rng(777001);
  for (std::size_t i = 0; i < bench::suite_size(); ++i)
    graphs.push_back(make_synthetic_dag(p, rng));

  std::cout << "\n=== Fig 10c: LoC-MPS planning time vs probe threads"
            << " (synthetic suite, " << graphs.size() << " graphs) ===\n";
  std::vector<Comparison> runs;
  for (std::size_t t : thread_counts) {
    SchedulerOptions so;
    so.threads = t;
    runs.push_back(compare_schemes(graphs, {"loc-mps"}, procs, kMyrinetBps,
                                   true, {}, 1, so, bench::sched_reps()));
    bench::telemetry().record(
        "c (synthetic, threads=" + std::to_string(t) + ")", runs.back(),
        graphs);
  }
  // The from-scratch reference: identical schedules, every LoCBS
  // evaluation re-scanned in full. Its sched_seconds against the
  // incremental panel above is the replay speedup CI ratchets.
  {
    SchedulerOptions so;
    so.threads = thread_counts.front();
    so.incremental = false;
    const Comparison scratch =
        compare_schemes(graphs, {"loc-mps"}, procs, kMyrinetBps, true, {}, 1,
                        so, bench::sched_reps());
    bench::telemetry().record(
        "c (synthetic, threads=" + std::to_string(thread_counts.front()) +
            ", from-scratch)",
        scratch, graphs);
    std::cout << "\nIncremental replanning speedup (threads="
              << thread_counts.front() << "):\n";
    Table inc({"P", "from-scratch(s)", "incremental(s)", "speedup"});
    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
      const double off = scratch.sched_seconds[pi][0];
      const double on = runs.front().sched_seconds[pi][0];
      inc.add_row({std::to_string(procs[pi]), fmt(off, 4), fmt(on, 4),
                   fmt(on > 0 ? off / on : 0.0, 2)});
    }
    inc.print(std::cout);
  }

  Table t({"P", "threads", "sched(s)", "speedup", "makespan(s)"});
  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const double base = runs.front().sched_seconds[pi][0];
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
      const double st = runs[ti].sched_seconds[pi][0];
      t.add_row({std::to_string(procs[pi]),
                 std::to_string(thread_counts[ti]), fmt(st, 4),
                 fmt(st > 0 ? base / st : 0.0, 2),
                 fmt(runs[ti].makespan[pi][0], 2)});
    }
  }
  t.print(std::cout);
  t.maybe_write_csv("fig10c.csv");
  std::cout << "(speedup = sched time at threads=" << thread_counts.front()
            << " / sched time at the row's count; schedules are"
               " bit-identical across counts)\n";
}

/// Large-graph planning stress: one |V| >= 2000 synthetic DAG at the
/// sweep's largest processor count, refinement capped by
/// SchedulerOptions::plan_budget so the panel stays bounded at any
/// scale. Exercises the incremental hot path where it matters most —
/// thousands of placements per LoCBS evaluation.
void large_graph_panel() {
  const auto procs = bench::proc_sweep();
  SyntheticParams p;
  p.min_tasks = 2048;
  p.max_tasks = 2048;
  p.avg_degree = 4.0;
  p.ccr = 0.5;
  p.max_procs = procs.back();
  Rng rng(20480101);
  const std::vector<TaskGraph> graphs{make_synthetic_dag(p, rng)};
  const std::vector<std::size_t> big{procs.back()};

  SchedulerOptions so;
  so.plan_budget = 256;
  const Comparison c = compare_schemes(graphs, {"loc-mps"}, big, kMyrinetBps,
                                       true, {}, 1, so, bench::sched_reps());
  std::cout << "\n=== Fig 10d: LoC-MPS planning time, |V| = "
            << graphs[0].num_tasks() << " (plan budget " << so.plan_budget
            << ") ===\n";
  Table t = scheduling_time_table(c);
  t.print(std::cout);
  t.maybe_write_csv("fig10d.csv");
  bench::telemetry().record("d (large synthetic, |V|=2048)", c, graphs);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  const bench::ProfileOut prof =
      bench::parse_profile_out("fig10_scheduling_times", argc, argv);
  bench::init_telemetry("fig10_scheduling_times", argc, argv);
  std::cout << "Reproduction of Fig 10 (scheduling times)\n";
  const auto procs = bench::proc_sweep();
  // A production-size problem instance (o=48, v=192): the paper's point is
  // that planning time stays orders of magnitude below the application
  // makespan, which requires the application not to be toy-sized.
  TCEParams tp;
  tp.occupied = 48;
  tp.virt = 192;
  tp.max_procs = procs.back();
  StrassenParams sp;
  sp.n = 4096;
  sp.max_procs = procs.back();
  panel("a (CCSD T1)", make_ccsd_t1(tp), "fig10a.csv");
  panel("b (Strassen 4096)", make_strassen(sp), "fig10b.csv");
  thread_sweep_panel(bench::thread_sweep(argc, argv));
  large_graph_panel();
  bench::write_telemetry();
  bench::maybe_dump_obs(obs);
  bench::maybe_dump_profile(prof, "fig10_scheduling_times");
  return 0;
}
