/// Figure 11: "actual execution" of the CCSD T1 computation.
///
/// The paper validates its simulation by running the schedules on a real
/// Itanium-2/Myrinet cluster. Our substitute (documented in DESIGN.md) is
/// the discrete-event executor with the strict platform model turned on:
/// single-port transfers plus multiplicative runtime-estimate noise,
/// averaged over several noise seeds. The check is that the *ranking*
/// of the schemes survives execution-time perturbation.

#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "schedulers/registry.hpp"
#include "util/stats.hpp"
#include "workloads/tce.hpp"

using namespace locmps;

int main(int argc, char** argv) {
  const bench::ObsOut obs = bench::parse_obs(argc, argv);
  bench::init_telemetry("fig11_actual_execution", argc, argv);
  constexpr double kMyrinetBps = 2e9 / 8.0;
  const auto procs = bench::proc_sweep();
  TCEParams tp;
  tp.max_procs = procs.back();
  const TaskGraph g = make_ccsd_t1(tp);
  const auto schemes = paper_schemes();
  const int reps = 5;

  std::cout << "Reproduction of Fig 11 (actual execution of CCSD T1):\n"
            << "single-port transfers, +/-15% runtime noise, " << reps
            << " runs per point\n";
  bench::banner("Fig 11: relative performance under actual execution");

  std::vector<std::string> header{"P"};
  for (const auto& s : schemes) header.push_back(s);
  Table t(header);
  // Telemetry mirror of the printed table; the noise repetitions are the
  // samples behind the median/CI statistics.
  Comparison c;
  c.schemes = schemes;
  c.procs = procs;
  for (const std::size_t P : procs) {
    const Cluster cluster(P, kMyrinetBps);
    std::vector<double> mean_makespan(schemes.size(), 0.0);
    std::vector<std::vector<double>> runs_by_scheme(schemes.size());
    std::vector<std::vector<double>> sched_by_scheme(schemes.size());
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      std::vector<double> runs;
      for (int rep = 0; rep < reps; ++rep) {
        SimOptions sim;
        sim.single_port = true;
        sim.runtime_noise = 0.15;
        sim.seed = 1000 + static_cast<std::uint64_t>(rep);
        const SchemeRun r = evaluate_scheme(schemes[si], g, cluster, sim);
        runs.push_back(r.makespan);
        sched_by_scheme[si].push_back(r.scheduling_seconds);
      }
      mean_makespan[si] = mean(runs);
      runs_by_scheme[si] = std::move(runs);
    }
    std::vector<double> rel(schemes.size());
    for (std::size_t si = 0; si < schemes.size(); ++si)
      rel[si] = mean_makespan[0] / mean_makespan[si];
    t.add_row_numeric(std::to_string(P), rel);

    c.relative.push_back(rel);
    c.makespan.push_back(mean_makespan);
    std::vector<double> st(schemes.size());
    std::vector<std::vector<double>> rel_s(schemes.size());
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      st[si] = mean(sched_by_scheme[si]);
      std::vector<double> rr(runs_by_scheme[si].size());
      for (std::size_t k = 0; k < rr.size(); ++k)
        rr[k] = mean_makespan[0] / runs_by_scheme[si][k];
      rel_s[si] = std::move(rr);
    }
    c.sched_seconds.push_back(st);
    c.relative_samples.push_back(std::move(rel_s));
    c.makespan_samples.push_back(std::move(runs_by_scheme));
    c.sched_samples.push_back(std::move(sched_by_scheme));
  }
  t.print(std::cout);
  t.maybe_write_csv("fig11.csv");
  bench::telemetry().record("fig11", c);
  bench::write_telemetry();
  if (obs.enabled())
    bench::dump_obs_run(obs, g, Cluster(procs.back(), kMyrinetBps));
  return 0;
}
