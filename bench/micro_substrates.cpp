/// Substrate microbenchmarks (google-benchmark): the primitives on the
/// scheduler's hot path — block-cyclic volume accounting, critical-path
/// extraction, concurrency analysis, one LoCBS pass and one event-sim
/// execution.

#include <benchmark/benchmark.h>

#include <numeric>
#include <sstream>

#include "graph/algorithms.hpp"
#include "obs/events.hpp"
#include "network/block_cyclic.hpp"
#include "schedule/event_sim.hpp"
#include "schedulers/locbs.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

namespace {

using namespace locmps;

TaskGraph bench_graph(std::size_t max_procs) {
  SyntheticParams p;
  p.ccr = 1.0;
  p.min_tasks = 50;
  p.max_tasks = 50;
  p.max_procs = max_procs;
  Rng rng(12345);
  return make_synthetic_dag(p, rng);
}

void BM_RemoteFraction(benchmark::State& state) {
  const std::size_t P = state.range(0);
  Rng rng(1);
  std::vector<ProcId> all(P);
  std::iota(all.begin(), all.end(), 0);
  std::shuffle(all.begin(), all.end(), rng);
  std::vector<ProcId> src(all.begin(), all.begin() + P / 2);
  std::shuffle(all.begin(), all.end(), rng);
  std::vector<ProcId> dst(all.begin(), all.begin() + P / 3 + 1);
  std::sort(src.begin(), src.end());
  std::sort(dst.begin(), dst.end());
  for (auto _ : state)
    benchmark::DoNotOptimize(remote_fraction(src, dst));
}
BENCHMARK(BM_RemoteFraction)->Arg(16)->Arg(64)->Arg(256);

void BM_CriticalPath(benchmark::State& state) {
  const TaskGraph g = bench_graph(32);
  ScheduleDag dag(g);
  for (TaskId t : g.task_ids()) dag.set_vertex_time(t, 1.0 + t);
  for (EdgeId e = 0; e < g.num_edges(); ++e) dag.set_edge_time(e, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(dag.critical_path());
}
BENCHMARK(BM_CriticalPath);

void BM_ConcurrencyAnalysis(benchmark::State& state) {
  const TaskGraph g = bench_graph(32);
  for (auto _ : state)
    benchmark::DoNotOptimize(ConcurrencyAnalysis(g).ratios().size());
}
BENCHMARK(BM_ConcurrencyAnalysis);

void BM_LoCBSPass(benchmark::State& state) {
  const std::size_t P = state.range(0);
  const TaskGraph g = bench_graph(P);
  const CommModel comm{Cluster(P)};
  Rng rng(7);
  Allocation np(g.num_tasks());
  for (auto& a : np)
    a = static_cast<std::size_t>(rng.uniform_int(1, static_cast<int>(P)));
  for (auto _ : state) benchmark::DoNotOptimize(locbs(g, np, comm).makespan);
}
BENCHMARK(BM_LoCBSPass)->Arg(16)->Arg(64)->Arg(128);

// The same pass with a metrics registry attached: quantifies the cost of
// counter/timer flushing (the obs-off overhead is the null branch in
// BM_LoCBSPass itself — compare against a pre-obs baseline).
void BM_LoCBSPassMetrics(benchmark::State& state) {
  const std::size_t P = state.range(0);
  const TaskGraph g = bench_graph(P);
  const CommModel comm{Cluster(P)};
  Rng rng(7);
  Allocation np(g.num_tasks());
  for (auto& a : np)
    a = static_cast<std::size_t>(rng.uniform_int(1, static_cast<int>(P)));
  obs::MetricsRegistry metrics;
  obs::ObsContext ctx{&metrics, nullptr};
  for (auto _ : state) {
    metrics.reset();
    benchmark::DoNotOptimize(
        locbs(g, np, comm, {}, nullptr, &ctx).makespan);
  }
}
BENCHMARK(BM_LoCBSPassMetrics)->Arg(16)->Arg(64)->Arg(128);

// ...and with a full JSONL sink discarding into a resettable buffer: the
// worst-case cost of streaming the decision trace.
void BM_LoCBSPassJsonl(benchmark::State& state) {
  const std::size_t P = state.range(0);
  const TaskGraph g = bench_graph(P);
  const CommModel comm{Cluster(P)};
  Rng rng(7);
  Allocation np(g.num_tasks());
  for (auto& a : np)
    a = static_cast<std::size_t>(rng.uniform_int(1, static_cast<int>(P)));
  obs::MetricsRegistry metrics;
  for (auto _ : state) {
    metrics.reset();
    std::ostringstream buf;
    obs::JsonlSink sink(buf);
    obs::ObsContext ctx{&metrics, &sink};
    benchmark::DoNotOptimize(
        locbs(g, np, comm, {}, nullptr, &ctx).makespan);
  }
}
BENCHMARK(BM_LoCBSPassJsonl)->Arg(64);

void BM_EventSim(benchmark::State& state) {
  const std::size_t P = 32;
  const TaskGraph g = bench_graph(P);
  const CommModel comm{Cluster(P)};
  const LocBSResult plan = locbs(g, Allocation(g.num_tasks(), 2), comm);
  SimOptions opt;
  opt.single_port = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        simulate_execution(g, plan.schedule, comm, opt).makespan);
}
BENCHMARK(BM_EventSim);

void BM_TCEGraphBuild(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(make_ccsd_t1().num_tasks());
}
BENCHMARK(BM_TCEGraphBuild);

}  // namespace
