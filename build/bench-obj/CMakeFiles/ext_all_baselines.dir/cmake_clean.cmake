file(REMOVE_RECURSE
  "../bench/ext_all_baselines"
  "../bench/ext_all_baselines.pdb"
  "CMakeFiles/ext_all_baselines.dir/ext_all_baselines.cpp.o"
  "CMakeFiles/ext_all_baselines.dir/ext_all_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_all_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
