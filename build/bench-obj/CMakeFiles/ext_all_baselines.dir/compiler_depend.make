# Empty compiler generated dependencies file for ext_all_baselines.
# This may be replaced when dependencies are built.
