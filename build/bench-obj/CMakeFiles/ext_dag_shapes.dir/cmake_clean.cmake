file(REMOVE_RECURSE
  "../bench/ext_dag_shapes"
  "../bench/ext_dag_shapes.pdb"
  "CMakeFiles/ext_dag_shapes.dir/ext_dag_shapes.cpp.o"
  "CMakeFiles/ext_dag_shapes.dir/ext_dag_shapes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dag_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
