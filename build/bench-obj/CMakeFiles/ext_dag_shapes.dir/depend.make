# Empty dependencies file for ext_dag_shapes.
# This may be replaced when dependencies are built.
