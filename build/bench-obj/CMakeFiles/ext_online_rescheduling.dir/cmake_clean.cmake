file(REMOVE_RECURSE
  "../bench/ext_online_rescheduling"
  "../bench/ext_online_rescheduling.pdb"
  "CMakeFiles/ext_online_rescheduling.dir/ext_online_rescheduling.cpp.o"
  "CMakeFiles/ext_online_rescheduling.dir/ext_online_rescheduling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_online_rescheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
