file(REMOVE_RECURSE
  "../bench/ext_search_quality"
  "../bench/ext_search_quality.pdb"
  "CMakeFiles/ext_search_quality.dir/ext_search_quality.cpp.o"
  "CMakeFiles/ext_search_quality.dir/ext_search_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_search_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
