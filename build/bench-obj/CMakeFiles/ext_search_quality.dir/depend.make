# Empty dependencies file for ext_search_quality.
# This may be replaced when dependencies are built.
