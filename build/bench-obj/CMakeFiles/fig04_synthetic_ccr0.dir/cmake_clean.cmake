file(REMOVE_RECURSE
  "../bench/fig04_synthetic_ccr0"
  "../bench/fig04_synthetic_ccr0.pdb"
  "CMakeFiles/fig04_synthetic_ccr0.dir/fig04_synthetic_ccr0.cpp.o"
  "CMakeFiles/fig04_synthetic_ccr0.dir/fig04_synthetic_ccr0.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_synthetic_ccr0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
