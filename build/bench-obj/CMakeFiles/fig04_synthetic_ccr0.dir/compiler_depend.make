# Empty compiler generated dependencies file for fig04_synthetic_ccr0.
# This may be replaced when dependencies are built.
