file(REMOVE_RECURSE
  "../bench/fig05_synthetic_ccr"
  "../bench/fig05_synthetic_ccr.pdb"
  "CMakeFiles/fig05_synthetic_ccr.dir/fig05_synthetic_ccr.cpp.o"
  "CMakeFiles/fig05_synthetic_ccr.dir/fig05_synthetic_ccr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_synthetic_ccr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
