# Empty dependencies file for fig05_synthetic_ccr.
# This may be replaced when dependencies are built.
