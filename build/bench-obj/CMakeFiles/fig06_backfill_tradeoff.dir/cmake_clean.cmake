file(REMOVE_RECURSE
  "../bench/fig06_backfill_tradeoff"
  "../bench/fig06_backfill_tradeoff.pdb"
  "CMakeFiles/fig06_backfill_tradeoff.dir/fig06_backfill_tradeoff.cpp.o"
  "CMakeFiles/fig06_backfill_tradeoff.dir/fig06_backfill_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_backfill_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
