# Empty compiler generated dependencies file for fig06_backfill_tradeoff.
# This may be replaced when dependencies are built.
