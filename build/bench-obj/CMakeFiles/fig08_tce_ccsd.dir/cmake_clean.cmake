file(REMOVE_RECURSE
  "../bench/fig08_tce_ccsd"
  "../bench/fig08_tce_ccsd.pdb"
  "CMakeFiles/fig08_tce_ccsd.dir/fig08_tce_ccsd.cpp.o"
  "CMakeFiles/fig08_tce_ccsd.dir/fig08_tce_ccsd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_tce_ccsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
