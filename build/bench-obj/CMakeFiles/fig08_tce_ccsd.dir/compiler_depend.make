# Empty compiler generated dependencies file for fig08_tce_ccsd.
# This may be replaced when dependencies are built.
