file(REMOVE_RECURSE
  "../bench/fig09_strassen"
  "../bench/fig09_strassen.pdb"
  "CMakeFiles/fig09_strassen.dir/fig09_strassen.cpp.o"
  "CMakeFiles/fig09_strassen.dir/fig09_strassen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_strassen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
