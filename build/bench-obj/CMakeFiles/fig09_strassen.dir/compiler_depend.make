# Empty compiler generated dependencies file for fig09_strassen.
# This may be replaced when dependencies are built.
