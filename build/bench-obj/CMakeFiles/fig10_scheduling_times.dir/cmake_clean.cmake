file(REMOVE_RECURSE
  "../bench/fig10_scheduling_times"
  "../bench/fig10_scheduling_times.pdb"
  "CMakeFiles/fig10_scheduling_times.dir/fig10_scheduling_times.cpp.o"
  "CMakeFiles/fig10_scheduling_times.dir/fig10_scheduling_times.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scheduling_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
