# Empty dependencies file for fig10_scheduling_times.
# This may be replaced when dependencies are built.
