file(REMOVE_RECURSE
  "../bench/fig11_actual_execution"
  "../bench/fig11_actual_execution.pdb"
  "CMakeFiles/fig11_actual_execution.dir/fig11_actual_execution.cpp.o"
  "CMakeFiles/fig11_actual_execution.dir/fig11_actual_execution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_actual_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
