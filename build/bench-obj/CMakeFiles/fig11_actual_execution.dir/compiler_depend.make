# Empty compiler generated dependencies file for fig11_actual_execution.
# This may be replaced when dependencies are built.
