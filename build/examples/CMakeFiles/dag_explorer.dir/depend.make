# Empty dependencies file for dag_explorer.
# This may be replaced when dependencies are built.
