file(REMOVE_RECURSE
  "CMakeFiles/online_runtime.dir/online_runtime.cpp.o"
  "CMakeFiles/online_runtime.dir/online_runtime.cpp.o.d"
  "online_runtime"
  "online_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
