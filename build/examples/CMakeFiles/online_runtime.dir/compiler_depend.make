# Empty compiler generated dependencies file for online_runtime.
# This may be replaced when dependencies are built.
