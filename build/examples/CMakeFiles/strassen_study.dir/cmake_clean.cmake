file(REMOVE_RECURSE
  "CMakeFiles/strassen_study.dir/strassen_study.cpp.o"
  "CMakeFiles/strassen_study.dir/strassen_study.cpp.o.d"
  "strassen_study"
  "strassen_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strassen_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
