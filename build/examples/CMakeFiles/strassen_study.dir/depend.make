# Empty dependencies file for strassen_study.
# This may be replaced when dependencies are built.
