file(REMOVE_RECURSE
  "CMakeFiles/tce_workflow.dir/tce_workflow.cpp.o"
  "CMakeFiles/tce_workflow.dir/tce_workflow.cpp.o.d"
  "tce_workflow"
  "tce_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tce_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
