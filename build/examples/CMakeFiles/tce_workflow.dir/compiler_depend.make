# Empty compiler generated dependencies file for tce_workflow.
# This may be replaced when dependencies are built.
