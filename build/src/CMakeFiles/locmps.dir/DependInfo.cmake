
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/processor_set.cpp" "src/CMakeFiles/locmps.dir/cluster/processor_set.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/cluster/processor_set.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/locmps.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/core/experiment.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/locmps.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/locmps.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/task_graph.cpp" "src/CMakeFiles/locmps.dir/graph/task_graph.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/graph/task_graph.cpp.o.d"
  "/root/repo/src/graph/transform.cpp" "src/CMakeFiles/locmps.dir/graph/transform.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/graph/transform.cpp.o.d"
  "/root/repo/src/network/block_cyclic.cpp" "src/CMakeFiles/locmps.dir/network/block_cyclic.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/network/block_cyclic.cpp.o.d"
  "/root/repo/src/network/comm_model.cpp" "src/CMakeFiles/locmps.dir/network/comm_model.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/network/comm_model.cpp.o.d"
  "/root/repo/src/schedule/event_sim.cpp" "src/CMakeFiles/locmps.dir/schedule/event_sim.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedule/event_sim.cpp.o.d"
  "/root/repo/src/schedule/gantt.cpp" "src/CMakeFiles/locmps.dir/schedule/gantt.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedule/gantt.cpp.o.d"
  "/root/repo/src/schedule/metrics.cpp" "src/CMakeFiles/locmps.dir/schedule/metrics.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedule/metrics.cpp.o.d"
  "/root/repo/src/schedule/schedule.cpp" "src/CMakeFiles/locmps.dir/schedule/schedule.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedule/schedule.cpp.o.d"
  "/root/repo/src/schedule/schedule_dag.cpp" "src/CMakeFiles/locmps.dir/schedule/schedule_dag.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedule/schedule_dag.cpp.o.d"
  "/root/repo/src/schedule/timeline.cpp" "src/CMakeFiles/locmps.dir/schedule/timeline.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedule/timeline.cpp.o.d"
  "/root/repo/src/schedule/trace_export.cpp" "src/CMakeFiles/locmps.dir/schedule/trace_export.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedule/trace_export.cpp.o.d"
  "/root/repo/src/schedulers/annealing.cpp" "src/CMakeFiles/locmps.dir/schedulers/annealing.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/annealing.cpp.o.d"
  "/root/repo/src/schedulers/cpa.cpp" "src/CMakeFiles/locmps.dir/schedulers/cpa.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/cpa.cpp.o.d"
  "/root/repo/src/schedulers/cpr.cpp" "src/CMakeFiles/locmps.dir/schedulers/cpr.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/cpr.cpp.o.d"
  "/root/repo/src/schedulers/data_parallel.cpp" "src/CMakeFiles/locmps.dir/schedulers/data_parallel.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/data_parallel.cpp.o.d"
  "/root/repo/src/schedulers/icaslb.cpp" "src/CMakeFiles/locmps.dir/schedulers/icaslb.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/icaslb.cpp.o.d"
  "/root/repo/src/schedulers/list_scheduler.cpp" "src/CMakeFiles/locmps.dir/schedulers/list_scheduler.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/list_scheduler.cpp.o.d"
  "/root/repo/src/schedulers/loc_mps.cpp" "src/CMakeFiles/locmps.dir/schedulers/loc_mps.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/loc_mps.cpp.o.d"
  "/root/repo/src/schedulers/locbs.cpp" "src/CMakeFiles/locmps.dir/schedulers/locbs.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/locbs.cpp.o.d"
  "/root/repo/src/schedulers/online.cpp" "src/CMakeFiles/locmps.dir/schedulers/online.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/online.cpp.o.d"
  "/root/repo/src/schedulers/registry.cpp" "src/CMakeFiles/locmps.dir/schedulers/registry.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/registry.cpp.o.d"
  "/root/repo/src/schedulers/task_parallel.cpp" "src/CMakeFiles/locmps.dir/schedulers/task_parallel.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/task_parallel.cpp.o.d"
  "/root/repo/src/schedulers/tsas.cpp" "src/CMakeFiles/locmps.dir/schedulers/tsas.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/tsas.cpp.o.d"
  "/root/repo/src/schedulers/twol.cpp" "src/CMakeFiles/locmps.dir/schedulers/twol.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/schedulers/twol.cpp.o.d"
  "/root/repo/src/speedup/amdahl.cpp" "src/CMakeFiles/locmps.dir/speedup/amdahl.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/speedup/amdahl.cpp.o.d"
  "/root/repo/src/speedup/downey.cpp" "src/CMakeFiles/locmps.dir/speedup/downey.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/speedup/downey.cpp.o.d"
  "/root/repo/src/speedup/profile.cpp" "src/CMakeFiles/locmps.dir/speedup/profile.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/speedup/profile.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/locmps.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/locmps.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/locmps.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/util/table.cpp.o.d"
  "/root/repo/src/workloads/strassen.cpp" "src/CMakeFiles/locmps.dir/workloads/strassen.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/workloads/strassen.cpp.o.d"
  "/root/repo/src/workloads/structured.cpp" "src/CMakeFiles/locmps.dir/workloads/structured.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/workloads/structured.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/CMakeFiles/locmps.dir/workloads/synthetic.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/workloads/synthetic.cpp.o.d"
  "/root/repo/src/workloads/tce.cpp" "src/CMakeFiles/locmps.dir/workloads/tce.cpp.o" "gcc" "src/CMakeFiles/locmps.dir/workloads/tce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
