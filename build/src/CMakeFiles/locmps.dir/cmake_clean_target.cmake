file(REMOVE_RECURSE
  "liblocmps.a"
)
