# Empty dependencies file for locmps.
# This may be replaced when dependencies are built.
