
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_algorithms.cpp" "tests/CMakeFiles/locmps_tests.dir/test_algorithms.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_algorithms.cpp.o.d"
  "/root/repo/tests/test_amdahl.cpp" "tests/CMakeFiles/locmps_tests.dir/test_amdahl.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_amdahl.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/locmps_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_block_cyclic.cpp" "tests/CMakeFiles/locmps_tests.dir/test_block_cyclic.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_block_cyclic.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/locmps_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_comm_model.cpp" "tests/CMakeFiles/locmps_tests.dir/test_comm_model.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_comm_model.cpp.o.d"
  "/root/repo/tests/test_downey.cpp" "tests/CMakeFiles/locmps_tests.dir/test_downey.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_downey.cpp.o.d"
  "/root/repo/tests/test_event_sim.cpp" "tests/CMakeFiles/locmps_tests.dir/test_event_sim.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_event_sim.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/locmps_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_gantt.cpp" "tests/CMakeFiles/locmps_tests.dir/test_gantt.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_gantt.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/locmps_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_loc_mps.cpp" "tests/CMakeFiles/locmps_tests.dir/test_loc_mps.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_loc_mps.cpp.o.d"
  "/root/repo/tests/test_locbs.cpp" "tests/CMakeFiles/locmps_tests.dir/test_locbs.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_locbs.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/locmps_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_online.cpp" "tests/CMakeFiles/locmps_tests.dir/test_online.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_online.cpp.o.d"
  "/root/repo/tests/test_paper_examples.cpp" "tests/CMakeFiles/locmps_tests.dir/test_paper_examples.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_paper_examples.cpp.o.d"
  "/root/repo/tests/test_processor_set.cpp" "tests/CMakeFiles/locmps_tests.dir/test_processor_set.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_processor_set.cpp.o.d"
  "/root/repo/tests/test_profile.cpp" "tests/CMakeFiles/locmps_tests.dir/test_profile.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_profile.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/locmps_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_quality.cpp" "tests/CMakeFiles/locmps_tests.dir/test_quality.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_quality.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/locmps_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/locmps_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_schedule_dag.cpp" "tests/CMakeFiles/locmps_tests.dir/test_schedule_dag.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_schedule_dag.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/locmps_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_structured.cpp" "tests/CMakeFiles/locmps_tests.dir/test_structured.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_structured.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/locmps_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_task_graph.cpp" "tests/CMakeFiles/locmps_tests.dir/test_task_graph.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_task_graph.cpp.o.d"
  "/root/repo/tests/test_timeline.cpp" "tests/CMakeFiles/locmps_tests.dir/test_timeline.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_timeline.cpp.o.d"
  "/root/repo/tests/test_trace_export.cpp" "tests/CMakeFiles/locmps_tests.dir/test_trace_export.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_trace_export.cpp.o.d"
  "/root/repo/tests/test_transform.cpp" "tests/CMakeFiles/locmps_tests.dir/test_transform.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_transform.cpp.o.d"
  "/root/repo/tests/test_tsas_twol.cpp" "tests/CMakeFiles/locmps_tests.dir/test_tsas_twol.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_tsas_twol.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/locmps_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/locmps_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/locmps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
