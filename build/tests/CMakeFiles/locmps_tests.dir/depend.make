# Empty dependencies file for locmps_tests.
# This may be replaced when dependencies are built.
