/// DAG explorer: generate any of the library's workloads, print its
/// structural statistics, and export it as Graphviz DOT and in the locmps
/// text format (Fig 7 of the paper shows exactly these DAGs).
///
///   $ ./dag_explorer tce            # CCSD T1 (writes tce.dot / tce.tg)
///   $ ./dag_explorer strassen 4096 2
///   $ ./dag_explorer synthetic 42   # one random TGFF-style graph
///
/// DOT files render with: dot -Tpng tce.dot -o tce.png

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/locmps.hpp"

using namespace locmps;

namespace {

void describe(const TaskGraph& g, const std::string& name) {
  std::cout << name << ": " << g.num_tasks() << " tasks, " << g.num_edges()
            << " edges\n";
  std::cout << "  sources: " << g.sources().size()
            << ", sinks: " << g.sinks().size() << "\n";
  std::cout << "  sequential work: " << fmt(g.total_serial_work(), 2)
            << " s\n";
  double volume = 0.0;
  for (std::size_t e = 0; e < g.num_edges(); ++e)
    volume += g.edge(static_cast<EdgeId>(e)).volume_bytes;
  std::cout << "  total data on edges: " << fmt(volume / 1e6, 1) << " MB\n";

  const ConcurrencyAnalysis conc(g);
  double max_cr = 0.0;
  for (TaskId t : g.task_ids()) max_cr = std::max(max_cr, conc.ratio(t));
  std::cout << "  max concurrency ratio: " << fmt(max_cr, 2) << "\n";

  const Levels lv = compute_levels(
      g, [&](TaskId t) { return g.task(t).profile.serial_time(); },
      [](EdgeId) { return 0.0; });
  std::cout << "  serial critical path: "
            << fmt(lv.critical_path_length(), 2) << " s (parallelism "
            << fmt(g.total_serial_work() / lv.critical_path_length(), 2)
            << "x)\n";

  std::ofstream dot(name + ".dot");
  dot << to_dot(g, name);
  std::ofstream tg(name + ".tg");
  write_text(tg, g);
  std::cout << "  wrote " << name << ".dot and " << name << ".tg\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kind = argc > 1 ? argv[1] : "tce";
  if (kind == "tce") {
    TCEParams p;
    if (argc > 2) p.occupied = std::atoi(argv[2]);
    if (argc > 3) p.virt = std::atoi(argv[3]);
    describe(make_ccsd_t1(p), "tce");
  } else if (kind == "strassen") {
    StrassenParams p;
    if (argc > 2) p.n = std::atol(argv[2]);
    if (argc > 3) p.levels = std::atoi(argv[3]);
    describe(make_strassen(p), "strassen");
  } else if (kind == "synthetic") {
    SyntheticParams p;
    p.ccr = 0.5;
    Rng rng(argc > 2 ? std::atol(argv[2]) : 1);
    describe(make_synthetic_dag(p, rng), "synthetic");
  } else {
    std::cerr << "usage: dag_explorer [tce|strassen|synthetic] [args...]\n";
    return 1;
  }
  return 0;
}
