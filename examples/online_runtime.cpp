/// Online runtime demo: the paper's future-work scenario. A CCSD-T1
/// computation is planned with LoC-MPS, executed with noisy runtime
/// estimates, and replanned on the fly whenever reality diverges from the
/// plan. Shows the replan triggers and the static-vs-online makespans.
///
///   $ ./online_runtime [noise] [threshold] [P]
///
/// Defaults: noise=0.4, threshold=0.15, P=16.

#include <cstdlib>
#include <iostream>

#include "core/locmps.hpp"

using namespace locmps;

int main(int argc, char** argv) {
  OnlineOptions opt;
  opt.runtime_noise = argc > 1 ? std::atof(argv[1]) : 0.4;
  opt.replan_threshold = argc > 2 ? std::atof(argv[2]) : 0.15;
  const std::size_t P = argc > 3 ? std::atoi(argv[3]) : 16;

  TCEParams tp;
  tp.max_procs = P;
  const TaskGraph g = make_ccsd_t1(tp);
  const Cluster cluster(P, 250e6);

  std::cout << "Online mixed-parallel runtime on CCSD T1 (" << g.num_tasks()
            << " tasks, P=" << P << ")\n"
            << "runtime noise +/-" << fmt(100 * opt.runtime_noise, 0)
            << "%, replan threshold " << fmt(100 * opt.replan_threshold, 0)
            << "%\n\n";

  Table t({"seed", "planned", "static-run", "online-run", "gain", "replans"});
  double stat_sum = 0.0, onl_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    opt.seed = seed * 10007;
    const OnlineResult r = run_online(g, cluster, opt);
    stat_sum += r.static_makespan;
    onl_sum += r.makespan;
    t.add_row({std::to_string(seed), fmt(r.planned_makespan, 4),
               fmt(r.static_makespan, 4), fmt(r.makespan, 4),
               fmt(r.static_makespan / r.makespan, 3),
               std::to_string(r.replans)});
  }
  t.print(std::cout);
  std::cout << "\nmean gain from online replanning: "
            << fmt(stat_sum / onl_sum, 3) << "x\n";
  return 0;
}
