/// Quickstart: build a small mixed-parallel workflow by hand, schedule it
/// with LoC-MPS, and inspect the result.
///
///   $ ./quickstart
///
/// The workflow is a fork-join: a preprocessing stage fans out into three
/// parallel analysis kernels of different scalability, whose results are
/// merged. We compare LoC-MPS against the pure task- and data-parallel
/// schedules and render the Gantt chart.

#include <iostream>

#include "core/locmps.hpp"

using namespace locmps;

int main() {
  // --- 1. Describe the tasks: name + execution-time profile. -------------
  // Profiles can come from measurements (explicit tables) or models.
  TaskGraph g;
  const DowneyModel scalable(32.0, 0.5);   // scales to ~32 processors
  const DowneyModel moderate(6.0, 1.0);    // saturates around 6
  const AmdahlModel serial_ish(0.4, 0.0);  // 40% serial fraction

  const std::size_t P = 8;
  const TaskId prep = g.add_task("prep", ExecutionProfile(moderate, 20.0, P));
  const TaskId fft = g.add_task("fft", ExecutionProfile(scalable, 60.0, P));
  const TaskId stat = g.add_task("stat", ExecutionProfile(moderate, 25.0, P));
  const TaskId filt =
      g.add_task("filt", ExecutionProfile(serial_ish, 15.0, P));
  const TaskId merge = g.add_task("merge", ExecutionProfile(moderate, 10.0, P));

  // --- 2. Data dependences, with the bytes each edge carries. ------------
  const double MB = 1e6;
  g.add_edge(prep, fft, 40 * MB);
  g.add_edge(prep, stat, 10 * MB);
  g.add_edge(prep, filt, 10 * MB);
  g.add_edge(fft, merge, 20 * MB);
  g.add_edge(stat, merge, 2 * MB);
  g.add_edge(filt, merge, 2 * MB);

  // --- 3. Describe the platform and schedule. ----------------------------
  const Cluster cluster(P, kFastEthernetBytesPerSec);
  std::cout << "Workflow with " << g.num_tasks() << " tasks on " << P
            << " processors (100 Mbps interconnect)\n\n";

  for (const auto& scheme : {"loc-mps", "task", "data"}) {
    const SchemeRun run = evaluate_scheme(scheme, g, cluster);
    std::cout << run.scheme << ": makespan " << fmt(run.makespan, 2)
              << " s, allocation {";
    for (TaskId t : g.task_ids())
      std::cout << g.task(t).name << ":" << run.allocation[t]
                << (t + 1 < g.num_tasks() ? ", " : "");
    std::cout << "}\n";
    if (std::string(scheme) == "loc-mps") {
      std::cout << "\n" << render_gantt(g, run.schedule) << "\n";
    }
  }

  // --- 4. The schedule is a plain data structure: inspect it freely. -----
  const SchemeRun best = evaluate_scheme("loc-mps", g, cluster);
  const Placement& p_fft = best.schedule.at(fft);
  std::cout << "fft runs on " << p_fft.procs.to_string() << " during ["
            << fmt(p_fft.start, 2) << ", " << fmt(p_fft.finish, 2) << ")\n";
  std::cout << "schedule utilization: "
            << fmt(100.0 * best.schedule.utilization(), 1) << "%\n";
  return 0;
}
