/// schedule_tool: command-line front end to the library — load (or
/// generate) a task graph, schedule it with any registered scheme, and
/// inspect the result.
///
///   $ ./schedule_tool --graph workflow.tg --scheme loc-mps --procs 32
///   $ ./schedule_tool --workload tce --scheme cpa --procs 16 --no-overlap
///   $ ./schedule_tool --workload strassen --procs 64 --gantt --metrics
///
/// Options:
///   --graph FILE      load a task graph in the locmps text format
///   --workload NAME   or generate one: tce | tce2 | strassen | synthetic
///   --scheme NAME     scheduling scheme (default loc-mps); "all" compares
///   --procs P         cluster size (default 16)
///   --bandwidth MBps  link bandwidth in MB/s (default 12.5 = 100 Mbps)
///   --no-overlap      platform cannot overlap compute and communication
///   --seed S          seed for synthetic generation (default 1)
///   --gantt           render the ASCII Gantt chart
///   --metrics         print schedule diagnostics
///   --trace FILE      export the schedule as Chrome-trace JSON
///   --coarsen         merge linear chains before scheduling
///   --save FILE       write the generated graph in text format

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/locmps.hpp"

using namespace locmps;

namespace {

[[noreturn]] void usage(const char* why) {
  std::cerr << "schedule_tool: " << why
            << "\nsee the header of examples/schedule_tool.cpp for usage\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_file, workload, scheme = "loc-mps", save_file;
  std::string trace_file;
  std::size_t procs = 16;
  double bandwidth = kFastEthernetBytesPerSec;
  bool overlap = true, gantt = false, metrics = false, coarsen = false;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--graph") graph_file = next();
    else if (a == "--workload") workload = next();
    else if (a == "--scheme") scheme = next();
    else if (a == "--procs") procs = std::stoul(next());
    else if (a == "--bandwidth") bandwidth = std::stod(next()) * 1e6;
    else if (a == "--no-overlap") overlap = false;
    else if (a == "--seed") seed = std::stoull(next());
    else if (a == "--gantt") gantt = true;
    else if (a == "--metrics") metrics = true;
    else if (a == "--trace") trace_file = next();
    else if (a == "--coarsen") coarsen = true;
    else if (a == "--save") save_file = next();
    else usage(("unknown option " + a).c_str());
  }
  if (graph_file.empty() && workload.empty()) workload = "synthetic";

  // --- Obtain the task graph. ---------------------------------------------
  TaskGraph g;
  if (!graph_file.empty()) {
    std::ifstream in(graph_file);
    if (!in) usage(("cannot open " + graph_file).c_str());
    g = read_text(in);
  } else if (workload == "tce") {
    TCEParams p;
    p.max_procs = procs;
    g = make_ccsd_t1(p);
  } else if (workload == "tce2") {
    TCEParams p;
    p.max_procs = procs;
    g = make_ccsd_t2(p);
  } else if (workload == "strassen") {
    StrassenParams p;
    p.max_procs = procs;
    g = make_strassen(p);
  } else if (workload == "synthetic") {
    SyntheticParams p;
    p.ccr = 0.5;
    p.max_procs = procs;
    Rng rng(seed);
    g = make_synthetic_dag(p, rng);
  } else {
    usage(("unknown workload " + workload).c_str());
  }
  if (coarsen) {
    const Coarsening c = coarsen_chains(g);
    std::cout << "coarsened " << g.num_tasks() << " tasks into "
              << c.graph.num_tasks() << " composites\n";
    g = c.graph;
  }
  if (!save_file.empty()) {
    std::ofstream out(save_file);
    write_text(out, g);
    std::cout << "wrote " << save_file << "\n";
  }

  const Cluster cluster(procs, bandwidth, overlap);
  const CommModel comm(cluster);
  std::cout << "graph: " << g.num_tasks() << " tasks, " << g.num_edges()
            << " edges; cluster: P=" << procs << ", "
            << fmt(bandwidth / 1e6, 1) << " MB/s, "
            << (overlap ? "overlap" : "no overlap") << "\n\n";

  // --- Schedule. ------------------------------------------------------------
  const std::vector<std::string> schemes =
      scheme == "all" ? paper_schemes() : std::vector<std::string>{scheme};
  for (const auto& s : schemes) {
    const SchemeRun run = evaluate_scheme(s, g, cluster);
    std::cout << run.scheme << ": makespan " << fmt(run.makespan, 4)
              << " s (planned in " << fmt(run.scheduling_seconds * 1e3, 2)
              << " ms)\n";
    const std::string diag = run.schedule.validate(g, comm);
    if (!diag.empty()) std::cout << "  VALIDATION FAILED: " << diag << "\n";
    if (metrics)
      std::cout << to_string(compute_metrics(g, run.schedule, comm));
    if (gantt) std::cout << render_gantt(g, run.schedule);
    if (!trace_file.empty()) {
      std::ofstream tr(schemes.size() > 1 ? s + "_" + trace_file
                                          : trace_file);
      write_chrome_trace(tr, g, run.schedule);
      std::cout << "  trace written\n";
    }
    std::cout << "\n";
  }
  return 0;
}
