/// Strassen study: how problem size and recursion depth change the best
/// mix of task and data parallelism (the paper's second application,
/// Fig 7b / Fig 9).
///
///   $ ./strassen_study [N] [levels] [P]
///
/// Defaults: N=1024, levels=1, P=16. Sweeps the schemes over the matrix
/// size, then shows a two-level recursive decomposition.

#include <cstdlib>
#include <iostream>

#include "core/locmps.hpp"

using namespace locmps;

namespace {

constexpr double kMyrinetBps = 2e9 / 8.0;

void study(std::size_t n, std::size_t levels, std::size_t P) {
  StrassenParams sp;
  sp.n = n;
  sp.levels = levels;
  sp.max_procs = P;
  const TaskGraph g = make_strassen(sp);
  const Cluster cluster(P, kMyrinetBps);
  std::cout << "\nStrassen " << n << "x" << n << ", " << levels
            << " level(s): " << g.num_tasks() << " tasks, " << g.num_edges()
            << " edges, P=" << P << "\n";
  Table t({"scheme", "makespan(s)", "vs loc-mps"});
  double ref = 0.0;
  for (const auto& scheme : paper_schemes()) {
    const SchemeRun run = evaluate_scheme(scheme, g, cluster);
    if (scheme == std::string("loc-mps")) ref = run.makespan;
    t.add_row({run.scheme, fmt(run.makespan, 3), fmt(ref / run.makespan, 3)});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::atol(argv[1]) : 1024;
  const std::size_t levels = argc > 2 ? std::atoi(argv[2]) : 1;
  const std::size_t P = argc > 3 ? std::atoi(argv[3]) : 16;

  std::cout << "Mixed-parallel Strassen matrix multiplication\n";
  study(n, levels, P);
  // The paper's 16x problem-size comparison (Fig 9a vs 9b).
  if (argc <= 1) {
    study(4096, 1, P);
    // Deeper recursion exposes more task parallelism from the same flops.
    study(1024, 2, P);
  }
  return 0;
}
