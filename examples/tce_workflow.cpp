/// TCE workflow study: schedule the CCSD T1 tensor-contraction DAG (the
/// paper's first application, Fig 7a) and examine how LoC-MPS mixes task
/// and data parallelism.
///
///   $ ./tce_workflow [occupied] [virtual] [P]
///
/// Defaults: o=32, v=128, P=32. Prints the DAG inventory, the per-scheme
/// makespans on an overlap and a no-overlap platform, and LoC-MPS's
/// allocation decisions (which contractions it widens, which stay narrow).

#include <cstdlib>
#include <iostream>

#include "core/locmps.hpp"

using namespace locmps;

int main(int argc, char** argv) {
  TCEParams tp;
  if (argc > 1) tp.occupied = std::atoi(argv[1]);
  if (argc > 2) tp.virt = std::atoi(argv[2]);
  const std::size_t P = argc > 3 ? std::atoi(argv[3]) : 32;
  tp.max_procs = P;

  const TaskGraph g = make_ccsd_t1(tp);
  std::cout << "CCSD T1 task graph (o=" << tp.occupied << ", v=" << tp.virt
            << "): " << g.num_tasks() << " tasks, " << g.num_edges()
            << " edges, " << fmt(g.total_serial_work(), 1)
            << " s of sequential work\n\n";

  std::cout << "Contraction inventory (serial time / speedup on " << P
            << " procs):\n";
  for (TaskId t : g.task_ids()) {
    const auto& prof = g.task(t).profile;
    std::cout << "  " << g.task(t).name << ": " << fmt(prof.serial_time(), 3)
              << " s, S(" << P << ")=" << fmt(prof.speedup(P), 1)
              << ", Pbest=" << prof.pbest() << "\n";
  }

  constexpr double kMyrinetBps = 2e9 / 8.0;
  for (const bool overlap : {true, false}) {
    const Cluster cluster(P, kMyrinetBps, overlap);
    std::cout << "\n--- " << (overlap ? "overlap" : "no-overlap")
              << " platform, P=" << P << " ---\n";
    Table t({"scheme", "makespan(s)", "sched(s)", "utilization"});
    for (const auto& scheme : paper_schemes()) {
      const SchemeRun run = evaluate_scheme(scheme, g, cluster);
      t.add_row({run.scheme, fmt(run.makespan, 3),
                 fmt(run.scheduling_seconds, 4),
                 fmt(100.0 * run.schedule.utilization(), 1) + "%"});
    }
    t.print(std::cout);
  }

  const Cluster cluster(P, kMyrinetBps);
  const SchemeRun best = evaluate_scheme("loc-mps", g, cluster);
  std::cout << "\nLoC-MPS allocation (tasks widened beyond 1 processor):\n";
  for (TaskId t : g.task_ids())
    if (best.allocation[t] > 1)
      std::cout << "  " << g.task(t).name << " -> " << best.allocation[t]
                << " procs\n";
  std::cout << "\n" << render_gantt(g, best.schedule);
  return 0;
}
