#!/usr/bin/env python3
"""Compare two BENCH_*.json telemetry files and flag regressions.

Usage:
    scripts/bench_diff.py BASELINE.json CANDIDATE.json [options]

Options:
    --threshold PCT   relative change (percent) beyond which a metric
                      counts as a regression (default 3.0)
    --metric NAME     statistic to compare: median (default) or mean
    --sched-threshold PCT
                      separate threshold for scheduling time, which is
                      wall-clock and noisier (default 25.0)
    --quiet           print only regressions and the summary line

Semantics: results are joined on (panel label, scheme, procs). For each
joined row, `makespan` going up or `relative` (performance relative to the
reference scheme: higher is better) going down beyond the threshold is a
regression; the comparison is additionally suppressed when the candidate
value still lies inside the baseline's order-statistic confidence interval
(a shift indistinguishable from sampling noise is not actionable).
`sched_seconds` regressions use --sched-threshold. Exits 1 when any
regression is found, 2 on malformed or unreadable input, 3 when the
baseline file does not exist (commit one first), else 0.

Auto-explanation: with --explain-inspect and --explain-baseline-trace
set, a tripped gate additionally re-runs the pinned fig06 workload
through `locmps-inspect --obs-out`, diffs the fresh decision trace
against the committed baseline trace, and writes the ranked
attribution artifact (attribution.json) into --explain-out — so a
failed gate ships with the decisions that caused it, not just a
number (docs/observability.md, "Provenance & run diffing").
Explanation failures print a WARNING and never mask the exit code.

Speedup gates: `--speedup-gate 'BASE_LABEL::FAST_LABEL::METRIC::FACTOR'`
(repeatable) asserts an intra-document ratio on the CANDIDATE file: for
every (scheme, procs) row present in both named panels, the gate
computes BASE / FAST of the chosen metric's statistic and requires the
ratio at the largest joined processor count to be >= FACTOR. Because
both sides come from the same run on the same machine, the gate is
machine-independent — it ratchets an algorithmic speedup (e.g. the
incremental-replanning panel of fig10 against its from-scratch
companion), not absolute wall-clock. A failed gate exits 1 like a
regression.

Phase-budget profiles: when both inputs are BENCH_*_profile.json
documents (`"kind": "profile"`, written by a bench binary's
`--profile-out`), rows are span paths instead. `wall_s` and `cpu_s` use
--sched-threshold (wall-clock noise) with the same CI suppression;
`alloc_bytes` and `allocs` are deterministic scalars compared at
--threshold with no suppression (they are only compared when both runs
had allocation tracking compiled in). A changed span `count` is
reported as a warning — counts are deterministic, so a change means the
planner's control flow changed. Mixing a profile document with a
telemetry document is a usage error (exit 2).
"""

import argparse
import json
import os
import subprocess
import sys

# Workload pinned to the committed fig06 baseline trace
# (bench/baselines/fig06_decision_trace.jsonl): regenerate the trace with
# these exact locmps-inspect arguments when refreshing the baseline.
DEFAULT_EXPLAIN_WORKLOAD = "--seed 20060901 --ccr 0.5 --procs 16"


def auto_explain(args):
    """On a tripped gate: rerun the pinned workload, diff its decision
    trace against the committed baseline trace, and drop the ranked
    attribution artifact next to the gate output. Never raises and never
    changes the caller's exit code."""
    if not getattr(args, "explain_inspect", None) or \
            not getattr(args, "explain_baseline_trace", None):
        return
    try:
        outdir = args.explain_out or "."
        os.makedirs(outdir, exist_ok=True)
        cand_trace = os.path.join(outdir, "candidate_trace.jsonl")
        attribution = os.path.join(outdir, "attribution.json")
        workload = (args.explain_workload or DEFAULT_EXPLAIN_WORKLOAD).split()
        run = subprocess.run(
            [args.explain_inspect, *workload, "--quiet",
             "--obs-out", cand_trace],
            capture_output=True, text=True, timeout=600)
        if run.returncode != 0:
            print("bench_diff: WARNING: auto-explanation trace run failed "
                  f"(exit {run.returncode}): {run.stderr.strip()}",
                  file=sys.stderr)
            return
        run = subprocess.run(
            [args.explain_inspect, *workload,
             "--diff", args.explain_baseline_trace, cand_trace,
             "--diff-json", attribution],
            capture_output=True, text=True, timeout=600)
        if run.returncode != 0:
            print("bench_diff: WARNING: auto-explanation diff failed "
                  f"(exit {run.returncode}): {run.stderr.strip()}",
                  file=sys.stderr)
            return
        print("bench_diff: gate tripped; decision attribution written to "
              f"{attribution}")
        if run.stdout:
            sys.stdout.write(run.stdout)
    except Exception as e:  # never mask the gate's own exit code
        print(f"bench_diff: WARNING: auto-explanation failed: {e}",
              file=sys.stderr)


def load(path, role="candidate"):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        if role == "baseline":
            print(f"bench_diff: baseline {path} does not exist.\n"
                  f"  Run the bench with `--bench-out {path}` and commit "
                  "the result to establish a baseline.", file=sys.stderr)
            sys.exit(3)
        print(f"bench_diff: cannot read {path}: file not found",
              file=sys.stderr)
        sys.exit(2)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def rows(doc):
    """Flattens a telemetry document to {(panel, scheme, procs): result}."""
    out = {}
    for panel in doc.get("panels", []):
        for r in panel.get("results", []):
            try:
                out[(panel.get("label", ""), r["scheme"], r["procs"])] = r
            except (KeyError, TypeError):
                print("bench_diff: malformed result row (missing "
                      f"scheme/procs) in panel {panel.get('label', '?')!r}",
                      file=sys.stderr)
                sys.exit(2)
    return out


def phase_rows(doc):
    """Flattens a profile document to {span path: phase row}."""
    out = {}
    for ph in doc.get("phases", []):
        try:
            out[ph["path"]] = ph
        except (KeyError, TypeError):
            print("bench_diff: malformed phase row (missing path)",
                  file=sys.stderr)
            sys.exit(2)
    return out


def pct_change(base, cand):
    if base == 0:
        return 0.0 if cand == 0 else float("inf")
    return 100.0 * (cand - base) / base


def inside_ci(value, stat):
    # A stat without a confidence interval cannot justify suppression.
    if "ci_lo" not in stat or "ci_hi" not in stat:
        return False
    return stat["ci_lo"] <= value <= stat["ci_hi"]


def check_speedup_gates(cand_doc, specs, stat):
    """Intra-document speedup ratchets on the candidate file. Returns the
    list of failure lines (empty when every gate holds); exits 2 on a
    malformed spec or a gate that matches no rows."""
    failures = []
    cand = rows(cand_doc)
    for spec in specs:
        parts = spec.split("::")
        if len(parts) != 4:
            print(f"bench_diff: malformed --speedup-gate {spec!r} "
                  "(want BASE_LABEL::FAST_LABEL::METRIC::FACTOR)",
                  file=sys.stderr)
            sys.exit(2)
        base_label, fast_label, metric, factor_s = parts
        try:
            factor = float(factor_s)
        except ValueError:
            print(f"bench_diff: bad factor {factor_s!r} in --speedup-gate",
                  file=sys.stderr)
            sys.exit(2)
        base_rows = {(s, p): r for (lbl, s, p), r in cand.items()
                     if lbl == base_label}
        fast_rows = {(s, p): r for (lbl, s, p), r in cand.items()
                     if lbl == fast_label}
        joined = sorted(set(base_rows) & set(fast_rows))
        if not joined:
            print(f"bench_diff: --speedup-gate {spec!r} matches no "
                  f"(scheme, procs) rows shared by panels "
                  f"{base_label!r} and {fast_label!r}", file=sys.stderr)
            sys.exit(2)
        largest = max(p for (_, p) in joined)
        for key in joined:
            b, f = base_rows[key], fast_rows[key]
            if metric not in b or metric not in f:
                print(f"bench_diff: metric {metric!r} missing from a "
                      f"--speedup-gate row {key}", file=sys.stderr)
                sys.exit(2)
            try:
                bval, fval = b[metric][stat], f[metric][stat]
            except (KeyError, TypeError):
                print(f"bench_diff: {metric} in {key} lacks the "
                      f"{stat!r} statistic", file=sys.stderr)
                sys.exit(2)
            ratio = bval / fval if fval > 0 else float("inf")
            gated = key[1] == largest
            line = (f"{base_label!r} / {fast_label!r} / {key[0]} / "
                    f"P={key[1]} / {metric}: {bval:.6g} / {fval:.6g} = "
                    f"{ratio:.2f}x (need >= {factor}x"
                    f"{' at largest P' if not gated else ''})")
            if gated and ratio < factor:
                failures.append(line)
            else:
                print(f"  {'gate   ' if gated else 'info   '}{line}")
    return failures


def diff_profiles(base_doc, cand_doc, args):
    """Compares two phase-budget profile documents and exits."""
    base, cand = phase_rows(base_doc), phase_rows(cand_doc)
    if not base or not cand:
        print("bench_diff: no phases in one of the inputs", file=sys.stderr)
        sys.exit(2)

    for field in ("scheme", "tasks", "procs"):
        if base_doc.get(field) != cand_doc.get(field):
            print(f"bench_diff: WARNING: {field} differs (baseline "
                  f"{base_doc.get(field)}, candidate "
                  f"{cand_doc.get(field)}); deltas may not be comparable")

    alloc_ok = (base_doc.get("alloc_tracking", False)
                and cand_doc.get("alloc_tracking", False))
    if not alloc_ok:
        print("bench_diff: allocation tracking off in at least one run; "
              "skipping alloc_bytes/allocs comparisons")

    # (metric key, is stat dict, threshold). Wall/CPU are wall-clock noisy
    # -> --sched-threshold + CI suppression; allocation columns are
    # deterministic -> the tight --threshold, no suppression.
    checks = [
        ("wall_s", True, args.sched_threshold),
        ("cpu_s", True, args.sched_threshold),
    ]
    if alloc_ok:
        checks += [
            ("alloc_bytes", False, args.threshold),
            ("allocs", False, args.threshold),
        ]
    regressions, improvements, warnings, compared = [], [], [], 0
    for path in sorted(set(base) & set(cand)):
        b, c = base[path], cand[path]
        if b.get("count") != c.get("count"):
            warnings.append(
                f"{path}: span count changed {b.get('count')} -> "
                f"{c.get('count')} (planner control flow changed)")
        for metric, is_stat, threshold in checks:
            if metric not in b or metric not in c:
                continue
            if is_stat:
                try:
                    bval = b[metric][args.metric]
                    cval = c[metric][args.metric]
                except (KeyError, TypeError):
                    print(f"bench_diff: {metric} in {path} lacks the "
                          f"{args.metric!r} statistic", file=sys.stderr)
                    sys.exit(2)
                suppressed = inside_ci(cval, b[metric])
            else:
                bval, cval = b[metric], c[metric]
                suppressed = False
            compared += 1
            delta = pct_change(bval, cval)
            line = f"{path} / {metric}: {bval:.6g} -> {cval:.6g} ({delta:+.2f}%)"
            if delta > threshold and not suppressed:
                regressions.append(line)
            elif delta < -threshold:
                improvements.append(line)
            elif not args.quiet:
                print(f"  ok     {line}")

    for line in improvements:
        print(f"  better {line}")
    for line in warnings:
        print(f"  NOTE   {line}")
    for line in regressions:
        print(f"  WORSE  {line}")

    missing = sorted(set(base) - set(cand))
    if missing:
        print(f"bench_diff: WARNING: {len(missing)} baseline span path(s) "
              f"missing from candidate (first: {missing[0]})")

    print(f"bench_diff: {compared} phase comparisons, "
          f"{len(improvements)} improvement(s), "
          f"{len(regressions)} regression(s), {len(warnings)} count "
          f"change(s) (threshold {args.threshold}%/"
          f"{args.sched_threshold}% on {args.metric})")
    if regressions:
        auto_explain(args)
    sys.exit(1 if regressions else 0)


def main():
    ap = argparse.ArgumentParser(
        description="Compare two BENCH_*.json telemetry files.")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=3.0)
    ap.add_argument("--metric", choices=("median", "mean"), default="median")
    ap.add_argument("--sched-threshold", type=float, default=25.0)
    ap.add_argument("--quiet", action="store_true")
    ap.add_argument("--explain-inspect", metavar="PATH", default=None,
                    help="locmps-inspect binary used to auto-explain a "
                         "tripped gate")
    ap.add_argument("--explain-baseline-trace", metavar="PATH", default=None,
                    help="committed baseline decision trace to diff against")
    ap.add_argument("--explain-out", metavar="DIR", default=None,
                    help="directory for candidate_trace.jsonl and "
                         "attribution.json (default: cwd)")
    ap.add_argument("--explain-workload", metavar="ARGS", default=None,
                    help="locmps-inspect workload arguments "
                         f"(default: {DEFAULT_EXPLAIN_WORKLOAD!r})")
    ap.add_argument("--speedup-gate", action="append", default=[],
                    metavar="BASE_LABEL::FAST_LABEL::METRIC::FACTOR",
                    help="require candidate panel BASE/FAST metric ratio "
                         ">= FACTOR at the largest joined processor count "
                         "(intra-document, machine-independent; "
                         "repeatable)")
    args = ap.parse_args()

    base_doc = load(args.baseline, role="baseline")
    cand_doc = load(args.candidate)

    print(f"baseline : {args.baseline} "
          f"(git {base_doc.get('git_sha', '?')}, "
          f"{base_doc.get('timestamp', '?')})")
    print(f"candidate: {args.candidate} "
          f"(git {cand_doc.get('git_sha', '?')}, "
          f"{cand_doc.get('timestamp', '?')})")

    base_prof = base_doc.get("kind") == "profile" or "phases" in base_doc
    cand_prof = cand_doc.get("kind") == "profile" or "phases" in cand_doc
    if base_prof != cand_prof:
        print("bench_diff: cannot mix a phase-budget profile with panel "
              "telemetry", file=sys.stderr)
        sys.exit(2)
    if base_prof:
        if args.speedup_gate:
            print("bench_diff: --speedup-gate applies to panel telemetry, "
                  "not phase-budget profiles", file=sys.stderr)
            sys.exit(2)
        diff_profiles(base_doc, cand_doc, args)
        return  # diff_profiles exits

    base, cand = rows(base_doc), rows(cand_doc)
    if not base or not cand:
        print("bench_diff: no results in one of the inputs", file=sys.stderr)
        sys.exit(2)

    if (base_doc.get("graphs"), base_doc.get("full_scale")) != (
            cand_doc.get("graphs"), cand_doc.get("full_scale")):
        print("bench_diff: WARNING: suite sizes differ "
              f"(baseline {base_doc.get('graphs')} graphs, candidate "
              f"{cand_doc.get('graphs')}); deltas may not be comparable")

    # (metric key, direction: +1 = higher is worse, threshold)
    checks = [
        ("makespan", +1, args.threshold),
        ("relative", -1, args.threshold),
        ("sched_seconds", +1, args.sched_threshold),
    ]
    regressions, improvements, compared = [], [], 0
    for key in sorted(set(base) & set(cand)):
        b, c = base[key], cand[key]
        for metric, worse_sign, threshold in checks:
            if metric not in b or metric not in c:
                continue
            bstat, cstat = b[metric], c[metric]
            try:
                bval, cval = bstat[args.metric], cstat[args.metric]
            except (KeyError, TypeError):
                print(f"bench_diff: {metric} in {key} lacks the "
                      f"{args.metric!r} statistic", file=sys.stderr)
                sys.exit(2)
            compared += 1
            delta = pct_change(bval, cval)
            label = f"{key[0]} / {key[1]} / P={key[2]} / {metric}"
            line = (f"{label}: {bval:.6g} -> {cval:.6g} "
                    f"({delta:+.2f}%)")
            if worse_sign * delta > threshold and not inside_ci(cval, bstat):
                regressions.append(line)
            elif worse_sign * delta < -threshold:
                improvements.append(line)
            elif not args.quiet:
                print(f"  ok     {line}")

    gate_failures = check_speedup_gates(cand_doc, args.speedup_gate,
                                        args.metric)
    for line in improvements:
        print(f"  better {line}")
    for line in regressions:
        print(f"  WORSE  {line}")
    for line in gate_failures:
        print(f"  WORSE  speedup gate failed: {line}")

    missing = sorted(set(base) - set(cand))
    if missing:
        print(f"bench_diff: WARNING: {len(missing)} baseline row(s) missing "
              f"from candidate (first: {missing[0]})")

    print(f"bench_diff: {compared} comparisons, "
          f"{len(improvements)} improvement(s), "
          f"{len(regressions)} regression(s), "
          f"{len(gate_failures)} speedup-gate failure(s) "
          f"(threshold {args.threshold}%/{args.sched_threshold}% on "
          f"{args.metric})")
    if regressions:
        auto_explain(args)
    sys.exit(1 if regressions or gate_failures else 0)


if __name__ == "__main__":
    main()
