#!/usr/bin/env bash
# Builds the `coverage` preset, runs the test suite, and reports gcov line
# coverage aggregated per source directory.
#
#   scripts/coverage.sh [--min-schedule PCT] [extra ctest args...]
#
# With --min-schedule the script exits 1 when the line coverage of
# src/schedule/ (the Timeline/Schedule layer the incremental replanner
# leans on, docs/incremental.md) falls below PCT — this is the ratchet CI
# gates on. Any remaining arguments are forwarded to ctest, e.g.
# `-R Incremental` to scope the run while iterating.
set -euo pipefail
cd -- "$(dirname -- "$0")/.." || exit 1

min_schedule=""
if [ "${1:-}" = "--min-schedule" ]; then
  min_schedule=$2
  shift 2
fi
jobs="${LOCMPS_JOBS:-$(nproc)}"

cmake --preset coverage
cmake --build --preset coverage -j "$jobs"
# Stale counters from a previous run would inflate coverage.
find build-coverage -name '*.gcda' -delete
ctest --preset coverage -j "$jobs" "$@"

# gcov emits one JSON document per object file; the summarizer aggregates
# executed/executable lines per source directory and applies the gate.
find build-coverage -name '*.gcda' \
  -exec gcov --json-format --stdout {} + \
  > build-coverage/gcov.jsonl

python3 - "$min_schedule" <<'EOF'
import collections
import json
import os
import sys

min_schedule = float(sys.argv[1]) if sys.argv[1] else None
root = os.getcwd()

# line -> covered, unioned across translation units including a header.
lines = collections.defaultdict(bool)
with open("build-coverage/gcov.jsonl") as fh:
    for doc_line in fh:
        doc_line = doc_line.strip()
        if not doc_line:
            continue
        doc = json.loads(doc_line)
        cwd = doc.get("current_working_directory", root)
        for f in doc.get("files", []):
            path = os.path.normpath(os.path.join(cwd, f["file"]))
            rel = os.path.relpath(path, root)
            if rel.startswith("..") or not rel.startswith("src" + os.sep):
                continue
            for ln in f["lines"]:
                key = (rel, ln["line_number"])
                lines[key] = lines[key] or ln["count"] > 0

per_dir = collections.defaultdict(lambda: [0, 0])  # dir -> [covered, total]
for (rel, _), covered in lines.items():
    d = os.path.dirname(rel)
    per_dir[d][1] += 1
    per_dir[d][0] += covered

print(f"{'directory':<24} {'covered':>8} {'total':>8} {'line%':>7}")
total_cov = total_all = 0
for d in sorted(per_dir):
    cov, tot = per_dir[d]
    total_cov += cov
    total_all += tot
    print(f"{d:<24} {cov:>8} {tot:>8} {100.0 * cov / tot:>6.1f}%")
print(f"{'TOTAL':<24} {total_cov:>8} {total_all:>8} "
      f"{100.0 * total_cov / total_all:>6.1f}%")

if min_schedule is not None:
    cov, tot = per_dir.get("src/schedule", (0, 0))
    pct = 100.0 * cov / tot if tot else 0.0
    if pct < min_schedule:
        print(f"coverage: src/schedule line coverage {pct:.1f}% is below "
              f"the {min_schedule:.1f}% gate", file=sys.stderr)
        sys.exit(1)
    print(f"coverage: src/schedule {pct:.1f}% >= gate {min_schedule:.1f}%")
EOF
