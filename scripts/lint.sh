#!/usr/bin/env bash
# Static-analysis driver for locmps (docs/static_analysis.md).
#
# Runs, in order:
#   1. locmps-lint  — project determinism/hygiene rules (always; built here)
#   2. clang-tidy   — .clang-tidy profile over compile_commands.json
#   3. cppcheck     — warning/performance/portability, .cppcheck-suppressions
#   4. clang-format — check-only, scoped to FORMAT_PATHS (incremental adoption)
#   5. shellcheck   — scripts/*.sh
#   6. ruff         — scripts/*.py
#   7. clang++ -Wthread-safety -Werror=thread-safety build of src/
#
# Tools 2-7 are skipped with a notice when absent so the script is useful on
# a bare gcc box; pass --require to turn every skip into a failure (CI mode).
#
# Usage: scripts/lint.sh [--require] [--build-dir DIR]
set -euo pipefail

REQUIRE=0
BUILD_DIR=build-lint
while [ "$#" -gt 0 ]; do
  case "$1" in
    --require) REQUIRE=1 ;;
    --build-dir)
      shift
      BUILD_DIR=${1:?--build-dir needs an argument}
      ;;
    *)
      echo "usage: scripts/lint.sh [--require] [--build-dir DIR]" >&2
      exit 2
      ;;
  esac
  shift
done

ROOT=$(cd -- "$(dirname -- "$0")/.." && pwd)
cd -- "$ROOT"

FAILED=0
fail() {
  echo "lint.sh: FAIL: $1" >&2
  FAILED=1
}

# skip <tool>: honor --require for a missing optional tool.
skip() {
  if [ "$REQUIRE" -eq 1 ]; then
    fail "$1 not found but --require was given"
  else
    echo "lint.sh: skip: $1 not found" >&2
  fi
}

# Paths under .clang-format enforcement. Incremental adoption: extend this
# list as files are formatted, never reformat the whole tree in one PR.
FORMAT_PATHS=(
  tools/lint
  src/util/annotations.hpp
  tests/test_lint.cpp
)

echo "== locmps-lint =="
cmake -B "$BUILD_DIR" -S . -DLOCMPS_BUILD_TESTS=OFF -DLOCMPS_BUILD_BENCH=OFF \
  -DLOCMPS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" --target locmps-lint -j "$(nproc)" >/dev/null
# GitHub Actions gets inline annotations; everywhere else the text format.
LINT_FORMAT=text
if [ "${GITHUB_ACTIONS:-false}" = "true" ]; then
  LINT_FORMAT=github
fi
# Per-file rules plus the dependency passes (layer-violation,
# include-cycle against tools/lint/layers.txt); the module DAG lands in
# the build dir for the CI artifact upload.
"$BUILD_DIR/tools/locmps-lint" --baseline tools/lint/lint_baseline.txt \
  --deps --deps-dot "$BUILD_DIR/module_graph.dot" \
  --format "$LINT_FORMAT" \
  src bench tools examples || fail "locmps-lint reported findings"
"$BUILD_DIR/tools/locmps-lint" --baseline tools/lint/lint_baseline.txt \
  --deps --format json \
  src bench tools examples >"$BUILD_DIR/lint_findings.json" || true

echo "== clang-tidy =="
# LOCMPS_LINT_SKIP_TIDY=1 is the CI cache-hit signal: the compilation
# database (and .clang-tidy) are unchanged since the last green run, so
# re-analysis would reproduce the same empty report. Honored even under
# --require because it is an explicit opt-out, not a missing tool.
if [ "${LOCMPS_LINT_SKIP_TIDY:-0}" = "1" ]; then
  echo "lint.sh: skip: clang-tidy (LOCMPS_LINT_SKIP_TIDY=1, cached result)" >&2
elif command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json comes from the main build dir so clang-tidy sees
  # tests/bench/examples too; CMAKE_EXPORT_COMPILE_COMMANDS is on globally.
  cmake -B "$BUILD_DIR" -S . -DLOCMPS_BUILD_TESTS=OFF \
    -DLOCMPS_BUILD_BENCH=OFF -DLOCMPS_BUILD_EXAMPLES=OFF >/dev/null
  mapfile -t TIDY_SOURCES < <(find src tools/lint -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$BUILD_DIR" "${TIDY_SOURCES[@]}" \
      || fail "clang-tidy reported findings"
  else
    clang-tidy -quiet -p "$BUILD_DIR" "${TIDY_SOURCES[@]}" \
      || fail "clang-tidy reported findings"
  fi
else
  skip clang-tidy
fi

echo "== cppcheck =="
if command -v cppcheck >/dev/null 2>&1; then
  cppcheck --std=c++20 --language=c++ --enable=warning,performance,portability \
    --inline-suppr --suppressions-list=.cppcheck-suppressions \
    --error-exitcode=1 --quiet -I src src tools/lint \
    || fail "cppcheck reported findings"
else
  skip cppcheck
fi

echo "== clang-format (check only, FORMAT_PATHS) =="
if command -v clang-format >/dev/null 2>&1; then
  mapfile -t FMT_FILES < <(
    find "${FORMAT_PATHS[@]}" \
      \( -name '*.cpp' -o -name '*.hpp' -o -name '*.h' \) | sort)
  clang-format --dry-run -Werror "${FMT_FILES[@]}" \
    || fail "clang-format check failed (run clang-format -i on the files above)"
else
  skip clang-format
fi

echo "== shellcheck =="
if command -v shellcheck >/dev/null 2>&1; then
  shellcheck scripts/*.sh || fail "shellcheck reported findings"
else
  skip shellcheck
fi

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
  ruff check scripts/*.py || fail "ruff reported findings"
else
  skip ruff
fi

echo "== clang thread-safety build =="
if command -v clang++ >/dev/null 2>&1; then
  TSA_DIR="$BUILD_DIR-tsa"
  cmake -B "$TSA_DIR" -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety" \
    -DLOCMPS_BUILD_TESTS=OFF -DLOCMPS_BUILD_BENCH=OFF \
    -DLOCMPS_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "$TSA_DIR" -j "$(nproc)" >/dev/null \
    || fail "clang -Werror=thread-safety build failed"
else
  skip clang++
fi

if [ "$FAILED" -ne 0 ]; then
  echo "lint.sh: one or more checks failed" >&2
  exit 1
fi
echo "lint.sh: all checks passed"
