#!/usr/bin/env python3
"""Measure the planning-time overhead of the self-profiling subsystem.

Usage:
    scripts/profile_overhead.py --profiled BUILD_ON/tools/locmps-inspect \
        --baseline BUILD_OFF/tools/locmps-inspect [options] [-- inspect args]

Options:
    --reps N          runs per binary; the median planning time is
                      compared (default 5)
    --threshold PCT   maximum tolerated overhead, percent (default 5.0)
    --live            attach a live span tracer to the profiled binary
                      (--flame-out /dev/null) instead of measuring the
                      always-on cost

`--profiled` is an inspect binary from the default build
(-DLOCMPS_PROFILE=ON: the counting operator-new hook attributes
allocation deltas); `--baseline` is one from a -DLOCMPS_PROFILE=OFF
build. By default neither run attaches a Profiler, so the comparison
isolates the *always-on* instrumentation cost — the allocation hook
plus inert LOCMPS_SPAN sites — which is what the < 5% CI gate asserts:
a binary that merely supports profiling must not tax users who never
ask for a profile. With --live the profiled binary additionally records
every span (`--flame-out /dev/null` creates a Profiler without the
--profile reconciliation gate); that measures the opt-in cost of an
active profile, which is allowed to be much larger (see
docs/observability.md for current numbers). Both binaries run `--reps`
times with identical forwarded arguments (anything after `--`; the
default workload plans for a couple of seconds, enough signal for a 5%
bound), the `planning <x> s` line each run prints is parsed, and the
script exits 1 if the median-over-median overhead exceeds the
threshold. Exits 2 on unparsable output or a failing inspect run.
"""

import argparse
import os
import re
import statistics
import subprocess
import sys

PLANNING_RE = re.compile(r"^planning\s+([0-9.eE+-]+)\s+s\s*$", re.MULTILINE)


def planning_seconds(binary, run_args):
    proc = subprocess.run(
        [binary] + run_args, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        sys.exit(f"profile_overhead: {binary} exited {proc.returncode}")
    match = PLANNING_RE.search(proc.stdout)
    if match is None:
        sys.exit(f"profile_overhead: no 'planning <x> s' line in output "
                 f"of {binary}")
    return float(match.group(1))


def median_planning(binary, reps, run_args):
    times = [planning_seconds(binary, run_args) for _ in range(reps)]
    med = statistics.median(times)
    print(f"  {binary}: median {med:.4f} s over {reps} run(s) "
          f"(min {min(times):.4f}, max {max(times):.4f})")
    return med


def main():
    argv = sys.argv[1:]
    extra = []
    if "--" in argv:
        split = argv.index("--")
        argv, extra = argv[:split], argv[split + 1:]

    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--profiled", required=True,
                        help="locmps-inspect from the LOCMPS_PROFILE=ON build")
    parser.add_argument("--baseline", required=True,
                        help="locmps-inspect from the LOCMPS_PROFILE=OFF build")
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--threshold", type=float, default=5.0)
    parser.add_argument("--live", action="store_true")
    args = parser.parse_args(argv)

    mode = "live span tracer" if args.live else "always-on instrumentation"
    print(f"profile_overhead: comparing median planning time, {mode} "
          f"({args.reps} rep(s) each)")
    profiled_args = extra + (["--flame-out", os.devnull] if args.live else [])
    on = median_planning(args.profiled, args.reps, profiled_args)
    off = median_planning(args.baseline, args.reps, extra)
    if off <= 0:
        sys.exit("profile_overhead: baseline planning time is zero")

    overhead = (on - off) / off * 100.0
    verdict = "ok" if overhead <= args.threshold else "FAIL"
    print(f"profile_overhead: {verdict} — overhead {overhead:+.2f}% "
          f"(threshold {args.threshold:.1f}%)")
    sys.exit(0 if overhead <= args.threshold else 1)


if __name__ == "__main__":
    main()
