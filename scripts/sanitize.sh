#!/usr/bin/env bash
# Runs the full test suite under AddressSanitizer + UBSan.
#
#   scripts/sanitize.sh [extra ctest args...]
#
# Uses the `asan-ubsan` CMake preset (build dir: build-asan; benches and
# examples are skipped to keep the instrumented build fast). Any extra
# arguments are forwarded to ctest, e.g. `-R Obs` to scope the run.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"
