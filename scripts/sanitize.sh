#!/usr/bin/env bash
# Runs the test suite under a sanitizer preset.
#
#   scripts/sanitize.sh [asan|tsan] [extra ctest args...]
#
# `asan` (the default) uses the `asan-ubsan` CMake preset (build dir:
# build-asan); `tsan` uses the `tsan` preset (build dir: build-tsan) to
# race-check the speculative LoC-MPS probe pool (docs/parallelism.md).
# Benches and examples are skipped in both to keep the instrumented builds
# fast. Any extra arguments are forwarded to ctest, e.g. `-R Obs` to scope
# the run.
set -euo pipefail
cd -- "$(dirname -- "$0")/.." || exit 1

preset=asan-ubsan
case "${1:-}" in
  asan) shift ;;
  tsan) preset=tsan; shift ;;
esac

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)" "$@"
