#pragma once
/// \file cluster.hpp
/// The execution platform model: a homogeneous compute cluster.
///
/// The paper assumes a homogeneous cluster of single-processor nodes with
/// local disks, connected by a switched network; each node obeys a
/// single-port communication model, and communication may or may not be
/// overlappable with computation depending on the system (Section II).

#include <cstddef>
#include <stdexcept>

#include "cluster/processor_set.hpp"

namespace locmps {

/// Default link bandwidth used by the paper's synthetic experiments:
/// 100 Mbps fast ethernet, expressed in bytes/second.
inline constexpr double kFastEthernetBytesPerSec = 100e6 / 8.0;

/// Homogeneous cluster of \c processors identical nodes.
struct Cluster {
  /// Number of processors P.
  std::size_t processors = 1;

  /// Per-link point-to-point bandwidth in bytes/second. The aggregate
  /// bandwidth between two processor groups is
  /// min(|src|, |dst|) * bandwidth (Section III-B).
  double bandwidth_Bps = kFastEthernetBytesPerSec;

  /// True when the platform can overlap computation with communication
  /// (asynchronous transfers). False models systems where transfers involve
  /// blocking I/O at the endpoints (Section II / Fig 8b).
  bool overlap_comm_compute = true;

  /// Per-redistribution startup latency in seconds (the alpha of an
  /// alpha-beta model). The paper's model is pure bandwidth (0); a
  /// non-zero value penalizes many small transfers.
  double latency_s = 0.0;

  Cluster() = default;
  Cluster(std::size_t P, double bandwidth = kFastEthernetBytesPerSec,
          bool overlap = true, double latency = 0.0)
      : processors(P),
        bandwidth_Bps(bandwidth),
        overlap_comm_compute(overlap),
        latency_s(latency) {
    if (P == 0) throw std::invalid_argument("Cluster: P must be >= 1");
    if (bandwidth <= 0)
      throw std::invalid_argument("Cluster: bandwidth must be > 0");
    if (latency < 0)
      throw std::invalid_argument("Cluster: latency must be >= 0");
  }

  /// The full processor set of this cluster.
  ProcessorSet all() const { return ProcessorSet::all(processors); }
};

}  // namespace locmps
