#include "cluster/processor_set.hpp"

#include <bit>
#include <cassert>
#include <sstream>

namespace locmps {

namespace {
std::size_t word_count(std::size_t capacity) { return (capacity + 63) / 64; }
}  // namespace

ProcessorSet::ProcessorSet(std::size_t capacity)
    : capacity_(capacity), words_(word_count(capacity), 0) {}

ProcessorSet ProcessorSet::all(std::size_t capacity) {
  ProcessorSet s(capacity);
  for (std::size_t w = 0; w < s.words_.size(); ++w)
    s.words_[w] = ~std::uint64_t{0};
  if (capacity % 64 != 0 && !s.words_.empty())
    s.words_.back() &= (std::uint64_t{1} << (capacity % 64)) - 1;
  return s;
}

ProcessorSet ProcessorSet::of(std::size_t capacity,
                              std::initializer_list<ProcId> procs) {
  ProcessorSet s(capacity);
  for (ProcId p : procs) s.insert(p);
  return s;
}

ProcessorSet ProcessorSet::range(std::size_t capacity, ProcId first,
                                 std::size_t count) {
  ProcessorSet s(capacity);
  for (std::size_t i = 0; i < count; ++i)
    s.insert(static_cast<ProcId>(first + i));
  return s;
}

std::size_t ProcessorSet::count() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool ProcessorSet::contains(ProcId p) const {
  assert(p < capacity_);
  return (words_[p / 64] >> (p % 64)) & 1u;
}

void ProcessorSet::insert(ProcId p) {
  assert(p < capacity_);
  words_[p / 64] |= std::uint64_t{1} << (p % 64);
}

void ProcessorSet::erase(ProcId p) {
  assert(p < capacity_);
  words_[p / 64] &= ~(std::uint64_t{1} << (p % 64));
}

void ProcessorSet::clear() {
  for (auto& w : words_) w = 0;
}

ProcessorSet& ProcessorSet::operator|=(const ProcessorSet& o) {
  assert(capacity_ == o.capacity_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

ProcessorSet& ProcessorSet::operator&=(const ProcessorSet& o) {
  assert(capacity_ == o.capacity_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

ProcessorSet& ProcessorSet::operator-=(const ProcessorSet& o) {
  assert(capacity_ == o.capacity_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

std::size_t ProcessorSet::intersection_count(const ProcessorSet& o) const {
  assert(capacity_ == o.capacity_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    n += static_cast<std::size_t>(std::popcount(words_[i] & o.words_[i]));
  return n;
}

bool ProcessorSet::subset_of(const ProcessorSet& o) const {
  assert(capacity_ == o.capacity_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~o.words_[i]) != 0) return false;
  return true;
}

std::vector<ProcId> ProcessorSet::to_vector() const {
  std::vector<ProcId> v;
  v.reserve(count());
  for_each([&](ProcId p) { v.push_back(p); });
  return v;
}

ProcId ProcessorSet::first() const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] != 0)
      return static_cast<ProcId>(w * 64 + __builtin_ctzll(words_[w]));
  return static_cast<ProcId>(capacity_);
}

std::string ProcessorSet::to_string() const {
  std::ostringstream ss;
  ss << '{';
  bool first_item = true;
  for_each([&](ProcId p) {
    if (!first_item) ss << ',';
    ss << p;
    first_item = false;
  });
  ss << '}';
  return ss.str();
}

}  // namespace locmps
