#pragma once
/// \file processor_set.hpp
/// Compact set of processor indices, the unit of processor allocation.
///
/// A parallel task is executed on a ProcessorSet; locality reasoning
/// (which processors already hold a task's input data) is set intersection.
/// Implemented as a dynamic bitset over 64-bit words: the paper's clusters
/// have up to a few hundred processors, so all operations are a handful of
/// word ops.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace locmps {

/// Index of a physical processor in the cluster, 0-based.
using ProcId = std::uint32_t;

/// A set of processors of a fixed-capacity cluster.
///
/// All binary operations require both operands to share the same capacity
/// (checked in debug builds). Value semantics; cheap to copy at cluster
/// sizes used here (<= 1024 processors = 16 words).
class ProcessorSet {
 public:
  /// Empty set with capacity 0 (usable only after assignment).
  ProcessorSet() = default;

  /// Empty set over a cluster of \p capacity processors.
  explicit ProcessorSet(std::size_t capacity);

  /// The full set {0, ..., capacity-1}.
  static ProcessorSet all(std::size_t capacity);

  /// Set containing exactly the given processors.
  static ProcessorSet of(std::size_t capacity,
                         std::initializer_list<ProcId> procs);

  /// Contiguous range [first, first+count).
  static ProcessorSet range(std::size_t capacity, ProcId first,
                            std::size_t count);

  std::size_t capacity() const { return capacity_; }

  /// Number of processors in the set.
  std::size_t count() const;

  bool empty() const { return count() == 0; }

  bool contains(ProcId p) const;

  void insert(ProcId p);
  void erase(ProcId p);
  void clear();

  /// Set algebra. Operands must share capacity.
  ProcessorSet& operator|=(const ProcessorSet& o);
  ProcessorSet& operator&=(const ProcessorSet& o);
  ProcessorSet& operator-=(const ProcessorSet& o);
  friend ProcessorSet operator|(ProcessorSet a, const ProcessorSet& b) {
    return a |= b;
  }
  friend ProcessorSet operator&(ProcessorSet a, const ProcessorSet& b) {
    return a &= b;
  }
  friend ProcessorSet operator-(ProcessorSet a, const ProcessorSet& b) {
    return a -= b;
  }

  bool operator==(const ProcessorSet& o) const = default;

  /// |*this & o| without materializing the intersection.
  std::size_t intersection_count(const ProcessorSet& o) const;

  /// True if *this and o share no processor.
  bool disjoint(const ProcessorSet& o) const {
    return intersection_count(o) == 0;
  }

  /// True if every member of *this is in o.
  bool subset_of(const ProcessorSet& o) const;

  /// Members in ascending order.
  std::vector<ProcId> to_vector() const;

  /// Smallest member; capacity() if empty.
  ProcId first() const;

  /// Applies \p fn to each member in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<ProcId>(w * 64 + b));
        bits &= bits - 1;
      }
    }
  }

  /// Human-readable form, e.g. "{0,1,5}".
  std::string to_string() const;

 private:
  std::size_t capacity_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace locmps
