#include "core/experiment.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "schedulers/registry.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace locmps {

namespace {

/// Worker count: explicit argument, else LOCMPS_THREADS, else 1.
std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("LOCMPS_THREADS")) {
    const long v = std::atol(env);
    if (v > 1) return static_cast<std::size_t>(v);
  }
  return 1;
}

/// Runs fn(0..count) across `threads` workers (inline when threads <= 1).
template <typename Fn>
void parallel_for(std::size_t count, std::size_t threads, Fn&& fn) {
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  const std::size_t workers = std::min(threads, count);
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1))
        fn(i);
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace

SchemeRun evaluate_scheme(const std::string& scheme, const TaskGraph& g,
                          const Cluster& cluster, const SimOptions& sim,
                          obs::EventSink* sink,
                          const SchedulerOptions& sched_opt,
                          obs::Profiler* profiler) {
  // One registry per run: compare_schemes fans runs out over threads, so
  // the registry must not be shared across evaluations.
  obs::MetricsRegistry metrics;
  obs::ObsContext obs{&metrics, sink, profiler};

  const SchedulerPtr sched = make_scheduler(scheme, sched_opt);
  sched->attach_observability(&obs);
  Stopwatch sw;
  SchedulerResult planned;
  {
    // The span brackets exactly the stopwatch region so the profile root
    // reconciles with scheduling_seconds (locmps-inspect --profile
    // asserts the two agree within 2%).
    LOCMPS_SPAN(&obs, "harness.plan");
    planned = sched->schedule(g, cluster);
  }
  const double plan_time = sw.seconds();
  metrics.set("scheduler.plan_seconds", plan_time);

  // Iterations: the instrumented counter when the scheme reported one
  // (LoC-MPS-backed schemes bump locmps.locbs_calls), else the
  // scheduler's own ad-hoc report — exposed uniformly as
  // "scheduler.iterations" so every SchemeRun sources it the same way.
  double iters = metrics.value("locmps.locbs_calls");
  if (iters <= 0.0) iters = static_cast<double>(planned.iterations);
  metrics.set("scheduler.iterations", iters);

  const CommModel comm(cluster);
  // Schemes that do not orchestrate locality transfer full volumes
  // between differing layouts (the paper's evaluation model).
  SimOptions run_sim = sim;
  run_sim.locality_volumes = scheme_exploits_locality(scheme);
  run_sim.obs = &obs;
  SimResult executed;
  {
    LOCMPS_SPAN(&obs, "harness.simulate");
    executed = simulate_execution(g, planned.schedule, comm, run_sim);
  }
  metrics.set("sim.makespan", executed.makespan);

  // Sink-side truncation (bounded JSONL trace) folds into the counters
  // before the snapshot so the report and analysis join can surface it.
  if (obs.sink != nullptr && obs.sink->dropped() > 0)
    metrics.add("obs.trace.dropped",
                static_cast<double>(obs.sink->dropped()));

  SchemeRun run;
  run.scheme = scheme;
  run.makespan = executed.makespan;
  run.estimated = planned.estimated_makespan;
  run.scheduling_seconds = plan_time;
  run.counters = metrics.snapshot();
  run.iterations = static_cast<std::size_t>(
      run.counters.counter("scheduler.iterations"));
  run.allocation = std::move(planned.allocation);
  run.schedule = std::move(executed.executed);

  // Post-mortem analytics under the same locality model the simulation
  // charged, with backfill effectiveness joined from the run's counters.
  obs::AnalysisOptions an;
  an.locality_volumes = run_sim.locality_volumes;
  {
    LOCMPS_SPAN(&obs, "harness.analyze");
    run.analysis = obs::analyze_schedule(g, run.schedule, comm, an);
  }
  obs::join_backfill_stats(run.analysis, run.counters);
  obs::join_event_health(run.analysis, run.counters);
  return run;
}

namespace {

/// One timed planning-only pass with a fresh scheduler and registry: the
/// extra sched_reps samples behind compare_schemes' timing statistics.
/// Simulation and analysis are skipped — only sched_samples grows.
double time_planning_pass(const std::string& scheme, const TaskGraph& g,
                          const Cluster& cluster,
                          const SchedulerOptions& sched_opt) {
  obs::MetricsRegistry metrics;
  obs::ObsContext obs{&metrics, nullptr, nullptr};
  const SchedulerPtr sched = make_scheduler(scheme, sched_opt);
  sched->attach_observability(&obs);
  Stopwatch sw;
  (void)sched->schedule(g, cluster);
  return sw.seconds();
}

}  // namespace

Comparison compare_schemes(std::span<const TaskGraph> graphs,
                           const std::vector<std::string>& schemes,
                           const std::vector<std::size_t>& procs,
                           double bandwidth_Bps, bool overlap,
                           const SimOptions& sim, std::size_t threads,
                           const SchedulerOptions& sched_opt,
                           std::size_t sched_reps) {
  Comparison c;
  c.schemes = schemes;
  c.procs = procs;
  c.relative.assign(procs.size(),
                    std::vector<double>(schemes.size(), 0.0));
  c.makespan = c.relative;
  c.sched_seconds = c.relative;
  c.relative_samples.assign(
      procs.size(), std::vector<std::vector<double>>(
                        schemes.size(), std::vector<double>(graphs.size())));
  c.makespan_samples = c.relative_samples;
  c.sched_samples = c.relative_samples;
  const std::size_t workers = resolve_threads(threads);
  const std::size_t reps = std::max<std::size_t>(1, sched_reps);

  for (std::size_t pi = 0; pi < procs.size(); ++pi) {
    const Cluster cluster(procs[pi], bandwidth_Bps, overlap);
    // One slot per (graph, scheme); workers write disjoint cells. The
    // timing reps of one cell run back-to-back on one worker so they see
    // comparable load.
    const std::size_t ns = schemes.size();
    std::vector<double> ms(graphs.size() * ns, 0.0);
    std::vector<double> st(graphs.size() * ns * reps, 0.0);
    parallel_for(graphs.size() * ns, workers, [&](std::size_t idx) {
      const std::size_t gi = idx / ns;
      const std::size_t si = idx % ns;
      const SchemeRun run = evaluate_scheme(schemes[si], graphs[gi], cluster,
                                            sim, nullptr, sched_opt);
      ms[idx] = run.makespan;
      st[idx * reps] = run.scheduling_seconds;
      for (std::size_t r = 1; r < reps; ++r)
        st[idx * reps + r] =
            time_planning_pass(schemes[si], graphs[gi], cluster, sched_opt);
    });
    for (std::size_t si = 0; si < ns; ++si) {
      std::vector<double> rel(graphs.size()), m(graphs.size()),
          t(graphs.size() * reps);
      for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
        rel[gi] = ms[gi * ns] / ms[gi * ns + si];
        m[gi] = ms[gi * ns + si];
        for (std::size_t r = 0; r < reps; ++r)
          t[gi * reps + r] = st[(gi * ns + si) * reps + r];
      }
      c.relative[pi][si] = mean(rel);
      c.makespan[pi][si] = mean(m);
      c.sched_seconds[pi][si] = mean(t);
      c.relative_samples[pi][si] = std::move(rel);
      c.makespan_samples[pi][si] = std::move(m);
      c.sched_samples[pi][si] = std::move(t);
    }
  }
  return c;
}

namespace {

Table grid_table(const Comparison& c,
                 const std::vector<std::vector<double>>& cells,
                 int precision) {
  std::vector<std::string> header{"P"};
  for (const auto& s : c.schemes) header.push_back(s);
  Table t(std::move(header));
  for (std::size_t pi = 0; pi < c.procs.size(); ++pi)
    t.add_row_numeric(std::to_string(c.procs[pi]), cells[pi], precision);
  return t;
}

}  // namespace

Table relative_performance_table(const Comparison& c) {
  return grid_table(c, c.relative, 3);
}

Table scheduling_time_table(const Comparison& c) {
  return grid_table(c, c.sched_seconds, 4);
}

}  // namespace locmps
