#pragma once
/// \file experiment.hpp
/// Evaluation harness reproducing the paper's methodology (Section IV).
///
/// Every scheme is evaluated the same way: the scheduler plans a schedule
/// (its wall-clock planning time is the "scheduling time" of Figs 6b/10),
/// then the plan is re-timed by the discrete-event executor under the real
/// communication model. The figures report *relative performance*: the
/// ratio of the reference scheme's makespan (LoC-MPS) to the given
/// scheme's makespan — below 1.0 means worse than LoC-MPS.

#include <span>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "graph/task_graph.hpp"
#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "schedule/event_sim.hpp"
#include "schedulers/scheduler.hpp"
#include "util/table.hpp"

namespace locmps {

/// One scheme evaluated on one graph/cluster instance.
struct SchemeRun {
  std::string scheme;
  double makespan = 0.0;         ///< event-simulated (realized) makespan
  double estimated = 0.0;        ///< the scheduler's own estimate
  double scheduling_seconds = 0.0;  ///< wall-clock planning overhead
  /// Refinement iterations, sourced from the run's counters
  /// ("scheduler.iterations"): the instrumented LoCBS-call count for
  /// LoC-MPS-backed schemes, the scheduler's own report otherwise.
  std::size_t iterations = 0;
  Allocation allocation;
  Schedule schedule;
  /// Counters, phase timers, and sample series collected while planning
  /// and executing this run (see docs/observability.md for the taxonomy).
  obs::MetricsSnapshot counters;
  /// Post-mortem analytics of the realized schedule (utilization, locality
  /// breakdown, critical path, start-delay blame, backfill effectiveness),
  /// computed under the same locality model the simulation used. Feed it to
  /// obs::write_html_report / obs::text_report for rendering.
  obs::ScheduleAnalysis analysis;
};

/// Plans and executes \p scheme (a registry name) on \p g / \p cluster.
///
/// Every run is metered: a per-run metrics registry is attached to the
/// scheduler and the executor, and its snapshot lands in
/// SchemeRun::counters. Pass \p sink to additionally stream the
/// structured decision trace (JSONL via obs::JsonlSink) as it happens.
/// \p sched_opt tunes the scheduler itself (e.g. speculative-probe
/// threads for LoC-MPS-backed schemes); every setting produces the same
/// schedule (see docs/parallelism.md), so results stay comparable.
///
/// Pass \p profiler to self-profile the run: the planning, simulation,
/// and analysis stages record hierarchical spans (harness.plan /
/// harness.simulate / harness.analyze and their scheduler-side children;
/// taxonomy in docs/observability.md). The harness.plan span brackets
/// exactly the region timed into scheduling_seconds, so the two
/// reconcile within measurement noise.
SchemeRun evaluate_scheme(const std::string& scheme, const TaskGraph& g,
                          const Cluster& cluster, const SimOptions& sim = {},
                          obs::EventSink* sink = nullptr,
                          const SchedulerOptions& sched_opt = {},
                          obs::Profiler* profiler = nullptr);

/// Aggregated scheme x processor-count comparison over a graph suite.
struct Comparison {
  std::vector<std::string> schemes;  ///< schemes[0] is the reference
  std::vector<std::size_t> procs;
  /// relative[pi][si] = mean over graphs of
  /// makespan(reference) / makespan(schemes[si]) at procs[pi].
  std::vector<std::vector<double>> relative;
  /// Mean realized makespans [pi][si] (seconds).
  std::vector<std::vector<double>> makespan;
  /// Mean scheduling times [pi][si] (seconds).
  std::vector<std::vector<double>> sched_seconds;
  /// Raw per-graph samples behind the means, [pi][si][gi] — the inputs of
  /// the benchmark telemetry's median / nonparametric-CI statistics
  /// (bench/bench_util.hpp).
  std::vector<std::vector<std::vector<double>>> relative_samples;
  std::vector<std::vector<std::vector<double>>> makespan_samples;
  std::vector<std::vector<std::vector<double>>> sched_samples;
};

/// Runs every scheme on every graph for every processor count.
/// \p schemes[0] is the reference scheme of the relative-performance
/// ratios. \p bandwidth_Bps and \p overlap configure the platform.
///
/// The (graph x scheme) grid is embarrassingly parallel; set the
/// LOCMPS_THREADS environment variable (or pass \p threads > 1) to fan the
/// runs out over worker threads. Results are deterministic regardless of
/// the thread count; per-run scheduling-time measurements become noisier
/// under oversubscription.
///
/// \p sched_reps > 1 re-plans every (graph, scheme, procs) cell that many
/// times with a fresh scheduler and registry, timing each pass, so
/// sched_samples carries graphs x sched_reps wall-clock samples instead
/// of one per graph — enough for the benchmark telemetry's median /
/// order-statistic-CI statistics to be meaningful on single-graph panels
/// (fig10's sched_seconds ratchet needs n >= 5). Planning is
/// deterministic, so the extra reps change no schedule and only the
/// timing vectors grow; makespan/relative samples stay one per graph.
Comparison compare_schemes(std::span<const TaskGraph> graphs,
                           const std::vector<std::string>& schemes,
                           const std::vector<std::size_t>& procs,
                           double bandwidth_Bps, bool overlap = true,
                           const SimOptions& sim = {},
                           std::size_t threads = 0,
                           const SchedulerOptions& sched_opt = {},
                           std::size_t sched_reps = 1);

/// Renders a Comparison's relative performance as a paper-style table
/// (rows = processor counts, columns = schemes).
Table relative_performance_table(const Comparison& c);

/// Renders the mean scheduling times (seconds).
Table scheduling_time_table(const Comparison& c);

}  // namespace locmps
