#pragma once
/// \file locmps.hpp
/// Umbrella header: the full public API of the LoC-MPS library.
///
/// Typical use:
/// \code
///   #include "core/locmps.hpp"
///   using namespace locmps;
///
///   TaskGraph g = make_ccsd_t1();
///   Cluster cluster(32, 250e6);          // 32 procs, 2 Gbps Myrinet
///   auto run = evaluate_scheme("loc-mps", g, cluster);
///   std::cout << run.makespan << "\n"
///             << render_gantt(g, run.schedule);
/// \endcode

#include "cluster/cluster.hpp"
#include "cluster/processor_set.hpp"
#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "graph/io.hpp"
#include "graph/transform.hpp"
#include "graph/task_graph.hpp"
#include "network/block_cyclic.hpp"
#include "network/comm_model.hpp"
#include "schedule/event_sim.hpp"
#include "schedule/expand.hpp"
#include "schedule/gantt.hpp"
#include "schedule/metrics.hpp"
#include "schedule/schedule.hpp"
#include "schedule/schedule_dag.hpp"
#include "schedule/timeline.hpp"
#include "schedule/trace_export.hpp"
#include "schedulers/annealing.hpp"
#include "schedulers/cpa.hpp"
#include "schedulers/cpr.hpp"
#include "schedulers/data_parallel.hpp"
#include "schedulers/icaslb.hpp"
#include "schedulers/loc_mps.hpp"
#include "schedulers/locbs.hpp"
#include "schedulers/online.hpp"
#include "schedulers/registry.hpp"
#include "schedulers/scheduler.hpp"
#include "schedulers/task_parallel.hpp"
#include "speedup/amdahl.hpp"
#include "speedup/downey.hpp"
#include "speedup/profile.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "schedulers/tsas.hpp"
#include "schedulers/twol.hpp"
#include "workloads/strassen.hpp"
#include "workloads/structured.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"
