#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace locmps {

FaultPlan::FaultPlan(std::size_t processors, std::vector<FaultEvent> events)
    : processors_(processors), events_(std::move(events)) {
  event_of_proc_.assign(processors_, -1);
  std::sort(events_.begin(), events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.fail_at != b.fail_at) return a.fail_at < b.fail_at;
              return a.proc < b.proc;
            });
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (e.proc >= processors_)
      throw std::invalid_argument("FaultPlan: processor index " +
                                  std::to_string(e.proc) + " out of range");
    if (!(e.fail_at >= 0.0))
      throw std::invalid_argument("FaultPlan: negative failure onset");
    if (!(e.repair_at > e.fail_at))
      throw std::invalid_argument(
          "FaultPlan: repair_at must be strictly after fail_at");
    if (event_of_proc_[e.proc] != -1)
      throw std::invalid_argument("FaultPlan: processor " +
                                  std::to_string(e.proc) +
                                  " fails more than once");
    event_of_proc_[e.proc] = static_cast<std::int32_t>(i);
  }
}

const FaultEvent* FaultPlan::event_of(ProcId q) const {
  if (q >= event_of_proc_.size() || event_of_proc_[q] < 0) return nullptr;
  return &events_[static_cast<std::size_t>(event_of_proc_[q])];
}

bool FaultPlan::alive(ProcId q, double t) const {
  const FaultEvent* e = event_of(q);
  return e == nullptr || t < e->fail_at || t >= e->repair_at;
}

bool FaultPlan::first_onset(ProcId q, double begin, double end,
                            double* out) const {
  const FaultEvent* e = event_of(q);
  if (e == nullptr || e->fail_at < begin || e->fail_at >= end) return false;
  *out = e->fail_at;
  return true;
}

double FaultPlan::repaired_at(ProcId q, double t) const {
  const FaultEvent* e = event_of(q);
  if (e == nullptr || t < e->fail_at || t >= e->repair_at) return t;
  return e->repair_at;
}

ProcessorSet FaultPlan::failed_by(double t) const {
  ProcessorSet s(processors_);
  for (const FaultEvent& e : events_)
    if (e.fail_at <= t) s.insert(e.proc);
  return s;
}

FaultPlan make_fault_plan(std::size_t processors,
                          const FaultPlanParams& prm) {
  if (processors == 0)
    throw std::invalid_argument("make_fault_plan: empty cluster");
  if (!(prm.fail_fraction >= 0.0) || !(prm.fail_fraction <= 1.0))
    throw std::invalid_argument(
        "make_fault_plan: fail_fraction must be in [0, 1]");
  if (!(prm.horizon_s > 0.0))
    throw std::invalid_argument("make_fault_plan: horizon_s must be > 0");
  if (prm.repairs && !(prm.repair_delay_s > 0.0))
    throw std::invalid_argument(
        "make_fault_plan: repair_delay_s must be > 0 when repairs are on");

  const std::size_t protect = std::min(prm.min_survivors, processors);
  std::size_t failures = static_cast<std::size_t>(
      std::llround(prm.fail_fraction * static_cast<double>(processors)));
  failures = std::min(failures, processors - protect);

  Rng rng(prm.seed);
  // Partial Fisher-Yates over the processor indices: the first `failures`
  // entries of `ids` are a uniform sample without replacement.
  std::vector<ProcId> ids(processors);
  for (std::size_t i = 0; i < processors; ++i)
    ids[i] = static_cast<ProcId>(i);
  std::vector<FaultEvent> events;
  events.reserve(failures);
  for (std::size_t i = 0; i < failures; ++i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(processors) - 1));
    std::swap(ids[i], ids[j]);
    FaultEvent e;
    e.proc = ids[i];
    e.fail_at = rng.uniform(0.0, prm.horizon_s);
    if (prm.repairs)
      e.repair_at = e.fail_at + rng.uniform(0.5, 1.5) * prm.repair_delay_s;
    events.push_back(e);
  }
  return FaultPlan(processors, std::move(events));
}

}  // namespace locmps
