#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace locmps {

FaultPlan::FaultPlan(std::size_t processors, std::vector<FaultEvent> events)
    : processors_(processors), events_(std::move(events)) {
  std::sort(events_.begin(), events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              // Deterministic sort key tie-break. LINT-ALLOW(float-eq)
              if (a.fail_at != b.fail_at) return a.fail_at < b.fail_at;
              return a.proc < b.proc;
            });
  for (const FaultEvent& e : events_) {
    if (e.proc >= processors_)
      throw std::invalid_argument("FaultPlan: processor index " +
                                  std::to_string(e.proc) + " out of range");
    if (!(e.fail_at >= 0.0))
      throw std::invalid_argument("FaultPlan: negative failure onset");
    if (!(e.repair_at > e.fail_at))
      throw std::invalid_argument(
          "FaultPlan: repair_at must be strictly after fail_at");
  }

  // Proc-major view (CSR): intervals_of(q) is a contiguous, onset-ordered
  // slice. Stable sort preserves the onset order established above.
  by_proc_ = events_;
  std::stable_sort(by_proc_.begin(), by_proc_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.proc < b.proc;
                   });
  by_proc_begin_.assign(processors_ + 1, 0);
  for (const FaultEvent& e : by_proc_) ++by_proc_begin_[e.proc + 1];
  for (std::size_t q = 0; q < processors_; ++q)
    by_proc_begin_[q + 1] += by_proc_begin_[q];

  // A processor cannot fail while already down: successive intervals of a
  // processor must be disjoint, which also forces a never-repaired failure
  // (repair_at == inf) to be its processor's last.
  for (std::size_t i = 1; i < by_proc_.size(); ++i) {
    const FaultEvent& prev = by_proc_[i - 1];
    const FaultEvent& cur = by_proc_[i];
    if (prev.proc == cur.proc && cur.fail_at < prev.repair_at)
      throw std::invalid_argument("FaultPlan: processor " +
                                  std::to_string(cur.proc) +
                                  " has overlapping failure intervals");
  }
}

FaultPlan::IntervalRange FaultPlan::intervals_of(ProcId q) const {
  if (q >= processors_) return {};
  const FaultEvent* base = by_proc_.data();
  return {base + by_proc_begin_[q], base + by_proc_begin_[q + 1]};
}

const FaultEvent* FaultPlan::event_of(ProcId q) const {
  const IntervalRange r = intervals_of(q);
  return r.empty() ? nullptr : r.first;
}

bool FaultPlan::alive(ProcId q, double t) const {
  for (const FaultEvent& e : intervals_of(q)) {
    if (t < e.fail_at) return true;  // intervals are onset-ordered
    if (t < e.repair_at) return false;
  }
  return true;
}

bool FaultPlan::first_onset(ProcId q, double begin, double end,
                            double* out) const {
  for (const FaultEvent& e : intervals_of(q)) {
    if (e.fail_at >= end) return false;
    if (e.fail_at >= begin) {
      *out = e.fail_at;
      return true;
    }
  }
  return false;
}

double FaultPlan::repaired_at(ProcId q, double t) const {
  for (const FaultEvent& e : intervals_of(q)) {
    if (t < e.fail_at) return t;
    if (t < e.repair_at) return e.repair_at;
  }
  return t;
}

ProcessorSet FaultPlan::failed_by(double t) const {
  ProcessorSet s(processors_);
  for (const FaultEvent& e : events_)
    if (e.fail_at <= t) s.insert(e.proc);
  return s;
}

FaultPlan make_fault_plan(std::size_t processors,
                          const FaultPlanParams& prm) {
  if (processors == 0)
    throw std::invalid_argument("make_fault_plan: empty cluster");
  if (!(prm.fail_fraction >= 0.0) || !(prm.fail_fraction <= 1.0))
    throw std::invalid_argument(
        "make_fault_plan: fail_fraction must be in [0, 1]");
  if (!(prm.horizon_s > 0.0))
    throw std::invalid_argument("make_fault_plan: horizon_s must be > 0");
  if (prm.repairs && !(prm.repair_delay_s > 0.0))
    throw std::invalid_argument(
        "make_fault_plan: repair_delay_s must be > 0 when repairs are on");

  const std::size_t protect = std::min(prm.min_survivors, processors);
  std::size_t failures = static_cast<std::size_t>(
      std::llround(prm.fail_fraction * static_cast<double>(processors)));
  failures = std::min(failures, processors - protect);

  Rng rng(prm.seed);
  // Partial Fisher-Yates over the processor indices: the first `failures`
  // entries of `ids` are a uniform sample without replacement.
  std::vector<ProcId> ids(processors);
  for (std::size_t i = 0; i < processors; ++i)
    ids[i] = static_cast<ProcId>(i);
  std::vector<FaultEvent> events;
  events.reserve(failures);
  for (std::size_t i = 0; i < failures; ++i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(processors) - 1));
    std::swap(ids[i], ids[j]);
    FaultEvent e;
    e.proc = ids[i];
    e.fail_at = rng.uniform(0.0, prm.horizon_s);
    if (prm.repairs)
      e.repair_at = e.fail_at + rng.uniform(0.5, 1.5) * prm.repair_delay_s;
    events.push_back(e);
  }
  return FaultPlan(processors, std::move(events));
}

}  // namespace locmps
