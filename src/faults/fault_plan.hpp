#pragma once
/// \file fault_plan.hpp
/// Deterministic fail-stop fault injection for the execution simulator.
///
/// A FaultPlan is a seeded, immutable script of processor failures: each
/// event takes one processor down at a wall-clock instant (fail-stop — the
/// processor vanishes mid-computation, it does not produce wrong results)
/// and optionally brings it back at a repair instant. The event simulator
/// consults the plan while replaying a schedule: a task computing on a
/// processor when it fails is killed, and an in-flight redistribution whose
/// endpoints include the failing processor times out. Because the plan is a
/// pure function of (cluster size, parameters, seed), a faulty execution is
/// exactly reproducible — the property the recovery tests and the
/// determinism acceptance check rely on.
///
/// Failure model notes:
///  * A processor may fail any number of times within one plan, as long as
///    its [fail_at, repair_at) intervals are pairwise disjoint (a node
///    cannot fail while already down). A never-repaired failure is
///    therefore always the last interval of its processor.
///  * Output data of a *completed* task survives its processors' failure
///    (checkpointed to disk at task completion). Only computation in
///    progress and transfers in flight at the failure onset are lost.
///
/// Performance faults (slowdowns, degraded links, runtime noise) are the
/// complementary script: see faults/perturbation.hpp.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/processor_set.hpp"

namespace locmps {

/// Repair time of a processor that never comes back.
inline constexpr double kNeverRepaired =
    std::numeric_limits<double>::infinity();

/// One fail-stop failure of one processor.
struct FaultEvent {
  ProcId proc = 0;
  double fail_at = 0.0;                ///< onset instant (>= 0)
  double repair_at = kNeverRepaired;   ///< strictly after fail_at
};

/// An immutable, validated script of processor failures.
class FaultPlan {
 public:
  /// The failure intervals of one processor, ordered by onset: a
  /// contiguous [begin, end) range into an internal proc-major array,
  /// valid for the lifetime of the plan.
  struct IntervalRange {
    const FaultEvent* first = nullptr;
    const FaultEvent* last = nullptr;
    const FaultEvent* begin() const { return first; }
    const FaultEvent* end() const { return last; }
    bool empty() const { return first == last; }
    std::size_t size() const { return static_cast<std::size_t>(last - first); }
  };

  /// Empty plan (no failures) over a cluster of \p processors.
  explicit FaultPlan(std::size_t processors = 0) : processors_(processors) {
    by_proc_begin_.assign(processors_ + 1, 0);
  }

  /// Validates and adopts \p events: every proc index in range, onsets
  /// non-negative, repair strictly after onset, and per processor the
  /// failure intervals pairwise disjoint. Throws std::invalid_argument
  /// otherwise.
  FaultPlan(std::size_t processors, std::vector<FaultEvent> events);

  std::size_t processors() const { return processors_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// True if processor \p q is up at instant \p t (not inside any
  /// [fail_at, repair_at) interval).
  bool alive(ProcId q, double t) const;

  /// Earliest failure onset of \p q inside [begin, end); false if none.
  bool first_onset(ProcId q, double begin, double end, double* out) const;

  /// When the failure of \p q covering instant \p t is repaired.
  /// Returns \p t itself if q is alive at t, kNeverRepaired if the
  /// covering failure never repairs.
  double repaired_at(ProcId q, double t) const;

  /// The failure intervals of \p q, ordered by onset (empty if q never
  /// fails).
  IntervalRange intervals_of(ProcId q) const;

  /// The *first* failure event of \p q, or null if q never fails.
  const FaultEvent* event_of(ProcId q) const;

  /// Processors whose failure onset is <= t (repaired or not): the set a
  /// runtime at instant t knows to distrust.
  ProcessorSet failed_by(double t) const;

 private:
  std::size_t processors_ = 0;
  std::vector<FaultEvent> events_;   // sorted by (fail_at, proc)
  std::vector<FaultEvent> by_proc_;  // sorted by (proc, fail_at)
  std::vector<std::size_t> by_proc_begin_;  // CSR offsets into by_proc_
};

/// Knobs of the seeded fault-plan generator.
struct FaultPlanParams {
  /// Fraction of the cluster that fails (rounded to nearest, clamped so at
  /// least min_survivors processors never fail).
  double fail_fraction = 0.25;

  /// Failure onsets are drawn uniformly from [0, horizon_s). Pick the
  /// fault-free makespan (or a fraction of it) so failures actually land
  /// inside the execution window.
  double horizon_s = 100.0;

  /// Whether failed processors come back.
  bool repairs = false;

  /// Mean outage length: repair_at = fail_at + u * repair_delay_s with u
  /// uniform in [0.5, 1.5). Ignored when repairs == false.
  double repair_delay_s = 10.0;

  /// Processors that are never picked to fail, bounding degradation.
  std::size_t min_survivors = 1;

  /// Seed of the generator; the plan is a pure function of (processors,
  /// params) — same inputs, same plan, bit for bit.
  std::uint64_t seed = 42;
};

/// Draws a deterministic FaultPlan for a cluster of \p processors. The
/// generator emits at most one interval per sampled processor, so plans it
/// produced before multi-interval support are reproduced bit for bit under
/// the same seeds. Throws std::invalid_argument on nonsensical parameters.
FaultPlan make_fault_plan(std::size_t processors, const FaultPlanParams& prm);

}  // namespace locmps
