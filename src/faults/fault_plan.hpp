#pragma once
/// \file fault_plan.hpp
/// Deterministic fail-stop fault injection for the execution simulator.
///
/// A FaultPlan is a seeded, immutable script of processor failures: each
/// event takes one processor down at a wall-clock instant (fail-stop — the
/// processor vanishes mid-computation, it does not produce wrong results)
/// and optionally brings it back at a repair instant. The event simulator
/// consults the plan while replaying a schedule: a task computing on a
/// processor when it fails is killed, and an in-flight redistribution whose
/// endpoints include the failing processor times out. Because the plan is a
/// pure function of (cluster size, parameters, seed), a faulty execution is
/// exactly reproducible — the property the recovery tests and the
/// determinism acceptance check rely on.
///
/// Failure model notes:
///  * At most one failure interval per processor (fail-stop; a repaired
///    node may be reused but does not fail again within one plan).
///  * Output data of a *completed* task survives its processors' failure
///    (checkpointed to disk at task completion). Only computation in
///    progress and transfers in flight at the failure onset are lost.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/processor_set.hpp"

namespace locmps {

/// Repair time of a processor that never comes back.
inline constexpr double kNeverRepaired =
    std::numeric_limits<double>::infinity();

/// One fail-stop failure of one processor.
struct FaultEvent {
  ProcId proc = 0;
  double fail_at = 0.0;                ///< onset instant (>= 0)
  double repair_at = kNeverRepaired;   ///< strictly after fail_at
};

/// An immutable, validated script of processor failures.
class FaultPlan {
 public:
  /// Empty plan (no failures) over a cluster of \p processors.
  explicit FaultPlan(std::size_t processors = 0) : processors_(processors) {}

  /// Validates and adopts \p events: every proc index in range, onsets
  /// non-negative, repair strictly after onset, at most one event per
  /// processor. Throws std::invalid_argument otherwise.
  FaultPlan(std::size_t processors, std::vector<FaultEvent> events);

  std::size_t processors() const { return processors_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// True if processor \p q is up at instant \p t (not inside any
  /// [fail_at, repair_at) interval).
  bool alive(ProcId q, double t) const;

  /// Earliest failure onset of \p q inside [begin, end); false if none.
  bool first_onset(ProcId q, double begin, double end, double* out) const;

  /// When the failure of \p q covering instant \p t is repaired.
  /// Returns \p t itself if q is alive at t, kNeverRepaired if the
  /// covering failure never repairs.
  double repaired_at(ProcId q, double t) const;

  /// The failure event of \p q, or null if q never fails.
  const FaultEvent* event_of(ProcId q) const;

  /// Processors whose failure onset is <= t (repaired or not): the set a
  /// runtime at instant t knows to distrust.
  ProcessorSet failed_by(double t) const;

 private:
  std::size_t processors_ = 0;
  std::vector<FaultEvent> events_;          // sorted by (fail_at, proc)
  std::vector<std::int32_t> event_of_proc_; // index into events_, -1 = none
};

/// Knobs of the seeded fault-plan generator.
struct FaultPlanParams {
  /// Fraction of the cluster that fails (rounded to nearest, clamped so at
  /// least min_survivors processors never fail).
  double fail_fraction = 0.25;

  /// Failure onsets are drawn uniformly from [0, horizon_s). Pick the
  /// fault-free makespan (or a fraction of it) so failures actually land
  /// inside the execution window.
  double horizon_s = 100.0;

  /// Whether failed processors come back.
  bool repairs = false;

  /// Mean outage length: repair_at = fail_at + u * repair_delay_s with u
  /// uniform in [0.5, 1.5). Ignored when repairs == false.
  double repair_delay_s = 10.0;

  /// Processors that are never picked to fail, bounding degradation.
  std::size_t min_survivors = 1;

  /// Seed of the generator; the plan is a pure function of (processors,
  /// params) — same inputs, same plan, bit for bit.
  std::uint64_t seed = 42;
};

/// Draws a deterministic FaultPlan for a cluster of \p processors.
/// Throws std::invalid_argument on nonsensical parameters.
FaultPlan make_fault_plan(std::size_t processors, const FaultPlanParams& prm);

}  // namespace locmps
