#include "faults/perturbation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace locmps {

PerturbationPlan::PerturbationPlan(std::size_t processors,
                                   std::vector<SlowdownInterval> slowdowns,
                                   std::vector<LinkDegradation> links,
                                   std::vector<double> task_noise)
    : processors_(processors),
      slowdowns_(std::move(slowdowns)),
      links_(std::move(links)),
      task_noise_(std::move(task_noise)) {
  std::sort(slowdowns_.begin(), slowdowns_.end(),
            [](const SlowdownInterval& a, const SlowdownInterval& b) {
              if (a.proc != b.proc) return a.proc < b.proc;
              // Deterministic sort key tie-break. LINT-ALLOW(float-eq)
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end < b.end;
            });
  proc_begin_.assign(processors_ + 1, 0);
  for (const SlowdownInterval& iv : slowdowns_) {
    if (iv.proc >= processors_)
      throw std::invalid_argument("PerturbationPlan: processor index " +
                                  std::to_string(iv.proc) + " out of range");
    if (!(iv.begin >= 0.0))
      throw std::invalid_argument("PerturbationPlan: negative slowdown onset");
    if (!(iv.end > iv.begin))
      throw std::invalid_argument(
          "PerturbationPlan: slowdown end must be strictly after begin");
    if (!(iv.factor >= 1.0) || !std::isfinite(iv.factor))
      throw std::invalid_argument(
          "PerturbationPlan: slowdown factor must be finite and >= 1");
    ++proc_begin_[iv.proc + 1];
  }
  for (std::size_t q = 0; q < processors_; ++q)
    proc_begin_[q + 1] += proc_begin_[q];
  for (std::size_t i = 1; i < slowdowns_.size(); ++i) {
    const SlowdownInterval& prev = slowdowns_[i - 1];
    const SlowdownInterval& cur = slowdowns_[i];
    if (prev.proc == cur.proc && cur.begin < prev.end)
      throw std::invalid_argument("PerturbationPlan: processor " +
                                  std::to_string(cur.proc) +
                                  " has overlapping slowdown intervals");
  }

  std::sort(links_.begin(), links_.end(),
            [](const LinkDegradation& a, const LinkDegradation& b) {
              // Deterministic sort key tie-break. LINT-ALLOW(float-eq)
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end < b.end;
            });
  for (const LinkDegradation& w : links_) {
    if (!(w.begin >= 0.0))
      throw std::invalid_argument(
          "PerturbationPlan: negative link-degradation onset");
    if (!(w.end > w.begin))
      throw std::invalid_argument(
          "PerturbationPlan: link-degradation end must be strictly after "
          "begin");
    if (!(w.scale > 0.0) || !(w.scale <= 1.0))
      throw std::invalid_argument(
          "PerturbationPlan: link scale must be in (0, 1]");
  }
  for (std::size_t i = 1; i < links_.size(); ++i)
    if (links_[i].begin < links_[i - 1].end)
      throw std::invalid_argument(
          "PerturbationPlan: overlapping link-degradation windows");

  for (double f : task_noise_)
    if (!(f > 0.0) || !std::isfinite(f))
      throw std::invalid_argument(
          "PerturbationPlan: task noise factors must be finite and > 0");
}

double PerturbationPlan::slowdown(ProcId q, double t) const {
  if (q >= processors_) return 1.0;
  for (std::size_t i = proc_begin_[q]; i < proc_begin_[q + 1]; ++i) {
    const SlowdownInterval& iv = slowdowns_[i];
    if (t < iv.begin) break;  // intervals are onset-ordered per proc
    if (t < iv.end) return iv.factor;
  }
  return 1.0;
}

double PerturbationPlan::link_scale(double t) const {
  for (const LinkDegradation& w : links_) {
    if (t < w.begin) break;
    if (t < w.end) return w.scale;
  }
  return 1.0;
}

double PerturbationPlan::compute_finish(const ProcessorSet& procs, double st,
                                        double work) const {
  if (work <= 0.0) return st;
  if (slowdowns_.empty()) return st + work;
  double t = st;
  double remaining = work;
  // Piecewise sweep: inside one piece the rate is constant (1 / the
  // slowest member's factor); pieces end at the next window boundary of
  // any member. Terminates: each iteration either finishes or advances t
  // to one of the finitely many boundaries.
  for (;;) {
    double factor = 1.0;
    double next_change = std::numeric_limits<double>::infinity();
    procs.for_each([&](ProcId q) {
      if (q >= processors_) return;
      for (std::size_t i = proc_begin_[q]; i < proc_begin_[q + 1]; ++i) {
        const SlowdownInterval& iv = slowdowns_[i];
        if (t < iv.begin) {
          next_change = std::min(next_change, iv.begin);
          break;
        }
        if (t < iv.end) {
          factor = std::max(factor, iv.factor);
          next_change = std::min(next_change, iv.end);
          break;
        }
      }
    });
    // Infinity is the exact no-more-windows sentinel. LINT-ALLOW(float-eq)
    if (next_change == std::numeric_limits<double>::infinity())
      return t + remaining * factor;
    const double nominal_in_piece = (next_change - t) / factor;
    if (nominal_in_piece >= remaining) return t + remaining * factor;
    remaining -= nominal_in_piece;
    t = next_change;
  }
}

double PerturbationPlan::transfer_finish(double st, double dur) const {
  if (dur <= 0.0) return st;
  if (links_.empty()) return st + dur;
  double t = st;
  double remaining = dur;
  for (;;) {
    double scale = 1.0;
    double next_change = std::numeric_limits<double>::infinity();
    for (const LinkDegradation& w : links_) {
      if (t < w.begin) {
        next_change = w.begin;
        break;
      }
      if (t < w.end) {
        scale = w.scale;
        next_change = w.end;
        break;
      }
    }
    // Infinity is the exact no-more-windows sentinel. LINT-ALLOW(float-eq)
    if (next_change == std::numeric_limits<double>::infinity())
      return t + remaining / scale;
    const double nominal_in_piece = (next_change - t) * scale;
    if (nominal_in_piece >= remaining) return t + remaining / scale;
    remaining -= nominal_in_piece;
    t = next_change;
  }
}

PerturbationPlan make_perturbation_plan(std::size_t processors,
                                        std::size_t num_tasks,
                                        const PerturbationParams& prm) {
  if (processors == 0)
    throw std::invalid_argument("make_perturbation_plan: empty cluster");
  if (!(prm.slow_fraction >= 0.0) || !(prm.slow_fraction <= 1.0))
    throw std::invalid_argument(
        "make_perturbation_plan: slow_fraction must be in [0, 1]");
  if (!(prm.slow_factor >= 1.0))
    throw std::invalid_argument(
        "make_perturbation_plan: slow_factor must be >= 1");
  if (!(prm.horizon_s > 0.0))
    throw std::invalid_argument(
        "make_perturbation_plan: horizon_s must be > 0");
  if (!(prm.slow_duration_s > 0.0))
    throw std::invalid_argument(
        "make_perturbation_plan: slow_duration_s must be > 0");
  if (prm.link_windows > 0 &&
      (!(prm.link_scale > 0.0) || !(prm.link_scale <= 1.0)))
    throw std::invalid_argument(
        "make_perturbation_plan: link_scale must be in (0, 1]");
  if (prm.link_windows > 0 && !(prm.link_duration_s > 0.0))
    throw std::invalid_argument(
        "make_perturbation_plan: link_duration_s must be > 0");
  if (!(prm.task_noise >= 0.0) || !(prm.task_noise < 1.0))
    throw std::invalid_argument(
        "make_perturbation_plan: task_noise must be in [0, 1)");

  Rng rng(prm.seed);

  // Slowdowns: a uniform sample without replacement (partial Fisher-Yates,
  // mirroring make_fault_plan) of slow_fraction * P processors, one window
  // each.
  const std::size_t protect = std::min(prm.min_unperturbed, processors);
  std::size_t slowed = static_cast<std::size_t>(
      std::llround(prm.slow_fraction * static_cast<double>(processors)));
  slowed = std::min(slowed, processors - protect);
  if (prm.slow_factor <= 1.0) slowed = 0;

  std::vector<ProcId> ids(processors);
  for (std::size_t i = 0; i < processors; ++i)
    ids[i] = static_cast<ProcId>(i);
  std::vector<SlowdownInterval> slow;
  slow.reserve(slowed);
  for (std::size_t i = 0; i < slowed; ++i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(processors) - 1));
    std::swap(ids[i], ids[j]);
    SlowdownInterval iv;
    iv.proc = ids[i];
    iv.begin = rng.uniform(0.0, prm.horizon_s);
    iv.end = iv.begin + rng.uniform(0.5, 1.5) * prm.slow_duration_s;
    iv.factor = 1.0 + (prm.slow_factor - 1.0) * rng.uniform(0.5, 1.5);
    slow.push_back(iv);
  }

  // Degraded-link windows: one per equal stratum of the horizon, clamped
  // inside its stratum — disjoint by construction.
  std::vector<LinkDegradation> links;
  links.reserve(prm.link_windows);
  if (prm.link_windows > 0) {
    const double stratum =
        prm.horizon_s / static_cast<double>(prm.link_windows);
    for (std::size_t i = 0; i < prm.link_windows; ++i) {
      const double lo = stratum * static_cast<double>(i);
      LinkDegradation w;
      const double len =
          std::min(rng.uniform(0.5, 1.5) * prm.link_duration_s, stratum);
      w.begin = lo + rng.uniform(0.0, stratum - len);
      w.end = w.begin + len;
      w.scale = prm.link_scale;
      links.push_back(w);
    }
  }

  // Bounded per-task noise.
  std::vector<double> noise;
  if (prm.task_noise > 0.0) {
    noise.resize(num_tasks);
    for (double& f : noise)
      f = 1.0 + rng.uniform(-prm.task_noise, prm.task_noise);
  }

  return PerturbationPlan(processors, std::move(slow), std::move(links),
                          std::move(noise));
}

}  // namespace locmps
