#pragma once
/// \file perturbation.hpp
/// Deterministic performance-fault injection: the complement of fail-stop
/// faults (fault_plan.hpp) for the way real clusters usually misbehave —
/// processors that keep running but slower (stragglers), links that
/// degrade, and runtimes that wobble around the model.
///
/// A PerturbationPlan is a seeded, immutable script of three perturbation
/// families:
///  * **slowdown intervals**: processor q computes at 1/factor speed
///    inside [begin, end). A gang computation advances at the pace of its
///    slowest member, so a task spanning a slowed processor stretches.
///  * **degraded-link windows**: every network transfer progresses at
///    `scale` times the nominal bandwidth inside [begin, end) — the same
///    bandwidth the CommModel prices statically (CommModel::degraded gives
///    the uniformly-degraded counterpart model).
///  * **bounded per-task noise**: one multiplicative runtime factor per
///    task, drawn uniformly from [1 - noise, 1 + noise).
///
/// The event simulator integrates compute and transfer progress piecewise
/// across these windows (SimOptions::perturb), so a perturbed replay is an
/// exact pure function of (schedule, plan) — the same determinism contract
/// as fail-stop injection. The Monte-Carlo robustness harness
/// (faults/robustness.hpp) replays one schedule under an ensemble of these
/// plans to score how much slack the schedule really has.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/processor_set.hpp"

namespace locmps {

/// One processor-slowdown window: q computes `factor` times slower inside.
struct SlowdownInterval {
  ProcId proc = 0;
  double begin = 0.0;
  double end = 0.0;     ///< strictly after begin
  double factor = 1.0;  ///< >= 1; work takes factor x as long inside
};

/// One degraded-link window: all transfers run at `scale` x bandwidth.
struct LinkDegradation {
  double begin = 0.0;
  double end = 0.0;    ///< strictly after begin
  double scale = 1.0;  ///< in (0, 1]; transfer progress rate inside
};

/// An immutable, validated script of performance faults.
class PerturbationPlan {
 public:
  /// Empty plan (model-exact execution) over a cluster of \p processors.
  explicit PerturbationPlan(std::size_t processors = 0)
      : processors_(processors) {
    proc_begin_.assign(processors_ + 1, 0);
  }

  /// Validates and adopts the scripts: slowdown intervals in range, with
  /// factor >= 1 and pairwise-disjoint windows per processor; link windows
  /// pairwise disjoint with scale in (0, 1]; noise factors strictly
  /// positive. Throws std::invalid_argument otherwise.
  PerturbationPlan(std::size_t processors,
                   std::vector<SlowdownInterval> slowdowns,
                   std::vector<LinkDegradation> links,
                   std::vector<double> task_noise = {});

  std::size_t processors() const { return processors_; }
  const std::vector<SlowdownInterval>& slowdowns() const {
    return slowdowns_;
  }
  const std::vector<LinkDegradation>& links() const { return links_; }

  /// Per-task runtime factors; empty means "no noise" (all 1.0). When
  /// non-empty its size must match the task count of the simulated graph.
  const std::vector<double>& task_noise() const { return task_noise_; }

  bool empty() const {
    return slowdowns_.empty() && links_.empty() && task_noise_.empty();
  }

  /// Compute-stretch factor of processor \p q at instant \p t (1.0 when
  /// unperturbed).
  double slowdown(ProcId q, double t) const;

  /// Bandwidth scale of the network at instant \p t (1.0 when clean).
  double link_scale(double t) const;

  /// Finish instant of \p work nominal compute-seconds started at \p st on
  /// \p procs: piecewise integration at the slowest-member rate across the
  /// slowdown windows. Returns st + work when nothing intersects.
  double compute_finish(const ProcessorSet& procs, double st,
                        double work) const;

  /// Finish instant of a transfer of nominal duration \p dur started at
  /// \p st: piecewise integration across the degraded-link windows.
  double transfer_finish(double st, double dur) const;

 private:
  std::size_t processors_ = 0;
  std::vector<SlowdownInterval> slowdowns_;  // sorted by (proc, begin)
  std::vector<std::size_t> proc_begin_;      // CSR offsets into slowdowns_
  std::vector<LinkDegradation> links_;       // sorted by begin, disjoint
  std::vector<double> task_noise_;
};

/// Knobs of the seeded perturbation generator.
struct PerturbationParams {
  /// Fraction of the cluster that straggles (one slowdown window each,
  /// rounded to nearest, clamped so min_unperturbed procs stay clean).
  double slow_fraction = 0.25;

  /// Stretch of a slowed processor: factor = 1 + (slow_factor - 1) * u
  /// with u uniform in [0.5, 1.5). slow_factor = 1 disables slowdowns.
  double slow_factor = 2.0;

  /// Mean slowdown window length: duration = u * slow_duration_s with u
  /// uniform in [0.5, 1.5).
  double slow_duration_s = 20.0;

  /// Slowdown onsets are drawn uniformly from [0, horizon_s); pick the
  /// clean makespan (or a fraction) so windows land inside the execution.
  double horizon_s = 100.0;

  /// Number of degraded-link windows, drawn one per equal stratum of the
  /// horizon (so they are disjoint by construction). 0 = clean network.
  std::size_t link_windows = 0;

  /// Bandwidth multiplier inside a degraded window, in (0, 1].
  double link_scale = 0.5;

  /// Mean degraded-window length (clamped into its stratum).
  double link_duration_s = 10.0;

  /// Half-width of the bounded per-task runtime noise: factors uniform in
  /// [1 - task_noise, 1 + task_noise). 0 = exact runtimes. Must be < 1.
  double task_noise = 0.0;

  /// Processors never picked to straggle, bounding degradation.
  std::size_t min_unperturbed = 1;

  /// Seed; the plan is a pure function of (processors, num_tasks, params).
  std::uint64_t seed = 42;
};

/// Draws a deterministic PerturbationPlan for a cluster of \p processors
/// and a graph of \p num_tasks tasks. Throws std::invalid_argument on
/// nonsensical parameters.
PerturbationPlan make_perturbation_plan(std::size_t processors,
                                        std::size_t num_tasks,
                                        const PerturbationParams& prm);

}  // namespace locmps
