#include "faults/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "network/block_cyclic.hpp"
#include "schedule/event_sim.hpp"

namespace locmps {

namespace {

const char* kind_str(TaskKill::Kind k) {
  switch (k) {
    case TaskKill::Kind::kDeadAtStart:
      return "dead_at_start";
    case TaskKill::Kind::kCompute:
      return "compute";
    case TaskKill::Kind::kTransfer:
      return "transfer";
  }
  return "?";
}

/// Entry validation: every nonsensical knob is a structured
/// std::invalid_argument naming the offending field, never silent
/// misbehavior downstream.
void validate_options(const RecoveryOptions& opt, std::size_t processors) {
  if (opt.max_retries == 0)
    throw std::invalid_argument(
        "RecoveryOptions: max_retries must be >= 1 (0 would kill every "
        "retried task immediately)");
  if (!(opt.backoff_base_s >= 0.0))
    throw std::invalid_argument(
        "RecoveryOptions: backoff_base_s must be >= 0, got " +
        std::to_string(opt.backoff_base_s));
  if (!(opt.backoff_factor > 0.0))
    throw std::invalid_argument(
        "RecoveryOptions: backoff_factor must be > 0, got " +
        std::to_string(opt.backoff_factor));
  if (opt.min_procs > processors)
    throw std::invalid_argument(
        "RecoveryOptions: min_procs (" + std::to_string(opt.min_procs) +
        ") exceeds the cluster size (" + std::to_string(processors) + ")");
  if (!(opt.runtime_noise >= 0.0) || !(opt.runtime_noise < 1.0))
    throw std::invalid_argument(
        "RecoveryOptions: runtime_noise must be in [0, 1), got " +
        std::to_string(opt.runtime_noise));
  if (opt.max_rounds == 0)
    throw std::invalid_argument("RecoveryOptions: max_rounds must be >= 1");
  // 0.0 is the exact detection-off sentinel. LINT-ALLOW(float-eq)
  if (opt.straggler_threshold != 0.0 && !(opt.straggler_threshold > 1.0))
    throw std::invalid_argument(
        "RecoveryOptions: straggler_threshold must be 0 (off) or > 1, got " +
        std::to_string(opt.straggler_threshold));
}

}  // namespace

const char* to_string(RecoveryPolicy p) {
  return p == RecoveryPolicy::kRetryInPlace ? "retry" : "replan";
}

const char* to_string(StragglerMitigation m) {
  return m == StragglerMitigation::kSpeculate ? "speculate" : "replan";
}

void join_fault_plan(obs::ScheduleAnalysis& a, const FaultPlan& plan) {
  a.fault_windows.clear();
  for (const FaultEvent& e : plan.events()) {
    obs::FaultWindow w;
    w.proc = e.proc;
    w.fail_s = e.fail_at;
    w.repair_s = e.repair_at == kNeverRepaired ? -1.0 : e.repair_at;
    a.fault_windows.push_back(w);
  }
  std::sort(a.fault_windows.begin(), a.fault_windows.end(),
            [](const obs::FaultWindow& x, const obs::FaultWindow& y) {
              if (x.fail_s != y.fail_s) return x.fail_s < y.fail_s;
              return x.proc < y.proc;
            });
}

RecoveryResult run_with_faults(const TaskGraph& g, const Cluster& cluster,
                               const FaultPlan& plan,
                               const RecoveryOptions& opt) {
  const std::size_t n = g.num_tasks();
  const std::size_t P = cluster.processors;
  if (plan.processors() != P)
    throw std::invalid_argument(
        "run_with_faults: fault plan sized for a different cluster");
  if (opt.perturb != nullptr && opt.perturb->processors() != P)
    throw std::invalid_argument(
        "run_with_faults: perturbation plan sized for a different cluster");
  if (opt.perturb != nullptr && !opt.perturb->task_noise().empty() &&
      opt.perturb->task_noise().size() != n)
    throw std::invalid_argument(
        "run_with_faults: perturbation task noise sized for a different "
        "graph");
  validate_options(opt, P);

  obs::ObsContext* const obs = opt.obs;
  obs::MetricsRegistry* const met = obs::metrics_of(obs);
  obs::ScopedTimer run_timer(met, "recovery.run");
  CommModel comm(cluster);
  LocMPSScheduler planner(opt.planner);
  planner.attach_observability(obs);

  RecoveryResult out;
  out.masked = ProcessorSet(P);
  if (met != nullptr)
    met->set("fault.injected", static_cast<double>(plan.events().size()));

  SchedulerResult plan0 = planner.schedule(g, cluster);
  out.planned_makespan = plan0.estimated_makespan;
  Schedule current = std::move(plan0.schedule);

  // One noise factor per task, fixed for the whole loop: every round
  // replays the same reality, which is what makes recovery deterministic.
  const std::vector<double> noise =
      make_noise_factors(n, opt.runtime_noise, opt.seed);
  std::vector<double> release(n, 0.0);
  std::vector<std::size_t> attempts(n, 0);
  std::vector<char> announced(P, 0);
  std::vector<char> mitigated(n, 0);  // at most one mitigation per task
  ProcessorSet survivors = cluster.all();

  SimOptions sim;
  sim.noise_factors = &noise;
  sim.release_times = &release;
  sim.faults = &plan;
  sim.perturb = opt.perturb;

  // Emits one "fault.fail" per processor whose failure the runtime has now
  // observed (onset <= up_to).
  auto announce = [&](double up_to) {
    for (const FaultEvent& e : plan.events()) {
      if (e.fail_at > up_to || announced[e.proc] != 0) continue;
      announced[e.proc] = 1;
      if (met != nullptr) met->add("fault.procs_failed");
      if (obs::wants_events(obs))
        obs->sink->emit(
            obs::Event("fault.fail")
                .with("proc", e.proc)
                .with("at", e.fail_at)
                .with("repairs", e.repair_at != kNeverRepaired)
                .with("repair_at",
                      e.repair_at == kNeverRepaired ? -1.0 : e.repair_at));
    }
  };

  auto giveup = [&](SimResult&& run, std::string why) {
    out.completed = false;
    out.error = std::move(why);
    out.executed = std::move(run.executed);
    out.makespan = out.executed.makespan();
    if (met != nullptr) {
      met->add("recovery.giveups");
      met->set("recovery.rounds", static_cast<double>(out.rounds));
      met->set("recovery.masked_procs",
               static_cast<double>(out.masked.count()));
    }
    if (obs::wants_events(obs))
      obs->sink->emit(obs::Event("recovery.giveup")
                          .with("reason", out.error)
                          .with("rounds",
                                static_cast<std::uint64_t>(out.rounds)));
    return out;
  };

  while (out.rounds < opt.max_rounds) {
    ++out.rounds;
    SimResult run = simulate_execution(g, current, comm, sim);
    if (run.clean()) {
      // A clean (kill-free) round may still contain stragglers: tasks that
      // ran past straggler_threshold x their modeled time. The runtime
      // notices at the deadline instant; mitigate the earliest detection
      // and re-run. Each task is mitigated at most once, so this loop
      // terminates.
      if (opt.straggler_threshold > 0.0) {
        TaskId straggler = kNoTask;
        double detect_at = 0.0;
        for (TaskId t = 0; t < n; ++t) {
          if (mitigated[t] != 0) continue;
          const Placement& pe = run.executed.at(t);
          if (!pe.scheduled()) continue;
          const double deadline =
              pe.start +
              opt.straggler_threshold * g.task(t).profile.time(pe.np());
          const double tol = 1e-9 * std::max(1.0, std::fabs(deadline));
          if (pe.finish <= deadline + tol) continue;
          if (straggler == kNoTask || deadline < detect_at) {
            straggler = t;
            detect_at = deadline;
          }
        }
        if (straggler != kNoTask) {
          const Placement pe = run.executed.at(straggler);  // copy; run moves
          const double modeled = g.task(straggler).profile.time(pe.np());
          ++out.stragglers;
          mitigated[straggler] = 1;
          if (met != nullptr) met->add("mitigation.stragglers");
          if (obs::wants_events(obs))
            obs->sink->emit(obs::Event("mitigation.straggler")
                                .with("task", straggler)
                                .with("start", pe.start)
                                .with("at", detect_at)
                                .with("realized_s", pe.finish - pe.start)
                                .with("modeled_s", modeled));

          if (opt.straggler_mitigation == StragglerMitigation::kSpeculate) {
            // Speculative re-execution: launch a copy of the straggler on
            // the least-slowed, least-loaded healthy processors outside its
            // own set. The first finisher wins; the loser is cancelled at
            // the winner's finish and its processor-seconds are waste.
            // Occupancy counts only work already underway at the detection
            // instant — the runtime cannot see future finish times, and
            // displaced not-yet-started tasks are re-serialized by the
            // next simulation round (their delay lands in the realized
            // makespan, not in a clairvoyant candidate choice).
            std::vector<double> busy_until(P, 0.0);
            for (TaskId t2 = 0; t2 < n; ++t2) {
              const Placement& p2 = run.executed.at(t2);
              if (!p2.scheduled() || p2.start > detect_at) continue;
              p2.procs.for_each([&](ProcId q) {
                busy_until[q] = std::max(busy_until[q], p2.finish);
              });
            }
            std::vector<ProcId> cand;
            for (ProcId q = 0; q < P; ++q) {
              if (pe.procs.contains(q) || out.masked.contains(q)) continue;
              if (!plan.alive(q, detect_at)) continue;
              cand.push_back(q);
            }
            const std::size_t w = pe.np();
            if (cand.size() >= w) {
              const PerturbationPlan* const pp = opt.perturb;
              std::sort(cand.begin(), cand.end(), [&](ProcId a, ProcId b) {
                const double sa = pp ? pp->slowdown(a, detect_at) : 1.0;
                const double sb = pp ? pp->slowdown(b, detect_at) : 1.0;
                // Deterministic sort key tie-break. LINT-ALLOW(float-eq)
                if (sa != sb) return sa < sb;
                if (busy_until[a] != busy_until[b])  // LINT-ALLOW(float-eq)
                  return busy_until[a] < busy_until[b];
                return a < b;
              });
              ProcessorSet spec(P);
              double free_at = detect_at;
              for (std::size_t i = 0; i < w; ++i) {
                spec.insert(cand[i]);
                free_at = std::max(free_at, busy_until[cand[i]]);
              }
              // The copy re-fetches its inputs from the producers'
              // checkpointed outputs.
              double data_at = 0.0;
              for (EdgeId e : g.in_edges(straggler)) {
                const Edge& ed = g.edge(e);
                const Placement& ps = run.executed.at(ed.src);
                const double rv =
                    remote_volume(ed.volume_bytes, ps.procs, spec);
                data_at = std::max(
                    data_at,
                    ps.finish + comm.transfer_duration(rv, ps.np(), w));
              }
              const double spec_start = std::max(free_at, data_at);
              double factor = noise[straggler];
              if (pp != nullptr && !pp->task_noise().empty())
                factor *= pp->task_noise()[straggler];
              const double spec_finish =
                  pp != nullptr
                      ? pp->compute_finish(spec, spec_start,
                                           modeled * factor)
                      : spec_start + modeled * factor;
              ++out.speculations;
              const bool copy_wins = spec_finish < pe.finish;
              double wasted;
              if (copy_wins) {
                // Adopt the copy: the original is cancelled the instant
                // the copy finishes. The recorded time window is kept from
                // the plan — event_sim replays in recorded-start order and
                // that order must stay precedence-consistent — only the
                // processor set changes; the copy's actual launch instant
                // is enforced through its release time.
                const Placement& cur = current.at(straggler);
                current.place(straggler, cur.busy_from, cur.start,
                              cur.finish, spec);
                release[straggler] =
                    std::max(release[straggler], spec_start);
                wasted = static_cast<double>(pe.np()) *
                         (spec_finish - pe.start);
                ++out.spec_wins;
              } else {
                wasted = static_cast<double>(w) *
                         std::max(0.0, pe.finish - spec_start);
                ++out.spec_losses;
              }
              out.mitigation_wasted_seconds += wasted;
              if (met != nullptr) {
                met->add("mitigation.speculations");
                met->add(copy_wins ? "mitigation.spec_wins"
                                   : "mitigation.spec_losses");
                met->add("mitigation.wasted_seconds", wasted);
              }
              if (obs::wants_events(obs))
                obs->sink->emit(
                    obs::Event("mitigation.speculate")
                        .with("task", straggler)
                        .with("at", detect_at)
                        .with("width", static_cast<std::uint64_t>(w))
                        .with("spec_start", spec_start)
                        .with("spec_finish", spec_finish)
                        .with("orig_finish", pe.finish)
                        .with("winner", copy_wins ? "copy" : "original")
                        .with("wasted_s", wasted));
            }
          } else {
            // Straggler replan: cancel the straggler at the detection
            // instant, distrust the slowed members of its placement, and
            // re-plan the remaining work around the frozen prefix — the
            // degraded-replan path, triggered by a slowdown instead of a
            // failure.
            if (opt.perturb != nullptr)
              pe.procs.for_each([&](ProcId q) {
                if (opt.perturb->slowdown(q, detect_at) > 1.0)
                  out.masked.insert(q);
              });
            survivors = cluster.all();
            survivors -= out.masked;
            const std::size_t alive_procs = survivors.count();
            if (alive_procs < std::max<std::size_t>(1, opt.min_procs))
              return giveup(
                  std::move(run),
                  "cluster degraded below minimum width: " +
                      std::to_string(alive_procs) + " survivors < " +
                      std::to_string(
                          std::max<std::size_t>(1, opt.min_procs)) +
                      " required");

            const double eps =
                1e-9 * std::max(1.0, std::fabs(detect_at));
            Schedule committed(n, P);
            std::vector<char> frozen(n, 0);
            std::size_t n_frozen = 0;
            for (TaskId t2 = 0; t2 < n; ++t2) {
              if (t2 == straggler) continue;
              const Placement& p2 = run.executed.at(t2);
              if (p2.scheduled() && p2.start <= detect_at + eps) {
                frozen[t2] = 1;
                committed.place(t2, p2.busy_from, p2.start, p2.finish,
                                p2.procs);
                ++n_frozen;
              }
            }
            for (TaskId t2 = 0; t2 < n; ++t2)
              if (frozen[t2] == 0)
                release[t2] = std::max(release[t2], detect_at);
            const double wasted =
                static_cast<double>(pe.np()) * (detect_at - pe.start);
            out.mitigation_wasted_seconds += wasted;

            FixedPrefix fixed;
            fixed.frozen = std::move(frozen);
            fixed.placements = &committed;
            fixed.not_before = detect_at;
            fixed.available = &survivors;
            SchedulerResult re =
                planner.schedule_with_fixed(g, cluster, fixed);
            current = std::move(re.schedule);
            ++out.straggler_replans;
            if (met != nullptr) {
              met->add("mitigation.replans");
              met->add("mitigation.wasted_seconds", wasted);
              met->set("recovery.masked_procs",
                       static_cast<double>(out.masked.count()));
            }
            if (obs::wants_events(obs))
              obs->sink->emit(
                  obs::Event("mitigation.replan")
                      .with("task", straggler)
                      .with("at", detect_at)
                      .with("masked",
                            static_cast<std::uint64_t>(out.masked.count()))
                      .with("survivors",
                            static_cast<std::uint64_t>(alive_procs))
                      .with("frozen", static_cast<std::uint64_t>(n_frozen))
                      .with("estimated", re.estimated_makespan)
                      .with("wasted_s", wasted));
          }
          continue;
        }
      }
      if (obs != nullptr) {
        // Re-run the final, clean round with observability attached so the
        // usual "sim.*" counters and transfer events describe exactly the
        // realized execution (faulty rounds stay silent — their transfers
        // never completed as accounted).
        SimOptions fin = sim;
        fin.obs = obs;
        run = simulate_execution(g, current, comm, fin);
      }
      out.executed = std::move(run.executed);
      out.makespan = run.makespan;
      out.completed = true;
      if (met != nullptr) {
        met->set("recovery.rounds", static_cast<double>(out.rounds));
        met->set("recovery.masked_procs",
                 static_cast<double>(out.masked.count()));
      }
      if (obs::wants_events(obs))
        obs->sink->emit(
            obs::Event("recovery.done")
                .with("rounds", static_cast<std::uint64_t>(out.rounds))
                .with("kills", static_cast<std::uint64_t>(out.kills))
                .with("retries", static_cast<std::uint64_t>(out.retries))
                .with("replans", static_cast<std::uint64_t>(out.replans))
                .with("stragglers",
                      static_cast<std::uint64_t>(out.stragglers))
                .with("wasted_s", out.wasted_proc_seconds)
                .with("mitigation_wasted_s", out.mitigation_wasted_seconds)
                .with("makespan", out.makespan));
      return out;
    }

    // The recovery decision happens at the earliest kill: later kills are
    // not yet observable (the work is still running) — they replay
    // identically next round and are handled then.
    const double t_k = run.kills.front().at;
    const double eps = 1e-9 * std::max(1.0, std::fabs(t_k));
    announce(t_k);

    std::vector<const TaskKill*> now;
    std::vector<const TaskKill*> later;
    for (const TaskKill& k : run.kills)
      (k.at <= t_k + eps ? now : later).push_back(&k);

    for (const TaskKill* k : now) {
      ++out.kills;
      if (k->kind == TaskKill::Kind::kTransfer) ++out.transfer_timeouts;
      out.wasted_proc_seconds += k->wasted_s;
      if (met != nullptr) {
        met->add("fault.kills");
        if (k->kind == TaskKill::Kind::kTransfer)
          met->add("fault.transfer_timeouts");
        met->add("fault.wasted_proc_seconds", k->wasted_s);
      }
      if (obs::wants_events(obs))
        obs->sink->emit(obs::Event("fault.kill")
                            .with("task", k->task)
                            .with("proc", k->proc)
                            .with("at", k->at)
                            .with("start", k->start)
                            .with("kind", kind_str(k->kind))
                            .with("wasted_s", k->wasted_s));
    }

    if (opt.policy == RecoveryPolicy::kRetryInPlace) {
      for (const TaskKill* k : now) {
        const TaskId t = k->task;
        if (++attempts[t] > opt.max_retries)
          return giveup(std::move(run),
                        "task " + g.task(t).name + " killed " +
                            std::to_string(attempts[t]) +
                            " times, exceeding max_retries=" +
                            std::to_string(opt.max_retries));
        // The task restarts on its original processors once they are all
        // usable again, plus an exponential backoff.
        double resume = k->at;
        bool never_repaired = false;
        ProcId never_q = 0;
        current.at(t).procs.for_each([&](ProcId q) {
          if (plan.alive(q, k->at)) return;
          const double r = plan.repaired_at(q, k->at);
          // kNeverRepaired is a sentinel, compared exactly by design.
          if (r == kNeverRepaired) {  // LINT-ALLOW(float-eq)
            if (!never_repaired) {
              never_repaired = true;
              never_q = q;
            }
          } else {
            resume = std::max(resume, r);
          }
        });
        if (never_repaired)
          return giveup(std::move(run),
                        "processor " + std::to_string(never_q) +
                            " never repairs; retry-in-place cannot re-run "
                            "task " +
                            g.task(t).name);
        const double backoff =
            opt.backoff_base_s *
            std::pow(opt.backoff_factor,
                     static_cast<double>(attempts[t] - 1));
        release[t] = std::max(release[t], resume + backoff);
        ++out.retries;
        out.backoff_seconds += backoff;
        if (met != nullptr) {
          met->add("recovery.retries");
          met->add("recovery.backoff_seconds", backoff);
        }
        if (obs::wants_events(obs))
          obs->sink->emit(
              obs::Event("recovery.retry")
                  .with("task", t)
                  .with("attempt",
                        static_cast<std::uint64_t>(attempts[t]))
                  .with("at", k->at)
                  .with("resume", release[t]));
      }
    } else {
      // Degraded-cluster replan: distrust every processor known failed by
      // the decision instant (monotone — each replan masks at least one
      // new onset, bounding the number of replans by the cluster size).
      out.masked |= plan.failed_by(t_k);
      survivors = cluster.all();
      survivors -= out.masked;
      const std::size_t alive_procs = survivors.count();
      if (alive_procs < std::max<std::size_t>(1, opt.min_procs))
        return giveup(std::move(run),
                      "cluster degraded below minimum width: " +
                          std::to_string(alive_procs) + " survivors < " +
                          std::to_string(std::max<std::size_t>(
                              1, opt.min_procs)) +
                          " required");

      // Freeze everything already committed at the decision instant: tasks
      // that started (or finished) by t_k keep their realized windows, and
      // work in flight that a *later* onset will kill keeps running — that
      // kill is not observable yet and is handled when it replays.
      Schedule committed(n, P);
      std::vector<char> frozen(n, 0);
      std::size_t n_frozen = 0;
      for (TaskId t = 0; t < n; ++t) {
        const Placement& pe = run.executed.at(t);
        if (pe.scheduled() && pe.start <= t_k + eps) {
          frozen[t] = 1;
          committed.place(t, pe.busy_from, pe.start, pe.finish, pe.procs);
          ++n_frozen;
        }
      }
      for (const TaskKill* k : later) {
        if (k->kind != TaskKill::Kind::kCompute || k->start > t_k + eps)
          continue;
        frozen[k->task] = 1;
        committed.place(k->task, k->busy_from, k->start, k->planned_finish,
                        current.at(k->task).procs);
        ++n_frozen;
      }

      for (TaskId t = 0; t < n; ++t)
        if (frozen[t] == 0) release[t] = std::max(release[t], t_k);

      FixedPrefix fixed;
      fixed.frozen = std::move(frozen);
      fixed.placements = &committed;
      fixed.not_before = t_k;
      fixed.available = &survivors;
      SchedulerResult re = planner.schedule_with_fixed(g, cluster, fixed);
      current = std::move(re.schedule);
      ++out.replans;
      if (met != nullptr) {
        met->add("recovery.replans");
        met->set("recovery.masked_procs",
                 static_cast<double>(out.masked.count()));
      }
      if (obs::wants_events(obs))
        obs->sink->emit(
            obs::Event("recovery.replan")
                .with("at", t_k)
                .with("survivors",
                      static_cast<std::uint64_t>(alive_procs))
                .with("masked",
                      static_cast<std::uint64_t>(out.masked.count()))
                .with("frozen", static_cast<std::uint64_t>(n_frozen))
                .with("estimated", re.estimated_makespan));
    }
  }

  SimResult last;
  last.executed = Schedule(n, P);
  return giveup(std::move(last),
                "recovery did not converge within max_rounds=" +
                    std::to_string(opt.max_rounds));
}

}  // namespace locmps
