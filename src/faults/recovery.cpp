#include "faults/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "schedule/event_sim.hpp"

namespace locmps {

namespace {

const char* kind_str(TaskKill::Kind k) {
  switch (k) {
    case TaskKill::Kind::kDeadAtStart:
      return "dead_at_start";
    case TaskKill::Kind::kCompute:
      return "compute";
    case TaskKill::Kind::kTransfer:
      return "transfer";
  }
  return "?";
}

}  // namespace

const char* to_string(RecoveryPolicy p) {
  return p == RecoveryPolicy::kRetryInPlace ? "retry" : "replan";
}

void join_fault_plan(obs::ScheduleAnalysis& a, const FaultPlan& plan) {
  a.fault_windows.clear();
  for (const FaultEvent& e : plan.events()) {
    obs::FaultWindow w;
    w.proc = e.proc;
    w.fail_s = e.fail_at;
    w.repair_s = e.repair_at == kNeverRepaired ? -1.0 : e.repair_at;
    a.fault_windows.push_back(w);
  }
  std::sort(a.fault_windows.begin(), a.fault_windows.end(),
            [](const obs::FaultWindow& x, const obs::FaultWindow& y) {
              if (x.fail_s != y.fail_s) return x.fail_s < y.fail_s;
              return x.proc < y.proc;
            });
}

RecoveryResult run_with_faults(const TaskGraph& g, const Cluster& cluster,
                               const FaultPlan& plan,
                               const RecoveryOptions& opt) {
  const std::size_t n = g.num_tasks();
  const std::size_t P = cluster.processors;
  if (plan.processors() != P)
    throw std::invalid_argument(
        "run_with_faults: fault plan sized for a different cluster");

  obs::ObsContext* const obs = opt.obs;
  obs::MetricsRegistry* const met = obs::metrics_of(obs);
  obs::ScopedTimer run_timer(met, "recovery.run");
  CommModel comm(cluster);
  LocMPSScheduler planner(opt.planner);
  planner.attach_observability(obs);

  RecoveryResult out;
  out.masked = ProcessorSet(P);
  if (met != nullptr)
    met->set("fault.injected", static_cast<double>(plan.events().size()));

  SchedulerResult plan0 = planner.schedule(g, cluster);
  out.planned_makespan = plan0.estimated_makespan;
  Schedule current = std::move(plan0.schedule);

  // One noise factor per task, fixed for the whole loop: every round
  // replays the same reality, which is what makes recovery deterministic.
  const std::vector<double> noise =
      make_noise_factors(n, opt.runtime_noise, opt.seed);
  std::vector<double> release(n, 0.0);
  std::vector<std::size_t> attempts(n, 0);
  std::vector<char> announced(P, 0);
  ProcessorSet survivors = cluster.all();

  SimOptions sim;
  sim.noise_factors = &noise;
  sim.release_times = &release;
  sim.faults = &plan;

  // Emits one "fault.fail" per processor whose failure the runtime has now
  // observed (onset <= up_to).
  auto announce = [&](double up_to) {
    for (const FaultEvent& e : plan.events()) {
      if (e.fail_at > up_to || announced[e.proc] != 0) continue;
      announced[e.proc] = 1;
      if (met != nullptr) met->add("fault.procs_failed");
      if (obs::wants_events(obs))
        obs->sink->emit(
            obs::Event("fault.fail")
                .with("proc", e.proc)
                .with("at", e.fail_at)
                .with("repairs", e.repair_at != kNeverRepaired)
                .with("repair_at",
                      e.repair_at == kNeverRepaired ? -1.0 : e.repair_at));
    }
  };

  auto giveup = [&](SimResult&& run, std::string why) {
    out.completed = false;
    out.error = std::move(why);
    out.executed = std::move(run.executed);
    out.makespan = out.executed.makespan();
    if (met != nullptr) {
      met->add("recovery.giveups");
      met->set("recovery.rounds", static_cast<double>(out.rounds));
      met->set("recovery.masked_procs",
               static_cast<double>(out.masked.count()));
    }
    if (obs::wants_events(obs))
      obs->sink->emit(obs::Event("recovery.giveup")
                          .with("reason", out.error)
                          .with("rounds",
                                static_cast<std::uint64_t>(out.rounds)));
    return out;
  };

  while (out.rounds < opt.max_rounds) {
    ++out.rounds;
    SimResult run = simulate_execution(g, current, comm, sim);
    if (run.clean()) {
      if (obs != nullptr) {
        // Re-run the final, clean round with observability attached so the
        // usual "sim.*" counters and transfer events describe exactly the
        // realized execution (faulty rounds stay silent — their transfers
        // never completed as accounted).
        SimOptions fin = sim;
        fin.obs = obs;
        run = simulate_execution(g, current, comm, fin);
      }
      out.executed = std::move(run.executed);
      out.makespan = run.makespan;
      out.completed = true;
      if (met != nullptr) {
        met->set("recovery.rounds", static_cast<double>(out.rounds));
        met->set("recovery.masked_procs",
                 static_cast<double>(out.masked.count()));
      }
      if (obs::wants_events(obs))
        obs->sink->emit(
            obs::Event("recovery.done")
                .with("rounds", static_cast<std::uint64_t>(out.rounds))
                .with("kills", static_cast<std::uint64_t>(out.kills))
                .with("retries", static_cast<std::uint64_t>(out.retries))
                .with("replans", static_cast<std::uint64_t>(out.replans))
                .with("wasted_s", out.wasted_proc_seconds)
                .with("makespan", out.makespan));
      return out;
    }

    // The recovery decision happens at the earliest kill: later kills are
    // not yet observable (the work is still running) — they replay
    // identically next round and are handled then.
    const double t_k = run.kills.front().at;
    const double eps = 1e-9 * std::max(1.0, std::fabs(t_k));
    announce(t_k);

    std::vector<const TaskKill*> now;
    std::vector<const TaskKill*> later;
    for (const TaskKill& k : run.kills)
      (k.at <= t_k + eps ? now : later).push_back(&k);

    for (const TaskKill* k : now) {
      ++out.kills;
      if (k->kind == TaskKill::Kind::kTransfer) ++out.transfer_timeouts;
      out.wasted_proc_seconds += k->wasted_s;
      if (met != nullptr) {
        met->add("fault.kills");
        if (k->kind == TaskKill::Kind::kTransfer)
          met->add("fault.transfer_timeouts");
        met->add("fault.wasted_proc_seconds", k->wasted_s);
      }
      if (obs::wants_events(obs))
        obs->sink->emit(obs::Event("fault.kill")
                            .with("task", k->task)
                            .with("proc", k->proc)
                            .with("at", k->at)
                            .with("start", k->start)
                            .with("kind", kind_str(k->kind))
                            .with("wasted_s", k->wasted_s));
    }

    if (opt.policy == RecoveryPolicy::kRetryInPlace) {
      for (const TaskKill* k : now) {
        const TaskId t = k->task;
        if (++attempts[t] > opt.max_retries)
          return giveup(std::move(run),
                        "task " + g.task(t).name + " killed " +
                            std::to_string(attempts[t]) +
                            " times, exceeding max_retries=" +
                            std::to_string(opt.max_retries));
        // The task restarts on its original processors once they are all
        // usable again, plus an exponential backoff.
        double resume = k->at;
        bool never_repaired = false;
        ProcId never_q = 0;
        current.at(t).procs.for_each([&](ProcId q) {
          if (plan.alive(q, k->at)) return;
          const double r = plan.repaired_at(q, k->at);
          // kNeverRepaired is a sentinel, compared exactly by design.
          if (r == kNeverRepaired) {  // LINT-ALLOW(float-eq)
            if (!never_repaired) {
              never_repaired = true;
              never_q = q;
            }
          } else {
            resume = std::max(resume, r);
          }
        });
        if (never_repaired)
          return giveup(std::move(run),
                        "processor " + std::to_string(never_q) +
                            " never repairs; retry-in-place cannot re-run "
                            "task " +
                            g.task(t).name);
        const double backoff =
            opt.backoff_base_s *
            std::pow(opt.backoff_factor,
                     static_cast<double>(attempts[t] - 1));
        release[t] = std::max(release[t], resume + backoff);
        ++out.retries;
        out.backoff_seconds += backoff;
        if (met != nullptr) {
          met->add("recovery.retries");
          met->add("recovery.backoff_seconds", backoff);
        }
        if (obs::wants_events(obs))
          obs->sink->emit(
              obs::Event("recovery.retry")
                  .with("task", t)
                  .with("attempt",
                        static_cast<std::uint64_t>(attempts[t]))
                  .with("at", k->at)
                  .with("resume", release[t]));
      }
    } else {
      // Degraded-cluster replan: distrust every processor known failed by
      // the decision instant (monotone — each replan masks at least one
      // new onset, bounding the number of replans by the cluster size).
      out.masked |= plan.failed_by(t_k);
      survivors = cluster.all();
      survivors -= out.masked;
      const std::size_t alive_procs = survivors.count();
      if (alive_procs < std::max<std::size_t>(1, opt.min_procs))
        return giveup(std::move(run),
                      "cluster degraded below minimum width: " +
                          std::to_string(alive_procs) + " survivors < " +
                          std::to_string(std::max<std::size_t>(
                              1, opt.min_procs)) +
                          " required");

      // Freeze everything already committed at the decision instant: tasks
      // that started (or finished) by t_k keep their realized windows, and
      // work in flight that a *later* onset will kill keeps running — that
      // kill is not observable yet and is handled when it replays.
      Schedule committed(n, P);
      std::vector<char> frozen(n, 0);
      std::size_t n_frozen = 0;
      for (TaskId t = 0; t < n; ++t) {
        const Placement& pe = run.executed.at(t);
        if (pe.scheduled() && pe.start <= t_k + eps) {
          frozen[t] = 1;
          committed.place(t, pe.busy_from, pe.start, pe.finish, pe.procs);
          ++n_frozen;
        }
      }
      for (const TaskKill* k : later) {
        if (k->kind != TaskKill::Kind::kCompute || k->start > t_k + eps)
          continue;
        frozen[k->task] = 1;
        committed.place(k->task, k->busy_from, k->start, k->planned_finish,
                        current.at(k->task).procs);
        ++n_frozen;
      }

      for (TaskId t = 0; t < n; ++t)
        if (frozen[t] == 0) release[t] = std::max(release[t], t_k);

      FixedPrefix fixed;
      fixed.frozen = std::move(frozen);
      fixed.placements = &committed;
      fixed.not_before = t_k;
      fixed.available = &survivors;
      SchedulerResult re = planner.schedule_with_fixed(g, cluster, fixed);
      current = std::move(re.schedule);
      ++out.replans;
      if (met != nullptr) {
        met->add("recovery.replans");
        met->set("recovery.masked_procs",
                 static_cast<double>(out.masked.count()));
      }
      if (obs::wants_events(obs))
        obs->sink->emit(
            obs::Event("recovery.replan")
                .with("at", t_k)
                .with("survivors",
                      static_cast<std::uint64_t>(alive_procs))
                .with("masked",
                      static_cast<std::uint64_t>(out.masked.count()))
                .with("frozen", static_cast<std::uint64_t>(n_frozen))
                .with("estimated", re.estimated_makespan));
    }
  }

  SimResult last;
  last.executed = Schedule(n, P);
  return giveup(std::move(last),
                "recovery did not converge within max_rounds=" +
                    std::to_string(opt.max_rounds));
}

}  // namespace locmps
