#pragma once
/// \file recovery.hpp
/// Fault-tolerant execution of a task graph under an injected FaultPlan.
///
/// run_with_faults() closes the loop the paper leaves to a runtime
/// framework (§VI): it plans with LoC-MPS, replays the plan through the
/// event simulator with fail-stop faults injected, and — whenever a
/// processor failure kills work — recovers and carries on, with one of two
/// policies:
///
///  * **retry-in-place** keeps the schedule and re-runs each killed task on
///    its original processors once they are repaired, after an exponential
///    backoff. Bounded restarts; a structured failure is returned when a
///    needed processor never repairs or a task exhausts its retries.
///  * **degraded-cluster replan** masks every processor known failed at the
///    recovery instant out of the survivor ProcessorSet, freezes all work
///    already committed (via LoCBS FixedPrefix), and re-runs LoC-MPS on the
///    survivors. Degrades gracefully down to `min_procs` survivors and
///    returns a structured failure below that.
///
/// Performance faults (faults/perturbation.hpp) close a second loop:
/// straggler *detection* declares a task a straggler the instant it has run
/// straggler_threshold x its modeled time without finishing, and mitigates
/// with one of two policies — **speculative re-execution** launches a copy
/// of the straggler on the least-loaded idle processors, the first finisher
/// wins and the loser is cancelled with its processor-seconds accounted as
/// waste, or **straggler replan**, which masks the slowed processors and
/// reuses the degraded-replan FixedPrefix path. Each straggler is mitigated
/// at most once, so the loop converges.
///
/// Determinism: the whole loop is a pure function of (graph, cluster,
/// plan, options). Faults, kills, retries and replans are counted in the
/// metrics registry ("fault.*" / "recovery.*") and emitted on the decision
/// trace; the final clean execution flushes the usual "sim.*" telemetry so
/// a faulty run reconciles end-to-end like a fault-free one.

#include <cstddef>
#include <string>

#include "cluster/cluster.hpp"
#include "faults/fault_plan.hpp"
#include "faults/perturbation.hpp"
#include "graph/task_graph.hpp"
#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "schedule/schedule.hpp"
#include "schedulers/loc_mps.hpp"

namespace locmps {

/// How run_with_faults reacts to killed work.
enum class RecoveryPolicy {
  kRetryInPlace,    ///< re-run killed tasks on their original processors
  kDegradedReplan,  ///< mask failed processors and re-plan on the survivors
};

/// Table label of a policy ("retry" / "replan").
const char* to_string(RecoveryPolicy p);

/// How run_with_faults mitigates a detected straggler.
enum class StragglerMitigation {
  kSpeculate,  ///< launch a speculative copy; first finisher wins
  kReplan,     ///< mask the slowed processors and replan via FixedPrefix
};

/// Table label of a mitigation ("speculate" / "replan").
const char* to_string(StragglerMitigation m);

/// Knobs of the recovery executor.
struct RecoveryOptions {
  RecoveryPolicy policy = RecoveryPolicy::kDegradedReplan;

  /// Retry-in-place: restarts allowed per task before giving up.
  std::size_t max_retries = 3;
  /// Retry-in-place backoff: attempt k waits backoff_base_s *
  /// backoff_factor^(k-1) after the processors are usable again.
  double backoff_base_s = 1.0;
  double backoff_factor = 2.0;

  /// Degraded replan: minimum survivor count; fewer survivors is a
  /// structured failure (completed == false).
  std::size_t min_procs = 1;

  /// Runtime noise of the underlying simulation (same semantics as
  /// SimOptions::runtime_noise; one factor per task, fixed for the whole
  /// recovery loop so every round replays identically).
  double runtime_noise = 0.0;
  std::uint64_t seed = 42;

  /// Optional performance-fault script injected into every simulation
  /// round (SimOptions::perturb). Null = model-exact execution. Must be
  /// sized for the cluster; the caller keeps ownership.
  const PerturbationPlan* perturb = nullptr;

  /// Straggler detection threshold: a task still running at
  /// straggler_threshold x its modeled time is declared a straggler at
  /// that instant and mitigated. 0 (the default) disables detection;
  /// values in (0, 1] are rejected (detection would fire before the
  /// modeled finish).
  double straggler_threshold = 0.0;

  /// Mitigation applied to detected stragglers.
  StragglerMitigation straggler_mitigation = StragglerMitigation::kSpeculate;

  /// Planner used for the initial plan and for degraded replans.
  LocMPSOptions planner;

  /// Safety valve on recovery rounds (the policies terminate long before
  /// this: retries are bounded per task and each replan masks at least one
  /// new processor).
  std::size_t max_rounds = 1024;

  /// Optional observability: "fault.*" / "recovery.*" counters and events,
  /// planner decision telemetry, and the final clean execution's "sim.*"
  /// telemetry all land here.
  obs::ObsContext* obs = nullptr;
};

/// Outcome of a fault-tolerant run.
struct RecoveryResult {
  /// The realized execution. Complete and valid when completed == true;
  /// on a structured failure it holds the partial execution of the last
  /// round (killed/skipped tasks absent).
  Schedule executed;
  double makespan = 0.0;          ///< realized makespan of `executed`
  double planned_makespan = 0.0;  ///< the initial (fault-free) estimate

  bool completed = false;  ///< every task executed
  std::string error;       ///< reason when completed == false

  std::size_t rounds = 0;             ///< simulation rounds run
  std::size_t kills = 0;              ///< tasks killed by faults (handled)
  std::size_t transfer_timeouts = 0;  ///< kills caused by in-flight transfers
  std::size_t retries = 0;            ///< retry-in-place restarts issued
  std::size_t replans = 0;            ///< degraded replans issued
  double wasted_proc_seconds = 0.0;   ///< processor-time thrown away by kills
  double backoff_seconds = 0.0;       ///< summed retry backoff waits
  ProcessorSet masked;                ///< processors masked out by replans

  // Straggler-mitigation accounting ("mitigation.*" counters and events
  // reconcile with these, three ways — tests/test_robustness.cpp).
  std::size_t stragglers = 0;         ///< stragglers detected
  std::size_t speculations = 0;       ///< speculative copies launched
  std::size_t spec_wins = 0;          ///< the copy finished first
  std::size_t spec_losses = 0;        ///< the original finished first
  std::size_t straggler_replans = 0;  ///< slowdown-triggered replans issued
  /// Processor-seconds of cancelled losers: the straggler's partial run
  /// when a copy or replan supersedes it, the copy's run when the original
  /// wins the race.
  double mitigation_wasted_seconds = 0.0;
};

/// Executes \p g on \p cluster under the failure script \p plan (and the
/// performance-fault script \p opt.perturb, when set). Deterministic:
/// identical inputs give identical results, traces and counter values.
/// Throws std::invalid_argument when \p plan or \p opt.perturb is sized
/// for a different cluster, or when \p opt is malformed (negative backoff,
/// zero retries, min_procs beyond the cluster, ... — every violation is
/// named in the message).
RecoveryResult run_with_faults(const TaskGraph& g, const Cluster& cluster,
                               const FaultPlan& plan,
                               const RecoveryOptions& opt = {});

/// Copies \p plan's failure windows into \p a.fault_windows (sorted by
/// onset) so the XHTML report draws the fault timeline lane. Ground truth
/// alternative to recovering the windows from "fault.fail" trace events.
void join_fault_plan(obs::ScheduleAnalysis& a, const FaultPlan& plan);

}  // namespace locmps
