#include "faults/robustness.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "obs/analysis.hpp"
#include "obs/profile.hpp"
#include "util/rng.hpp"

namespace locmps {

RobustnessReport score_robustness(const TaskGraph& g, const Schedule& s,
                                  const CommModel& comm,
                                  const RobustnessOptions& opt) {
  if (opt.samples == 0)
    throw std::invalid_argument("score_robustness: samples must be >= 1");
  if (!s.complete())
    throw std::invalid_argument("score_robustness: incomplete schedule");

  obs::ObsContext* const obs = opt.obs;
  obs::MetricsRegistry* const met = obs::metrics_of(obs);
  obs::ScopedTimer timer(met, "robust.score");
  LOCMPS_SPAN(obs, "robust.score");

  const std::size_t P = s.num_procs();
  const std::size_t n = g.num_tasks();

  SimOptions base;
  base.single_port = opt.single_port;
  base.locality_volumes = opt.locality_volumes;

  RobustnessReport rep;
  rep.samples = opt.samples;
  rep.nominal_makespan = simulate_execution(g, s, comm, base).makespan;

  // Pre-draw the per-sample seeds so the ensemble is a pure function of
  // perturb.seed regardless of evaluation order.
  Rng root(opt.perturb.seed);
  std::vector<std::uint64_t> seeds(opt.samples);
  for (auto& sd : seeds) sd = root.next();

  rep.makespans.reserve(opt.samples);
  for (std::size_t i = 0; i < opt.samples; ++i) {
    PerturbationParams prm = opt.perturb;
    prm.seed = seeds[i];
    const PerturbationPlan plan = make_perturbation_plan(P, n, prm);
    SimOptions so = base;
    so.perturb = &plan;
    const SimResult run = simulate_execution(g, s, comm, so);
    rep.makespans.push_back(run.makespan);
    rep.stretch_seconds += run.stretch_seconds;
    rep.link_delay_seconds += run.link_delay_seconds;
    if (obs::wants_events(obs))
      obs->sink->emit(obs::Event("robust.sample")
                          .with("sample", static_cast<std::uint64_t>(i))
                          .with("makespan", run.makespan)
                          .with("slowed_tasks", static_cast<std::uint64_t>(
                                                    run.slowed_tasks))
                          .with("stretch_s", run.stretch_seconds)
                          .with("link_delay_s", run.link_delay_seconds));
  }

  rep.mean = mean(rep.makespans);
  rep.p95 = quantile(rep.makespans, 0.95);
  rep.worst = *std::max_element(rep.makespans.begin(), rep.makespans.end(),
                                total_less);
  rep.median = median_ci(rep.makespans, opt.confidence);
  rep.p95_over_nominal =
      rep.nominal_makespan > 0.0 ? rep.p95 / rep.nominal_makespan : 1.0;

  if (met != nullptr) {
    met->set("robust.samples", static_cast<double>(rep.samples));
    met->set("robust.nominal", rep.nominal_makespan);
    met->set("robust.median", rep.median.median);
    met->set("robust.p95", rep.p95);
    met->set("robust.worst", rep.worst);
  }
  return rep;
}

void join_robustness(obs::ScheduleAnalysis& a, const RobustnessReport& r) {
  a.robustness.samples = r.samples;
  a.robustness.nominal = r.nominal_makespan;
  a.robustness.mean = r.mean;
  a.robustness.median = r.median.median;
  a.robustness.median_lo = r.median.lo;
  a.robustness.median_hi = r.median.hi;
  a.robustness.p95 = r.p95;
  a.robustness.worst = r.worst;
  a.robustness.p95_over_nominal = r.p95_over_nominal;
}

void join_perturbation(obs::ScheduleAnalysis& a,
                       const PerturbationPlan& plan) {
  a.slowdown_windows.clear();
  for (const SlowdownInterval& iv : plan.slowdowns()) {
    obs::SlowdownWindow w;
    w.proc = iv.proc;
    w.begin_s = iv.begin;
    w.end_s = iv.end;
    w.factor = iv.factor;
    a.slowdown_windows.push_back(w);
  }
  std::sort(a.slowdown_windows.begin(), a.slowdown_windows.end(),
            [](const obs::SlowdownWindow& x, const obs::SlowdownWindow& y) {
              // Deterministic sort key tie-break. LINT-ALLOW(float-eq)
              if (x.begin_s != y.begin_s) return x.begin_s < y.begin_s;
              return x.proc < y.proc;
            });
}

}  // namespace locmps
