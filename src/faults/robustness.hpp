#pragma once
/// \file robustness.hpp
/// Monte-Carlo robustness scoring of a schedule under performance faults.
///
/// A schedule's estimated makespan says nothing about how it degrades when
/// processors straggle or links sag. score_robustness() answers that
/// question empirically: it replays ONE schedule through the event
/// simulator under an ensemble of N independently-seeded PerturbationPlans
/// (faults/perturbation.hpp) and reports the resulting makespan
/// distribution — median with a distribution-free CI (util/stats.hpp
/// median_ci), p95, worst case, and the p95/nominal degradation ratio the
/// slack-aware placement benchmark (bench/ext_robustness.cpp) trades off
/// against mean makespan.
///
/// Everything is a pure function of (graph, schedule, comm, options): the
/// per-sample plans derive from RobustnessOptions::perturb.seed, so two
/// calls with identical inputs produce bit-identical reports — which is
/// what lets bench baselines and the CI self-diff gate pin the numbers.

#include <cstddef>
#include <vector>

#include "faults/perturbation.hpp"
#include "obs/events.hpp"
#include "schedule/event_sim.hpp"
#include "util/stats.hpp"

namespace locmps {

/// Knobs of the Monte-Carlo robustness harness.
struct RobustnessOptions {
  /// Ensemble size: perturbation plans drawn and replayed.
  std::size_t samples = 32;

  /// Perturbation family of the ensemble. The per-sample seeds derive
  /// deterministically from perturb.seed (sample i uses the i-th draw of
  /// an Rng seeded with it), so the whole report is a pure function of
  /// this struct.
  PerturbationParams perturb;

  /// Replay knobs forwarded to the simulator (the fault/perturbation and
  /// noise fields of SimOptions are owned by the harness).
  bool single_port = false;
  bool locality_volumes = true;

  /// Confidence level of the median CI.
  double confidence = 0.95;

  /// Optional observability: "robust.*" summary gauges and one
  /// "robust.sample" event per ensemble member.
  obs::ObsContext* obs = nullptr;
};

/// The makespan distribution of one schedule under the perturbation
/// ensemble.
struct RobustnessReport {
  std::size_t samples = 0;
  double nominal_makespan = 0.0;  ///< unperturbed replay of the schedule

  std::vector<double> makespans;  ///< per-sample realized makespans

  double mean = 0.0;
  double worst = 0.0;         ///< max over the ensemble
  double p95 = 0.0;           ///< 0.95-quantile
  MedianCI median;            ///< median with order-statistic CI
  /// Degradation ratio p95 / nominal (1.0 when nominal is 0): the number
  /// the slack-factor tradeoff is scored on.
  double p95_over_nominal = 1.0;

  // Ensemble-summed perturbation exposure, for context in reports.
  double stretch_seconds = 0.0;     ///< summed compute stretch
  double link_delay_seconds = 0.0;  ///< summed transfer stretch
};

/// Replays \p s under \p opt.samples independently-seeded perturbation
/// plans and scores the makespan distribution. Throws std::invalid_argument
/// when \p s is incomplete, \p opt.samples is 0, or the perturbation
/// parameters are malformed.
RobustnessReport score_robustness(const TaskGraph& g, const Schedule& s,
                                  const CommModel& comm,
                                  const RobustnessOptions& opt = {});

}  // namespace locmps

// Forward-declared join: fills the analysis' robustness panel from a
// report (obs cannot depend on faults, so the join lives here).
namespace locmps::obs {
struct ScheduleAnalysis;
}
namespace locmps {
/// Copies \p r's distribution summary into \p a.robustness so the XHTML
/// report renders the Robustness panel.
void join_robustness(obs::ScheduleAnalysis& a, const RobustnessReport& r);

/// Copies \p plan's slowdown windows into \p a.slowdown_windows (sorted by
/// onset) so the report draws the straggler lanes. Ground-truth analogue
/// of join_fault_plan.
void join_perturbation(obs::ScheduleAnalysis& a, const PerturbationPlan& plan);
}  // namespace locmps
