#include "graph/algorithms.hpp"

#include <algorithm>

namespace locmps {

std::vector<TaskId> topological_order(const TaskGraph& g) {
  std::vector<std::size_t> indeg(g.num_tasks());
  for (TaskId t : g.task_ids()) indeg[t] = g.in_degree(t);
  std::vector<TaskId> stack;
  for (TaskId t : g.task_ids())
    if (indeg[t] == 0) stack.push_back(t);
  std::vector<TaskId> order;
  order.reserve(g.num_tasks());
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    order.push_back(t);
    for (EdgeId e : g.out_edges(t)) {
      const TaskId d = g.edge(e).dst;
      if (--indeg[d] == 0) stack.push_back(d);
    }
  }
  if (order.size() != g.num_tasks())
    throw std::invalid_argument("topological_order: graph has a cycle");
  return order;
}

namespace {

/// Iterative DFS marking every vertex reachable from t via \p next.
template <typename NextFn>
std::vector<char> reach(const TaskGraph& g, TaskId t, NextFn&& next) {
  std::vector<char> seen(g.num_tasks(), 0);
  std::vector<TaskId> stack{t};
  seen[t] = 1;
  while (!stack.empty()) {
    const TaskId u = stack.back();
    stack.pop_back();
    next(u, [&](TaskId v) {
      if (!seen[v]) {
        seen[v] = 1;
        stack.push_back(v);
      }
    });
  }
  return seen;
}

}  // namespace

std::vector<char> descendants(const TaskGraph& g, TaskId t) {
  return reach(g, t, [&](TaskId u, auto&& visit) {
    for (EdgeId e : g.out_edges(u)) visit(g.edge(e).dst);
  });
}

std::vector<char> ancestors(const TaskGraph& g, TaskId t) {
  return reach(g, t, [&](TaskId u, auto&& visit) {
    for (EdgeId e : g.in_edges(u)) visit(g.edge(e).src);
  });
}

std::vector<TaskId> concurrent_set(const TaskGraph& g, TaskId t) {
  const auto desc = descendants(g, t);
  const auto anc = ancestors(g, t);
  std::vector<TaskId> out;
  for (TaskId u : g.task_ids())
    if (!desc[u] && !anc[u]) out.push_back(u);
  return out;
}

ConcurrencyAnalysis::ConcurrencyAnalysis(const TaskGraph& g) {
  ratio_.assign(g.num_tasks(), 0.0);
  for (TaskId t : g.task_ids()) {
    double work = 0.0;
    for (TaskId u : concurrent_set(g, t))
      work += g.task(u).profile.serial_time();
    ratio_[t] = work / g.task(t).profile.serial_time();
  }
}

double Levels::critical_path_length() const {
  double best = 0.0;
  for (std::size_t i = 0; i < top.size(); ++i)
    best = std::max(best, top[i] + bottom[i]);
  return best;
}

}  // namespace locmps
