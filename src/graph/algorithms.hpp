#pragma once
/// \file algorithms.hpp
/// Graph algorithms over TaskGraph: topological order, reachability,
/// concurrency analysis (the cr(t) measure of Section III-C), and generic
/// top/bottom level computation parameterized by vertex/edge weights.

#include <concepts>
#include <stdexcept>
#include <vector>

#include "graph/task_graph.hpp"

namespace locmps {

/// Topological order of all tasks. Throws std::invalid_argument on cycles.
std::vector<TaskId> topological_order(const TaskGraph& g);

/// Boolean mask of tasks reachable from \p t following edge direction,
/// including \p t itself (DFS(G, t) in the paper's notation).
std::vector<char> descendants(const TaskGraph& g, TaskId t);

/// Boolean mask of tasks from which \p t is reachable, including \p t
/// (DFS on the transpose, DFS(G^T, t)).
std::vector<char> ancestors(const TaskGraph& g, TaskId t);

/// Maximal set of tasks that can run concurrently with \p t:
/// cG(t) = V - descendants(t) - ancestors(t).
std::vector<TaskId> concurrent_set(const TaskGraph& g, TaskId t);

/// Precomputed concurrency ratios for every task.
///
/// cr(t) = (sum of uniprocessor times of tasks concurrent with t) /
///         (uniprocessor time of t).
/// A low ratio means little work competes with t for processors, so widening
/// t is unlikely to serialize other critical work (Section III-C). The
/// analysis is purely structural, so it is computed once per graph and
/// cached by the schedulers.
class ConcurrencyAnalysis {
 public:
  explicit ConcurrencyAnalysis(const TaskGraph& g);

  double ratio(TaskId t) const { return ratio_[t]; }
  const std::vector<double>& ratios() const { return ratio_; }

 private:
  std::vector<double> ratio_;
};

/// Top and bottom levels of every task under given weights.
struct Levels {
  /// topL(t): longest path length from any source to t, excluding t's own
  /// weight (0 for sources).
  std::vector<double> top;
  /// bottomL(t): longest path length from t to any sink, including t's own
  /// weight.
  std::vector<double> bottom;

  /// Critical-path length of the graph: max over t of top[t] + bottom[t].
  double critical_path_length() const;
};

/// Computes Levels with vertex weights \p vw(TaskId)->double and edge
/// weights \p ew(EdgeId)->double. Both callables must be pure.
template <typename VW, typename EW>
  requires std::invocable<VW, TaskId> && std::invocable<EW, EdgeId>
Levels compute_levels(const TaskGraph& g, VW&& vw, EW&& ew) {
  const auto order = topological_order(g);
  Levels lv;
  lv.top.assign(g.num_tasks(), 0.0);
  lv.bottom.assign(g.num_tasks(), 0.0);
  for (TaskId t : order) {
    double top = 0.0;
    for (EdgeId e : g.in_edges(t)) {
      const TaskId p = g.edge(e).src;
      top = std::max(top, lv.top[p] + vw(p) + ew(e));
    }
    lv.top[t] = top;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    double below = 0.0;
    for (EdgeId e : g.out_edges(t)) {
      const TaskId s = g.edge(e).dst;
      below = std::max(below, ew(e) + lv.bottom[s]);
    }
    lv.bottom[t] = vw(t) + below;
  }
  return lv;
}

}  // namespace locmps
