#include "graph/io.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace locmps {

void write_text(std::ostream& os, const TaskGraph& g) {
  os << "taskgraph v1\n";
  os << "tasks " << g.num_tasks() << "\n";
  os << std::setprecision(17);
  for (TaskId t : g.task_ids()) {
    const Task& task = g.task(t);
    os << "task " << task.name << " " << task.profile.max_procs();
    for (double v : task.profile.table()) os << " " << v;
    os << "\n";
  }
  os << "edges " << g.num_edges() << "\n";
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    os << "edge " << edge.src << " " << edge.dst << " " << edge.volume_bytes
       << "\n";
  }
}

namespace {

/// Line-addressed parse failure. Every malformed input — negative weights,
/// dangling edge endpoints, duplicate task ids, truncated files — lands
/// here; the reader never asserts or leaves fields uninitialized.
[[noreturn]] void bad_at(std::size_t lineno, const std::string& what) {
  throw std::runtime_error("read_text: line " + std::to_string(lineno) +
                           ": " + what);
}

}  // namespace

TaskGraph read_text(std::istream& is) {
  std::size_t lineno = 0;
  std::string line;

  auto bad = [&](const std::string& what) { bad_at(lineno, what); };
  // Next non-blank line as a token stream; names what was expected when
  // the file ends early.
  auto next_line = [&](const char* expected) -> std::istringstream {
    while (std::getline(is, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") != std::string::npos)
        return std::istringstream(line);
    }
    bad_at(lineno + 1, std::string("truncated file: expected ") + expected);
  };
  auto want_count = [&](std::istringstream& ls,
                        const char* what) -> std::size_t {
    long long v = 0;
    if (!(ls >> v))
      bad(std::string("expected an integer ") + what);
    if (v < 0) bad(std::string("negative ") + what);
    return static_cast<std::size_t>(v);
  };
  auto end_of_record = [&](std::istringstream& ls) {
    std::string extra;
    if (ls >> extra) bad("trailing tokens after record: '" + extra + "'");
  };

  {
    std::istringstream ls = next_line("'taskgraph v1' header");
    std::string word, version;
    ls >> word >> version;
    if (word != "taskgraph" || version != "v1")
      bad("missing 'taskgraph v1' header");
    end_of_record(ls);
  }

  std::size_t n = 0;
  {
    std::istringstream ls = next_line("'tasks <N>'");
    std::string word;
    ls >> word;
    if (word != "tasks") bad("expected 'tasks <N>'");
    n = want_count(ls, "task count");
    end_of_record(ls);
  }

  TaskGraph g;
  std::unordered_set<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::istringstream ls = next_line("a 'task' record");
    std::string word, name;
    ls >> word;
    if (word != "task") bad("expected 'task <name> <len> <times...>'");
    if (!(ls >> name)) bad("task record missing a name");
    if (!names.insert(name).second) bad("duplicate task id '" + name + "'");
    const std::size_t len = want_count(ls, "profile length");
    if (len == 0) bad("profile length must be >= 1");
    std::vector<double> times(len);
    for (std::size_t k = 0; k < len; ++k) {
      if (!(ls >> times[k]))
        bad("truncated profile: expected " + std::to_string(len) +
            " execution times, got " + std::to_string(k));
      if (!(times[k] > 0.0))
        bad("execution time " + std::to_string(k + 1) +
            " of task '" + name + "' must be positive");
    }
    end_of_record(ls);
    try {
      g.add_task(std::move(name), ExecutionProfile(std::move(times)));
    } catch (const std::exception& e) {
      bad(std::string("invalid execution profile: ") + e.what());
    }
  }

  std::size_t m = 0;
  {
    std::istringstream ls = next_line("'edges <M>'");
    std::string word;
    ls >> word;
    if (word != "edges") bad("expected 'edges <M>'");
    m = want_count(ls, "edge count");
    end_of_record(ls);
  }

  for (std::size_t i = 0; i < m; ++i) {
    std::istringstream ls = next_line("an 'edge' record");
    std::string word;
    ls >> word;
    if (word != "edge") bad("expected 'edge <src> <dst> <volume>'");
    long long src = 0, dst = 0;
    if (!(ls >> src) || !(ls >> dst)) bad("malformed edge endpoints");
    if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= n ||
        static_cast<std::size_t>(dst) >= n)
      bad("edge endpoint out of range (dangling edge " +
          std::to_string(src) + " -> " + std::to_string(dst) + " with " +
          std::to_string(n) + " tasks)");
    double vol = 0.0;
    if (!(ls >> vol)) bad("edge record missing a volume");
    if (!(vol >= 0.0)) bad("edge volume must be non-negative");
    end_of_record(ls);
    try {
      g.add_edge(static_cast<TaskId>(src), static_cast<TaskId>(dst), vol);
    } catch (const std::exception& e) {
      bad(std::string("invalid edge: ") + e.what());
    }
  }

  while (std::getline(is, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") != std::string::npos)
      bad("unexpected content after the last edge record");
  }

  const std::string diag = g.validate();
  if (!diag.empty()) bad("invalid graph: " + diag);
  return g;
}

std::string to_dot(const TaskGraph& g, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  os << std::fixed << std::setprecision(2);
  for (TaskId t : g.task_ids()) {
    os << "  t" << t << " [label=\"" << g.task(t).name << "\\n"
       << g.task(t).profile.serial_time() << "s\"];\n";
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    os << "  t" << edge.src << " -> t" << edge.dst;
    if (edge.volume_bytes > 0)
      os << " [label=\"" << edge.volume_bytes / 1e6 << "MB\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace locmps
