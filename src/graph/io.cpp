#include "graph/io.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace locmps {

void write_text(std::ostream& os, const TaskGraph& g) {
  os << "taskgraph v1\n";
  os << "tasks " << g.num_tasks() << "\n";
  os << std::setprecision(17);
  for (TaskId t : g.task_ids()) {
    const Task& task = g.task(t);
    os << "task " << task.name << " " << task.profile.max_procs();
    for (double v : task.profile.table()) os << " " << v;
    os << "\n";
  }
  os << "edges " << g.num_edges() << "\n";
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    os << "edge " << edge.src << " " << edge.dst << " " << edge.volume_bytes
       << "\n";
  }
}

namespace {
[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("read_text: " + what);
}
}  // namespace

TaskGraph read_text(std::istream& is) {
  std::string word, version;
  if (!(is >> word >> version) || word != "taskgraph" || version != "v1")
    bad("missing 'taskgraph v1' header");
  std::size_t n = 0;
  if (!(is >> word >> n) || word != "tasks") bad("missing 'tasks <N>'");
  TaskGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    std::string name;
    std::size_t len = 0;
    if (!(is >> word >> name >> len) || word != "task")
      bad("malformed task line");
    std::vector<double> times(len);
    for (auto& v : times)
      if (!(is >> v)) bad("truncated profile");
    g.add_task(std::move(name), ExecutionProfile(std::move(times)));
  }
  std::size_t m = 0;
  if (!(is >> word >> m) || word != "edges") bad("missing 'edges <M>'");
  for (std::size_t i = 0; i < m; ++i) {
    TaskId src = 0, dst = 0;
    double vol = 0.0;
    if (!(is >> word >> src >> dst >> vol) || word != "edge")
      bad("malformed edge line");
    g.add_edge(src, dst, vol);
  }
  const std::string diag = g.validate();
  if (!diag.empty()) bad("invalid graph: " + diag);
  return g;
}

std::string to_dot(const TaskGraph& g, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  os << std::fixed << std::setprecision(2);
  for (TaskId t : g.task_ids()) {
    os << "  t" << t << " [label=\"" << g.task(t).name << "\\n"
       << g.task(t).profile.serial_time() << "s\"];\n";
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    os << "  t" << edge.src << " -> t" << edge.dst;
    if (edge.volume_bytes > 0)
      os << " [label=\"" << edge.volume_bytes / 1e6 << "MB\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace locmps
