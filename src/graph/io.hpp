#pragma once
/// \file io.hpp
/// Serialization of task graphs: a stable line-oriented text format (for
/// saving/reloading workloads) and Graphviz DOT export (for inspecting the
/// application DAGs of Fig 7).

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"

namespace locmps {

/// Writes \p g in the locmps text format (see read_text for the grammar).
void write_text(std::ostream& os, const TaskGraph& g);

/// Reads a graph from the locmps text format:
/// \code
///   taskgraph v1
///   tasks <N>
///   task <name-without-spaces> <profile-len> <t(1)> ... <t(len)>   # xN
///   edges <M>
///   edge <src-id> <dst-id> <volume-bytes>                          # xM
/// \endcode
/// Throws std::runtime_error on malformed input.
TaskGraph read_text(std::istream& is);

/// Graphviz DOT rendering. Vertex labels show name and uniprocessor time;
/// edge labels show megabytes transferred.
std::string to_dot(const TaskGraph& g, const std::string& graph_name = "G");

}  // namespace locmps
