#include "graph/task_graph.hpp"

#include <sstream>
#include <stdexcept>

namespace locmps {

TaskId TaskGraph::add_task(std::string name, ExecutionProfile profile) {
  tasks_.push_back(Task{std::move(name), std::move(profile)});
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<TaskId>(tasks_.size() - 1);
}

EdgeId TaskGraph::add_edge(TaskId src, TaskId dst, double volume_bytes) {
  if (src >= num_tasks() || dst >= num_tasks())
    throw std::out_of_range("TaskGraph::add_edge: endpoint out of range");
  if (src == dst)
    throw std::invalid_argument("TaskGraph::add_edge: self loop");
  if (volume_bytes < 0.0)
    throw std::invalid_argument("TaskGraph::add_edge: negative volume");
  edges_.push_back(Edge{src, dst, volume_bytes});
  const auto id = static_cast<EdgeId>(edges_.size() - 1);
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

std::vector<TaskId> TaskGraph::sources() const {
  std::vector<TaskId> v;
  for (TaskId t : task_ids())
    if (in_degree(t) == 0) v.push_back(t);
  return v;
}

std::vector<TaskId> TaskGraph::sinks() const {
  std::vector<TaskId> v;
  for (TaskId t : task_ids())
    if (out_degree(t) == 0) v.push_back(t);
  return v;
}

double TaskGraph::total_serial_work() const {
  double w = 0.0;
  for (const auto& t : tasks_) w += t.profile.serial_time();
  return w;
}

std::string TaskGraph::validate() const {
  if (tasks_.empty()) return "graph has no tasks";
  // Kahn's algorithm; any leftover vertex proves a cycle.
  std::vector<std::size_t> indeg(num_tasks());
  for (TaskId t : task_ids()) indeg[t] = in_degree(t);
  std::vector<TaskId> stack = sources();
  std::size_t seen = 0;
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    ++seen;
    for (EdgeId e : out_edges(t)) {
      const TaskId d = edge(e).dst;
      if (--indeg[d] == 0) stack.push_back(d);
    }
  }
  if (seen != num_tasks()) {
    std::ostringstream ss;
    ss << "graph contains a cycle (" << num_tasks() - seen
       << " vertices unreachable by topological elimination)";
    return ss.str();
  }
  return {};
}

}  // namespace locmps
