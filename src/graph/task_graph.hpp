#pragma once
/// \file task_graph.hpp
/// The macro data-flow graph: a weighted DAG of parallel tasks.
///
/// Vertices are coarse-grained data-parallel tasks carrying an execution
/// profile et(t, p); edges carry the volume of data (bytes) communicated
/// between the incident tasks (Section II of the paper). The class is a
/// plain container: all graph algorithms live in graph/algorithms.hpp.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "speedup/profile.hpp"

namespace locmps {

/// Dense 0-based task (vertex) identifier.
using TaskId = std::uint32_t;
/// Dense 0-based edge identifier.
using EdgeId = std::uint32_t;

/// Sentinel for "no task".
inline constexpr TaskId kNoTask = static_cast<TaskId>(-1);

/// A parallel task (vertex).
struct Task {
  std::string name;           ///< human-readable label
  ExecutionProfile profile;   ///< et(t, p) table
};

/// A data dependence (edge) with its communication volume in bytes.
struct Edge {
  TaskId src = kNoTask;
  TaskId dst = kNoTask;
  double volume_bytes = 0.0;
};

/// Weighted DAG of parallel tasks.
///
/// Construction is incremental (add_task / add_edge); acyclicity is not
/// enforced per insertion — call validate() (or topological_order() from
/// algorithms.hpp, which throws on cycles) after building.
class TaskGraph {
 public:
  /// Adds a task and returns its id.
  TaskId add_task(std::string name, ExecutionProfile profile);

  /// Adds a dependence edge src -> dst carrying \p volume_bytes.
  /// Throws if either endpoint is out of range, on self-loops, or on
  /// negative volume. Parallel edges are permitted (their volumes simply
  /// both apply); generators avoid them.
  EdgeId add_edge(TaskId src, TaskId dst, double volume_bytes);

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  const Task& task(TaskId t) const { return tasks_[t]; }
  Task& task(TaskId t) { return tasks_[t]; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// Outgoing / incoming edge ids of a task.
  std::span<const EdgeId> out_edges(TaskId t) const { return out_[t]; }
  std::span<const EdgeId> in_edges(TaskId t) const { return in_[t]; }

  std::size_t out_degree(TaskId t) const { return out_[t].size(); }
  std::size_t in_degree(TaskId t) const { return in_[t].size(); }

  /// Tasks with no predecessors / successors.
  std::vector<TaskId> sources() const;
  std::vector<TaskId> sinks() const;

  /// Sum over all tasks of the uniprocessor time — the sequential work W.
  double total_serial_work() const;

  /// Checks structural invariants: ids consistent, no self loop, acyclic.
  /// Returns an empty string when valid, otherwise a diagnostic.
  std::string validate() const;

  /// Convenience iteration over all task ids [0, num_tasks).
  class IdRange {
   public:
    explicit IdRange(TaskId n) : n_(n) {}
    struct It {
      TaskId v;
      TaskId operator*() const { return v; }
      It& operator++() { ++v; return *this; }
      bool operator!=(const It& o) const { return v != o.v; }
    };
    It begin() const { return {0}; }
    It end() const { return {n_}; }
   private:
    TaskId n_;
  };
  IdRange task_ids() const { return IdRange(static_cast<TaskId>(num_tasks())); }

 private:
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace locmps
