#include "graph/transform.hpp"

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"

namespace locmps {

TaskGraph transitive_reduction(const TaskGraph& g) {
  // An edge u->v is redundant iff v is reachable from u with the edge
  // removed. Checking per candidate edge is O(E (V + E)) — fine at the
  // graph sizes this library targets (hundreds of tasks).
  const std::size_t m = g.num_edges();
  std::vector<char> drop(m, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& ed = g.edge(e);
    if (ed.volume_bytes > 0.0) continue;  // data edges are real transfers
    // DFS from src avoiding edge e.
    std::vector<char> seen(g.num_tasks(), 0);
    std::vector<TaskId> stack{ed.src};
    seen[ed.src] = 1;
    bool reachable = false;
    while (!stack.empty() && !reachable) {
      const TaskId u = stack.back();
      stack.pop_back();
      for (EdgeId f : g.out_edges(u)) {
        if (f == e || drop[f]) continue;
        const TaskId w = g.edge(f).dst;
        if (w == ed.dst) {
          reachable = true;
          break;
        }
        if (!seen[w]) {
          seen[w] = 1;
          stack.push_back(w);
        }
      }
    }
    if (reachable) drop[e] = 1;
  }
  TaskGraph out;
  for (TaskId t : g.task_ids()) out.add_task(g.task(t).name, g.task(t).profile);
  for (EdgeId e = 0; e < m; ++e)
    if (!drop[e])
      out.add_edge(g.edge(e).src, g.edge(e).dst, g.edge(e).volume_bytes);
  return out;
}

Coarsening coarsen_chains(const TaskGraph& g) {
  const std::size_t n = g.num_tasks();
  // An edge u->v is contractible iff it is u's only out-edge and v's only
  // in-edge. Follow contractible edges to form maximal chains.
  auto contractible_next = [&](TaskId u) -> TaskId {
    if (g.out_degree(u) != 1) return kNoTask;
    const Edge& ed = g.edge(g.out_edges(u)[0]);
    return g.in_degree(ed.dst) == 1 ? ed.dst : kNoTask;
  };
  std::vector<char> has_contractible_pred(n, 0);
  for (TaskId u : g.task_ids())
    if (const TaskId v = contractible_next(u); v != kNoTask)
      has_contractible_pred[v] = 1;

  Coarsening c;
  c.member_of.assign(n, kNoTask);
  for (TaskId head : topological_order(g)) {
    if (has_contractible_pred[head]) continue;  // interior of some chain
    std::vector<TaskId> chain{head};
    for (TaskId v = contractible_next(head); v != kNoTask;
         v = contractible_next(v))
      chain.push_back(v);
    // Composite profile: member-wise sum (sequential execution).
    const std::size_t width = g.task(head).profile.max_procs();
    std::vector<double> table(width, 0.0);
    std::string name;
    for (TaskId t : chain) {
      for (std::size_t p = 1; p <= width; ++p)
        table[p - 1] += g.task(t).profile.time(p);
      if (!name.empty()) name += '+';
      name += g.task(t).name;
    }
    const TaskId comp =
        c.graph.add_task(std::move(name), ExecutionProfile(std::move(table)));
    for (TaskId t : chain) c.member_of[t] = comp;
    c.members.push_back(std::move(chain));
  }
  // Inter-composite edges (intra-chain edges collapse).
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    const TaskId a = c.member_of[ed.src];
    const TaskId b = c.member_of[ed.dst];
    if (a != b) c.graph.add_edge(a, b, ed.volume_bytes);
  }
  return c;
}

}  // namespace locmps
