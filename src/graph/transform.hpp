#pragma once
/// \file transform.hpp
/// Task-graph transformations used as scheduler preprocessing:
///
///  * transitive reduction of pure-precedence edges — generators (and
///    hand-written workflows) often carry redundant zero-volume edges that
///    inflate the edge count without constraining anything;
///  * linear-chain coarsening — a maximal chain of tasks with no other
///    fan-in/fan-out can only ever execute sequentially, so it can be
///    scheduled as one composite task (classic clustering); the composite
///    runs its members back-to-back on the same processor set, which also
///    internalizes the chain's communication. A coarse schedule expands
///    back to a valid schedule of the original graph via expand_schedule
///    (schedule/expand.hpp — expansion consumes Schedules, which live a
///    layer above this one).

#include <vector>

#include "graph/task_graph.hpp"

namespace locmps {

/// Returns a copy of \p g without redundant *zero-volume* edges: an edge
/// u -> v is dropped iff it carries no data and v is reachable from u
/// through some other path (its precedence is implied). Edges with data
/// are never dropped — in this model they denote real transfers.
TaskGraph transitive_reduction(const TaskGraph& g);

/// Result of linear-chain coarsening.
struct Coarsening {
  TaskGraph graph;  ///< the coarse DAG of composite tasks
  /// member_of[original task] = composite task in `graph`.
  std::vector<TaskId> member_of;
  /// members[composite task] = original tasks in execution order.
  std::vector<std::vector<TaskId>> members;
};

/// Merges every maximal linear chain (consecutive tasks where the edge
/// u -> v satisfies out_degree(u) == 1 and in_degree(v) == 1) into one
/// composite task whose profile is the member-wise sum et_c(p) =
/// sum_i et_i(p). Edges between different composites are preserved with
/// their volumes; intra-chain edges are internalized.
Coarsening coarsen_chains(const TaskGraph& g);

}  // namespace locmps
