#include "network/block_cyclic.hpp"

#include <numeric>
#include <stdexcept>

namespace locmps {

double remote_fraction(const std::vector<ProcId>& src,
                       const std::vector<ProcId>& dst) {
  const std::size_t s = src.size();
  const std::size_t d = dst.size();
  if (s == 0 || d == 0)
    throw std::invalid_argument("remote_fraction: empty processor list");
  // Block index i maps to src[i mod s] and dst[i mod d]. Over one period of
  // L = lcm(s, d) blocks the pair (i mod s, i mod d) takes each compatible
  // value exactly once (CRT): positions a in [0,s) and c in [0,d) co-occur
  // iff a == c (mod gcd(s, d)). A block stays local iff the physical owners
  // coincide, so:
  //   local blocks per period = #{(a, c) : src[a] == dst[c], a == c mod g}.
  // We bucket source positions by (residue mod g, physical proc) and count
  // in O(s + d).
  const std::size_t g = std::gcd(s, d);
  const double L = static_cast<double>(s / g) * static_cast<double>(d);
  // Because each list holds distinct processors, a physical processor q
  // contributes at most one (a, c) position pair; sorted inputs make the
  // shared processors a two-pointer merge. This sits on the scheduler's
  // hole-scan hot path, so no allocation and no hashing.
  std::size_t local = 0;
  std::size_t a = 0, c = 0;
  while (a < s && c < d) {
    if (src[a] < dst[c]) {
      ++a;
    } else if (src[a] > dst[c]) {
      ++c;
    } else {
      if (a % g == c % g) ++local;  // compatible positions co-occur (CRT)
      ++a;
      ++c;
    }
  }
  return 1.0 - static_cast<double>(local) / L;
}

double remote_volume(double volume_bytes, const ProcessorSet& src,
                     const ProcessorSet& dst) {
  if (volume_bytes <= 0.0) return 0.0;
  if (src == dst) return 0.0;
  return volume_bytes * remote_fraction(src.to_vector(), dst.to_vector());
}

}  // namespace locmps
