#pragma once
/// \file block_cyclic.hpp
/// Exact data-movement accounting for 1-D block-cyclic redistribution.
///
/// The paper estimates inter-task redistribution volumes with the fast
/// runtime block-cyclic redistribution algorithm of Prylli & Tourancheau
/// (ref [13]) under a block-cyclic distribution of every task's data. We
/// implement the same element-mapping arithmetic: block i of an array lives
/// on src[i mod s] in the producer layout and on dst[i mod d] in the
/// consumer layout; only blocks whose physical owner changes must cross the
/// network. Data resident on processors shared by both groups stays local —
/// this is the locality the LoCBS scheduler exploits.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/processor_set.hpp"

namespace locmps {

/// Fraction (in [0, 1]) of a block-cyclically distributed array that must
/// move when redistributing from the ordered processor list \p src to the
/// ordered list \p dst. Exact for equal block sizes (the common case, and
/// the one ref [13] optimizes); O(|src| + |dst|) time.
///
/// Both lists must be non-empty, duplicate-free and sorted ascending (the
/// canonical layout order used throughout the library).
double remote_fraction(const std::vector<ProcId>& src,
                       const std::vector<ProcId>& dst);

/// Bytes of \p volume_bytes that must cross the network when moving from
/// layout \p src to layout \p dst (processor sets in canonical ascending
/// order). Zero when the sets are identical.
double remote_volume(double volume_bytes, const ProcessorSet& src,
                     const ProcessorSet& dst);

/// Memo of remote_fraction() results keyed on the (src, dst) layout pair.
///
/// Refinement re-scores the same producer/consumer layout pairs thousands
/// of times per planning run (the hole scan asks for every candidate
/// subset at every probe instant), and remote_fraction() is a pure
/// function of the two ordered lists — under the library's fixed 1-D
/// block-cyclic distribution the ordered processor list *is* the layout,
/// so no further key component is needed. One memo serves one evaluation
/// stream (it is not thread-safe); speculative probes each own their own,
/// keeping lookups lock-free and results bit-identical to the direct
/// computation (docs/incremental.md).
class RedistMemo {
 public:
  /// remote_fraction(src, dst), served from the memo when seen before.
  /// The lookup is heterogeneous (C++20 transparent hashing): the hot hit
  /// path hashes and compares the caller's vectors in place, and the two
  /// key copies are only made when a miss inserts.
  double fraction(const std::vector<ProcId>& src,
                  const std::vector<ProcId>& dst) {
    ++lookups_;
    const auto it = map_.find(KeyView{&src, &dst});
    if (it != map_.end()) {
      ++hits_;
      return it->second;
    }
    const double f = remote_fraction(src, dst);
    if (map_.size() >= kCap) {
      map_.clear();  // wholesale eviction bounds memory, like ProbeMemo
      ++evictions_;
    }
    map_.emplace(Key{src, dst}, f);
    return f;
  }

  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  static constexpr std::size_t kCap = 1 << 16;

  struct Key {
    std::vector<ProcId> src;
    std::vector<ProcId> dst;
  };
  struct KeyView {
    const std::vector<ProcId>* src;
    const std::vector<ProcId>* dst;
  };
  struct KeyHash {
    using is_transparent = void;
    static std::size_t mix_lists(const std::vector<ProcId>& src,
                                 const std::vector<ProcId>& dst) {
      // FNV-1a over both lists with a separator; ProcIds are small ints,
      // so hashing the raw values keeps this deterministic across runs.
      std::uint64_t h = 1469598103934665603ull;
      auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      for (ProcId q : src) mix(q);
      mix(~0ull);  // separator so ({a,b},{c}) != ({a},{b,c})
      for (ProcId q : dst) mix(q);
      return static_cast<std::size_t>(h);
    }
    std::size_t operator()(const Key& k) const {
      return mix_lists(k.src, k.dst);
    }
    std::size_t operator()(const KeyView& k) const {
      return mix_lists(*k.src, *k.dst);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const {
      return a.src == b.src && a.dst == b.dst;
    }
    bool operator()(const KeyView& a, const Key& b) const {
      return *a.src == b.src && *a.dst == b.dst;
    }
    bool operator()(const Key& a, const KeyView& b) const {
      return a.src == *b.src && a.dst == *b.dst;
    }
  };
  std::unordered_map<Key, double, KeyHash, KeyEq> map_;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace locmps
