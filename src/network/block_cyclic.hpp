#pragma once
/// \file block_cyclic.hpp
/// Exact data-movement accounting for 1-D block-cyclic redistribution.
///
/// The paper estimates inter-task redistribution volumes with the fast
/// runtime block-cyclic redistribution algorithm of Prylli & Tourancheau
/// (ref [13]) under a block-cyclic distribution of every task's data. We
/// implement the same element-mapping arithmetic: block i of an array lives
/// on src[i mod s] in the producer layout and on dst[i mod d] in the
/// consumer layout; only blocks whose physical owner changes must cross the
/// network. Data resident on processors shared by both groups stays local —
/// this is the locality the LoCBS scheduler exploits.

#include <vector>

#include "cluster/processor_set.hpp"

namespace locmps {

/// Fraction (in [0, 1]) of a block-cyclically distributed array that must
/// move when redistributing from the ordered processor list \p src to the
/// ordered list \p dst. Exact for equal block sizes (the common case, and
/// the one ref [13] optimizes); O(|src| + |dst|) time.
///
/// Both lists must be non-empty, duplicate-free and sorted ascending (the
/// canonical layout order used throughout the library).
double remote_fraction(const std::vector<ProcId>& src,
                       const std::vector<ProcId>& dst);

/// Bytes of \p volume_bytes that must cross the network when moving from
/// layout \p src to layout \p dst (processor sets in canonical ascending
/// order). Zero when the sets are identical.
double remote_volume(double volume_bytes, const ProcessorSet& src,
                     const ProcessorSet& dst);

}  // namespace locmps
