// comm_model is header-only; this translation unit exists to give the
// header a home in the library and to catch ODR/self-containment issues.
#include "network/comm_model.hpp"
