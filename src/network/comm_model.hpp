#pragma once
/// \file comm_model.hpp
/// Inter-task communication cost model (Section III-B).
///
/// Two levels of fidelity:
///  * Allocation-stage estimate: wt(e_ij) = D_ij / bw_ij with the aggregate
///    bandwidth bw_ij = min(np(t_i), np(t_j)) * bandwidth — used while
///    choosing allocations, before placements are known.
///  * Placement-stage cost: once source and destination processor *sets*
///    are known, only the block-cyclic remote volume crosses the network,
///    so the cost shrinks with data locality.

#include <cstddef>
#include <stdexcept>

#include "cluster/cluster.hpp"
#include "network/block_cyclic.hpp"

namespace locmps {

/// Communication cost calculator bound to a cluster. Holds the (small)
/// cluster description by value, so temporaries are safe:
/// `CommModel m{Cluster(16)}`.
class CommModel {
 public:
  explicit CommModel(Cluster cluster) : cluster_(cluster) {}

  /// Aggregate bandwidth (bytes/s) between groups of np_src and np_dst
  /// processors: min(np_src, np_dst) parallel streams.
  double aggregate_bandwidth(std::size_t np_src, std::size_t np_dst) const {
    const std::size_t streams = np_src < np_dst ? np_src : np_dst;
    return static_cast<double>(streams == 0 ? 1 : streams) *
           cluster_.bandwidth_Bps;
  }

  /// Duration of moving \p remote_bytes between groups of the given sizes:
  /// startup latency plus bytes over the aggregate bandwidth. Zero bytes
  /// cost nothing (no transfer happens).
  double transfer_duration(double remote_bytes, std::size_t np_src,
                           std::size_t np_dst) const {
    if (evals_ != nullptr) ++*evals_;
    if (remote_bytes <= 0.0) return 0.0;
    return cluster_.latency_s +
           remote_bytes / aggregate_bandwidth(np_src, np_dst);
  }

  /// Allocation-stage edge cost: time to redistribute \p volume_bytes
  /// between groups of the given sizes, ignoring placement (paper's
  /// wt(e_ij) formula). Zero-volume edges cost zero.
  double edge_cost(double volume_bytes, std::size_t np_src,
                   std::size_t np_dst) const {
    return transfer_duration(volume_bytes, np_src, np_dst);
  }

  /// Placement-stage transfer time: only the remote block-cyclic volume is
  /// transferred, at the aggregate bandwidth of the two groups. Zero when
  /// the layouts coincide.
  double transfer_time(double volume_bytes, const ProcessorSet& src,
                       const ProcessorSet& dst) const {
    return transfer_duration(remote_volume(volume_bytes, src, dst),
                             src.count(), dst.count());
  }

  const Cluster& cluster() const { return cluster_; }

  /// True when the platform overlaps communication with computation.
  bool overlap() const { return cluster_.overlap_comm_compute; }

  /// The uniformly-degraded counterpart of this model: link bandwidth
  /// scaled by \p scale in (0, 1], latency unchanged. Static analogue of a
  /// PerturbationPlan's degraded-link windows (faults/perturbation.hpp) —
  /// useful for pricing a worst-case transfer or planning conservatively.
  /// Shares the evaluation-counter cell. Throws std::invalid_argument when
  /// scale is outside (0, 1].
  CommModel degraded(double scale) const {
    if (!(scale > 0.0) || scale > 1.0)
      throw std::invalid_argument("CommModel::degraded: scale not in (0, 1]");
    Cluster c = cluster_;
    c.bandwidth_Bps *= scale;
    CommModel m(c);
    m.evals_ = evals_;
    return m;
  }

  /// Observability hook: every transfer_duration() evaluation bumps
  /// *\p cell (a MetricsRegistry::cell_ptr slot, typically
  /// "comm.cost_evals"). Null — the default — disables counting; the
  /// fast path is the single branch in transfer_duration. The cell must
  /// outlive the model; copies of the model share the same cell.
  void count_evals_into(double* cell) { evals_ = cell; }

  /// The attached evaluation-counter cell (null when counting is off).
  /// Incremental replay (schedulers/incremental.hpp) reads it to capture
  /// per-placement evaluation deltas and credit them on replayed steps,
  /// keeping "comm.cost_evals" bit-identical to a from-scratch run.
  double* evals_cell() const { return evals_; }

 private:
  Cluster cluster_;
  double* evals_ = nullptr;
};

}  // namespace locmps
