#include "obs/analysis.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <stdexcept>

#include "network/block_cyclic.hpp"

namespace locmps::obs {

namespace {

/// Comparison tolerance, relative to the schedule horizon.
double tolerance(double makespan) { return 1e-9 * std::max(1.0, makespan); }

}  // namespace

const char* to_string(BlameKind k) {
  switch (k) {
    case BlameKind::Source: return "source";
    case BlameKind::Data: return "data";
    case BlameKind::Processor: return "processor";
    case BlameKind::Backfill: return "backfill";
    case BlameKind::Release: return "release";
    case BlameKind::Tie: return "tie";
  }
  return "?";
}

std::vector<TaskBlame> ScheduleAnalysis::top_blame(std::size_t n) const {
  std::vector<TaskBlame> out;
  for (const TaskBlame& b : blame)
    if (b.delay_s > 0.0) out.push_back(b);
  std::sort(out.begin(), out.end(), [](const TaskBlame& a, const TaskBlame& b) {
    if (a.delay_s != b.delay_s) return a.delay_s > b.delay_s;
    return a.task < b.task;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

ScheduleAnalysis analyze_schedule(const TaskGraph& g, const Schedule& s,
                                  const CommModel& comm,
                                  const AnalysisOptions& opt) {
  if (!s.complete())
    throw std::invalid_argument("analyze_schedule: incomplete schedule");
  ScheduleAnalysis a;
  const std::size_t n = g.num_tasks();
  const std::size_t P = s.num_procs();
  a.makespan = s.makespan();
  a.num_procs = P;
  a.num_tasks = n;
  const double eps = tolerance(a.makespan);

  // --- Per-processor occupancy and the idle-hole histogram -----------------
  Timeline tl(P);
  std::vector<double> busy(P, 0.0);
  std::vector<std::size_t> tasks_on(P, 0);
  for (TaskId t : g.task_ids()) {
    const Placement& p = s.at(t);
    tl.occupy(p.procs, p.busy_from, p.finish);
    p.procs.for_each([&](ProcId q) {
      busy[q] += p.finish - p.busy_from;
      ++tasks_on[q];
    });
  }
  std::vector<double> hole_durs;
  a.procs.resize(P);
  for (ProcId q = 0; q < P; ++q) {
    ProcUtilization& u = a.procs[q];
    u.proc = q;
    u.busy_s = busy[q];
    u.tasks = tasks_on[q];
    for (const Timeline::Hole& h : tl.holes(q, a.makespan)) {
      const double d = h.end - h.start;
      u.idle_s += d;
      ++u.holes;
      hole_durs.push_back(d);
    }
    u.utilization = a.makespan > 0.0 ? u.busy_s / a.makespan : 0.0;
    a.mean_utilization += u.utilization;
  }
  if (P > 0) a.mean_utilization /= static_cast<double>(P);

  HoleHistogram& hh = a.holes;
  hh.total_holes = hole_durs.size();
  for (double d : hole_durs) {
    hh.total_idle_s += d;
    hh.longest_s = std::max(hh.longest_s, d);
  }
  if (!hole_durs.empty()) {
    hh.mean_s = hh.total_idle_s / static_cast<double>(hole_durs.size());
    const std::size_t bins = std::max<std::size_t>(1, opt.hole_bins);
    hh.counts.assign(bins, 0);
    hh.bin_edges.resize(bins + 1);
    const double width = hh.longest_s / static_cast<double>(bins);
    for (std::size_t i = 0; i <= bins; ++i)
      hh.bin_edges[i] = width * static_cast<double>(i);
    for (double d : hole_durs) {
      std::size_t bin =
          width > 0.0 ? static_cast<std::size_t>(d / width) : 0;
      ++hh.counts[std::min(bin, bins - 1)];
    }
  }

  // --- Per-edge locality breakdown -----------------------------------------
  a.edges.resize(g.num_edges());
  LocalityTotals& lt = a.locality;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    EdgeLocality& el = a.edges[e];
    el.edge = e;
    el.src = ed.src;
    el.dst = ed.dst;
    el.volume_bytes = ed.volume_bytes;
    const ProcessorSet& sp = s.at(ed.src).procs;
    const ProcessorSet& dp = s.at(ed.dst).procs;
    el.remote_bytes = opt.locality_volumes
                          ? remote_volume(ed.volume_bytes, sp, dp)
                          : (sp == dp ? 0.0 : ed.volume_bytes);
    el.local_bytes = ed.volume_bytes - el.remote_bytes;
    el.transfer_s = comm.transfer_duration(el.remote_bytes, s.at(ed.src).np(),
                                           s.at(ed.dst).np());
    if (ed.volume_bytes <= 0.0)
      el.cls = EdgeClass::Empty;
    else if (el.remote_bytes <= 0.0)
      el.cls = EdgeClass::Local;
    else if (el.local_bytes <= 0.0)
      el.cls = EdgeClass::Remote;
    else
      el.cls = EdgeClass::Partial;

    lt.total_bytes += el.volume_bytes;
    lt.local_bytes += el.local_bytes;
    lt.remote_bytes += el.remote_bytes;
    lt.transfer_seconds += el.transfer_s;
    switch (el.cls) {
      case EdgeClass::Empty: ++lt.empty_edges; break;
      case EdgeClass::Local: ++lt.local_edges; break;
      case EdgeClass::Partial: ++lt.partial_edges; break;
      case EdgeClass::Remote: ++lt.remote_edges; break;
    }
  }
  lt.locality_fraction =
      lt.total_bytes > 0.0 ? 1.0 - lt.remote_bytes / lt.total_bytes : 1.0;

  // --- Start-delay blame ----------------------------------------------------
  // Per-processor booking lists, time-ordered, to find the occupant right
  // before each task on each of its processors.
  struct Booking {
    double from;
    double to;
    TaskId task;
  };
  std::vector<std::vector<Booking>> books(P);
  for (TaskId t : g.task_ids()) {
    const Placement& p = s.at(t);
    p.procs.for_each(
        [&](ProcId q) { books[q].push_back(Booking{p.busy_from, p.finish, t}); });
  }
  for (auto& v : books)
    std::sort(v.begin(), v.end(),
              [](const Booking& x, const Booking& y) { return x.from < y.from; });

  a.blame.resize(n);
  for (TaskId t : g.task_ids()) {
    const Placement& p = s.at(t);
    TaskBlame& b = a.blame[t];
    b.task = t;
    b.start = p.start;

    for (EdgeId e : g.in_edges(t)) {
      const TaskId src = g.edge(e).src;
      const double arrival = s.at(src).finish + a.edges[e].transfer_s;
      if (arrival > b.data_ready) {
        b.data_ready = arrival;
        b.culprit = src;  // provisional; settled by the classification below
        b.edge = e;
      }
    }

    TaskId blocker = kNoTask;
    p.procs.for_each([&](ProcId q) {
      const auto& v = books[q];
      // First booking starting after ours; the one before that (if not us)
      // is the occupant we waited for.
      auto it = std::upper_bound(
          v.begin(), v.end(), p.busy_from,
          [](double x, const Booking& bk) { return x < bk.from; });
      while (it != v.begin()) {
        --it;
        if (it->task == t) continue;
        if (it->to > b.proc_ready) {
          b.proc_ready = it->to;
          blocker = it->task;
        }
        break;
      }
    });

    const EdgeId data_edge = b.edge;
    const TaskId data_culprit = b.culprit;
    const double bind = std::max(b.data_ready, b.proc_ready);
    b.slack_s = std::max(0.0, b.start - bind);
    if (b.start <= eps) {
      b.kind = BlameKind::Source;
      b.culprit = kNoTask;
      b.edge = kNoEdge;
    } else if (bind <= eps) {
      b.kind = BlameKind::Release;
      b.culprit = kNoTask;
      b.edge = kNoEdge;
    } else if (b.data_ready > b.proc_ready + eps) {
      b.kind = BlameKind::Data;
      b.delay_s = b.data_ready - b.proc_ready;
    } else if (b.proc_ready > b.data_ready + eps) {
      b.kind = BlameKind::Processor;
      b.culprit = blocker;
      b.edge = kNoEdge;
      b.delay_s = b.proc_ready - b.data_ready;
    } else {
      b.kind = BlameKind::Tie;
      b.culprit = data_culprit != kNoTask ? data_culprit : blocker;
      b.edge = data_edge;
    }
  }

  // --- Critical-path decomposition ------------------------------------------
  // Walk backward from the makespan-defining task along binding
  // constraints; every hop strictly decreases the finish time, so the walk
  // terminates. compute + redistribution + wait telescopes to the makespan.
  CriticalPathBreakdown& cp = a.critical_path;
  cp.makespan = a.makespan;
  if (n > 0) {
    TaskId cur = 0;
    for (TaskId t : g.task_ids())
      if (s.at(t).finish > s.at(cur).finish) cur = t;
    std::vector<char> visited(n, 0);
    while (true) {
      const Placement& p = s.at(cur);
      const TaskBlame& b = a.blame[cur];
      CriticalPathStep step;
      step.task = cur;
      step.compute_s = p.finish - p.start;
      cp.compute_s += step.compute_s;
      visited[cur] = 1;

      const bool via_data =
          b.kind == BlameKind::Data ||
          (b.kind == BlameKind::Tie && b.edge != kNoEdge);
      const bool via_proc =
          (b.kind == BlameKind::Processor || b.kind == BlameKind::Backfill ||
           (b.kind == BlameKind::Tie && b.edge == kNoEdge)) &&
          b.culprit != kNoTask;
      if (via_data && b.culprit != kNoTask && !visited[b.culprit]) {
        step.redist_s = a.edges[b.edge].transfer_s;
        step.wait_s = std::max(0.0, p.start - b.data_ready);
        cp.redist_s += step.redist_s;
        cp.wait_s += step.wait_s;
        cp.steps.push_back(step);
        cur = b.culprit;
      } else if (via_proc && !visited[b.culprit]) {
        step.wait_s = std::max(0.0, p.start - b.proc_ready);
        cp.wait_s += step.wait_s;
        cp.steps.push_back(step);
        cur = b.culprit;
      } else {
        // Source / Release (or a defensive stop): the remaining gap back
        // to time zero is unattributed wait.
        step.wait_s = std::max(0.0, p.start);
        cp.wait_s += step.wait_s;
        cp.steps.push_back(step);
        break;
      }
    }
    std::reverse(cp.steps.begin(), cp.steps.end());
  }

  return a;
}

void join_backfill_stats(ScheduleAnalysis& a, const MetricsSnapshot& snap) {
  BackfillStats& bf = a.backfill;
  bf.passes = snap.counter("locbs.calls");
  bf.tasks_placed = snap.counter("locbs.tasks_placed");
  bf.holes_scanned = snap.counter("locbs.holes_scanned");
  bf.hits = snap.counter("locbs.backfill_hits");
  bf.cutoffs = snap.counter("locbs.scan_cutoffs");
  bf.present = bf.tasks_placed > 0.0;
  if (bf.present) {
    bf.hit_rate = bf.hits / bf.tasks_placed;
    bf.prune_rate = bf.cutoffs / bf.tasks_placed;
  }
}

void join_fault_stats(ScheduleAnalysis& a, const MetricsSnapshot& snap) {
  FaultStats& f = a.faults;
  f.injected = snap.counter("fault.injected");
  f.procs_failed = snap.counter("fault.procs_failed");
  f.kills = snap.counter("fault.kills");
  f.transfer_timeouts = snap.counter("fault.transfer_timeouts");
  f.wasted_proc_seconds = snap.counter("fault.wasted_proc_seconds");
  f.retries = snap.counter("recovery.retries");
  f.replans = snap.counter("recovery.replans");
  f.masked_procs = snap.counter("recovery.masked_procs");
  f.backoff_seconds = snap.counter("recovery.backoff_seconds");
  f.rounds = snap.counter("recovery.rounds");
  f.present = f.injected > 0.0;
}

void join_perturb_stats(ScheduleAnalysis& a, const MetricsSnapshot& snap) {
  PerturbStats& p = a.perturb;
  p.slowed_tasks = snap.counter("perturb.slowed_tasks");
  p.stretch_seconds = snap.counter("perturb.stretch_seconds");
  p.degraded_transfers = snap.counter("perturb.degraded_transfers");
  p.link_delay_seconds = snap.counter("perturb.link_delay_seconds");
  p.present = p.slowed_tasks > 0.0 || p.degraded_transfers > 0.0;
}

void join_mitigation_stats(ScheduleAnalysis& a, const MetricsSnapshot& snap) {
  MitigationStats& m = a.mitigation;
  m.stragglers = snap.counter("mitigation.stragglers");
  m.speculations = snap.counter("mitigation.speculations");
  m.spec_wins = snap.counter("mitigation.spec_wins");
  m.spec_losses = snap.counter("mitigation.spec_losses");
  m.replans = snap.counter("mitigation.replans");
  m.wasted_seconds = snap.counter("mitigation.wasted_seconds");
  m.present = m.stragglers > 0.0;
}

void join_event_health(ScheduleAnalysis& a, const MetricsSnapshot& snap) {
  a.events_dropped = snap.counter("obs.events.dropped");
  a.trace_dropped = snap.counter("obs.trace.dropped");
}

// ---------------------------------------------------------------------------
// Decision-trace ingestion.

double TraceRecord::num(std::string_view key, double fallback) const {
  for (const auto& [k, v] : nums)
    if (k == key) return v;
  return fallback;
}

bool TraceRecord::flag(std::string_view key, bool fallback) const {
  for (const auto& [k, v] : bools)
    if (k == key) return v;
  return fallback;
}

const std::string* TraceRecord::str(std::string_view key) const {
  for (const auto& [k, v] : strs)
    if (k == key) return &v;
  return nullptr;
}

namespace {

/// Minimal parser for the flat JSON objects the JsonlSink emits: every
/// value is a string, number, bool or null (no nesting). Throws
/// std::runtime_error on malformed input.
class FlatLineParser {
 public:
  explicit FlatLineParser(std::string_view line) : s_(line) {}

  TraceRecord parse() {
    TraceRecord rec;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return rec;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      parse_value(rec, key);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      skip_ws();
      if (pos_ != s_.size()) fail("trailing characters");
      return rec;
    }
  }

 private:
  [[noreturn]] void fail(const char* why) const {
    throw std::runtime_error("trace: " + std::string(why) + " at offset " +
                             std::to_string(pos_) + " in line: " +
                             std::string(s_.substr(0, 120)));
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() const {
    if (pos_ >= s_.size()) return '\0';
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  bool consume(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated unicode escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad unicode escape");
          }
          // The sink only escapes control characters; ASCII suffices.
          out += static_cast<char>(code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  void parse_value(TraceRecord& rec, const std::string& key) {
    const char c = peek();
    if (c == '"') {
      std::string v = parse_string();
      if (key == "ev")
        rec.ev = std::move(v);
      else
        rec.strs.emplace_back(key, std::move(v));
      return;
    }
    if (consume("true")) {
      rec.bools.emplace_back(key, true);
      return;
    }
    if (consume("false")) {
      rec.bools.emplace_back(key, false);
      return;
    }
    if (consume("null")) return;  // non-finite number; dropped
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("bad value");
    const std::string tok(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number");
    rec.nums.emplace_back(key, v);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<TraceRecord> read_trace(std::istream& is) {
  std::vector<TraceRecord> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    out.push_back(FlatLineParser(line).parse());
  }
  return out;
}

TraceSummary summarize_trace(const std::vector<TraceRecord>& records,
                             std::size_t num_tasks) {
  TraceSummary ts;
  ts.backfilled.assign(num_tasks, 0);
  // The last "locbs.place" per task belongs to the final (adopted) LoCBS
  // pass — LoC-MPS re-realizes the best allocation at the end of every
  // round, after the round's look-ahead passes.
  std::vector<char> placed(num_tasks, 0);
  std::vector<double> local(num_tasks, 0.0), remote(num_tasks, 0.0);
  for (const TraceRecord& r : records) {
    if (r.ev == "locbs.place") {
      ++ts.place_events;
      const auto t = static_cast<std::size_t>(r.num("task", -1.0));
      if (t < num_tasks) {
        placed[t] = 1;
        ts.backfilled[t] = r.flag("backfill") ? 1 : 0;
        local[t] = r.num("local_bytes");
        remote[t] = r.num("remote_bytes");
      }
    } else if (r.ev == "sim.transfer") {
      ++ts.transfer_events;
      ts.transfer_bytes += r.num("bytes");
    } else if (r.ev == "fault.fail") {
      FaultWindow w;
      w.proc = static_cast<ProcId>(r.num("proc"));
      w.fail_s = r.num("at");
      w.repair_s = r.flag("repairs") ? r.num("repair_at", -1.0) : -1.0;
      ts.fault_windows.push_back(w);
    } else if (r.ev == "fault.kill") {
      ++ts.fault_kills;
      if (const std::string* k = r.str("kind");
          k != nullptr && *k == "transfer")
        ++ts.fault_transfer_timeouts;
      ts.fault_wasted_s += r.num("wasted_s");
    } else if (r.ev == "recovery.retry") {
      ++ts.recovery_retries;
    } else if (r.ev == "recovery.replan") {
      ++ts.recovery_replans;
    } else if (r.ev == "perturb.slow") {
      ++ts.perturb_slow_events;
      ts.perturb_stretch_s += r.num("stretch_s");
    } else if (r.ev == "perturb.link") {
      ++ts.perturb_link_events;
      ts.perturb_link_delay_s += r.num("delay_s");
    } else if (r.ev == "mitigation.straggler") {
      ++ts.mitigation_stragglers;
    } else if (r.ev == "mitigation.speculate") {
      ++ts.mitigation_speculations;
      ts.mitigation_wasted_s += r.num("wasted_s");
    } else if (r.ev == "mitigation.replan") {
      ++ts.mitigation_replans;
      ts.mitigation_wasted_s += r.num("wasted_s");
    } else if (r.ev == "robust.sample") {
      ++ts.robust_samples;
    }
  }
  std::sort(ts.fault_windows.begin(), ts.fault_windows.end(),
            [](const FaultWindow& x, const FaultWindow& y) {
              if (x.fail_s != y.fail_s) return x.fail_s < y.fail_s;
              return x.proc < y.proc;
            });
  for (std::size_t t = 0; t < num_tasks; ++t) {
    if (!placed[t]) continue;
    ts.final_local_bytes += local[t];
    ts.final_remote_bytes += remote[t];
  }
  return ts;
}

void join_trace(ScheduleAnalysis& a, const TraceSummary& t) {
  if (a.fault_windows.empty()) a.fault_windows = t.fault_windows;
  for (TaskBlame& b : a.blame) {
    if (b.kind != BlameKind::Processor) continue;
    if (b.culprit == kNoTask) continue;
    if (static_cast<std::size_t>(b.culprit) < t.backfilled.size() &&
        t.backfilled[b.culprit] != 0)
      b.kind = BlameKind::Backfill;
  }
}

}  // namespace locmps::obs
