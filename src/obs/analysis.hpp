#pragma once
/// \file analysis.hpp
/// Schedule post-mortem analytics: turns a realized Schedule (plus its
/// TaskGraph and communication model) into conclusions — where processor
/// time went, how much redistribution volume stayed local (the paper's
/// central claim, Sections 3-4), why each task started when it did, and
/// how the makespan decomposes along the critical chain. Optionally joins
/// the PR-1 observability signals: backfill effectiveness from a
/// MetricsSnapshot and per-task backfill flags from a JSONL decision
/// trace (docs/observability.md documents the event taxonomy).
///
/// The analyzer is pure and read-only: it never mutates the schedule and
/// costs O(V + E + P + B log B) where B is the number of busy windows.
/// Every evaluate_scheme() run carries one (SchemeRun::analysis), so tests
/// and the harness can assert on analytics instead of re-deriving them.

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "network/comm_model.hpp"
#include "obs/metrics.hpp"
#include "schedule/schedule.hpp"
#include "schedule/schedule_dag.hpp"
#include "schedule/timeline.hpp"

namespace locmps::obs {

/// Occupancy accounting of one processor over [0, makespan].
struct ProcUtilization {
  ProcId proc = 0;
  double busy_s = 0.0;     ///< summed occupancy windows (busy_from -> finish)
  double idle_s = 0.0;     ///< summed idle holes; busy + idle == horizon
  double utilization = 0.0;  ///< busy / horizon (0 when horizon is 0)
  std::size_t tasks = 0;   ///< tasks executing on this processor
  std::size_t holes = 0;   ///< idle windows (see Timeline::holes)
};

/// Histogram of idle-hole durations across all processors, linear bins
/// over [0, longest hole]. Empty (no bins) when the timeline is packed.
struct HoleHistogram {
  std::vector<double> bin_edges;     ///< bins + 1 edges, ascending
  std::vector<std::size_t> counts;   ///< holes per bin
  std::size_t total_holes = 0;
  double total_idle_s = 0.0;
  double longest_s = 0.0;
  double mean_s = 0.0;
};

/// Locality class of one edge's redistribution.
enum class EdgeClass {
  Empty,    ///< carries no data
  Local,    ///< all data stays on block-cyclic-aligned shared processors
  Partial,  ///< some data crosses the network
  Remote,   ///< all data crosses the network
};

/// Per-edge redistribution breakdown under the realized placements.
struct EdgeLocality {
  EdgeId edge = kNoEdge;
  TaskId src = kNoTask;
  TaskId dst = kNoTask;
  double volume_bytes = 0.0;
  double remote_bytes = 0.0;  ///< crosses the network
  double local_bytes = 0.0;   ///< volume - remote
  double transfer_s = 0.0;    ///< duration of the remote part (0 if local)
  EdgeClass cls = EdgeClass::Empty;
};

/// Aggregate locality accounting. Reconciles with the PR-1 counters of
/// the same run: remote_bytes == "sim.remote_bytes", local_edges ==
/// "sim.local_edges", partial_edges + remote_edges == "sim.transfers"
/// (tests/test_analysis.cpp asserts this end-to-end).
struct LocalityTotals {
  double total_bytes = 0.0;
  double local_bytes = 0.0;
  double remote_bytes = 0.0;
  /// 1 - remote/total; 1.0 when the graph moves no data.
  double locality_fraction = 1.0;
  double transfer_seconds = 0.0;  ///< summed remote-transfer durations
  std::size_t empty_edges = 0;
  std::size_t local_edges = 0;
  std::size_t partial_edges = 0;
  std::size_t remote_edges = 0;
};

/// Why a task started when it did (the binding start constraint).
enum class BlameKind {
  Source,     ///< starts at time ~0: nothing to blame
  Data,       ///< last-arriving predecessor (redistribution included)
  Processor,  ///< waited for its processors to come free
  Backfill,   ///< Processor, and the blocking occupant was backfilled in
              ///< front of it (requires a joined decision trace)
  Release,    ///< started late with no data/processor constraint
              ///< (release times, single-port serialization, noise)
  Tie,        ///< data and processor constraints bind together
};

const char* to_string(BlameKind k);

/// Start-delay attribution of one task.
struct TaskBlame {
  TaskId task = kNoTask;
  BlameKind kind = BlameKind::Source;
  /// The blocking predecessor (Data/Tie) or occupant (Processor/Backfill).
  TaskId culprit = kNoTask;
  /// The last-arriving in-edge (Data/Tie only).
  EdgeId edge = kNoEdge;
  double start = 0.0;
  double data_ready = 0.0;  ///< latest predecessor arrival (ft + transfer)
  double proc_ready = 0.0;  ///< latest prior finish on the task's processors
  /// Excess delay attributable to the binding constraint: how much earlier
  /// the start floor would sit if it vanished (binding - runner-up).
  double delay_s = 0.0;
  /// Unexplained start gap beyond both constraints (>= 0).
  double slack_s = 0.0;
};

/// One link of the critical chain: a task plus the time spent *entering*
/// it from its chain predecessor (redistribution + unexplained wait).
struct CriticalPathStep {
  TaskId task = kNoTask;
  double compute_s = 0.0;  ///< finish - start of this task
  double redist_s = 0.0;   ///< transfer duration of the binding in-edge
  double wait_s = 0.0;     ///< idle gap not covered by compute/redist
};

/// Backward walk from the makespan-defining task along binding
/// constraints. compute + redistribution + wait telescopes to the
/// makespan (tests assert the reconciliation).
struct CriticalPathBreakdown {
  std::vector<CriticalPathStep> steps;  ///< source -> makespan task
  double compute_s = 0.0;
  double redist_s = 0.0;
  double wait_s = 0.0;
  double makespan = 0.0;
};

/// Backfill effectiveness, joined from the run's "locbs.*" counters
/// (join_backfill_stats) — absent for schemes that do not run LoCBS.
struct BackfillStats {
  bool present = false;
  double passes = 0.0;         ///< locbs.calls
  double tasks_placed = 0.0;   ///< locbs.tasks_placed (all passes)
  double holes_scanned = 0.0;  ///< locbs.holes_scanned
  double hits = 0.0;           ///< locbs.backfill_hits
  double cutoffs = 0.0;        ///< locbs.scan_cutoffs
  double hit_rate = 0.0;       ///< hits / tasks_placed
  double prune_rate = 0.0;     ///< cutoffs / tasks_placed
};

/// One processor-failure window, for the report's fault timeline lane.
/// Filled from a FaultPlan (faults/recovery.hpp join_fault_plan) or from
/// the "fault.fail" events of a decision trace.
struct FaultWindow {
  ProcId proc = 0;
  double fail_s = 0.0;
  double repair_s = -1.0;  ///< < 0: never repaired
};

/// One processor-slowdown window (a performance fault), for the report's
/// straggler lanes. Filled from a PerturbationPlan via join_perturbation
/// (faults/robustness.hpp) or from the trace's "mitigation.straggler"
/// events.
struct SlowdownWindow {
  ProcId proc = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
  double factor = 1.0;  ///< compute-stretch multiplier inside the window
};

/// Performance-fault exposure of the run, joined from the "perturb.*"
/// counters (join_perturb_stats) — absent for unperturbed runs.
struct PerturbStats {
  bool present = false;
  double slowed_tasks = 0.0;        ///< perturb.slowed_tasks
  double stretch_seconds = 0.0;     ///< perturb.stretch_seconds
  double degraded_transfers = 0.0;  ///< perturb.degraded_transfers
  double link_delay_seconds = 0.0;  ///< perturb.link_delay_seconds
};

/// Straggler-mitigation accounting, joined from the "mitigation.*"
/// counters (join_mitigation_stats) — absent when detection was off.
struct MitigationStats {
  bool present = false;
  double stragglers = 0.0;      ///< mitigation.stragglers (detections)
  double speculations = 0.0;    ///< mitigation.speculations (copies)
  double spec_wins = 0.0;       ///< mitigation.spec_wins
  double spec_losses = 0.0;     ///< mitigation.spec_losses
  double replans = 0.0;         ///< mitigation.replans
  double wasted_seconds = 0.0;  ///< mitigation.wasted_seconds
};

/// Monte-Carlo robustness digest, joined from a RobustnessReport
/// (faults/robustness.hpp join_robustness) — absent (samples == 0) when
/// no ensemble was run.
struct RobustnessSummary {
  std::size_t samples = 0;
  double nominal = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double median_lo = 0.0;  ///< order-statistic CI bounds (util/stats.hpp)
  double median_hi = 0.0;
  double p95 = 0.0;
  double worst = 0.0;
  double p95_over_nominal = 1.0;
};

/// Fault-injection and recovery accounting, joined from the run's
/// "fault.*" / "recovery.*" counters (join_fault_stats) — absent for
/// fault-free runs.
struct FaultStats {
  bool present = false;
  double injected = 0.0;           ///< fault.injected (plan events)
  double procs_failed = 0.0;       ///< fault.procs_failed (observed onsets)
  double kills = 0.0;              ///< fault.kills
  double transfer_timeouts = 0.0;  ///< fault.transfer_timeouts
  double wasted_proc_seconds = 0.0;  ///< fault.wasted_proc_seconds
  double retries = 0.0;            ///< recovery.retries
  double replans = 0.0;            ///< recovery.replans
  double masked_procs = 0.0;       ///< recovery.masked_procs
  double backoff_seconds = 0.0;    ///< recovery.backoff_seconds
  double rounds = 0.0;             ///< recovery.rounds
};

/// Analyzer knobs.
struct AnalysisOptions {
  /// Charge only the exact block-cyclic remote volume per edge (matches
  /// SimOptions::locality_volumes of the run being explained; schemes that
  /// do not orchestrate locality transfer full volumes between differing
  /// layouts).
  bool locality_volumes = true;
  /// Linear bins of the idle-hole histogram.
  std::size_t hole_bins = 8;
};

/// The complete post-mortem of one schedule.
struct ScheduleAnalysis {
  double makespan = 0.0;
  std::size_t num_procs = 0;
  std::size_t num_tasks = 0;

  std::vector<ProcUtilization> procs;  ///< one entry per processor
  double mean_utilization = 0.0;       ///< mean of per-proc utilizations
  HoleHistogram holes;

  std::vector<EdgeLocality> edges;  ///< one entry per edge, by EdgeId
  LocalityTotals locality;

  std::vector<TaskBlame> blame;  ///< one entry per task, by TaskId
  CriticalPathBreakdown critical_path;

  BackfillStats backfill;

  FaultStats faults;
  /// Failure windows of the run's FaultPlan, sorted by (fail_s, proc);
  /// empty for fault-free runs. Drawn as the Gantt fault lane.
  std::vector<FaultWindow> fault_windows;

  PerturbStats perturb;
  MitigationStats mitigation;
  RobustnessSummary robustness;
  /// Slowdown windows of the run's PerturbationPlan, sorted by
  /// (begin_s, proc); empty for unperturbed runs. Drawn as the Gantt
  /// straggler lanes.
  std::vector<SlowdownWindow> slowdown_windows;

  /// Decision events discarded by a full EventBuffer during the run
  /// ("obs.events.dropped", joined by join_event_health). Non-zero means
  /// the decision trace is truncated; surfaced by locmps-inspect and the
  /// HTML report footer.
  double events_dropped = 0.0;

  /// Decision events discarded by a bounded JSONL sink that hit its line
  /// cap ("obs.trace.dropped", joined by join_event_health). Non-zero
  /// means the on-disk trace is truncated even though the in-memory
  /// buffers kept up.
  double trace_dropped = 0.0;

  /// Blame entries with delay_s > 0, sorted by descending delay, at most
  /// \p n of them (the report's top-N blame table).
  std::vector<TaskBlame> top_blame(std::size_t n) const;
};

/// Computes the full analysis of complete schedule \p s. Throws
/// std::invalid_argument when \p s is incomplete.
ScheduleAnalysis analyze_schedule(const TaskGraph& g, const Schedule& s,
                                  const CommModel& comm,
                                  const AnalysisOptions& opt = {});

/// Fills \p a.backfill from the run's "locbs.*" counters.
void join_backfill_stats(ScheduleAnalysis& a, const MetricsSnapshot& snap);

/// Fills \p a.faults from the run's "fault.*" / "recovery.*" counters.
void join_fault_stats(ScheduleAnalysis& a, const MetricsSnapshot& snap);

/// Fills \p a.perturb from the run's "perturb.*" counters.
void join_perturb_stats(ScheduleAnalysis& a, const MetricsSnapshot& snap);

/// Fills \p a.mitigation from the run's "mitigation.*" counters.
void join_mitigation_stats(ScheduleAnalysis& a, const MetricsSnapshot& snap);

/// Fills \p a.events_dropped / \p a.trace_dropped from the run's
/// "obs.events.dropped" / "obs.trace.dropped" counters.
void join_event_health(ScheduleAnalysis& a, const MetricsSnapshot& snap);

// ---------------------------------------------------------------------------
// Decision-trace ingestion (the PR-1 JSONL stream).

/// One parsed trace line: the event name plus its flat fields.
struct TraceRecord {
  std::string ev;
  std::vector<std::pair<std::string, double>> nums;
  std::vector<std::pair<std::string, std::string>> strs;
  std::vector<std::pair<std::string, bool>> bools;

  double num(std::string_view key, double fallback = 0.0) const;
  bool flag(std::string_view key, bool fallback = false) const;
  const std::string* str(std::string_view key) const;
};

/// Parses a JSONL decision trace (one flat JSON object per line; blank
/// lines skipped). Throws std::runtime_error on malformed input.
std::vector<TraceRecord> read_trace(std::istream& is);

/// Digest of a trace, joined against a schedule of \p num_tasks tasks.
struct TraceSummary {
  std::size_t place_events = 0;    ///< "locbs.place" lines (all passes)
  std::size_t transfer_events = 0; ///< "sim.transfer" lines
  /// Realized remote bytes: sum of "sim.transfer" byte fields. Must equal
  /// LocalityTotals::remote_bytes of the same run.
  double transfer_bytes = 0.0;
  /// Final-pass split from the *last* "locbs.place" per task.
  double final_local_bytes = 0.0;
  double final_remote_bytes = 0.0;
  /// Per-task: was the final placement a backfill (started before the
  /// chart end)? Empty fields stay false.
  std::vector<char> backfilled;

  // Fault/recovery digest ("fault.*" / "recovery.*" events). Must
  // reconcile with the same run's counters and RecoveryResult fields
  // (tools/inspect.cpp cross-checks this for faulty runs).
  std::size_t fault_kills = 0;             ///< "fault.kill" lines
  std::size_t fault_transfer_timeouts = 0; ///< ... with kind == "transfer"
  double fault_wasted_s = 0.0;             ///< summed wasted_s fields
  std::size_t recovery_retries = 0;        ///< "recovery.retry" lines
  std::size_t recovery_replans = 0;        ///< "recovery.replan" lines
  /// Failure windows from "fault.fail" events, sorted by (fail_s, proc).
  std::vector<FaultWindow> fault_windows;

  // Performance-fault digest ("perturb.*" / "mitigation.*" events). Must
  // reconcile with the same run's counters and its SimResult /
  // RecoveryResult fields (the third book of the three-way check).
  std::size_t perturb_slow_events = 0;   ///< "perturb.slow" lines
  double perturb_stretch_s = 0.0;        ///< summed stretch_s fields
  std::size_t perturb_link_events = 0;   ///< "perturb.link" lines
  double perturb_link_delay_s = 0.0;     ///< summed delay_s fields
  std::size_t mitigation_stragglers = 0;   ///< "mitigation.straggler" lines
  std::size_t mitigation_speculations = 0; ///< "mitigation.speculate" lines
  std::size_t mitigation_replans = 0;      ///< "mitigation.replan" lines
  double mitigation_wasted_s = 0.0;        ///< summed wasted_s fields
  std::size_t robust_samples = 0;          ///< "robust.sample" lines
};

/// Digests \p records for a schedule of \p num_tasks tasks.
TraceSummary summarize_trace(const std::vector<TraceRecord>& records,
                             std::size_t num_tasks);

/// Joins \p t into \p a: Processor blame whose culprit was backfilled is
/// upgraded to BlameKind::Backfill.
void join_trace(ScheduleAnalysis& a, const TraceSummary& t);

}  // namespace locmps::obs
