#include "obs/events.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace locmps::obs {

std::string json_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size() + 4);
  for (const char ch : in) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

/// JSON has no Inf/NaN literals; clamp to null.
void write_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    os << buf;
  } else {
    os << "null";
  }
}

}  // namespace

void JsonlSink::emit(const Event& e) {
  if (lines_ >= max_lines_) {
    ++dropped_;
    return;
  }
  ++lines_;
  os_ << "{\"ev\":\"" << json_escape(e.name()) << "\",\"t\":";
  write_number(os_, epoch_.seconds());
  for (const auto& [key, value] : e.fields()) {
    os_ << ",\"" << json_escape(key) << "\":";
    std::visit(
        [&](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, bool>) {
            os_ << (v ? "true" : "false");
          } else if constexpr (std::is_same_v<T, std::int64_t>) {
            os_ << v;
          } else if constexpr (std::is_same_v<T, double>) {
            write_number(os_, v);
          } else {
            os_ << '"' << json_escape(v) << '"';
          }
        },
        value);
  }
  os_ << "}\n";
}

}  // namespace locmps::obs
