#pragma once
/// \file events.hpp
/// Scheduler observability: structured decision events.
///
/// An Event is a name plus flat key/value fields — one scheduler decision
/// (a widening, a placement, a look-ahead outcome). Sinks receive events
/// as they happen; the JSONL sink writes one JSON object per line with a
/// monotonic "t" stamp, giving a replayable decision trace
/// (docs/observability.md documents the taxonomy).
///
/// ObsContext bundles the registry and sink into the single pointer the
/// instrumented layers carry. A null context pointer is the fast path:
/// every instrumented site guards all its work — including constructing
/// the Event — behind one `if (obs != nullptr)` branch.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "obs/metrics.hpp"
#include "util/annotations.hpp"
#include "util/stopwatch.hpp"

namespace locmps::obs {

/// One structured event. Built fluently:
///   Event("locmps.refine").with("task", t).with("gain", g)
class Event {
 public:
  using Value = std::variant<bool, std::int64_t, double, std::string>;

  explicit Event(std::string_view name) : name_(name) {}

  Event&& with(std::string_view key, bool v) && {
    fields_.emplace_back(key, Value(v));
    return std::move(*this);
  }
  Event&& with(std::string_view key, double v) && {
    fields_.emplace_back(key, Value(v));
    return std::move(*this);
  }
  Event&& with(std::string_view key, std::int64_t v) && {
    fields_.emplace_back(key, Value(v));
    return std::move(*this);
  }
  Event&& with(std::string_view key, std::uint64_t v) && {
    fields_.emplace_back(key, Value(static_cast<std::int64_t>(v)));
    return std::move(*this);
  }
  Event&& with(std::string_view key, std::uint32_t v) && {
    fields_.emplace_back(key, Value(static_cast<std::int64_t>(v)));
    return std::move(*this);
  }
  Event&& with(std::string_view key, int v) && {
    fields_.emplace_back(key, Value(static_cast<std::int64_t>(v)));
    return std::move(*this);
  }
  Event&& with(std::string_view key, std::string_view v) && {
    fields_.emplace_back(key, Value(std::string(v)));
    return std::move(*this);
  }
  Event&& with(std::string_view key, const char* v) && {
    fields_.emplace_back(key, Value(std::string(v)));
    return std::move(*this);
  }

  const std::string& name() const { return name_; }
  const std::vector<std::pair<std::string, Value>>& fields() const {
    return fields_;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, Value>> fields_;
};

/// Receiver of decision events.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& e) = 0;
  /// Events this sink discarded because a retention bound was hit.
  /// Harness layers fold it into the "obs.trace.dropped" counter so a
  /// truncated decision trace is never silent.
  virtual std::uint64_t dropped() const { return 0; }
};

/// Writes events as JSON Lines: {"ev":<name>,"t":<seconds>,<fields>...}.
/// "t" is seconds since sink construction on a monotonic clock. The caller
/// owns the stream and its lifetime.
///
/// Bounded like EventBuffer: at most max_lines events are written; later
/// emits are counted in dropped() instead of growing the trace file
/// without limit on pathological graphs.
class JsonlSink final : public EventSink {
 public:
  /// Default line bound. Roomy — a full fig06 sweep stays well under it —
  /// while still capping a runaway emitter's disk use.
  static constexpr std::uint64_t kMaxLines = 1u << 20;

  explicit JsonlSink(std::ostream& os, std::uint64_t max_lines = kMaxLines)
      : os_(os), max_lines_(max_lines) {}
  void emit(const Event& e) override;
  std::uint64_t dropped() const override { return dropped_; }

 private:
  std::ostream& os_;
  Stopwatch epoch_;
  std::uint64_t max_lines_ = kMaxLines;
  std::uint64_t lines_ = 0;
  std::uint64_t dropped_ = 0;
};

/// JSON string escaping shared by the JSONL sink and the chrome-trace
/// exporter (quotes, backslashes, control characters).
std::string json_escape(std::string_view in);

/// Buffers events in memory for deferred, ordered replay. The parallel
/// LoC-MPS probes record into one private EventBuffer each and the
/// orchestrator replays the buffers into the session sink in candidate
/// order after the batch barrier, so a threaded run's trace is identical
/// to the sequential one (docs/parallelism.md).
/// Thread-compatible like the registry: each speculative probe owns its
/// private buffer; only the orchestrator (after the batch barrier) calls
/// replay_into (schedulers/loc_mps.cpp, docs/parallelism.md).
///
/// Capacity is bounded at kMaxEvents: once full, further emits are
/// counted in dropped() instead of growing the buffer without limit.
/// The LoC-MPS orchestrator folds probe drop counts into the
/// "obs.events.dropped" counter, which locmps-inspect and the HTML
/// report footer surface so a truncated decision trace is never silent.
class LOCMPS_THREAD_COMPATIBLE EventBuffer final : public EventSink {
 public:
  /// Retention bound, mirroring MetricsRegistry::kMaxSpans in spirit:
  /// large enough for every workload in the test/bench suites, small
  /// enough that a runaway emitter cannot exhaust memory.
  static constexpr std::size_t kMaxEvents = 65536;

  void emit(const Event& e) override {
    if (events_.size() >= kMaxEvents) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  const std::vector<Event>& events() const { return events_; }
  /// Events discarded because the buffer was full.
  std::uint64_t dropped() const override { return dropped_; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Re-emits every buffered event into \p sink, in emission order.
  /// Dropped events are gone; the caller accounts for dropped().
  void replay_into(EventSink& sink) const {
    for (const Event& e : events_) sink.emit(e);
  }

 private:
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

class Profiler;  // obs/profile.hpp

/// The handle instrumented layers carry. Any member may be null; the
/// whole context pointer is null when observability is off (the zero-cost
/// default).
struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  EventSink* sink = nullptr;
  Profiler* profile = nullptr;
};

/// Emit helper: true when \p obs has a sink attached.
[[nodiscard]] inline bool wants_events(const ObsContext* obs) {
  return obs != nullptr && obs->sink != nullptr;
}

/// Metrics helper: the registry, or null.
[[nodiscard]] inline MetricsRegistry* metrics_of(const ObsContext* obs) {
  return obs != nullptr ? obs->metrics : nullptr;
}

}  // namespace locmps::obs
