#include "obs/flame.hpp"

#include <cmath>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>

namespace locmps::obs {

namespace {

std::uint64_t self_weight(const ProfileNode& n, FlameWeight w) {
  switch (w) {
    case FlameWeight::kWallMicros:
      return static_cast<std::uint64_t>(std::llround(n.self_wall_s() * 1e6));
    case FlameWeight::kCpuMicros:
      return static_cast<std::uint64_t>(std::llround(n.self_cpu_s() * 1e6));
    case FlameWeight::kAllocBytes: {
      std::uint64_t bytes = n.alloc_bytes;
      for (const ProfileNode& c : n.children) {
        bytes -= c.alloc_bytes < bytes ? c.alloc_bytes : bytes;
      }
      return bytes;
    }
  }
  return 0;
}

void collapse(std::ostream& os, const ProfileNode& n, const std::string& prefix,
              FlameWeight w) {
  const std::string path =
      prefix.empty() ? n.name : prefix + ";" + n.name;
  const std::uint64_t weight = self_weight(n, w);
  if (weight > 0) os << path << ' ' << weight << '\n';
  for (const ProfileNode& c : n.children) collapse(os, c, path, w);
}

std::string human_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnit[] = {"B", "K", "M", "G", "T"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream ss;
  if (u == 0) {
    ss << bytes << "B";
  } else {
    ss << std::fixed << std::setprecision(1) << v << kUnit[u];
  }
  return ss.str();
}

void tree_row(std::ostream& os, const ProfileNode& n, int depth) {
  std::string label(static_cast<std::size_t>(depth) * 2, ' ');
  label += n.name;
  if (label.size() > 36) label.resize(36);
  os << "  " << std::left << std::setw(36) << label << std::right
     << std::setw(8) << n.count << std::fixed << std::setprecision(6)
     << std::setw(12) << n.wall_s << std::setw(12) << n.self_wall_s()
     << std::setw(12) << n.cpu_s << std::setw(10) << human_bytes(n.alloc_bytes)
     << std::setw(9) << n.allocs << '\n';
  for (const ProfileNode& c : n.children) tree_row(os, c, depth + 1);
}

}  // namespace

void write_collapsed_stacks(std::ostream& os, const ProfileSnapshot& snap,
                            FlameWeight weight) {
  for (const ProfileNode& c : snap.root.children) {
    collapse(os, c, "", weight);
  }
}

void write_profile_tree(std::ostream& os, const ProfileSnapshot& snap) {
  os << "  " << std::left << std::setw(36) << "span" << std::right
     << std::setw(8) << "count" << std::setw(12) << "total(s)"
     << std::setw(12) << "self(s)" << std::setw(12) << "cpu(s)"
     << std::setw(10) << "alloc" << std::setw(9) << "allocs" << '\n';
  for (const ProfileNode& c : snap.root.children) tree_row(os, c, 0);
}

}  // namespace locmps::obs
