#pragma once
/// \file flame.hpp
/// Presentation of ProfileSnapshot trees: collapsed-stack flamegraph
/// text (the `stack;stack;stack weight` format consumed by
/// flamegraph.pl and speedscope) and the fixed-width self/total tree
/// that `locmps-inspect --profile` prints.

#include <iosfwd>

#include "obs/profile.hpp"

namespace locmps::obs {

/// Which per-span quantity becomes the collapsed-stack weight.
enum class FlameWeight {
  kWallMicros,  ///< self wall time, integer microseconds
  kCpuMicros,   ///< self CPU time, integer microseconds
  kAllocBytes,  ///< self allocation bytes
};

/// Writes one collapsed-stack line per span path with a positive self
/// weight: "harness.plan;locmps.run;locbs.pass 1234\n". Deterministic:
/// paths appear in depth-first name order.
void write_collapsed_stacks(std::ostream& os, const ProfileSnapshot& snap,
                            FlameWeight weight = FlameWeight::kWallMicros);

/// Writes the human-readable span tree: one row per node (indented by
/// depth) with count, total/self wall seconds, CPU seconds, and
/// allocation deltas.
void write_profile_tree(std::ostream& os, const ProfileSnapshot& snap);

}  // namespace locmps::obs
