#pragma once
/// \file log.hpp
/// Tiny leveled stderr logger unifying the ad-hoc diagnostic prints of
/// the bench binaries and locmps-inspect.
///
///   obs::log(obs::LogLevel::kWarn, "inspect") << "cannot open " << path;
///
/// The level comes from (highest precedence first) set_log_level(), the
/// LOCMPS_LOG environment variable, then the kInfo default. CLI tools
/// map a --log-level flag onto parse_log_level()/set_log_level().
///
/// Lines carry a wall-clock HH:MM:SS prefix. That is the one sanctioned
/// nondeterminism in this header — diagnostics are operator-facing and
/// never feed schedules, counters, or telemetry stats — and it carries
/// the same LINT-ALLOW(nondet-source) audit as the bench timestamp
/// (tools/lint, docs/determinism.md).
///
/// Thread notes: the level is one relaxed atomic; a LogLine buffers its
/// whole line and writes it with a single stream insertion, so lines
/// from concurrent threads never interleave mid-line.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <sstream>
#include <string_view>

namespace locmps::obs {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

namespace detail {

inline std::atomic<int>& log_level_ref() {
  static std::atomic<int> level{-1};  // -1 = not yet initialized
  return level;
}

inline std::ostream*& log_stream_ref() {
  static std::ostream* os = &std::cerr;
  return os;
}

inline const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}

}  // namespace detail

/// Parses "error"/"warn"/"info"/"debug" (or "e"/"w"/"i"/"d") into \p out.
inline bool parse_log_level(std::string_view s, LogLevel& out) {
  if (s == "error" || s == "e") {
    out = LogLevel::kError;
  } else if (s == "warn" || s == "warning" || s == "w") {
    out = LogLevel::kWarn;
  } else if (s == "info" || s == "i") {
    out = LogLevel::kInfo;
  } else if (s == "debug" || s == "d") {
    out = LogLevel::kDebug;
  } else {
    return false;
  }
  return true;
}

/// Overrides the level (beats LOCMPS_LOG).
inline void set_log_level(LogLevel l) {
  detail::log_level_ref().store(static_cast<int>(l),
                                std::memory_order_relaxed);
}

/// The active level: set_log_level() if called, else LOCMPS_LOG, else
/// kInfo.
inline LogLevel log_level() {
  int v = detail::log_level_ref().load(std::memory_order_relaxed);
  if (v < 0) {
    LogLevel parsed = LogLevel::kInfo;
    if (const char* env = std::getenv("LOCMPS_LOG")) {
      parse_log_level(env, parsed);  // unparsable -> keep default
    }
    v = static_cast<int>(parsed);
    detail::log_level_ref().store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

/// True when a message at \p l would be written.
inline bool log_enabled(LogLevel l) {
  return static_cast<int>(l) <= static_cast<int>(log_level());
}

/// Redirects log output (tests). Null restores stderr.
inline void set_log_stream(std::ostream* os) {
  detail::log_stream_ref() = os != nullptr ? os : &std::cerr;
}

/// One buffered log line, flushed with prefix on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag) : enabled_(log_enabled(level)) {
    if (!enabled_) return;
    const std::time_t now = std::time(nullptr);  // LINT-ALLOW(nondet-source)
    std::tm tm{};
    char hms[16] = "--:--:--";
    if (localtime_r(&now, &tm) != nullptr) {
      std::snprintf(hms, sizeof hms, "%02d:%02d:%02d", tm.tm_hour, tm.tm_min,
                    tm.tm_sec);
    }
    buf_ << hms << ' ' << detail::level_tag(level) << ' ' << tag << ": ";
  }

  ~LogLine() {
    if (enabled_) *detail::log_stream_ref() << buf_.str() << '\n';
  }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  LogLine(LogLine&& other) noexcept : enabled_(other.enabled_) {
    buf_ << other.buf_.str();
    other.enabled_ = false;
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) buf_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream buf_;
};

/// Entry point: obs::log(LogLevel::kError, "bench") << "message";
inline LogLine log(LogLevel level, std::string_view tag) {
  return LogLine(level, tag);
}

}  // namespace locmps::obs
