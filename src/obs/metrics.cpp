#include "obs/metrics.hpp"

#include <algorithm>

namespace locmps::obs {

double MetricsSnapshot::counter(std::string_view name, double fallback) const {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const auto& kv, std::string_view n) { return kv.first < n; });
  if (it == counters.end() || it->first != name) return fallback;
  return it->second;
}

const TimerStats* MetricsSnapshot::timer(std::string_view name) const {
  for (const TimerStats& t : timers)
    if (t.name == name) return &t;
  return nullptr;
}

const SeriesStats* MetricsSnapshot::find_series(std::string_view name) const {
  for (const SeriesStats& s : series)
    if (s.name == name) return &s;
  return nullptr;
}

double& MetricsRegistry::cell(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), 0.0).first->second;
}

void MetricsRegistry::sample(std::string_view name, double value) {
  auto it = series_.find(name);
  if (it == series_.end())
    it = series_.emplace(std::string(name), SeriesData{}).first;
  if (it->second.points.size() < kMaxSamples)
    it->second.points.push_back(SamplePoint{now(), value});
}

void MetricsRegistry::record_span(const std::string& name, double begin_s,
                                  double end_s) {
  TimerData& td = timers_[name];
  td.total_s += end_s - begin_s;
  td.count += 1;
  if (td.spans.size() < kMaxSpans)
    td.spans.push_back(TimerSpan{begin_s, end_s});
}

void MetricsRegistry::reset() {
  counters_.clear();
  timers_.clear();
  series_.clear();
  epoch_.reset();
}

void MetricsRegistry::merge_from(const MetricsSnapshot& snap) {
  for (const auto& [name, value] : snap.counters) cell(name) += value;
  for (const TimerStats& ts : snap.timers) {
    TimerData& td = timers_[ts.name];
    td.total_s += ts.total_s;
    td.count += ts.count;
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, value] : counters_)
    snap.counters.emplace_back(name, value);
  snap.timers.reserve(timers_.size());
  for (const auto& [name, td] : timers_) {
    TimerStats ts;
    ts.name = name;
    ts.total_s = td.total_s;
    ts.count = td.count;
    ts.spans = td.spans;
    snap.timers.push_back(std::move(ts));
  }
  snap.series.reserve(series_.size());
  for (const auto& [name, sd] : series_) {
    SeriesStats ss;
    ss.name = name;
    ss.points = sd.points;
    snap.series.push_back(std::move(ss));
  }
  return snap;
}

}  // namespace locmps::obs
