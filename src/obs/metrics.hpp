#pragma once
/// \file metrics.hpp
/// Scheduler observability: a lightweight metrics registry.
///
/// The registry holds three kinds of instruments, all identified by
/// dotted names ("locbs.holes_scanned", "locmps.best_makespan"):
///  * counters — monotonically accumulated doubles (counts or byte sums);
///  * phase timers — wall-clock accumulators fed by RAII ScopedTimer,
///    which also record bounded begin/end spans for trace export;
///  * sample series — (time, value) points for counter tracks in traces.
///
/// Design rules:
///  * Instrumented code paths take an optional registry pointer; a null
///    pointer must cost exactly one predictable branch (see obs.hpp's
///    ObsContext). Hot loops accumulate into locals and flush once per
///    placement/iteration.
///  * cell() returns a stable double* so per-call hot counters (e.g. the
///    communication model's cost evaluations) can bump a raw slot without
///    a map lookup.
///  * A registry is single-threaded; parallel experiment drivers use one
///    registry per run (core/experiment.cpp does).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"
#include "util/stopwatch.hpp"

namespace locmps::obs {

/// One begin/end interval of a phase timer, in seconds since the
/// registry's epoch (construction or last reset()).
struct TimerSpan {
  double begin_s = 0.0;
  double end_s = 0.0;
};

/// Snapshot of one phase timer.
struct TimerStats {
  std::string name;
  double total_s = 0.0;         ///< summed span durations
  std::uint64_t count = 0;      ///< number of completed spans
  std::vector<TimerSpan> spans; ///< bounded recording (kMaxSpans)
};

/// One point of a sample series, in seconds since the registry's epoch.
struct SamplePoint {
  double t_s = 0.0;
  double value = 0.0;
};

/// Snapshot of one sample series.
struct SeriesStats {
  std::string name;
  std::vector<SamplePoint> points; ///< bounded recording (kMaxSamples)
};

/// Value-type copy of a registry's state, safe to keep after the registry
/// dies (SchemeRun carries one per evaluated scheme).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> counters; ///< sorted by name
  std::vector<TimerStats> timers;
  std::vector<SeriesStats> series;

  /// Counter value by name; \p fallback when absent.
  [[nodiscard]] double counter(std::string_view name,
                               double fallback = 0.0) const;
  /// Timer stats by name; nullptr when absent.
  [[nodiscard]] const TimerStats* timer(std::string_view name) const;
  /// Series by name; nullptr when absent.
  [[nodiscard]] const SeriesStats* find_series(std::string_view name) const;
};

/// The registry. Thread-compatible, never internally locked: exactly one
/// thread may touch a given registry at a time. The parallel LoC-MPS
/// probes each own a private registry and the orchestrator merges the
/// snapshots after the batch barrier (schedulers/loc_mps.cpp,
/// docs/parallelism.md) — sharing one registry across workers is a bug.
class LOCMPS_THREAD_COMPATIBLE MetricsRegistry {
 public:
  /// Bounds on per-instrument recording so long optimization runs cannot
  /// grow snapshots without limit (totals keep accumulating past these).
  static constexpr std::size_t kMaxSpans = 16384;
  static constexpr std::size_t kMaxSamples = 16384;

  MetricsRegistry() = default;

  /// Adds \p delta to the named counter (creating it at zero).
  void add(std::string_view name, double delta = 1.0) { cell(name) += delta; }

  /// Overwrites the named counter (gauge-style use).
  void set(std::string_view name, double value) { cell(name) = value; }

  /// Stable address of the named counter's storage. Valid until reset();
  /// lets hot paths bump a counter without hashing the name each call.
  double* cell_ptr(std::string_view name) { return &cell(name); }

  /// Current value of the named counter; \p fallback when absent.
  [[nodiscard]] double value(std::string_view name,
                             double fallback = 0.0) const {
    const auto it = counters_.find(name);
    return it != counters_.end() ? it->second : fallback;
  }

  /// Appends a sample point (stamped now()) to the named series.
  void sample(std::string_view name, double value);

  /// Seconds since the registry epoch, on the same clock the timers use.
  double now() const { return epoch_.seconds(); }

  /// RAII phase timer: measures construction-to-destruction and records a
  /// span. Constructible from a null registry (no-op) so call sites can
  /// instrument unconditionally.
  class ScopedTimer {
   public:
    ScopedTimer(MetricsRegistry* reg, std::string_view name)
        : reg_(reg), begin_s_(reg != nullptr ? reg->now() : 0.0) {
      if (reg_ != nullptr) name_.assign(name);
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() { stop(); }

    /// Ends the span early (idempotent).
    void stop() {
      if (reg_ == nullptr) return;
      reg_->record_span(name_, begin_s_, reg_->now());
      reg_ = nullptr;
    }

   private:
    MetricsRegistry* reg_;
    double begin_s_;
    std::string name_;
  };

  /// Discarding the returned timer would close its span immediately and
  /// record a ~zero-length phase — hence [[nodiscard]].
  [[nodiscard]] ScopedTimer time_phase(std::string_view name) {
    return ScopedTimer(this, name);
  }

  /// Clears every instrument and restarts the epoch.
  void reset();

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Folds another registry's snapshot into this one: counters and timer
  /// totals/counts add up; timer spans and series points are NOT
  /// transferred (they are relative to the donor's epoch, which differs
  /// from ours). Used by the parallel LoC-MPS reduction to merge per-probe
  /// registries into the session registry in candidate order
  /// (docs/parallelism.md).
  void merge_from(const MetricsSnapshot& snap);

 private:
  friend class ScopedTimer;

  struct TimerData {
    double total_s = 0.0;
    std::uint64_t count = 0;
    std::vector<TimerSpan> spans;
  };
  struct SeriesData {
    std::vector<SamplePoint> points;
  };

  double& cell(std::string_view name);
  void record_span(const std::string& name, double begin_s, double end_s);

  // std::map: node-based, so cell_ptr() addresses stay stable across
  // inserts; heterogeneous lookup avoids a temporary string per query.
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, TimerData, std::less<>> timers_;
  std::map<std::string, SeriesData, std::less<>> series_;
  Stopwatch epoch_;
};

using ScopedTimer = MetricsRegistry::ScopedTimer;

}  // namespace locmps::obs
