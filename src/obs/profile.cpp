#include "obs/profile.hpp"

#include <atomic>
#include <cstdlib>
#include <ctime>
#include <new>

#include "obs/events.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace locmps::obs {

namespace {

// Thread-local allocation state. Defined unconditionally so the
// accessors work (and report zeros) in builds without the hook.
thread_local AllocCounters tl_alloc;     // NOLINT(misc-use-internal-linkage)
thread_local int tl_alloc_pause = 0;     // >0 = counting paused
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

const AllocCounters& thread_alloc_counters() noexcept { return tl_alloc; }

AllocCounters process_alloc_totals() noexcept {
  AllocCounters out;
  out.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  out.count = g_alloc_count.load(std::memory_order_relaxed);
  return out;
}

bool alloc_counting_enabled() noexcept {
#if defined(LOCMPS_PROFILE_ALLOC)
  return true;
#else
  return false;
#endif
}

void pause_alloc_counting() noexcept { ++tl_alloc_pause; }
void resume_alloc_counting() noexcept { --tl_alloc_pause; }

double thread_cpu_seconds() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0.0;
#endif
}

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

// ---------------------------------------------------------------------------
// Snapshot value types.

const ProfileNode* ProfileNode::child(std::string_view child_name) const {
  for (const ProfileNode& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

double ProfileNode::self_wall_s() const {
  double s = wall_s;
  for (const ProfileNode& c : children) s -= c.wall_s;
  return s > 0.0 ? s : 0.0;
}

double ProfileNode::self_cpu_s() const {
  double s = cpu_s;
  for (const ProfileNode& c : children) s -= c.cpu_s;
  return s > 0.0 ? s : 0.0;
}

const ProfileNode* ProfileSnapshot::find(std::string_view path) const {
  const ProfileNode* node = &root;
  while (!path.empty()) {
    const std::size_t cut = path.find(';');
    const std::string_view seg =
        cut == std::string_view::npos ? path : path.substr(0, cut);
    path = cut == std::string_view::npos ? std::string_view{}
                                         : path.substr(cut + 1);
    node = node->child(seg);
    if (node == nullptr) return nullptr;
  }
  return node == &root ? nullptr : node;
}

// ---------------------------------------------------------------------------
// Profiler.

Profiler::Profiler(bool record_intervals)
    : record_intervals_(record_intervals) {
  if (record_intervals_) {
    pause_alloc_counting();
    intervals_.reserve(kMaxIntervals);
    resume_alloc_counting();
  }
}

Profiler::~Profiler() = default;

Profiler::Span::Span(Profiler* prof, std::string_view name) : prof_(prof) {
  if (prof_ != nullptr) prof_->open_span(name);
}

void Profiler::Span::stop() {
  if (prof_ != nullptr) {
    prof_->close_span();
    prof_ = nullptr;
  }
}

void Profiler::open_span(std::string_view name) {
  pause_alloc_counting();
  // Heterogeneous find first: spans re-open the same node thousands of
  // times, and materializing the key string (a malloc for names past the
  // SSO limit) on every entry is measurable on hot LoCBS spans.
  auto& children = current()->children;
  auto it = children.find(name);
  if (it == children.end()) {
    it = children.try_emplace(std::string(name)).first;
  }
  Frame f;
  f.node = &it->second;
  f.name = &it->first;
  stack_.push_back(f);
  resume_alloc_counting();
  // Clocks and counters read last so bookkeeping cost stays outside the
  // measured window.
  Frame& back = stack_.back();
  back.bytes0 = tl_alloc.bytes;
  back.allocs0 = tl_alloc.count;
  back.cpu0 = thread_cpu_seconds();
  back.wall0 = epoch_.seconds();
}

void Profiler::close_span() {
  const double wall1 = epoch_.seconds();
  const double cpu1 = thread_cpu_seconds();
  const std::uint64_t bytes1 = tl_alloc.bytes;
  const std::uint64_t allocs1 = tl_alloc.count;
  const Frame f = stack_.back();
  pause_alloc_counting();
  stack_.pop_back();
  f.node->count += 1;
  f.node->wall_s += wall1 - f.wall0;
  f.node->cpu_s += cpu1 - f.cpu0;
  f.node->alloc_bytes += bytes1 - f.bytes0;
  f.node->allocs += allocs1 - f.allocs0;
  if (record_intervals_) {
    if (intervals_.size() < kMaxIntervals) {
      ProfileInterval iv;
      iv.name = *f.name;
      iv.depth = static_cast<int>(stack_.size());
      iv.begin_s = f.wall0;
      iv.end_s = wall1;
      intervals_.push_back(std::move(iv));
    } else {
      ++intervals_dropped_;
    }
  }
  resume_alloc_counting();
}

void Profiler::merge_node(Node& into, const ProfileNode& from) {
  into.count += from.count;
  into.wall_s += from.wall_s;
  into.cpu_s += from.cpu_s;
  into.alloc_bytes += from.alloc_bytes;
  into.allocs += from.allocs;
  for (const ProfileNode& c : from.children) {
    merge_node(into.children[c.name], c);
  }
}

void Profiler::merge_from(const ProfileSnapshot& snap) {
  pause_alloc_counting();
  Node* at = current();
  for (const ProfileNode& c : snap.root.children) {
    merge_node(at->children[c.name], c);
  }
  resume_alloc_counting();
}

void Profiler::copy_node(const Node& from, std::string_view name,
                         ProfileNode& out) {
  out.name = std::string(name);
  out.count = from.count;
  out.wall_s = from.wall_s;
  out.cpu_s = from.cpu_s;
  out.alloc_bytes = from.alloc_bytes;
  out.allocs = from.allocs;
  out.children.reserve(from.children.size());
  for (const auto& [child_name, child] : from.children) {
    ProfileNode& c = out.children.emplace_back();
    copy_node(child, child_name, c);
  }
}

ProfileSnapshot Profiler::snapshot() const {
  ProfileSnapshot out;
  copy_node(root_, "", out.root);
  out.intervals = intervals_;
  return out;
}

void Profiler::reset() {
  root_ = Node{};
  stack_.clear();
  intervals_.clear();
  intervals_dropped_ = 0;
  epoch_.reset();
}

Profiler* profiler_of(const ObsContext* obs) {
  return obs != nullptr ? obs->profile : nullptr;
}

}  // namespace locmps::obs

// ---------------------------------------------------------------------------
// Counting operator new hook (LOCMPS_PROFILE build option). Replaces the
// global allocation functions for every binary linking the library. The
// replacements delegate to malloc/free; they only add the counter bumps
// above (skipped while a profiler pauses counting on this thread).

#if defined(LOCMPS_PROFILE_ALLOC)

// GCC pairs the replaced operator delete with the *default* operator new
// when diagnosing; every operator new below is malloc-based, so free()
// is the matching deallocation.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

inline void locmps_note_alloc(std::size_t n) noexcept {
  using locmps::obs::tl_alloc;
  using locmps::obs::tl_alloc_pause;
  if (tl_alloc_pause == 0) {
    tl_alloc.bytes += n;
    tl_alloc.count += 1;
    locmps::obs::g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
    locmps::obs::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}

inline void* locmps_alloc(std::size_t n) noexcept {
  locmps_note_alloc(n);
  return std::malloc(n != 0 ? n : 1);
}

inline void* locmps_alloc_aligned(std::size_t n, std::size_t align) noexcept {
  locmps_note_alloc(n);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n != 0 ? n : 1) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = locmps_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = locmps_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return locmps_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return locmps_alloc(n);
}

void* operator new(std::size_t n, std::align_val_t align) {
  void* p = locmps_alloc_aligned(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t align) {
  void* p = locmps_alloc_aligned(n, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return locmps_alloc_aligned(n, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t n, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return locmps_alloc_aligned(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // LOCMPS_PROFILE_ALLOC
