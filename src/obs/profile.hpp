#pragma once
/// \file profile.hpp
/// Scheduler self-profiling: hierarchical RAII spans with wall-time,
/// CPU-time, and allocation attribution.
///
/// A Profiler owns a tree of named spans. Instrumented code opens spans
/// with the LOCMPS_SPAN macro:
///
///   void hole_scan(..., const obs::ObsContext* obs) {
///     LOCMPS_SPAN(obs, "locbs.hole_scan");
///     ...
///   }
///
/// Each span records, on close: one count, the wall-clock delta
/// (steady clock), the calling thread's CPU-time delta
/// (CLOCK_THREAD_CPUTIME_ID), and the thread's allocation delta (bytes
/// and call count) as measured by the counting `operator new` hook that
/// the LOCMPS_PROFILE build option compiles into the library. Spans
/// nest: a span opened while another is open becomes (or reuses) a child
/// node, so the tree mirrors the dynamic call structure of the planner.
///
/// Like MetricsRegistry, a Profiler is thread-COMPATIBLE, not
/// thread-safe: exactly one thread records into a given profiler at a
/// time. The parallel LoC-MPS probes each own a private Profiler inside
/// their ProbeObs and the orchestrator merges the probe snapshots into
/// the session profiler in candidate order after the batch barrier —
/// the same reduction as metrics and events — so a threads=N profile
/// reconciles with the threads=1 tree (identical span counts; see
/// docs/parallelism.md and docs/observability.md).
///
/// The profiler's own bookkeeping (node creation, interval records)
/// runs with allocation counting paused, so span allocation deltas
/// attribute only the instrumented code's allocations. Byte totals are
/// exactly reproducible run-to-run at a fixed thread count; across
/// thread counts they reconcile closely but not bit-exactly, because
/// speculative probes start with cold container capacities and pay a
/// few extra capacity-growth reallocations (span counts, by contrast,
/// are bit-identical — tests/test_self_profile.cpp).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"
#include "util/stopwatch.hpp"

namespace locmps::obs {

struct ObsContext;  // events.hpp

// ---------------------------------------------------------------------------
// Allocation accounting (counting operator new hook).

/// Per-thread allocation counters. Monotonic: only `operator new`
/// advances them (frees are not tracked — spans measure allocation
/// pressure, not live bytes).
struct AllocCounters {
  std::uint64_t bytes = 0;
  std::uint64_t count = 0;
};

/// The calling thread's allocation counters. Always callable; stays at
/// zero when the build lacks the LOCMPS_PROFILE hook.
const AllocCounters& thread_alloc_counters() noexcept;

/// Process-wide totals across all threads (relaxed atomics).
AllocCounters process_alloc_totals() noexcept;

/// True when the counting operator new hook is compiled in
/// (-DLOCMPS_PROFILE=ON, forced off under sanitizers).
bool alloc_counting_enabled() noexcept;

/// Pauses/resumes allocation counting on the calling thread. Paired;
/// nestable. The profiler brackets its own bookkeeping with these so
/// profiler-internal allocations never pollute span deltas.
void pause_alloc_counting() noexcept;
void resume_alloc_counting() noexcept;

/// The calling thread's CPU seconds (CLOCK_THREAD_CPUTIME_ID), or 0.0
/// where unsupported.
double thread_cpu_seconds() noexcept;

/// Peak resident set size of the process in bytes (getrusage ru_maxrss),
/// or 0 where unsupported. Used by the bench telemetry memory rows.
std::uint64_t peak_rss_bytes() noexcept;

// ---------------------------------------------------------------------------
// Snapshot value types.

/// One aggregated node of the span tree. `wall_s`/`cpu_s`/allocation
/// fields are totals inclusive of children; self time is derived.
struct ProfileNode {
  std::string name;  ///< one path segment, e.g. "locbs.hole_scan"
  std::uint64_t count = 0;
  double wall_s = 0.0;
  double cpu_s = 0.0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t allocs = 0;
  std::vector<ProfileNode> children;  ///< sorted by name

  /// Child with \p child_name, or null.
  const ProfileNode* child(std::string_view child_name) const;

  /// Wall seconds not covered by children (clamped at zero).
  double self_wall_s() const;
  /// CPU seconds not covered by children (clamped at zero).
  double self_cpu_s() const;
};

/// One closed span occurrence, for the Perfetto nested-slice export.
/// Times are seconds since the owning profiler's epoch. Only recorded
/// by interval-recording profilers (the session profiler); probe
/// profilers skip them because their epochs are not comparable.
struct ProfileInterval {
  std::string name;  ///< leaf span name
  int depth = 0;     ///< nesting depth at open (root spans are 0)
  double begin_s = 0.0;
  double end_s = 0.0;
};

/// Value-type copy of a profiler's state: the aggregate tree plus the
/// bounded interval log. The root node is unnamed and carries no
/// aggregates of its own; totals live in its children.
struct ProfileSnapshot {
  ProfileNode root;
  std::vector<ProfileInterval> intervals;

  bool empty() const { return root.children.empty(); }

  /// Node at a ';'-joined path, e.g. "harness.plan;locmps.run", or null.
  const ProfileNode* find(std::string_view path) const;
};

// ---------------------------------------------------------------------------
// Profiler.

/// Hierarchical span recorder. See file comment for the threading
/// contract (thread-compatible, one recording thread at a time).
class LOCMPS_THREAD_COMPATIBLE Profiler {
 public:
  /// Bound on retained ProfileIntervals, mirroring the metrics span cap:
  /// aggregates keep accumulating after the cap, intervals stop.
  static constexpr std::size_t kMaxIntervals = 16384;

  /// \p record_intervals: keep the per-occurrence interval log (session
  /// profilers) or aggregates only (probe/scratch profilers — their
  /// intervals would be dropped at merge anyway).
  explicit Profiler(bool record_intervals = true);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// RAII span handle. Inert when constructed with a null profiler, so
  /// instrumentation sites pay one branch when profiling is off.
  class Span {
   public:
    Span(Profiler* prof, std::string_view name);
    ~Span() { stop(); }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Closes the span early (idempotent).
    void stop();

   private:
    Profiler* prof_ = nullptr;
  };

  /// Opens a named child span of the innermost open span.
  [[nodiscard]] Span span(std::string_view name) { return Span(this, name); }

  /// Seconds since this profiler's construction (interval timebase).
  double now() const { return epoch_.seconds(); }

  /// Grafts \p snap's aggregate tree under the innermost open span (the
  /// root when none is open), adding counts/times/bytes node by node.
  /// Intervals are NOT transferred — they are relative to the donor's
  /// epoch (same rule as MetricsRegistry::merge_from and timer spans).
  void merge_from(const ProfileSnapshot& snap);

  /// Deep copy of the aggregate tree + interval log. Open spans have
  /// not contributed yet (they record on close).
  ProfileSnapshot snapshot() const;

  /// Clears the tree, the interval log, and the epoch. Must not be
  /// called while spans are open.
  void reset();

  /// Number of intervals dropped to the kMaxIntervals cap so far.
  std::uint64_t intervals_dropped() const { return intervals_dropped_; }

 private:
  struct Node {
    std::uint64_t count = 0;
    double wall_s = 0.0;
    double cpu_s = 0.0;
    std::uint64_t alloc_bytes = 0;
    std::uint64_t allocs = 0;
    std::map<std::string, Node, std::less<>> children;
  };

  struct Frame {
    Node* node = nullptr;
    const std::string* name = nullptr;  ///< key in the parent's map
    double wall0 = 0.0;
    double cpu0 = 0.0;
    std::uint64_t bytes0 = 0;
    std::uint64_t allocs0 = 0;
  };

  /// The node new spans nest under: innermost open span, else root.
  Node* current() {
    return stack_.empty() ? &root_ : stack_.back().node;
  }
  void open_span(std::string_view name);
  void close_span();
  static void merge_node(Node& into, const ProfileNode& from);
  static void copy_node(const Node& from, std::string_view name,
                        ProfileNode& out);

  Node root_;
  std::vector<Frame> stack_;
  std::vector<ProfileInterval> intervals_;
  std::uint64_t intervals_dropped_ = 0;
  bool record_intervals_ = true;
  Stopwatch epoch_;
};

using ProfileSpan = Profiler::Span;

/// Profiler helper mirroring metrics_of/wants_events (events.hpp): the
/// attached profiler, or null.
[[nodiscard]] Profiler* profiler_of(const ObsContext* obs);

// Span convenience macro: opens an RAII span on the context's profiler
// (no-op when obs or its profiler is null). Usable once per line.
#define LOCMPS_SPAN_CAT2(a, b) a##b
#define LOCMPS_SPAN_CAT(a, b) LOCMPS_SPAN_CAT2(a, b)
#define LOCMPS_SPAN(obs_ctx, name)                              \
  ::locmps::obs::ProfileSpan LOCMPS_SPAN_CAT(locmps_span_,      \
                                             __LINE__)(         \
      ::locmps::obs::profiler_of(obs_ctx), (name))

}  // namespace locmps::obs
