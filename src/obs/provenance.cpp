#include "obs/provenance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace locmps::obs {

namespace {

/// Same-instant tolerance, mirroring the scheduler's (locbs.cpp).
bool about(double a, double b) {
  return std::fabs(a - b) <= 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// Exact round-trip rendering: 17 significant digits reproduce the bits.
void put_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

double take_double(const std::string& s, std::size_t& pos, char sep) {
  const std::size_t end = s.find(sep, pos);
  if (end == std::string::npos)
    throw std::runtime_error("provenance: truncated candidate encoding");
  const double v = std::strtod(s.c_str() + pos, nullptr);
  pos = end + 1;
  return v;
}

}  // namespace

bool ProvCandidate::same_slot(const ProvCandidate& o) const {
  return subset == o.subset && procs == o.procs && about(start, o.start);
}

void ShortlistRecorder::offer(ProvCandidate c) {
  for (const ProvCandidate& e : entries_)
    if (e.same_slot(c)) return;  // rescored at a later probe instant
  // Stable insertion by finish: among equal finishes the earlier-scored
  // candidate keeps the lower index (deterministic at any thread count —
  // the scan order itself is deterministic).
  auto it = entries_.begin();
  while (it != entries_.end() && !(c.finish < it->finish)) ++it;
  entries_.insert(it, std::move(c));
  if (entries_.size() > kMaxCandidates) entries_.pop_back();
}

std::size_t ShortlistRecorder::ensure(const ProvCandidate& c) {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].same_slot(c)) return i;
  if (entries_.size() >= kMaxCandidates) entries_.pop_back();
  auto it = entries_.begin();
  while (it != entries_.end() && !(c.finish < it->finish)) ++it;
  it = entries_.insert(it, c);
  return static_cast<std::size_t>(it - entries_.begin());
}

std::string procs_csv(const std::vector<ProcId>& procs) {
  std::string out;
  for (ProcId q : procs) {
    if (!out.empty()) out += ',';
    out += std::to_string(q);
  }
  return out;
}

std::vector<ProcId> parse_procs_csv(const std::string& csv) {
  std::vector<ProcId> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(csv.c_str() + pos, &end, 10);
    if (end == csv.c_str() + pos)
      throw std::runtime_error("provenance: malformed processor list '" +
                               csv + "'");
    out.push_back(static_cast<ProcId>(v));
    pos = static_cast<std::size_t>(end - csv.c_str());
    if (pos < csv.size()) {
      if (csv[pos] != ',')
        throw std::runtime_error("provenance: malformed processor list '" +
                                 csv + "'");
      ++pos;
    }
  }
  return out;
}

std::string encode_candidates(const std::vector<ProvCandidate>& cands) {
  std::string out;
  for (const ProvCandidate& c : cands) {
    if (!out.empty()) out += '|';
    put_double(out, c.tau);
    out += ';';
    out += std::to_string(c.subset);
    out += ';';
    put_double(out, c.start);
    out += ';';
    put_double(out, c.finish);
    out += ';';
    put_double(out, c.busy_from);
    out += ';';
    put_double(out, c.remote_bytes);
    out += ';';
    put_double(out, c.locality_score);
    out += ';';
    bool first = true;
    for (ProcId q : c.procs) {
      if (!first) out += '.';
      first = false;
      out += std::to_string(q);
    }
  }
  return out;
}

std::vector<ProvCandidate> decode_candidates(const std::string& enc) {
  std::vector<ProvCandidate> out;
  std::size_t pos = 0;
  while (pos < enc.size()) {
    std::size_t end = enc.find('|', pos);
    if (end == std::string::npos) end = enc.size();
    const std::string group = enc.substr(pos, end - pos);
    pos = end + 1;
    ProvCandidate c;
    std::size_t gp = 0;
    c.tau = take_double(group, gp, ';');
    {
      const std::size_t se = group.find(';', gp);
      if (se == std::string::npos)
        throw std::runtime_error("provenance: truncated candidate encoding");
      c.subset = std::atoi(group.c_str() + gp);
      gp = se + 1;
    }
    c.start = take_double(group, gp, ';');
    c.finish = take_double(group, gp, ';');
    c.busy_from = take_double(group, gp, ';');
    c.remote_bytes = take_double(group, gp, ';');
    c.locality_score = take_double(group, gp, ';');
    // Remainder: '.'-separated processor ids.
    while (gp < group.size()) {
      char* pe = nullptr;
      const unsigned long v = std::strtoul(group.c_str() + gp, &pe, 10);
      if (pe == group.c_str() + gp)
        throw std::runtime_error(
            "provenance: malformed candidate processor list");
      c.procs.push_back(static_cast<ProcId>(v));
      gp = static_cast<std::size_t>(pe - group.c_str());
      if (gp < group.size()) {
        if (group[gp] != '.')
          throw std::runtime_error(
              "provenance: malformed candidate processor list");
        ++gp;
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

Event decision_event(const PlacementDecision& d) {
  return Event("locbs.decision")
      .with("task", d.task)
      .with("np", static_cast<std::uint64_t>(d.np))
      .with("prio", d.prio)
      .with("est", d.est)
      .with("start", d.start)
      .with("finish", d.finish)
      .with("busy_from", d.busy_from)
      .with("backfill_branch", d.backfill_branch)
      .with("locality_branch", d.locality_branch)
      .with("comm_blind", d.comm_blind)
      .with("backfilled", d.backfilled)
      .with("pruned", d.pruned)
      .with("perturbed", d.perturbed)
      .with("holes_probed", d.holes_probed)
      .with("cands_scored", d.candidates_scored)
      .with("winner", static_cast<std::uint64_t>(d.winner))
      .with("margin", d.margin)
      .with("local_bytes", d.local_bytes)
      .with("remote_bytes", d.remote_bytes)
      .with("cands", encode_candidates(d.shortlist));
}

bool decision_from_record(const TraceRecord& rec, PlacementDecision& out) {
  if (rec.ev != "locbs.decision") return false;
  out = PlacementDecision{};
  const double traw = rec.num("task", -1.0);
  if (traw < 0.0)
    throw std::runtime_error("provenance: locbs.decision without task");
  out.task = static_cast<TaskId>(traw);
  out.np = static_cast<std::size_t>(rec.num("np"));
  out.prio = rec.num("prio");
  out.est = rec.num("est");
  out.start = rec.num("start");
  out.finish = rec.num("finish");
  out.busy_from = rec.num("busy_from");
  out.backfill_branch = rec.flag("backfill_branch");
  out.locality_branch = rec.flag("locality_branch");
  out.comm_blind = rec.flag("comm_blind");
  out.backfilled = rec.flag("backfilled");
  out.pruned = rec.flag("pruned");
  out.perturbed = rec.flag("perturbed");
  out.holes_probed = static_cast<std::uint64_t>(rec.num("holes_probed"));
  out.candidates_scored =
      static_cast<std::uint64_t>(rec.num("cands_scored"));
  out.winner = static_cast<std::size_t>(rec.num("winner"));
  out.margin = rec.num("margin", -1.0);
  out.local_bytes = rec.num("local_bytes");
  out.remote_bytes = rec.num("remote_bytes");
  if (const std::string* enc = rec.str("cands"))
    out.shortlist = decode_candidates(*enc);
  if (out.winner >= out.shortlist.size())
    throw std::runtime_error(
        "provenance: locbs.decision winner outside its shortlist");
  return true;
}

std::vector<PlacementDecision> final_decisions(
    const std::vector<TraceRecord>& records, std::size_t num_tasks) {
  std::vector<PlacementDecision> out(num_tasks);
  PlacementDecision d;
  for (const TraceRecord& rec : records) {
    if (!decision_from_record(rec, d)) continue;
    if (d.task < num_tasks) out[d.task] = std::move(d);
  }
  return out;
}

std::string decision_brief(const PlacementDecision& d) {
  std::ostringstream os;
  os << "np=" << d.np << " on {" << procs_csv(
            d.winner < d.shortlist.size() ? d.shortlist[d.winner].procs
                                          : std::vector<ProcId>{})
     << "} [" << fmt(d.start, 4) << ", " << fmt(d.finish, 4) << ")s via ";
  switch (d.winner < d.shortlist.size() ? d.shortlist[d.winner].subset : 1) {
    case 0: os << "locality"; break;
    case 2: os << "shadow"; break;
    default: os << "horizon"; break;
  }
  os << " subset";
  if (d.margin >= 0.0)
    os << ", margin " << fmt(d.margin, 4) << " s over runner-up";
  else
    os << ", no distinct alternative";
  if (d.backfilled) os << ", backfilled";
  if (d.perturbed) os << ", PERTURBED";
  return os.str();
}

void print_decision(std::ostream& os, const TaskGraph& g,
                    const PlacementDecision& d) {
  if (!d.valid()) {
    os << "no decision record (task never placed by LoCBS under an "
          "attached trace)\n";
    return;
  }
  os << "task " << d.task;
  if (d.task < g.num_tasks()) os << " (" << g.task(d.task).name << ")";
  os << ": " << decision_brief(d) << "\n";
  os << "  branches: backfill=" << (d.backfill_branch ? "on" : "off")
     << " locality=" << (d.locality_branch ? "on" : "off")
     << " comm_blind=" << (d.comm_blind ? "on" : "off") << "; ready at "
     << fmt(d.est, 4) << " s, priority " << fmt(d.prio, 4) << "\n";
  os << "  scan: " << d.holes_probed << " hole(s) probed, "
     << d.candidates_scored << " feasible candidate(s) scored"
     << (d.pruned ? ", cut off by the finish lower bound" : "") << "\n";
  os << "  realized input: " << fmt(d.local_bytes / 1e6, 3)
     << " MB local, " << fmt(d.remote_bytes / 1e6, 3) << " MB remote\n";
  os << "  shortlist (ascending finish; * = committed):\n";
  for (std::size_t i = 0; i < d.shortlist.size(); ++i) {
    const ProvCandidate& c = d.shortlist[i];
    os << "  " << (i == d.winner ? '*' : ' ') << " [" << i << "] "
       << (c.subset == 0   ? "locality"
           : c.subset == 2 ? "shadow  "
                           : "horizon ")
       << " tau=" << fmt(c.tau, 4) << " start=" << fmt(c.start, 4)
       << " finish=" << fmt(c.finish, 4) << " remote="
       << fmt(c.remote_bytes / 1e6, 3) << "MB resident="
       << fmt(c.locality_score / 1e6, 3) << "MB procs={"
       << procs_csv(c.procs) << "}\n";
  }
}

}  // namespace locmps::obs
