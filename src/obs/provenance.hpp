#pragma once
/// \file provenance.hpp
/// Decision provenance for LoCBS placements: *why* a task landed where it
/// did. Every placement commits one "locbs.decision" event carrying the
/// candidate (processor set, start slot) shortlist LoCBS actually scored —
/// per candidate the probe instant, start/finish, remote redistribution
/// volume and resident-input locality score — plus the winner, the margin
/// over the distinct runner-up, and the branch switches (backfill /
/// locality / comm-blind) in force. The record flows through the ordinary
/// event path (EventBuffer on speculative probes, JSONL sink on the
/// session), so the candidate-order replay of docs/parallelism.md makes
/// the stream bit-identical at every thread count for free.
///
/// This header owns the record schema: the structs, the compact candidate
/// encoding used for the single-line JSONL field, the TraceRecord
/// round-trip, and the pretty-printers behind `locmps-inspect --explain`
/// and the report's "Why" panel. The differential attribution engine that
/// consumes these records lives in obs/rundiff.hpp.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "obs/analysis.hpp"
#include "obs/events.hpp"

namespace locmps::obs {

/// One scored (processor set, start slot) candidate of a placement.
struct ProvCandidate {
  double tau = 0.0;       ///< probe instant (hole start) that produced it
  /// 0 = locality-first, 1 = horizon-first, 2 = shadow (the anti-locality
  /// counterfactual, scored for the record and the perturb hook but never
  /// eligible to win).
  int subset = -1;
  double start = 0.0;
  double finish = 0.0;
  double busy_from = 0.0;
  /// Redistribution volume that would cross the network onto this subset.
  double remote_bytes = 0.0;
  /// Input bytes already resident on the subset (locality benefit).
  double locality_score = 0.0;
  std::vector<ProcId> procs;  ///< ascending

  bool same_slot(const ProvCandidate& o) const;
};

/// Bounded shortlist of the best candidates scored for one placement,
/// kept sorted ascending by finish (stable in scoring order on ties).
/// Duplicate (procs, start, subset) slots scored at later probe instants
/// are folded into their first occurrence.
class ShortlistRecorder {
 public:
  /// Retention bound: enough to show the winner, the runner-up and the
  /// next few alternatives without bloating the trace line.
  static constexpr std::size_t kMaxCandidates = 6;

  void clear() { entries_.clear(); }
  void offer(ProvCandidate c);

  /// Index of \p c in the shortlist, inserting it (evicting the worst
  /// non-matching entry if full) when the scan's better-finish candidates
  /// crowded it out. The committed winner is thereby always present.
  std::size_t ensure(const ProvCandidate& c);

  const std::vector<ProvCandidate>& entries() const { return entries_; }

 private:
  std::vector<ProvCandidate> entries_;
};

/// The complete provenance of one committed placement.
struct PlacementDecision {
  TaskId task = kNoTask;
  std::size_t np = 0;
  double prio = 0.0;  ///< static list priority (Alg. 2 step 4)
  double est = 0.0;   ///< ready time (latest predecessor finish)
  double start = 0.0;
  double finish = 0.0;
  double busy_from = 0.0;
  bool backfill_branch = true;   ///< LocBSOptions::backfill in force
  bool locality_branch = true;   ///< LocBSOptions::locality in force
  bool comm_blind = false;       ///< LocBSOptions::comm_blind in force
  bool backfilled = false;       ///< realized: acquired before chart end
  bool pruned = false;           ///< hole scan cut off by the lower bound
  bool perturbed = false;        ///< runner-up forced (perturb_task hook)
  std::uint64_t holes_probed = 0;
  std::uint64_t candidates_scored = 0;  ///< feasible candidates considered
  std::size_t winner = 0;     ///< index of the committed candidate
  /// Finish-time margin of the distinct runner-up over the winner
  /// (< 0: the scan produced no distinct alternative).
  double margin = -1.0;
  double local_bytes = 0.0;   ///< realized input bytes that stayed local
  double remote_bytes = 0.0;  ///< realized input bytes over the network
  std::vector<ProvCandidate> shortlist;  ///< ascending finish

  bool valid() const { return task != kNoTask; }
};

/// Compact single-field encoding of a candidate shortlist. Format, one
/// candidate per '|'-separated group, fields ';'-separated, processor ids
/// '.'-separated, doubles printed with %.17g (exact round trip):
///   tau;subset;start;finish;busy_from;remote_bytes;locality_score;p0.p1
std::string encode_candidates(const std::vector<ProvCandidate>& cands);

/// Inverse of encode_candidates. Throws std::runtime_error on a
/// malformed encoding.
std::vector<ProvCandidate> decode_candidates(const std::string& enc);

/// Renders \p d as the "locbs.decision" event emitted at commit time.
Event decision_event(const PlacementDecision& d);

/// Parses one trace line back into a decision. Returns false when \p rec
/// is not a "locbs.decision" record; throws std::runtime_error when it is
/// one but malformed.
bool decision_from_record(const TraceRecord& rec, PlacementDecision& out);

/// The final decision per task: the last "locbs.decision" record each
/// task received (LoC-MPS re-realizes allocations, so earlier passes are
/// superseded). Tasks without a record stay invalid (task == kNoTask).
std::vector<PlacementDecision> final_decisions(
    const std::vector<TraceRecord>& records, std::size_t num_tasks);

/// Multi-line human explanation of one decision: the committed slot, the
/// branches in force, the margin, and the scored shortlist as a table.
void print_decision(std::ostream& os, const TaskGraph& g,
                    const PlacementDecision& d);

/// One-line digest for critical-path walks and log output.
std::string decision_brief(const PlacementDecision& d);

/// Comma-joined processor list ("0,3,7"), the trace's procs encoding.
std::string procs_csv(const std::vector<ProcId>& procs);

/// Inverse of procs_csv; throws std::runtime_error on malformed input.
std::vector<ProcId> parse_procs_csv(const std::string& csv);

}  // namespace locmps::obs
