#include "obs/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/table.hpp"

namespace locmps::obs {

std::string xml_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

std::string mb(double bytes) { return fmt(bytes / 1e6, 2) + " MB"; }

std::string pct(double fraction) { return fmt(100.0 * fraction, 1) + "%"; }

/// Locality class of a task's *incoming* data (colors the Gantt slice).
enum class TaskLoc { None, Local, Partial, Remote };

const char* loc_class(TaskLoc l) {
  switch (l) {
    case TaskLoc::None: return "loc-none";
    case TaskLoc::Local: return "loc-local";
    case TaskLoc::Partial: return "loc-partial";
    case TaskLoc::Remote: return "loc-remote";
  }
  return "loc-none";
}

std::vector<TaskLoc> task_localities(const TaskGraph& g,
                                     const ScheduleAnalysis& a) {
  std::vector<TaskLoc> loc(g.num_tasks(), TaskLoc::None);
  for (TaskId t : g.task_ids()) {
    double vol = 0.0, remote = 0.0;
    for (EdgeId e : g.in_edges(t)) {
      vol += a.edges[e].volume_bytes;
      remote += a.edges[e].remote_bytes;
    }
    if (vol <= 0.0)
      loc[t] = TaskLoc::None;
    else if (remote <= 0.0)
      loc[t] = TaskLoc::Local;
    else if (remote >= vol)
      loc[t] = TaskLoc::Remote;
    else
      loc[t] = TaskLoc::Partial;
  }
  return loc;
}

/// The stylesheet: palette roles as CSS custom properties (light values
/// with a dark-scheme override), so marks are written against roles.
/// Locality uses a one-hue ordinal blue ramp (local -> remote = light ->
/// dark); critical-path segments use categorical slots 1-2 plus a neutral.
const char kStyle[] = R"css(
  :root { color-scheme: light dark; }
  body {
    --page: #f9f9f7; --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
    --muted: #898781; --grid: #e1e0d9; --axis: #c3c2b7;
    --border: rgba(11,11,11,0.10);
    --loc-none: #e1e0d9; --loc-local: #86b6ef; --loc-partial: #2a78d6;
    --loc-remote: #104281;
    --cp-compute: #2a78d6; --cp-redist: #eb6834; --cp-wait: #e1e0d9;
    --bar: #2a78d6; --fault: #c0392b; --slow: #c98f00;
    margin: 0; padding: 24px; background: var(--page); color: var(--ink);
    font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  @media (prefers-color-scheme: dark) {
    body {
      --page: #0d0d0d; --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
      --muted: #898781; --grid: #2c2c2a; --axis: #383835;
      --border: rgba(255,255,255,0.10);
      --loc-none: #2c2c2a; --loc-local: #6da7ec; --loc-partial: #2a78d6;
      --loc-remote: #184f95;
      --cp-compute: #3987e5; --cp-redist: #d95926; --cp-wait: #2c2c2a;
      --bar: #3987e5; --fault: #e05a4b; --slow: #e0ac2e;
    }
  }
  h1 { font-size: 20px; margin: 0 0 4px 0; }
  h2 { font-size: 15px; margin: 28px 0 8px 0; }
  .subtitle { color: var(--ink-2); margin: 0 0 20px 0; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
  .tile { background: var(--surface); border: 1px solid var(--border);
          border-radius: 8px; padding: 10px 14px; min-width: 120px; }
  .tile .v { font-size: 22px; font-weight: 600; }
  .tile .l { color: var(--ink-2); font-size: 12px; }
  .panel { background: var(--surface); border: 1px solid var(--border);
           border-radius: 8px; padding: 12px; overflow-x: auto; }
  table { border-collapse: collapse; font-variant-numeric: tabular-nums; }
  th { text-align: left; color: var(--ink-2); font-weight: 500;
       border-bottom: 1px solid var(--axis); padding: 3px 12px 3px 0; }
  td { border-bottom: 1px solid var(--grid); padding: 3px 12px 3px 0; }
  td.num, th.num { text-align: right; }
  .bar-cell { width: 180px; }
  .hbar { background: var(--bar); height: 10px; border-radius: 0 4px 4px 0; }
  .legend { display: flex; gap: 16px; margin: 8px 0; color: var(--ink-2);
            font-size: 12px; flex-wrap: wrap; }
  .legend .sw { display: inline-block; width: 12px; height: 12px;
                border-radius: 3px; vertical-align: -2px; margin-right: 5px;
                border: 1px solid var(--border); }
  .cp-bar { display: flex; height: 18px; margin: 8px 0; }
  .cp-bar .seg { height: 18px; }
  .cp-bar .seg.mid { margin-left: 2px; }
  .loc-none { fill: var(--loc-none); }
  .loc-local { fill: var(--loc-local); }
  .loc-partial { fill: var(--loc-partial); }
  .loc-remote { fill: var(--loc-remote); }
  .recv { opacity: 0.35; }
  .fault { fill: var(--fault); opacity: 0.28; }
  .slow { fill: var(--slow); opacity: 0.30; }
  .gantt-grid { stroke: var(--grid); stroke-width: 1; }
  .gantt-label { fill: var(--muted); font-size: 10px;
                 font-family: system-ui, sans-serif; }
  .footer { color: var(--muted); font-size: 12px; margin-top: 28px; }
)css";

void tile(std::ostream& os, const std::string& value,
          const std::string& label) {
  os << "<div class=\"tile\"><div class=\"v\">" << value
     << "</div><div class=\"l\">" << label << "</div></div>\n";
}

void swatch(std::ostream& os, const char* color_var, const std::string& label) {
  os << "<span><span class=\"sw\" style=\"background:var(--" << color_var
     << ")\"></span>" << label << "</span>";
}

void render_gantt(std::ostream& os, const TaskGraph& g, const Schedule& s,
                  const ScheduleAnalysis& a, const ReportOptions& opt) {
  const std::size_t P = a.num_procs;
  const double horizon = a.makespan > 0.0 ? a.makespan : 1.0;
  const double gutter = 56.0;
  const double width = static_cast<double>(opt.gantt_width);
  const double row_h = 14.0, row_gap = 4.0;
  const double plot_h = static_cast<double>(P) * (row_h + row_gap);
  const double axis_h = 22.0;
  const double scale = width / horizon;
  const auto loc = task_localities(g, a);

  os << "<svg role=\"img\" width=\"" << fmt(gutter + width + 12, 0)
     << "\" height=\"" << fmt(plot_h + axis_h, 0) << "\" viewBox=\"0 0 "
     << fmt(gutter + width + 12, 0) << " " << fmt(plot_h + axis_h, 0)
     << "\" xmlns=\"http://www.w3.org/2000/svg\">\n";
  os << "<title>Gantt chart: one row per processor, slices colored by the "
        "locality class of each task&apos;s incoming data</title>\n";

  // Recessive time grid: 6 ticks over [0, makespan].
  const int ticks = 6;
  for (int i = 0; i <= ticks; ++i) {
    const double t = horizon * static_cast<double>(i) / ticks;
    const double x = gutter + t * scale;
    os << "<line class=\"gantt-grid\" x1=\"" << fmt(x, 1) << "\" y1=\"0\" x2=\""
       << fmt(x, 1) << "\" y2=\"" << fmt(plot_h, 1) << "\"></line>\n";
    os << "<text class=\"gantt-label\" x=\"" << fmt(x, 1) << "\" y=\""
       << fmt(plot_h + 14, 1) << "\" text-anchor=\"middle\">" << fmt(t, 1)
       << "s</text>\n";
  }
  for (ProcId q = 0; q < P; ++q) {
    const double y = static_cast<double>(q) * (row_h + row_gap);
    os << "<text class=\"gantt-label\" x=\"" << fmt(gutter - 6, 1) << "\" y=\""
       << fmt(y + row_h - 3, 1) << "\" text-anchor=\"end\">p" << q
       << "</text>\n";
  }

  for (TaskId t : g.task_ids()) {
    const Placement& p = s.at(t);
    const char* cls = loc_class(loc[t]);
    std::ostringstream tip;
    tip << g.task(t).name << " np=" << p.np() << " [" << fmt(p.start, 3)
        << ", " << fmt(p.finish, 3) << ")s";
    if (p.busy_from < p.start)
      tip << " recv from " << fmt(p.busy_from, 3) << "s";
    // With decision records attached, every slice links down to its
    // task's entry in the "Why" panel.
    const bool link = opt.decisions != nullptr &&
                      t < opt.decisions->size() &&
                      (*opt.decisions)[t].valid();
    if (link) {
      tip << " — click for the placement decision";
      os << "<a href=\"#why-t" << t << "\">\n";
    }
    const std::string title = xml_escape(tip.str());
    p.procs.for_each([&](ProcId q) {
      const double y = static_cast<double>(q) * (row_h + row_gap);
      if (p.busy_from < p.start) {
        const double rx = gutter + p.busy_from * scale;
        const double rw =
            std::max(0.5, (p.start - p.busy_from) * scale);
        os << "<rect class=\"" << cls << " recv\" x=\"" << fmt(rx, 2)
           << "\" y=\"" << fmt(y, 1) << "\" width=\"" << fmt(rw, 2)
           << "\" height=\"" << fmt(row_h, 1) << "\"><title>" << title
           << "</title></rect>\n";
      }
      const double x = gutter + p.start * scale;
      const double w = std::max(0.5, (p.finish - p.start) * scale);
      os << "<rect class=\"" << cls << "\" rx=\"2\" x=\"" << fmt(x, 2)
         << "\" y=\"" << fmt(y, 1) << "\" width=\"" << fmt(w, 2)
         << "\" height=\"" << fmt(row_h, 1) << "\"><title>" << title
         << "</title></rect>\n";
    });
    if (link) os << "</a>\n";
  }

  // Fault lane: each fail-stop window shades its processor row from the
  // onset to the repair (or the end of the chart when never repaired).
  for (const FaultWindow& fw : a.fault_windows) {
    if (fw.proc >= P || fw.fail_s >= horizon) continue;
    const double end_t =
        fw.repair_s >= 0.0 ? std::min(fw.repair_s, horizon) : horizon;
    const double y = static_cast<double>(fw.proc) * (row_h + row_gap);
    const double x = gutter + fw.fail_s * scale;
    const double w = std::max(0.5, (end_t - fw.fail_s) * scale);
    std::ostringstream tip;
    tip << "p" << fw.proc << " failed at " << fmt(fw.fail_s, 3) << "s";
    if (fw.repair_s >= 0.0)
      tip << ", repaired at " << fmt(fw.repair_s, 3) << "s";
    else
      tip << ", never repaired";
    os << "<rect class=\"fault\" x=\"" << fmt(x, 2) << "\" y=\"" << fmt(y, 1)
       << "\" width=\"" << fmt(w, 2) << "\" height=\"" << fmt(row_h, 1)
       << "\"><title>" << xml_escape(tip.str()) << "</title></rect>\n";
  }

  // Straggler lane: each slowdown window shades its processor row like a
  // fault window, but in the slowdown hue — the processor kept running,
  // just slower by the given factor.
  for (const SlowdownWindow& sw : a.slowdown_windows) {
    if (sw.proc >= P || sw.begin_s >= horizon) continue;
    const double end_t = std::min(sw.end_s, horizon);
    const double y = static_cast<double>(sw.proc) * (row_h + row_gap);
    const double x = gutter + sw.begin_s * scale;
    const double w = std::max(0.5, (end_t - sw.begin_s) * scale);
    std::ostringstream tip;
    tip << "p" << sw.proc << " slowed " << fmt(sw.factor, 2) << "x over ["
        << fmt(sw.begin_s, 3) << ", " << fmt(sw.end_s, 3) << ")s";
    os << "<rect class=\"slow\" x=\"" << fmt(x, 2) << "\" y=\"" << fmt(y, 1)
       << "\" width=\"" << fmt(w, 2) << "\" height=\"" << fmt(row_h, 1)
       << "\"><title>" << xml_escape(tip.str()) << "</title></rect>\n";
  }
  os << "</svg>\n";
}

void render_faults(std::ostream& os, const ScheduleAnalysis& a) {
  const FaultStats& fs = a.faults;
  os << "<div class=\"panel\"><table>\n"
     << "<tr><th>fault accounting</th><th class=\"num\">value</th></tr>\n"
     << "<tr><td>failures injected</td><td class=\"num\">"
     << fmt(fs.injected, 0) << "</td></tr>\n"
     << "<tr><td>failures observed</td><td class=\"num\">"
     << fmt(fs.procs_failed, 0) << "</td></tr>\n"
     << "<tr><td>task kills</td><td class=\"num\">" << fmt(fs.kills, 0)
     << "</td></tr>\n"
     << "<tr><td>transfer timeouts</td><td class=\"num\">"
     << fmt(fs.transfer_timeouts, 0) << "</td></tr>\n"
     << "<tr><td>wasted proc-seconds</td><td class=\"num\">"
     << fmt(fs.wasted_proc_seconds, 3) << "</td></tr>\n"
     << "<tr><td>retries</td><td class=\"num\">" << fmt(fs.retries, 0)
     << "</td></tr>\n"
     << "<tr><td>backoff charged (s)</td><td class=\"num\">"
     << fmt(fs.backoff_seconds, 3) << "</td></tr>\n"
     << "<tr><td>degraded replans</td><td class=\"num\">"
     << fmt(fs.replans, 0) << "</td></tr>\n"
     << "<tr><td>processors masked</td><td class=\"num\">"
     << fmt(fs.masked_procs, 0) << "</td></tr>\n"
     << "<tr><td>recovery rounds</td><td class=\"num\">" << fmt(fs.rounds, 0)
     << "</td></tr>\n</table>\n";
  if (!a.fault_windows.empty()) {
    os << "<table>\n<tr><th>proc</th><th class=\"num\">failed (s)</th>"
          "<th class=\"num\">repaired (s)</th></tr>\n";
    for (const FaultWindow& fw : a.fault_windows) {
      os << "<tr><td>p" << fw.proc << "</td><td class=\"num\">"
         << fmt(fw.fail_s, 3) << "</td><td class=\"num\">"
         << (fw.repair_s >= 0.0 ? fmt(fw.repair_s, 3)
                                : std::string("&#8212;"))
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }
  os << "</div>\n";
}

/// Robustness panel: perturbation exposure, straggler mitigation
/// accounting, and the Monte-Carlo makespan distribution (when scored).
void render_robustness(std::ostream& os, const ScheduleAnalysis& a) {
  os << "<div class=\"panel\">";
  if (a.perturb.present) {
    os << "<table>\n"
       << "<tr><th>perturbation exposure</th><th class=\"num\">value</th>"
          "</tr>\n"
       << "<tr><td>tasks slowed</td><td class=\"num\">"
       << fmt(a.perturb.slowed_tasks, 0) << "</td></tr>\n"
       << "<tr><td>compute stretch (s)</td><td class=\"num\">"
       << fmt(a.perturb.stretch_seconds, 3) << "</td></tr>\n"
       << "<tr><td>transfers degraded</td><td class=\"num\">"
       << fmt(a.perturb.degraded_transfers, 0) << "</td></tr>\n"
       << "<tr><td>link delay (s)</td><td class=\"num\">"
       << fmt(a.perturb.link_delay_seconds, 3) << "</td></tr>\n</table>\n";
  }
  if (a.mitigation.present) {
    os << "<table>\n"
       << "<tr><th>straggler mitigation</th><th class=\"num\">value</th>"
          "</tr>\n"
       << "<tr><td>stragglers detected</td><td class=\"num\">"
       << fmt(a.mitigation.stragglers, 0) << "</td></tr>\n"
       << "<tr><td>speculative copies</td><td class=\"num\">"
       << fmt(a.mitigation.speculations, 0) << "</td></tr>\n"
       << "<tr><td>copy wins / losses</td><td class=\"num\">"
       << fmt(a.mitigation.spec_wins, 0) << " / "
       << fmt(a.mitigation.spec_losses, 0) << "</td></tr>\n"
       << "<tr><td>degraded replans</td><td class=\"num\">"
       << fmt(a.mitigation.replans, 0) << "</td></tr>\n"
       << "<tr><td>mitigation waste (proc-s)</td><td class=\"num\">"
       << fmt(a.mitigation.wasted_seconds, 3) << "</td></tr>\n</table>\n";
  }
  if (a.robustness.samples > 0) {
    const RobustnessSummary& r = a.robustness;
    os << "<table>\n"
       << "<tr><th>makespan distribution (" << r.samples
       << " perturbed samples)</th><th class=\"num\">seconds</th></tr>\n"
       << "<tr><td>nominal (unperturbed)</td><td class=\"num\">"
       << fmt(r.nominal, 3) << "</td></tr>\n"
       << "<tr><td>mean</td><td class=\"num\">" << fmt(r.mean, 3)
       << "</td></tr>\n"
       << "<tr><td>median [CI]</td><td class=\"num\">" << fmt(r.median, 3)
       << " [" << fmt(r.median_lo, 3) << ", " << fmt(r.median_hi, 3)
       << "]</td></tr>\n"
       << "<tr><td>p95</td><td class=\"num\">" << fmt(r.p95, 3)
       << "</td></tr>\n"
       << "<tr><td>worst</td><td class=\"num\">" << fmt(r.worst, 3)
       << "</td></tr>\n"
       << "<tr><td>p95 / nominal</td><td class=\"num\">"
       << fmt(r.p95_over_nominal, 3) << "x</td></tr>\n</table>\n";
  }
  if (!a.slowdown_windows.empty()) {
    os << "<table>\n<tr><th>proc</th><th class=\"num\">slowed from (s)</th>"
          "<th class=\"num\">until (s)</th><th class=\"num\">factor</th>"
          "</tr>\n";
    for (const SlowdownWindow& sw : a.slowdown_windows) {
      os << "<tr><td>p" << sw.proc << "</td><td class=\"num\">"
         << fmt(sw.begin_s, 3) << "</td><td class=\"num\">"
         << fmt(sw.end_s, 3) << "</td><td class=\"num\">"
         << fmt(sw.factor, 2) << "x</td></tr>\n";
    }
    os << "</table>\n";
  }
  os << "</div>\n";
}

void render_utilization(std::ostream& os, const ScheduleAnalysis& a) {
  os << "<div class=\"panel\"><table>\n"
     << "<tr><th>proc</th><th class=\"num\">busy (s)</th>"
        "<th class=\"num\">idle (s)</th><th class=\"num\">tasks</th>"
        "<th class=\"num\">holes</th><th class=\"num\">util</th>"
        "<th class=\"bar-cell\"></th></tr>\n";
  for (const ProcUtilization& u : a.procs) {
    os << "<tr><td>p" << u.proc << "</td><td class=\"num\">"
       << fmt(u.busy_s, 2) << "</td><td class=\"num\">" << fmt(u.idle_s, 2)
       << "</td><td class=\"num\">" << u.tasks << "</td><td class=\"num\">"
       << u.holes << "</td><td class=\"num\">" << pct(u.utilization)
       << "</td><td class=\"bar-cell\"><div class=\"hbar\" style=\"width:"
       << fmt(100.0 * u.utilization, 1) << "%\"></div></td></tr>\n";
  }
  os << "</table></div>\n";
}

void render_holes(std::ostream& os, const ScheduleAnalysis& a) {
  const HoleHistogram& h = a.holes;
  if (h.total_holes == 0) {
    os << "<p class=\"subtitle\">No idle holes: the timeline is fully "
          "packed.</p>\n";
    return;
  }
  std::size_t max_count = 1;
  for (std::size_t c : h.counts) max_count = std::max(max_count, c);
  os << "<div class=\"panel\"><table>\n"
     << "<tr><th>hole duration (s)</th><th class=\"num\">count</th>"
        "<th class=\"bar-cell\"></th></tr>\n";
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    os << "<tr><td>" << fmt(h.bin_edges[i], 2) << " &#8211; "
       << fmt(h.bin_edges[i + 1], 2) << "</td><td class=\"num\">"
       << h.counts[i] << "</td><td class=\"bar-cell\"><div class=\"hbar\" "
          "style=\"width:"
       << fmt(100.0 * static_cast<double>(h.counts[i]) /
                  static_cast<double>(max_count),
              1)
       << "%\"></div></td></tr>\n";
  }
  os << "</table></div>\n";
}

void render_locality(std::ostream& os, const TaskGraph& g,
                     const ScheduleAnalysis& a) {
  const LocalityTotals& lt = a.locality;
  os << "<div class=\"panel\"><table>\n"
     << "<tr><th>aggregate</th><th class=\"num\">bytes</th>"
        "<th class=\"num\">share</th></tr>\n"
     << "<tr><td>total on edges</td><td class=\"num\" id=\"agg-total-bytes\">"
     << fmt(lt.total_bytes, 1) << "</td><td class=\"num\">100%</td></tr>\n"
     << "<tr><td>stayed local</td><td class=\"num\" id=\"agg-local-bytes\">"
     << fmt(lt.local_bytes, 1) << "</td><td class=\"num\">"
     << pct(lt.total_bytes > 0 ? lt.local_bytes / lt.total_bytes : 1.0)
     << "</td></tr>\n"
     << "<tr><td>crossed the network</td>"
        "<td class=\"num\" id=\"agg-remote-bytes\">"
     << fmt(lt.remote_bytes, 1) << "</td><td class=\"num\">"
     << pct(lt.total_bytes > 0 ? lt.remote_bytes / lt.total_bytes : 0.0)
     << "</td></tr>\n</table>\n";
  os << "<p class=\"subtitle\">" << lt.local_edges << " local, "
     << lt.partial_edges << " partial, " << lt.remote_edges << " remote, "
     << lt.empty_edges << " empty edges; "
     << fmt(lt.transfer_seconds, 3)
     << " s of summed remote-transfer time.</p>\n";

  // Top remote edges: where the network traffic actually comes from.
  std::vector<const EdgeLocality*> worst;
  for (const EdgeLocality& el : a.edges)
    if (el.remote_bytes > 0.0) worst.push_back(&el);
  std::sort(worst.begin(), worst.end(),
            [](const EdgeLocality* x, const EdgeLocality* y) {
              return x->remote_bytes > y->remote_bytes;
            });
  if (worst.size() > 10) worst.resize(10);
  if (!worst.empty()) {
    os << "<table>\n<tr><th>edge</th><th class=\"num\">volume</th>"
          "<th class=\"num\">remote</th><th class=\"num\">transfer (s)</th>"
          "</tr>\n";
    for (const EdgeLocality* el : worst) {
      os << "<tr><td>" << xml_escape(g.task(el->src).name) << " &#8594; "
         << xml_escape(g.task(el->dst).name) << "</td><td class=\"num\">"
         << mb(el->volume_bytes) << "</td><td class=\"num\">"
         << mb(el->remote_bytes) << "</td><td class=\"num\">"
         << fmt(el->transfer_s, 4) << "</td></tr>\n";
    }
    os << "</table>\n";
  }
  os << "</div>\n";
}

void render_critical_path(std::ostream& os, const TaskGraph& g,
                          const ScheduleAnalysis& a) {
  const CriticalPathBreakdown& cp = a.critical_path;
  const double total = cp.makespan > 0.0 ? cp.makespan : 1.0;
  os << "<div class=\"panel\">\n<div class=\"cp-bar\">"
     << "<div class=\"seg\" style=\"background:var(--cp-compute);width:"
     << fmt(100.0 * cp.compute_s / total, 2) << "%\"></div>"
     << "<div class=\"seg mid\" style=\"background:var(--cp-redist);width:"
     << fmt(100.0 * cp.redist_s / total, 2) << "%\"></div>"
     << "<div class=\"seg mid\" style=\"background:var(--cp-wait);width:"
     << fmt(100.0 * cp.wait_s / total, 2) << "%\"></div></div>\n";
  os << "<div class=\"legend\">";
  swatch(os, "cp-compute",
         "compute " + fmt(cp.compute_s, 3) + " s (" +
             pct(cp.compute_s / total) + ")");
  swatch(os, "cp-redist",
         "redistribution " + fmt(cp.redist_s, 3) + " s (" +
             pct(cp.redist_s / total) + ")");
  swatch(os, "cp-wait",
         "wait " + fmt(cp.wait_s, 3) + " s (" + pct(cp.wait_s / total) + ")");
  os << "</div>\n";
  os << "<details><summary>critical chain (" << cp.steps.size()
     << " tasks)</summary><table>\n"
        "<tr><th>task</th><th class=\"num\">compute (s)</th>"
        "<th class=\"num\">redist in (s)</th><th class=\"num\">wait in (s)"
        "</th></tr>\n";
  for (const CriticalPathStep& st : cp.steps) {
    os << "<tr><td>" << xml_escape(g.task(st.task).name)
       << "</td><td class=\"num\">" << fmt(st.compute_s, 3)
       << "</td><td class=\"num\">" << fmt(st.redist_s, 3)
       << "</td><td class=\"num\">" << fmt(st.wait_s, 3) << "</td></tr>\n";
  }
  os << "</table></details>\n</div>\n";
}

void render_blame(std::ostream& os, const TaskGraph& g,
                  const ScheduleAnalysis& a, std::size_t top_n) {
  const auto top = a.top_blame(top_n);
  if (top.empty()) {
    os << "<p class=\"subtitle\">No task shows an attributable start "
          "delay.</p>\n";
    return;
  }
  os << "<div class=\"panel\"><table>\n"
     << "<tr><th>task</th><th>blame</th><th>culprit</th>"
        "<th class=\"num\">delay (s)</th><th class=\"num\">start (s)</th>"
        "<th class=\"num\">data ready</th><th class=\"num\">procs ready</th>"
        "</tr>\n";
  for (const TaskBlame& b : top) {
    os << "<tr><td>" << xml_escape(g.task(b.task).name) << "</td><td>"
       << to_string(b.kind) << "</td><td>"
       << (b.culprit != kNoTask ? xml_escape(g.task(b.culprit).name)
                                : std::string("&#8212;"))
       << "</td><td class=\"num\">" << fmt(b.delay_s, 3)
       << "</td><td class=\"num\">" << fmt(b.start, 3)
       << "</td><td class=\"num\">" << fmt(b.data_ready, 3)
       << "</td><td class=\"num\">" << fmt(b.proc_ready, 3) << "</td></tr>\n";
  }
  os << "</table></div>\n";
}

/// One span-tree row per profile node, indented by depth; recursion
/// follows the snapshot's deterministic (name-sorted) child order.
void render_profile_rows(std::ostream& os, const ProfileNode& n, int depth) {
  os << "<tr><td style=\"padding-left:" << 8 + depth * 18 << "px\">"
     << xml_escape(n.name) << "</td><td class=\"num\">" << n.count
     << "</td><td class=\"num\">" << fmt(n.wall_s, 6)
     << "</td><td class=\"num\">" << fmt(n.self_wall_s(), 6)
     << "</td><td class=\"num\">" << fmt(n.cpu_s, 6)
     << "</td><td class=\"num\">" << mb(static_cast<double>(n.alloc_bytes))
     << "</td><td class=\"num\">" << n.allocs << "</td></tr>\n";
  for (const ProfileNode& c : n.children) render_profile_rows(os, c, depth + 1);
}

void render_profile(std::ostream& os, const ProfileSnapshot& snap) {
  double wall = 0.0, cpu = 0.0;
  std::uint64_t bytes = 0;
  for (const ProfileNode& c : snap.root.children) {
    wall += c.wall_s;
    cpu += c.cpu_s;
    bytes += c.alloc_bytes;
  }
  os << "<div class=\"panel\"><table id=\"profile-table\">\n"
     << "<tr><th>span</th><th class=\"num\">count</th>"
     << "<th class=\"num\">total (s)</th><th class=\"num\">self (s)</th>"
     << "<th class=\"num\">cpu (s)</th><th class=\"num\">alloc</th>"
     << "<th class=\"num\">allocs</th></tr>\n";
  for (const ProfileNode& c : snap.root.children)
    render_profile_rows(os, c, 0);
  os << "<tr><th>total</th><th class=\"num\"></th>"
     << "<th class=\"num\" id=\"profile-total-wall\">" << fmt(wall, 6)
     << "</th><th class=\"num\"></th>"
     << "<th class=\"num\" id=\"profile-total-cpu\">" << fmt(cpu, 6)
     << "</th><th class=\"num\" id=\"profile-total-alloc\">"
     << mb(static_cast<double>(bytes)) << "</th><th class=\"num\"></th>"
     << "</tr>\n</table></div>\n";
}

/// "Why" panel: one collapsible decision record per task, the anchor
/// targets of the Gantt slice links. Capped so a pathological graph
/// cannot balloon the report.
void render_why(std::ostream& os, const TaskGraph& g,
                const std::vector<PlacementDecision>& decisions) {
  constexpr std::size_t kMaxWhyEntries = 200;
  std::size_t shown = 0, with_record = 0;
  for (const PlacementDecision& d : decisions)
    if (d.valid()) ++with_record;
  os << "<div class=\"panel\">\n";
  os << "<p>Per-task provenance from the run&apos;s \"locbs.decision\" "
        "records: the candidate shortlist LoCBS scored, the committed "
        "winner and its margin over the distinct runner-up "
        "(docs/observability.md).</p>\n";
  for (std::size_t t = 0; t < decisions.size(); ++t) {
    const PlacementDecision& d = decisions[t];
    if (!d.valid()) continue;
    if (shown == kMaxWhyEntries) break;
    ++shown;
    std::ostringstream body;
    print_decision(body, g, d);
    os << "<details id=\"why-t" << t << "\"><summary>"
       << xml_escape(t < g.num_tasks() ? g.task(static_cast<TaskId>(t)).name
                                       : "task " + std::to_string(t))
       << ": " << xml_escape(decision_brief(d)) << "</summary><pre>"
       << xml_escape(body.str()) << "</pre></details>\n";
  }
  if (shown < with_record)
    os << "<p>" << (with_record - shown)
       << " further decision record(s) omitted (panel cap).</p>\n";
  os << "</div>\n";
}

}  // namespace

void write_html_report(std::ostream& os, const TaskGraph& g,
                       const Schedule& s, const ScheduleAnalysis& a,
                       const ReportOptions& opt) {
  os << "<!DOCTYPE html>\n";
  os << "<html lang=\"en\"><head><meta charset=\"utf-8\"></meta><title>"
     << xml_escape(opt.title) << "</title><style>\n"
     << kStyle << "</style></head>\n<body>\n";
  os << "<h1>" << xml_escape(opt.title) << "</h1>\n";
  if (!opt.subtitle.empty())
    os << "<p class=\"subtitle\">" << xml_escape(opt.subtitle) << "</p>\n";

  const LocalityTotals& lt = a.locality;
  os << "<div class=\"tiles\">\n";
  tile(os, fmt(a.makespan, 3) + " s", "makespan");
  tile(os, pct(a.mean_utilization), "mean utilization");
  tile(os, pct(lt.locality_fraction), "data locality");
  tile(os, mb(lt.remote_bytes), "remote volume");
  tile(os, std::to_string(a.holes.total_holes), "idle holes");
  if (a.backfill.present) {
    tile(os, pct(a.backfill.hit_rate), "backfill hit rate");
    tile(os, pct(a.backfill.prune_rate), "scan prune rate");
  }
  if (a.faults.present) {
    tile(os, fmt(a.faults.kills, 0), "task kills");
    tile(os, fmt(a.faults.wasted_proc_seconds, 2) + " s",
         "wasted proc-time");
    tile(os, fmt(a.faults.retries + a.faults.replans, 0),
         "recovery actions");
  }
  if (a.perturb.present)
    tile(os, fmt(a.perturb.stretch_seconds + a.perturb.link_delay_seconds,
                 2) + " s",
         "perturbation delay");
  if (a.mitigation.present)
    tile(os, fmt(a.mitigation.stragglers, 0), "stragglers mitigated");
  if (a.robustness.samples > 0)
    tile(os, fmt(a.robustness.p95_over_nominal, 2) + "x",
         "p95 / nominal makespan");
  os << "</div>\n";

  os << "<h2>Schedule (Gantt, colored by input locality)</h2>\n";
  os << "<div class=\"legend\">";
  swatch(os, "loc-local", "all inputs local");
  swatch(os, "loc-partial", "partially remote");
  swatch(os, "loc-remote", "fully remote");
  swatch(os, "loc-none", "no input data");
  os << "<span>faded slice = receive window</span>";
  if (!a.fault_windows.empty())
    swatch(os, "fault", "processor failure window");
  if (!a.slowdown_windows.empty())
    swatch(os, "slow", "processor slowdown window");
  os << "</div>\n";
  os << "<div class=\"panel\">\n";
  render_gantt(os, g, s, a, opt);
  os << "</div>\n";

  os << "<h2>Critical-path decomposition</h2>\n";
  render_critical_path(os, g, a);

  os << "<h2>Redistribution locality</h2>\n";
  render_locality(os, g, a);

  os << "<h2>Start-delay blame (top " << opt.top_blame << ")</h2>\n";
  render_blame(os, g, a, opt.top_blame);

  os << "<h2>Processor utilization</h2>\n";
  render_utilization(os, a);

  os << "<h2>Idle-hole histogram</h2>\n";
  render_holes(os, a);

  if (a.backfill.present) {
    os << "<h2>Backfill effectiveness</h2>\n<div class=\"panel\"><table>\n"
       << "<tr><th>LoCBS passes</th><th class=\"num\">"
       << fmt(a.backfill.passes, 0) << "</th></tr>\n"
       << "<tr><th>tasks placed (all passes)</th><th class=\"num\">"
       << fmt(a.backfill.tasks_placed, 0) << "</th></tr>\n"
       << "<tr><th>holes scanned</th><th class=\"num\">"
       << fmt(a.backfill.holes_scanned, 0) << "</th></tr>\n"
       << "<tr><th>backfill hits</th><th class=\"num\">"
       << fmt(a.backfill.hits, 0) << " (" << pct(a.backfill.hit_rate)
       << ")</th></tr>\n"
       << "<tr><th>scan cutoffs</th><th class=\"num\">"
       << fmt(a.backfill.cutoffs, 0) << " (" << pct(a.backfill.prune_rate)
       << ")</th></tr>\n</table></div>\n";
  }

  if (a.faults.present || !a.fault_windows.empty()) {
    os << "<h2>Fault timeline and recovery accounting</h2>\n";
    render_faults(os, a);
  }

  if (a.perturb.present || a.mitigation.present ||
      a.robustness.samples > 0 || !a.slowdown_windows.empty()) {
    os << "<h2>Robustness under performance faults</h2>\n";
    render_robustness(os, a);
  }

  if (opt.decisions != nullptr) {
    os << "<h2>Why: placement decisions</h2>\n";
    render_why(os, g, *opt.decisions);
  }

  if (opt.profile != nullptr && !opt.profile->empty()) {
    os << "<h2>Planner self-profile</h2>\n";
    render_profile(os, *opt.profile);
  }

  os << "<p class=\"footer\">Generated by locmps schedule analytics "
        "(docs/observability.md). "
     << a.num_tasks << " tasks on " << a.num_procs << " processors.";
  if (a.events_dropped > 0.0)
    os << " WARNING: " << fmt(a.events_dropped, 0)
       << " decision event(s) dropped by a full EventBuffer — the trace "
          "is truncated.";
  if (a.trace_dropped > 0.0)
    os << " WARNING: " << fmt(a.trace_dropped, 0)
       << " decision event(s) dropped at the JSONL sink's line cap — the "
          "on-disk trace is truncated.";
  os << "</p>\n";
  os << "</body></html>\n";
}

std::string html_report(const TaskGraph& g, const Schedule& s,
                        const ScheduleAnalysis& a, const ReportOptions& opt) {
  std::ostringstream os;
  write_html_report(os, g, s, a, opt);
  return os.str();
}

std::string text_report(const ScheduleAnalysis& a) {
  const LocalityTotals& lt = a.locality;
  const CriticalPathBreakdown& cp = a.critical_path;
  std::ostringstream os;
  os << "makespan        " << fmt(a.makespan, 4) << " s on " << a.num_procs
     << " procs, " << a.num_tasks << " tasks\n";
  os << "utilization     mean " << pct(a.mean_utilization) << ", "
     << a.holes.total_holes << " idle hole(s), " << fmt(a.holes.total_idle_s, 2)
     << " proc-seconds idle (longest " << fmt(a.holes.longest_s, 3) << " s)\n";
  os << "locality        " << pct(lt.locality_fraction) << " of "
     << mb(lt.total_bytes) << " stayed local; " << mb(lt.remote_bytes)
     << " over the network in " << lt.partial_edges + lt.remote_edges
     << " transfer(s), " << lt.local_edges << " edge(s) fully local\n";
  const double total = cp.makespan > 0.0 ? cp.makespan : 1.0;
  os << "critical path   compute " << fmt(cp.compute_s, 3) << " s ("
     << pct(cp.compute_s / total) << "), redistribution " << fmt(cp.redist_s, 3)
     << " s (" << pct(cp.redist_s / total) << "), wait " << fmt(cp.wait_s, 3)
     << " s (" << pct(cp.wait_s / total) << ") across " << cp.steps.size()
     << " task(s)\n";
  std::size_t data = 0, proc = 0, backfill = 0;
  for (const TaskBlame& b : a.blame) {
    if (b.kind == BlameKind::Data || b.kind == BlameKind::Tie) ++data;
    if (b.kind == BlameKind::Processor) ++proc;
    if (b.kind == BlameKind::Backfill) ++backfill;
  }
  os << "start blame     " << data << " data-bound, " << proc
     << " processor-bound, " << backfill << " backfill-displaced task(s)\n";
  if (a.faults.present)
    os << "faults          " << fmt(a.faults.procs_failed, 0)
       << " processor failure(s), " << fmt(a.faults.kills, 0)
       << " task kill(s) (" << fmt(a.faults.transfer_timeouts, 0)
       << " transfer timeout(s)), " << fmt(a.faults.wasted_proc_seconds, 3)
       << " proc-seconds wasted; recovery: " << fmt(a.faults.retries, 0)
       << " retry(ies), " << fmt(a.faults.replans, 0)
       << " degraded replan(s), " << fmt(a.faults.masked_procs, 0)
       << " proc(s) masked in " << fmt(a.faults.rounds, 0) << " round(s)\n";
  if (a.perturb.present)
    os << "perturbation    " << fmt(a.perturb.slowed_tasks, 0)
       << " task(s) slowed (+" << fmt(a.perturb.stretch_seconds, 3)
       << " s stretch), " << fmt(a.perturb.degraded_transfers, 0)
       << " transfer(s) degraded (+" << fmt(a.perturb.link_delay_seconds, 3)
       << " s link delay)\n";
  if (a.mitigation.present)
    os << "mitigation      " << fmt(a.mitigation.stragglers, 0)
       << " straggler(s): " << fmt(a.mitigation.speculations, 0)
       << " speculative cop(ies) (" << fmt(a.mitigation.spec_wins, 0)
       << " won, " << fmt(a.mitigation.spec_losses, 0) << " lost), "
       << fmt(a.mitigation.replans, 0) << " replan(s), "
       << fmt(a.mitigation.wasted_seconds, 3) << " proc-seconds wasted\n";
  if (a.robustness.samples > 0)
    os << "robustness      " << a.robustness.samples
       << " perturbed sample(s): median " << fmt(a.robustness.median, 3)
       << " s [" << fmt(a.robustness.median_lo, 3) << ", "
       << fmt(a.robustness.median_hi, 3) << "], p95 "
       << fmt(a.robustness.p95, 3) << " s ("
       << fmt(a.robustness.p95_over_nominal, 3) << "x nominal), worst "
       << fmt(a.robustness.worst, 3) << " s\n";
  if (a.backfill.present)
    os << "backfill        " << fmt(a.backfill.hits, 0) << "/"
       << fmt(a.backfill.tasks_placed, 0) << " placements backfilled ("
       << pct(a.backfill.hit_rate) << "), " << fmt(a.backfill.holes_scanned, 0)
       << " holes scanned, prune rate " << pct(a.backfill.prune_rate) << "\n";
  if (a.events_dropped > 0.0)
    os << "events          WARNING: " << fmt(a.events_dropped, 0)
       << " decision event(s) dropped (EventBuffer overflow)\n";
  if (a.trace_dropped > 0.0)
    os << "trace           WARNING: " << fmt(a.trace_dropped, 0)
       << " decision event(s) dropped (JSONL sink line cap)\n";
  return os.str();
}

}  // namespace locmps::obs
