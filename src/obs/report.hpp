#pragma once
/// \file report.hpp
/// Self-contained schedule reports rendered from a ScheduleAnalysis:
///  * an HTML/SVG post-mortem — Gantt colored by locality class, per-
///    processor utilization bars, idle-hole histogram, critical-path
///    decomposition and a top-N start-delay blame table — written as
///    strict XHTML (single file, no external assets) so tooling and the
///    test suite can parse it;
///  * a plain-text summary for terminals and logs.
///
/// Producers: `locmps-inspect` (tools/inspect.cpp) and the bench
/// harness's `--report-out` flag (bench/bench_util.hpp).

#include <iosfwd>
#include <string>

#include <vector>

#include "graph/task_graph.hpp"
#include "obs/analysis.hpp"
#include "obs/profile.hpp"
#include "obs/provenance.hpp"
#include "schedule/schedule.hpp"

namespace locmps::obs {

/// Report knobs.
struct ReportOptions {
  std::string title = "Schedule report";
  std::string subtitle;            ///< e.g. scheme / workload description
  std::size_t top_blame = 15;      ///< rows of the blame table
  std::size_t gantt_width = 1160;  ///< Gantt plot width in pixels
  /// Session profiler snapshot; non-null (and non-empty) adds the
  /// "Planner self-profile" span-tree panel (docs/observability.md).
  const ProfileSnapshot* profile = nullptr;
  /// Per-task placement decisions (obs::final_decisions of the run's
  /// trace), indexed by TaskId; non-null adds the "Why" panel and turns
  /// each Gantt slice into a link to its task's decision record.
  const std::vector<PlacementDecision>* decisions = nullptr;
};

/// Writes the HTML report for \p a (computed from \p g and \p s).
/// The output is `<!DOCTYPE html>` followed by one well-formed XML
/// document (strict XHTML): every element closed, attributes quoted,
/// text escaped — validated by tests/test_report.cpp.
void write_html_report(std::ostream& os, const TaskGraph& g,
                       const Schedule& s, const ScheduleAnalysis& a,
                       const ReportOptions& opt = {});

/// Convenience: the HTML report as a string.
std::string html_report(const TaskGraph& g, const Schedule& s,
                        const ScheduleAnalysis& a,
                        const ReportOptions& opt = {});

/// Multi-line plain-text summary of \p a.
std::string text_report(const ScheduleAnalysis& a);

/// Escapes &, <, >, " and ' for XML/XHTML text and attribute content.
std::string xml_escape(std::string_view in);

}  // namespace locmps::obs
