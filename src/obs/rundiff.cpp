#include "obs/rundiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/table.hpp"

namespace locmps::obs {

namespace {

/// Same-instant tolerance, mirroring the scheduler's (locbs.cpp).
bool about(double a, double b) {
  return std::fabs(a - b) <= 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

DivergenceKind classify(const TaskRun& a, const TaskRun& b) {
  if (!a.placed || !b.placed) {
    if (a.placed == b.placed) return DivergenceKind::kIdentical;
    return DivergenceKind::kWidth;  // structural: placed in one run only
  }
  if (a.np != b.np) return DivergenceKind::kWidth;
  if (a.procs != b.procs) return DivergenceKind::kPlacement;
  if (!about(a.start, b.start) || !about(a.busy_from, b.busy_from))
    return DivergenceKind::kStartShift;
  if (!about(a.remote_bytes, b.remote_bytes)) return DivergenceKind::kRedist;
  if (!about(a.finish, b.finish)) return DivergenceKind::kDrift;
  return DivergenceKind::kIdentical;
}

/// Exact round-trip JSON number (17 significant digits).
void put_num(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void put_str(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

/// Per-run chart neighbourhood: for every task, the task that occupied
/// each of its processors immediately before it acquired them. A vanished
/// hole shows up as a changed previous occupant, which is exactly the
/// influence edge the blame walk needs.
std::vector<std::vector<TaskId>> previous_occupants(const RunView& v) {
  // Processor -> (busy_from, task), then sort each lane by acquire time.
  std::map<ProcId, std::vector<std::pair<double, TaskId>>> lanes;
  for (TaskId t = 0; t < v.tasks.size(); ++t) {
    const TaskRun& tr = v.tasks[t];
    if (!tr.placed) continue;
    for (ProcId q : tr.procs) lanes[q].emplace_back(tr.busy_from, t);
  }
  std::vector<std::vector<TaskId>> prev(v.tasks.size());
  for (auto& [q, lane] : lanes) {
    std::sort(lane.begin(), lane.end());
    for (std::size_t i = 1; i < lane.size(); ++i) {
      std::vector<TaskId>& p = prev[lane[i].second];
      const TaskId before = lane[i - 1].second;
      if (std::find(p.begin(), p.end(), before) == p.end())
        p.push_back(before);
    }
  }
  return prev;
}

}  // namespace

const char* kind_name(DivergenceKind k) {
  switch (k) {
    case DivergenceKind::kIdentical: return "identical";
    case DivergenceKind::kWidth: return "width";
    case DivergenceKind::kPlacement: return "placement";
    case DivergenceKind::kStartShift: return "start-shift";
    case DivergenceKind::kRedist: return "redist";
    case DivergenceKind::kDrift: return "drift";
  }
  return "?";
}

RunView run_view(const std::vector<TraceRecord>& records,
                 std::size_t num_tasks) {
  RunView v;
  v.tasks.resize(num_tasks);
  PlacementDecision d;
  for (const TraceRecord& rec : records) {
    if (rec.ev == "locbs.place") {
      const double traw = rec.num("task", -1.0);
      if (traw < 0.0 || traw >= static_cast<double>(num_tasks)) continue;
      const TaskId t = static_cast<TaskId>(traw);
      TaskRun& tr = v.tasks[t];
      tr.placed = true;
      tr.np = static_cast<std::size_t>(rec.num("np"));
      tr.busy_from = rec.num("busy_from");
      tr.start = rec.num("start");
      tr.finish = rec.num("finish");
      tr.remote_bytes = rec.num("remote_bytes");
      if (const std::string* procs = rec.str("procs"))
        tr.procs = parse_procs_csv(*procs);
    } else if (decision_from_record(rec, d)) {
      if (d.task < num_tasks) v.tasks[d.task].decision = std::move(d);
    }
  }
  for (const TaskRun& tr : v.tasks)
    if (tr.placed) v.makespan = std::max(v.makespan, tr.finish);
  return v;
}

RunDiff diff_runs(const TaskGraph& g, const RunView& a, const RunView& b) {
  const std::size_t n = g.num_tasks();
  if (a.tasks.size() != n || b.tasks.size() != n)
    throw std::invalid_argument(
        "rundiff: trace task count does not match the graph");

  RunDiff out;
  out.makespan_a = a.makespan;
  out.makespan_b = b.makespan;
  out.delta = b.makespan - a.makespan;

  // Classify every task; keep the diverged ones plus an index over them.
  std::vector<std::size_t> index(n, static_cast<std::size_t>(-1));
  for (TaskId t = 0; t < n; ++t) {
    const DivergenceKind k = classify(a.tasks[t], b.tasks[t]);
    if (k == DivergenceKind::kIdentical) continue;
    TaskDiff td;
    td.task = t;
    td.kind = k;
    td.d_start = b.tasks[t].start - a.tasks[t].start;
    td.d_finish = b.tasks[t].finish - a.tasks[t].finish;
    td.d_remote = b.tasks[t].remote_bytes - a.tasks[t].remote_bytes;
    index[t] = out.diverged.size();
    out.diverged.push_back(td);
  }
  if (out.diverged.empty()) return out;

  // Root-cause resolution: width changes are allocator decisions and
  // always roots; any other divergence is induced when an influencer
  // (graph predecessor or previous chart occupant, in either run)
  // diverged, and the blame flows to the influencer with the largest
  // |Δfinish|.
  const std::vector<std::vector<TaskId>> prev_a = previous_occupants(a);
  const std::vector<std::vector<TaskId>> prev_b = previous_occupants(b);
  for (TaskDiff& td : out.diverged) {
    if (td.kind == DivergenceKind::kWidth) {
      td.root = true;
      continue;
    }
    TaskId blame = kNoTask;
    double blame_mag = -1.0;
    auto offer = [&](TaskId u) {
      if (u == td.task || index[u] == static_cast<std::size_t>(-1)) return;
      const double mag = std::fabs(out.diverged[index[u]].d_finish);
      // Deliberate exact tie-break: equal magnitudes fall back to the
      // smaller task id, deterministically.
      if (mag > blame_mag ||
          (mag == blame_mag && u < blame)) {  // LINT-ALLOW(float-eq)
        blame_mag = mag;
        blame = u;
      }
    };
    for (EdgeId e : g.in_edges(td.task)) offer(g.edge(e).src);
    for (TaskId u : prev_a[td.task]) offer(u);
    for (TaskId u : prev_b[td.task]) offer(u);
    if (blame == kNoTask)
      td.root = true;
    else
      td.source = blame;
  }

  // Blame chain of one diverged task: follow sources to a root (a cycle
  // degrades gracefully into "last unvisited link is the root").
  auto chain_of = [&](TaskId start) {
    std::vector<TaskId> chain;
    std::vector<char> visited(n, 0);
    TaskId cur = start;
    while (true) {
      chain.push_back(cur);
      visited[cur] = 1;
      const TaskDiff& td = out.diverged[index[cur]];
      if (td.root || td.source == kNoTask || visited[td.source]) break;
      cur = td.source;
    }
    return chain;
  };

  // The makespan-defining divergence: among the two runs' makespan tasks,
  // the diverged one with the larger |Δfinish| — falling back to the
  // largest diverged |Δfinish| overall when neither diverged.
  TaskId start = kNoTask;
  {
    auto makespan_task = [n](const RunView& v) {
      TaskId best = kNoTask;
      for (TaskId t = 0; t < n; ++t)
        if (v.tasks[t].placed &&
            (best == kNoTask || v.tasks[t].finish > v.tasks[best].finish))
          best = t;
      return best;
    };
    double best_mag = -1.0;
    for (TaskId tm : {makespan_task(a), makespan_task(b)}) {
      if (tm == kNoTask || index[tm] == static_cast<std::size_t>(-1))
        continue;
      const double mag = std::fabs(out.diverged[index[tm]].d_finish);
      if (mag > best_mag) {
        best_mag = mag;
        start = tm;
      }
    }
    if (start == kNoTask) {
      for (const TaskDiff& td : out.diverged) {
        const double mag = std::fabs(td.d_finish);
        if (mag > best_mag) {
          best_mag = mag;
          start = td.task;
        }
      }
    }
  }

  if (start != kNoTask && std::fabs(out.delta) > 0.0) {
    std::vector<TaskId> chain = chain_of(start);
    const TaskId primary = chain.back();
    Attribution at;
    at.task = primary;
    at.kind = out.diverged[index[primary]].kind;
    at.share = out.delta;
    at.fraction = 1.0;
    at.chain = std::move(chain);
    out.attribution.push_back(std::move(at));
    out.attributed_fraction = 1.0;

    // Context roots: every other blame region, ranked by the largest
    // |Δfinish| it contains.
    std::map<TaskId, double> region_mag;
    for (const TaskDiff& td : out.diverged) {
      const TaskId root = chain_of(td.task).back();
      double& mag = region_mag[root];
      mag = std::max(mag, std::fabs(td.d_finish));
    }
    std::vector<std::pair<double, TaskId>> rest;
    for (const auto& [root, mag] : region_mag)
      if (root != primary) rest.emplace_back(mag, root);
    std::sort(rest.begin(), rest.end(), [](const auto& x, const auto& y) {
      if (x.first != y.first) return x.first > y.first;
      return x.second < y.second;
    });
    for (const auto& [mag, root] : rest) {
      Attribution ctx;
      ctx.task = root;
      ctx.kind = out.diverged[index[root]].kind;
      ctx.share = 0.0;
      ctx.fraction = 0.0;
      ctx.chain = {root};
      out.attribution.push_back(std::move(ctx));
    }
  }
  return out;
}

void print_diff(std::ostream& os, const TaskGraph& g, const RunView& a,
                const RunView& b, const RunDiff& d) {
  os << "run diff: makespan A=" << fmt(d.makespan_a, 6)
     << " s, B=" << fmt(d.makespan_b, 6) << " s, delta="
     << fmt(d.delta, 6) << " s";
  if (d.makespan_a > 0.0)
    os << " (" << fmt(100.0 * d.delta / d.makespan_a, 2) << "%)";
  os << "\n";
  if (d.diverged.empty()) {
    os << "runs are identical: no diverged placements, zero delta\n";
    return;
  }

  std::map<DivergenceKind, std::size_t> census;
  for (const TaskDiff& td : d.diverged) ++census[td.kind];
  os << "divergences: " << d.diverged.size() << " of " << g.num_tasks()
     << " task(s) (";
  bool first = true;
  for (const auto& [k, cnt] : census) {
    if (!first) os << ", ";
    first = false;
    os << kind_name(k) << " " << cnt;
  }
  os << ")\n";

  if (d.attribution.empty()) {
    os << "no makespan delta to attribute\n";
    return;
  }
  os << "ranked root causes:\n";
  for (std::size_t i = 0; i < d.attribution.size(); ++i) {
    const Attribution& at = d.attribution[i];
    os << "  " << (i + 1) << ". task " << at.task;
    if (at.task < g.num_tasks()) os << " (" << g.task(at.task).name << ")";
    os << " [" << kind_name(at.kind) << "] share=" << fmt(at.share, 6)
       << " s (" << fmt(100.0 * at.fraction, 1) << "% of delta)";
    if (at.chain.size() > 1) {
      os << " chain:";
      for (std::size_t j = 0; j < at.chain.size(); ++j)
        os << (j == 0 ? " " : " <- ") << at.chain[j];
    }
    os << "\n";
    const TaskRun& ra = a.tasks[at.task];
    const TaskRun& rb = b.tasks[at.task];
    os << "     A: "
       << (ra.decision.valid()
               ? decision_brief(ra.decision)
               : "np=" + std::to_string(ra.np) + " on {" +
                     procs_csv(ra.procs) + "} (no decision record)")
       << "\n";
    os << "     B: "
       << (rb.decision.valid()
               ? decision_brief(rb.decision)
               : "np=" + std::to_string(rb.np) + " on {" +
                     procs_csv(rb.procs) + "} (no decision record)")
       << "\n";
  }
  os << "attributed fraction: " << fmt(100.0 * d.attributed_fraction, 1)
     << "%\n";
}

namespace {

void write_task_side(std::ostream& os, const TaskRun& tr) {
  os << "{\"np\":" << tr.np << ",\"procs\":";
  put_str(os, procs_csv(tr.procs));
  os << ",\"start\":";
  put_num(os, tr.start);
  os << ",\"finish\":";
  put_num(os, tr.finish);
  os << ",\"remote_bytes\":";
  put_num(os, tr.remote_bytes);
  if (tr.decision.valid()) {
    os << ",\"margin\":";
    put_num(os, tr.decision.margin);
    os << ",\"perturbed\":" << (tr.decision.perturbed ? "true" : "false")
       << ",\"backfilled\":" << (tr.decision.backfilled ? "true" : "false");
  }
  os << "}";
}

}  // namespace

void write_diff_json(std::ostream& os, const TaskGraph& g, const RunView& a,
                     const RunView& b, const RunDiff& d) {
  os << "{\"makespan_a\":";
  put_num(os, d.makespan_a);
  os << ",\"makespan_b\":";
  put_num(os, d.makespan_b);
  os << ",\"delta\":";
  put_num(os, d.delta);
  os << ",\"num_tasks\":" << g.num_tasks();

  std::map<DivergenceKind, std::size_t> census;
  for (const TaskDiff& td : d.diverged) ++census[td.kind];
  os << ",\"kinds\":{";
  bool first = true;
  for (const auto& [k, cnt] : census) {
    if (!first) os << ",";
    first = false;
    put_str(os, kind_name(k));
    os << ":" << cnt;
  }
  os << "}";

  os << ",\"diverged\":[";
  first = true;
  for (const TaskDiff& td : d.diverged) {
    if (!first) os << ",";
    first = false;
    os << "{\"task\":" << td.task << ",\"kind\":";
    put_str(os, kind_name(td.kind));
    os << ",\"d_start\":";
    put_num(os, td.d_start);
    os << ",\"d_finish\":";
    put_num(os, td.d_finish);
    os << ",\"d_remote\":";
    put_num(os, td.d_remote);
    os << ",\"root\":" << (td.root ? "true" : "false") << ",\"source\":";
    if (td.source == kNoTask)
      os << "null";
    else
      os << td.source;
    os << "}";
  }
  os << "]";

  os << ",\"attribution\":[";
  first = true;
  for (const Attribution& at : d.attribution) {
    if (!first) os << ",";
    first = false;
    os << "{\"task\":" << at.task << ",\"name\":";
    put_str(os, at.task < g.num_tasks() ? g.task(at.task).name : "");
    os << ",\"kind\":";
    put_str(os, kind_name(at.kind));
    os << ",\"share\":";
    put_num(os, at.share);
    os << ",\"fraction\":";
    put_num(os, at.fraction);
    os << ",\"chain\":[";
    for (std::size_t j = 0; j < at.chain.size(); ++j) {
      if (j != 0) os << ",";
      os << at.chain[j];
    }
    os << "],\"a\":";
    write_task_side(os, a.tasks[at.task]);
    os << ",\"b\":";
    write_task_side(os, b.tasks[at.task]);
    os << "}";
  }
  os << "]";

  os << ",\"attributed_fraction\":";
  put_num(os, d.attributed_fraction);
  os << "}\n";
}

}  // namespace locmps::obs
