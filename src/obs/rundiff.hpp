#pragma once
/// \file rundiff.hpp
/// Differential run attribution: given the decision traces of two runs of
/// the same task graph (baseline A vs. candidate B), align the tasks,
/// classify every divergence, and roll the deltas up the schedule DAG to
/// the ranked root-cause decisions that explain the makespan difference.
///
/// Taxonomy (first matching kind wins):
///   width      — the allocation changed (np differs); an allocator-level
///                decision, always a root cause
///   placement  — same width, different processor set
///   start-shift— same processors, different start/acquire instant
///   redist     — same slot, different remote redistribution volume
///   drift      — same slot and volume, finish differs (pure sim drift)
///
/// A diverged task is a *root cause* when none of its influencers — graph
/// predecessors plus the previous occupant of each of its processors, in
/// either run — diverged; otherwise its divergence is induced and the
/// blame flows to the diverged influencer with the largest |Δfinish|.
/// The makespan delta is attributed along that chain, from the
/// makespan-defining task down to its root decision; other root causes
/// are listed after it, ranked by the largest |Δfinish| in their blame
/// region. Consumed by `locmps-inspect --diff` and scripts/bench_diff.py.

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "obs/analysis.hpp"
#include "obs/provenance.hpp"

namespace locmps::obs {

/// One task's final realized placement in one run, reconstructed from the
/// last "locbs.place" / "locbs.decision" records it received.
struct TaskRun {
  bool placed = false;
  std::size_t np = 0;
  double busy_from = 0.0;
  double start = 0.0;
  double finish = 0.0;
  double remote_bytes = 0.0;
  std::vector<ProcId> procs;      ///< ascending
  PlacementDecision decision;     ///< invalid when no decision record seen
};

/// The per-task view of one run's trace.
struct RunView {
  std::vector<TaskRun> tasks;
  double makespan = 0.0;  ///< max finish over placed tasks
};

/// Builds the run view of a decision trace for a graph of \p num_tasks.
RunView run_view(const std::vector<TraceRecord>& records,
                 std::size_t num_tasks);

enum class DivergenceKind {
  kIdentical,
  kWidth,
  kPlacement,
  kStartShift,
  kRedist,
  kDrift,
};

/// Stable lower-case name ("width", "placement", ...) used in text and
/// JSON output.
const char* kind_name(DivergenceKind k);

/// One diverged task (kind != kIdentical). Deltas are B minus A.
struct TaskDiff {
  TaskId task = kNoTask;
  DivergenceKind kind = DivergenceKind::kIdentical;
  double d_start = 0.0;
  double d_finish = 0.0;
  double d_remote = 0.0;
  bool root = false;        ///< own decision is a root cause
  TaskId source = kNoTask;  ///< diverged influencer blamed when not a root
};

/// One ranked attribution entry: a root-cause decision and the share of
/// the makespan delta laid at its feet.
struct Attribution {
  TaskId task = kNoTask;
  DivergenceKind kind = DivergenceKind::kIdentical;
  double share = 0.0;     ///< seconds of makespan delta attributed
  double fraction = 0.0;  ///< share / |delta| (0 when delta is 0)
  /// Blame chain, makespan-defining task first, root last. Context roots
  /// (not on the makespan chain) carry only themselves.
  std::vector<TaskId> chain;
};

/// The complete diff of two runs.
struct RunDiff {
  double makespan_a = 0.0;
  double makespan_b = 0.0;
  double delta = 0.0;  ///< makespan_b - makespan_a
  std::vector<TaskDiff> diverged;       ///< ascending task id
  std::vector<Attribution> attribution; ///< ranked, primary root first
  /// Fraction of |delta| the ranked list explains (1 when the chain walk
  /// reached a root, 0 when the runs are identical).
  double attributed_fraction = 0.0;
};

/// Diffs two runs of the same graph. Throws std::invalid_argument when a
/// view's task count does not match \p g.
RunDiff diff_runs(const TaskGraph& g, const RunView& a, const RunView& b);

/// Human-readable attribution report: makespans, divergence census,
/// ranked root causes with both runs' decision records.
void print_diff(std::ostream& os, const TaskGraph& g, const RunView& a,
                const RunView& b, const RunDiff& d);

/// Machine-readable attribution artifact (single JSON object).
void write_diff_json(std::ostream& os, const TaskGraph& g, const RunView& a,
                     const RunView& b, const RunDiff& d);

}  // namespace locmps::obs
