#include "schedule/event_sim.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "network/block_cyclic.hpp"
#include "obs/profile.hpp"

namespace locmps {

std::vector<double> make_noise_factors(std::size_t num_tasks, double noise,
                                       std::uint64_t seed) {
  std::vector<double> factors(num_tasks, 1.0);
  if (noise > 0.0) {
    Rng rng(seed);
    for (auto& f : factors) f = 1.0 + rng.uniform(-noise, noise);
  }
  return factors;
}

SimResult simulate_execution(const TaskGraph& g, const Schedule& s,
                             const CommModel& comm, const SimOptions& opt) {
  if (!s.complete())
    throw std::invalid_argument("simulate_execution: incomplete schedule");
  const std::size_t n = g.num_tasks();
  const std::size_t P = s.num_procs();
  const FaultPlan* const fp = opt.faults;
  if (fp != nullptr && fp->processors() != P)
    throw std::invalid_argument(
        "simulate_execution: fault plan sized for a different cluster");
  const PerturbationPlan* const pp = opt.perturb;
  if (pp != nullptr && pp->processors() != P)
    throw std::invalid_argument(
        "simulate_execution: perturbation plan sized for a different "
        "cluster");
  if (pp != nullptr && !pp->task_noise().empty() &&
      pp->task_noise().size() != n)
    throw std::invalid_argument(
        "simulate_execution: perturbation task noise sized for a different "
        "graph");

  // Per-task multiplicative runtime perturbation.
  std::vector<double> noise;
  if (opt.noise_factors != nullptr) {
    if (opt.noise_factors->size() != n)
      throw std::invalid_argument(
          "simulate_execution: noise_factors size mismatch");
    noise = *opt.noise_factors;
  } else {
    noise = make_noise_factors(n, opt.runtime_noise, opt.seed);
  }
  // The perturbation plan's bounded per-task noise composes with the
  // caller's factors (the recovery loop passes its own fixed vector).
  if (pp != nullptr && !pp->task_noise().empty())
    for (std::size_t t = 0; t < n; ++t) noise[t] *= pp->task_noise()[t];

  // Replay tasks in the schedule's start order: the schedule is precedence
  // consistent, so parents (and earlier tasks on shared processors) always
  // precede in this order.
  std::vector<TaskId> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Exact comparisons: tie-break levels of a deterministic sort key, not
  // tolerance checks (equal times must compare equal to reach the next
  // level and keep replay order stable).
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    if (s.at(a).start != s.at(b).start)  // LINT-ALLOW(float-eq)
      return s.at(a).start < s.at(b).start;
    if (s.at(a).busy_from != s.at(b).busy_from)  // LINT-ALLOW(float-eq)
      return s.at(a).busy_from < s.at(b).busy_from;
    return a < b;
  });

  std::vector<double> proc_free(P, 0.0);  // computation availability
  std::vector<double> port_free(P, 0.0);  // transfer-port availability
  std::vector<double> ft(n, 0.0);
  std::vector<char> dead(n, 0);  // killed by a fault, or skipped orphan
  SimResult res;
  res.executed = Schedule(n, P);

  obs::ObsContext* const obs = opt.obs;
  obs::ScopedTimer sim_timer(obs::metrics_of(obs), "sim.execute");
  LOCMPS_SPAN(obs, "sim.execute");
  // Realized-redistribution telemetry, flushed once after the replay.
  std::uint64_t obs_transfers = 0, obs_local_edges = 0;

  for (TaskId t : order) {
    const Placement& plc = s.at(t);
    // A task whose ancestor was killed never gets its inputs: skip it.
    if (fp != nullptr) {
      bool orphan = false;
      for (EdgeId e : g.in_edges(t))
        if (dead[g.edge(e).src] != 0) {
          orphan = true;
          break;
        }
      if (orphan) {
        dead[t] = 1;
        ++res.skipped;
        continue;
      }
    }
    // Earliest failure that intersects this task's computation or one of
    // its incoming transfers. Strict < keeps the first offer on ties, so
    // the pick is deterministic (edges in order, procs ascending).
    double kill_at = std::numeric_limits<double>::infinity();
    ProcId kill_proc = 0;
    TaskKill::Kind kill_kind = TaskKill::Kind::kCompute;
    auto offer_kill = [&](double at, ProcId q, TaskKill::Kind k) {
      if (at < kill_at) {
        kill_at = at;
        kill_proc = q;
        kill_kind = k;
      }
    };

    double ready = 0.0;  // processors of t free for computation
    plc.procs.for_each(
        [&](ProcId q) { ready = std::max(ready, proc_free[q]); });
    if (opt.release_times != nullptr)
      ready = std::max(ready, (*opt.release_times)[t]);

    // Perform the incoming redistributions.
    double busy_from = ready;
    double data_arrived = 0.0;
    double serial_clock = ready;  // no-overlap: transfers occupy dst compute
    for (EdgeId e : g.in_edges(t)) {
      const Edge& ed = g.edge(e);
      const double rv =
          opt.locality_volumes
              ? remote_volume(ed.volume_bytes, s.at(ed.src).procs, plc.procs)
              : (s.at(ed.src).procs == plc.procs ? 0.0 : ed.volume_bytes);
      if (rv <= 0.0) {
        data_arrived = std::max(data_arrived, ft[ed.src]);
        if (ed.volume_bytes > 0.0) ++obs_local_edges;
        continue;
      }
      const double dur =
          comm.transfer_duration(rv, s.at(ed.src).np(), plc.np());
      double start = ft[ed.src];
      // Under fault injection a (re)planned consumer requests its inputs no
      // earlier than its release: a redistribution that timed out is
      // re-attempted after the recovery decision, not replayed into the
      // past (completed producers' data persists on disk).
      if (fp != nullptr && opt.release_times != nullptr)
        start = std::max(start, (*opt.release_times)[t]);
      if (!comm.overlap()) start = std::max(start, serial_clock);
      if (opt.single_port) {
        auto raise = [&](ProcId q) { start = std::max(start, port_free[q]); };
        s.at(ed.src).procs.for_each(raise);
        plc.procs.for_each(raise);
      }
      const double end =
          pp != nullptr ? pp->transfer_finish(start, dur) : start + dur;
      if (pp != nullptr && end > start + dur) {
        ++res.degraded_transfers;
        res.link_delay_seconds += end - (start + dur);
        if (obs::wants_events(obs))
          obs->sink->emit(obs::Event("perturb.link")
                              .with("edge", e)
                              .with("dst", t)
                              .with("begin", start)
                              .with("nominal_s", dur)
                              .with("delay_s", end - (start + dur)));
      }
      if (fp != nullptr) {
        // A failure onset at either endpoint strictly inside the transfer
        // window times the redistribution out and kills the consumer. A
        // transfer *starting* at or after the onset is a re-attempt: the
        // completed producer's data survives on disk, so it succeeds.
        auto scan = [&](const ProcessorSet& ps) {
          ps.for_each([&](ProcId q) {
            for (const FaultEvent& ev : fp->intervals_of(q)) {
              if (ev.fail_at >= end) break;  // onset-ordered
              if (ev.fail_at > start) {
                offer_kill(ev.fail_at, q, TaskKill::Kind::kTransfer);
                break;
              }
            }
          });
        };
        scan(s.at(ed.src).procs);
        scan(plc.procs);
      }
      if (opt.single_port) {
        auto claim = [&](ProcId q) { port_free[q] = end; };
        s.at(ed.src).procs.for_each(claim);
        plc.procs.for_each(claim);
      }
      if (!comm.overlap()) {
        serial_clock = end;
        // Without compute/transfer overlap the *sender* is also stalled
        // while its data drains (blocking I/O at both endpoints).
        s.at(ed.src).procs.for_each([&](ProcId q) {
          proc_free[q] = std::max(proc_free[q], end);
        });
      }
      data_arrived = std::max(data_arrived, end);
      res.total_transfer_bytes += rv;
      res.total_transfer_time += dur;
      ++obs_transfers;
      if (obs::wants_events(obs))
        obs->sink->emit(obs::Event("sim.transfer")
                            .with("edge", e)
                            .with("src", ed.src)
                            .with("dst", ed.dst)
                            .with("bytes", rv)
                            .with("begin", start)
                            .with("end", end));
    }

    const double st = comm.overlap() ? std::max(ready, data_arrived)
                                     : std::max(serial_clock, data_arrived);
    const double et = g.task(t).profile.time(plc.np()) * noise[t];
    const double fin =
        pp != nullptr ? pp->compute_finish(plc.procs, st, et) : st + et;
    if (pp != nullptr && fin > st + et) {
      ++res.slowed_tasks;
      res.stretch_seconds += fin - (st + et);
      if (obs::wants_events(obs))
        obs->sink->emit(obs::Event("perturb.slow")
                            .with("task", t)
                            .with("start", st)
                            .with("nominal_s", et)
                            .with("stretch_s", fin - (st + et)));
    }
    if (fp != nullptr) {
      plc.procs.for_each([&](ProcId q) {
        if (!fp->alive(q, st)) {
          offer_kill(st, q, TaskKill::Kind::kDeadAtStart);
        } else {
          double f = 0.0;
          if (fp->first_onset(q, st, fin, &f))
            offer_kill(f, q, TaskKill::Kind::kCompute);
        }
      });
      if (kill_at < std::numeric_limits<double>::infinity()) {
        TaskKill k;
        k.task = t;
        k.proc = kill_proc;
        k.at = kill_at;
        k.kind = kill_kind;
        k.busy_from = std::min(busy_from, st);
        k.start = st;
        k.planned_finish = fin;
        if (kill_kind == TaskKill::Kind::kCompute) {
          k.wasted_s = (kill_at - st) * static_cast<double>(plc.np());
          // The processors were busy on the doomed task until the kill.
          plc.procs.for_each([&](ProcId q) {
            proc_free[q] = std::max(proc_free[q], kill_at);
          });
        }
        res.kills.push_back(k);
        dead[t] = 1;
        continue;
      }
    }
    ft[t] = fin;
    if (!comm.overlap()) busy_from = std::min(busy_from, st);
    plc.procs.for_each([&](ProcId q) { proc_free[q] = ft[t]; });
    res.executed.place(t, std::min(busy_from, st), st, ft[t], plc.procs);
  }
  std::sort(res.kills.begin(), res.kills.end(),
            [](const TaskKill& a, const TaskKill& b) {
              // Deterministic sort key tie-break. LINT-ALLOW(float-eq)
              if (a.at != b.at) return a.at < b.at;
              return a.task < b.task;
            });
  res.makespan = res.executed.makespan();
  if (obs::MetricsRegistry* const met = obs::metrics_of(obs);
      met != nullptr) {
    met->add("sim.transfers", static_cast<double>(obs_transfers));
    met->add("sim.local_edges", static_cast<double>(obs_local_edges));
    met->add("sim.remote_bytes", res.total_transfer_bytes);
    met->add("sim.transfer_seconds", res.total_transfer_time);
    if (pp != nullptr) {
      met->add("perturb.slowed_tasks", static_cast<double>(res.slowed_tasks));
      met->add("perturb.stretch_seconds", res.stretch_seconds);
      met->add("perturb.degraded_transfers",
               static_cast<double>(res.degraded_transfers));
      met->add("perturb.link_delay_seconds", res.link_delay_seconds);
    }
  }
  return res;
}

}  // namespace locmps
