#pragma once
/// \file event_sim.hpp
/// Discrete-event execution of a schedule.
///
/// This is the repository's substitute for the paper's "actual execution"
/// run (Fig 11): it *executes* a schedule rather than trusting the
/// scheduler's internal timing. Task-to-processor placements and the
/// per-processor execution order are taken from the schedule; start times
/// are re-derived dynamically from
///  * precedence (a task waits for its inputs to arrive),
///  * single-port transfers (each node participates in at most one
///    redistribution at a time), and
///  * processor exclusivity (a processor runs one task at a time).
/// Execution times may be perturbed with multiplicative noise to model the
/// gap between runtime estimates and reality.

#include <optional>

// Fault scripts and perturbation models are *inputs* to the simulator, so
// the simulator names their types even though faults/ sits above schedule/
// in the layering (its tier is set by recovery/robustness, which consume
// schedulers). Both headers depend only on cluster/ and util/, so there is
// no file-level cycle — just a sanctioned up-reference.
#include "faults/fault_plan.hpp"   // LINT-ALLOW(layer-violation)
#include "faults/perturbation.hpp"  // LINT-ALLOW(layer-violation)
#include "obs/events.hpp"
#include "schedule/schedule.hpp"
#include "util/rng.hpp"

namespace locmps {

/// Execution-model knobs for the simulator.
struct SimOptions {
  /// Relative runtime-estimate error: actual et = et * (1 + eps), eps
  /// uniform in [-noise, +noise]. 0 reproduces the estimates exactly.
  double runtime_noise = 0.0;

  /// Enforce the single-port model on transfers (each endpoint node joins
  /// at most one redistribution at a time). Off by default: the standard
  /// evaluation re-times schedules under the same parallel-transfer
  /// assumption the schedulers plan with (the paper's simulation); turn on
  /// (with noise) for the Fig-11 "actual execution" experiment.
  bool single_port = false;

  /// Charge only the exact block-cyclic remote volume of each transfer
  /// (data on shared, aligned processors stays put). Locality-aware
  /// schemes orchestrate their redistributions to realize this; for the
  /// baselines that don't (iCASLB, CPR, CPA), the paper's evaluation
  /// charges the full volume whenever producer and consumer layouts
  /// differ — set false to reproduce that (identical layouts are still
  /// free, which is what makes DATA communication-less).
  bool locality_volumes = true;

  /// RNG seed for noise injection.
  std::uint64_t seed = 42;

  /// Optional per-task earliest start times (e.g. "this task was replanned
  /// at time T and cannot start in the past"). One entry per task; null
  /// means unconstrained. Used by the online-rescheduling extension.
  const std::vector<double>* release_times = nullptr;

  /// Optional explicit per-task runtime multipliers, overriding
  /// runtime_noise/seed. Lets a caller mix known (realized) durations with
  /// estimated ones (factor 1.0), as the online executor does when judging
  /// whether a replan is worth adopting.
  const std::vector<double>* noise_factors = nullptr;

  /// Optional observability context: the executor counts realized
  /// redistributions ("sim.transfers", "sim.remote_bytes",
  /// "sim.transfer_seconds", "sim.local_edges") and, when a sink is
  /// attached, emits one "sim.transfer" event per network transfer.
  /// Null (default) costs one branch per task.
  obs::ObsContext* obs = nullptr;

  /// Optional fail-stop fault script (see faults/fault_plan.hpp). When set,
  /// a task whose processors fail mid-computation is killed (reported in
  /// SimResult::kills, not placed in the executed schedule), a task whose
  /// processors are already down at its derived start is dead on arrival,
  /// and an in-flight redistribution touching a failing endpoint times out,
  /// killing the destination task. Transitive successors of killed tasks
  /// are skipped (SimResult::skipped). Null reproduces the fault-free
  /// replay bit for bit.
  const FaultPlan* faults = nullptr;

  /// Optional performance-fault script (see faults/perturbation.hpp). When
  /// set, computation is integrated piecewise across the plan's processor
  /// slowdown windows (a gang runs at its slowest member's pace), transfers
  /// are integrated across its degraded-link windows, and its bounded
  /// per-task noise multiplies the runtime factors above. The realized
  /// stretch is counted in SimResult and the "perturb.*" telemetry. Null
  /// reproduces the unperturbed replay bit for bit. Composes with `faults`:
  /// a stretched computation is killed by a failure onset inside its
  /// (stretched) window.
  const PerturbationPlan* perturb = nullptr;
};

/// The multiplicative runtime factors simulate_execution derives from
/// (runtime_noise, seed) — exposed so callers can reproduce or remix them.
std::vector<double> make_noise_factors(std::size_t num_tasks, double noise,
                                       std::uint64_t seed);

/// One task killed by a processor failure during the replay.
struct TaskKill {
  /// Why the task died.
  enum class Kind {
    kDeadAtStart,  ///< a placement processor was already down at start
    kCompute,      ///< a placement processor failed mid-computation
    kTransfer,     ///< an incoming redistribution's endpoint failed in flight
  };

  TaskId task = kNoTask;
  ProcId proc = 0;   ///< the processor whose failure killed the task
  double at = 0.0;   ///< kill instant (failure onset, or start for DOA)
  Kind kind = Kind::kCompute;

  /// The windows the task would have had, for freezing in-flight work when
  /// a recovery decision predates this kill (see faults/recovery.cpp).
  double busy_from = 0.0;
  double start = 0.0;
  double planned_finish = 0.0;

  /// Processor-seconds thrown away: np * (at - start) for mid-computation
  /// kills, 0 otherwise (the task never started computing).
  double wasted_s = 0.0;
};

/// Result of executing a schedule.
struct SimResult {
  Schedule executed;  ///< realized start/finish times (same placements)
  double makespan = 0.0;
  double total_transfer_bytes = 0.0;  ///< bytes that crossed the network
  double total_transfer_time = 0.0;   ///< summed transfer durations

  /// Tasks killed by injected faults, sorted by (at, task). Empty when
  /// SimOptions::faults is null or no failure intersected the execution.
  std::vector<TaskKill> kills;
  /// Tasks skipped because an ancestor was killed (their inputs never
  /// materialized); like killed tasks they are absent from `executed`.
  std::size_t skipped = 0;

  // Performance-fault accounting (zero unless SimOptions::perturb is set).
  // Reconciles with the "perturb.*" counters and the "perturb.slow" /
  // "perturb.link" trace events of the same run.
  std::size_t slowed_tasks = 0;      ///< tasks stretched by slowdown windows
  double stretch_seconds = 0.0;      ///< summed compute stretch (realized -
                                     ///< nominal window lengths)
  std::size_t degraded_transfers = 0;  ///< transfers hit by degraded links
  double link_delay_seconds = 0.0;     ///< summed transfer stretch

  /// True when every task executed (kills.empty() implies skipped == 0).
  bool clean() const { return kills.empty(); }
};

/// Executes \p s for \p g on the communication model \p comm.
///
/// The overlap/no-overlap behaviour follows comm.overlap(): on no-overlap
/// systems an incoming redistribution occupies the destination processors
/// (it delays the next computation on them).
SimResult simulate_execution(const TaskGraph& g, const Schedule& s,
                             const CommModel& comm,
                             const SimOptions& opt = {});

}  // namespace locmps
