#include "schedule/expand.hpp"

#include <stdexcept>

namespace locmps {

Schedule expand_schedule(const Coarsening& c, const TaskGraph& original,
                         const Schedule& coarse) {
  if (!coarse.complete())
    throw std::invalid_argument("expand_schedule: incomplete coarse schedule");
  Schedule out(original.num_tasks(), coarse.num_procs());
  for (TaskId comp = 0; comp < c.members.size(); ++comp) {
    const Placement& pl = coarse.at(comp);
    double clock = pl.start;
    for (std::size_t i = 0; i < c.members[comp].size(); ++i) {
      const TaskId t = c.members[comp][i];
      const double et = original.task(t).profile.time(pl.np());
      // The composite's first member inherits the busy_from (it covers the
      // incoming redistribution window on no-overlap platforms).
      const double busy = i == 0 ? pl.busy_from : clock;
      out.place(t, busy, clock, clock + et, pl.procs);
      clock += et;
    }
  }
  return out;
}

}  // namespace locmps
