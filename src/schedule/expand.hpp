#pragma once
/// \file expand.hpp
/// Expansion of a coarse-graph schedule back to the original task graph.
///
/// The inverse of graph/transform.hpp's linear-chain coarsening: given a
/// Coarsening and a complete schedule of its composite DAG, reconstruct a
/// complete, valid schedule of the original graph with the same makespan
/// (members run back-to-back on the composite's processor set inside its
/// window). It lives in schedule/, not graph/: coarsening is a pure graph
/// transformation, but expansion consumes and produces Schedules, and the
/// graph layer sits below the schedule layer (tools/lint/layers.txt).

#include "graph/transform.hpp"
#include "schedule/schedule.hpp"

namespace locmps {

/// Expands a schedule of the coarse graph back to the original graph:
/// each composite's members run back-to-back on the composite's processor
/// set inside its window. The result is a complete, valid schedule of the
/// original graph with the same makespan.
Schedule expand_schedule(const Coarsening& c, const TaskGraph& original,
                         const Schedule& coarse);

}  // namespace locmps
