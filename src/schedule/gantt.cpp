#include "schedule/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace locmps {

std::string render_gantt(const TaskGraph& g, const Schedule& s,
                         std::size_t width) {
  const double span = s.makespan();
  std::ostringstream os;
  if (span <= 0.0 || width == 0) return "(empty schedule)\n";
  const double per_col = span / static_cast<double>(width);

  std::vector<std::string> rows(s.num_procs(), std::string(width, '.'));
  for (TaskId t = 0; t < s.num_tasks(); ++t) {
    const Placement& p = s.at(t);
    if (!p.scheduled()) continue;
    auto col = [&](double x) {
      return std::min(width - 1,
                      static_cast<std::size_t>(x / per_col));
    };
    const std::size_t c0 = col(p.start);
    const std::size_t c1 = std::max(c0, col(std::nextafter(p.finish, 0.0)));
    const std::string& name = g.task(t).name;
    p.procs.for_each([&](ProcId q) {
      for (std::size_t c = c0; c <= c1; ++c) {
        const std::size_t k = c - c0;
        rows[q][c] = k < name.size() ? name[k] : '=';
      }
    });
  }
  os << "time 0.." << std::fixed << std::setprecision(2) << span << "  ("
     << per_col << "/col), utilization " << std::setprecision(1)
     << 100.0 * s.utilization() << "%\n";
  for (ProcId q = 0; q < rows.size(); ++q)
    os << "P" << std::setw(3) << std::left << q << " |" << rows[q] << "|\n";
  return os.str();
}

}  // namespace locmps
