#pragma once
/// \file gantt.hpp
/// ASCII Gantt-chart rendering of a schedule (the 2-D time x processor
/// chart of Section III-F), for examples and debugging.

#include <string>

#include "graph/task_graph.hpp"
#include "schedule/schedule.hpp"

namespace locmps {

/// Renders \p s as an ASCII Gantt chart, one row per processor, \p width
/// character columns spanning [0, makespan]. Task cells show the last
/// character(s) of the task name; '.' is idle time.
std::string render_gantt(const TaskGraph& g, const Schedule& s,
                         std::size_t width = 72);

}  // namespace locmps
