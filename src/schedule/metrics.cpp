#include "schedule/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "network/block_cyclic.hpp"
#include "util/table.hpp"

namespace locmps {

double critical_path_lower_bound(const TaskGraph& g, std::size_t P) {
  const Levels lv = compute_levels(
      g,
      [&](TaskId t) {
        const auto& p = g.task(t).profile;
        return p.time(std::min(P, p.pbest()));
      },
      [](EdgeId) { return 0.0; });
  return lv.critical_path_length();
}

double area_lower_bound(const TaskGraph& g, std::size_t P) {
  return g.total_serial_work() / static_cast<double>(P);
}

ScheduleMetrics compute_metrics(const TaskGraph& g, const Schedule& s,
                                const CommModel& comm) {
  if (!s.complete())
    throw std::invalid_argument("compute_metrics: incomplete schedule");
  ScheduleMetrics m;
  const std::size_t P = s.num_procs();
  m.makespan = s.makespan();
  m.compute_area = s.busy_area();
  m.idle_area = m.makespan * static_cast<double>(P) - m.compute_area;
  m.utilization = s.utilization();

  double np_sum = 0.0;
  for (TaskId t : g.task_ids()) {
    const std::size_t np = s.at(t).np();
    np_sum += static_cast<double>(np);
    if (np > 1) ++m.widened_tasks;
    m.max_np = std::max(m.max_np, np);
  }
  m.mean_np = np_sum / static_cast<double>(g.num_tasks());

  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(static_cast<EdgeId>(e));
    m.total_edge_bytes += ed.volume_bytes;
    const double rv =
        remote_volume(ed.volume_bytes, s.at(ed.src).procs, s.at(ed.dst).procs);
    m.remote_bytes += rv;
    m.transfer_time_sum +=
        comm.transfer_duration(rv, s.at(ed.src).np(), s.at(ed.dst).np());
  }
  m.locality_fraction = m.total_edge_bytes > 0.0
                            ? 1.0 - m.remote_bytes / m.total_edge_bytes
                            : 1.0;

  m.critical_path_bound = critical_path_lower_bound(g, P);
  m.area_bound = area_lower_bound(g, P);
  const double lb = std::max(m.critical_path_bound, m.area_bound);
  m.optimality_gap = lb > 0.0 ? m.makespan / lb : 0.0;
  return m;
}

std::string to_string(const ScheduleMetrics& m) {
  std::ostringstream os;
  os << "makespan          " << fmt(m.makespan, 4) << " s (gap to lower bound "
     << fmt(m.optimality_gap, 2) << "x)\n";
  os << "utilization       " << fmt(100.0 * m.utilization, 1) << "% ("
     << fmt(m.idle_area, 2) << " proc-seconds idle)\n";
  os << "allocation        mean " << fmt(m.mean_np, 2) << " procs, max "
     << m.max_np << ", " << m.widened_tasks << " task(s) widened\n";
  os << "data volume       " << fmt(m.total_edge_bytes / 1e6, 1)
     << " MB on edges, " << fmt(m.remote_bytes / 1e6, 1)
     << " MB over the network (locality "
     << fmt(100.0 * m.locality_fraction, 1) << "%)\n";
  os << "bounds            CP " << fmt(m.critical_path_bound, 4) << " s, area "
     << fmt(m.area_bound, 4) << " s\n";
  return os.str();
}

}  // namespace locmps
