#pragma once
/// \file metrics.hpp
/// Quantitative schedule diagnostics: where the time goes (computation,
/// redistribution, idling), how much data moves, how far the schedule is
/// from the fundamental lower bounds. Used by the benches and examples to
/// explain *why* one scheme beats another, not just by how much.

#include <string>

#include "graph/task_graph.hpp"
#include "network/comm_model.hpp"
#include "schedule/schedule.hpp"

namespace locmps {

/// Aggregate metrics of a complete schedule.
struct ScheduleMetrics {
  double makespan = 0.0;
  double compute_area = 0.0;   ///< sum np(t) * et window
  double idle_area = 0.0;      ///< P * makespan - compute area
  double utilization = 0.0;    ///< compute share of the machine rectangle

  double total_edge_bytes = 0.0;    ///< bytes produced along all edges
  double remote_bytes = 0.0;        ///< bytes that cross the network
  double locality_fraction = 0.0;   ///< 1 - remote/total (1 if no data)
  double transfer_time_sum = 0.0;   ///< summed transfer durations

  std::size_t widened_tasks = 0;    ///< tasks with np > 1
  double mean_np = 0.0;             ///< average allocation width
  std::size_t max_np = 0;

  double critical_path_bound = 0.0;  ///< CP lower bound (free comm)
  double area_bound = 0.0;           ///< work / P lower bound
  /// makespan / max(cp_bound, area_bound): 1.0 = provably optimal.
  double optimality_gap = 0.0;
};

/// Computes metrics of \p s for \p g under \p comm. The schedule must be
/// complete.
ScheduleMetrics compute_metrics(const TaskGraph& g, const Schedule& s,
                                const CommModel& comm);

/// Multi-line human-readable rendering of the metrics.
std::string to_string(const ScheduleMetrics& m);

/// Lower bound on any makespan of \p g on \p P processors: the critical
/// path with every task at its best width and free communication.
double critical_path_lower_bound(const TaskGraph& g, std::size_t P);

/// Lower bound on any makespan: total serial work / P (valid whenever no
/// task's speedup exceeds its processor count, which all library models
/// satisfy).
double area_lower_bound(const TaskGraph& g, std::size_t P);

}  // namespace locmps
