#include "schedule/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace locmps {

namespace {
/// Tolerance for floating-point schedule comparisons: absolute slack scaled
/// by the magnitude of the times involved.
bool at_least(double lhs, double rhs) {
  const double tol = 1e-9 * std::max({1.0, std::fabs(lhs), std::fabs(rhs)});
  return lhs >= rhs - tol;
}
}  // namespace

void Schedule::place(TaskId t, double busy_from, double start, double finish,
                     ProcessorSet procs) {
  if (t >= placements_.size())
    throw std::out_of_range("Schedule::place: task out of range");
  if (!(busy_from <= start && start <= finish) || busy_from < 0.0)
    throw std::invalid_argument("Schedule::place: inconsistent times");
  if (procs.empty())
    throw std::invalid_argument("Schedule::place: empty processor set");
  placements_[t] = Placement{busy_from, start, finish, std::move(procs)};
}

bool Schedule::complete() const {
  return std::all_of(placements_.begin(), placements_.end(),
                     [](const Placement& p) { return p.scheduled(); });
}

double Schedule::makespan() const {
  double m = 0.0;
  for (const auto& p : placements_)
    if (p.scheduled()) m = std::max(m, p.finish);
  return m;
}

double Schedule::busy_area() const {
  double a = 0.0;
  for (const auto& p : placements_)
    if (p.scheduled())
      a += static_cast<double>(p.np()) * (p.finish - p.start);
  return a;
}

double Schedule::utilization() const {
  const double m = makespan();
  if (m <= 0.0 || num_procs_ == 0) return 0.0;
  return busy_area() / (m * static_cast<double>(num_procs_));
}

std::string Schedule::validate(const TaskGraph& g,
                               const CommModel& comm) const {
  std::ostringstream err;
  if (g.num_tasks() != num_tasks()) {
    err << "schedule covers " << num_tasks() << " tasks, graph has "
        << g.num_tasks();
    return err.str();
  }
  for (TaskId t = 0; t < num_tasks(); ++t) {
    const Placement& p = placements_[t];
    if (!p.scheduled()) {
      err << "task " << t << " (" << g.task(t).name << ") not placed";
      return err.str();
    }
    const double et = g.task(t).profile.time(p.np());
    if (!at_least(p.finish - p.start, et)) {
      err << "task " << t << " window " << (p.finish - p.start)
          << " shorter than et=" << et << " on " << p.np() << " procs";
      return err.str();
    }
  }
  // Processor exclusivity: sweep each processor's busy windows.
  std::vector<std::vector<std::pair<double, double>>> busy(num_procs_);
  for (TaskId t = 0; t < num_tasks(); ++t) {
    const Placement& p = placements_[t];
    p.procs.for_each([&](ProcId q) {
      busy[q].emplace_back(p.busy_from, p.finish);
    });
  }
  for (ProcId q = 0; q < num_procs_; ++q) {
    auto& w = busy[q];
    std::sort(w.begin(), w.end());
    for (std::size_t i = 1; i < w.size(); ++i) {
      if (!at_least(w[i].first, w[i - 1].second)) {
        err << "processor " << q << " double-booked: window starting at "
            << w[i].first << " overlaps window ending at " << w[i - 1].second;
        return err.str();
      }
    }
  }
  // Precedence + redistribution feasibility.
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(static_cast<EdgeId>(e));
    const Placement& ps = placements_[ed.src];
    const Placement& pd = placements_[ed.dst];
    const double ct =
        comm.transfer_time(ed.volume_bytes, ps.procs, pd.procs);
    if (!at_least(pd.start, ps.finish + ct)) {
      err << "edge " << ed.src << "->" << ed.dst << ": start " << pd.start
          << " earlier than parent finish " << ps.finish << " + transfer "
          << ct;
      return err.str();
    }
  }
  return {};
}

}  // namespace locmps
