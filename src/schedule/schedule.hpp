#pragma once
/// \file schedule.hpp
/// A complete schedule: for every task, a start time, finish time and the
/// processor set it executes on, plus the time from which those processors
/// are held (which precedes the start on no-overlap systems, where the
/// incoming redistribution occupies the destination processors).

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "graph/task_graph.hpp"
#include "network/comm_model.hpp"

namespace locmps {

/// Placement of one task.
struct Placement {
  double busy_from = -1.0;  ///< processors are held from this time
  double start = -1.0;      ///< computation start time st(t)
  double finish = -1.0;     ///< finish time ft(t)
  ProcessorSet procs;       ///< executing processor set

  [[nodiscard]] bool scheduled() const { return start >= 0.0; }
  [[nodiscard]] std::size_t np() const { return procs.count(); }
};

/// A schedule of a task graph on a cluster.
class Schedule {
 public:
  Schedule() = default;
  Schedule(std::size_t num_tasks, std::size_t num_procs)
      : num_procs_(num_procs), placements_(num_tasks) {}

  std::size_t num_tasks() const { return placements_.size(); }
  std::size_t num_procs() const { return num_procs_; }

  const Placement& at(TaskId t) const { return placements_[t]; }

  /// Records the placement of \p t. \p busy_from <= start <= finish.
  void place(TaskId t, double busy_from, double start, double finish,
             ProcessorSet procs);

  /// True when every task has been placed.
  [[nodiscard]] bool complete() const;

  /// Makespan: latest finish time over all tasks (0 if nothing placed).
  [[nodiscard]] double makespan() const;

  /// Sum over tasks of np(t) * et: the processor-time area consumed.
  [[nodiscard]] double busy_area() const;

  /// Fraction of the P * makespan rectangle covered by task execution —
  /// the effective utilization backfilling tries to raise.
  [[nodiscard]] double utilization() const;

  /// Verifies the schedule against the task graph and communication model:
  ///  * every task placed, with busy_from <= start < finish;
  ///  * no processor executes two tasks at once (busy windows disjoint);
  ///  * precedence + redistribution: st(t) >= ft(parent) + transfer time
  ///    between the actual processor sets (within a small tolerance).
  /// Returns an empty string if valid, else the first violation found.
  /// [[nodiscard]]: calling validate and ignoring the verdict silently
  /// accepts an invalid schedule.
  [[nodiscard]] std::string validate(const TaskGraph& g,
                                     const CommModel& comm) const;

 private:
  std::size_t num_procs_ = 0;
  std::vector<Placement> placements_;
};

}  // namespace locmps
