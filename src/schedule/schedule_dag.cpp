#include "schedule/schedule_dag.hpp"

#include <algorithm>
#include <stdexcept>

namespace locmps {

ScheduleDag::ScheduleDag(const TaskGraph& g)
    : g_(&g),
      vertex_time_(g.num_tasks(), 0.0),
      edge_time_(g.num_edges(), 0.0),
      pseudo_out_(g.num_tasks()),
      pseudo_in_(g.num_tasks()) {}

void ScheduleDag::add_pseudo_edge(TaskId src, TaskId dst) {
  if (src >= g_->num_tasks() || dst >= g_->num_tasks() || src == dst)
    throw std::invalid_argument("ScheduleDag: bad pseudo edge");
  pseudo_.emplace_back(src, dst);
  pseudo_out_[src].push_back(dst);
  pseudo_in_[dst].push_back(src);
  cp_valid_ = false;
}

CriticalPathInfo ScheduleDag::critical_path() const {
  if (!cp_valid_) {
    cp_cache_ = compute_critical_path();
    cp_valid_ = true;
  }
  return cp_cache_;
}

CriticalPathInfo ScheduleDag::compute_critical_path() const {
  const std::size_t n = g_->num_tasks();
  // Kahn order over the combined (real + pseudo) edge set.
  std::vector<std::size_t> indeg(n, 0);
  for (TaskId t = 0; t < n; ++t)
    indeg[t] = g_->in_degree(t) + pseudo_in_[t].size();
  std::vector<TaskId> stack;
  for (TaskId t = 0; t < n; ++t)
    if (indeg[t] == 0) stack.push_back(t);

  // Longest path ending at each vertex, with backtracking info.
  std::vector<double> dist(n, 0.0);
  std::vector<TaskId> pred(n, kNoTask);
  std::vector<EdgeId> pred_edge(n, kNoEdge);
  std::vector<TaskId> order;
  order.reserve(n);
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    order.push_back(t);
    dist[t] += vertex_time_[t];
    auto relax = [&](TaskId d, double w, EdgeId via) {
      if (dist[t] + w > dist[d]) {
        dist[d] = dist[t] + w;
        pred[d] = t;
        pred_edge[d] = via;
      }
    };
    for (EdgeId e : g_->out_edges(t))
      relax(g_->edge(e).dst, edge_time_[e], e);
    for (TaskId d : pseudo_out_[t]) relax(d, 0.0, kNoEdge);
    for (EdgeId e : g_->out_edges(t))
      if (--indeg[g_->edge(e).dst] == 0) stack.push_back(g_->edge(e).dst);
    for (TaskId d : pseudo_out_[t])
      if (--indeg[d] == 0) stack.push_back(d);
  }
  if (order.size() != n)
    throw std::logic_error("ScheduleDag: pseudo edges created a cycle");

  TaskId end = 0;
  for (TaskId t = 1; t < n; ++t)
    if (dist[t] > dist[end]) end = t;

  CriticalPathInfo cp;
  cp.length = dist[end];
  for (TaskId t = end; t != kNoTask; t = pred[t]) {
    cp.tasks.push_back(t);
    cp.comp_cost += vertex_time_[t];
    if (pred[t] != kNoTask) {
      cp.edges.push_back(pred_edge[t]);
      if (pred_edge[t] != kNoEdge) cp.comm_cost += edge_time_[pred_edge[t]];
    }
  }
  std::reverse(cp.tasks.begin(), cp.tasks.end());
  std::reverse(cp.edges.begin(), cp.edges.end());
  return cp;
}

}  // namespace locmps
