#pragma once
/// \file schedule_dag.hpp
/// The schedule-DAG G' (Section III-A): the application DAG augmented with
/// zero-weight pseudo-edges representing dependences *induced by resource
/// limits* (task B had to wait for task A because A held the processors).
/// The critical path of G' is the longest path through the current
/// schedule; LoC-MPS attacks its dominating cost component each iteration.

#include <vector>

#include "graph/task_graph.hpp"

namespace locmps {

/// Sentinel edge id marking a pseudo-edge step on a critical path.
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// Critical path of a schedule-DAG, decomposed into its cost components.
struct CriticalPathInfo {
  std::vector<TaskId> tasks;  ///< path vertices, in precedence order
  /// edges[i] joins tasks[i] -> tasks[i+1]; kNoEdge denotes a pseudo-edge.
  std::vector<EdgeId> edges;
  double length = 0.0;     ///< total path length (Tcomp + Tcomm)
  double comp_cost = 0.0;  ///< sum of vertex weights on the path (Tcomp)
  double comm_cost = 0.0;  ///< sum of edge weights on the path (Tcomm)
};

/// G' = base graph + pseudo-edges, with per-vertex execution times (under
/// the current allocation) and per-edge realized communication times.
class ScheduleDag {
 public:
  /// Binds to \p g; vertex and edge weights start at zero. The referenced
  /// graph must outlive this object.
  explicit ScheduleDag(const TaskGraph& g);

  const TaskGraph& graph() const { return *g_; }

  void set_vertex_time(TaskId t, double w) {
    vertex_time_[t] = w;
    cp_valid_ = false;
  }
  double vertex_time(TaskId t) const { return vertex_time_[t]; }

  void set_edge_time(EdgeId e, double w) {
    edge_time_[e] = w;
    cp_valid_ = false;
  }
  double edge_time(EdgeId e) const { return edge_time_[e]; }

  /// Adds an induced dependence src -> dst (weight 0). Must not create a
  /// cycle; pseudo-edges always point forward in schedule time, so the
  /// scheduler upholds this by construction.
  void add_pseudo_edge(TaskId src, TaskId dst);

  std::size_t num_pseudo_edges() const { return pseudo_.size(); }
  const std::vector<std::pair<TaskId, TaskId>>& pseudo_edges() const {
    return pseudo_;
  }

  /// Longest path through G' under the stored weights.
  ///
  /// Memoized: the refinement loop asks for the critical path of the same
  /// realized dag several times per round (diagnosis, termination test,
  /// look-ahead steps), so the result is cached until the next weight or
  /// pseudo-edge mutation. The cache travels with copies, so a memoized
  /// LoCBS result replays its critical path instead of recomputing it.
  CriticalPathInfo critical_path() const;

 private:
  CriticalPathInfo compute_critical_path() const;

  const TaskGraph* g_;
  std::vector<double> vertex_time_;
  std::vector<double> edge_time_;
  std::vector<std::pair<TaskId, TaskId>> pseudo_;
  // Pseudo adjacency, indexed by task.
  std::vector<std::vector<TaskId>> pseudo_out_;
  std::vector<std::vector<TaskId>> pseudo_in_;
  // Dirty-tracked critical-path cache (invalidated by every mutator).
  mutable bool cp_valid_ = false;
  mutable CriticalPathInfo cp_cache_;
};

}  // namespace locmps
