#include "schedule/timeline.hpp"

#include <algorithm>
#include <cassert>
#include "util/stats.hpp"

namespace locmps {

Timeline::Timeline(std::size_t num_procs) : busy_(num_procs) {}

void Timeline::occupy(const ProcessorSet& procs, double start, double end) {
  assert(start <= end);
  if (end <= start) return;  // zero-length bookings are no-ops
  ++epoch_;
  procs.for_each([&](ProcId q) {
    auto& v = busy_[q];
    const Interval iv{start, end};
    // Frontier fast path: most bookings extend the chart, so they land at
    // the back without a search.
    if (v.empty() || v.back().start < start) {
      assert(v.empty() || v.back().end <= start + 1e-9);
      v.push_back(iv);
      return;
    }
    auto it = std::upper_bound(
        v.begin(), v.end(), iv,
        [](const Interval& a, const Interval& b) { return a.start < b.start; });
    assert((it == v.end() || iv.end <= it->start + 1e-9) &&
           (it == v.begin() || std::prev(it)->end <= iv.start + 1e-9));
    v.insert(it, iv);
  });
}

void Timeline::release(const ProcessorSet& procs, double start, double end) {
  if (end <= start) return;  // zero-length bookings were never stored
  ++epoch_;
  procs.for_each([&](ProcId q) {
    auto& v = busy_[q];
    const Interval iv{start, end};
    auto it = std::lower_bound(
        v.begin(), v.end(), iv,
        [](const Interval& a, const Interval& b) { return a.start < b.start; });
    // Exact identity lookup: a release must name bounds bit-equal to the
    // booking that stored them (callers pass back the booked values, never
    // recomputed ones), so tolerance matching would be a bug mask.
    assert(it != v.end() && it->start == start &&  // LINT-ALLOW(float-eq)
           it->end == end);                        // LINT-ALLOW(float-eq)
    if (it != v.end() && it->start == start &&  // LINT-ALLOW(float-eq)
        it->end == end)                         // LINT-ALLOW(float-eq)
      v.erase(it);
  });
}

bool Timeline::is_free(ProcId q, double start, double end) const {
  const auto& v = busy_[q];
  // First interval ending after `start` is the only one that can overlap
  // [start, end): everything before it ended by `start`, everything after
  // it starts no earlier than it does.
  auto it = std::upper_bound(
      v.begin(), v.end(), start,
      [](double x, const Interval& iv) { return x < iv.end; });
  return it == v.end() || it->start >= end;
}

double Timeline::free_until(ProcId q, double t) const {
  const auto& v = busy_[q];
  // First interval with start > t; the previous one must have ended by t.
  auto it = std::upper_bound(
      v.begin(), v.end(), t,
      [](double x, const Interval& iv) { return x < iv.start; });
  if (it != v.begin() && std::prev(it)->end > t) return -1.0;  // busy at t
  return it == v.end() ? kForever : it->start;
}

double Timeline::latest_free_time(ProcId q) const {
  const auto& v = busy_[q];
  return v.empty() ? 0.0 : v.back().end;
}

std::vector<double> Timeline::candidate_times(double from) const {
  std::vector<double> times{from};
  for (const auto& v : busy_)
    for (const Interval& iv : v)
      if (iv.end > from) times.push_back(iv.end);
  std::sort(times.begin(), times.end(), total_less);
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

std::vector<Timeline::Hole> Timeline::holes(ProcId q, double horizon) const {
  std::vector<Hole> out;
  if (horizon <= 0.0) return out;
  double cursor = 0.0;
  for (const Interval& iv : busy_[q]) {
    if (iv.start >= horizon) break;
    if (iv.start > cursor) out.push_back(Hole{cursor, iv.start});
    cursor = std::max(cursor, std::min(iv.end, horizon));
  }
  if (cursor < horizon) out.push_back(Hole{cursor, horizon});
  return out;
}

std::vector<Timeline::FreeProc> Timeline::available_at(double t) const {
  std::vector<FreeProc> out;
  available_at(t, out);
  return out;
}

void Timeline::available_at(double t, std::vector<FreeProc>& out) const {
  out.clear();
  out.reserve(busy_.size());
  for (ProcId q = 0; q < busy_.size(); ++q) {
    const double until = free_until(q, t);
    if (until >= 0.0) out.push_back(FreeProc{q, until});
  }
}

void Timeline::Sweep::available_at(double t, std::vector<FreeProc>& out) {
  const Timeline& tl = *tl_;
  const std::size_t P = tl.num_procs();
  if (epoch_ != tl.epoch_ || t < last_t_) {
    // Mutation or non-monotone probe: re-seek every cursor to the first
    // interval ending after t (the only interval that can cover t).
    for (ProcId q = 0; q < P; ++q) {
      const auto& v = tl.busy_[q];
      idx_[q] = static_cast<std::uint32_t>(
          std::upper_bound(v.begin(), v.end(), t,
                           [](double x, const Interval& iv) {
                             return x < iv.end;
                           }) -
          v.begin());
    }
    epoch_ = tl.epoch_;
  }
  last_t_ = t;
  out.clear();
  out.reserve(P);
  for (ProcId q = 0; q < P; ++q) {
    const auto& v = tl.busy_[q];
    std::uint32_t i = idx_[q];
    while (i < v.size() && v[i].end <= t) ++i;
    idx_[q] = i;
    if (i == v.size()) {
      out.push_back(FreeProc{q, kForever});
    } else if (v[i].start > t) {
      out.push_back(FreeProc{q, v[i].start});
    }
    // else: v[i].start <= t < v[i].end — busy, matching free_until < 0.
  }
}

}  // namespace locmps
