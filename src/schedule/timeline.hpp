#pragma once
/// \file timeline.hpp
/// Processor-availability bookkeeping for backfill scheduling.
///
/// Parallel job scheduling is a 2-D packing problem (time x processors,
/// Section III-F). The Timeline records the busy intervals of every
/// processor and answers the two queries backfilling needs:
///  * which "holes" (idle windows) exist at or after a given time, and
///  * which processors are free over a candidate window and until when.
/// The no-backfill variant (Fig 6) only consults latest_free_time().
///
/// Storage is an augmented sorted-interval structure: per-processor
/// disjoint busy intervals kept sorted by start (so end times are sorted
/// too), with an append fast path for the common frontier booking, a
/// mutation epoch, and a monotone Sweep cursor that answers the hole
/// scan's ascending availability queries in amortized O(1) per processor
/// instead of a binary search per probe instant (docs/incremental.md).
/// Every query keeps the exact semantics of the original linear scan —
/// the Timeline property-fuzz suite (tests/test_timeline.cpp) checks each
/// against a naive reference implementation across hundreds of seeds.

#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/processor_set.hpp"

namespace locmps {

/// Positive infinity used for "free forever".
inline constexpr double kForever = std::numeric_limits<double>::infinity();

/// Busy-interval timetable over a fixed set of processors.
class Timeline {
 public:
  explicit Timeline(std::size_t num_procs);

  std::size_t num_procs() const { return busy_.size(); }

  /// Marks \p procs busy during [start, end). Windows on one processor must
  /// not overlap (the scheduler only books verified-free windows; checked
  /// by assertion in debug builds).
  void occupy(const ProcessorSet& procs, double start, double end);

  /// Reverses a prior occupy(): erases the booking [start, end) from every
  /// processor in \p procs. The exact interval must have been booked
  /// (bookings are never split or merged, so it survives verbatim);
  /// asserted in debug builds, a per-processor no-op when absent in
  /// release builds.
  void release(const ProcessorSet& procs, double start, double end);

  /// True when \p q is idle throughout [start, end).
  [[nodiscard]] bool is_free(ProcId q, double start, double end) const;

  /// If \p q is idle at time \p t: the time at which it next becomes busy
  /// (kForever if never). If busy at \p t: returns a negative value.
  [[nodiscard]] double free_until(ProcId q, double t) const;

  /// Latest time at which \p q ceases to be busy (0 if never booked). The
  /// processor is guaranteed free from this time on.
  [[nodiscard]] double latest_free_time(ProcId q) const;

  /// Candidate hole-start times at or after \p from: \p from itself plus
  /// every busy-interval end time > from, sorted ascending and deduplicated.
  /// Availability only changes at these instants, so backfill need only
  /// probe them.
  [[nodiscard]] std::vector<double> candidate_times(double from) const;

  /// A processor available at some probe time, with its free-until horizon.
  struct FreeProc {
    ProcId proc;
    double until;  ///< next busy start, or kForever
  };

  /// All processors idle at time \p t, each with its free-until horizon.
  [[nodiscard]] std::vector<FreeProc> available_at(double t) const;

  /// Allocation-free variant for hot loops: fills \p out.
  void available_at(double t, std::vector<FreeProc>& out) const;

  /// An idle window on one processor.
  struct Hole {
    double start;
    double end;
  };

  /// Idle windows of processor \p q within [0, horizon), in time order:
  /// the gap before the first booking, every gap between bookings, and the
  /// trailing gap up to \p horizon. Zero-length gaps (abutting bookings)
  /// are not reported; bookings are clamped to the horizon, so a booking
  /// ending exactly at \p horizon produces no trailing hole. A fully
  /// packed timeline yields an empty vector, as does horizon <= 0.
  [[nodiscard]] std::vector<Hole> holes(ProcId q, double horizon) const;

  /// Monotone availability cursor over the timeline.
  ///
  /// The backfill hole scan probes instants in ascending order; a Sweep
  /// remembers, per processor, the first busy interval ending after the
  /// last probe and only advances it, so a whole ascending scan costs
  /// O(P + intervals) instead of O(P log I) per probe. Any timeline
  /// mutation (detected through the epoch counter) or a non-monotone
  /// query transparently re-seeks, so results are always identical to
  /// Timeline::available_at.
  class Sweep {
   public:
    explicit Sweep(const Timeline& tl) : tl_(&tl), idx_(tl.num_procs(), 0) {}

    /// Same result as tl.available_at(t, out).
    void available_at(double t, std::vector<FreeProc>& out);

   private:
    const Timeline* tl_;
    std::uint64_t epoch_ = ~0ull;  // forces the first call to seek
    double last_t_ = -kForever;
    std::vector<std::uint32_t> idx_;  // per proc: first interval end > t
  };

 private:
  struct Interval {
    double start;
    double end;
  };
  // Per-processor busy intervals kept sorted by start; disjointness makes
  // the end times sorted as well (the invariant the Sweep cursor rides).
  std::vector<std::vector<Interval>> busy_;
  // Bumped by every occupy()/release() so cursors know to re-seek.
  std::uint64_t epoch_ = 0;
};

}  // namespace locmps
