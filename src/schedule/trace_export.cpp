#include "schedule/trace_export.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace locmps {

namespace {

/// Minimal JSON string escaping (names are library-generated but may
/// contain arbitrary characters when graphs are loaded from files).
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 4);
  for (const char ch : in) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TaskGraph& g,
                        const Schedule& s, double time_scale) {
  if (!s.complete())
    throw std::invalid_argument("write_chrome_trace: incomplete schedule");
  os << "{\"traceEvents\":[";
  bool first = true;
  auto slice = [&](const std::string& name, ProcId proc, double from,
                   double to, TaskId t, std::size_t np) {
    if (to <= from) return;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(name)
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << proc
       << ",\"ts\":" << from * time_scale
       << ",\"dur\":" << (to - from) * time_scale
       << ",\"args\":{\"task\":" << t << ",\"np\":" << np << "}}";
  };
  for (TaskId t = 0; t < s.num_tasks(); ++t) {
    const Placement& p = s.at(t);
    const std::string& name = g.task(t).name;
    p.procs.for_each([&](ProcId q) {
      slice("recv:" + name, q, p.busy_from, p.start, t, p.np());
      slice(name, q, p.start, p.finish, t, p.np());
    });
  }
  // Name the processor rows.
  for (ProcId q = 0; q < s.num_procs(); ++q) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << q
       << ",\"args\":{\"name\":\"P" << q << "\"}}";
  }
  os << "]}";
}

std::string chrome_trace(const TaskGraph& g, const Schedule& s,
                         double time_scale) {
  std::ostringstream os;
  write_chrome_trace(os, g, s, time_scale);
  return os.str();
}

}  // namespace locmps
