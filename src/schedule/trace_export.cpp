#include "schedule/trace_export.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/events.hpp"

namespace locmps {

namespace {

using obs::json_escape;

/// Emits the planner process: one thread per phase timer (spans as "X"
/// slices) and one Perfetto counter track per sample series. All planner
/// times are wall-clock seconds since the metrics epoch, scaled to
/// microseconds.
void write_planner_track(std::ostream& os, bool& first,
                         const obs::MetricsSnapshot& planner) {
  constexpr double kScale = 1e6;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };
  comma();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"planner\"}}";
  int tid = 0;
  for (const obs::TimerStats& timer : planner.timers) {
    comma();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << json_escape(timer.name) << "\"}}";
    for (const obs::TimerSpan& span : timer.spans) {
      const double dur = span.end_s - span.begin_s;
      if (dur < 0.0) continue;  // clock skew guard; never emit negative
      comma();
      os << "{\"name\":\"" << json_escape(timer.name)
         << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
         << ",\"ts\":" << span.begin_s * kScale << ",\"dur\":" << dur * kScale
         << "}";
    }
    ++tid;
  }
  for (const obs::SeriesStats& series : planner.series) {
    for (const obs::SamplePoint& pt : series.points) {
      comma();
      os << "{\"name\":\"" << json_escape(series.name)
         << "\",\"ph\":\"C\",\"pid\":1,\"ts\":" << pt.t_s * kScale
         << ",\"args\":{\"value\":" << pt.value << "}}";
    }
  }
}

/// Emits the session profiler's span intervals as one planner thread of
/// nested "X" slices (tid \p tid following the timer threads). Perfetto
/// nests slices on a thread by time containment, which the profiler's
/// strict open/close discipline guarantees.
void write_profile_track(std::ostream& os, bool& first,
                         const obs::ProfileSnapshot& profile, int tid) {
  constexpr double kScale = 1e6;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };
  comma();
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
     << ",\"args\":{\"name\":\"profile.spans\"}}";
  for (const obs::ProfileInterval& iv : profile.intervals) {
    const double dur = iv.end_s - iv.begin_s;
    if (dur < 0.0) continue;  // clock skew guard; never emit negative
    comma();
    os << "{\"name\":\"" << json_escape(iv.name)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
       << ",\"ts\":" << iv.begin_s * kScale << ",\"dur\":" << dur * kScale
       << ",\"args\":{\"depth\":" << iv.depth << "}}";
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TaskGraph& g,
                        const Schedule& s,
                        const obs::MetricsSnapshot* planner,
                        const obs::ProfileSnapshot* profile,
                        double time_scale) {
  if (!s.complete())
    throw std::invalid_argument("write_chrome_trace: incomplete schedule");
  os << "{\"traceEvents\":[";
  bool first = true;
  auto slice = [&](const std::string& name, ProcId proc, double from,
                   double to, TaskId t, std::size_t np) {
    if (to <= from) return;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(name)
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << proc
       << ",\"ts\":" << from * time_scale
       << ",\"dur\":" << (to - from) * time_scale
       << ",\"args\":{\"task\":" << t << ",\"np\":" << np << "}}";
  };
  for (TaskId t = 0; t < s.num_tasks(); ++t) {
    const Placement& p = s.at(t);
    const std::string& name = g.task(t).name;
    p.procs.for_each([&](ProcId q) {
      slice("recv:" + name, q, p.busy_from, p.start, t, p.np());
      slice(name, q, p.start, p.finish, t, p.np());
    });
  }
  // Name the processor rows.
  for (ProcId q = 0; q < s.num_procs(); ++q) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << q
       << ",\"args\":{\"name\":\"P" << q << "\"}}";
  }
  if (planner != nullptr || (profile != nullptr && !profile->empty())) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"schedule\"}}";
    int tid = 0;
    if (planner != nullptr) {
      write_planner_track(os, first, *planner);
      tid = static_cast<int>(planner->timers.size());
    } else {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
            "\"args\":{\"name\":\"planner\"}}";
    }
    if (profile != nullptr && !profile->empty())
      write_profile_track(os, first, *profile, tid);
  }
  os << "]}";
}

void write_chrome_trace(std::ostream& os, const TaskGraph& g,
                        const Schedule& s,
                        const obs::MetricsSnapshot* planner,
                        double time_scale) {
  write_chrome_trace(os, g, s, planner, nullptr, time_scale);
}

void write_chrome_trace(std::ostream& os, const TaskGraph& g,
                        const Schedule& s, double time_scale) {
  write_chrome_trace(os, g, s, nullptr, nullptr, time_scale);
}

std::string chrome_trace(const TaskGraph& g, const Schedule& s,
                         double time_scale) {
  std::ostringstream os;
  write_chrome_trace(os, g, s, nullptr, time_scale);
  return os.str();
}

std::string chrome_trace(const TaskGraph& g, const Schedule& s,
                         const obs::MetricsSnapshot& planner,
                         double time_scale) {
  std::ostringstream os;
  write_chrome_trace(os, g, s, &planner, time_scale);
  return os.str();
}

}  // namespace locmps
