#pragma once
/// \file trace_export.hpp
/// Chrome-trace export of schedules: writes the Trace Event Format JSON
/// that chrome://tracing (or Perfetto UI) renders as an interactive
/// timeline — one row per processor, one slice per task occupancy, with
/// allocation details in the slice arguments. A practical complement to
/// the ASCII Gantt for large schedules.

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"
#include "schedule/schedule.hpp"

namespace locmps {

/// Writes \p s as Trace Event Format JSON. Times are exported in
/// microseconds (the format's unit); \p time_scale converts schedule
/// seconds to exported microseconds (default 1e6 = real seconds).
/// A leading busy window (busy_from < start, no-overlap redistributions)
/// is emitted as a separate "recv:" slice.
void write_chrome_trace(std::ostream& os, const TaskGraph& g,
                        const Schedule& s, double time_scale = 1e6);

/// Convenience: returns the JSON as a string.
std::string chrome_trace(const TaskGraph& g, const Schedule& s,
                         double time_scale = 1e6);

}  // namespace locmps
