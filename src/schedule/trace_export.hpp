#pragma once
/// \file trace_export.hpp
/// Chrome-trace export of schedules: writes the Trace Event Format JSON
/// that chrome://tracing (or Perfetto UI) renders as an interactive
/// timeline — one row per processor, one slice per task occupancy, with
/// allocation details in the slice arguments. A practical complement to
/// the ASCII Gantt for large schedules.
///
/// A second, optional track renders the *planner's* own telemetry (an
/// obs::MetricsSnapshot from an instrumented run): each phase timer
/// becomes a thread of "X" slices and each sample series a Perfetto
/// counter track, so one file shows both what was scheduled and how the
/// scheduler spent its time deciding (docs/observability.md).

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "schedule/schedule.hpp"

namespace locmps {

/// Writes \p s as Trace Event Format JSON. Times are exported in
/// microseconds (the format's unit); \p time_scale converts schedule
/// seconds to exported microseconds (default 1e6 = real seconds).
/// A leading busy window (busy_from < start, no-overlap redistributions)
/// is emitted as a separate "recv:" slice.
///
/// When \p planner is non-null its timers/series are emitted under a
/// separate "planner" process (pid 1). Planner times are wall-clock
/// seconds since the metrics epoch, always scaled by 1e6 — the schedule
/// and planner tracks sit on different clocks but load side by side.
void write_chrome_trace(std::ostream& os, const TaskGraph& g,
                        const Schedule& s,
                        const obs::MetricsSnapshot* planner,
                        double time_scale = 1e6);

/// Full overload: additionally renders \p profile (a session profiler's
/// ProfileSnapshot) as one more planner thread, "profile.spans", whose
/// "X" slices are the recorded span intervals. Spans nest properly in
/// time, so Perfetto stacks them into the planner's flamegraph-style
/// hierarchy. Interval times are seconds since the profiler's epoch
/// (the same convention as the timer spans).
void write_chrome_trace(std::ostream& os, const TaskGraph& g,
                        const Schedule& s,
                        const obs::MetricsSnapshot* planner,
                        const obs::ProfileSnapshot* profile,
                        double time_scale = 1e6);

/// Schedule-only overload (no planner track).
void write_chrome_trace(std::ostream& os, const TaskGraph& g,
                        const Schedule& s, double time_scale = 1e6);

/// Convenience: returns the JSON as a string.
std::string chrome_trace(const TaskGraph& g, const Schedule& s,
                         double time_scale = 1e6);

/// Convenience with a planner track.
std::string chrome_trace(const TaskGraph& g, const Schedule& s,
                         const obs::MetricsSnapshot& planner,
                         double time_scale = 1e6);

}  // namespace locmps
