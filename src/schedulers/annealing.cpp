#include "schedulers/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace locmps {

SchedulerResult AnnealingScheduler::schedule(const TaskGraph& g,
                                             const Cluster& cluster) const {
  const std::size_t n = g.num_tasks();
  const std::size_t P = cluster.processors;
  const CommModel comm(cluster);

  std::vector<std::size_t> cap(n);
  for (TaskId t = 0; t < n; ++t)
    cap[t] = std::min(P, g.task(t).profile.pbest());

  Allocation best_alloc(n, 1);
  double best = locbs(g, best_alloc, comm, opt_.locbs).makespan;
  std::size_t evals = 1;

  Rng rng(opt_.seed);
  const std::size_t per_chain =
      std::max<std::size_t>(1, opt_.iterations /
                                   std::max<std::size_t>(1, opt_.restarts));
  const double cool = std::pow(opt_.final_temp / opt_.initial_temp,
                               1.0 / static_cast<double>(per_chain));

  for (std::size_t chain = 0; chain < std::max<std::size_t>(1, opt_.restarts);
       ++chain) {
    // Chains start from diverse corners: task-parallel, data-parallel,
    // then random allocations.
    Allocation cur(n, 1);
    if (chain == 1) {
      for (TaskId t = 0; t < n; ++t) cur[t] = cap[t];
    } else if (chain >= 2) {
      for (TaskId t = 0; t < n; ++t)
        cur[t] = static_cast<std::size_t>(
            rng.uniform_int(1, static_cast<std::int64_t>(cap[t])));
    }
    double cur_mk = locbs(g, cur, comm, opt_.locbs).makespan;
    ++evals;
    if (cur_mk < best) {
      best = cur_mk;
      best_alloc = cur;
    }

    double temp = opt_.initial_temp;
    for (std::size_t it = 0; it < per_chain; ++it, temp *= cool) {
      const TaskId t = static_cast<TaskId>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const bool up = rng.bernoulli(0.5);
      const std::size_t old = cur[t];
      if (up && cur[t] < cap[t])
        ++cur[t];
      else if (!up && cur[t] > 1)
        --cur[t];
      else
        continue;
      const double mk = locbs(g, cur, comm, opt_.locbs).makespan;
      ++evals;
      const double rel = (mk - cur_mk) / std::max(cur_mk, 1e-12);
      if (rel <= 0.0 || rng.uniform() < std::exp(-rel / temp)) {
        cur_mk = mk;  // accept
        if (mk < best) {
          best = mk;
          best_alloc = cur;
        }
      } else {
        cur[t] = old;  // reject
      }
    }
  }

  LocBSResult run = locbs(g, best_alloc, comm, opt_.locbs);
  SchedulerResult out;
  out.schedule = std::move(run.schedule);
  out.allocation = std::move(best_alloc);
  out.estimated_makespan = run.makespan;
  out.iterations = evals;
  return out;
}

}  // namespace locmps
