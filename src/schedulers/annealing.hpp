#pragma once
/// \file annealing.hpp
/// Simulated-annealing reference optimizer over the allocation space.
///
/// Not a practical scheduler (it spends orders of magnitude more time
/// than LoC-MPS) but a quality yardstick: it searches allocations
/// np(t) in [1, min(P, Pbest)] with single +/-1 moves, realizing each
/// candidate with LoCBS, and keeps the best schedule ever seen. On small
/// instances it closely approaches the best LoCBS-realizable makespan,
/// bounding how much of LoC-MPS's gap is search (vs model) error.

#include "schedulers/locbs.hpp"
#include "schedulers/scheduler.hpp"

namespace locmps {

/// Annealing-search knobs.
struct AnnealingOptions {
  std::size_t iterations = 4000;   ///< total proposal count
  double initial_temp = 0.20;     ///< relative makespan acceptance scale
  double final_temp = 0.002;      ///< geometric cooling target
  std::uint64_t seed = 1;
  std::size_t restarts = 2;       ///< independent chains (best kept)
  LocBSOptions locbs;             ///< realization options
};

/// The annealing reference scheduler.
class AnnealingScheduler final : public Scheduler {
 public:
  explicit AnnealingScheduler(AnnealingOptions opt = {}) : opt_(opt) {}

  std::string name() const override { return "SA"; }

  SchedulerResult schedule(const TaskGraph& g,
                           const Cluster& cluster) const override;

 private:
  AnnealingOptions opt_;
};

}  // namespace locmps
