#include "schedulers/cpa.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "schedulers/list_scheduler.hpp"

namespace locmps {

SchedulerResult CPAScheduler::schedule(const TaskGraph& g,
                                       const Cluster& cluster) const {
  const std::size_t n = g.num_tasks();
  const std::size_t P = cluster.processors;
  const CommModel comm(cluster);

  Allocation np(n, 1);
  auto vw = [&](TaskId t) { return g.task(t).profile.time(np[t]); };
  auto ew = [&](EdgeId e) {
    const Edge& ed = g.edge(e);
    return comm.edge_cost(ed.volume_bytes, np[ed.src], np[ed.dst]);
  };

  std::size_t iterations = 0;
  const std::size_t hard_cap = n * P + 16;
  while (iterations < hard_cap) {
    ++iterations;
    const Levels lv = compute_levels(g, vw, ew);
    const double L = lv.critical_path_length();
    double area = 0.0;
    for (TaskId t : g.task_ids())
      area += static_cast<double>(np[t]) * g.task(t).profile.time(np[t]);
    const double TA = area / static_cast<double>(P);
    if (L <= TA) break;  // balance reached

    // Critical-path task with the best reduction of et/np.
    const double tol = 1e-9 * std::max(1.0, L);
    TaskId best = kNoTask;
    double best_gain = 0.0;
    for (TaskId t : g.task_ids()) {
      if (lv.top[t] + lv.bottom[t] < L - tol || np[t] >= P) continue;
      const double cur = g.task(t).profile.time(np[t]) /
                         static_cast<double>(np[t]);
      const double nxt = g.task(t).profile.time(np[t] + 1) /
                         static_cast<double>(np[t] + 1);
      const double gain = cur - nxt;
      if (gain > best_gain) {
        best_gain = gain;
        best = t;
      }
    }
    if (best == kNoTask) break;  // no critical task benefits from widening
    np[best] += 1;
  }

  ListScheduleResult ls = list_schedule(g, np, comm);
  SchedulerResult out;
  out.schedule = std::move(ls.schedule);
  out.allocation = std::move(np);
  out.estimated_makespan = ls.makespan;
  out.iterations = iterations;
  return out;
}

}  // namespace locmps
