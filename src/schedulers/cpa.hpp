#pragma once
/// \file cpa.hpp
/// CPA — Critical Path and Allocation (Radulescu & van Gemund, ICPP 2001,
/// ref [6]).
///
/// A low-cost two-phase scheme. Phase 1 decides allocations only: while the
/// critical-path length exceeds the average processor-area bound
/// TA = (1/P) * sum_t np(t) * et(t, np(t)), the critical-path task whose
/// widening most reduces its area contribution et/np gains one processor.
/// Phase 2 maps tasks to concrete processors with plain list scheduling.
/// The decoupling of the phases is what limits CPA's schedule quality.

#include "schedulers/scheduler.hpp"

namespace locmps {

/// The CPA baseline.
class CPAScheduler final : public Scheduler {
 public:
  std::string name() const override { return "CPA"; }

  SchedulerResult schedule(const TaskGraph& g,
                           const Cluster& cluster) const override;
};

}  // namespace locmps
