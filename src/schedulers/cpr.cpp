#include "schedulers/cpr.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "schedulers/list_scheduler.hpp"

namespace locmps {

namespace {

/// Tasks lying on a critical path of g under the allocation-dependent
/// weights: those with topL + bottomL equal to the CP length.
std::vector<TaskId> critical_tasks(const TaskGraph& g,
                                   const Allocation& np,
                                   const CommModel& comm) {
  auto vw = [&](TaskId t) { return g.task(t).profile.time(np[t]); };
  auto ew = [&](EdgeId e) {
    const Edge& ed = g.edge(e);
    return comm.edge_cost(ed.volume_bytes, np[ed.src], np[ed.dst]);
  };
  const Levels lv = compute_levels(g, vw, ew);
  const double L = lv.critical_path_length();
  const double tol = 1e-9 * std::max(1.0, L);
  std::vector<TaskId> out;
  for (TaskId t : g.task_ids())
    if (lv.top[t] + lv.bottom[t] >= L - tol) out.push_back(t);
  return out;
}

}  // namespace

SchedulerResult CPRScheduler::schedule(const TaskGraph& g,
                                       const Cluster& cluster) const {
  const std::size_t n = g.num_tasks();
  const std::size_t P = cluster.processors;
  const CommModel comm(cluster);

  std::vector<std::size_t> cap(n);
  for (TaskId t = 0; t < n; ++t)
    cap[t] = std::min(P, g.task(t).profile.pbest());

  Allocation np(n, 1);
  ListScheduleResult best = list_schedule(g, np, comm);
  std::vector<char> blocked(n, 0);
  std::size_t iterations = 0;

  // Each pass either commits one improving widening (and unblocks nothing —
  // CPR never retries rejected tasks) or blocks one candidate; the loop is
  // bounded by n * P widenings plus n blockings.
  const std::size_t hard_cap = n * P + n + 16;
  while (iterations < hard_cap) {
    ++iterations;
    std::vector<TaskId> cand = critical_tasks(g, np, comm);
    std::erase_if(cand, [&](TaskId t) {
      return blocked[t] || np[t] >= cap[t];
    });
    if (cand.empty()) break;
    // Highest execution-time gain first.
    auto gain = [&](TaskId t) {
      return g.task(t).profile.time(np[t]) - g.task(t).profile.time(np[t] + 1);
    };
    TaskId t = cand[0];
    for (TaskId c : cand)
      if (gain(c) > gain(t)) t = c;

    np[t] += 1;
    ListScheduleResult trial = list_schedule(g, np, comm);
    if (trial.makespan < best.makespan) {
      best = std::move(trial);
    } else {
      np[t] -= 1;
      blocked[t] = 1;
    }
  }

  SchedulerResult out;
  out.schedule = std::move(best.schedule);
  out.allocation = std::move(np);
  out.estimated_makespan = best.makespan;
  out.iterations = iterations;
  return out;
}

}  // namespace locmps
