#pragma once
/// \file cpr.hpp
/// CPR — Critical Path Reduction (Radulescu et al., IPDPS 2001, ref [5]).
///
/// A one-step mixed-parallel scheme: starting from one processor per task,
/// CPR repeatedly tries to widen a critical-path task by one processor,
/// re-schedules with plain list scheduling, commits the change only when
/// the makespan improves, and stops when no critical-path task improves
/// the schedule. It models communication with the aggregate-bandwidth
/// estimate but is neither locality conscious nor backfilling.

#include "schedulers/scheduler.hpp"

namespace locmps {

/// The CPR baseline.
class CPRScheduler final : public Scheduler {
 public:
  std::string name() const override { return "CPR"; }

  SchedulerResult schedule(const TaskGraph& g,
                           const Cluster& cluster) const override;
};

}  // namespace locmps
