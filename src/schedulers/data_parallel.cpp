#include "schedulers/data_parallel.hpp"

#include "graph/algorithms.hpp"

namespace locmps {

SchedulerResult DataParallelScheduler::schedule(
    const TaskGraph& g, const Cluster& cluster) const {
  const std::size_t P = cluster.processors;
  SchedulerResult out;
  out.schedule = Schedule(g.num_tasks(), P);
  out.allocation.assign(g.num_tasks(), P);
  const ProcessorSet everyone = ProcessorSet::all(P);
  double clock = 0.0;
  for (TaskId t : topological_order(g)) {
    const double et = g.task(t).profile.time(P);
    out.schedule.place(t, clock, clock, clock + et, everyone);
    clock += et;
  }
  out.estimated_makespan = clock;
  out.iterations = 1;
  return out;
}

}  // namespace locmps
