#pragma once
/// \file data_parallel.hpp
/// DATA — the pure data-parallel baseline: every task runs on all P
/// processors, tasks execute in topological sequence. With a block-cyclic
/// distribution over the full machine the producer and consumer layouts
/// coincide, so DATA incurs no redistribution cost (Section IV).

#include "schedulers/scheduler.hpp"

namespace locmps {

/// The pure data-parallel scheme.
class DataParallelScheduler final : public Scheduler {
 public:
  std::string name() const override { return "DATA"; }

  SchedulerResult schedule(const TaskGraph& g,
                           const Cluster& cluster) const override;
};

}  // namespace locmps
