#include "schedulers/icaslb.hpp"

#include "schedule/event_sim.hpp"

namespace locmps {

SchedulerResult ICASLBScheduler::schedule(const TaskGraph& g,
                                          const Cluster& cluster) const {
  // Plan as if communication were free...
  LocMPSScheduler blind(opt_);
  blind.attach_observability(observability());
  SchedulerResult res = blind.schedule(g, cluster);

  // ...then live with the transfers the plan actually incurs: keep the
  // placements and per-processor order, re-derive the times.
  const CommModel comm(cluster);
  SimOptions sim;
  sim.runtime_noise = 0.0;
  sim.single_port = false;
  // iCASLB has no locality orchestration: transfers between differing
  // layouts move the full volume.
  sim.locality_volumes = false;
  SimResult executed = simulate_execution(g, res.schedule, comm, sim);
  res.schedule = std::move(executed.executed);
  res.estimated_makespan = executed.makespan;
  return res;
}

}  // namespace locmps
