#pragma once
/// \file icaslb.hpp
/// iCASLB — the authors' prior integrated allocation-and-scheduling scheme
/// (ref [4]), which assumes inter-task communication and redistribution
/// costs are negligible.
///
/// Reproduced here as LoC-MPS run communication-blind: allocation decisions
/// never see edge weights, the backfill scheduler neither charges
/// redistribution time nor favours data locality. The resulting placements
/// and per-processor order are then re-timed under the *real* communication
/// model, which is how the scheme's makespan degrades as CCR grows (Fig 5).

#include "schedulers/loc_mps.hpp"
#include "schedulers/scheduler.hpp"

namespace locmps {

/// The iCASLB baseline.
class ICASLBScheduler final : public Scheduler {
 public:
  explicit ICASLBScheduler(LocMPSOptions opt = {}) : opt_(opt) {
    opt_.locbs.comm_blind = true;
  }

  std::string name() const override { return "iCASLB"; }

  SchedulerResult schedule(const TaskGraph& g,
                           const Cluster& cluster) const override;

 private:
  LocMPSOptions opt_;
};

}  // namespace locmps
