#pragma once
/// \file incremental.hpp
/// Incremental-replanning state shared by the LoCBS evaluations of one
/// refinement stream (docs/incremental.md).
///
/// The LoC-MPS refinement loop evaluates hundreds of allocations that
/// differ from an earlier one by a single widened task. LoCBS is a
/// deterministic list scheduler, so as long as the priority argmax picks
/// the same task with the same processor count as a recorded evaluation,
/// the whole placement — timeline state, finish events, realized G'
/// weights, pseudo-edges, even the per-placement counters — is provably
/// identical, and the recorded step can be replayed without re-scanning a
/// single hole. The first divergent pick marks the start of the dirty
/// region; from there the scan runs in full. The from-scratch path
/// (LocMPSOptions::incremental = false) never consults this context and
/// serves as the differential-equivalence oracle (tests/test_incremental).
///
/// One IncrementalContext serves one evaluation stream: the sequential
/// planner owns one, and every speculative probe owns its own, so no
/// locking is needed and replay decisions stay bit-deterministic.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/processor_set.hpp"
#include "graph/task_graph.hpp"
#include "schedule/schedule_dag.hpp"
#include "schedulers/scheduler.hpp"

namespace locmps {

/// One committed placement of a recorded LoCBS pass: everything the
/// commit wrote (schedule, timeline, G' weights, pseudo-edges) plus the
/// per-placement telemetry the scan produced, so a replayed step leaves
/// counters bit-identical to a re-scan. Steps are immutable once recorded
/// and shared between successive records by pointer, so replaying a long
/// prefix costs one refcount bump per step instead of a deep copy.
struct ReplayStep {
  TaskId task = kNoTask;
  std::size_t np = 0;  ///< processor count at record time (validity key)
  double busy_from = 0.0;
  double start = 0.0;
  double finish = 0.0;
  std::vector<ProcId> procs;  ///< ascending
  ProcessorSet pset;
  // Realized G' weights of this task's in-edges, and the pseudo-edges the
  // commit added (predecessor side; the destination is `task`).
  std::vector<std::pair<EdgeId, double>> edge_times;
  std::vector<TaskId> pseudo_preds;
  // Per-placement telemetry the scan would have produced.
  std::uint32_t holes_probed = 0;
  std::uint8_t subset = 0;  ///< 0 = locality-first win, 1 = horizon-first
  bool pruned = false;
  bool backfilled = false;
  double local_bytes = 0.0;
  double remote_bytes = 0.0;
  double cost_evals = 0.0;  ///< comm.cost_evals delta of this placement
};

/// A full recorded LoCBS evaluation: the allocation it ran under, the
/// static priorities it computed (so a later evaluation can prove which
/// argmax picks cannot have changed), and its placement steps in commit
/// order (frozen-prefix tasks excluded — the prefix is constant across a
/// stream).
struct ReplayRecord {
  Allocation np;
  std::shared_ptr<const std::vector<double>> prio;
  std::vector<std::shared_ptr<const ReplayStep>> steps;
};

/// Dirty-region cache of the allocation-dependent LoCBS arrays (execution
/// times, edge costs, bottom levels, priorities). Successive evaluations
/// of a stream differ in a handful of np entries, so only the tasks and
/// edges in the changed region — and the ancestors their bottom levels
/// propagate to — are recomputed. Every recompute uses the exact
/// arithmetic of the from-scratch pass, and untouched entries are
/// by-induction bit-identical to what a full recompute would produce, so
/// the cached arrays are indistinguishable from freshly computed ones.
struct PriorityState {
  bool valid = false;
  Allocation np;
  std::vector<double> et;      ///< slack-inflated execution times
  std::vector<double> west;    ///< allocation-stage edge costs
  std::vector<double> bottom;  ///< bottom levels under (et, west)
  std::vector<double> prio;    ///< bottom + max in-edge cost
  std::vector<TaskId> order;   ///< topological order (graph-constant)
  // Per-call scratch (sized once, cleared per update).
  std::vector<char> et_changed, bottom_changed, prio_dirty, edge_seen;
};

/// Replay/memo state of one evaluation stream. Not thread-safe by design;
/// see the file comment.
class IncrementalContext {
 public:
  /// Recent evaluations kept as replay bases. Records share their step
  /// storage, so keeping a few extra bases is cheap and lets a look-ahead
  /// walk replay against the incumbent realization as well as its own
  /// previous step.
  static constexpr std::size_t kMaxRecords = 8;

  /// Dirty-region cache of the allocation-dependent arrays.
  PriorityState prio_state;

  /// The record with the longest np-compatible step prefix for \p np, or
  /// null when no record matches even its first step. The estimate only
  /// checks processor counts in recorded commit order; the actual replay
  /// additionally verifies every priority-argmax pick, so this is just a
  /// ranking heuristic — correctness never depends on it.
  const ReplayRecord* pick_record(const Allocation& np) const {
    const ReplayRecord* best = nullptr;
    std::size_t best_len = 0;
    for (const ReplayRecord& r : records_) {
      std::size_t len = 0;
      while (len < r.steps.size() &&
             np[r.steps[len]->task] == r.steps[len]->np)
        ++len;
      if (len > best_len) {
        best_len = len;
        best = &r;
      }
    }
    return best;
  }

  /// Remembers \p rec as the most recent evaluation (LRU, capped).
  void remember(ReplayRecord&& rec) {
    records_.insert(records_.begin(), std::move(rec));
    if (records_.size() > kMaxRecords) records_.pop_back();
  }

 private:
  std::vector<ReplayRecord> records_;
};

}  // namespace locmps
