#include "schedulers/list_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace locmps {

ListScheduleResult list_schedule(const TaskGraph& g, const Allocation& np,
                                 const CommModel& comm) {
  const std::size_t n = g.num_tasks();
  const std::size_t P = comm.cluster().processors;
  if (np.size() != n)
    throw std::invalid_argument("list_schedule: allocation size mismatch");

  std::vector<double> et(n);
  for (TaskId t = 0; t < n; ++t) et[t] = g.task(t).profile.time(np[t]);
  auto ecost = [&](EdgeId e) {
    const Edge& ed = g.edge(e);
    return comm.edge_cost(ed.volume_bytes, np[ed.src], np[ed.dst]);
  };
  const Levels lv =
      compute_levels(g, [&](TaskId t) { return et[t]; }, ecost);

  ListScheduleResult res{Schedule(n, P), 0.0};
  std::vector<double> free_at(P, 0.0);
  std::vector<double> ft(n, 0.0);

  std::vector<std::size_t> waiting(n);
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < n; ++t) {
    waiting[t] = g.in_degree(t);
    if (waiting[t] == 0) ready.push_back(t);
  }

  std::vector<ProcId> by_avail(P);
  while (!ready.empty()) {
    // Strict priority order: highest bottom level first.
    std::size_t pick = 0;
    for (std::size_t i = 1; i < ready.size(); ++i)
      if (lv.bottom[ready[i]] > lv.bottom[ready[pick]] ||
          (lv.bottom[ready[i]] == lv.bottom[ready[pick]] &&
           ready[i] < ready[pick]))
        pick = i;
    const TaskId t = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();

    double est = 0.0;
    for (EdgeId e : g.in_edges(t))
      est = std::max(est, ft[g.edge(e).src] + ecost(e));

    // Earliest-available np[t] processors.
    for (ProcId q = 0; q < P; ++q) by_avail[q] = q;
    std::sort(by_avail.begin(), by_avail.end(), [&](ProcId a, ProcId b) {
      if (free_at[a] != free_at[b]) return free_at[a] < free_at[b];
      return a < b;
    });
    ProcessorSet procs(P);
    double start = est;
    for (std::size_t i = 0; i < np[t]; ++i) {
      procs.insert(by_avail[i]);
      start = std::max(start, free_at[by_avail[i]]);
    }
    const double finish = start + et[t];
    procs.for_each([&](ProcId q) { free_at[q] = finish; });
    res.schedule.place(t, start, start, finish, procs);
    ft[t] = finish;

    for (EdgeId e : g.out_edges(t))
      if (--waiting[g.edge(e).dst] == 0) ready.push_back(g.edge(e).dst);
  }
  res.makespan = res.schedule.makespan();
  return res;
}

}  // namespace locmps
