#pragma once
/// \file list_scheduler.hpp
/// Plain priority-based list scheduling of parallel tasks — the scheduling
/// substrate used by the CPR and CPA baselines (refs [5], [6]).
///
/// Unlike LoCBS it is neither locality conscious nor backfilling: each
/// processor's latest free time is tracked, tasks are placed in strict
/// bottom-level priority order on the earliest-available processors, and
/// communication is charged with the placement-independent aggregate-
/// bandwidth estimate wt(e) = D / (min(np_src, np_dst) * bandwidth).

#include "network/comm_model.hpp"
#include "schedule/schedule.hpp"
#include "schedulers/scheduler.hpp"

namespace locmps {

/// Result of a list-scheduling pass.
struct ListScheduleResult {
  Schedule schedule;
  double makespan = 0.0;
};

/// Schedules \p g under allocation \p np with plain list scheduling.
ListScheduleResult list_schedule(const TaskGraph& g, const Allocation& np,
                                 const CommModel& comm);

}  // namespace locmps
