#include "schedulers/loc_mps.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <tuple>
#include <utility>

#include "graph/algorithms.hpp"

namespace locmps {

namespace {

/// The look-ahead entry point: the task or edge whose widening started the
/// current search (Alg. 1 steps 16-17 / 28-29).
struct EntryPoint {
  bool is_task = true;
  TaskId task = kNoTask;
  EdgeId edge = kNoEdge;
};

}  // namespace

SchedulerResult LocMPSScheduler::schedule(const TaskGraph& g,
                                          const Cluster& cluster) const {
  return run(g, cluster, nullptr);
}

SchedulerResult LocMPSScheduler::schedule_with_fixed(
    const TaskGraph& g, const Cluster& cluster,
    const FixedPrefix& fixed) const {
  return run(g, cluster, &fixed);
}

SchedulerResult LocMPSScheduler::run(const TaskGraph& g,
                                     const Cluster& cluster,
                                     const FixedPrefix* fixed) const {
  const std::size_t n = g.num_tasks();
  const std::size_t P = cluster.processors;
  obs::ObsContext* const obs = observability();
  obs::MetricsRegistry* const met = obs::metrics_of(obs);
  obs::ScopedTimer run_timer(met, "locmps.run");
  CommModel comm(cluster);
  if (met != nullptr)
    comm.count_evals_into(met->cell_ptr("comm.cost_evals"));
  const ConcurrencyAnalysis conc(g);

  // On a degraded cluster (faults/recovery.hpp) non-frozen tasks can only
  // be as wide as the survivor set.
  const std::size_t usable =
      (fixed != nullptr && fixed->available != nullptr)
          ? fixed->available->count()
          : P;

  // Saturation bound per task: min(P, Pbest) (Alg. 1 step 14), further
  // capped at the survivor count on a degraded cluster; frozen tasks keep
  // their committed processor count.
  Allocation best_alloc(n, 1);
  std::vector<std::size_t> cap(n);
  for (TaskId t = 0; t < n; ++t) {
    cap[t] = std::min(usable, g.task(t).profile.pbest());
    if (fixed != nullptr && fixed->is_frozen(t)) {
      best_alloc[t] = fixed->placements->at(t).np();
      cap[t] = best_alloc[t];
    }
  }
  // Widening bound for communication edges: the usable width unless frozen.
  auto ecap = [&](TaskId t) {
    return (fixed != nullptr && fixed->is_frozen(t)) ? cap[t] : usable;
  };

  LocBSResult best_run = locbs(g, best_alloc, comm, opt_.locbs, fixed, obs);
  double best_sl = best_run.makespan;
  std::size_t calls = 1;
  if (obs::wants_events(obs))
    obs->sink->emit(obs::Event("locmps.begin")
                        .with("tasks", static_cast<std::uint64_t>(n))
                        .with("procs", static_cast<std::uint64_t>(P))
                        .with("comm_aware", !opt_.locbs.comm_blind)
                        .with("initial_makespan", best_sl));
  if (met != nullptr) met->sample("locmps.best_makespan", best_sl);

  std::vector<char> marked_task(n, 0);
  std::vector<char> marked_edge(g.num_edges(), 0);

  // Chooses the best candidate task on the critical path: among the
  // top fraction by execution-time gain, the one with the lowest
  // concurrency ratio (Section III-C).
  auto pick_task = [&](const CriticalPathInfo& cp, const Allocation& np,
                       bool respect_marks) -> TaskId {
    std::vector<TaskId> cand;
    for (TaskId t : cp.tasks) {
      if (np[t] >= cap[t]) continue;
      if (respect_marks && marked_task[t]) continue;
      cand.push_back(t);
    }
    if (cand.empty()) return kNoTask;
    auto gain = [&](TaskId t) {
      return g.task(t).profile.time(np[t]) -
             g.task(t).profile.time(np[t] + 1);
    };
    std::sort(cand.begin(), cand.end(), [&](TaskId a, TaskId b) {
      const double ga = gain(a), gb = gain(b);
      if (ga != gb) return ga > gb;
      return a < b;
    });
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(opt_.candidate_top_fraction *
                         static_cast<double>(cand.size()))));
    TaskId best = cand[0];
    for (std::size_t i = 1; i < k; ++i)
      if (conc.ratio(cand[i]) < conc.ratio(best)) best = cand[i];
    return best;
  };

  // Chooses the heaviest refinable communication edge on the critical path
  // (Section III-D). Returns kNoEdge if none qualifies.
  auto pick_edge = [&](const CriticalPathInfo& cp, const ScheduleDag& dag,
                       const Allocation& np, bool respect_marks) -> EdgeId {
    EdgeId best = kNoEdge;
    double best_w = 0.0;
    for (EdgeId e : cp.edges) {
      if (e == kNoEdge) continue;  // pseudo-edge
      if (respect_marks && marked_edge[e]) continue;
      const Edge& ed = g.edge(e);
      if (np[ed.src] >= ecap(ed.src) && np[ed.dst] >= ecap(ed.dst)) continue;
      const double w = dag.edge_time(e);
      if (w > best_w) {
        best_w = w;
        best = e;
      }
    }
    return best;
  };

  // Widens the thinner endpoint of edge e (both when tied), respecting
  // each endpoint's widening bound. Returns {src widened, dst widened}.
  auto widen_edge = [&](EdgeId e, Allocation& np) -> std::pair<bool, bool> {
    const Edge& ed = g.edge(e);
    const bool src_ok = np[ed.src] < ecap(ed.src);
    const bool dst_ok = np[ed.dst] < ecap(ed.dst);
    if (np[ed.src] > np[ed.dst] && dst_ok) {
      np[ed.dst] += 1;
      return {false, true};
    }
    if (np[ed.src] < np[ed.dst] && src_ok) {
      np[ed.src] += 1;
      return {true, false};
    }
    if (dst_ok) np[ed.dst] += 1;
    if (src_ok) np[ed.src] += 1;
    return {src_ok, dst_ok};
  };

  const bool comm_aware = !opt_.locbs.comm_blind;

  // Main repeat-until loop (Alg. 1 steps 5-40).
  std::size_t round = 0;
  while (calls < opt_.max_locbs_calls) {
    ++round;
    Allocation np = best_alloc;
    const double old_sl = best_sl;
    LocBSResult cur = best_run;
    std::optional<EntryPoint> entry;
    if (obs::wants_events(obs))
      obs->sink->emit(obs::Event("locmps.lookahead_begin")
                          .with("round", static_cast<std::uint64_t>(round))
                          .with("best", best_sl));

    for (std::size_t iter = 0; iter < opt_.look_ahead_depth; ++iter) {
      CriticalPathInfo cp;
      {
        obs::ScopedTimer cp_timer(met, "locmps.critical_path");
        cp = cur.dag.critical_path();
      }
      const bool comp_dominates = !comm_aware || cp.comp_cost >= cp.comm_cost;
      const bool respect_marks = iter == 0 || opt_.marks_bind_lookahead;

      bool refined = false;
      EntryPoint ep;
      bool widened_src = false, widened_dst = false;
      // Try the dominating-cost branch first, the other as a fallback, so a
      // look-ahead step is only abandoned when nothing is refinable.
      for (int attempt = 0; attempt < 2 && !refined; ++attempt) {
        const bool task_branch = (attempt == 0) == comp_dominates;
        if (task_branch) {
          const TaskId t = pick_task(cp, np, respect_marks);
          if (t != kNoTask) {
            np[t] += 1;
            ep = EntryPoint{true, t, kNoEdge};
            refined = true;
          }
        } else if (comm_aware) {
          const EdgeId e = pick_edge(cp, cur.dag, np, respect_marks);
          if (e != kNoEdge) {
            std::tie(widened_src, widened_dst) = widen_edge(e, np);
            ep = EntryPoint{false, kNoTask, e};
            refined = true;
          }
        }
      }
      if (!refined) break;
      if (iter == 0) entry = ep;
      if (met != nullptr)
        met->add(ep.is_task ? "locmps.widened_tasks"
                            : "locmps.widened_edges");

      cur = locbs(g, np, comm, opt_.locbs, fixed, obs);
      ++calls;
      const bool adopted = cur.makespan < best_sl;
      if (adopted) {
        best_alloc = np;
        best_sl = cur.makespan;
      }
      if (obs::wants_events(obs)) {
        // One event per refinement: the critical-path diagnosis, the
        // widening decision, and its outcome. Together with
        // locmps.lookahead_begin these replay into the final allocation
        // (tests/test_obs_events.cpp reconstructs it).
        if (ep.is_task) {
          const TaskId t = ep.task;
          obs->sink->emit(
              obs::Event("locmps.refine")
                  .with("round", static_cast<std::uint64_t>(round))
                  .with("iter", static_cast<std::uint64_t>(iter))
                  .with("cp_len", cp.length)
                  .with("comp_cost", cp.comp_cost)
                  .with("comm_cost", cp.comm_cost)
                  .with("dominant", comp_dominates ? "comp" : "comm")
                  .with("kind", "task")
                  .with("task", t)
                  .with("np_new", static_cast<std::uint64_t>(np[t]))
                  .with("gain", g.task(t).profile.time(np[t] - 1) -
                                    g.task(t).profile.time(np[t]))
                  .with("conc_ratio", conc.ratio(t))
                  .with("makespan", cur.makespan)
                  .with("adopted", adopted)
                  .with("best", best_sl));
        } else {
          const Edge& ed = g.edge(ep.edge);
          obs->sink->emit(
              obs::Event("locmps.refine")
                  .with("round", static_cast<std::uint64_t>(round))
                  .with("iter", static_cast<std::uint64_t>(iter))
                  .with("cp_len", cp.length)
                  .with("comp_cost", cp.comp_cost)
                  .with("comm_cost", cp.comm_cost)
                  .with("dominant", comp_dominates ? "comp" : "comm")
                  .with("kind", "edge")
                  .with("edge", ep.edge)
                  .with("src", ed.src)
                  .with("dst", ed.dst)
                  .with("src_np_new",
                        static_cast<std::uint64_t>(np[ed.src]))
                  .with("dst_np_new",
                        static_cast<std::uint64_t>(np[ed.dst]))
                  .with("widened_src", widened_src)
                  .with("widened_dst", widened_dst)
                  .with("makespan", cur.makespan)
                  .with("adopted", adopted)
                  .with("best", best_sl));
        }
      }
      if (calls >= opt_.max_locbs_calls) break;
    }

    if (!entry.has_value()) break;  // nothing on the CP is refinable

    const bool improved = best_sl < old_sl;
    // Search tracing for development; enable with LOCMPS_DEBUG=1.
    static const bool debug = std::getenv("LOCMPS_DEBUG") != nullptr;
    if (debug)
      std::fprintf(stderr,
                   "loc-mps: old=%.6f best=%.6f %s entry=%s%u calls=%zu\n",
                   old_sl, best_sl, improved ? "commit" : "mark",
                   entry->is_task ? "t" : "e",
                   entry->is_task ? entry->task : entry->edge, calls);
    if (!improved) {
      // Failed look-ahead: remember the entry point as a bad start.
      if (entry->is_task)
        marked_task[entry->task] = 1;
      else
        marked_edge[entry->edge] = 1;
    } else {
      // Commit: the improved allocation is in best_alloc; clear all marks.
      std::fill(marked_task.begin(), marked_task.end(), 0);
      std::fill(marked_edge.begin(), marked_edge.end(), 0);
    }
    if (met != nullptr) {
      met->add("locmps.rounds");
      met->add(improved ? "locmps.commits" : "locmps.reverts");
      if (!improved)
        met->add(entry->is_task ? "locmps.marked_tasks"
                                : "locmps.marked_edges");
    }
    if (obs::wants_events(obs))
      obs->sink->emit(
          obs::Event("locmps.lookahead")
              .with("round", static_cast<std::uint64_t>(round))
              .with("entry_kind", entry->is_task ? "task" : "edge")
              .with("entry", entry->is_task ? entry->task : entry->edge)
              .with("improved", improved)
              .with("old", old_sl)
              .with("best", best_sl));

    // Re-realize the best allocation (unchanged allocations keep their
    // schedule); its critical path drives termination.
    {
      best_run = locbs(g, best_alloc, comm, opt_.locbs, fixed, obs);
      ++calls;
    }
    if (met != nullptr) {
      met->sample("locmps.best_makespan", best_sl);
      met->sample("locmps.locbs_calls", static_cast<double>(calls));
    }

    const CriticalPathInfo cp = best_run.dag.critical_path();
    bool exhausted = true;
    for (TaskId t : cp.tasks) {
      if (best_alloc[t] < cap[t] && !marked_task[t]) {
        exhausted = false;
        break;
      }
    }
    if (exhausted && comm_aware) {
      for (EdgeId e : cp.edges) {
        if (e == kNoEdge) continue;
        const Edge& ed = g.edge(e);
        if (marked_edge[e] || best_run.dag.edge_time(e) <= 0.0) continue;
        if (best_alloc[ed.src] < ecap(ed.src) ||
            best_alloc[ed.dst] < ecap(ed.dst)) {
          exhausted = false;
          break;
        }
      }
    }
    if (exhausted) break;
  }

  if (met != nullptr) {
    met->set("locmps.locbs_calls", static_cast<double>(calls));
    met->sample("locmps.best_makespan", best_sl);
  }
  if (obs::wants_events(obs))
    obs->sink->emit(
        obs::Event("locmps.done")
            .with("makespan", best_sl)
            .with("locbs_calls", static_cast<std::uint64_t>(calls)));

  SchedulerResult out;
  out.schedule = std::move(best_run.schedule);
  out.allocation = std::move(best_alloc);
  out.estimated_makespan = best_sl;
  out.iterations = calls;
  return out;
}

}  // namespace locmps
