#include "schedulers/loc_mps.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <tuple>
#include <utility>

#include "graph/algorithms.hpp"
#include "obs/profile.hpp"
#include "schedulers/incremental.hpp"
#include "util/annotations.hpp"
#include "util/thread_pool.hpp"

namespace locmps {

namespace {

/// The look-ahead entry point: the task or edge whose widening started the
/// current search (Alg. 1 steps 16-17 / 28-29).
struct EntryPoint {
  bool is_task = true;
  TaskId task = kNoTask;
  EdgeId edge = kNoEdge;
};

/// A precomputed iteration-0 refinement: the entry point selected on the
/// incumbent's critical path under a given marks state, the allocation
/// after its widening, and the critical-path diagnosis that chose it. The
/// speculative batch predictor derives one per look-ahead round without
/// any LoCBS evaluation (round j's marks assume rounds 0..j-1 failed).
struct FirstStep {
  Allocation np;
  EntryPoint ep;
  bool widened_src = false;
  bool widened_dst = false;
  double cp_len = 0.0;
  double comp_cost = 0.0;
  double comm_cost = 0.0;
  bool comp_dominates = true;
};

/// Outcome of one look-ahead walk (Alg. 1 steps 15-30): the best
/// allocation it adopted, how many LoCBS evaluations it consumed, and
/// whether it beat the incumbent it started from.
struct WalkResult {
  bool improved = false;
  bool aborted = false;  ///< stopped early because an earlier probe won
  Allocation alloc;
  double sl = 0.0;
  std::size_t used = 0;
};

/// Private observability of one speculative probe: a registry and an event
/// buffer the orchestrator merges into the session context in candidate
/// order after the batch barrier (docs/parallelism.md).
struct ProbeObs {
  obs::MetricsRegistry reg;
  obs::EventBuffer buf;
  // Aggregates only: probe intervals would be dropped at merge anyway
  // (their epoch is not the session profiler's).
  obs::Profiler prof{/*record_intervals=*/false};
  obs::ObsContext ctx;
  // Private replay stream (docs/incremental.md): a walk's successive
  // allocations differ by one task, so within-probe replay thrives while
  // staying lock-free.
  IncrementalContext incr;
};

/// Purity-backed memo shared by the speculative probes: with (graph, comm
/// model, options, prefix) fixed for a run, locbs() is a pure function of
/// the allocation, so repeated probe allocations replay the cached result
/// and its counter deltas instead of recomputing (docs/parallelism.md).
/// Concurrently consulted by pool workers; every access goes through the
/// annotated lock so -Wthread-safety proves the discipline.
class ProbeMemo {
 public:
  struct Entry {
    // Immutable once stored; shared by pointer so a hit costs a refcount
    // bump instead of a schedule + DAG deep copy.
    std::shared_ptr<const LocBSResult> result;
    obs::MetricsSnapshot deltas;
    obs::ProfileSnapshot profile;
  };

  /// The cached entry for \p np, or null on a miss. Entries are immutable
  /// once stored, so a hit shares the stored entry by pointer instead of
  /// copying its result and telemetry snapshots under the lock.
  std::shared_ptr<const Entry> lookup(const Allocation& np)
      LOCMPS_EXCLUDES(mu_) {
    const MutexLock lk(mu_);
    const auto it = entries_.find(np);
    if (it == entries_.end()) return nullptr;
    return it->second;
  }

  /// Inserts \p e for \p np; wholesale eviction at the cap bounds memory.
  void store(const Allocation& np, Entry e) LOCMPS_EXCLUDES(mu_) {
    const MutexLock lk(mu_);
    if (entries_.size() >= kCap) entries_.clear();
    entries_.emplace(np, std::make_shared<const Entry>(std::move(e)));
  }

 private:
  static constexpr std::size_t kCap = 4096;
  Mutex mu_;
  std::map<Allocation, std::shared_ptr<const Entry>> entries_
      LOCMPS_GUARDED_BY(mu_);
};

/// Worker count: the option, with 0 meaning one per hardware thread.
std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

}  // namespace

SchedulerResult LocMPSScheduler::schedule(const TaskGraph& g,
                                          const Cluster& cluster) const {
  return run(g, cluster, nullptr);
}

SchedulerResult LocMPSScheduler::schedule_with_fixed(
    const TaskGraph& g, const Cluster& cluster,
    const FixedPrefix& fixed) const {
  return run(g, cluster, &fixed);
}

SchedulerResult LocMPSScheduler::run(const TaskGraph& g,
                                     const Cluster& cluster,
                                     const FixedPrefix* fixed) const {
  const std::size_t n = g.num_tasks();
  const std::size_t P = cluster.processors;
  obs::ObsContext* const obs = observability();
  obs::MetricsRegistry* const met = obs::metrics_of(obs);
  obs::Profiler* const prof = obs::profiler_of(obs);
  obs::ScopedTimer run_timer(met, "locmps.run");
  LOCMPS_SPAN(obs, "locmps.run");
  CommModel comm(cluster);
  if (met != nullptr)
    comm.count_evals_into(met->cell_ptr("comm.cost_evals"));
  const ConcurrencyAnalysis conc(g);
  // Search tracing for development; enable with LOCMPS_DEBUG=1.
  const bool debug = std::getenv("LOCMPS_DEBUG") != nullptr;

  // On a degraded cluster (faults/recovery.hpp) non-frozen tasks can only
  // be as wide as the survivor set.
  const std::size_t usable =
      (fixed != nullptr && fixed->available != nullptr)
          ? fixed->available->count()
          : P;

  // Saturation bound per task: min(P, Pbest) (Alg. 1 step 14), further
  // capped at the survivor count on a degraded cluster; frozen tasks keep
  // their committed processor count.
  Allocation best_alloc(n, 1);
  std::vector<std::size_t> cap(n);
  for (TaskId t = 0; t < n; ++t) {
    cap[t] = std::min(usable, g.task(t).profile.pbest());
    if (fixed != nullptr && fixed->is_frozen(t)) {
      best_alloc[t] = fixed->placements->at(t).np();
      cap[t] = best_alloc[t];
    }
  }
  // Widening bound for communication edges: the usable width unless frozen.
  auto ecap = [&](TaskId t) {
    return (fixed != nullptr && fixed->is_frozen(t)) ? cap[t] : usable;
  };

  // The refinement search always runs unperturbed: a mid-search placement
  // flip would diverge the whole trajectory and smear a seeded divergence
  // across many tasks. The perturb_task hook (locbs.hpp) is applied only
  // in one extra final realization below, so a perturbed run differs from
  // its baseline by exactly that flip.
  LocBSOptions lopt = opt_.locbs;
  const TaskId perturb = lopt.perturb_task;
  lopt.perturb_task = kNoTask;

  // Incremental replanning (docs/incremental.md): the refinement stream's
  // LoCBS evaluations replay their unchanged placement prefix from a
  // recorded earlier evaluation. Stands down when a sink or profiler is
  // attached — those runs take the from-scratch reference path so traces
  // and span shapes stay exact (the schedule is identical either way).
  const bool incr_on =
      opt_.incremental && !obs::wants_events(obs) && prof == nullptr;
  IncrementalContext session_incr;
  IncrementalContext* const sincr = incr_on ? &session_incr : nullptr;

  std::shared_ptr<const LocBSResult> best_run =
      std::make_shared<const LocBSResult>(
          locbs(g, best_alloc, comm, lopt, fixed, obs, sincr));
  double best_sl = best_run->makespan;
  std::size_t calls = 1;
  if (obs::wants_events(obs))
    obs->sink->emit(obs::Event("locmps.begin")
                        .with("tasks", static_cast<std::uint64_t>(n))
                        .with("procs", static_cast<std::uint64_t>(P))
                        .with("comm_aware", !opt_.locbs.comm_blind)
                        .with("initial_makespan", best_sl));
  if (met != nullptr) met->sample("locmps.best_makespan", best_sl);

  std::vector<char> marked_task(n, 0);
  std::vector<char> marked_edge(g.num_edges(), 0);

  // Chooses the best candidate task on the critical path: among the
  // top fraction by execution-time gain, the one with the lowest
  // concurrency ratio (Section III-C). Takes the marks state explicitly so
  // speculative probes can run it against their own snapshot.
  auto pick_task = [&](const CriticalPathInfo& cp, const Allocation& np,
                       const std::vector<char>& mtask,
                       bool respect_marks) -> TaskId {
    std::vector<TaskId> cand;
    for (TaskId t : cp.tasks) {
      if (np[t] >= cap[t]) continue;
      if (respect_marks && mtask[t]) continue;
      cand.push_back(t);
    }
    if (cand.empty()) return kNoTask;
    auto gain = [&](TaskId t) {
      return g.task(t).profile.time(np[t]) -
             g.task(t).profile.time(np[t] + 1);
    };
    std::sort(cand.begin(), cand.end(), [&](TaskId a, TaskId b) {
      const double ga = gain(a), gb = gain(b);
      // Exact inequality: the tie-break must see identical gains as equal
      // so the task-id fallback keeps the order deterministic.
      if (ga != gb) return ga > gb;  // LINT-ALLOW(float-eq)
      return a < b;
    });
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(opt_.candidate_top_fraction *
                         static_cast<double>(cand.size()))));
    TaskId best = cand[0];
    for (std::size_t i = 1; i < k; ++i)
      if (conc.ratio(cand[i]) < conc.ratio(best)) best = cand[i];
    return best;
  };

  // Chooses the heaviest refinable communication edge on the critical path
  // (Section III-D). Returns kNoEdge if none qualifies.
  auto pick_edge = [&](const CriticalPathInfo& cp, const ScheduleDag& dag,
                       const Allocation& np, const std::vector<char>& medge,
                       bool respect_marks) -> EdgeId {
    EdgeId best = kNoEdge;
    double best_w = 0.0;
    for (EdgeId e : cp.edges) {
      if (e == kNoEdge) continue;  // pseudo-edge
      if (respect_marks && medge[e]) continue;
      const Edge& ed = g.edge(e);
      if (np[ed.src] >= ecap(ed.src) && np[ed.dst] >= ecap(ed.dst)) continue;
      const double w = dag.edge_time(e);
      if (w > best_w) {
        best_w = w;
        best = e;
      }
    }
    return best;
  };

  // Widens the thinner endpoint of edge e (both when tied), respecting
  // each endpoint's widening bound. Returns {src widened, dst widened}.
  auto widen_edge = [&](EdgeId e, Allocation& np) -> std::pair<bool, bool> {
    const Edge& ed = g.edge(e);
    const bool src_ok = np[ed.src] < ecap(ed.src);
    const bool dst_ok = np[ed.dst] < ecap(ed.dst);
    if (np[ed.src] > np[ed.dst] && dst_ok) {
      np[ed.dst] += 1;
      return {false, true};
    }
    if (np[ed.src] < np[ed.dst] && src_ok) {
      np[ed.src] += 1;
      return {true, false};
    }
    if (dst_ok) np[ed.dst] += 1;
    if (src_ok) np[ed.src] += 1;
    return {src_ok, dst_ok};
  };

  const bool comm_aware = !opt_.locbs.comm_blind;
  const std::size_t n_threads = resolve_threads(opt_.threads);
  const bool speculative = n_threads > 1;

  // Probe memo (see ProbeMemo above). Events cannot be replayed from a
  // cache without reordering them, so the memo stands down whenever a
  // sink is attached. Speculative runs always use it; sequential runs use
  // it when incremental replanning is on (repeated allocations — notably
  // the per-round re-realization — then replay instead of recomputing),
  // and fall back to the untouched reference path otherwise.
  ProbeMemo memo;
  const bool memo_enabled =
      (speculative || incr_on) && !obs::wants_events(obs);

  // Every LoCBS evaluation funnels through here. \p wobs / \p wcomm /
  // \p wincr are the caller's observability context, its comm model, and
  // its incremental replay stream (the session's on the direct path, a
  // probe's own on a speculative walk).
  auto eval_locbs = [&](const Allocation& np, obs::ObsContext* wobs,
                        const CommModel& wcomm, IncrementalContext* wincr)
      -> std::shared_ptr<const LocBSResult> {
    if (!memo_enabled)
      return std::make_shared<const LocBSResult>(
          locbs(g, np, wcomm, lopt, fixed, wobs, wincr));
    obs::MetricsRegistry* const wmet = obs::metrics_of(wobs);
    obs::Profiler* const wprof = obs::profiler_of(wobs);
    if (std::shared_ptr<const ProbeMemo::Entry> hit = memo.lookup(np)) {
      if (wmet != nullptr) {
        wmet->merge_from(hit->deltas);
        if (wincr != nullptr) wmet->add("incr.cache_hits");
      }
      // Replaying the cached span deltas keeps the threaded span tree's
      // counts bit-identical to the sequential tree (the cached wall/CPU
      // times are the miss run's actuals).
      if (wprof != nullptr) wprof->merge_from(hit->profile);
      return hit->result;
    }
    if (wmet == nullptr && wprof == nullptr)
      return std::make_shared<const LocBSResult>(
          locbs(g, np, wcomm, lopt, fixed, nullptr, wincr));
    // Miss with metrics/profiling on: run under scratch observability so
    // this call's exact counter/timer/span deltas can be captured for
    // replay on later hits, then fold them into the caller's context.
    obs::MetricsRegistry scratch;
    obs::Profiler sprof(/*record_intervals=*/false);
    obs::ObsContext sctx{wmet != nullptr ? &scratch : nullptr, nullptr,
                         wprof != nullptr ? &sprof : nullptr};
    CommModel scomm(cluster);
    if (wmet != nullptr)
      scomm.count_evals_into(scratch.cell_ptr("comm.cost_evals"));
    auto res = std::make_shared<const LocBSResult>(
        locbs(g, np, scomm, lopt, fixed, &sctx, wincr));
    ProbeMemo::Entry e{res, scratch.snapshot(), sprof.snapshot()};
    if (wmet != nullptr) wmet->merge_from(e.deltas);
    if (wprof != nullptr) wprof->merge_from(e.profile);
    memo.store(np, std::move(e));
    return res;
  };

  // Replicates a walk's iteration-0 selection (Alg. 1 steps 8-14) against
  // the given marks state without evaluating it. Returns false when
  // nothing on the critical path is refinable.
  auto first_step = [&](const CriticalPathInfo& cp, const ScheduleDag& dag,
                        const std::vector<char>& mtask,
                        const std::vector<char>& medge,
                        FirstStep& fs) -> bool {
    fs.np = best_alloc;
    fs.cp_len = cp.length;
    fs.comp_cost = cp.comp_cost;
    fs.comm_cost = cp.comm_cost;
    fs.comp_dominates = !comm_aware || cp.comp_cost >= cp.comm_cost;
    for (int attempt = 0; attempt < 2; ++attempt) {
      const bool task_branch = (attempt == 0) == fs.comp_dominates;
      if (task_branch) {
        const TaskId t = pick_task(cp, fs.np, mtask, /*respect_marks=*/true);
        if (t != kNoTask) {
          fs.np[t] += 1;
          fs.ep = EntryPoint{true, t, kNoEdge};
          return true;
        }
      } else if (comm_aware) {
        const EdgeId e = pick_edge(cp, dag, fs.np, medge, true);
        if (e != kNoEdge) {
          std::tie(fs.widened_src, fs.widened_dst) = widen_edge(e, fs.np);
          fs.ep = EntryPoint{false, kNoTask, e};
          return true;
        }
      }
    }
    return false;
  };

  // One look-ahead walk (Alg. 1 steps 15-30) from a precomputed first
  // step. Reads only const shared state plus its own marks snapshot and
  // records through \p wobs / \p wcomm, so it is safe to run as a
  // speculative probe on a pool worker. \p race, when given, carries the
  // lowest improving candidate index: the walk publishes its own index on
  // first adoption and aborts once a lower index is published (its results
  // are then discarded by the candidate-order reduction anyway).
  auto run_walk = [&](const FirstStep& fs, std::size_t round_no,
                      const std::vector<char>& mtask,
                      const std::vector<char>& medge, double start_best,
                      const Allocation& base_alloc, std::size_t budget,
                      obs::ObsContext* wobs, const CommModel& wcomm,
                      IncrementalContext* wincr, std::size_t probe_index,
                      std::atomic<std::size_t>* race) -> WalkResult {
    obs::MetricsRegistry* const wmet = obs::metrics_of(wobs);
    // One span per look-ahead round. Sequentially it nests under
    // locmps.run; on a probe it is the probe profiler's root span and the
    // candidate-order merge grafts it back under locmps.run.
    LOCMPS_SPAN(wobs, "locmps.walk");
    WalkResult r;
    r.alloc = base_alloc;
    r.sl = start_best;
    Allocation np = base_alloc;
    if (obs::wants_events(wobs))
      wobs->sink->emit(obs::Event("locmps.lookahead_begin")
                          .with("round", static_cast<std::uint64_t>(round_no))
                          .with("best", start_best));
    std::shared_ptr<const LocBSResult> cur;
    for (std::size_t iter = 0; iter < opt_.look_ahead_depth; ++iter) {
      if (race != nullptr && iter > 0 &&
          race->load(std::memory_order_relaxed) < probe_index) {
        r.aborted = true;
        break;
      }
      EntryPoint ep;
      bool widened_src = false, widened_dst = false;
      double cp_len, comp_cost, comm_cost;
      bool comp_dominates;
      if (iter == 0) {
        ep = fs.ep;
        widened_src = fs.widened_src;
        widened_dst = fs.widened_dst;
        cp_len = fs.cp_len;
        comp_cost = fs.comp_cost;
        comm_cost = fs.comm_cost;
        comp_dominates = fs.comp_dominates;
        np = fs.np;
      } else {
        CriticalPathInfo cp;
        {
          obs::ScopedTimer cp_timer(wmet, "locmps.critical_path");
          LOCMPS_SPAN(wobs, "locmps.critical_path");
          cp = cur->dag.critical_path();
        }
        comp_dominates = !comm_aware || cp.comp_cost >= cp.comm_cost;
        cp_len = cp.length;
        comp_cost = cp.comp_cost;
        comm_cost = cp.comm_cost;
        const bool respect_marks = opt_.marks_bind_lookahead;
        bool refined = false;
        // Try the dominating-cost branch first, the other as a fallback,
        // so a look-ahead step is only abandoned when nothing is
        // refinable.
        for (int attempt = 0; attempt < 2 && !refined; ++attempt) {
          const bool task_branch = (attempt == 0) == comp_dominates;
          if (task_branch) {
            const TaskId t = pick_task(cp, np, mtask, respect_marks);
            if (t != kNoTask) {
              np[t] += 1;
              ep = EntryPoint{true, t, kNoEdge};
              refined = true;
            }
          } else if (comm_aware) {
            const EdgeId e = pick_edge(cp, cur->dag, np, medge,
                                       respect_marks);
            if (e != kNoEdge) {
              std::tie(widened_src, widened_dst) = widen_edge(e, np);
              ep = EntryPoint{false, kNoTask, e};
              refined = true;
            }
          }
        }
        if (!refined) break;
      }
      if (wmet != nullptr)
        wmet->add(ep.is_task ? "locmps.widened_tasks"
                             : "locmps.widened_edges");

      cur = eval_locbs(np, wobs, wcomm, wincr);
      ++r.used;
      const bool adopted = cur->makespan < r.sl;
      if (adopted) {
        r.alloc = np;
        r.sl = cur->makespan;
        if (!r.improved) {
          r.improved = true;
          if (race != nullptr) {
            // Publish the lowest improving index (fetch-min) so probes of
            // later candidates can stop wasting work.
            std::size_t prev = race->load(std::memory_order_relaxed);
            while (prev > probe_index &&
                   !race->compare_exchange_weak(prev, probe_index,
                                                std::memory_order_relaxed)) {
            }
          }
        }
      }
      if (obs::wants_events(wobs)) {
        // One event per refinement: the critical-path diagnosis, the
        // widening decision, and its outcome. Together with
        // locmps.lookahead_begin these replay into the final allocation
        // (tests/test_obs_events.cpp reconstructs it).
        if (ep.is_task) {
          const TaskId t = ep.task;
          wobs->sink->emit(
              obs::Event("locmps.refine")
                  .with("round", static_cast<std::uint64_t>(round_no))
                  .with("iter", static_cast<std::uint64_t>(iter))
                  .with("cp_len", cp_len)
                  .with("comp_cost", comp_cost)
                  .with("comm_cost", comm_cost)
                  .with("dominant", comp_dominates ? "comp" : "comm")
                  .with("kind", "task")
                  .with("task", t)
                  .with("np_new", static_cast<std::uint64_t>(np[t]))
                  .with("gain", g.task(t).profile.time(np[t] - 1) -
                                    g.task(t).profile.time(np[t]))
                  .with("conc_ratio", conc.ratio(t))
                  .with("makespan", cur->makespan)
                  .with("adopted", adopted)
                  .with("best", r.sl));
        } else {
          const Edge& ed = g.edge(ep.edge);
          wobs->sink->emit(
              obs::Event("locmps.refine")
                  .with("round", static_cast<std::uint64_t>(round_no))
                  .with("iter", static_cast<std::uint64_t>(iter))
                  .with("cp_len", cp_len)
                  .with("comp_cost", comp_cost)
                  .with("comm_cost", comm_cost)
                  .with("dominant", comp_dominates ? "comp" : "comm")
                  .with("kind", "edge")
                  .with("edge", ep.edge)
                  .with("src", ed.src)
                  .with("dst", ed.dst)
                  .with("src_np_new",
                        static_cast<std::uint64_t>(np[ed.src]))
                  .with("dst_np_new",
                        static_cast<std::uint64_t>(np[ed.dst]))
                  .with("widened_src", widened_src)
                  .with("widened_dst", widened_dst)
                  .with("makespan", cur->makespan)
                  .with("adopted", adopted)
                  .with("best", r.sl));
        }
      }
      if (r.used >= budget) break;
    }
    return r;
  };

  // Commit-or-mark for one completed look-ahead round (Alg. 1 steps
  // 31-38): updates the incumbent and the marks, bumps the round counters,
  // and emits the round's locmps.lookahead event.
  auto finish_round = [&](std::size_t round_no, const EntryPoint& entry,
                          double old_sl, const WalkResult& w,
                          std::size_t calls_now) {
    const bool improved = w.improved;
    if (debug)
      std::fprintf(stderr,
                   "loc-mps: old=%.6f best=%.6f %s entry=%s%u calls=%zu\n",
                   old_sl, w.sl, improved ? "commit" : "mark",
                   entry.is_task ? "t" : "e",
                   entry.is_task ? entry.task : entry.edge, calls_now);
    if (!improved) {
      // Failed look-ahead: remember the entry point as a bad start.
      if (entry.is_task)
        marked_task[entry.task] = 1;
      else
        marked_edge[entry.edge] = 1;
    } else {
      // Commit: adopt the improved allocation and clear all marks.
      best_alloc = w.alloc;
      best_sl = w.sl;
      std::fill(marked_task.begin(), marked_task.end(), 0);
      std::fill(marked_edge.begin(), marked_edge.end(), 0);
    }
    if (met != nullptr) {
      met->add("locmps.rounds");
      met->add(improved ? "locmps.commits" : "locmps.reverts");
      if (!improved)
        met->add(entry.is_task ? "locmps.marked_tasks"
                               : "locmps.marked_edges");
    }
    if (obs::wants_events(obs))
      obs->sink->emit(
          obs::Event("locmps.lookahead")
              .with("round", static_cast<std::uint64_t>(round_no))
              .with("entry_kind", entry.is_task ? "task" : "edge")
              .with("entry", entry.is_task ? entry.task : entry.edge)
              .with("improved", improved)
              .with("old", old_sl)
              .with("best", best_sl));
  };

  // Termination test (Alg. 1 step 40): every critical-path task saturated
  // or marked, and (when comm-aware) every refinable path edge marked.
  auto exhausted_now = [&]() -> bool {
    const CriticalPathInfo cp = best_run->dag.critical_path();
    bool exhausted = true;
    for (TaskId t : cp.tasks) {
      if (best_alloc[t] < cap[t] && !marked_task[t]) {
        exhausted = false;
        break;
      }
    }
    if (exhausted && comm_aware) {
      for (EdgeId e : cp.edges) {
        if (e == kNoEdge) continue;
        const Edge& ed = g.edge(e);
        if (marked_edge[e] || best_run->dag.edge_time(e) <= 0.0) continue;
        if (best_alloc[ed.src] < ecap(ed.src) ||
            best_alloc[ed.dst] < ecap(ed.dst)) {
          exhausted = false;
          break;
        }
      }
    }
    return exhausted;
  };

  std::optional<ThreadPool> pool;
  if (speculative) {
    pool.emplace(n_threads);
    if (met != nullptr)
      met->set("locmps.parallel.threads", static_cast<double>(n_threads));
  }

  // Main repeat-until loop (Alg. 1 steps 5-40). Sequentially this runs one
  // look-ahead round per iteration; with threads > 1 it predicts the entry
  // chain of the next `k` rounds (each assuming its predecessors fail),
  // fans the walks out as speculative probes, and reduces the results in
  // candidate order with the exact sequential tie-breaking — the first
  // strictly-better candidate in enumeration order wins and everything
  // after it is discarded as misspeculation (docs/parallelism.md).
  std::size_t round = 0;
  const std::size_t per_round = opt_.look_ahead_depth + 1;
  std::size_t fanout = 1;  // adaptive: reset to 1 on a commit, doubled on
                           // fully-failed batches, capped at n_threads
  while (calls < opt_.max_locbs_calls) {
    std::size_t k = speculative ? std::min(fanout, n_threads) : 1;
    // A speculative batch needs budget for k full walks plus their
    // re-realizations; when the remaining budget cannot absorb that, fall
    // back to a single round carrying the exact sequential budget so
    // budget-capped runs match threads = 1 bit for bit.
    if (k > 1 && opt_.max_locbs_calls - calls < k * per_round + 1) k = 1;

    CriticalPathInfo cp0;
    {
      obs::ScopedTimer cp_timer(met, "locmps.critical_path");
      cp0 = best_run->dag.critical_path();
    }

    // Predict the entry chain: round j's entry point assumes rounds
    // 0..j-1 of the batch fail and mark their entries.
    std::vector<FirstStep> steps;
    std::vector<std::vector<char>> mtask_at, medge_at;
    {
      std::vector<char> pmt = marked_task, pme = marked_edge;
      for (std::size_t j = 0; j < k; ++j) {
        FirstStep fs;
        if (!first_step(cp0, best_run->dag, pmt, pme, fs)) break;
        mtask_at.push_back(pmt);
        medge_at.push_back(pme);
        const EntryPoint ep = fs.ep;
        steps.push_back(std::move(fs));
        if (ep.is_task)
          pmt[ep.task] = 1;
        else
          pme[ep.edge] = 1;
      }
    }
    if (steps.empty()) {
      // Nothing on the critical path is refinable: the final round opens
      // and immediately ends (matching the sequential event stream).
      ++round;
      if (obs::wants_events(obs))
        obs->sink->emit(obs::Event("locmps.lookahead_begin")
                            .with("round", static_cast<std::uint64_t>(round))
                            .with("best", best_sl));
      break;
    }

    const std::size_t kk = steps.size();
    bool stop = false;
    bool committed = false;
    if (kk == 1) {
      // Direct path: one round recording straight into the session
      // context, exactly the sequential reference algorithm.
      ++round;
      const double old_sl = best_sl;
      const WalkResult w = run_walk(
          steps[0], round, mtask_at[0], medge_at[0], best_sl, best_alloc,
          opt_.max_locbs_calls - calls, obs, comm, sincr, 0, nullptr);
      calls += w.used;
      finish_round(round, steps[0].ep, old_sl, w, calls);
      // Re-realize the best allocation (unchanged allocations keep their
      // schedule); its critical path drives termination.
      best_run = eval_locbs(best_alloc, obs, comm, sincr);
      ++calls;
      if (met != nullptr) {
        met->sample("locmps.best_makespan", best_sl);
        met->sample("locmps.locbs_calls", static_cast<double>(calls));
      }
      committed = w.improved;
      stop = exhausted_now();
    } else {
      if (met != nullptr) {
        met->add("locmps.parallel.batches");
        met->add("locmps.parallel.probes", static_cast<double>(kk));
      }
      const Stopwatch batch_sw;
      const std::size_t round_base = round;
      const double start_best = best_sl;
      std::atomic<std::size_t> first_improved{kk};  // kk = none yet
      std::vector<WalkResult> results(kk);
      std::vector<std::unique_ptr<ProbeObs>> pobs(kk);
      for (std::size_t j = 0; j < kk; ++j) {
        pobs[j] = std::make_unique<ProbeObs>();
        pobs[j]->ctx.metrics = met != nullptr ? &pobs[j]->reg : nullptr;
        pobs[j]->ctx.sink =
            obs::wants_events(obs) ? &pobs[j]->buf : nullptr;
        pobs[j]->ctx.profile = prof != nullptr ? &pobs[j]->prof : nullptr;
      }
      std::vector<std::future<void>> futs;
      futs.reserve(kk);
      for (std::size_t j = 0; j < kk; ++j) {
        futs.push_back(pool->submit([&, j] {
          if (first_improved.load(std::memory_order_relaxed) < j) {
            results[j].aborted = true;  // dead on arrival; discarded below
            return;
          }
          obs::ObsContext* pctx = obs != nullptr ? &pobs[j]->ctx : nullptr;
          // Per-probe comm model: transfer_duration bumps an evaluation
          // counter cell, which must live in the probe's own registry.
          CommModel pcomm(cluster);
          if (met != nullptr)
            pcomm.count_evals_into(
                pobs[j]->reg.cell_ptr("comm.cost_evals"));
          results[j] = run_walk(steps[j], round_base + j + 1, mtask_at[j],
                                medge_at[j], start_best, best_alloc,
                                opt_.look_ahead_depth, pctx, pcomm,
                                incr_on ? &pobs[j]->incr : nullptr, j,
                                &first_improved);
        }));
      }
      // Barrier. Wait for every probe before rethrowing so no worker can
      // still be touching batch-local state.
      std::exception_ptr err;
      for (std::future<void>& f : futs) {
        try {
          f.get();
        } catch (...) {
          if (err == nullptr) err = std::current_exception();
        }
      }
      if (err != nullptr) std::rethrow_exception(err);
      if (met != nullptr) {
        met->add("locmps.parallel.wall_ms", batch_sw.seconds() * 1e3);
        // CPU attribution across the pool (excluded from determinism
        // digests like the other locmps.parallel.* wall-clock numbers).
        met->set("locmps.parallel.worker_cpu_s",
                 pool->worker_cpu_seconds());
      }

      // Candidate-order reduction: process rounds in enumeration order;
      // the first improving round wins and the rest of the batch is
      // discarded (the sequential run would never have explored it).
      std::size_t processed = 0;
      for (std::size_t j = 0; j < kk; ++j) {
        const WalkResult& w = results[j];
        ++round;
        ++processed;
        // Merge this probe's telemetry exactly where the sequential run
        // would have produced it.
        if (met != nullptr) met->merge_from(pobs[j]->reg.snapshot());
        if (prof != nullptr) prof->merge_from(pobs[j]->prof.snapshot());
        if (obs::wants_events(obs)) {
          pobs[j]->buf.replay_into(*obs->sink);
          if (pobs[j]->buf.dropped() > 0 && met != nullptr)
            met->add("obs.events.dropped",
                     static_cast<double>(pobs[j]->buf.dropped()));
        }
        calls += w.used;
        const double old_sl = best_sl;
        finish_round(round, steps[j].ep, old_sl, w, calls);
        // The sequential algorithm re-realizes the best allocation after
        // every round; eval_locbs elides the recomputation on the memo
        // path while keeping the call count and telemetry identical.
        best_run = eval_locbs(best_alloc, obs, comm, sincr);
        ++calls;
        if (met != nullptr) {
          met->sample("locmps.best_makespan", best_sl);
          met->sample("locmps.locbs_calls", static_cast<double>(calls));
        }
        if (exhausted_now()) {
          stop = true;
          break;
        }
        if (w.improved) {
          committed = true;
          break;
        }
        if (calls >= opt_.max_locbs_calls) {
          stop = true;
          break;
        }
      }
      if (met != nullptr && processed < kk)
        met->add("locmps.parallel.misspeculated",
                 static_cast<double>(kk - processed));
    }
    if (stop) break;
    if (speculative)
      fanout = committed ? 1 : std::min(n_threads, fanout * 2);
  }

  // Final authoritative realization. The refinement loop's last LoCBS
  // evaluation may belong to a rejected walk, so with a sink attached the
  // trace's last "locbs.place"/"locbs.decision" records would describe an
  // allocation that was never committed. Re-realize the final allocation
  // once so the last record per task is exactly the committed schedule —
  // rundiff and `--explain` read precisely those. This pass is also where
  // an armed perturb_task takes effect (and the only place it does).
  if (perturb != kNoTask || obs::wants_events(obs)) {
    best_run = std::make_shared<const LocBSResult>(
        locbs(g, best_alloc, comm, opt_.locbs, fixed, obs));
    best_sl = best_run->makespan;
    ++calls;
  }

  if (met != nullptr) {
    met->set("locmps.locbs_calls", static_cast<double>(calls));
    met->sample("locmps.best_makespan", best_sl);
  }
  if (obs::wants_events(obs))
    obs->sink->emit(
        obs::Event("locmps.done")
            .with("makespan", best_sl)
            .with("locbs_calls", static_cast<std::uint64_t>(calls)));

  SchedulerResult out;
  out.schedule = best_run->schedule;  // the result may be memo-shared
  out.allocation = std::move(best_alloc);
  out.estimated_makespan = best_sl;
  out.iterations = calls;
  return out;
}

}  // namespace locmps
