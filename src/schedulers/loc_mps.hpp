#pragma once
/// \file loc_mps.hpp
/// LoC-MPS — Locality Conscious Mixed Parallel allocation and Scheduling
/// (Algorithm 1 of the paper).
///
/// Starting from a pure task-parallel allocation (one processor per task),
/// LoC-MPS iteratively attacks the critical path of the *schedule* DAG G'
/// (which includes resource-induced pseudo-dependences):
///  * if computation dominates the path, the best candidate task — good
///    execution-time gain, low concurrency ratio — is widened by one
///    processor (Section III-C);
///  * if communication dominates, the heaviest path edge gets more parallel
///    transfer streams by widening its thinner endpoint (Section III-D).
/// A bounded look-ahead (default 20 refinements) may pass through worse
/// schedules to escape local minima (Section III-E); a look-ahead that ends
/// no better than it started marks its entry task/edge as a bad starting
/// point. The schedule for each trial allocation comes from LoCBS.

#include "schedulers/locbs.hpp"
#include "schedulers/scheduler.hpp"

namespace locmps {

/// Tunables of LoC-MPS. Defaults are the paper's constants.
struct LocMPSOptions {
  /// Refinements explored per look-ahead before reverting to the best
  /// allocation seen (the paper found 20 to work well).
  std::size_t look_ahead_depth = 20;

  /// Fraction of the gain-sorted candidate list from which the minimum
  /// concurrency-ratio task is picked (the paper's top 10%).
  double candidate_top_fraction = 0.10;

  /// Let the bad-entry marks constrain every look-ahead step, not just the
  /// first (the paper's text binds them at iter 0 only). Without this the
  /// walk keeps revisiting saturated tasks whose widenings always fail and
  /// never explores the rest of the critical path; binding the marks
  /// throughout reproduces the paper's reported dominance (see DESIGN.md).
  bool marks_bind_lookahead = true;

  /// Scheduler used to realize each trial allocation.
  LocBSOptions locbs;

  /// Safety valve: hard cap on LoCBS invocations (the algorithm converges
  /// long before this on the paper's workloads).
  std::size_t max_locbs_calls = 100000;

  /// Worker threads for the speculative probe fan-out: the refinement loop
  /// predicts the entry points of the next batch of look-ahead rounds and
  /// evaluates the walks as parallel LoCBS probes, reducing the results in
  /// candidate order with the exact sequential tie-breaking. Any value
  /// produces schedules, locbs-call counts, counters, and traces
  /// bit-identical to threads = 1 (docs/parallelism.md documents the
  /// contract and the `locmps.parallel.*` counters). 0 = one worker per
  /// hardware thread.
  std::size_t threads = 1;

  /// Incremental replanning (docs/incremental.md): successive LoCBS
  /// evaluations of one refinement stream replay their unchanged placement
  /// prefix from a recorded earlier evaluation instead of re-scanning
  /// every hole, redistribution volumes are memoized per (src, dst) layout
  /// pair, and repeated allocations replay through the evaluation memo even
  /// at threads = 1. Schedules, counters (minus the digest-excluded
  /// `incr.*` family), and analyses stay bit-identical to the from-scratch
  /// path — tests/test_incremental.cpp enforces this differentially on
  /// every workload. The machinery stands down automatically when an event
  /// sink or profiler is attached (those runs take the reference path so
  /// traces and span shapes stay exact). false = always from-scratch (the
  /// oracle side of the differential harness).
  bool incremental = true;
};

/// The LoC-MPS scheduling scheme.
class LocMPSScheduler final : public Scheduler {
 public:
  explicit LocMPSScheduler(LocMPSOptions opt = {}) : opt_(opt) {}

  std::string name() const override {
    if (opt_.locbs.comm_blind) return "iCASLB";
    return opt_.locbs.backfill ? "LoC-MPS" : "LoC-MPS-nbf";
  }

  SchedulerResult schedule(const TaskGraph& g,
                           const Cluster& cluster) const override;

  /// Online-rescheduling entry point: re-optimizes the allocation and
  /// placement of every task NOT frozen in \p fixed, packing around the
  /// frozen tasks' committed windows (see schedulers/online.hpp). Frozen
  /// tasks keep their processor counts.
  SchedulerResult schedule_with_fixed(const TaskGraph& g,
                                      const Cluster& cluster,
                                      const FixedPrefix& fixed) const;

  const LocMPSOptions& options() const { return opt_; }

 private:
  SchedulerResult run(const TaskGraph& g, const Cluster& cluster,
                      const FixedPrefix* fixed) const;

  LocMPSOptions opt_;
};

}  // namespace locmps
