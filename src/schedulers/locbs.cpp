#include "schedulers/locbs.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "graph/algorithms.hpp"
#include "network/block_cyclic.hpp"
#include "obs/profile.hpp"
#include "obs/provenance.hpp"
#include "schedule/timeline.hpp"
#include "util/stats.hpp"

namespace locmps {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relative tolerance for "same instant" comparisons.
bool about(double a, double b) {
  return std::fabs(a - b) <= 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
}
bool later_than(double a, double b) {
  return a > b + 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// A candidate placement found during the hole scan.
struct Candidate {
  double finish = kInf;
  double start = 0.0;
  double busy_from = 0.0;
  bool resource_induced = false;  ///< start delayed by processor contention
  double touch = 0.0;             ///< instant whose finishers blocked us
  int subset = -1;                ///< 0 = locality-first, 1 = horizon-first
  std::vector<ProcId> procs;      ///< ascending
};

}  // namespace

LocBSResult locbs(const TaskGraph& g, const Allocation& np,
                  const CommModel& comm, const LocBSOptions& opt,
                  const FixedPrefix* fixed, obs::ObsContext* obs) {
  const std::size_t n = g.num_tasks();
  const std::size_t P = comm.cluster().processors;
  obs::MetricsRegistry* const met = obs::metrics_of(obs);
  obs::ScopedTimer pass_timer(met, "locbs.pass");
  LOCMPS_SPAN(obs, "locbs.pass");
  if (met != nullptr) met->add("locbs.calls");
  if (np.size() != n)
    throw std::invalid_argument("locbs: allocation size mismatch");
  if (!(opt.slack_factor >= 1.0))
    throw std::invalid_argument("locbs: slack_factor must be >= 1.0");
  if (fixed != nullptr && fixed->available != nullptr &&
      fixed->available->capacity() != P)
    throw std::invalid_argument(
        "locbs: FixedPrefix availability mask sized for a different cluster");
  // Non-frozen allocations must fit the survivor set when a degraded
  // cluster mask is active; frozen placements predate the failures and
  // may legitimately be wider.
  const std::size_t usable =
      (fixed != nullptr && fixed->available != nullptr)
          ? fixed->available->count()
          : P;
  for (std::size_t t = 0; t < n; ++t) {
    if (np[t] < 1 || np[t] > P)
      throw std::invalid_argument("locbs: np out of range");
    if (np[t] > usable && !(fixed != nullptr && fixed->is_frozen(t)))
      throw std::invalid_argument(
          "locbs: np exceeds the available (non-failed) processors");
  }

  const bool overlap = comm.overlap();

  // Execution times under this allocation, and allocation-stage edge costs
  // (block-cyclic redistribution volumes through the comm model).
  std::vector<double> et(n);
  std::vector<double> west(g.num_edges(), 0.0);
  {
    LOCMPS_SPAN(obs, "locbs.edge_costs");
    // slack_factor > 1 books reservations longer than the profile predicts
    // (slack-aware placement); every downstream consumer — priorities,
    // hole feasibility, occupancy, G' vertex times — sees the inflated
    // model consistently.
    for (TaskId t = 0; t < n; ++t)
      et[t] = g.task(t).profile.time(np[t]) * opt.slack_factor;
    if (!opt.comm_blind)
      for (EdgeId e = 0; e < g.num_edges(); ++e)
        west[e] = comm.edge_cost(g.edge(e).volume_bytes, np[g.edge(e).src],
                                 np[g.edge(e).dst]);
  }

  // Static priority: bottomL(t) + max incoming edge weight (Alg. 2 step 4).
  std::vector<double> prio(n);
  {
    LOCMPS_SPAN(obs, "locbs.priority");
    const Levels lv = compute_levels(
        g, [&](TaskId t) { return et[t]; }, [&](EdgeId e) { return west[e]; });
    for (TaskId t = 0; t < n; ++t) {
      double max_in = 0.0;
      for (EdgeId e : g.in_edges(t)) max_in = std::max(max_in, west[e]);
      prio[t] = lv.bottom[t] + max_in;
    }
  }

  Timeline timeline(P);
  LocBSResult res{Schedule(n, P), ScheduleDag(g), 0.0};
  std::vector<double> ft(n, 0.0);
  std::vector<std::vector<ProcId>> placed(n);  // ascending proc lists
  std::vector<char> done(n, 0);

  // Sorted, deduplicated finish times of placed tasks: the only instants at
  // which processor availability changes (every busy window ends at a task
  // finish), hence the complete set of hole-start candidates.
  std::vector<double> finish_events;
  finish_events.reserve(n);

  // Import the frozen prefix (tasks already executing at replan time).
  std::size_t n_frozen = 0;
  if (fixed != nullptr) {
    if (fixed->placements == nullptr)
      throw std::invalid_argument("locbs: FixedPrefix without placements");
    for (TaskId t = 0; t < n; ++t) {
      if (!fixed->is_frozen(t)) continue;
      const Placement& pl = fixed->placements->at(t);
      if (!pl.scheduled())
        throw std::invalid_argument("locbs: frozen task not placed");
      res.schedule.place(t, pl.busy_from, pl.start, pl.finish, pl.procs);
      timeline.occupy(pl.procs, pl.busy_from, pl.finish);
      finish_events.push_back(pl.finish);
      ft[t] = pl.finish;
      placed[t] = pl.procs.to_vector();
      done[t] = 1;
      res.dag.set_vertex_time(t, pl.finish - pl.start);
      ++n_frozen;
    }
    std::sort(finish_events.begin(), finish_events.end(), total_less);
    finish_events.erase(
        std::unique(finish_events.begin(), finish_events.end()),
        finish_events.end());
  }

  std::vector<std::size_t> waiting(n);
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < n; ++t) {
    if (done[t]) continue;
    std::size_t open = 0;
    for (EdgeId e : g.in_edges(t)) open += done[g.edge(e).src] ? 0 : 1;
    waiting[t] = open;
    if (open == 0) ready.push_back(t);
  }

  // Scratch buffers shared across task placements (hot loop: no per-task
  // heap churn).
  struct DursCache {
    std::vector<ProcId> procs;
    std::vector<double> durs;
  };
  DursCache durs_cache[4];
  std::vector<double> score(P);
  std::vector<EdgeId> comm_edges;
  std::vector<double> until_of(P);
  std::vector<ProcId> eligible;
  eligible.reserve(P);
  std::vector<ProcId> sel;
  sel.reserve(P);
  std::vector<double> times;
  times.reserve(n + 1);
  std::vector<Timeline::FreeProc> avail_scratch;
  obs::ShortlistRecorder shortlist;

  for (std::size_t scheduled = n_frozen; scheduled < n; ++scheduled) {
    // Highest-priority ready task.
    std::size_t pick = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (prio[ready[i]] > prio[ready[pick]] ||
          (prio[ready[i]] == prio[ready[pick]] && ready[i] < ready[pick]))
        pick = i;
    }
    const TaskId tp = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();

    const std::size_t need = np[tp];
    const double exec = et[tp];

    // Per-placement telemetry, accumulated in plain locals and flushed
    // once at commit so the obs-off path never touches the registry.
    std::size_t holes_probed = 0;
    bool scan_pruned = false;

    // Ready time and per-processor locality score (bytes of input resident).
    double est0 = fixed != nullptr ? fixed->not_before : 0.0;
    for (EdgeId e : g.in_edges(tp)) est0 = std::max(est0, ft[g.edge(e).src]);
    std::fill(score.begin(), score.end(), 0.0);
    // In-edges that actually carry data (the only ones that cost anything).
    comm_edges.clear();
    if (!opt.comm_blind) {
      for (EdgeId e : g.in_edges(tp))
        if (g.edge(e).volume_bytes > 0.0) comm_edges.push_back(e);
    }
    if (opt.locality) {
      for (EdgeId e : comm_edges) {
        const Edge& ed = g.edge(e);
        const double share =
            ed.volume_bytes / static_cast<double>(placed[ed.src].size());
        for (ProcId q : placed[ed.src]) score[q] += share;
      }
    }

    // Redistribution durations of each comm edge onto a given subset.
    // Candidate subsets repeat heavily across probe instants, so small
    // keyed caches (one per subset flavour: locality-first, horizon-first,
    // shadow, commit) remove most remote_fraction work. Invalidate for
    // this task.
    for (auto& c : durs_cache) c.procs.clear();
    auto durs_for = [&](const std::vector<ProcId>& procs,
                        int slot) -> const std::vector<double>& {
      DursCache& c = durs_cache[slot];
      if (procs == c.procs) return c.durs;
      // Span at the cache-miss level only: a per-remote_fraction span
      // would dominate the hole scan it is meant to measure.
      LOCMPS_SPAN(obs, "locbs.redist_durs");
      c.procs = procs;
      c.durs.resize(comm_edges.size());
      for (std::size_t k = 0; k < comm_edges.size(); ++k) {
        const Edge& ed = g.edge(comm_edges[k]);
        const double rv =
            opt.locality
                ? ed.volume_bytes * remote_fraction(placed[ed.src], procs)
                : ed.volume_bytes;
        c.durs[k] =
            comm.transfer_duration(rv, placed[ed.src].size(), need);
      }
      return c.durs;
    };

    // Timing of a chosen processor subset: start / finish / busy-from.
    auto time_on = [&](double tau, const std::vector<ProcId>& procs, int slot,
                       Candidate& c) {
      c.procs = procs;
      c.subset = slot;
      if (opt.comm_blind || comm_edges.empty()) {
        c.start = std::max(tau, est0);
        c.busy_from = c.start;
        c.resource_induced = later_than(tau, est0);
        c.touch = c.start;
        c.finish = c.start + exec;
        return;
      }
      const std::vector<double>& durs = durs_for(procs, slot);
      double arrive = est0;  // latest input arrival (overlap mode)
      double comm_total = 0.0;
      for (std::size_t k = 0; k < comm_edges.size(); ++k) {
        comm_total += durs[k];
        arrive =
            std::max(arrive, ft[g.edge(comm_edges[k]).src] + durs[k]);
      }
      if (overlap) {
        c.start = std::max(tau, arrive);
        c.busy_from = c.start;
        c.resource_induced = later_than(tau, arrive);
        c.touch = c.start;
      } else {
        // Transfers occupy the destination processors and serialize.
        const double base = std::max(tau, est0);
        c.start = base + comm_total;
        c.busy_from = base;
        c.resource_induced = later_than(tau, est0);
        c.touch = base;
      }
      c.finish = c.start + exec;
    };

    Candidate best;

    // Decision provenance: record the scored shortlist and track the
    // distinct runner-up (different subset or start). The runner-up feeds
    // both the decision record's margin and the perturb_task hook, which
    // must work even without an attached sink.
    Candidate second;
    const bool want_prov = obs::wants_events(obs);
    const bool want_second = want_prov || tp == opt.perturb_task;
    std::uint64_t cands_scored = 0;
    shortlist.clear();

    // Two candidates are the same decision if they commit the same
    // processors at the same instant; only a distinct one qualifies as
    // the runner-up (otherwise the margin degenerates to 0).
    auto distinct_cand = [](const Candidate& a, const Candidate& b) {
      return a.procs != b.procs || !about(a.start, b.start);
    };

    // Shadow alternatives (anti-locality subsets, see probe()): scored
    // for the shortlist and runner-up only, never eligible to win —
    // attaching a sink or arming the perturb hook must not change the
    // committed schedule. Kept sorted ascending by finish, bounded.
    constexpr std::size_t kMaxShadows = 8;
    std::vector<Candidate> shadows;
    auto offer_shadow = [&](Candidate&& c) {
      auto it = std::upper_bound(
          shadows.begin(), shadows.end(), c,
          [](const Candidate& x, const Candidate& y) {
            return x.finish < y.finish;
          });
      shadows.insert(it, std::move(c));
      if (shadows.size() > kMaxShadows) shadows.pop_back();
    };

    // Provenance record of one feasible candidate.
    auto record_cand = [&](const Candidate& c, double tau) {
      ++cands_scored;
      if (!want_prov) return;
      obs::ProvCandidate pc;
      pc.tau = tau;
      pc.subset = c.subset;
      pc.start = c.start;
      pc.finish = c.finish;
      pc.busy_from = c.busy_from;
      for (EdgeId e : comm_edges) {
        const Edge& ed = g.edge(e);
        pc.remote_bytes +=
            opt.locality
                ? ed.volume_bytes * remote_fraction(placed[ed.src], c.procs)
                : ed.volume_bytes;
      }
      for (ProcId q : c.procs) pc.locality_score += score[q];
      pc.procs = c.procs;
      shortlist.offer(std::move(pc));
    };

    // Lower bounds on data arrival / total transfer time over *any*
    // processor subset of size `need`: at best min(s, need) of a parent's s
    // blocks-per-period can stay local (lcm-period argument), so at least
    // the remaining fraction must cross the network. Used to prune the
    // hole scan.
    double arrive_lb = est0;
    double comm_lb = 0.0;
    for (std::size_t k = 0; k < comm_edges.size(); ++k) {
      const Edge& ed = g.edge(comm_edges[k]);
      const std::size_t s = placed[ed.src].size();
      double frac_min = 1.0;
      if (opt.locality) {
        const std::size_t gg = std::gcd(s, need);
        const double L =
            static_cast<double>(s / gg) * static_cast<double>(need);
        frac_min = 1.0 - static_cast<double>(std::min(s, need)) / L;
      }
      const double dur_min =
          comm.transfer_duration(ed.volume_bytes * frac_min, s, need);
      arrive_lb = std::max(arrive_lb, ft[ed.src] + dur_min);
      comm_lb += dur_min;
    }
    // Earliest conceivable finish when acquiring processors at time tau.
    auto finish_lb = [&](double tau) {
      return overlap ? std::max(tau, arrive_lb) + exec
                     : std::max(tau, est0) + comm_lb + exec;
    };

    // Scans one probe instant: tries two subsets of the processors idle at
    // tau — the locality-maximal one (Alg. 2 step 9) and the widest-horizon
    // one (whose windows survive redistribution-delayed starts) — and keeps
    // whichever yields the earliest feasible finish.
    auto probe = [&](double tau, const std::vector<Timeline::FreeProc>& avail) {
      ++holes_probed;
      std::fill(until_of.begin(), until_of.end(), -1.0);
      eligible.clear();
      for (const auto& f : avail) {
        // Masked-out (failed) processors take no new work.
        if (fixed != nullptr && !fixed->usable(f.proc)) continue;
        // Necessary condition: the processor must stay free at least until
        // tau + exec (the busy window can only end later than that).
        if (f.until >= tau + exec) {
          until_of[f.proc] = f.until;
          eligible.push_back(f.proc);
        }
      }
      if (eligible.size() < need) return;
      auto feasible = [&](const Candidate& c) {
        for (ProcId q : c.procs)
          if (until_of[q] < c.finish) return false;
        return true;
      };
      auto consider = [&](std::vector<ProcId>& procs, int slot) {
        std::sort(procs.begin(), procs.end());
        Candidate c;
        time_on(tau, procs, slot, c);
        if (!feasible(c)) return;
        if (want_prov || want_second) record_cand(c, tau);
        if (c.finish < best.finish) {
          if (want_second && best.finish < kInf && distinct_cand(best, c))
            second = std::move(best);
          best = std::move(c);
        } else if (want_second && c.finish < second.finish &&
                   distinct_cand(c, best)) {
          second = std::move(c);
        }
      };
      // Locality-first subset (ties broken towards longer idle windows).
      sel.assign(eligible.begin(), eligible.end());
      std::nth_element(sel.begin(), sel.begin() + need - 1, sel.end(),
                       [&](ProcId a, ProcId b) {
                         if (score[a] != score[b]) return score[a] > score[b];
                         if (until_of[a] != until_of[b])
                           return until_of[a] > until_of[b];
                         return a < b;
                       });
      sel.resize(need);
      consider(sel, 0);
      // Horizon-first subset (widest windows).
      sel.assign(eligible.begin(), eligible.end());
      std::nth_element(sel.begin(), sel.begin() + need - 1, sel.end(),
                       [&](ProcId a, ProcId b) {
                         if (until_of[a] != until_of[b])
                           return until_of[a] > until_of[b];
                         if (score[a] != score[b]) return score[a] > score[b];
                         return a < b;
                       });
      sel.resize(need);
      consider(sel, 1);
      // Shadow subset (provenance / perturbation only): the anti-locality
      // pick. It shows what the locality preference bought — and gives the
      // runner-up fold a genuinely different processor set when both real
      // subsets coincide (common once every eligible window is unbounded,
      // where the two orderings collapse to the same tie-break). Never
      // allowed to win: the committed schedule must be identical whether
      // or not a sink or the perturb hook asked for it.
      if (want_second && eligible.size() > need) {
        sel.assign(eligible.begin(), eligible.end());
        std::nth_element(sel.begin(), sel.begin() + need - 1, sel.end(),
                         [&](ProcId a, ProcId b) {
                           if (score[a] != score[b])
                             return score[a] < score[b];
                           if (until_of[a] != until_of[b])
                             return until_of[a] > until_of[b];
                           return a < b;
                         });
        sel.resize(need);
        std::sort(sel.begin(), sel.end());
        Candidate c;
        time_on(tau, sel, 2, c);
        if (feasible(c)) {
          record_cand(c, tau);
          offer_shadow(std::move(c));
        }
      }
    };

    // When a runner-up is wanted, the scan keeps probing a few instants
    // past the prune point: finish_lb guarantees those candidates cannot
    // beat `best` (the commit is untouched), but they populate the
    // shortlist and give the margin / perturb hook a distinct alternative
    // that the pruned scan would never see.
    constexpr std::size_t kProvExtension = 8;
    std::size_t extension = 0;

    LOCMPS_SPAN(obs, "locbs.place");
    if (opt.backfill) {
      LOCMPS_SPAN(obs, "locbs.hole_scan");
      times.clear();
      times.push_back(est0);
      for (auto it = std::upper_bound(finish_events.begin(),
                                      finish_events.end(), est0);
           it != finish_events.end(); ++it)
        times.push_back(*it);
      for (std::size_t i = 0; i < times.size(); ++i) {
        timeline.available_at(times[i], avail_scratch);
        probe(times[i], avail_scratch);
        // Monotone pruning: any later hole acquires processors at
        // >= times[i+1], and no subset beats the arrival lower bound.
        if (best.finish < kInf && i + 1 < times.size() &&
            best.finish <= finish_lb(times[i + 1])) {
          scan_pruned = true;
          if (!want_second || second.finish < kInf ||
              ++extension > kProvExtension)
            break;
        }
      }
    } else {
      // No-backfill variant (Fig 6): only the latest free time of each
      // processor is consulted; holes earlier in the chart are ignored.
      LOCMPS_SPAN(obs, "locbs.hole_scan");
      std::vector<double> taus;
      taus.reserve(P);
      for (ProcId q = 0; q < P; ++q)
        taus.push_back(std::max(est0, timeline.latest_free_time(q)));
      std::sort(taus.begin(), taus.end(), total_less);
      taus.erase(std::unique(taus.begin(), taus.end()), taus.end());
      for (std::size_t i = 0; i < taus.size(); ++i) {
        const double tau = taus[i];
        std::vector<Timeline::FreeProc> avail;
        for (ProcId q = 0; q < P; ++q)
          if (timeline.latest_free_time(q) <= tau)
            avail.push_back(Timeline::FreeProc{q, kForever});
        probe(tau, avail);
        if (best.finish < kInf && i + 1 < taus.size() &&
            best.finish <= finish_lb(taus[i + 1])) {
          scan_pruned = true;
          if (!want_second || second.finish < kInf ||
              ++extension > kProvExtension)
            break;
        }
      }
    }

    if (!(best.finish < kInf))
      throw std::logic_error("locbs: no feasible slot found");

    // Fold the shadow alternatives into the runner-up: the earliest-
    // finishing one that is distinct from and no earlier than the winner
    // (a shadow must never flip the margin negative).
    for (const Candidate& s : shadows) {
      if (s.finish < best.finish || !distinct_cand(s, best)) continue;
      if (s.finish < second.finish) second = s;
      break;
    }

    // Margin over the distinct runner-up. Measured before any perturbation:
    // it describes the scan, not the commit.
    const double margin =
        second.finish < kInf ? second.finish - best.finish : -1.0;
    // Seeded-divergence hook: adopt the runner-up for this one task so a
    // controlled placement flip exists for rundiff attribution tests.
    const bool perturb_this = tp == opt.perturb_task && second.finish < kInf;
    if (perturb_this) std::swap(best, second);

    // Chart frontier before this placement: a task that acquires its
    // processors strictly earlier was backfilled into a hole.
    const double chart_end = finish_events.empty() ? 0.0 : finish_events.back();

    // Commit the placement.
    LOCMPS_SPAN(obs, "locbs.commit");
    ProcessorSet pset(P);
    for (ProcId q : best.procs) pset.insert(q);
    timeline.occupy(pset, best.busy_from, best.finish);
    {
      const auto it = std::lower_bound(finish_events.begin(),
                                       finish_events.end(), best.finish);
      if (it == finish_events.end() || *it != best.finish)
        finish_events.insert(it, best.finish);
    }
    res.schedule.place(tp, best.busy_from, best.start, best.finish, pset);
    placed[tp] = best.procs;
    ft[tp] = best.finish;
    done[tp] = 1;

    // Realized weights for the schedule-DAG.
    res.dag.set_vertex_time(tp, exec);
    if (!comm_edges.empty()) {
      const std::vector<double>& durs = durs_for(best.procs, 3);
      for (std::size_t k = 0; k < comm_edges.size(); ++k)
        res.dag.set_edge_time(comm_edges[k], durs[k]);
    }

    // Pseudo-edges for resource-induced waiting (Alg. 2 steps 17-18): link
    // every task finishing exactly when we could finally proceed and
    // sharing a processor with us.
    if (best.resource_induced) {
      // Direct parents already impose the dependence; skip them.
      std::vector<char> is_parent(n, 0);
      for (EdgeId e : g.in_edges(tp)) is_parent[g.edge(e).src] = 1;
      for (TaskId ti = 0; ti < n; ++ti) {
        if (ti == tp || !done[ti] || is_parent[ti]) continue;
        if (about(ft[ti], best.touch) &&
            res.schedule.at(ti).procs.intersection_count(pset) > 0)
          res.dag.add_pseudo_edge(ti, tp);
      }
    }

    if (obs != nullptr) {
      // Realized redistribution split for this placement: bytes that stay
      // on shared block-cyclic-aligned processors vs. bytes that cross
      // the network (Section III-B locality saving).
      double local_bytes = 0.0, remote_bytes = 0.0;
      for (EdgeId e : comm_edges) {
        const Edge& ed = g.edge(e);
        const double rv =
            opt.locality
                ? ed.volume_bytes * remote_fraction(placed[ed.src], best.procs)
                : ed.volume_bytes;
        remote_bytes += rv;
        local_bytes += ed.volume_bytes - rv;
      }
      const bool backfilled = later_than(chart_end, best.busy_from);
      if (met != nullptr) {
        met->add("locbs.tasks_placed");
        met->add("locbs.holes_scanned", static_cast<double>(holes_probed));
        if (backfilled) met->add("locbs.backfill_hits");
        if (scan_pruned) met->add("locbs.scan_cutoffs");
        met->add(best.subset == 0 ? "locbs.locality_subset_wins"
                                  : "locbs.horizon_subset_wins");
        met->add("locbs.local_bytes", local_bytes);
        met->add("locbs.remote_bytes", remote_bytes);
      }
      if (obs::wants_events(obs)) {
        std::string procs_str;
        for (ProcId q : best.procs) {
          if (!procs_str.empty()) procs_str += ',';
          procs_str += std::to_string(q);
        }
        obs->sink->emit(
            obs::Event("locbs.place")
                .with("task", tp)
                .with("np", static_cast<std::uint64_t>(need))
                .with("busy_from", best.busy_from)
                .with("start", best.start)
                .with("finish", best.finish)
                .with("holes_scanned",
                      static_cast<std::uint64_t>(holes_probed))
                .with("backfill", backfilled)
                .with("pruned", scan_pruned)
                .with("subset",
                      best.subset == 0 ? "locality" : "horizon")
                .with("local_bytes", local_bytes)
                .with("remote_bytes", remote_bytes)
                .with("procs", procs_str));
        obs::PlacementDecision d;
        d.task = tp;
        d.np = need;
        d.prio = prio[tp];
        d.est = est0;
        d.start = best.start;
        d.finish = best.finish;
        d.busy_from = best.busy_from;
        d.backfill_branch = opt.backfill;
        d.locality_branch = opt.locality;
        d.comm_blind = opt.comm_blind;
        d.backfilled = backfilled;
        d.pruned = scan_pruned;
        d.perturbed = perturb_this;
        d.holes_probed = holes_probed;
        d.candidates_scored = cands_scored;
        d.margin = margin;
        d.local_bytes = local_bytes;
        d.remote_bytes = remote_bytes;
        obs::ProvCandidate win;
        win.tau = best.touch;
        win.subset = best.subset;
        win.start = best.start;
        win.finish = best.finish;
        win.busy_from = best.busy_from;
        win.remote_bytes = remote_bytes;
        for (ProcId q : best.procs) win.locality_score += score[q];
        win.procs = best.procs;
        d.winner = shortlist.ensure(win);
        d.shortlist = shortlist.entries();
        obs->sink->emit(obs::decision_event(d));
      }
    }

    for (EdgeId e : g.out_edges(tp))
      if (--waiting[g.edge(e).dst] == 0) ready.push_back(g.edge(e).dst);
  }

  res.makespan = res.schedule.makespan();
  return res;
}

}  // namespace locmps
