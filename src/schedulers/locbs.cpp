#include "schedulers/locbs.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

#include "graph/algorithms.hpp"
#include "network/block_cyclic.hpp"
#include "obs/profile.hpp"
#include "obs/provenance.hpp"
#include "schedule/timeline.hpp"
#include "schedulers/incremental.hpp"
#include "util/stats.hpp"

namespace locmps {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relative tolerance for "same instant" comparisons.
bool about(double a, double b) {
  return std::fabs(a - b) <= 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
}
bool later_than(double a, double b) {
  return a > b + 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// A candidate placement found during the hole scan.
struct Candidate {
  double finish = kInf;
  double start = 0.0;
  double busy_from = 0.0;
  bool resource_induced = false;  ///< start delayed by processor contention
  double touch = 0.0;             ///< instant whose finishers blocked us
  int subset = -1;                ///< 0 = locality-first, 1 = horizon-first
  std::vector<ProcId> procs;      ///< ascending
};

/// Brings \p ps up to date for \p np: execution times, allocation-stage
/// edge costs, bottom levels, and the static priority bottomL(t) + max
/// incoming edge weight (Alg. 2 step 4). A fresh state is computed in
/// full; a valid one is updated via the dirty region of the np diff —
/// only changed tasks, their incident edges, and the ancestors their
/// bottom levels propagate to are recomputed, with the exact arithmetic
/// of the full pass, so the arrays stay bit-identical to a from-scratch
/// computation (docs/incremental.md). Elided edge-cost evaluations are
/// credited to the comm model's evaluation counter so "comm.cost_evals"
/// matches the reference run.
void update_priority_state(const TaskGraph& g, const Allocation& np,
                           const CommModel& comm, const LocBSOptions& opt,
                           PriorityState& ps, obs::ObsContext* obs) {
  const std::size_t n = g.num_tasks();
  const std::size_t ne = g.num_edges();
  if (!ps.valid || ps.np.size() != n || ps.west.size() != ne) {
    {
      LOCMPS_SPAN(obs, "locbs.edge_costs");
      ps.et.resize(n);
      ps.west.assign(ne, 0.0);
      // slack_factor > 1 books reservations longer than the profile
      // predicts (slack-aware placement); every downstream consumer —
      // priorities, hole feasibility, occupancy, G' vertex times — sees
      // the inflated model consistently.
      for (TaskId t = 0; t < n; ++t)
        ps.et[t] = g.task(t).profile.time(np[t]) * opt.slack_factor;
      if (!opt.comm_blind)
        for (EdgeId e = 0; e < ne; ++e)
          ps.west[e] = comm.edge_cost(g.edge(e).volume_bytes,
                                      np[g.edge(e).src], np[g.edge(e).dst]);
    }
    LOCMPS_SPAN(obs, "locbs.priority");
    ps.order = topological_order(g);
    ps.bottom.assign(n, 0.0);
    for (auto it = ps.order.rbegin(); it != ps.order.rend(); ++it) {
      const TaskId t = *it;
      double below = 0.0;
      for (EdgeId e : g.out_edges(t))
        below = std::max(below, ps.west[e] + ps.bottom[g.edge(e).dst]);
      ps.bottom[t] = ps.et[t] + below;
    }
    ps.prio.resize(n);
    for (TaskId t = 0; t < n; ++t) {
      double max_in = 0.0;
      for (EdgeId e : g.in_edges(t)) max_in = std::max(max_in, ps.west[e]);
      ps.prio[t] = ps.bottom[t] + max_in;
    }
    ps.np = np;
    ps.valid = true;
    return;
  }

  LOCMPS_SPAN(obs, "locbs.priority");
  ps.et_changed.assign(n, 0);
  ps.bottom_changed.assign(n, 0);
  ps.prio_dirty.assign(n, 0);
  ps.edge_seen.assign(ne, 0);
  std::size_t recomputed_edges = 0;
  // An edge cost depends on both endpoint widths; recompute each incident
  // edge once. A changed cost dirties the source's bottom level (west
  // feeds its out-edge max) and the destination's priority (west feeds
  // its in-edge max).
  auto recompute_edge = [&](EdgeId e) {
    if (ps.edge_seen[e]) return;
    ps.edge_seen[e] = 1;
    ++recomputed_edges;
    const Edge& ed = g.edge(e);
    const double w = comm.edge_cost(ed.volume_bytes, np[ed.src], np[ed.dst]);
    if (w != ps.west[e]) {  // LINT-ALLOW(float-eq)
      ps.west[e] = w;
      ps.et_changed[ed.src] = 1;  // bottom input changed
      ps.prio_dirty[ed.dst] = 1;
    }
  };
  for (TaskId t = 0; t < n; ++t) {
    if (ps.np[t] == np[t]) continue;
    const double v = g.task(t).profile.time(np[t]) * opt.slack_factor;
    if (v != ps.et[t]) ps.et_changed[t] = 1;  // LINT-ALLOW(float-eq)
    ps.et[t] = v;
    if (!opt.comm_blind) {
      for (EdgeId e : g.in_edges(t)) recompute_edge(e);
      for (EdgeId e : g.out_edges(t)) recompute_edge(e);
    }
  }
  // Bottom levels: one reverse-topological walk recomputing exactly the
  // tasks whose inputs changed; propagation stops where the recomputed
  // value is bit-identical to the cached one.
  for (auto it = ps.order.rbegin(); it != ps.order.rend(); ++it) {
    const TaskId t = *it;
    bool need = ps.et_changed[t] != 0;
    if (!need) {
      for (EdgeId e : g.out_edges(t)) {
        if (ps.bottom_changed[g.edge(e).dst]) {
          need = true;
          break;
        }
      }
    }
    if (!need) continue;
    double below = 0.0;
    for (EdgeId e : g.out_edges(t))
      below = std::max(below, ps.west[e] + ps.bottom[g.edge(e).dst]);
    const double nb = ps.et[t] + below;
    if (nb != ps.bottom[t]) {  // LINT-ALLOW(float-eq)
      ps.bottom[t] = nb;
      ps.bottom_changed[t] = 1;
      ps.prio_dirty[t] = 1;
    }
  }
  for (TaskId t = 0; t < n; ++t) {
    if (!ps.prio_dirty[t]) continue;
    double max_in = 0.0;
    for (EdgeId e : g.in_edges(t)) max_in = std::max(max_in, ps.west[e]);
    ps.prio[t] = ps.bottom[t] + max_in;
  }
  // The reference pass evaluates every edge cost through the comm model;
  // credit the elided evaluations so the counter stays bit-identical
  // (tests/test_incremental.cpp checks "comm.cost_evals").
  if (!opt.comm_blind && comm.evals_cell() != nullptr)
    *comm.evals_cell() += static_cast<double>(ne - recomputed_edges);
  ps.np = np;
}

}  // namespace

LocBSResult locbs(const TaskGraph& g, const Allocation& np,
                  const CommModel& comm, const LocBSOptions& opt,
                  const FixedPrefix* fixed, obs::ObsContext* obs,
                  IncrementalContext* incr) {
  const std::size_t n = g.num_tasks();
  const std::size_t P = comm.cluster().processors;
  obs::MetricsRegistry* const met = obs::metrics_of(obs);
  obs::ScopedTimer pass_timer(met, "locbs.pass");
  LOCMPS_SPAN(obs, "locbs.pass");
  if (met != nullptr) met->add("locbs.calls");
  if (np.size() != n)
    throw std::invalid_argument("locbs: allocation size mismatch");
  if (!(opt.slack_factor >= 1.0))
    throw std::invalid_argument("locbs: slack_factor must be >= 1.0");
  if (fixed != nullptr && fixed->available != nullptr &&
      fixed->available->capacity() != P)
    throw std::invalid_argument(
        "locbs: FixedPrefix availability mask sized for a different cluster");
  // Non-frozen allocations must fit the survivor set when a degraded
  // cluster mask is active; frozen placements predate the failures and
  // may legitimately be wider.
  const std::size_t usable =
      (fixed != nullptr && fixed->available != nullptr)
          ? fixed->available->count()
          : P;
  for (std::size_t t = 0; t < n; ++t) {
    if (np[t] < 1 || np[t] > P)
      throw std::invalid_argument("locbs: np out of range");
    if (np[t] > usable && !(fixed != nullptr && fixed->is_frozen(t)))
      throw std::invalid_argument(
          "locbs: np exceeds the available (non-failed) processors");
  }

  const bool overlap = comm.overlap();

  // Allocation-dependent arrays: execution times, edge costs, bottom
  // levels, and the static priority bottomL(t) + max incoming edge weight
  // (Alg. 2 step 4). The from-scratch path computes them in full into a
  // local state; a stream updates its cached state via the dirty region
  // of the np diff — bit-identical either way (update_priority_state).
  PriorityState local_ps;
  PriorityState& ps = incr != nullptr ? incr->prio_state : local_ps;
  update_priority_state(g, np, comm, opt, ps, obs);
  const std::vector<double>& et = ps.et;
  const std::vector<double>& prio = ps.prio;

  Timeline timeline(P);
  LocBSResult res{Schedule(n, P), ScheduleDag(g), 0.0};
  std::vector<double> ft(n, 0.0);
  std::vector<std::vector<ProcId>> placed(n);  // ascending proc lists
  std::vector<char> done(n, 0);

  // Sorted, deduplicated finish times of placed tasks: the only instants at
  // which processor availability changes (every busy window ends at a task
  // finish), hence the complete set of hole-start candidates.
  std::vector<double> finish_events;
  finish_events.reserve(n);

  // Import the frozen prefix (tasks already executing at replan time).
  std::size_t n_frozen = 0;
  if (fixed != nullptr) {
    if (fixed->placements == nullptr)
      throw std::invalid_argument("locbs: FixedPrefix without placements");
    for (TaskId t = 0; t < n; ++t) {
      if (!fixed->is_frozen(t)) continue;
      const Placement& pl = fixed->placements->at(t);
      if (!pl.scheduled())
        throw std::invalid_argument("locbs: frozen task not placed");
      res.schedule.place(t, pl.busy_from, pl.start, pl.finish, pl.procs);
      timeline.occupy(pl.procs, pl.busy_from, pl.finish);
      finish_events.push_back(pl.finish);
      ft[t] = pl.finish;
      placed[t] = pl.procs.to_vector();
      done[t] = 1;
      res.dag.set_vertex_time(t, pl.finish - pl.start);
      ++n_frozen;
    }
    std::sort(finish_events.begin(), finish_events.end(), total_less);
    finish_events.erase(
        std::unique(finish_events.begin(), finish_events.end()),
        finish_events.end());
  }

  std::vector<std::size_t> waiting(n);
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < n; ++t) {
    if (done[t]) continue;
    std::size_t open = 0;
    for (EdgeId e : g.in_edges(t)) open += done[g.edge(e).src] ? 0 : 1;
    waiting[t] = open;
    if (open == 0) ready.push_back(t);
  }

  // Incremental replay (schedulers/incremental.hpp, docs/incremental.md):
  // pick the recorded evaluation with the longest matching prefix and
  // replay its placements verbatim until the first divergent priority
  // pick; only the dirty remainder is scanned. The placement scan is a
  // deterministic function of (picked task, its np, the committed prefix
  // state), so a matching pick with a matching processor count guarantees
  // a bit-identical placement — including its telemetry, which replays
  // from the recorded values.
  const ReplayRecord* rec = incr != nullptr ? incr->pick_record(np) : nullptr;
  std::size_t ri = 0;  // next recorded step to match
  bool replay_live = rec != nullptr;
  ReplayRecord newrec;  // this evaluation, recorded for future replays
  std::size_t replayed_tasks = 0;
  std::size_t scanned_tasks = 0;
  double* const evals_cell = comm.evals_cell();
  if (incr != nullptr) {
    newrec.np = np;
    newrec.steps.reserve(n - n_frozen);
  }
  // Dirty-pick mask against the chosen record: while every ready task's
  // priority is bit-identical to what the record computed and every pick
  // so far matched it, the live argmax sees the same candidate set with
  // the same keys and tie-break, so it provably returns the recorded pick
  // and the O(|ready|) scan is skipped outright.
  std::vector<char> pick_dirty;
  std::size_t ready_dirty = 0;
  if (rec != nullptr) {
    pick_dirty.assign(n, 1);
    if (rec->prio != nullptr && rec->prio->size() == n) {
      const std::vector<double>& rp = *rec->prio;
      for (TaskId t = 0; t < n; ++t)
        pick_dirty[t] = rp[t] != prio[t] ? 1 : 0;  // LINT-ALLOW(float-eq)
    }
    for (TaskId t : ready) ready_dirty += pick_dirty[t];
  }

  // Per-placement counter cells, resolved once per pass instead of ~8
  // string-keyed registry lookups per placement (cell addresses are
  // stable; obs/metrics.hpp). Resolving creates the counters at zero, so
  // a pass always exposes the full locbs.* family.
  struct PlaceCells {
    double* tasks_placed = nullptr;
    double* holes_scanned = nullptr;
    double* backfill_hits = nullptr;
    double* scan_cutoffs = nullptr;
    double* locality_wins = nullptr;
    double* horizon_wins = nullptr;
    double* local_bytes = nullptr;
    double* remote_bytes = nullptr;
  } cells;
  if (met != nullptr) {
    cells.tasks_placed = met->cell_ptr("locbs.tasks_placed");
    cells.holes_scanned = met->cell_ptr("locbs.holes_scanned");
    cells.backfill_hits = met->cell_ptr("locbs.backfill_hits");
    cells.scan_cutoffs = met->cell_ptr("locbs.scan_cutoffs");
    cells.locality_wins = met->cell_ptr("locbs.locality_subset_wins");
    cells.horizon_wins = met->cell_ptr("locbs.horizon_subset_wins");
    cells.local_bytes = met->cell_ptr("locbs.local_bytes");
    cells.remote_bytes = met->cell_ptr("locbs.remote_bytes");
  }

  // Scratch buffers shared across task placements (hot loop: no per-task
  // heap churn).
  struct DursCache {
    std::vector<ProcId> procs;
    std::vector<double> durs;
    std::vector<double> rvol;  ///< remote bytes per comm edge (pre-duration)
  };
  DursCache durs_cache[4];
  std::vector<double> score(P);
  std::vector<EdgeId> comm_edges;
  std::vector<double> until_of(P);
  std::vector<ProcId> eligible;
  eligible.reserve(P);
  std::vector<ProcId> sel;
  sel.reserve(P);
  std::vector<Timeline::FreeProc> avail_scratch;
  Timeline::Sweep sweep(timeline);
  obs::ShortlistRecorder shortlist;
  // Candidate buffers reused across placements (their proc vectors keep
  // their capacity; the per-task reset is finish = kInf).
  Candidate best;
  Candidate second;
  Candidate cand;
  std::vector<Candidate> shadows;
  std::vector<char> is_parent(n, 0);

  // Block-cyclic remote fraction, always computed directly: the fraction
  // is O(|src| + |dst|) with a tiny constant, so any hash-keyed memo of it
  // costs more per lookup than the computation it would skip (measured
  // ~6x; docs/incremental.md). Memoization lives at the evaluation level
  // (the LoC-MPS probe memo) where a hit elides a whole LoCBS pass.
  auto rfrac = [&](const std::vector<ProcId>& src,
                   const std::vector<ProcId>& dst) {
    return remote_fraction(src, dst);
  };

  for (std::size_t scheduled = n_frozen; scheduled < n; ++scheduled) {
    TaskId tp;
    if (replay_live && ready_dirty == 0 && ri < rec->steps.size()) {
      // Clean window: no ready task's priority differs from the record's
      // and every pick so far matched it, so the ready sets are identical
      // and the argmax below would return exactly the recorded pick.
      tp = rec->steps[ri]->task;
      std::size_t i = 0;
      const std::size_t m = ready.size();
      while (i < m && ready[i] != tp) ++i;
      if (i == m) throw std::logic_error("locbs: replay pick not ready");
      ready[i] = ready.back();
      ready.pop_back();
    } else {
      // Highest-priority ready task.
      std::size_t pick = 0;
      for (std::size_t i = 1; i < ready.size(); ++i) {
        if (prio[ready[i]] > prio[ready[pick]] ||
            (prio[ready[i]] == prio[ready[pick]] && ready[i] < ready[pick]))
          pick = i;
      }
      tp = ready[pick];
      ready[pick] = ready.back();
      ready.pop_back();
      if (replay_live) ready_dirty -= pick_dirty[tp];
    }

    const std::size_t need = np[tp];
    const double exec = et[tp];

    // Replay fast path: the live pick and its processor count match the
    // recorded step, so the whole placement — timings, processors, G'
    // weights, pseudo-edges, telemetry — is provably the one a full scan
    // would produce. Commit it directly; the step is shared into the new
    // record by pointer (one refcount bump, no deep copy).
    if (replay_live) {
      const ReplayStep* rs =
          ri < rec->steps.size() ? rec->steps[ri].get() : nullptr;
      if (rs != nullptr && rs->task == tp && rs->np == need) {
        ++ri;
        timeline.occupy(rs->pset, rs->busy_from, rs->finish);
        {
          const auto it = std::lower_bound(finish_events.begin(),
                                           finish_events.end(), rs->finish);
          if (it == finish_events.end() || *it != rs->finish)
            finish_events.insert(it, rs->finish);
        }
        res.schedule.place(tp, rs->busy_from, rs->start, rs->finish, rs->pset);
        placed[tp] = rs->procs;
        ft[tp] = rs->finish;
        done[tp] = 1;
        res.dag.set_vertex_time(tp, exec);
        for (const auto& [e, w] : rs->edge_times) res.dag.set_edge_time(e, w);
        for (TaskId pd : rs->pseudo_preds) res.dag.add_pseudo_edge(pd, tp);
        if (evals_cell != nullptr) *evals_cell += rs->cost_evals;
        if (met != nullptr) {
          *cells.tasks_placed += 1.0;
          *cells.holes_scanned += static_cast<double>(rs->holes_probed);
          if (rs->backfilled) *cells.backfill_hits += 1.0;
          if (rs->pruned) *cells.scan_cutoffs += 1.0;
          *(rs->subset == 0 ? cells.locality_wins : cells.horizon_wins) += 1.0;
          *cells.local_bytes += rs->local_bytes;
          *cells.remote_bytes += rs->remote_bytes;
        }
        newrec.steps.push_back(rec->steps[ri - 1]);
        ++replayed_tasks;
        for (EdgeId e : g.out_edges(tp)) {
          const TaskId dst = g.edge(e).dst;
          if (--waiting[dst] == 0) {
            ready.push_back(dst);
            ready_dirty += pick_dirty[dst];
          }
        }
        continue;
      }
      replay_live = false;  // first divergence: scan the dirty remainder
    }
    const double evals_before = evals_cell != nullptr ? *evals_cell : 0.0;

    // Per-placement telemetry, accumulated in plain locals and flushed
    // once at commit so the obs-off path never touches the registry.
    std::size_t holes_probed = 0;
    bool scan_pruned = false;

    // Ready time and per-processor locality score (bytes of input resident).
    double est0 = fixed != nullptr ? fixed->not_before : 0.0;
    for (EdgeId e : g.in_edges(tp)) est0 = std::max(est0, ft[g.edge(e).src]);
    std::fill(score.begin(), score.end(), 0.0);
    // In-edges that actually carry data (the only ones that cost anything).
    comm_edges.clear();
    if (!opt.comm_blind) {
      for (EdgeId e : g.in_edges(tp))
        if (g.edge(e).volume_bytes > 0.0) comm_edges.push_back(e);
    }
    if (opt.locality) {
      for (EdgeId e : comm_edges) {
        const Edge& ed = g.edge(e);
        const double share =
            ed.volume_bytes / static_cast<double>(placed[ed.src].size());
        for (ProcId q : placed[ed.src]) score[q] += share;
      }
    }

    // Redistribution durations of each comm edge onto a given subset.
    // Candidate subsets repeat heavily across probe instants, so small
    // keyed caches (one per subset flavour: locality-first, horizon-first,
    // shadow, commit) remove most remote_fraction work. Invalidate for
    // this task.
    for (auto& c : durs_cache) c.procs.clear();
    auto durs_for = [&](const std::vector<ProcId>& procs,
                        int slot) -> const std::vector<double>& {
      DursCache& c = durs_cache[slot];
      if (procs == c.procs) return c.durs;
      // Span at the cache-miss level only: a per-remote_fraction span
      // would dominate the hole scan it is meant to measure.
      LOCMPS_SPAN(obs, "locbs.redist_durs");
      c.procs = procs;
      c.durs.resize(comm_edges.size());
      c.rvol.resize(comm_edges.size());
      for (std::size_t k = 0; k < comm_edges.size(); ++k) {
        const Edge& ed = g.edge(comm_edges[k]);
        const double rv =
            opt.locality ? ed.volume_bytes * rfrac(placed[ed.src], procs)
                         : ed.volume_bytes;
        c.rvol[k] = rv;
        c.durs[k] =
            comm.transfer_duration(rv, placed[ed.src].size(), need);
      }
      return c.durs;
    };

    // Timing of a chosen processor subset: start / finish / busy-from.
    auto time_on = [&](double tau, const std::vector<ProcId>& procs, int slot,
                       Candidate& c) {
      c.procs = procs;
      c.subset = slot;
      if (opt.comm_blind || comm_edges.empty()) {
        c.start = std::max(tau, est0);
        c.busy_from = c.start;
        c.resource_induced = later_than(tau, est0);
        c.touch = c.start;
        c.finish = c.start + exec;
        return;
      }
      const std::vector<double>& durs = durs_for(procs, slot);
      double arrive = est0;  // latest input arrival (overlap mode)
      double comm_total = 0.0;
      for (std::size_t k = 0; k < comm_edges.size(); ++k) {
        comm_total += durs[k];
        arrive =
            std::max(arrive, ft[g.edge(comm_edges[k]).src] + durs[k]);
      }
      if (overlap) {
        c.start = std::max(tau, arrive);
        c.busy_from = c.start;
        c.resource_induced = later_than(tau, arrive);
        c.touch = c.start;
      } else {
        // Transfers occupy the destination processors and serialize.
        const double base = std::max(tau, est0);
        c.start = base + comm_total;
        c.busy_from = base;
        c.resource_induced = later_than(tau, est0);
        c.touch = base;
      }
      c.finish = c.start + exec;
    };

    best.finish = kInf;

    // Decision provenance: record the scored shortlist and track the
    // distinct runner-up (different subset or start). The runner-up feeds
    // both the decision record's margin and the perturb_task hook, which
    // must work even without an attached sink.
    second.finish = kInf;
    const bool want_prov = obs::wants_events(obs);
    const bool want_second = want_prov || tp == opt.perturb_task;
    std::uint64_t cands_scored = 0;
    shortlist.clear();

    // Two candidates are the same decision if they commit the same
    // processors at the same instant; only a distinct one qualifies as
    // the runner-up (otherwise the margin degenerates to 0).
    auto distinct_cand = [](const Candidate& a, const Candidate& b) {
      return a.procs != b.procs || !about(a.start, b.start);
    };

    // Shadow alternatives (anti-locality subsets, see probe()): scored
    // for the shortlist and runner-up only, never eligible to win —
    // attaching a sink or arming the perturb hook must not change the
    // committed schedule. Kept sorted ascending by finish, bounded.
    constexpr std::size_t kMaxShadows = 8;
    shadows.clear();
    auto offer_shadow = [&](Candidate&& c) {
      auto it = std::upper_bound(
          shadows.begin(), shadows.end(), c,
          [](const Candidate& x, const Candidate& y) {
            return x.finish < y.finish;
          });
      shadows.insert(it, std::move(c));
      if (shadows.size() > kMaxShadows) shadows.pop_back();
    };

    // Provenance record of one feasible candidate.
    auto record_cand = [&](const Candidate& c, double tau) {
      ++cands_scored;
      if (!want_prov) return;
      obs::ProvCandidate pc;
      pc.tau = tau;
      pc.subset = c.subset;
      pc.start = c.start;
      pc.finish = c.finish;
      pc.busy_from = c.busy_from;
      for (EdgeId e : comm_edges) {
        const Edge& ed = g.edge(e);
        pc.remote_bytes +=
            opt.locality ? ed.volume_bytes * rfrac(placed[ed.src], c.procs)
                         : ed.volume_bytes;
      }
      for (ProcId q : c.procs) pc.locality_score += score[q];
      pc.procs = c.procs;
      shortlist.offer(std::move(pc));
    };

    // Lower bounds on data arrival / total transfer time over *any*
    // processor subset of size `need`: at best min(s, need) of a parent's s
    // blocks-per-period can stay local (lcm-period argument), so at least
    // the remaining fraction must cross the network. Used to prune the
    // hole scan.
    double arrive_lb = est0;
    double comm_lb = 0.0;
    for (std::size_t k = 0; k < comm_edges.size(); ++k) {
      const Edge& ed = g.edge(comm_edges[k]);
      const std::size_t s = placed[ed.src].size();
      double frac_min = 1.0;
      if (opt.locality) {
        const std::size_t gg = std::gcd(s, need);
        const double L =
            static_cast<double>(s / gg) * static_cast<double>(need);
        frac_min = 1.0 - static_cast<double>(std::min(s, need)) / L;
      }
      const double dur_min =
          comm.transfer_duration(ed.volume_bytes * frac_min, s, need);
      arrive_lb = std::max(arrive_lb, ft[ed.src] + dur_min);
      comm_lb += dur_min;
    }
    // Earliest conceivable finish when acquiring processors at time tau.
    auto finish_lb = [&](double tau) {
      return overlap ? std::max(tau, arrive_lb) + exec
                     : std::max(tau, est0) + comm_lb + exec;
    };

    // Scans one probe instant: tries two subsets of the processors idle at
    // tau — the locality-maximal one (Alg. 2 step 9) and the widest-horizon
    // one (whose windows survive redistribution-delayed starts) — and keeps
    // whichever yields the earliest feasible finish.
    auto probe = [&](double tau, const std::vector<Timeline::FreeProc>& avail) {
      ++holes_probed;
      std::fill(until_of.begin(), until_of.end(), -1.0);
      eligible.clear();
      for (const auto& f : avail) {
        // Masked-out (failed) processors take no new work.
        if (fixed != nullptr && !fixed->usable(f.proc)) continue;
        // Necessary condition: the processor must stay free at least until
        // tau + exec (the busy window can only end later than that).
        if (f.until >= tau + exec) {
          until_of[f.proc] = f.until;
          eligible.push_back(f.proc);
        }
      }
      if (eligible.size() < need) return;
      auto feasible = [&](const Candidate& c) {
        for (ProcId q : c.procs)
          if (until_of[q] < c.finish) return false;
        return true;
      };
      auto consider = [&](std::vector<ProcId>& procs, int slot) {
        std::sort(procs.begin(), procs.end());
        time_on(tau, procs, slot, cand);
        if (!feasible(cand)) return;
        if (want_prov || want_second) record_cand(cand, tau);
        if (cand.finish < best.finish) {
          if (want_second && best.finish < kInf && distinct_cand(best, cand))
            std::swap(second, best);
          std::swap(best, cand);
        } else if (want_second && cand.finish < second.finish &&
                   distinct_cand(cand, best)) {
          std::swap(second, cand);
        }
      };
      // Locality-first subset (ties broken towards longer idle windows).
      sel.assign(eligible.begin(), eligible.end());
      std::nth_element(sel.begin(), sel.begin() + need - 1, sel.end(),
                       [&](ProcId a, ProcId b) {
                         if (score[a] != score[b]) return score[a] > score[b];
                         if (until_of[a] != until_of[b])
                           return until_of[a] > until_of[b];
                         return a < b;
                       });
      sel.resize(need);
      consider(sel, 0);
      // Horizon-first subset (widest windows).
      sel.assign(eligible.begin(), eligible.end());
      std::nth_element(sel.begin(), sel.begin() + need - 1, sel.end(),
                       [&](ProcId a, ProcId b) {
                         if (until_of[a] != until_of[b])
                           return until_of[a] > until_of[b];
                         if (score[a] != score[b]) return score[a] > score[b];
                         return a < b;
                       });
      sel.resize(need);
      consider(sel, 1);
      // Shadow subset (provenance / perturbation only): the anti-locality
      // pick. It shows what the locality preference bought — and gives the
      // runner-up fold a genuinely different processor set when both real
      // subsets coincide (common once every eligible window is unbounded,
      // where the two orderings collapse to the same tie-break). Never
      // allowed to win: the committed schedule must be identical whether
      // or not a sink or the perturb hook asked for it.
      if (want_second && eligible.size() > need) {
        sel.assign(eligible.begin(), eligible.end());
        std::nth_element(sel.begin(), sel.begin() + need - 1, sel.end(),
                         [&](ProcId a, ProcId b) {
                           if (score[a] != score[b])
                             return score[a] < score[b];
                           if (until_of[a] != until_of[b])
                             return until_of[a] > until_of[b];
                           return a < b;
                         });
        sel.resize(need);
        std::sort(sel.begin(), sel.end());
        Candidate c;
        time_on(tau, sel, 2, c);
        if (feasible(c)) {
          record_cand(c, tau);
          offer_shadow(std::move(c));
        }
      }
    };

    // When a runner-up is wanted, the scan keeps probing a few instants
    // past the prune point: finish_lb guarantees those candidates cannot
    // beat `best` (the commit is untouched), but they populate the
    // shortlist and give the margin / perturb hook a distinct alternative
    // that the pruned scan would never see.
    constexpr std::size_t kProvExtension = 8;
    std::size_t extension = 0;

    LOCMPS_SPAN(obs, "locbs.place");
    if (opt.backfill) {
      LOCMPS_SPAN(obs, "locbs.hole_scan");
      // Probe instants ascend (est0, then every later finish event), so
      // the sweep cursor answers each availability query in amortized
      // O(1) per processor; the event list is walked in place instead of
      // being materialized per task. It is only mutated at commit, after
      // the scan, so the iterator stays valid throughout.
      auto next_ev =
          std::upper_bound(finish_events.begin(), finish_events.end(), est0);
      double tau = est0;
      for (;;) {
        sweep.available_at(tau, avail_scratch);
        probe(tau, avail_scratch);
        if (next_ev == finish_events.end()) break;
        // Monotone pruning: any later hole acquires processors at
        // >= *next_ev, and no subset beats the arrival lower bound.
        if (best.finish < kInf && best.finish <= finish_lb(*next_ev)) {
          scan_pruned = true;
          if (!want_second || second.finish < kInf ||
              ++extension > kProvExtension)
            break;
        }
        tau = *next_ev;
        ++next_ev;
      }
    } else {
      // No-backfill variant (Fig 6): only the latest free time of each
      // processor is consulted; holes earlier in the chart are ignored.
      LOCMPS_SPAN(obs, "locbs.hole_scan");
      std::vector<double> taus;
      taus.reserve(P);
      for (ProcId q = 0; q < P; ++q)
        taus.push_back(std::max(est0, timeline.latest_free_time(q)));
      std::sort(taus.begin(), taus.end(), total_less);
      taus.erase(std::unique(taus.begin(), taus.end()), taus.end());
      for (std::size_t i = 0; i < taus.size(); ++i) {
        const double tau = taus[i];
        std::vector<Timeline::FreeProc> avail;
        for (ProcId q = 0; q < P; ++q)
          if (timeline.latest_free_time(q) <= tau)
            avail.push_back(Timeline::FreeProc{q, kForever});
        probe(tau, avail);
        if (best.finish < kInf && i + 1 < taus.size() &&
            best.finish <= finish_lb(taus[i + 1])) {
          scan_pruned = true;
          if (!want_second || second.finish < kInf ||
              ++extension > kProvExtension)
            break;
        }
      }
    }

    if (!(best.finish < kInf))
      throw std::logic_error("locbs: no feasible slot found");

    // Fold the shadow alternatives into the runner-up: the earliest-
    // finishing one that is distinct from and no earlier than the winner
    // (a shadow must never flip the margin negative).
    for (const Candidate& s : shadows) {
      if (s.finish < best.finish || !distinct_cand(s, best)) continue;
      if (s.finish < second.finish) second = s;
      break;
    }

    // Margin over the distinct runner-up. Measured before any perturbation:
    // it describes the scan, not the commit.
    const double margin =
        second.finish < kInf ? second.finish - best.finish : -1.0;
    // Seeded-divergence hook: adopt the runner-up for this one task so a
    // controlled placement flip exists for rundiff attribution tests.
    const bool perturb_this = tp == opt.perturb_task && second.finish < kInf;
    if (perturb_this) std::swap(best, second);

    // Chart frontier before this placement: a task that acquires its
    // processors strictly earlier was backfilled into a hole.
    const double chart_end = finish_events.empty() ? 0.0 : finish_events.back();

    // Commit the placement.
    LOCMPS_SPAN(obs, "locbs.commit");
    ProcessorSet pset(P);
    for (ProcId q : best.procs) pset.insert(q);
    timeline.occupy(pset, best.busy_from, best.finish);
    {
      const auto it = std::lower_bound(finish_events.begin(),
                                       finish_events.end(), best.finish);
      if (it == finish_events.end() || *it != best.finish)
        finish_events.insert(it, best.finish);
    }
    res.schedule.place(tp, best.busy_from, best.start, best.finish, pset);
    placed[tp] = best.procs;
    ft[tp] = best.finish;
    done[tp] = 1;

    // Realized weights for the schedule-DAG.
    res.dag.set_vertex_time(tp, exec);
    ReplayStep step;  // recorded only when incr != nullptr
    if (!comm_edges.empty()) {
      const std::vector<double>& durs = durs_for(best.procs, 3);
      for (std::size_t k = 0; k < comm_edges.size(); ++k) {
        res.dag.set_edge_time(comm_edges[k], durs[k]);
        if (incr != nullptr) step.edge_times.emplace_back(comm_edges[k], durs[k]);
      }
    }

    // Pseudo-edges for resource-induced waiting (Alg. 2 steps 17-18): link
    // every task finishing exactly when we could finally proceed and
    // sharing a processor with us.
    if (best.resource_induced) {
      // Direct parents already impose the dependence; skip them. The
      // shared mask is cleared entry-wise below, not reallocated.
      for (EdgeId e : g.in_edges(tp)) is_parent[g.edge(e).src] = 1;
      for (TaskId ti = 0; ti < n; ++ti) {
        if (ti == tp || !done[ti] || is_parent[ti]) continue;
        if (about(ft[ti], best.touch) &&
            res.schedule.at(ti).procs.intersection_count(pset) > 0) {
          res.dag.add_pseudo_edge(ti, tp);
          if (incr != nullptr) step.pseudo_preds.push_back(ti);
        }
      }
      for (EdgeId e : g.in_edges(tp)) is_parent[g.edge(e).src] = 0;
    }

    // Realized redistribution split for this placement: bytes that stay
    // on shared block-cyclic-aligned processors vs. bytes that cross
    // the network (Section III-B locality saving). Needed both for the
    // telemetry flush and for the replay record.
    double local_bytes = 0.0, remote_bytes = 0.0;
    const bool backfilled = later_than(chart_end, best.busy_from);
    if ((obs != nullptr || incr != nullptr) && !comm_edges.empty()) {
      // The G'-weights pass above just filled slot 3 for exactly this
      // subset; its remote volumes are the realized redistribution split.
      const std::vector<double>& rvol = durs_cache[3].rvol;
      for (std::size_t k = 0; k < comm_edges.size(); ++k) {
        remote_bytes += rvol[k];
        local_bytes += g.edge(comm_edges[k]).volume_bytes - rvol[k];
      }
    }
    if (incr != nullptr) {
      step.task = tp;
      step.np = need;
      step.busy_from = best.busy_from;
      step.start = best.start;
      step.finish = best.finish;
      step.procs = best.procs;
      step.pset = pset;
      step.holes_probed = static_cast<std::uint32_t>(holes_probed);
      step.subset = static_cast<std::uint8_t>(best.subset);
      step.pruned = scan_pruned;
      step.backfilled = backfilled;
      step.local_bytes = local_bytes;
      step.remote_bytes = remote_bytes;
      step.cost_evals =
          evals_cell != nullptr ? *evals_cell - evals_before : 0.0;
      newrec.steps.push_back(std::make_shared<ReplayStep>(std::move(step)));
      ++scanned_tasks;
    }

    if (obs != nullptr) {
      if (met != nullptr) {
        *cells.tasks_placed += 1.0;
        *cells.holes_scanned += static_cast<double>(holes_probed);
        if (backfilled) *cells.backfill_hits += 1.0;
        if (scan_pruned) *cells.scan_cutoffs += 1.0;
        *(best.subset == 0 ? cells.locality_wins : cells.horizon_wins) += 1.0;
        *cells.local_bytes += local_bytes;
        *cells.remote_bytes += remote_bytes;
      }
      if (obs::wants_events(obs)) {
        std::string procs_str;
        for (ProcId q : best.procs) {
          if (!procs_str.empty()) procs_str += ',';
          procs_str += std::to_string(q);
        }
        obs->sink->emit(
            obs::Event("locbs.place")
                .with("task", tp)
                .with("np", static_cast<std::uint64_t>(need))
                .with("busy_from", best.busy_from)
                .with("start", best.start)
                .with("finish", best.finish)
                .with("holes_scanned",
                      static_cast<std::uint64_t>(holes_probed))
                .with("backfill", backfilled)
                .with("pruned", scan_pruned)
                .with("subset",
                      best.subset == 0 ? "locality" : "horizon")
                .with("local_bytes", local_bytes)
                .with("remote_bytes", remote_bytes)
                .with("procs", procs_str));
        obs::PlacementDecision d;
        d.task = tp;
        d.np = need;
        d.prio = prio[tp];
        d.est = est0;
        d.start = best.start;
        d.finish = best.finish;
        d.busy_from = best.busy_from;
        d.backfill_branch = opt.backfill;
        d.locality_branch = opt.locality;
        d.comm_blind = opt.comm_blind;
        d.backfilled = backfilled;
        d.pruned = scan_pruned;
        d.perturbed = perturb_this;
        d.holes_probed = holes_probed;
        d.candidates_scored = cands_scored;
        d.margin = margin;
        d.local_bytes = local_bytes;
        d.remote_bytes = remote_bytes;
        obs::ProvCandidate win;
        win.tau = best.touch;
        win.subset = best.subset;
        win.start = best.start;
        win.finish = best.finish;
        win.busy_from = best.busy_from;
        win.remote_bytes = remote_bytes;
        for (ProcId q : best.procs) win.locality_score += score[q];
        win.procs = best.procs;
        d.winner = shortlist.ensure(win);
        d.shortlist = shortlist.entries();
        obs->sink->emit(obs::decision_event(d));
      }
    }

    for (EdgeId e : g.out_edges(tp))
      if (--waiting[g.edge(e).dst] == 0) ready.push_back(g.edge(e).dst);
  }

  if (incr != nullptr) {
    // Stream bookkeeping: dirty vs replayed split of this evaluation, and
    // whether it had any replay base at all (incr.cache_hits — whole
    // evaluations served from the memo — is accounted at the eval_locbs
    // funnel). The incr.* family is digest-excluded (the from-scratch
    // oracle produces none), like the locmps.parallel.* wall-clock family.
    if (met != nullptr) {
      met->add("incr.dirty_tasks", static_cast<double>(scanned_tasks));
      met->add("incr.replayed_tasks", static_cast<double>(replayed_tasks));
      if (replayed_tasks == 0) met->add("incr.full_rebuilds");
    }
    newrec.prio = std::make_shared<const std::vector<double>>(prio);
    incr->remember(std::move(newrec));
  }

  res.makespan = res.schedule.makespan();
  return res;
}

}  // namespace locmps
