#pragma once
/// \file locbs.hpp
/// LoCBS — Locality Conscious Backfill Scheduling (Algorithm 2).
///
/// Given a processor allocation np(t), LoCBS maps every task onto a concrete
/// processor set and start time. It is a priority-based backfill scheduler:
/// the 2-D (time x processor) chart is packed by placing each ready task in
/// the idle slot ("hole") that minimizes its finish time, choosing within a
/// hole the processor subset with maximum data locality so that part of the
/// input data needs no redistribution. Tasks delayed by resource limits get
/// pseudo-edges in the schedule-DAG G', which LoC-MPS uses to find the
/// schedule's true critical path.

#include "network/comm_model.hpp"
#include "obs/events.hpp"
#include "schedule/schedule.hpp"
#include "schedule/schedule_dag.hpp"
#include "schedulers/scheduler.hpp"

namespace locmps {

class IncrementalContext;  // schedulers/incremental.hpp

/// Behavioural switches of LoCBS (used for the paper's ablations).
struct LocBSOptions {
  /// Backfill into idle slots. When false, only the latest free time of
  /// each processor is tracked (the cheaper scheme of Fig 6).
  bool backfill = true;

  /// Prefer processor subsets that already hold input data and charge only
  /// the remote block-cyclic volume. When false, processors are picked by
  /// availability and the full edge volume is charged.
  bool locality = true;

  /// Treat all communication as free (the iCASLB assumption). Implies that
  /// edge weights, redistribution times and priorities ignore data volumes.
  bool comm_blind = false;

  /// Slack-aware placement: inflate every task's modeled execution time by
  /// this factor during the hole scan, so reservations are longer than the
  /// nominal profile predicts. Feasibility (`window >= tau + exec`) and
  /// occupancy both see the inflated duration, which spreads placements
  /// across processors and leaves headroom that absorbs performance faults
  /// (stragglers, degraded links — see faults/perturbation.hpp). The
  /// realized simulation still runs at profile speed, so the cost is paid
  /// only through placement and ordering changes. 1.0 (the default) is the
  /// paper's tight packing; values < 1.0 are rejected. The robustness
  /// benchmark (bench/ext_robustness.cpp) scores the resulting
  /// mean-makespan vs p95-degradation tradeoff.
  double slack_factor = 1.0;

  /// Seeded-divergence hook for differential attribution (obs/rundiff.hpp)
  /// and its tests: when set, this task adopts the distinct runner-up of
  /// its candidate scan instead of the winner — one controlled placement
  /// flip whose makespan effect `locmps-inspect --diff` must attribute
  /// back to this decision. No-op when the scan produced no distinct
  /// alternative. kNoTask (the default) disables the hook; LoC-MPS keeps
  /// its refinement search unperturbed and applies the flip only in one
  /// extra final realization (schedulers/loc_mps.cpp).
  TaskId perturb_task = kNoTask;
};

/// Result of one LoCBS run.
struct LocBSResult {
  Schedule schedule;
  ScheduleDag dag;  ///< G' with realized vertex/edge times + pseudo-edges
  double makespan = 0.0;
};

/// A fixed prefix of the schedule: tasks that have already started (or
/// finished) executing when a plan is recomputed at run time. Their
/// placements and time windows are taken verbatim from \p placements and
/// the scheduler packs the remaining tasks around them. Used by the online
/// rescheduling extension (schedulers/online.hpp).
struct FixedPrefix {
  /// Per-task flag; true = this task's placement is frozen.
  std::vector<char> frozen;
  /// Source of the frozen placements (every frozen task must be placed).
  const Schedule* placements = nullptr;
  /// Wall-clock instant of the replan: no non-frozen task may acquire
  /// processors earlier than this (the past cannot be scheduled into).
  double not_before = 0.0;
  /// Survivor mask for degraded-cluster replans (faults/recovery.hpp):
  /// when set, non-frozen tasks may only use these processors and their
  /// allocations are capped at the survivor count. Frozen placements are
  /// exempt — work committed before a failure may sit on since-failed
  /// processors. Null (default) = every processor is usable.
  const ProcessorSet* available = nullptr;

  bool is_frozen(TaskId t) const {
    return t < frozen.size() && frozen[t] != 0;
  }

  /// True if processor \p q may be assigned to non-frozen tasks.
  bool usable(ProcId q) const {
    return available == nullptr || available->contains(q);
  }
};

/// Schedules \p g under allocation \p np on comm.cluster().
///
/// \p np must contain one entry per task with 1 <= np[t] <= P. The
/// no-overlap platform model (comm.overlap() == false) makes incoming
/// redistributions occupy the destination processors and serializes them.
/// When \p fixed is given, its frozen tasks are copied into the result
/// unchanged and only the remaining tasks are scheduled.
///
/// \p obs (optional) receives per-placement decision telemetry: "locbs.*"
/// counters (holes scanned, backfill hits, subset choices, local/remote
/// redistribution bytes), a "locbs.pass" phase timer, and one
/// "locbs.place" plus one "locbs.decision" provenance event per task
/// (obs/provenance.hpp documents the record schema). Null — the default —
/// is a zero-cost fast path: all instrumentation hides behind
/// per-placement branches.
///
/// \p incr (optional) is the incremental-replanning context of the
/// caller's evaluation stream (schedulers/incremental.hpp,
/// docs/incremental.md): the pass replays the longest placement prefix
/// that provably matches a recorded earlier evaluation, scans only the
/// dirty remainder, memoizes redistribution fractions, and records itself
/// for future replays. The result — schedule, G', counters — is
/// bit-identical to incr == nullptr (the from-scratch oracle path); only
/// the digest-excluded `incr.*` counters reveal which path ran.
LocBSResult locbs(const TaskGraph& g, const Allocation& np,
                  const CommModel& comm, const LocBSOptions& opt = {},
                  const FixedPrefix* fixed = nullptr,
                  obs::ObsContext* obs = nullptr,
                  IncrementalContext* incr = nullptr);

}  // namespace locmps
