#include "schedulers/online.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "schedule/event_sim.hpp"

namespace locmps {

OnlineResult run_online(const TaskGraph& g, const Cluster& cluster,
                        const OnlineOptions& opt) {
  const std::size_t n = g.num_tasks();
  const CommModel comm(cluster);
  const LocMPSScheduler planner(opt.planner);

  SimOptions sim;
  sim.runtime_noise = opt.runtime_noise;
  sim.seed = opt.seed;
  sim.single_port = false;

  OnlineResult out;
  SchedulerResult plan = planner.schedule(g, cluster);
  out.planned_makespan = plan.estimated_makespan;
  out.static_makespan =
      simulate_execution(g, plan.schedule, comm, sim).makespan;

  // Tasks whose (actual) duration the runtime has already accepted —
  // either they triggered a replan or were frozen by one.
  std::vector<char> acknowledged(n, 0);
  // Earliest admissible start of each task: raised to the replan instant
  // whenever the task is re-planned (the past cannot be rescheduled).
  std::vector<double> release(n, 0.0);
  sim.release_times = &release;

  Schedule current = std::move(plan.schedule);
  std::size_t replans = 0;
  while (true) {
    const SimResult run = simulate_execution(g, current, comm, sim);

    // Earliest finish whose runtime deviated beyond the threshold.
    TaskId trigger = kNoTask;
    double trigger_ft = std::numeric_limits<double>::infinity();
    for (TaskId t = 0; t < n; ++t) {
      if (acknowledged[t]) continue;
      const Placement& pl = run.executed.at(t);
      const double est = g.task(t).profile.time(pl.np());
      // Only adverse deviations warrant replanning: a replan synchronizes
      // the not-yet-started tasks at the trigger instant, which is pure
      // overhead when the task merely finished early.
      const double dev = ((pl.finish - pl.start) - est) / est;
      if (dev > opt.replan_threshold && pl.finish < trigger_ft) {
        trigger = t;
        trigger_ft = pl.finish;
      }
    }
    if (trigger == kNoTask || replans >= opt.max_replans) {
      if (trigger != kNoTask) {
        // The safety valve tripped with deviations still outstanding: the
        // run proceeds on a stale plan. Surface that instead of silently
        // absorbing it.
        out.cap_hit = true;
        if (obs::MetricsRegistry* const met = obs::metrics_of(opt.obs);
            met != nullptr)
          met->add("online.replan_cap_hit");
        if (obs::wants_events(opt.obs))
          opt.obs->sink->emit(
              obs::Event("online.replan_cap_hit")
                  .with("replans", static_cast<std::uint64_t>(replans))
                  .with("trigger", trigger)
                  .with("deviation_at", trigger_ft));
      }
      out.executed = run.executed;
      out.makespan = run.makespan;
      break;
    }

    // Freeze the history: everything that had started by the replan
    // instant keeps its processors and realized window.
    FixedPrefix fixed;
    fixed.frozen.assign(n, 0);
    fixed.placements = &run.executed;
    fixed.not_before = trigger_ft;
    for (TaskId t = 0; t < n; ++t) {
      if (run.executed.at(t).start <= trigger_ft) {
        fixed.frozen[t] = 1;
        acknowledged[t] = 1;
      }
    }

    SchedulerResult replanned = planner.schedule_with_fixed(g, cluster, fixed);

    // Plan stability: adopt the replan only if, under what the runtime
    // knows (realized durations for acknowledged tasks, estimates for the
    // rest), it completes earlier than continuing with the current plan.
    std::vector<double> known(n, 1.0);
    const std::vector<double> truth =
        make_noise_factors(n, opt.runtime_noise, opt.seed);
    for (TaskId t = 0; t < n; ++t)
      if (acknowledged[t]) known[t] = truth[t];
    SimOptions probe = sim;
    probe.noise_factors = &known;
    const double keep_est =
        simulate_execution(g, current, comm, probe).makespan;
    // Adopting a new plan synchronizes: nothing not yet started may start
    // before the replan instant. Charge that in the comparison.
    std::vector<double> release_if = release;
    for (TaskId t = 0; t < n; ++t)
      if (!fixed.frozen[t])
        release_if[t] = std::max(release_if[t], trigger_ft);
    SimOptions probe_switch = probe;
    probe_switch.release_times = &release_if;
    const double switch_est =
        simulate_execution(g, replanned.schedule, comm, probe_switch)
            .makespan;
    if (switch_est < keep_est) {
      current = std::move(replanned.schedule);
      release = std::move(release_if);
    }
    ++replans;
  }
  out.replans = replans;
  return out;
}

}  // namespace locmps
