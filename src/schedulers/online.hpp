#pragma once
/// \file online.hpp
/// Online rescheduling — the paper's stated future work ("incorporation of
/// the scheduling strategy into a run-time framework for the on-line
/// scheduling of mixed parallel applications", Section VI).
///
/// The static LoC-MPS plan is executed under multiplicative runtime-
/// estimate noise. Whenever a task finishes far enough from its estimate,
/// the runtime replans: every task that had already started keeps its
/// committed processors and (now known) time window, and LoC-MPS
/// re-optimizes allocation and placement of everything still waiting,
/// packing around the frozen prefix (FixedPrefix support in LoCBS).
/// The result is compared against executing the static plan unchanged.

#include "schedulers/loc_mps.hpp"

namespace locmps {

/// Knobs of the online executor.
struct OnlineOptions {
  /// Replan when |actual - estimated| / estimated of a finished task
  /// exceeds this (0.15 = 15% deviation).
  double replan_threshold = 0.15;

  /// Runtime-estimate error injected into execution (uniform +/- fraction).
  double runtime_noise = 0.3;

  /// Noise seed (the same task always misbehaves the same way).
  std::uint64_t seed = 42;

  /// Planner used for the initial plan and every replan.
  LocMPSOptions planner;

  /// Safety valve on the number of replans.
  std::size_t max_replans = 64;

  /// Optional observability: records "online.replan_cap_hit" (counter +
  /// trace event) when max_replans trips while deviations still warrant
  /// replanning. Null disables instrumentation.
  obs::ObsContext* obs = nullptr;
};

/// Outcome of one online execution.
struct OnlineResult {
  Schedule executed;            ///< realized windows (with noise)
  double makespan = 0.0;        ///< realized makespan with replanning
  double static_makespan = 0.0; ///< realized makespan of the static plan
  double planned_makespan = 0.0;  ///< the initial plan's estimate
  std::size_t replans = 0;      ///< replanning rounds triggered
  /// True when the max_replans safety valve tripped: the run finished on a
  /// stale plan even though a deviation still warranted replanning.
  bool cap_hit = false;
};

/// Plans with LoC-MPS, executes with noise, and replans online whenever a
/// task's runtime deviates beyond the threshold.
OnlineResult run_online(const TaskGraph& g, const Cluster& cluster,
                        const OnlineOptions& opt = {});

}  // namespace locmps
