#include "schedulers/registry.hpp"

#include <stdexcept>

#include "schedulers/annealing.hpp"
#include "schedulers/cpa.hpp"
#include "schedulers/cpr.hpp"
#include "schedulers/data_parallel.hpp"
#include "schedulers/icaslb.hpp"
#include "schedulers/loc_mps.hpp"
#include "schedulers/task_parallel.hpp"
#include "schedulers/tsas.hpp"
#include "schedulers/twol.hpp"

namespace locmps {

SchedulerPtr make_scheduler(const std::string& name) {
  return make_scheduler(name, SchedulerOptions{});
}

SchedulerPtr make_scheduler(const std::string& name,
                            const SchedulerOptions& sopt) {
  if (name == "loc-mps") {
    LocMPSOptions opt;
    opt.threads = sopt.threads;
    opt.locbs.perturb_task = sopt.perturb_task;
    opt.locbs.slack_factor = sopt.slack_factor;
    opt.incremental = sopt.incremental;
    if (sopt.plan_budget > 0) opt.max_locbs_calls = sopt.plan_budget;
    return std::make_unique<LocMPSScheduler>(opt);
  }
  if (name == "loc-mps-nbf") {
    LocMPSOptions opt;
    opt.locbs.backfill = false;
    opt.threads = sopt.threads;
    opt.locbs.perturb_task = sopt.perturb_task;
    opt.locbs.slack_factor = sopt.slack_factor;
    opt.incremental = sopt.incremental;
    if (sopt.plan_budget > 0) opt.max_locbs_calls = sopt.plan_budget;
    return std::make_unique<LocMPSScheduler>(opt);
  }
  if (name == "loc-mps-noloc") {
    LocMPSOptions opt;
    opt.locbs.locality = false;
    opt.threads = sopt.threads;
    opt.locbs.perturb_task = sopt.perturb_task;
    opt.locbs.slack_factor = sopt.slack_factor;
    opt.incremental = sopt.incremental;
    if (sopt.plan_budget > 0) opt.max_locbs_calls = sopt.plan_budget;
    return std::make_unique<LocMPSScheduler>(opt);
  }
  if (name == "icaslb") {
    LocMPSOptions opt;
    opt.threads = sopt.threads;
    opt.locbs.perturb_task = sopt.perturb_task;
    opt.locbs.slack_factor = sopt.slack_factor;
    opt.incremental = sopt.incremental;
    if (sopt.plan_budget > 0) opt.max_locbs_calls = sopt.plan_budget;
    return std::make_unique<ICASLBScheduler>(opt);
  }
  if (name == "cpr") return std::make_unique<CPRScheduler>();
  if (name == "cpa") return std::make_unique<CPAScheduler>();
  if (name == "tsas") return std::make_unique<TSASScheduler>();
  if (name == "sa") return std::make_unique<AnnealingScheduler>();
  if (name == "twol") return std::make_unique<TwoLScheduler>();
  if (name == "task") return std::make_unique<TaskParallelScheduler>();
  if (name == "data") return std::make_unique<DataParallelScheduler>();
  throw std::invalid_argument("make_scheduler: unknown scheme '" + name +
                              "'");
}

std::vector<std::string> paper_schemes() {
  return {"loc-mps", "icaslb", "cpr", "cpa", "task", "data"};
}

bool scheme_exploits_locality(const std::string& name) {
  // TwoL keeps block-cyclic groups aligned deterministically, so its
  // transfers realize the exact remote volumes; TSAS/CPR/CPA/iCASLB and
  // the locality-blind ablation do not orchestrate placement.
  return name == "loc-mps" || name == "loc-mps-nbf" || name == "task" ||
         name == "data" || name == "twol" || name == "sa";
}

}  // namespace locmps
