#pragma once
/// \file registry.hpp
/// Factory for schedulers by name, plus the standard line-ups used in the
/// paper's figures.

#include <string>
#include <vector>

#include "schedulers/scheduler.hpp"

namespace locmps {

/// Creates a scheduler by identifier. Known names (case sensitive):
///  * "loc-mps"       — LoC-MPS with backfill and locality (the paper's)
///  * "loc-mps-nbf"   — LoC-MPS without backfilling (Fig 6 variant)
///  * "loc-mps-noloc" — LoC-MPS with locality-blind LoCBS (ablation)
///  * "icaslb"        — comm-blind prior work, re-timed with real comm
///  * "cpr", "cpa"    — the Radulescu et al. baselines
///  * "tsas"          — two-step allocation + list scheduling (ref [3])
///  * "twol"          — layer-based two-level scheduling (ref [7])
///  * "sa"            — simulated-annealing reference optimizer (slow)
///  * "task", "data"  — pure task- and data-parallel schemes
/// Throws std::invalid_argument for unknown names.
SchedulerPtr make_scheduler(const std::string& name);

/// Same, applying scheme-independent knobs: SchedulerOptions::threads
/// reaches the LoC-MPS-backed schemes (loc-mps, loc-mps-nbf,
/// loc-mps-noloc, icaslb); schemes without internal parallelism ignore it.
SchedulerPtr make_scheduler(const std::string& name,
                            const SchedulerOptions& opt);

/// The scheme line-up of the paper's comparison figures, in plot order:
/// loc-mps, icaslb, cpr, cpa, task, data.
std::vector<std::string> paper_schemes();

/// True when the scheme orchestrates its redistributions to exploit data
/// locality (and hence may be charged only the remote block-cyclic volume
/// at evaluation time). iCASLB, CPR, CPA and the locality-blind ablation
/// transfer full tensors whenever producer and consumer layouts differ.
bool scheme_exploits_locality(const std::string& name);

}  // namespace locmps
