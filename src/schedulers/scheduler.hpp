#pragma once
/// \file scheduler.hpp
/// Common interface of all allocation-and-scheduling schemes evaluated in
/// the paper (LoC-MPS, iCASLB, CPR, CPA, TASK, DATA).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "graph/task_graph.hpp"
#include "obs/events.hpp"
#include "schedule/schedule.hpp"

namespace locmps {

/// Processor allocation: np(t) for every task.
using Allocation = std::vector<std::size_t>;

/// Scheme-independent construction knobs, applied by the registry factory
/// (make_scheduler) to every scheduler that supports them.
struct SchedulerOptions {
  /// Worker threads a scheduler may use internally. LoC-MPS-backed
  /// schemes fan their speculative LoCBS probes across this many workers;
  /// every setting produces bit-identical schedules (the determinism
  /// contract of docs/parallelism.md). 1 = the sequential reference path;
  /// 0 = one worker per hardware thread.
  std::size_t threads = 1;

  /// Slack-aware placement: forwarded to LocBSOptions::slack_factor by
  /// every LoCBS-backed scheme. Inflates modeled execution times during
  /// the hole scan so schedules carry headroom against performance faults
  /// (see schedulers/locbs.hpp). 1.0 = the paper's tight packing; ignored
  /// by schemes without LoCBS.
  double slack_factor = 1.0;

  /// Seeded-divergence hook: forwarded to LocBSOptions::perturb_task by
  /// every LoCBS-backed scheme (see schedulers/locbs.hpp). The named task
  /// adopts the distinct runner-up of its final placement scan, giving
  /// differential attribution (obs/rundiff.hpp) a controlled single-flip
  /// run to diff against. Ignored by schemes without LoCBS.
  TaskId perturb_task = kNoTask;

  /// Incremental replanning (docs/incremental.md): LoC-MPS-backed schemes
  /// replay the unchanged prefix of each refinement-round LoCBS evaluation
  /// from the previous round instead of re-scanning every task, update
  /// priorities over the dirty region only, and serve repeated allocations
  /// from the evaluation memo. Results are bit-identical to the
  /// from-scratch path (the differential oracle of tests/test_incremental);
  /// false forces the from-scratch reference. Ignored by schemes without
  /// LoCBS.
  bool incremental = true;

  /// When > 0, caps the planner's refinement budget (LoCBS invocations for
  /// LoC-MPS-backed schemes). Bounds planning time on very large graphs —
  /// the |V| >= 2000 fig10 panel runs under such a cap. 0 (the default)
  /// keeps each scheme's own safety valve. Ignored by one-shot schemes.
  std::size_t plan_budget = 0;
};

/// Output of a scheduling scheme.
struct SchedulerResult {
  Schedule schedule;           ///< complete placement of every task
  Allocation allocation;       ///< np(t) chosen by the scheme
  double estimated_makespan = 0.0;  ///< the scheme's own makespan estimate
  std::size_t iterations = 0;  ///< refinement iterations (0 for one-shot)
};

/// A mixed-parallel allocation-and-scheduling algorithm.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Short identifier used in tables ("LoC-MPS", "CPA", ...).
  virtual std::string name() const = 0;

  /// Computes a complete schedule of \p g on \p cluster.
  virtual SchedulerResult schedule(const TaskGraph& g,
                                   const Cluster& cluster) const = 0;

  /// Attaches an observability context for subsequent schedule() calls
  /// (counters, phase timers, decision events — see src/obs/). Null (the
  /// default) disables instrumentation at the cost of a single branch.
  /// The caller keeps ownership and must outlive the scheduling calls.
  void attach_observability(obs::ObsContext* obs) { obs_ = obs; }

  /// The attached context, or null. Schedulers forward this into their
  /// instrumented internals (LoC-MPS threads it through every LoCBS pass).
  obs::ObsContext* observability() const { return obs_; }

 private:
  obs::ObsContext* obs_ = nullptr;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

}  // namespace locmps
