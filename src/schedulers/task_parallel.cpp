#include "schedulers/task_parallel.hpp"

namespace locmps {

SchedulerResult TaskParallelScheduler::schedule(
    const TaskGraph& g, const Cluster& cluster) const {
  const CommModel comm(cluster);
  Allocation np(g.num_tasks(), 1);
  LocBSResult run = locbs(g, np, comm, opt_);
  SchedulerResult out;
  out.schedule = std::move(run.schedule);
  out.allocation = std::move(np);
  out.estimated_makespan = run.makespan;
  out.iterations = 1;
  return out;
}

}  // namespace locmps
