#pragma once
/// \file task_parallel.hpp
/// TASK — the pure task-parallel baseline: one processor per task, placed
/// with the locality conscious backfill scheduler (Section IV).

#include "schedulers/locbs.hpp"
#include "schedulers/scheduler.hpp"

namespace locmps {

/// The pure task-parallel scheme.
class TaskParallelScheduler final : public Scheduler {
 public:
  explicit TaskParallelScheduler(LocBSOptions opt = {}) : opt_(opt) {}

  std::string name() const override { return "TASK"; }

  SchedulerResult schedule(const TaskGraph& g,
                           const Cluster& cluster) const override;

 private:
  LocBSOptions opt_;
};

}  // namespace locmps
