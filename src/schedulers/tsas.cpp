#include "schedulers/tsas.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "schedulers/list_scheduler.hpp"

namespace locmps {

SchedulerResult TSASScheduler::schedule(const TaskGraph& g,
                                        const Cluster& cluster) const {
  const std::size_t n = g.num_tasks();
  const std::size_t P = cluster.processors;
  const CommModel comm(cluster);

  Allocation np(n, 1);
  auto vw = [&](TaskId t) { return g.task(t).profile.time(np[t]); };
  auto ew = [&](EdgeId e) {
    const Edge& ed = g.edge(e);
    return comm.edge_cost(ed.volume_bytes, np[ed.src], np[ed.dst]);
  };
  auto area = [&]() {
    double a = 0.0;
    for (TaskId t : g.task_ids())
      a += static_cast<double>(np[t]) * g.task(t).profile.time(np[t]);
    return a / static_cast<double>(P);
  };

  // Step 1: monotone descent on max(L, TA). Each move widens the
  // critical-path task with the best execution-time gain per unit of
  // added processor area; accepted only if the objective improves.
  std::size_t iterations = 0;
  const std::size_t hard_cap = n * P + 16;
  double obj = std::max(compute_levels(g, vw, ew).critical_path_length(),
                        area());
  while (iterations < hard_cap) {
    ++iterations;
    const Levels lv = compute_levels(g, vw, ew);
    const double L = lv.critical_path_length();
    const double TA = area();
    if (L <= TA) break;  // widening anything only raises the area term

    const double tol = 1e-9 * std::max(1.0, L);
    TaskId best = kNoTask;
    double best_score = 0.0;
    for (TaskId t : g.task_ids()) {
      if (lv.top[t] + lv.bottom[t] < L - tol || np[t] >= P) continue;
      const double gain =
          g.task(t).profile.time(np[t]) - g.task(t).profile.time(np[t] + 1);
      if (gain <= 0.0) continue;
      const double darea = static_cast<double>(np[t] + 1) *
                               g.task(t).profile.time(np[t] + 1) -
                           static_cast<double>(np[t]) *
                               g.task(t).profile.time(np[t]);
      const double score = gain / std::max(darea, 1e-12);
      if (best == kNoTask || score > best_score) {
        best = t;
        best_score = score;
      }
    }
    if (best == kNoTask) break;

    np[best] += 1;
    const double new_obj = std::max(
        compute_levels(g, vw, ew).critical_path_length(), area());
    if (new_obj >= obj) {  // balance point passed; undo and stop
      np[best] -= 1;
      break;
    }
    obj = new_obj;
  }

  // Step 2: prioritized list scheduling of the rounded allocation.
  ListScheduleResult ls = list_schedule(g, np, comm);
  SchedulerResult out;
  out.schedule = std::move(ls.schedule);
  out.allocation = std::move(np);
  out.estimated_makespan = ls.makespan;
  out.iterations = iterations;
  return out;
}

}  // namespace locmps
