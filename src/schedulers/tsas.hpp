#pragma once
/// \file tsas.hpp
/// TSAS — Two Step Allocation and Scheduling (Ramaswamy, Sapatnekar,
/// Banerjee, IEEE TPDS 1997, ref [3]).
///
/// The earliest of the mixed-parallel baselines. Step 1 solves a
/// continuous relaxation of the allocation problem: choose fractional
/// processor shares x(t) minimizing
///     max( critical-path length, average processor area )
/// where both terms are convex in x under posynomial speedups (the
/// original uses convex programming; we minimize the same objective with
/// a monotone descent on the discretized shares, which converges to the
/// same balance point for the non-increasing profiles used here).
/// Step 2 rounds the shares to integers and runs a prioritized list
/// schedule. The decoupling of the two steps — allocation never sees the
/// packing — is what CPR/CPA (and LoC-MPS) improve upon.

#include "schedulers/scheduler.hpp"

namespace locmps {

/// The TSAS baseline.
class TSASScheduler final : public Scheduler {
 public:
  std::string name() const override { return "TSAS"; }

  SchedulerResult schedule(const TaskGraph& g,
                           const Cluster& cluster) const override;
};

}  // namespace locmps
