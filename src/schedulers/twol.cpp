#include "schedulers/twol.hpp"

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"
#include "network/block_cyclic.hpp"

namespace locmps {

SchedulerResult TwoLScheduler::schedule(const TaskGraph& g,
                                        const Cluster& cluster) const {
  const std::size_t n = g.num_tasks();
  const std::size_t P = cluster.processors;
  const CommModel comm(cluster);

  // Topological layering: layer(t) = 1 + max layer of predecessors.
  std::vector<std::size_t> layer(n, 0);
  std::size_t num_layers = 0;
  for (TaskId t : topological_order(g)) {
    for (EdgeId e : g.in_edges(t))
      layer[t] = std::max(layer[t], layer[g.edge(e).src] + 1);
    num_layers = std::max(num_layers, layer[t] + 1);
  }
  std::vector<std::vector<TaskId>> layers(num_layers);
  for (TaskId t : g.task_ids()) layers[layer[t]].push_back(t);

  SchedulerResult out;
  out.schedule = Schedule(n, P);
  out.allocation.assign(n, 1);
  std::vector<double> ft(n, 0.0);
  std::vector<ProcessorSet> procs_of(n, ProcessorSet(P));

  double clock = 0.0;
  for (const auto& tasks : layers) {
    // Split P among the layer's tasks proportionally to their serial work
    // (at least one processor each; surplus to the heaviest tasks first,
    // capped at each task's Pbest). Wide layers fall back to batches of P
    // tasks.
    std::vector<TaskId> batch_pool = tasks;
    std::sort(batch_pool.begin(), batch_pool.end(), [&](TaskId a, TaskId b) {
      return g.task(a).profile.serial_time() >
             g.task(b).profile.serial_time();
    });
    for (std::size_t begin = 0; begin < batch_pool.size(); begin += P) {
      const std::size_t end = std::min(begin + P, batch_pool.size());
      std::vector<TaskId> batch(batch_pool.begin() + begin,
                                batch_pool.begin() + end);
      const double total_work = std::accumulate(
          batch.begin(), batch.end(), 0.0, [&](double acc, TaskId t) {
            return acc + g.task(t).profile.serial_time();
          });
      // Proportional shares, floor 1, then distribute the remainder.
      std::vector<std::size_t> share(batch.size(), 1);
      std::size_t used = batch.size();
      for (std::size_t i = 0; i < batch.size() && used < P; ++i) {
        const double frac =
            g.task(batch[i]).profile.serial_time() / total_work;
        const std::size_t want = std::min(
            {static_cast<std::size_t>(frac * static_cast<double>(P)),
             g.task(batch[i]).profile.pbest(), P});
        const std::size_t extra =
            std::min(want > share[i] ? want - share[i] : 0, P - used);
        share[i] += extra;
        used += extra;
      }
      // Leftover processors to the heaviest tasks still below Pbest.
      for (std::size_t i = 0; i < batch.size() && used < P; ++i) {
        while (share[i] < std::min(P, g.task(batch[i]).profile.pbest()) &&
               used < P) {
          ++share[i];
          ++used;
        }
      }

      // Contiguous processor groups, tasks start together after the layer
      // barrier plus their own input redistribution.
      ProcId next = 0;
      double layer_end = clock;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const TaskId t = batch[i];
        const ProcessorSet grp = ProcessorSet::range(
            P, next, share[i]);
        next = static_cast<ProcId>(next + share[i]);
        double start = clock;
        for (EdgeId e : g.in_edges(t)) {
          const Edge& ed = g.edge(e);
          const double rv =
              remote_volume(ed.volume_bytes, procs_of[ed.src], grp);
          const double ct = comm.transfer_duration(
              rv, procs_of[ed.src].count(), share[i]);
          start = std::max(start, ft[ed.src] + ct);
        }
        const double finish = start + g.task(t).profile.time(share[i]);
        out.schedule.place(t, clock, start, finish, grp);
        out.allocation[t] = share[i];
        procs_of[t] = grp;
        ft[t] = finish;
        layer_end = std::max(layer_end, finish);
      }
      clock = layer_end;  // barrier between batches/layers
    }
  }
  out.estimated_makespan = out.schedule.makespan();
  out.iterations = num_layers;
  return out;
}

}  // namespace locmps
