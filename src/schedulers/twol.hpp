#pragma once
/// \file twol.hpp
/// TwoL — two-level layer-based mixed-parallel scheduling in the style of
/// Rauber & Ruenger (J. Systems Architecture 1999, ref [7]).
///
/// The DAG is partitioned into topological layers of independent tasks;
/// each layer is executed to completion before the next starts (an upper
/// synchronization level of task parallelism within a layer, data
/// parallelism inside each task). Processors are split within a layer
/// proportionally to the tasks' work, biased by scalability. The global
/// layer barriers are exactly what the integrated single-step schemes
/// remove, which makes TwoL a useful structural baseline.

#include "schedulers/scheduler.hpp"

namespace locmps {

/// The TwoL-style layered baseline.
class TwoLScheduler final : public Scheduler {
 public:
  std::string name() const override { return "TwoL"; }

  SchedulerResult schedule(const TaskGraph& g,
                           const Cluster& cluster) const override;
};

}  // namespace locmps
