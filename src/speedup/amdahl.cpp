#include "speedup/amdahl.hpp"

#include <stdexcept>

namespace locmps {

AmdahlModel::AmdahlModel(double serial_fraction, double overhead)
    : f_(serial_fraction), o_(overhead) {
  if (f_ < 0.0 || f_ > 1.0)
    throw std::invalid_argument("AmdahlModel: serial fraction in [0,1]");
  if (o_ < 0.0) throw std::invalid_argument("AmdahlModel: overhead >= 0");
}

double AmdahlModel::speedup(std::size_t n_procs) const {
  const double n = static_cast<double>(n_procs);
  if (n <= 1.0) return 1.0;
  return 1.0 / (f_ + (1.0 - f_) / n + o_ * (n - 1.0));
}

}  // namespace locmps
