#pragma once
/// \file amdahl.hpp
/// Amdahl-law speedup with an optional per-processor overhead term.
///
/// Used to synthesize execution profiles for the application task graphs
/// (TCE contractions and Strassen kernels), substituting for the paper's
/// measured Itanium-2 profiles: S(n) = 1 / (f + (1-f)/n + o*(n-1)), where f
/// is the serial fraction and o models per-processor coordination overhead
/// (causing the profile to flatten and eventually turn, which defines a
/// finite Pbest as observed in real profiles).

#include <cstddef>

#include "speedup/model.hpp"

namespace locmps {

/// Amdahl speedup curve with overhead.
class AmdahlModel final : public SpeedupModel {
 public:
  /// \param serial_fraction fraction f in [0, 1] of inherently serial work.
  /// \param overhead        per-extra-processor relative overhead o >= 0.
  explicit AmdahlModel(double serial_fraction, double overhead = 0.0);

  double speedup(std::size_t n) const override;

  double serial_fraction() const { return f_; }
  double overhead() const { return o_; }

 private:
  double f_;
  double o_;
};

}  // namespace locmps
