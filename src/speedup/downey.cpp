#include "speedup/downey.hpp"

#include <algorithm>
#include <stdexcept>

namespace locmps {

DowneyModel::DowneyModel(double A, double sigma) : A_(A), sigma_(sigma) {
  if (A < 1.0) throw std::invalid_argument("DowneyModel: A must be >= 1");
  if (sigma < 0.0)
    throw std::invalid_argument("DowneyModel: sigma must be >= 0");
}

double DowneyModel::speedup(std::size_t n_procs) const {
  const double n = static_cast<double>(n_procs);
  const double A = A_;
  const double s = sigma_;
  if (n <= 1.0) return 1.0;
  double sp;
  if (s <= 1.0) {
    // Low-variance regime: linear ramp, then saturation at n = 2A-1.
    if (n <= A) {
      sp = (A * n) / (A + s * (n - 1.0) / 2.0);
    } else if (n <= 2.0 * A - 1.0) {
      sp = (A * n) / (s * (A - 0.5) + n * (1.0 - s / 2.0));
    } else {
      sp = A;
    }
  } else {
    // High-variance regime: saturation at n = A + A*sigma - sigma.
    if (n <= A + A * s - s) {
      sp = (n * A * (s + 1.0)) / (s * (n + A - 1.0) + A);
    } else {
      sp = A;
    }
  }
  // Guard against tiny numeric dips below 1 for degenerate parameters.
  return std::max(sp, 1.0);
}

}  // namespace locmps
