#pragma once
/// \file downey.hpp
/// Downey's model of parallel program speedup (A. B. Downey, "A model for
/// speedup of parallel programs", UC Berkeley CSD-97-933), the model the
/// paper uses to synthesize task scalability (Section IV-A).
///
/// The model has two parameters:
///  * A      — the average parallelism of the task, and
///  * sigma  — the coefficient of variation of parallelism; sigma = 0 means
///             perfectly scalable up to A processors, larger values mean
///             poorer scalability.

#include <cstddef>

#include "speedup/model.hpp"

namespace locmps {

/// Downey speedup curve.
class DowneyModel final : public SpeedupModel {
 public:
  /// \param A     average parallelism, A >= 1.
  /// \param sigma variance of parallelism, sigma >= 0.
  DowneyModel(double A, double sigma);

  double speedup(std::size_t n) const override;

  double A() const { return A_; }
  double sigma() const { return sigma_; }

 private:
  double A_;
  double sigma_;
};

}  // namespace locmps
