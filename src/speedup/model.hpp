#pragma once
/// \file model.hpp
/// Interface for parallel-task speedup models.
///
/// A speedup model maps a processor count n >= 1 to a speedup S(n) >= ~1.
/// Models are used to *generate* tabulated execution-time profiles
/// (speedup/profile.hpp); schedulers only ever consume profiles, keeping the
/// hot paths free of virtual dispatch.

#include <cstddef>

namespace locmps {

/// Abstract speedup curve S(n).
class SpeedupModel {
 public:
  virtual ~SpeedupModel() = default;

  /// Speedup on \p n processors; must satisfy speedup(1) == 1 and be
  /// non-decreasing in n for well-formed models.
  virtual double speedup(std::size_t n) const = 0;

  /// Execution time on \p n processors of a task whose uniprocessor time is
  /// \p t1.
  double exec_time(double t1, std::size_t n) const {
    return t1 / speedup(n);
  }
};

}  // namespace locmps
