#include "speedup/profile.hpp"

#include <stdexcept>

namespace locmps {

ExecutionProfile::ExecutionProfile(std::vector<double> times)
    : times_(std::move(times)) {
  if (times_.empty())
    throw std::invalid_argument("ExecutionProfile: empty table");
  for (double t : times_)
    if (t <= 0.0)
      throw std::invalid_argument("ExecutionProfile: times must be > 0");
  compute_pbest();
}

ExecutionProfile::ExecutionProfile(const SpeedupModel& model, double t1,
                                   std::size_t max_procs) {
  if (max_procs == 0)
    throw std::invalid_argument("ExecutionProfile: max_procs must be >= 1");
  if (t1 <= 0.0)
    throw std::invalid_argument("ExecutionProfile: t1 must be > 0");
  times_.reserve(max_procs);
  for (std::size_t p = 1; p <= max_procs; ++p)
    times_.push_back(model.exec_time(t1, p));
  compute_pbest();
}

ExecutionProfile ExecutionProfile::constant(double t, std::size_t max_procs) {
  return ExecutionProfile(std::vector<double>(max_procs, t));
}

double ExecutionProfile::time(std::size_t p) const {
  if (p == 0) throw std::invalid_argument("ExecutionProfile: p must be >= 1");
  if (p > times_.size()) p = times_.size();
  return times_[p - 1];
}

void ExecutionProfile::compute_pbest() {
  pbest_ = 1;
  double best = times_[0];
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (times_[i] < best) {
      best = times_[i];
      pbest_ = i + 1;
    }
  }
}

}  // namespace locmps
