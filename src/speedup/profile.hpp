#pragma once
/// \file profile.hpp
/// Tabulated execution-time profile et(t, p) of a parallel task.
///
/// The paper obtains execution times either from a developer-supplied
/// function or by profiling the task on 1..P processors (Section II). We
/// materialize the profile as a table for p = 1..P at graph-construction
/// time; all schedulers consume only this table, so speedup models never
/// appear on scheduling hot paths.

#include <cstddef>
#include <vector>

#include "speedup/model.hpp"

namespace locmps {

/// Execution-time table for one task, indexed by processor count.
class ExecutionProfile {
 public:
  ExecutionProfile() = default;

  /// Builds a profile from explicit times; \p times[i] is the execution
  /// time on i+1 processors. Must be non-empty with positive entries.
  explicit ExecutionProfile(std::vector<double> times);

  /// Tabulates \p model for p = 1..max_procs with uniprocessor time \p t1.
  ExecutionProfile(const SpeedupModel& model, double t1,
                   std::size_t max_procs);

  /// Serial profile: the same time for every processor count (a task that
  /// does not benefit from more processors).
  static ExecutionProfile constant(double t, std::size_t max_procs);

  /// Largest tabulated processor count.
  std::size_t max_procs() const { return times_.size(); }

  /// Execution time on \p p processors. For p beyond the table the last
  /// entry is returned (a task never uses more processors than profiled);
  /// p must be >= 1.
  double time(std::size_t p) const;

  /// Uniprocessor execution time et(t, 1).
  double serial_time() const { return times_.front(); }

  /// Reduction in execution time from adding one processor to \p p
  /// (may be negative for profiles that worsen past their sweet spot).
  double gain(std::size_t p) const { return time(p) - time(p + 1); }

  /// Pbest: the least processor count at which the execution time attains
  /// its minimum over the table (Algorithm 1, step 14).
  std::size_t pbest() const { return pbest_; }

  /// Speedup on p processors relative to the uniprocessor time.
  double speedup(std::size_t p) const { return serial_time() / time(p); }

  const std::vector<double>& table() const { return times_; }

 private:
  void compute_pbest();

  std::vector<double> times_;  ///< times_[i] = et on i+1 processors
  std::size_t pbest_ = 1;
};

}  // namespace locmps
