#pragma once
/// \file annotations.hpp
/// Clang thread-safety annotations and the annotated synchronization
/// primitives built on them (docs/static_analysis.md).
///
/// Under Clang with -Wthread-safety the LOCMPS_* macros expand to the
/// `capability` attribute family, so taking a lock out of order or
/// touching a LOCMPS_GUARDED_BY member without its mutex fails the build
/// (CI runs clang++ -Werror=thread-safety over the whole library). Under
/// GCC and MSVC they expand to nothing and cost nothing.
///
/// Raw std::mutex carries none of these attributes in libstdc++, which
/// makes locking through it invisible to the analysis — that is why
/// locmps-lint's raw-mutex rule bans naked std synchronization primitives
/// everywhere but this header. Use:
///  * locmps::Mutex           — an annotated capability;
///  * locmps::MutexLock       — scoped acquire/release (lock_guard shape);
///  * locmps::CondVar         — condition variable waiting on a Mutex,
///    wait() declared LOCMPS_REQUIRES(mu) so callers must hold the lock.
///
/// Thread-compatible classes (safe from one thread at a time, externally
/// synchronized or thread-private by design — obs::MetricsRegistry,
/// obs::EventBuffer) carry the LOCMPS_THREAD_COMPATIBLE marker instead of
/// a capability: they have no lock for the analysis to track, and the
/// probe machinery in schedulers/loc_mps.cpp keeps them private per
/// worker (docs/parallelism.md).

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LOCMPS_TSA(x) __attribute__((x))
#endif
#endif
#ifndef LOCMPS_TSA
#define LOCMPS_TSA(x)  // not Clang: annotations compile away
#endif

/// Class attribute: instances are lockable capabilities.
#define LOCMPS_CAPABILITY(name) LOCMPS_TSA(capability(name))
/// Class attribute: RAII objects that hold a capability for their scope.
#define LOCMPS_SCOPED_CAPABILITY LOCMPS_TSA(scoped_lockable)
/// Member attribute: reads/writes require holding the given capability.
#define LOCMPS_GUARDED_BY(x) LOCMPS_TSA(guarded_by(x))
/// Member attribute: the pointee is guarded by the given capability.
#define LOCMPS_PT_GUARDED_BY(x) LOCMPS_TSA(pt_guarded_by(x))
/// Function attribute: caller must hold the capability.
#define LOCMPS_REQUIRES(...) \
  LOCMPS_TSA(requires_capability(__VA_ARGS__))
/// Function attribute: caller must NOT hold the capability.
#define LOCMPS_EXCLUDES(...) LOCMPS_TSA(locks_excluded(__VA_ARGS__))
/// Function attribute: acquires the capability (and does not release it).
#define LOCMPS_ACQUIRE(...) \
  LOCMPS_TSA(acquire_capability(__VA_ARGS__))
/// Function attribute: releases the capability.
#define LOCMPS_RELEASE(...) \
  LOCMPS_TSA(release_capability(__VA_ARGS__))
/// Function attribute: acquires the capability when returning `ret`.
#define LOCMPS_TRY_ACQUIRE(ret, ...) \
  LOCMPS_TSA(try_acquire_capability(ret, __VA_ARGS__))
/// Function attribute: returns a reference to the given capability.
#define LOCMPS_RETURN_CAPABILITY(x) LOCMPS_TSA(lock_returned(x))
/// Function attribute: opt this function out of the analysis (use only
/// with a comment explaining why the analysis cannot see the invariant).
#define LOCMPS_NO_THREAD_SAFETY_ANALYSIS \
  LOCMPS_TSA(no_thread_safety_analysis)

/// Documentation-only marker for thread-compatible classes: safe from one
/// thread at a time; confinement (not a lock) is the synchronization.
#define LOCMPS_THREAD_COMPATIBLE

namespace locmps {

/// std::mutex with the capability attribute, so -Wthread-safety tracks
/// what it guards.
class LOCMPS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LOCMPS_ACQUIRE() { mu_.lock(); }
  void unlock() LOCMPS_RELEASE() { mu_.unlock(); }
  bool try_lock() LOCMPS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock of one Mutex (the std::lock_guard shape, annotated).
class LOCMPS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LOCMPS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() LOCMPS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to locmps::Mutex. wait() requires the lock and
/// returns with it re-held, exactly like std::condition_variable::wait —
/// callers loop on their predicate:
///
///   MutexLock lk(mu_);
///   while (!ready_) cv_.wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases \p mu and blocks; re-acquires before returning.
  /// Declared as holding the lock throughout: the window where it is
  /// released is invisible to callers, matching the analysis model.
  void wait(Mutex& mu) LOCMPS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace locmps
