#include "util/rng.hpp"

namespace locmps {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection-free modulo is fine here: span << 2^64, bias is negligible for
  // workload synthesis, and determinism matters more than exactness.
  return lo + static_cast<std::int64_t>(next() % span);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::split(std::uint64_t salt) noexcept {
  return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ull));
}

}  // namespace locmps
