#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation for workload synthesis.
///
/// All stochastic components of the library (synthetic DAG generation,
/// Downey-parameter sampling, runtime-noise injection) draw from Rng so that
/// every experiment is reproducible from a single 64-bit seed.

#include <cstdint>
#include <limits>

namespace locmps {

/// Small, fast, deterministic PRNG (xoshiro256**).
///
/// We implement the generator ourselves (rather than using std::mt19937)
/// so that sequences are identical across standard-library implementations;
/// benchmark tables must be reproducible bit-for-bit from a seed.
class Rng {
 public:
  /// Seeds the full 256-bit state from \p seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability \p p.
  bool bernoulli(double p) noexcept;

  /// Derives an independent child generator (stable function of state+salt).
  Rng split(std::uint64_t salt) noexcept;

  /// UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace locmps
