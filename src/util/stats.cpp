#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace locmps {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  double sum = 0.0, logsum = 0.0;
  bool geo_ok = true;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    if (x > 0)
      logsum += std::log(x);
    else
      geo_ok = false;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(ss / static_cast<double>(xs.size() - 1))
                 : 0.0;
  s.geomean =
      geo_ok ? std::exp(logsum / static_cast<double>(xs.size())) : 0.0;
  return s;
}

double mean(std::span<const double> xs) { return summarize(xs).mean; }

double geomean(std::span<const double> xs) { return summarize(xs).geomean; }

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

MedianCI median_ci(std::span<const double> xs, double confidence) {
  MedianCI ci;
  if (xs.empty()) return ci;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end(), total_less);
  const std::size_t n = v.size();
  ci.median = n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);

  // Binomial(n, 1/2) pmf, computed by recurrence to avoid overflow.
  std::vector<double> pmf(n + 1);
  pmf[0] = std::pow(0.5, static_cast<double>(n));
  for (std::size_t k = 1; k <= n; ++k)
    pmf[k] = pmf[k - 1] * static_cast<double>(n - k + 1) /
             static_cast<double>(k);
  // Coverage of [x_(k), x_(n+1-k)] (1-based) is P(k <= B <= n-k); find the
  // smallest symmetric trim that still covers the requested level.
  std::size_t best_k = 1;
  double best_cov = 0.0;
  for (std::size_t k = 1; 2 * k <= n + 1; ++k) {
    double cov = 0.0;
    for (std::size_t b = k; b + k <= n; ++b) cov += pmf[b];
    if (k == 1) best_cov = cov;
    if (cov >= confidence) {
      best_k = k;
      best_cov = cov;
    } else {
      break;  // coverage only shrinks as k grows
    }
  }
  ci.lo = v[best_k - 1];
  ci.hi = v[n - best_k];
  ci.coverage = best_cov;
  return ci;
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end(), total_less);
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace locmps
