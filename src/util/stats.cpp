#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace locmps {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  double sum = 0.0, logsum = 0.0;
  bool geo_ok = true;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
    if (x > 0)
      logsum += std::log(x);
    else
      geo_ok = false;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(ss / static_cast<double>(xs.size() - 1))
                 : 0.0;
  s.geomean =
      geo_ok ? std::exp(logsum / static_cast<double>(xs.size())) : 0.0;
  return s;
}

double mean(std::span<const double> xs) { return summarize(xs).mean; }

double geomean(std::span<const double> xs) { return summarize(xs).geomean; }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace locmps
