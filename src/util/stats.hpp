#pragma once
/// \file stats.hpp
/// Lightweight descriptive statistics used by the experiment harness.

#include <cstddef>
#include <span>
#include <vector>

namespace locmps {

/// Summary of a sample: count, mean, stddev, min/max and geometric mean.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double geomean = 0.0;  ///< geometric mean; 0 if any sample <= 0
};

/// Computes a Summary over \p xs. An empty span yields a zero Summary.
Summary summarize(std::span<const double> xs);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Geometric mean; 0 for an empty span or any non-positive sample.
double geomean(std::span<const double> xs);

/// \p q-quantile (0 <= q <= 1) by linear interpolation on the sorted copy.
double quantile(std::span<const double> xs, double q);

}  // namespace locmps
