#pragma once
/// \file stats.hpp
/// Lightweight descriptive statistics used by the experiment harness.

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace locmps {

/// Total order on doubles for sorting: like operator< but NaNs sort last
/// (deterministically), so a stray NaN cannot break std::sort's strict
/// weak ordering requirement and scramble everything after it. Use this as
/// the comparator whenever sorting float keys (locmps-lint: float-sort).
inline bool total_less(double a, double b) {
  if (std::isnan(a)) return false;
  if (std::isnan(b)) return true;
  return a < b;
}

/// Summary of a sample: count, mean, stddev, min/max and geometric mean.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double geomean = 0.0;  ///< geometric mean; 0 if any sample <= 0
};

/// Computes a Summary over \p xs. An empty span yields a zero Summary.
Summary summarize(std::span<const double> xs);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Geometric mean; 0 for an empty span or any non-positive sample.
double geomean(std::span<const double> xs);

/// \p q-quantile (0 <= q <= 1) by linear interpolation on the sorted copy.
double quantile(std::span<const double> xs, double q);

/// Median (the 0.5-quantile); 0 for an empty span.
double median(std::span<const double> xs);

/// Distribution-free confidence interval for the median.
struct MedianCI {
  double median = 0.0;
  double lo = 0.0;  ///< lower order-statistic bound
  double hi = 0.0;  ///< upper order-statistic bound
  /// Achieved coverage of [lo, hi] (>= the requested level when the sample
  /// is large enough; the widest achievable min/max interval otherwise).
  double coverage = 0.0;
};

/// Order-statistic (binomial, distribution-free) confidence interval for
/// the median at the requested \p confidence level: the symmetric interval
/// [x_(k), x_(n+1-k)] with the smallest k whose exact binomial coverage
/// P(k <= B < n+1-k), B ~ Binomial(n, 1/2), reaches \p confidence. For
/// samples too small to reach the level, returns [min, max] with its
/// achieved coverage. An empty span yields a zero MedianCI.
MedianCI median_ci(std::span<const double> xs, double confidence = 0.95);

}  // namespace locmps
