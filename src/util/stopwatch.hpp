#pragma once
/// \file stopwatch.hpp
/// Wall-clock timing for scheduling-overhead measurements (Fig 6b, Fig 10).

#include <chrono>

namespace locmps {

/// Monotonic stopwatch, started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace locmps
