#include "util/table.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace locmps {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool Table::maybe_write_csv(const std::string& path) const {
  const char* env = std::getenv("LOCMPS_CSV");
  if (env == nullptr || *env == '\0' || std::string(env) == "0") return false;
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return true;
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace locmps
