#pragma once
/// \file table.hpp
/// ASCII table and CSV emission for the benchmark harness. Every figure
/// bench prints a paper-style table with these helpers and can mirror it to
/// CSV (for replotting) when the LOCMPS_CSV environment variable is set.

#include <iosfwd>
#include <string>
#include <vector>

namespace locmps {

/// A simple column-aligned text table.
///
/// Usage:
/// \code
///   Table t({"P", "CPR", "CPA"});
///   t.add_row({"8", "0.91", "0.87"});
///   t.print(std::cout);
/// \endcode
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with \p precision digits after the point.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  /// Renders the table, column-aligned, with a header separator.
  void print(std::ostream& os) const;

  /// Writes the table as CSV.
  void write_csv(std::ostream& os) const;

  /// Writes CSV to \p path if the LOCMPS_CSV environment variable is set to
  /// a non-empty, non-"0" value. Returns true when a file was written.
  bool maybe_write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed \p precision (no trailing spaces).
std::string fmt(double v, int precision = 3);

}  // namespace locmps
