#include "util/thread_pool.hpp"

#include <exception>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#include <time.h>
#endif

namespace locmps {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

double ThreadPool::worker_cpu_seconds() const {
  double total = 0.0;
#if (defined(__unix__) || defined(__APPLE__)) && defined(_POSIX_THREAD_CPUTIME)
  for (const std::thread& w : workers_) {
    clockid_t cid;
    // const_cast: native_handle() is non-const but reading a CPU clock
    // does not mutate the thread.
    auto handle = const_cast<std::thread&>(w).native_handle();
    if (pthread_getcpuclockid(handle, &cid) != 0) continue;
    timespec ts{};
    if (clock_gettime(cid, &ts) != 0) continue;
    total += static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return total;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> job;
    {
      MutexLock lk(mu_);
      while (!wake_ready()) cv_.wait(mu_);
      if (queue_.empty()) return;  // stop requested and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task captures exceptions into the future
  }
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  std::future<void> fut = task.get_future();
  {
    const MutexLock lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_map(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (size() <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    futs.push_back(submit([&fn, i] { fn(i); }));
  std::exception_ptr first;
  for (std::future<void>& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

}  // namespace locmps
