#pragma once
/// \file thread_pool.hpp
/// A fixed-size worker pool for the speculative LoCBS probe fan-out
/// (schedulers/loc_mps.cpp) and other deterministic parallel reductions.
///
/// Design rules (docs/parallelism.md):
///  * The pool never reorders results: callers submit jobs, keep the
///    returned futures in submission order, and reduce in that order.
///    Determinism is the caller's contract; the pool only promises that
///    every submitted job runs exactly once.
///  * Jobs must not touch shared mutable state except through their own
///    synchronization (the probe jobs write disjoint result slots and
///    share one std::atomic).
///  * A pool of size <= 1 still owns one worker thread; parallel_map
///    short-circuits to an inline loop in that case so single-threaded
///    configurations pay no synchronization at all.

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace locmps {

/// Fixed-size thread pool with a FIFO job queue.
class ThreadPool {
 public:
  /// Spawns \p threads workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue (pending jobs still run) and joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Total CPU seconds the worker threads have consumed so far, summed
  /// over the pool via per-thread CPU clocks (pthread_getcpuclockid).
  /// 0.0 on platforms without them. Feeds the planner's CPU-attribution
  /// telemetry (locmps.parallel.worker_cpu_s, docs/observability.md);
  /// a diagnostic only — never a scheduling input.
  double worker_cpu_seconds() const;

  /// Enqueues \p job; the future becomes ready when it finishes (or holds
  /// the exception it threw).
  std::future<void> submit(std::function<void()> job);

  /// Runs fn(0), fn(1), ..., fn(count-1) across the pool and waits for all
  /// of them. Runs inline (in index order) when the pool has one worker or
  /// count <= 1. If any invocation throws, the exception of the
  /// lowest-index failing invocation is rethrown after every invocation
  /// has completed — the deterministic choice.
  void parallel_map(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Wake condition for a worker: work to do, or shutdown requested.
  bool wake_ready() const LOCMPS_REQUIRES(mu_) {
    return stop_ || !queue_.empty();
  }

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::packaged_task<void()>> queue_ LOCMPS_GUARDED_BY(mu_);
  bool stop_ LOCMPS_GUARDED_BY(mu_) = false;
};

}  // namespace locmps
