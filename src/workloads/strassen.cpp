#include "workloads/strassen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "speedup/downey.hpp"

namespace locmps {

namespace {

/// Builder carrying the generator parameters through the recursion.
class StrassenBuilder {
 public:
  StrassenBuilder(TaskGraph& g, const StrassenParams& p) : g_(g), p_(p) {
    if (p.n < 4 || (p.n & (p.n - 1)) != 0)
      throw std::invalid_argument(
          "make_strassen: n must be a power of two >= 4");
    if (p.levels < 1)
      throw std::invalid_argument("make_strassen: levels must be >= 1");
    if ((p.n >> p.levels) < 2)
      throw std::invalid_argument("make_strassen: too many levels for n");
  }

  /// Emits the task computing the product of the half x half operands
  /// produced by tasks \p a and \p b (kNoTask: the operand quadrant is
  /// pre-distributed input, no edge needed); returns the producing task.
  TaskId multiply(std::size_t half, std::size_t level, const std::string& tag,
                  TaskId a, TaskId b) {
    const double hb = block_bytes(half);
    if (level == 0) {
      // Leaf: a classical block multiply.
      const TaskId m = mul_task("mul" + tag, half);
      if (a != kNoTask) g_.add_edge(a, m, hb);
      if (b != kNoTask) g_.add_edge(b, m, hb);
      return m;
    }
    const std::size_t q = half / 2;
    const double qb = block_bytes(q);

    // Ten pre-additions over quadrants of A and B. Each consumes two
    // quadrants (half the operand's bytes) from its producer, or nothing
    // if the operand is pre-distributed input.
    auto pre = [&](const char* name, TaskId src) {
      const TaskId t = add_task(std::string(name) + tag, q, 1.0);
      if (src != kNoTask) g_.add_edge(src, t, 2.0 * qb);
      return t;
    };
    const TaskId sa1 = pre("sa1", a);  // A11 + A22
    const TaskId sa2 = pre("sa2", a);  // A21 + A22
    const TaskId sa3 = pre("sa3", a);  // A11 + A12
    const TaskId sa4 = pre("sa4", a);  // A21 - A11
    const TaskId sa5 = pre("sa5", a);  // A12 - A22
    const TaskId sb1 = pre("sb1", b);  // B11 + B22
    const TaskId sb2 = pre("sb2", b);  // B12 - B22
    const TaskId sb3 = pre("sb3", b);  // B21 - B11
    const TaskId sb4 = pre("sb4", b);  // B11 + B12
    const TaskId sb5 = pre("sb5", b);  // B21 + B22

    // M2, M3, M4, M5 consume one unmodified operand quadrant directly
    // (from the producer, or pre-distributed input at the top level).
    const TaskId m1 = multiply(q, level - 1, tag + "1", sa1, sb1);
    const TaskId m2 = multiply(q, level - 1, tag + "2", sa2, b);
    const TaskId m3 = multiply(q, level - 1, tag + "3", a, sb2);
    const TaskId m4 = multiply(q, level - 1, tag + "4", a, sb3);
    const TaskId m5 = multiply(q, level - 1, tag + "5", sa3, b);
    const TaskId m6 = multiply(q, level - 1, tag + "6", sa4, sb4);
    const TaskId m7 = multiply(q, level - 1, tag + "7", sa5, sb5);

    // Post-combinations into the four C quadrants.
    auto combine = [&](const char* name, std::initializer_list<TaskId> ms) {
      const TaskId t = add_task(std::string(name) + tag, q,
                                static_cast<double>(ms.size()) - 1.0);
      for (TaskId m : ms) g_.add_edge(m, t, qb);
      return t;
    };
    const TaskId c11 = combine("c11_", {m1, m4, m5, m7});
    const TaskId c12 = combine("c12_", {m3, m5});
    const TaskId c21 = combine("c21_", {m2, m4});
    const TaskId c22 = combine("c22_", {m1, m2, m3, m6});

    // Assemble the half x half product from its quadrants (a copy pass).
    const TaskId out = add_task("asm" + tag, q, 1.0);
    g_.add_edge(c11, out, qb);
    g_.add_edge(c12, out, qb);
    g_.add_edge(c21, out, qb);
    g_.add_edge(c22, out, qb);
    return out;
  }

  double block_bytes(std::size_t dim) const {
    return static_cast<double>(dim) * static_cast<double>(dim) *
           p_.element_bytes;
  }

 private:
  /// Deterministic per-task perturbation mimicking measured profiles:
  /// real profiling never yields bit-identical curves for sibling kernels,
  /// and exact ties would make strict-improvement baselines (CPR) stall
  /// artificially. +/-3%, cycling with the task index.
  double jitter() {
    const double f = 1.0 + 0.03 * std::sin(static_cast<double>(
                                      1 + g_.num_tasks()));
    return f;
  }

  /// Memory-bound elementwise task over a dim x dim block (\p passes
  /// element sweeps): little work, poor scalability.
  TaskId add_task(const std::string& name, std::size_t dim, double passes) {
    const double els = static_cast<double>(dim) * static_cast<double>(dim);
    const double t1 =
        std::max(1e-4, std::max(1.0, passes) * els * p_.mem_factor /
                           p_.flops_per_sec) *
        jitter();
    const double A = std::clamp(static_cast<double>(dim) / 256.0, 1.0, 16.0);
    const DowneyModel m(A, 1.5);
    return g_.add_task(name, ExecutionProfile(m, t1, p_.max_procs));
  }

  /// Compute-bound classical block multiply: scales with the block size.
  TaskId mul_task(const std::string& name, std::size_t dim) {
    const double d = static_cast<double>(dim);
    const double t1 =
        std::max(1e-4, 2.0 * d * d * d / p_.flops_per_sec) * jitter();
    const double A = std::clamp(d / 32.0, 1.0, 256.0);
    const DowneyModel m(A, 0.7);
    return g_.add_task(name, ExecutionProfile(m, t1, p_.max_procs));
  }

  TaskGraph& g_;
  const StrassenParams& p_;
};

}  // namespace

TaskGraph make_strassen(const StrassenParams& p) {
  TaskGraph g;
  StrassenBuilder b(g, p);
  // The operand matrices A and B are pre-distributed inputs: the pre-add
  // tasks are the DAG's sources (Fig 7b shows only matrix operations).
  b.multiply(p.n, p.levels, "", kNoTask, kNoTask);
  return g;
}

}  // namespace locmps
