#pragma once
/// \file strassen.hpp
/// Task graph of Strassen's matrix multiplication (Section IV-B, Fig 7b).
///
/// One Strassen level on an N x N product spawns ten block pre-additions
/// (S matrices), seven half-size block multiplications (M1..M7) and four
/// post-combinations forming the C quadrants. Multiplications carry
/// O((N/2)^3) work and scale well; additions are memory bound and scale
/// poorly, which is why the pure data-parallel schedule only becomes
/// competitive at large N (Fig 9). The generator recurses: each block
/// multiply can itself be expanded into a Strassen sub-DAG.
///
/// The paper's Itanium-2 execution profiles are substituted with analytic
/// Downey profiles derived from the block sizes (see DESIGN.md).

#include "graph/task_graph.hpp"

namespace locmps {

/// Parameters of the Strassen task graph.
struct StrassenParams {
  std::size_t n = 1024;         ///< matrix dimension N
  std::size_t levels = 1;       ///< Strassen recursion depth (>= 1)
  double flops_per_sec = 2e9;   ///< per-processor multiply throughput
  double mem_factor = 10.0;     ///< slowdown of memory-bound additions
  double element_bytes = 8.0;   ///< matrix element size
  std::size_t max_procs = 128;  ///< profile table length
};

/// Builds the Strassen DAG. The operand matrices are pre-distributed
/// inputs, so the pre-addition tasks are the DAG sources; a single
/// assemble task producing the product is the sink.
TaskGraph make_strassen(const StrassenParams& p = {});

}  // namespace locmps
