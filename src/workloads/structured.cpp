#include "workloads/structured.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "speedup/downey.hpp"

namespace locmps {

namespace {

/// One task with the family's cost model.
TaskId add_task(TaskGraph& g, const std::string& name,
                const StructuredParams& p, Rng& rng) {
  const double t1 = std::max(1e-3, rng.uniform(0.0, 2.0 * p.mean_serial_time));
  const DowneyModel m(rng.uniform(1.0, p.amax), p.sigma);
  return g.add_task(name, ExecutionProfile(m, t1, p.max_procs));
}

/// Edge volume drawn as in the TGFF-style generator.
double volume(const StructuredParams& p, Rng& rng) {
  if (p.ccr <= 0.0) return 0.0;
  return rng.uniform(0.0, 2.0 * p.mean_serial_time * p.ccr) * p.bandwidth_Bps;
}

}  // namespace

TaskGraph make_fork_join(std::size_t stages, std::size_t width,
                         const StructuredParams& p, Rng& rng) {
  TaskGraph g;
  TaskId join = add_task(g, "start", p, rng);
  for (std::size_t s = 0; s < stages; ++s) {
    std::vector<TaskId> forked;
    for (std::size_t w = 0; w < width; ++w) {
      const TaskId t = add_task(
          g, "s" + std::to_string(s) + "w" + std::to_string(w), p, rng);
      g.add_edge(join, t, volume(p, rng));
      forked.push_back(t);
    }
    const TaskId next = add_task(g, "join" + std::to_string(s), p, rng);
    for (TaskId t : forked) g.add_edge(t, next, volume(p, rng));
    join = next;
  }
  return g;
}

TaskGraph make_pipeline(std::size_t length, const StructuredParams& p,
                        Rng& rng) {
  TaskGraph g;
  TaskId prev = kNoTask;
  for (std::size_t i = 0; i < length; ++i) {
    const TaskId t = add_task(g, "stage" + std::to_string(i), p, rng);
    if (prev != kNoTask) g.add_edge(prev, t, volume(p, rng));
    prev = t;
  }
  return g;
}

TaskGraph make_layered(std::size_t layers, std::size_t width,
                       const StructuredParams& p, Rng& rng) {
  TaskGraph g;
  std::vector<TaskId> prev;
  for (std::size_t l = 0; l < layers; ++l) {
    std::vector<TaskId> cur;
    for (std::size_t w = 0; w < width; ++w) {
      const TaskId t = add_task(
          g, "l" + std::to_string(l) + "t" + std::to_string(w), p, rng);
      for (TaskId s : prev) g.add_edge(s, t, volume(p, rng));
      cur.push_back(t);
    }
    prev = std::move(cur);
  }
  return g;
}

TaskGraph make_series_parallel(std::size_t ops, const StructuredParams& p,
                               Rng& rng) {
  // Grow the shape first on abstract vertices, then realize costs.
  struct AbstractEdge {
    std::size_t src, dst;
  };
  std::size_t num_vertices = 2;  // 0 = source, 1 = sink
  std::vector<AbstractEdge> edges{{0, 1}};
  for (std::size_t i = 0; i < ops; ++i) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(edges.size()) - 1));
    const AbstractEdge e = edges[pick];
    const std::size_t w = num_vertices++;
    if (rng.bernoulli(0.5)) {
      // Series: subdivide the edge with a new vertex.
      edges[pick] = AbstractEdge{e.src, w};
      edges.push_back(AbstractEdge{w, e.dst});
    } else {
      // Parallel: add a disjoint path of length 2 next to the edge.
      edges.push_back(AbstractEdge{e.src, w});
      edges.push_back(AbstractEdge{w, e.dst});
    }
  }
  TaskGraph g;
  for (std::size_t v = 0; v < num_vertices; ++v)
    add_task(g, "v" + std::to_string(v), p, rng);
  for (const AbstractEdge& e : edges)
    g.add_edge(static_cast<TaskId>(e.src), static_cast<TaskId>(e.dst),
               volume(p, rng));
  return g;
}

}  // namespace locmps
