#pragma once
/// \file structured.hpp
/// Structured task-graph families complementing the random TGFF-style
/// generator: the canonical shapes mixed-parallel applications take
/// (fork-join phases, pipelines, wide layers, series-parallel nests).
/// TGFF itself generates series-parallel-ish graphs; these generators pin
/// the structure down exactly so DAG-shape sensitivity can be studied in
/// isolation (bench ext_dag_shapes).

#include <cstdint>

#include "cluster/cluster.hpp"
#include "graph/task_graph.hpp"
#include "util/rng.hpp"

namespace locmps {

/// Common cost parameters of the structured families (same semantics as
/// SyntheticParams: Downey scalability, CCR-scaled communication).
struct StructuredParams {
  double mean_serial_time = 30.0;
  double ccr = 0.1;
  double amax = 64.0;
  double sigma = 1.0;
  std::size_t max_procs = 128;
  double bandwidth_Bps = kFastEthernetBytesPerSec;
};

/// Fork-join: `stages` sequential phases; each phase forks `width`
/// independent tasks from a coordinator task and joins into the next.
TaskGraph make_fork_join(std::size_t stages, std::size_t width,
                         const StructuredParams& p, Rng& rng);

/// Linear pipeline of `length` tasks (the structure of Subhlok & Vondran's
/// chains, ref [26]): precedence is a single path.
TaskGraph make_pipeline(std::size_t length, const StructuredParams& p,
                        Rng& rng);

/// `layers` fully connected layers of `width` tasks each: every task
/// depends on every task of the previous layer (dense redistribution).
TaskGraph make_layered(std::size_t layers, std::size_t width,
                       const StructuredParams& p, Rng& rng);

/// Random series-parallel DAG with `ops` composition steps: starting from
/// a single edge, repeatedly duplicate a random edge in parallel or
/// subdivide it in series (the class Prasanna's optimal results cover,
/// ref [27]).
TaskGraph make_series_parallel(std::size_t ops, const StructuredParams& p,
                               Rng& rng);

}  // namespace locmps
