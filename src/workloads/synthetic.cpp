#include "workloads/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "speedup/downey.hpp"

namespace locmps {

TaskGraph make_synthetic_dag(const SyntheticParams& p, Rng& rng) {
  const std::size_t n = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(p.min_tasks),
                      static_cast<std::int64_t>(p.max_tasks)));
  TaskGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    // Uniform with the requested mean; bounded away from zero so profiles
    // stay positive.
    const double t1 =
        std::max(1e-3, rng.uniform(0.0, 2.0 * p.mean_serial_time));
    const double A = rng.uniform(1.0, p.amax);
    const DowneyModel model(A, p.sigma);
    g.add_task("t" + std::to_string(i),
               ExecutionProfile(model, t1, p.max_procs));
  }
  // Random precedence: task i draws predecessors among earlier tasks so the
  // result is a DAG by construction. In-degree ~ U[1, 2*avg-1] gives the
  // requested average degree once i is large enough.
  const auto deg_hi =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(2.0 * p.avg_degree) - 1);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t want = static_cast<std::size_t>(std::min<std::int64_t>(
        static_cast<std::int64_t>(i), rng.uniform_int(1, deg_hi)));
    // Sample 'want' distinct predecessors.
    std::vector<TaskId> pool(i);
    for (std::size_t k = 0; k < i; ++k) pool[k] = static_cast<TaskId>(k);
    for (std::size_t k = 0; k < want; ++k) {
      const std::size_t j = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(k),
                          static_cast<std::int64_t>(pool.size()) - 1));
      std::swap(pool[k], pool[j]);
      const double cost =
          p.ccr > 0.0
              ? rng.uniform(0.0, 2.0 * p.mean_serial_time * p.ccr)
              : 0.0;
      g.add_edge(pool[k], static_cast<TaskId>(i), cost * p.bandwidth_Bps);
    }
  }
  return g;
}

std::vector<TaskGraph> make_synthetic_suite(const SyntheticParams& p,
                                            std::size_t count,
                                            std::uint64_t seed) {
  std::vector<TaskGraph> out;
  out.reserve(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    Rng child = rng.split(i + 1);
    out.push_back(make_synthetic_dag(p, child));
  }
  return out;
}

}  // namespace locmps
