#pragma once
/// \file synthetic.hpp
/// Synthetic task-graph generation following Section IV-A of the paper.
///
/// The paper uses the TGFF tool to generate 30 random DAGs with 10-50 tasks
/// and average in/out-degree 4; uniprocessor times are uniform with mean 30,
/// edge communication costs uniform with mean 30*CCR (data volume = cost x
/// network bandwidth, 100 Mbps fast ethernet), and task scalability follows
/// Downey's model with A uniform in [1, Amax] and a fixed sigma. This module
/// is our TGFF substitute: a seeded layered random-DAG generator with the
/// same knobs (substitution documented in DESIGN.md).

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "graph/task_graph.hpp"
#include "util/rng.hpp"

namespace locmps {

/// Knobs of the synthetic workload generator (paper defaults).
struct SyntheticParams {
  std::size_t min_tasks = 10;
  std::size_t max_tasks = 50;
  /// Target average in/out degree: each non-root draws its in-degree
  /// uniformly from [1, 2*avg_degree - 1].
  double avg_degree = 4.0;
  /// Uniprocessor times are uniform in (0, 2*mean_serial_time).
  double mean_serial_time = 30.0;
  /// Communication-to-computation ratio; edge costs (at np=1) are uniform
  /// with mean mean_serial_time * ccr.
  double ccr = 0.0;
  /// Downey scalability: A uniform in [1, amax], fixed sigma.
  double amax = 64.0;
  double sigma = 1.0;
  /// Length of the tabulated execution profiles (>= largest cluster).
  std::size_t max_procs = 128;
  /// Link bandwidth used to convert edge costs to data volumes.
  double bandwidth_Bps = kFastEthernetBytesPerSec;
};

/// Generates one random DAG. Deterministic in (params, rng state).
TaskGraph make_synthetic_dag(const SyntheticParams& p, Rng& rng);

/// Generates the paper's suite of \p count independent DAGs from \p seed.
std::vector<TaskGraph> make_synthetic_suite(const SyntheticParams& p,
                                            std::size_t count,
                                            std::uint64_t seed);

}  // namespace locmps
