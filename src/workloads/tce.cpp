#include "workloads/tce.hpp"

#include <algorithm>
#include <cmath>

#include "speedup/downey.hpp"

namespace locmps {

namespace {

/// Average parallelism heuristic: contraction parallelism grows with the
/// amount of work (more independent output tiles), so large contractions
/// scale to many processors while small ones saturate almost immediately.
double contraction_parallelism(double flops) {
  return std::clamp(flops / 5e7, 1.5, 256.0);
}

}  // namespace

TaskGraph make_ccsd_t1(const TCEParams& p) {
  const double o = static_cast<double>(p.occupied);
  const double v = static_cast<double>(p.virt);
  const double eb = p.element_bytes;
  TaskGraph g;

  // Result/intermediate tensor sizes (bytes). Input tensors (Fock blocks,
  // two-electron integrals, the t1/t2 amplitudes) are pre-distributed
  // before the computation starts — as in the paper's Fig 7a DAG, only
  // *inter-task* tensors flow along edges and may need redistribution.
  const double sz_ov = o * v * eb;  // t1-shaped results, residual

  auto contraction = [&](const std::string& name, double flops,
                         double sigma = 0.8) {
    const double t1 = std::max(1e-4, flops / p.flops_per_sec);
    const DowneyModel m(contraction_parallelism(flops), sigma);
    return g.add_task(name, ExecutionProfile(m, t1, p.max_procs));
  };
  // Accumulations are memory bound: tiny work, almost no scaling.
  auto accumulation = [&](const std::string& name, double terms) {
    const double t1 =
        std::max(1e-4, terms * o * v * 20.0 / p.flops_per_sec);
    const DowneyModel m(2.0, 2.0);
    return g.add_task(name, ExecutionProfile(m, t1, p.max_procs));
  };

  // --- Independent contractions of the T1 residual -----------------------
  // Contractions over pre-distributed inputs are the DAG's source vertices
  // ("many of the vertices have a single incident edge", Fig 7a).
  // r1 = f_vv * t1                  (v^2 o work)
  const TaskId c1 = contraction("f_vv*t1", 2 * o * v * v);
  // r2 = f_oo * t1                  (o^2 v)
  const TaskId c2 = contraction("f_oo*t1", 2 * o * o * v);
  // r3 = f_ov * t2                  (o^2 v^2)
  const TaskId c3 = contraction("f_ov*t2", 2 * o * o * v * v);
  // I1 = f_ov * t1 (oo intermediate), then r4 = I1 * t1
  const TaskId c4 = contraction("f_ov*t1", 2 * o * o * v);
  const TaskId c5 = contraction("I1*t1", 2 * o * o * v);
  g.add_edge(c4, c5, o * o * eb);
  // r5 = W_ovov * t1                (o^2 v^2)
  const TaskId c6 = contraction("W_ovov*t1", 2 * o * o * v * v);
  // r6 = W_ovvv * t2                (o^2 v^3) — the heavyweight
  const TaskId c7 = contraction("W_ovvv*t2", 2 * o * o * v * v * v);
  // r7 = W_ooov * t2                (o^3 v^2)
  const TaskId c8 = contraction("W_ooov*t2", 2 * o * o * o * v * v);
  // I2 = W_oovv * t1 (ooov intermediate), then r8 = I2 * t2
  const TaskId c9 = contraction("W_oovv*t1", 2 * o * o * v * v);
  const TaskId c10 = contraction("I2*t2", 2 * o * o * o * v * v);
  g.add_edge(c9, c10, o * o * o * v * eb);
  // I3 = W_oovv * t2 (ov intermediate), then r9 = I3 * t1
  const TaskId c11 = contraction("W_oovv*t2", 2 * o * o * v * v);
  const TaskId c12 = contraction("I3*t1", 2 * o * o * v);
  g.add_edge(c11, c12, sz_ov);

  // --- Accumulation chain into the residual (partial products) -----------
  const TaskId a1 = accumulation("acc1", 3);
  g.add_edge(c1, a1, sz_ov);
  g.add_edge(c2, a1, sz_ov);
  const TaskId a2 = accumulation("acc2", 3);
  g.add_edge(a1, a2, sz_ov);
  g.add_edge(c3, a2, sz_ov);
  g.add_edge(c5, a2, sz_ov);
  const TaskId a3 = accumulation("acc3", 3);
  g.add_edge(a2, a3, sz_ov);
  g.add_edge(c6, a3, sz_ov);
  g.add_edge(c7, a3, sz_ov);
  const TaskId a4 = accumulation("acc4", 3);
  g.add_edge(a3, a4, sz_ov);
  g.add_edge(c8, a4, sz_ov);
  g.add_edge(c10, a4, sz_ov);
  const TaskId a5 = accumulation("residual", 2);
  g.add_edge(a4, a5, sz_ov);
  g.add_edge(c12, a5, sz_ov);

  return g;
}

TaskGraph make_ccsd_t2(const TCEParams& p) {
  const double o = static_cast<double>(p.occupied);
  const double v = static_cast<double>(p.virt);
  const double eb = p.element_bytes;
  TaskGraph g;

  const double sz_ov = o * v * eb;
  const double sz_oo = o * o * eb;
  const double sz_vv = v * v * eb;
  const double sz_oovv = o * o * v * v * eb;  // t2-shaped results
  const double sz_ooov = o * o * o * v * eb;
  const double sz_oooo = o * o * o * o * eb;

  auto contraction = [&](const std::string& name, double flops,
                         double sigma = 0.8) {
    const double t1 = std::max(1e-4, flops / p.flops_per_sec);
    const DowneyModel m(contraction_parallelism(flops), sigma);
    return g.add_task(name, ExecutionProfile(m, t1, p.max_procs));
  };
  auto accumulation = [&](const std::string& name, double terms) {
    const double t1 =
        std::max(1e-4, terms * o * o * v * v * 4.0 / p.flops_per_sec);
    const DowneyModel m(3.0, 2.0);
    return g.add_task(name, ExecutionProfile(m, t1, p.max_procs));
  };

  // --- Direct (linear-in-t2) contractions --------------------------------
  // Particle-particle ladder: r += W_vvvv * t2       (o^2 v^4, the giant)
  const TaskId pp = contraction("W_vvvv*t2", 2 * o * o * v * v * v * v);
  // Hole-hole ladder: I_oooo = W_oooo + W_oovv*t2, then r += I_oooo * tau
  const TaskId hh1 = contraction("W_oovv*t2(oooo)", 2 * o * o * o * o * v * v);
  const TaskId hh2 = contraction("Ioooo*tau", 2 * o * o * o * o * v * v);
  g.add_edge(hh1, hh2, sz_oooo);
  // Ring / particle-hole terms: I_ovov intermediates then contraction.
  const TaskId ph1 = contraction("W_ovov+W_oovv*t2", 2 * o * o * o * v * v * v);
  const TaskId ph2 = contraction("Iovov*t2", 2 * o * o * o * v * v * v);
  g.add_edge(ph1, ph2, o * v * o * v * eb);
  // Fock-dressed one-particle pieces.
  const TaskId fvv = contraction("F_vv*t2", 2 * o * o * v * v * v);
  const TaskId foo = contraction("F_oo*t2", 2 * o * o * o * v * v);
  // t1-dressed integral intermediates feeding the residual.
  const TaskId d1 = contraction("W_ovvv*t1(vv)", 2 * o * v * v * v);
  const TaskId d2 = contraction("Ivv*t2", 2 * o * o * v * v * v);
  g.add_edge(d1, d2, sz_vv);
  const TaskId d3 = contraction("W_ooov*t1(oo)", 2 * o * o * o * v);
  const TaskId d4 = contraction("Ioo*t2", 2 * o * o * o * v * v);
  g.add_edge(d3, d4, sz_oo);
  // Direct integral terms.
  const TaskId w1 = contraction("W_ovvv*t1", 2 * o * o * v * v * v);
  const TaskId w2 = contraction("W_ooov*t1", 2 * o * o * o * v * v);
  // Quadratic terms via the tau intermediate (t2 + t1*t1).
  const TaskId q1 = contraction("tau_build", o * o * v * v, 2.0);
  const TaskId q2 = contraction("W_oovv*tau(vvvv)", 2 * o * o * v * v * v * v);
  g.add_edge(q1, q2, sz_oovv);
  const TaskId q3 = contraction("Ivvvv*tau", 2 * o * o * v * v * v * v);
  g.add_edge(q2, q3, v * v * v * v * eb / std::max(1.0, o));  // screened
  g.add_edge(q1, q3, sz_oovv);
  const TaskId q4 = contraction("W_oovv*tau(oo)", 2 * o * o * o * v * v);
  g.add_edge(q1, q4, sz_oovv);
  const TaskId q5 = contraction("Ioo2*t2", 2 * o * o * o * v * v);
  g.add_edge(q4, q5, sz_oo);
  // Three-index mixed pieces.
  const TaskId m1 = contraction("W_ovoo*t1", 2 * o * o * o * v * v);
  const TaskId m2 = contraction("W_vvvo*t1", 2 * o * v * v * v);
  const TaskId m3 = contraction("Ivvvo*t1", 2 * o * o * v * v * v);
  g.add_edge(m2, m3, o * v * v * eb);

  // --- Accumulation spine into the doubles residual ----------------------
  const TaskId a1 = accumulation("t2acc1", 3);
  g.add_edge(pp, a1, sz_oovv);
  g.add_edge(hh2, a1, sz_oovv);
  const TaskId a2 = accumulation("t2acc2", 3);
  g.add_edge(a1, a2, sz_oovv);
  g.add_edge(ph2, a2, sz_oovv);
  g.add_edge(fvv, a2, sz_oovv);
  const TaskId a3 = accumulation("t2acc3", 3);
  g.add_edge(a2, a3, sz_oovv);
  g.add_edge(foo, a3, sz_oovv);
  g.add_edge(d2, a3, sz_oovv);
  const TaskId a4 = accumulation("t2acc4", 3);
  g.add_edge(a3, a4, sz_oovv);
  g.add_edge(d4, a4, sz_oovv);
  g.add_edge(w1, a4, sz_oovv);
  const TaskId a5 = accumulation("t2acc5", 3);
  g.add_edge(a4, a5, sz_oovv);
  g.add_edge(w2, a5, sz_oovv);
  g.add_edge(q3, a5, sz_oovv);
  const TaskId a6 = accumulation("t2acc6", 3);
  g.add_edge(a5, a6, sz_oovv);
  g.add_edge(q5, a6, sz_oovv);
  g.add_edge(m1, a6, sz_oovv);
  const TaskId a7 = accumulation("t2residual", 2);
  g.add_edge(a6, a7, sz_oovv);
  g.add_edge(m3, a7, sz_oovv);

  (void)sz_ov;
  (void)sz_ooov;
  return g;
}

}  // namespace locmps
