#pragma once
/// \file tce.hpp
/// Task graph of the CCSD T1 amplitude computation from the Tensor
/// Contraction Engine (Section IV-B, Fig 7a).
///
/// Each vertex is a tensor contraction (a generalized matrix multiply) or
/// an accumulation into the running partial product; edges carry the
/// produced tensor. The paper's DAG comes from the coupled-cluster singles
/// and doubles (CCSD) T1 residual equation: a few large contractions
/// (O(o^2 v^3) work) among many small, poorly scaling ones — exactly the
/// structure that defeats the pure data-parallel schedule.
///
/// The paper's execution profiles were measured on an Itanium-2 cluster; we
/// substitute analytic profiles derived from the contraction flop counts
/// (Downey curves whose average parallelism grows with task size), as
/// documented in DESIGN.md.

#include "graph/task_graph.hpp"

namespace locmps {

/// Problem-size parameters of the CCSD T1 graph.
struct TCEParams {
  std::size_t occupied = 32;    ///< number of occupied orbitals (o)
  std::size_t virt = 128;       ///< number of virtual orbitals (v)
  double flops_per_sec = 2e9;   ///< per-processor contraction throughput
  double element_bytes = 8.0;   ///< tensor element size
  std::size_t max_procs = 128;  ///< profile table length
};

/// Builds the CCSD T1 task graph: twelve contractions (those over
/// pre-distributed input tensors are the DAG sources) feeding a chain of
/// partial-product accumulations that ends in the residual sink.
TaskGraph make_ccsd_t1(const TCEParams& p = {});

/// Builds the (larger) CCSD T2 doubles-residual task graph: ~24
/// contractions including the O(o^2 v^4) particle-particle and O(o^4 v^2)
/// hole-hole ladder terms, intermediate chains, and the accumulation spine
/// into the doubles residual. Roughly an order of magnitude more work than
/// T1 at the same (o, v).
TaskGraph make_ccsd_t2(const TCEParams& p = {});

}  // namespace locmps
