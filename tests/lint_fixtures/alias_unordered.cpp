// Deliberately-bad fixture: unordered iteration hidden behind aliases.
// The symbol table must see through `using`/`typedef` chains — both
// functions below iterate a hash container no matter what it is called.

#include <string>
#include <unordered_map>

using RankMap = std::unordered_map<std::string, int>;
typedef RankMap ScoreTable;

int sum_ranks(const RankMap& ranks) {
  int total = 0;
  for (const auto& kv : ranks) total += kv.second;
  return total;
}

int first_score(const ScoreTable& scores) {
  auto it = scores.begin();
  return it == scores.end() ? 0 : it->second;
}
