// locmps-lint fixture: the idiomatic counterparts of every rule's bad
// pattern; must produce zero findings.
#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>
#include <vector>

double clean_decide(const std::vector<int>& ids) {
  // Ordered container iteration is deterministic.
  std::map<int, double> weights{{1, 0.5}, {2, 0.25}};
  double sum = 0.0;
  for (const auto& kv : weights) sum += kv.second;
  // Membership tests on unordered containers are fine; only iteration
  // leaks the hash order.
  const std::unordered_set<int> allowed{1, 2, 3};
  if (!ids.empty() && allowed.count(ids.front()) == 0) return 0.0;
  // Sorting non-float keys needs no comparator.
  std::vector<int> order(ids);
  std::sort(order.begin(), order.end());
  // Float comparison with an explicit tolerance.
  const double eps = 1e-9;
  if (std::fabs(sum - 0.75) < eps) sum += 1.0;
  return sum;
}
