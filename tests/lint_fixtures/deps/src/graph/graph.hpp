#pragma once
// Mid-tier module of the dep-graph fixture tree: depends on util only.

#include "util/strings.hpp"

inline int graph_name_len(const char* name) { return fixture_strlen(name); }
