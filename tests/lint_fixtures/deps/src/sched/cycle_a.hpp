#pragma once
// Seeded violation: two-file include cycle (with cycle_b.hpp).

#include "sched/cycle_b.hpp"
