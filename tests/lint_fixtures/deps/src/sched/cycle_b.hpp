#pragma once
// Seeded violation: two-file include cycle (with cycle_a.hpp).

#include "sched/cycle_a.hpp"
