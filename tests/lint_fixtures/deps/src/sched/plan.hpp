#pragma once
// Top-tier module of the dep-graph fixture tree: depends strictly
// downward on graph and util — the clean multi-module case.

#include "graph/graph.hpp"
#include "util/strings.hpp"

inline int plan_cost(const char* name) { return graph_name_len(name); }
