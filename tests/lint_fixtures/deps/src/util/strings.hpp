#pragma once
// Bottom-tier module of the dep-graph fixture tree: no project includes.

inline int fixture_strlen(const char* s) {
  int n = 0;
  while (s[n] != '\0') ++n;
  return n;
}
