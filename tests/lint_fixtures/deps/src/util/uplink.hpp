#pragma once
// Seeded violation: util (tier 0) reaching up into graph (tier 1).

#include "graph/graph.hpp"

inline int uplink_len(const char* name) { return graph_name_len(name); }
