// Deliberately-bad fixture: hash-iteration-derived values flowing into
// obs sinks and sort keys. The two range-fors are unordered-iteration
// findings in their own right and carry targeted LINT-ALLOWs so that
// only digest-taint surfaces here; collecting the keys and sorting them
// (the sanctioned fix, line 29) must stay clean.

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

struct EventBuffer {
  void emit(const std::string& k, int v);
  void add(const std::string& k, int v);
};

struct Event {
  explicit Event(const char* k);
  Event& field(const std::string& k, int v);
};

void digest(EventBuffer& buf,
            const std::unordered_map<std::string, int>& weights) {
  std::vector<std::string> keys;
  for (const auto& [name, w] : weights) {  // LINT-ALLOW(unordered-iteration)
    buf.emit(name, w);
    keys.push_back(name);
  }
  std::sort(keys.begin(), keys.end());
  int last = 0;
  for (const auto& kv : weights) last = kv.second;  // LINT-ALLOW(unordered-iteration)
  buf.add("last", last);
  Event("digest").field("spill", last);
  std::vector<int> order{1, 2, 3};
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return a * last < b * last; });
}
