// locmps-lint fixture: trips float-eq (twice) and nothing else.
bool same(double a, double b) {
  return a == b;
}

bool is_zero(double x) {
  return x != 0.0;
}
