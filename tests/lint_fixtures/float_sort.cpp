// locmps-lint fixture: trips float-sort (once) and nothing else.
#include <algorithm>
#include <vector>

void sort_times(std::vector<double>& times) {
  std::sort(times.begin(), times.end());
}
