// locmps-lint fixture: trips include-hygiene (missing #pragma once, a
// parent-relative include) and nothing else.
#include "../elsewhere/secret.hpp"

int hygiene_fixture();
