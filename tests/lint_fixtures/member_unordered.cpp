// Deliberately-bad fixture: iteration over an unordered *member* field.
// The declaration lives in the class body, far from the loop; the symbol
// table must still classify `names_` as a hash container. Membership
// tests (count/find/contains) are order-independent and must stay clean.

#include <cstddef>
#include <string>
#include <unordered_set>

class NameRegistry {
 public:
  void insert(const std::string& n) { names_.insert(n); }
  bool contains(const std::string& n) const { return names_.count(n) != 0; }

  std::size_t order_digest() const {
    std::size_t h = 0;
    for (const std::string& n : names_) h ^= n.size();
    return h;
  }

 private:
  std::unordered_set<std::string> names_;
};
