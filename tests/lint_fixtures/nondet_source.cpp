// locmps-lint fixture: trips nondet-source (five times) and nothing else.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long decide_now() {
  std::srand(42);
  const int r = std::rand();
  const long stamp = std::time(nullptr);
  std::random_device entropy;
  const auto tick = std::chrono::system_clock::now();
  (void)tick;
  return stamp + r + static_cast<long>(entropy());
}
