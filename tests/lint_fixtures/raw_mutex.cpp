// locmps-lint fixture: trips raw-mutex (three times: std::mutex twice,
// std::lock_guard once) and nothing else.
#include <mutex>

int locked_get() {
  static std::mutex mu;
  const std::lock_guard<std::mutex> lk(mu);
  return 1;
}
