// locmps-lint fixture: real violations silenced by LINT-ALLOW pragmas in
// both supported positions; must produce zero findings.
#include <ctime>

bool tie_break(double a, double b) {
  // Same-line pragma.
  if (a != b) return a > b;  // LINT-ALLOW(float-eq)
  return false;
}

// Preceding-line pragma (and a multi-rule list).
// LINT-ALLOW(nondet-source, float-eq)
long stamp() { return std::time(nullptr); }
