// locmps-lint fixture: trips unordered-iteration (twice) and nothing else.
// Iterating a hash container feeds implementation-defined order into the
// consumer; see docs/static_analysis.md.
#include <numeric>
#include <unordered_map>
#include <unordered_set>

int decide() {
  std::unordered_map<int, int> weights;
  weights[3] = 7;
  int sum = 0;
  for (const auto& kv : weights) sum += kv.second;        // range-for
  std::unordered_set<int> seen{1, 2, 3};
  sum += std::accumulate(seen.begin(), seen.end(), 0);    // iterator pair
  return sum;
}
