#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace locmps {
namespace {

using test::serial;

TEST(Algorithms, TopologicalOrderRespectsEdges) {
  const TaskGraph g = test::diamond();
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (std::size_t e = 0; e < g.num_edges(); ++e)
    EXPECT_LT(pos[g.edge(static_cast<EdgeId>(e)).src],
              pos[g.edge(static_cast<EdgeId>(e)).dst]);
}

TEST(Algorithms, TopologicalOrderThrowsOnCycle) {
  TaskGraph g;
  const TaskId a = g.add_task("a", serial(1.0, 2));
  const TaskId b = g.add_task("b", serial(1.0, 2));
  g.add_edge(a, b, 0.0);
  g.add_edge(b, a, 0.0);
  EXPECT_THROW(topological_order(g), std::invalid_argument);
}

TEST(Algorithms, DescendantsIncludeSelfAndReachable) {
  const TaskGraph g = test::diamond();  // 0->1, 0->2, 1->3, 2->3
  const auto d = descendants(g, 1);
  EXPECT_TRUE(d[1]);
  EXPECT_TRUE(d[3]);
  EXPECT_FALSE(d[0]);
  EXPECT_FALSE(d[2]);
}

TEST(Algorithms, AncestorsMirrorDescendants) {
  const TaskGraph g = test::diamond();
  const auto a = ancestors(g, 2);
  EXPECT_TRUE(a[2]);
  EXPECT_TRUE(a[0]);
  EXPECT_FALSE(a[1]);
  EXPECT_FALSE(a[3]);
}

TEST(Algorithms, ConcurrentSetIsSiblings) {
  const TaskGraph g = test::diamond();
  EXPECT_EQ(concurrent_set(g, 1), (std::vector<TaskId>{2}));
  EXPECT_EQ(concurrent_set(g, 0), (std::vector<TaskId>{}));
  EXPECT_EQ(concurrent_set(g, 3), (std::vector<TaskId>{}));
}

TEST(Algorithms, ConcurrencyRatioOfChainIsZero) {
  const TaskGraph g = test::chain(5);
  const ConcurrencyAnalysis ca(g);
  for (TaskId t : g.task_ids()) EXPECT_DOUBLE_EQ(ca.ratio(t), 0.0);
}

TEST(Algorithms, ConcurrencyRatioPaperFig2) {
  // The paper's Fig 2 rationale: cr(t) = concurrent serial work / own work.
  TaskGraph g;
  const TaskId t2 = g.add_task("T2", test::profile({8, 6, 5}));
  const TaskId t1 = g.add_task("T1", test::profile({10, 7, 5}));
  const TaskId t3 = g.add_task("T3", test::profile({9, 7, 5}));
  const TaskId t4 = g.add_task("T4", test::profile({7, 5, 4}));
  g.add_edge(t2, t1, 0.0);
  g.add_edge(t2, t3, 0.0);
  g.add_edge(t2, t4, 0.0);
  const ConcurrencyAnalysis ca(g);
  EXPECT_DOUBLE_EQ(ca.ratio(t2), 0.0);            // nothing concurrent
  EXPECT_DOUBLE_EQ(ca.ratio(t1), (9.0 + 7.0) / 10.0);
  EXPECT_DOUBLE_EQ(ca.ratio(t3), (10.0 + 7.0) / 9.0);
  EXPECT_DOUBLE_EQ(ca.ratio(t4), (10.0 + 9.0) / 7.0);
}

TEST(Algorithms, LevelsOfChain) {
  const TaskGraph g = test::chain(3, 10.0);
  const Levels lv = compute_levels(
      g, [&](TaskId t) { return g.task(t).profile.serial_time(); },
      [](EdgeId) { return 0.0; });
  EXPECT_DOUBLE_EQ(lv.top[0], 0.0);
  EXPECT_DOUBLE_EQ(lv.top[1], 10.0);
  EXPECT_DOUBLE_EQ(lv.top[2], 20.0);
  EXPECT_DOUBLE_EQ(lv.bottom[0], 30.0);
  EXPECT_DOUBLE_EQ(lv.bottom[2], 10.0);
  EXPECT_DOUBLE_EQ(lv.critical_path_length(), 30.0);
}

TEST(Algorithms, LevelsIncludeEdgeWeights) {
  const TaskGraph g = test::chain(2, 10.0);
  const Levels lv = compute_levels(
      g, [](TaskId) { return 10.0; }, [](EdgeId) { return 5.0; });
  EXPECT_DOUBLE_EQ(lv.top[1], 15.0);
  EXPECT_DOUBLE_EQ(lv.bottom[0], 25.0);
  EXPECT_DOUBLE_EQ(lv.critical_path_length(), 25.0);
}

TEST(Algorithms, LevelsOfDiamondTakeLongestBranch) {
  TaskGraph g;  // a -> b(3), a -> c(7), b -> d, c -> d
  const TaskId a = g.add_task("a", serial(1.0, 2));
  const TaskId b = g.add_task("b", serial(3.0, 2));
  const TaskId c = g.add_task("c", serial(7.0, 2));
  const TaskId d = g.add_task("d", serial(1.0, 2));
  g.add_edge(a, b, 0.0);
  g.add_edge(a, c, 0.0);
  g.add_edge(b, d, 0.0);
  g.add_edge(c, d, 0.0);
  const Levels lv = compute_levels(
      g, [&](TaskId t) { return g.task(t).profile.serial_time(); },
      [](EdgeId) { return 0.0; });
  EXPECT_DOUBLE_EQ(lv.top[d], 8.0);  // through c
  EXPECT_DOUBLE_EQ(lv.critical_path_length(), 9.0);
}

TEST(Algorithms, TopLevelOfEverySourceIsZero) {
  const TaskGraph g = test::diamond();
  const Levels lv = compute_levels(
      g, [](TaskId) { return 1.0; }, [](EdgeId) { return 0.0; });
  for (TaskId s : g.sources()) EXPECT_DOUBLE_EQ(lv.top[s], 0.0);
}

}  // namespace
}  // namespace locmps
