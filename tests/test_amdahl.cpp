#include "speedup/amdahl.hpp"

#include <gtest/gtest.h>

#include "speedup/profile.hpp"

namespace locmps {
namespace {

TEST(Amdahl, OneProcessorIsUnity) {
  EXPECT_DOUBLE_EQ(AmdahlModel(0.1).speedup(1), 1.0);
}

TEST(Amdahl, ClassicFormulaWithoutOverhead) {
  const AmdahlModel m(0.25);
  EXPECT_NEAR(m.speedup(4), 1.0 / (0.25 + 0.75 / 4), 1e-12);
  // Asymptote 1/f.
  EXPECT_NEAR(m.speedup(1000000), 4.0, 1e-3);
}

TEST(Amdahl, PerfectWhenFullyParallel) {
  const AmdahlModel m(0.0);
  EXPECT_NEAR(m.speedup(16), 16.0, 1e-12);
}

TEST(Amdahl, OverheadCreatesFinitePbest) {
  // With per-processor overhead the profile worsens past a sweet spot.
  const AmdahlModel m(0.01, 0.01);
  const ExecutionProfile p(m, 100.0, 64);
  EXPECT_GT(p.pbest(), 1u);
  EXPECT_LT(p.pbest(), 64u);
  // Times increase after pbest.
  EXPECT_GT(p.time(64), p.time(p.pbest()));
}

TEST(Amdahl, RejectsInvalidParameters) {
  EXPECT_THROW(AmdahlModel(-0.1), std::invalid_argument);
  EXPECT_THROW(AmdahlModel(1.1), std::invalid_argument);
  EXPECT_THROW(AmdahlModel(0.5, -1.0), std::invalid_argument);
}

TEST(Amdahl, Accessors) {
  const AmdahlModel m(0.3, 0.02);
  EXPECT_DOUBLE_EQ(m.serial_fraction(), 0.3);
  EXPECT_DOUBLE_EQ(m.overhead(), 0.02);
}

}  // namespace
}  // namespace locmps
