/// Tests for the schedule post-mortem analyzer (obs/analysis.hpp):
/// occupancy invariants, locality reconciliation against the comm model
/// and the PR-1 counters/trace, blame attribution on hand-checked
/// placements, critical-path telescoping, and decision-trace ingestion.

#include "obs/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "network/block_cyclic.hpp"
#include "obs/events.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

using obs::BlameKind;
using obs::EdgeClass;

Cluster small_cluster(std::size_t P = 4) {
  return Cluster(P, 1e6);  // 1 MB/s: transfer seconds == volume in MB
}

/// a(10s) on p0 [0,10) -> b(10s) on p1, volume 5 MB => 5 s transfer.
struct ChainFixture {
  TaskGraph g;
  Schedule s;
  Cluster cluster = small_cluster();
  CommModel comm{cluster};

  ChainFixture() : g(test::chain(2, 10.0, 4, 5e6)), s(2, 4) {
    s.place(0, 0.0, 0.0, 10.0, ProcessorSet::of(4, {0}));
    s.place(1, 15.0, 15.0, 25.0, ProcessorSet::of(4, {1}));
  }
};

TEST(Analysis, ThrowsOnIncompleteSchedule) {
  const TaskGraph g = test::chain(2);
  Schedule s(2, 2);
  s.place(0, 0.0, 0.0, 10.0, ProcessorSet::of(2, {0}));
  const Cluster c = small_cluster(2);
  EXPECT_THROW(obs::analyze_schedule(g, s, CommModel(c)),
               std::invalid_argument);
}

TEST(Analysis, BusyPlusIdleEqualsHorizonPerProcessor) {
  const ChainFixture f;
  const auto a = obs::analyze_schedule(f.g, f.s, f.comm);
  EXPECT_DOUBLE_EQ(a.makespan, 25.0);
  ASSERT_EQ(a.procs.size(), 4u);
  for (const auto& u : a.procs) {
    EXPECT_NEAR(u.busy_s + u.idle_s, a.makespan, 1e-9)
        << "proc " << u.proc;
    EXPECT_GE(u.utilization, 0.0);
    EXPECT_LE(u.utilization, 1.0);
  }
  EXPECT_DOUBLE_EQ(a.procs[0].busy_s, 10.0);
  EXPECT_EQ(a.procs[0].tasks, 1u);
  EXPECT_EQ(a.procs[0].holes, 1u);   // [10, 25)
  EXPECT_EQ(a.procs[2].holes, 1u);   // fully idle: [0, 25)
  EXPECT_DOUBLE_EQ(a.procs[2].idle_s, 25.0);
}

TEST(Analysis, HoleHistogramAccountsEveryHole) {
  const ChainFixture f;
  const auto a = obs::analyze_schedule(f.g, f.s, f.comm);
  std::size_t total = 0;
  for (std::size_t c : a.holes.counts) total += c;
  EXPECT_EQ(total, a.holes.total_holes);
  double idle = 0.0;
  for (const auto& u : a.procs) idle += u.idle_s;
  EXPECT_NEAR(a.holes.total_idle_s, idle, 1e-9);
  EXPECT_DOUBLE_EQ(a.holes.longest_s, 25.0);
  EXPECT_EQ(a.holes.bin_edges.size(), a.holes.counts.size() + 1);
}

TEST(Analysis, EdgeLocalityMatchesBlockCyclicModel) {
  TaskGraph g;
  const TaskId a = g.add_task("a", test::serial(10.0, 4));
  const TaskId b = g.add_task("b", test::serial(10.0, 4));
  const TaskId c = g.add_task("c", test::serial(10.0, 4));
  const TaskId d = g.add_task("d", test::serial(10.0, 4));
  g.add_edge(a, b, 8e6);  // {0} -> {0}: fully local
  g.add_edge(a, c, 8e6);  // {0} -> {1}: fully remote
  g.add_edge(b, d, 8e6);  // {0} -> {0,1}: partial
  Schedule s(4, 4);
  s.place(a, 0.0, 0.0, 10.0, ProcessorSet::of(4, {0}));
  s.place(b, 10.0, 10.0, 20.0, ProcessorSet::of(4, {0}));
  s.place(c, 18.0, 18.0, 28.0, ProcessorSet::of(4, {1}));
  s.place(d, 28.0, 28.0, 38.0, ProcessorSet::of(4, {0, 1}));
  const Cluster cl = small_cluster();
  const auto an = obs::analyze_schedule(g, s, CommModel(cl));

  EXPECT_EQ(an.edges[0].cls, EdgeClass::Local);
  EXPECT_DOUBLE_EQ(an.edges[0].remote_bytes, 0.0);
  EXPECT_DOUBLE_EQ(an.edges[0].transfer_s, 0.0);

  EXPECT_EQ(an.edges[1].cls, EdgeClass::Remote);
  EXPECT_DOUBLE_EQ(an.edges[1].remote_bytes, 8e6);

  EXPECT_EQ(an.edges[2].cls, EdgeClass::Partial);
  EXPECT_DOUBLE_EQ(
      an.edges[2].remote_bytes,
      remote_volume(8e6, ProcessorSet::of(4, {0}), ProcessorSet::of(4, {0, 1})));
  EXPECT_GT(an.edges[2].remote_bytes, 0.0);
  EXPECT_LT(an.edges[2].remote_bytes, 8e6);

  // Aggregates reconcile with the per-edge comm-model values.
  const auto& lt = an.locality;
  EXPECT_NEAR(lt.total_bytes, 24e6, 1e-3);
  EXPECT_NEAR(lt.local_bytes + lt.remote_bytes, lt.total_bytes, 1e-3);
  EXPECT_EQ(lt.local_edges, 1u);
  EXPECT_EQ(lt.remote_edges, 1u);
  EXPECT_EQ(lt.partial_edges, 1u);
  double transfer = 0.0;
  for (const auto& el : an.edges) {
    transfer += el.transfer_s;
    EXPECT_NEAR(el.transfer_s,
                CommModel(cl).transfer_duration(el.remote_bytes,
                                                s.at(el.src).np(),
                                                s.at(el.dst).np()),
                1e-12);
  }
  EXPECT_NEAR(lt.transfer_seconds, transfer, 1e-12);
}

TEST(Analysis, FullVolumeModeChargesWholeEdgeBetweenDifferingSets) {
  const ChainFixture f;
  obs::AnalysisOptions opt;
  opt.locality_volumes = false;
  const auto a = obs::analyze_schedule(f.g, f.s, f.comm, opt);
  EXPECT_DOUBLE_EQ(a.edges[0].remote_bytes, 5e6);  // {0} != {1}: all of it
}

TEST(Analysis, BlameDataBoundTask) {
  const ChainFixture f;
  const auto a = obs::analyze_schedule(f.g, f.s, f.comm);
  EXPECT_EQ(a.blame[0].kind, BlameKind::Source);
  const auto& b = a.blame[1];
  EXPECT_EQ(b.kind, BlameKind::Data);
  EXPECT_EQ(b.culprit, TaskId{0});
  EXPECT_EQ(b.edge, EdgeId{0});
  EXPECT_DOUBLE_EQ(b.data_ready, 15.0);  // ft(a)=10 + 5 s transfer
  EXPECT_DOUBLE_EQ(b.proc_ready, 0.0);
  EXPECT_DOUBLE_EQ(b.delay_s, 15.0);
  EXPECT_DOUBLE_EQ(b.slack_s, 0.0);
}

TEST(Analysis, BlameProcessorBoundTask) {
  TaskGraph g;
  const TaskId u = g.add_task("u", test::serial(10.0, 2));
  const TaskId v = g.add_task("v", test::serial(8.0, 2));
  Schedule s(2, 2);
  s.place(u, 0.0, 0.0, 10.0, ProcessorSet::of(2, {0}));
  s.place(v, 10.0, 10.0, 18.0, ProcessorSet::of(2, {0}));
  const Cluster cl = small_cluster(2);
  const auto a = obs::analyze_schedule(g, s, CommModel(cl));
  const auto& b = a.blame[v];
  EXPECT_EQ(b.kind, BlameKind::Processor);
  EXPECT_EQ(b.culprit, u);
  EXPECT_DOUBLE_EQ(b.proc_ready, 10.0);
  EXPECT_DOUBLE_EQ(b.delay_s, 10.0);
}

TEST(Analysis, BlameReleaseAndTie) {
  TaskGraph g;
  const TaskId u = g.add_task("u", test::serial(10.0, 2));
  const TaskId w = g.add_task("w", test::serial(5.0, 2));
  const TaskId r = g.add_task("r", test::serial(5.0, 2));
  g.add_edge(u, w, 0.0);  // free dependency: data_ready == ft(u)
  Schedule s(3, 2);
  s.place(u, 0.0, 0.0, 10.0, ProcessorSet::of(2, {0}));
  s.place(w, 10.0, 10.0, 15.0, ProcessorSet::of(2, {0}));  // data == proc
  s.place(r, 5.0, 5.0, 10.0, ProcessorSet::of(2, {1}));    // no constraint
  const Cluster cl = small_cluster(2);
  const auto a = obs::analyze_schedule(g, s, CommModel(cl));
  EXPECT_EQ(a.blame[w].kind, BlameKind::Tie);
  EXPECT_EQ(a.blame[w].culprit, u);
  EXPECT_EQ(a.blame[r].kind, BlameKind::Release);
  EXPECT_DOUBLE_EQ(a.blame[r].slack_s, 5.0);
}

TEST(Analysis, TopBlameSortedAndBounded) {
  const ChainFixture f;
  const auto a = obs::analyze_schedule(f.g, f.s, f.comm);
  const auto top = a.top_blame(10);
  ASSERT_EQ(top.size(), 1u);  // only task b has positive delay
  EXPECT_EQ(top[0].task, TaskId{1});
  EXPECT_TRUE(a.top_blame(0).empty());
}

TEST(Analysis, CriticalPathTelescopesToMakespanOnChain) {
  const ChainFixture f;
  const auto a = obs::analyze_schedule(f.g, f.s, f.comm);
  const auto& cp = a.critical_path;
  ASSERT_EQ(cp.steps.size(), 2u);
  EXPECT_EQ(cp.steps[0].task, TaskId{0});  // source -> makespan task order
  EXPECT_EQ(cp.steps[1].task, TaskId{1});
  EXPECT_DOUBLE_EQ(cp.compute_s, 20.0);
  EXPECT_DOUBLE_EQ(cp.redist_s, 5.0);
  EXPECT_DOUBLE_EQ(cp.wait_s, 0.0);
  EXPECT_NEAR(cp.compute_s + cp.redist_s + cp.wait_s, cp.makespan, 1e-9);
}

TEST(Analysis, InvariantsHoldOnRealLocMPSRun) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 8;
  Rng rng(42);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster cluster(8, p.bandwidth_Bps);
  const SchemeRun run = evaluate_scheme("loc-mps", g, cluster);
  const auto& a = run.analysis;

  ASSERT_EQ(a.num_tasks, g.num_tasks());
  for (const auto& u : a.procs)
    EXPECT_NEAR(u.busy_s + u.idle_s, a.makespan, 1e-6 * a.makespan);
  // Locality aggregates reconcile with the simulator's counters.
  EXPECT_NEAR(a.locality.remote_bytes, run.counters.counter("sim.remote_bytes"),
              1e-9 * std::max(1.0, a.locality.remote_bytes));
  EXPECT_DOUBLE_EQ(static_cast<double>(a.locality.local_edges),
                   run.counters.counter("sim.local_edges"));
  EXPECT_DOUBLE_EQ(
      static_cast<double>(a.locality.partial_edges + a.locality.remote_edges),
      run.counters.counter("sim.transfers"));
  // Critical path telescopes.
  const auto& cp = a.critical_path;
  EXPECT_NEAR(cp.compute_s + cp.redist_s + cp.wait_s, cp.makespan,
              1e-6 * std::max(1.0, cp.makespan));
  // Backfill stats joined from the locbs.* counters.
  EXPECT_TRUE(a.backfill.present);
  EXPECT_GE(a.backfill.hit_rate, 0.0);
  EXPECT_LE(a.backfill.hit_rate, 1.0);
  // Every blame entry is self-consistent.
  for (const auto& b : a.blame) {
    EXPECT_GE(b.slack_s, 0.0);
    EXPECT_GE(b.start + 1e-9,
              std::max(b.data_ready, b.proc_ready) - 1e-6 * a.makespan);
    if (b.kind == BlameKind::Data) EXPECT_NE(b.edge, kNoEdge);
  }
}

// ---------------------------------------------------------------------------
// Decision-trace ingestion.

TEST(Trace, ParsesFlatRecordsAndAccessors) {
  std::istringstream in(
      "{\"ev\":\"locbs.place\",\"t\":0.25,\"task\":3,\"np\":2,"
      "\"backfill\":true,\"local_bytes\":10.5,\"remote_bytes\":2.5}\n"
      "\n"
      "{\"ev\":\"sim.transfer\",\"bytes\":100,\"edge\":\"e0\"}\n");
  const auto recs = obs::read_trace(in);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].ev, "locbs.place");
  EXPECT_DOUBLE_EQ(recs[0].num("task"), 3.0);
  EXPECT_TRUE(recs[0].flag("backfill"));
  EXPECT_DOUBLE_EQ(recs[0].num("missing", -1.0), -1.0);
  ASSERT_NE(recs[1].str("edge"), nullptr);
  EXPECT_EQ(*recs[1].str("edge"), "e0");
}

TEST(Trace, ThrowsOnMalformedLine) {
  std::istringstream in("{\"ev\":\"x\"\n");
  EXPECT_THROW(obs::read_trace(in), std::runtime_error);
  std::istringstream in2("not json\n");
  EXPECT_THROW(obs::read_trace(in2), std::runtime_error);
}

TEST(Trace, SummaryUsesLastPlacePerTask) {
  std::istringstream in(
      "{\"ev\":\"locbs.place\",\"task\":0,\"backfill\":true,"
      "\"local_bytes\":1,\"remote_bytes\":9}\n"
      "{\"ev\":\"locbs.place\",\"task\":0,\"backfill\":false,"
      "\"local_bytes\":7,\"remote_bytes\":3}\n"
      "{\"ev\":\"sim.transfer\",\"bytes\":3}\n");
  const auto ts = obs::summarize_trace(obs::read_trace(in), 1);
  EXPECT_EQ(ts.place_events, 2u);
  EXPECT_EQ(ts.transfer_events, 1u);
  EXPECT_DOUBLE_EQ(ts.transfer_bytes, 3.0);
  EXPECT_DOUBLE_EQ(ts.final_local_bytes, 7.0);   // last event wins
  EXPECT_DOUBLE_EQ(ts.final_remote_bytes, 3.0);
  EXPECT_EQ(ts.backfilled[0], 0);
}

TEST(Trace, JoinUpgradesProcessorBlameToBackfill) {
  TaskGraph g;
  const TaskId u = g.add_task("u", test::serial(10.0, 2));
  const TaskId v = g.add_task("v", test::serial(8.0, 2));
  Schedule s(2, 2);
  s.place(u, 0.0, 0.0, 10.0, ProcessorSet::of(2, {0}));
  s.place(v, 10.0, 10.0, 18.0, ProcessorSet::of(2, {0}));
  const Cluster cl = small_cluster(2);
  auto a = obs::analyze_schedule(g, s, CommModel(cl));
  ASSERT_EQ(a.blame[v].kind, BlameKind::Processor);

  obs::TraceSummary ts;
  ts.backfilled = {1, 0};  // the blocker u was backfilled
  obs::join_trace(a, ts);
  EXPECT_EQ(a.blame[v].kind, BlameKind::Backfill);
  EXPECT_EQ(a.blame[u].kind, BlameKind::Source);  // untouched
}

}  // namespace
}  // namespace locmps
