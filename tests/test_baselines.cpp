#include <gtest/gtest.h>

#include "schedule/event_sim.hpp"
#include "schedulers/cpa.hpp"
#include "schedulers/cpr.hpp"
#include "schedulers/data_parallel.hpp"
#include "schedulers/icaslb.hpp"
#include "schedulers/list_scheduler.hpp"
#include "schedulers/registry.hpp"
#include "schedulers/task_parallel.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

using test::serial;

TaskGraph small_graph(std::uint64_t seed, double ccr, std::size_t maxp) {
  SyntheticParams p;
  p.ccr = ccr;
  p.max_procs = maxp;
  p.min_tasks = 10;
  p.max_tasks = 20;
  Rng rng(seed);
  return make_synthetic_dag(p, rng);
}

// ---------------------------------------------------------------- TASK --
TEST(TaskParallel, AllocatesOneProcessorEach) {
  const TaskGraph g = small_graph(1, 0.1, 8);
  const Cluster c(8);
  const SchedulerResult r = TaskParallelScheduler().schedule(g, c);
  for (TaskId t : g.task_ids()) EXPECT_EQ(r.allocation[t], 1u);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
}

TEST(TaskParallel, ParallelizesIndependentWork) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task("t", serial(10.0, 4));
  const Cluster c(4);
  const SchedulerResult r = TaskParallelScheduler().schedule(g, c);
  EXPECT_DOUBLE_EQ(r.estimated_makespan, 10.0);
}

// ---------------------------------------------------------------- DATA --
TEST(DataParallel, RunsEveryTaskOnAllProcessorsInSequence) {
  const TaskGraph g = test::diamond(10.0, 8, 1e9);
  const Cluster c(8);
  const SchedulerResult r = DataParallelScheduler().schedule(g, c);
  for (TaskId t : g.task_ids()) {
    EXPECT_EQ(r.allocation[t], 8u);
    EXPECT_EQ(r.schedule.at(t).np(), 8u);
  }
  // Serial tasks gain nothing: makespan = 4 * 10, and crucially no
  // redistribution cost despite the huge edge volumes.
  EXPECT_DOUBLE_EQ(r.estimated_makespan, 40.0);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
  const SimResult sim = simulate_execution(g, r.schedule, CommModel(c));
  EXPECT_DOUBLE_EQ(sim.total_transfer_bytes, 0.0);
}

TEST(DataParallel, BenefitsFromScalableTasks) {
  test::LinearSpeedup lin;
  TaskGraph g;
  g.add_task("a", ExecutionProfile(lin, 40.0, 8));
  g.add_task("b", ExecutionProfile(lin, 40.0, 8));
  const Cluster c(8);
  const SchedulerResult r = DataParallelScheduler().schedule(g, c);
  EXPECT_DOUBLE_EQ(r.estimated_makespan, 10.0);
}

// ------------------------------------------------------- list scheduler --
TEST(ListScheduler, SchedulesChainSequentially) {
  const TaskGraph g = test::chain(3, 5.0, 4, 0.0);
  const CommModel m{Cluster(4)};
  const ListScheduleResult r = list_schedule(g, {1, 1, 1}, m);
  EXPECT_DOUBLE_EQ(r.makespan, 15.0);
  EXPECT_EQ(r.schedule.validate(g, m), "");
}

TEST(ListScheduler, ChargesPlacementIndependentCommCost) {
  // 1000 B at 100 B/s between 1-proc groups = 10 s, even if the child
  // happens to land on the parent's processor.
  const TaskGraph g = test::chain(2, 5.0, 2, 1000.0);
  const CommModel m{Cluster(2, 100.0)};
  const ListScheduleResult r = list_schedule(g, {1, 1}, m);
  EXPECT_DOUBLE_EQ(r.makespan, 20.0);
}

TEST(ListScheduler, RejectsBadAllocation) {
  const TaskGraph g = test::chain(2);
  const CommModel m{Cluster(2)};
  EXPECT_THROW(list_schedule(g, {1}, m), std::invalid_argument);
}

// ----------------------------------------------------------------- CPR --
TEST(CPR, ImprovesOnTaskParallelForScalableChain) {
  test::LinearSpeedup lin;
  TaskGraph g;
  const TaskId a = g.add_task("a", ExecutionProfile(lin, 40.0, 4));
  const TaskId b = g.add_task("b", ExecutionProfile(lin, 40.0, 4));
  g.add_edge(a, b, 0.0);
  const Cluster c(4);
  const SchedulerResult r = CPRScheduler().schedule(g, c);
  // One-processor schedule is 80; CPR must widen the chain to 4+4 -> 20.
  EXPECT_DOUBLE_EQ(r.estimated_makespan, 20.0);
  EXPECT_EQ(r.allocation, (Allocation{4, 4}));
}

TEST(CPR, ProducesValidSchedules) {
  const TaskGraph g = small_graph(2, 1.0, 8);
  const Cluster c(8);
  const SchedulerResult r = CPRScheduler().schedule(g, c);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
  for (TaskId t : g.task_ids()) {
    EXPECT_GE(r.allocation[t], 1u);
    EXPECT_LE(r.allocation[t], 8u);
  }
}

TEST(CPR, StopsAtLocalMinimum) {
  // Paper Fig 3 workload: CPR has no look-ahead, so it stalls above the
  // data-parallel optimum of 30.
  test::LinearSpeedup lin;
  TaskGraph g;
  g.add_task("T1", ExecutionProfile(lin, 40.0, 4));
  g.add_task("T2", ExecutionProfile(lin, 80.0, 4));
  const Cluster c(4);
  const SchedulerResult r = CPRScheduler().schedule(g, c);
  EXPECT_GE(r.estimated_makespan, 40.0);
}

// ----------------------------------------------------------------- CPA --
TEST(CPA, BalancesCriticalPathAgainstArea) {
  test::LinearSpeedup lin;
  TaskGraph g;
  const TaskId a = g.add_task("a", ExecutionProfile(lin, 40.0, 4));
  const TaskId b = g.add_task("b", ExecutionProfile(lin, 40.0, 4));
  g.add_edge(a, b, 0.0);
  const Cluster c(4);
  const SchedulerResult r = CPAScheduler().schedule(g, c);
  // The chain is the whole graph: phase 1 widens until L <= TA.
  EXPECT_LT(r.estimated_makespan, 80.0);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
}

TEST(CPA, ProducesValidSchedules) {
  const TaskGraph g = small_graph(3, 1.0, 8);
  const Cluster c(8);
  const SchedulerResult r = CPAScheduler().schedule(g, c);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
}

TEST(CPA, CheapSchemeDoesFewIterations) {
  const TaskGraph g = small_graph(4, 0.1, 8);
  const Cluster c(8);
  const SchedulerResult r = CPAScheduler().schedule(g, c);
  // Phase 1 adds at most one processor per iteration.
  EXPECT_LE(r.iterations, g.num_tasks() * 8 + 16);
}

// -------------------------------------------------------------- iCASLB --
TEST(ICASLB, MatchesLocMPSWhenCommIsFree) {
  const TaskGraph g = small_graph(5, 0.0, 8);
  const Cluster c(8);
  const double blind = ICASLBScheduler().schedule(g, c).estimated_makespan;
  const double aware =
      make_scheduler("loc-mps")->schedule(g, c).estimated_makespan;
  // With zero communication the two schemes solve the same problem.
  EXPECT_NEAR(blind, aware, 0.15 * aware);
}

TEST(ICASLB, PaysForIgnoredCommunication) {
  // A chain with two children and large transfers: the comm-blind plan is
  // re-timed with the real transfers, so its makespan must include them.
  TaskGraph g;
  test::LinearSpeedup lin;
  const TaskId a = g.add_task("a", ExecutionProfile(lin, 2.0, 4));
  const TaskId b = g.add_task("b", ExecutionProfile(lin, 2.0, 4));
  g.add_edge(a, b, 100.0 * kFastEthernetBytesPerSec);
  const Cluster c(4);
  const SchedulerResult r = ICASLBScheduler().schedule(g, c);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
}

TEST(ICASLB, ReturnsExecutableSchedule) {
  const TaskGraph g = small_graph(6, 1.0, 8);
  const Cluster c(8);
  const SchedulerResult r = ICASLBScheduler().schedule(g, c);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
  // Re-timing under iCASLB's own (non-locality) transfer model is stable.
  SimOptions sim;
  sim.locality_volumes = false;
  const SimResult run = simulate_execution(g, r.schedule, CommModel(c), sim);
  EXPECT_NEAR(run.makespan, r.estimated_makespan, 1e-9);
}

// ------------------------------------------------------------ registry --
TEST(Registry, CreatesAllKnownSchemes) {
  for (const auto& name :
       {"loc-mps", "loc-mps-nbf", "loc-mps-noloc", "icaslb", "cpr", "cpa",
        "task", "data"}) {
    const SchedulerPtr s = make_scheduler(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_FALSE(s->name().empty());
  }
}

TEST(Registry, ThrowsOnUnknownScheme) {
  EXPECT_THROW(make_scheduler("hls"), std::invalid_argument);
  EXPECT_THROW(make_scheduler(""), std::invalid_argument);
}

TEST(Registry, PaperSchemesLineUp) {
  const auto schemes = paper_schemes();
  ASSERT_EQ(schemes.size(), 6u);
  EXPECT_EQ(schemes[0], "loc-mps");  // the reference scheme comes first
  EXPECT_EQ(schemes.back(), "data");
}

}  // namespace
}  // namespace locmps
