#include "network/block_cyclic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace locmps {
namespace {

TEST(BlockCyclic, IdenticalLayoutsMoveNothing) {
  const std::vector<ProcId> p{0, 3, 5};
  EXPECT_DOUBLE_EQ(remote_fraction(p, p), 0.0);
}

TEST(BlockCyclic, DisjointSetsMoveEverything) {
  EXPECT_DOUBLE_EQ(remote_fraction({0, 1}, {2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(remote_fraction({0}, {1}), 1.0);
}

TEST(BlockCyclic, SingleSharedProcessor) {
  // src {0}, dst {0,1}: blocks alternate 0,1 on dst, all on 0 at src;
  // g = 1, L = 2; position pair (0,0) compatible -> half stays local.
  EXPECT_DOUBLE_EQ(remote_fraction({0}, {0, 1}), 0.5);
}

TEST(BlockCyclic, GrowingWithinSupersetKeepsShare) {
  // src {0,1}, dst {0,1,2,3}: g=2, L=4; both procs compatible -> 1/2 local.
  EXPECT_DOUBLE_EQ(remote_fraction({0, 1}, {0, 1, 2, 3}), 0.5);
}

TEST(BlockCyclic, SameSetDifferentAlignment) {
  // Same physical procs but different positions: {0,1} -> {1,0} is not
  // representable with ascending lists; use {0,1,2} vs {0,2,1}-equivalent
  // via the sorted contract instead: {0,1,2} to {1,2} keeps the blocks on
  // procs 1 and 2 only where positions are compatible mod gcd(3,2)=1.
  // L = 6; shared procs 1 (pos 1 vs 0) and 2 (pos 2 vs 1): all positions
  // compatible mod 1 -> local = 2, fraction = 1 - 2/6.
  EXPECT_NEAR(remote_fraction({0, 1, 2}, {1, 2}), 1.0 - 2.0 / 6.0, 1e-12);
}

TEST(BlockCyclic, ThrowsOnEmptyList) {
  EXPECT_THROW(remote_fraction({}, {0}), std::invalid_argument);
  EXPECT_THROW(remote_fraction({0}, {}), std::invalid_argument);
}

TEST(BlockCyclic, RemoteVolumeScalesFraction) {
  const auto src = ProcessorSet::of(8, {0, 1});
  const auto dst = ProcessorSet::of(8, {2, 3});
  EXPECT_DOUBLE_EQ(remote_volume(1000.0, src, dst), 1000.0);
  EXPECT_DOUBLE_EQ(remote_volume(1000.0, src, src), 0.0);
  EXPECT_DOUBLE_EQ(remote_volume(0.0, src, dst), 0.0);
  EXPECT_DOUBLE_EQ(remote_volume(-5.0, src, dst), 0.0);
}

/// Brute force over one lcm period of the block-index mapping.
double brute_fraction(const std::vector<ProcId>& s,
                      const std::vector<ProcId>& d) {
  const std::size_t L = std::lcm(s.size(), d.size());
  std::size_t local = 0;
  for (std::size_t i = 0; i < L; ++i)
    if (s[i % s.size()] == d[i % d.size()]) ++local;
  return 1.0 - static_cast<double>(local) / static_cast<double>(L);
}

class BlockCyclicProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockCyclicProperty, MatchesBruteForceMapping) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t P = 1 + rng.uniform_int(0, 63);
    std::vector<ProcId> all(P);
    std::iota(all.begin(), all.end(), 0);
    std::shuffle(all.begin(), all.end(), rng);
    const std::size_t s = 1 + rng.uniform_int(0, static_cast<int>(P) - 1);
    std::vector<ProcId> src(all.begin(), all.begin() + s);
    std::shuffle(all.begin(), all.end(), rng);
    const std::size_t d = 1 + rng.uniform_int(0, static_cast<int>(P) - 1);
    std::vector<ProcId> dst(all.begin(), all.begin() + d);
    std::sort(src.begin(), src.end());
    std::sort(dst.begin(), dst.end());
    const double fast = remote_fraction(src, dst);
    const double slow = brute_fraction(src, dst);
    ASSERT_NEAR(fast, slow, 1e-12)
        << "s=" << s << " d=" << d << " P=" << P;
    ASSERT_GE(fast, 0.0);
    ASSERT_LE(fast, 1.0);
  }
}

TEST_P(BlockCyclicProperty, SymmetricInSourceAndDestination) {
  // Moving data A->B strands the same share as B->A (the mapping argument
  // is symmetric in the two layouts).
  Rng rng(GetParam() ^ 0xabcdef);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t P = 2 + rng.uniform_int(0, 30);
    std::vector<ProcId> all(P);
    std::iota(all.begin(), all.end(), 0);
    std::shuffle(all.begin(), all.end(), rng);
    const std::size_t s = 1 + rng.uniform_int(0, static_cast<int>(P) - 1);
    std::vector<ProcId> src(all.begin(), all.begin() + s);
    std::shuffle(all.begin(), all.end(), rng);
    const std::size_t d = 1 + rng.uniform_int(0, static_cast<int>(P) - 1);
    std::vector<ProcId> dst(all.begin(), all.begin() + d);
    std::sort(src.begin(), src.end());
    std::sort(dst.begin(), dst.end());
    ASSERT_DOUBLE_EQ(remote_fraction(src, dst), remote_fraction(dst, src));
  }
}

TEST_P(BlockCyclicProperty, IdenticalRandomLayoutsMoveNothing) {
  // src == dst ⇒ every block already sits on its owner, whatever the
  // set's size, membership, or ordering position.
  Rng rng(GetParam() ^ 0x5151);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t P = 1 + rng.uniform_int(0, 63);
    std::vector<ProcId> all(P);
    std::iota(all.begin(), all.end(), 0);
    std::shuffle(all.begin(), all.end(), rng);
    const std::size_t s = 1 + rng.uniform_int(0, static_cast<int>(P) - 1);
    std::vector<ProcId> procs(all.begin(), all.begin() + s);
    std::sort(procs.begin(), procs.end());
    ASSERT_DOUBLE_EQ(remote_fraction(procs, procs), 0.0) << "s=" << s;
  }
}

TEST_P(BlockCyclicProperty, RespectsLocalShareUpperBound) {
  // At most min(s, d) of the lcm(s, d) position pairs can be local (each
  // shared processor aligns at most gcd-many positions, and there are at
  // most min(s, d) shared processors). LoCBS's redistribution pruning
  // uses exactly this bound, so it must never be violated.
  Rng rng(GetParam() ^ 0x77aa);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t P = 2 + rng.uniform_int(0, 40);
    std::vector<ProcId> all(P);
    std::iota(all.begin(), all.end(), 0);
    std::shuffle(all.begin(), all.end(), rng);
    const std::size_t s = 1 + rng.uniform_int(0, static_cast<int>(P) - 1);
    std::vector<ProcId> src(all.begin(), all.begin() + s);
    std::shuffle(all.begin(), all.end(), rng);
    const std::size_t d = 1 + rng.uniform_int(0, static_cast<int>(P) - 1);
    std::vector<ProcId> dst(all.begin(), all.begin() + d);
    std::sort(src.begin(), src.end());
    std::sort(dst.begin(), dst.end());
    const double L = static_cast<double>(std::lcm(s, d));
    const double max_local = static_cast<double>(std::min(s, d)) / L;
    ASSERT_GE(remote_fraction(src, dst), 1.0 - max_local - 1e-12)
        << "s=" << s << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockCyclicProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace locmps
