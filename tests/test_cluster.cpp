#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace locmps {
namespace {

TEST(Cluster, DefaultsMatchPaperModel) {
  const Cluster c;
  EXPECT_EQ(c.processors, 1u);
  EXPECT_DOUBLE_EQ(c.bandwidth_Bps, kFastEthernetBytesPerSec);
  EXPECT_TRUE(c.overlap_comm_compute);
}

TEST(Cluster, FastEthernetIs12point5MBps) {
  EXPECT_DOUBLE_EQ(kFastEthernetBytesPerSec, 12.5e6);
}

TEST(Cluster, ConstructorValidatesArguments) {
  EXPECT_THROW(Cluster(0), std::invalid_argument);
  EXPECT_THROW(Cluster(4, 0.0), std::invalid_argument);
  EXPECT_THROW(Cluster(4, -1.0), std::invalid_argument);
  EXPECT_NO_THROW(Cluster(4, 1.0, false));
}

TEST(Cluster, AllReturnsFullSet) {
  const Cluster c(5);
  EXPECT_EQ(c.all().count(), 5u);
}

}  // namespace
}  // namespace locmps
