#include "network/comm_model.hpp"

#include <gtest/gtest.h>

namespace locmps {
namespace {

TEST(CommModel, AggregateBandwidthIsMinTimesLink) {
  const Cluster c(16, 100.0);
  const CommModel m(c);
  EXPECT_DOUBLE_EQ(m.aggregate_bandwidth(4, 2), 200.0);
  EXPECT_DOUBLE_EQ(m.aggregate_bandwidth(2, 4), 200.0);
  EXPECT_DOUBLE_EQ(m.aggregate_bandwidth(3, 3), 300.0);
}

TEST(CommModel, EdgeCostIsVolumeOverAggregate) {
  const Cluster c(16, 100.0);
  const CommModel m(c);
  // Paper formula: wt = d / (min(np_i, np_j) * bandwidth).
  EXPECT_DOUBLE_EQ(m.edge_cost(1000.0, 1, 1), 10.0);
  EXPECT_DOUBLE_EQ(m.edge_cost(1000.0, 5, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.edge_cost(0.0, 1, 1), 0.0);
}

TEST(CommModel, WideningBothEndpointsReducesCost) {
  const Cluster c(16, 100.0);
  const CommModel m(c);
  const double narrow = m.edge_cost(1000.0, 1, 1);
  const double wide = m.edge_cost(1000.0, 4, 4);
  EXPECT_LT(wide, narrow);
  EXPECT_DOUBLE_EQ(wide * 4, narrow);
}

TEST(CommModel, TransferTimeExploitsLocality) {
  const Cluster c(8, 100.0);
  const CommModel m(c);
  const auto a = ProcessorSet::of(8, {0, 1});
  const auto b = ProcessorSet::of(8, {2, 3});
  // Fully remote: 1000 bytes over 2 streams of 100 B/s.
  EXPECT_DOUBLE_EQ(m.transfer_time(1000.0, a, b), 5.0);
  // Same layout: free.
  EXPECT_DOUBLE_EQ(m.transfer_time(1000.0, a, a), 0.0);
  // Aligned partial overlap is cheaper than fully remote: {0,1} -> {0,2}
  // keeps processor 0's share (positions 0 and 0 are compatible).
  const auto ab = ProcessorSet::of(8, {0, 2});
  EXPECT_DOUBLE_EQ(m.transfer_time(1000.0, a, ab), 2.5);
  // Misaligned overlap moves everything: {0,1} -> {1,2} places processor
  // 1 at position 1 (source) vs 0 (destination), incompatible mod 2.
  const auto mis = ProcessorSet::of(8, {1, 2});
  EXPECT_DOUBLE_EQ(m.transfer_time(1000.0, a, mis), 5.0);
}

TEST(CommModel, LatencyAddsPerTransferStartup) {
  const CommModel m{Cluster(8, 100.0, true, 0.5)};
  // 1000 B over 2 streams of 100 B/s + 0.5 s startup.
  EXPECT_DOUBLE_EQ(m.transfer_duration(1000.0, 2, 4), 5.5);
  // No bytes, no transfer, no latency.
  EXPECT_DOUBLE_EQ(m.transfer_duration(0.0, 2, 4), 0.0);
  const auto a = ProcessorSet::of(8, {0});
  EXPECT_DOUBLE_EQ(m.transfer_time(100.0, a, a), 0.0);  // local stays free
}

TEST(CommModel, LatencyDefaultsToPaperModel) {
  const CommModel m{Cluster(8, 100.0)};
  EXPECT_DOUBLE_EQ(m.cluster().latency_s, 0.0);
  EXPECT_DOUBLE_EQ(m.transfer_duration(1000.0, 1, 1), 10.0);
}

TEST(CommModel, ClusterRejectsNegativeLatency) {
  EXPECT_THROW(Cluster(4, 100.0, true, -0.1), std::invalid_argument);
}

TEST(CommModel, ExposesClusterAndOverlap) {
  const CommModel m{Cluster(4, 100.0, false)};  // temporary is safe: copied
  EXPECT_FALSE(m.overlap());
  EXPECT_EQ(m.cluster().processors, 4u);
  EXPECT_DOUBLE_EQ(m.cluster().bandwidth_Bps, 100.0);
}

}  // namespace
}  // namespace locmps
