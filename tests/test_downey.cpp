#include "speedup/downey.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace locmps {
namespace {

TEST(Downey, SpeedupOfOneProcessorIsOne) {
  EXPECT_DOUBLE_EQ(DowneyModel(16.0, 0.5).speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(DowneyModel(1.0, 2.0).speedup(1), 1.0);
}

TEST(Downey, PerfectScalabilityAtSigmaZero) {
  const DowneyModel m(8.0, 0.0);
  // sigma = 0: linear up to A processors, then flat at A.
  for (std::size_t n = 1; n <= 8; ++n)
    EXPECT_DOUBLE_EQ(m.speedup(n), static_cast<double>(n)) << n;
  EXPECT_DOUBLE_EQ(m.speedup(16), 8.0);
  EXPECT_DOUBLE_EQ(m.speedup(100), 8.0);
}

TEST(Downey, LowVarianceBranchValues) {
  // sigma <= 1, n <= A: S = A n / (A + sigma (n-1)/2).
  const DowneyModel m(10.0, 1.0);
  EXPECT_NEAR(m.speedup(5), 10.0 * 5 / (10.0 + 0.5 * 4), 1e-12);
  // A <= n <= 2A-1: S = A n / (sigma (A - 1/2) + n (1 - sigma/2)).
  EXPECT_NEAR(m.speedup(15), 10.0 * 15 / (9.5 + 15 * 0.5), 1e-12);
  // n >= 2A-1: saturation.
  EXPECT_DOUBLE_EQ(m.speedup(19), 10.0);
  EXPECT_DOUBLE_EQ(m.speedup(64), 10.0);
}

TEST(Downey, HighVarianceBranchValues) {
  // sigma >= 1, n <= A + A sigma - sigma: S = n A (sigma+1) /
  // (sigma (n + A - 1) + A).
  const DowneyModel m(8.0, 2.0);
  const double expect4 = 4 * 8.0 * 3.0 / (2.0 * (4 + 8 - 1) + 8.0);
  EXPECT_NEAR(m.speedup(4), expect4, 1e-12);
  // Saturation at n >= A + A*sigma - sigma = 8 + 16 - 2 = 22.
  EXPECT_DOUBLE_EQ(m.speedup(22), 8.0);
  EXPECT_DOUBLE_EQ(m.speedup(128), 8.0);
}

TEST(Downey, RejectsInvalidParameters) {
  EXPECT_THROW(DowneyModel(0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(DowneyModel(4.0, -0.1), std::invalid_argument);
}

TEST(Downey, ExecTimeScalesInversely) {
  const DowneyModel m(8.0, 0.0);
  EXPECT_DOUBLE_EQ(m.exec_time(40.0, 4), 10.0);
}

TEST(Downey, AccessorsRoundTrip) {
  const DowneyModel m(12.0, 1.5);
  EXPECT_DOUBLE_EQ(m.A(), 12.0);
  EXPECT_DOUBLE_EQ(m.sigma(), 1.5);
}

// Property sweep: for every (A, sigma) the curve is non-decreasing, bounded
// by min(n, A), and saturates exactly at A.
class DowneyProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DowneyProperty, MonotoneNonDecreasing) {
  const auto [A, sigma] = GetParam();
  const DowneyModel m(A, sigma);
  double prev = 0.0;
  for (std::size_t n = 1; n <= 256; ++n) {
    const double s = m.speedup(n);
    EXPECT_GE(s, prev - 1e-12) << "A=" << A << " sigma=" << sigma << " n=" << n;
    prev = s;
  }
}

TEST_P(DowneyProperty, BoundedByIdealAndAverageParallelism) {
  const auto [A, sigma] = GetParam();
  const DowneyModel m(A, sigma);
  for (std::size_t n = 1; n <= 256; ++n) {
    const double s = m.speedup(n);
    EXPECT_LE(s, static_cast<double>(n) + 1e-9);
    EXPECT_LE(s, A + 1e-9);
    EXPECT_GE(s, 1.0 - 1e-12);
  }
}

TEST_P(DowneyProperty, SaturatesAtAverageParallelism) {
  const auto [A, sigma] = GetParam();
  const DowneyModel m(A, sigma);
  EXPECT_NEAR(m.speedup(100000), A, A * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, DowneyProperty,
    ::testing::Combine(::testing::Values(1.0, 2.0, 8.0, 48.0, 64.0, 200.0),
                       ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0)));

}  // namespace
}  // namespace locmps
