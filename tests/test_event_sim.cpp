#include "schedule/event_sim.hpp"

#include <gtest/gtest.h>

#include "schedulers/locbs.hpp"
#include "schedulers/registry.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

TEST(EventSim, ReproducesCommFreeChain) {
  const TaskGraph g = test::chain(3, 5.0, 2, 0.0);
  const Cluster c(2);
  const CommModel m(c);
  Schedule s(3, 2);
  const auto p0 = ProcessorSet::of(2, {0});
  s.place(0, 0, 0, 5, p0);
  s.place(1, 5, 5, 10, p0);
  s.place(2, 10, 10, 15, p0);
  const SimResult r = simulate_execution(g, s, m);
  EXPECT_DOUBLE_EQ(r.makespan, 15.0);
  EXPECT_DOUBLE_EQ(r.total_transfer_bytes, 0.0);
}

TEST(EventSim, ChargesRemoteTransfers) {
  // 1000 B from proc 0 to proc 1 at 100 B/s = 10 s.
  const TaskGraph g = test::chain(2, 5.0, 2, 1000.0);
  const Cluster c(2, 100.0);
  const CommModel m(c);
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 15, 15, 20, ProcessorSet::of(2, {1}));
  const SimResult r = simulate_execution(g, s, m);
  EXPECT_DOUBLE_EQ(r.executed.at(1).start, 15.0);  // 5 + 10 transfer
  EXPECT_DOUBLE_EQ(r.makespan, 20.0);
  EXPECT_DOUBLE_EQ(r.total_transfer_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(r.total_transfer_time, 10.0);
}

TEST(EventSim, LocalDataNeedsNoTransfer) {
  const TaskGraph g = test::chain(2, 5.0, 2, 1000.0);
  const Cluster c(2, 100.0);
  const CommModel m(c);
  Schedule s(2, 2);
  const auto p0 = ProcessorSet::of(2, {0});
  s.place(0, 0, 0, 5, p0);
  s.place(1, 5, 5, 10, p0);
  const SimResult r = simulate_execution(g, s, m);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_DOUBLE_EQ(r.total_transfer_bytes, 0.0);
}

TEST(EventSim, CompactsUnneededGaps) {
  // A schedule with slack is re-timed to remove it (placements fixed).
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 50, 50, 55, ProcessorSet::of(2, {0}));
  const SimResult r = simulate_execution(g, s, m);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
}

TEST(EventSim, RejectsIncompleteSchedule) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  EXPECT_THROW(simulate_execution(g, s, m), std::invalid_argument);
}

TEST(EventSim, NoiseIsDeterministicInSeed) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 8;
  Rng rng(5);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(8);
  const CommModel m(c);
  const LocBSResult plan = locbs(g, Allocation(g.num_tasks(), 1), m);
  SimOptions noisy;
  noisy.runtime_noise = 0.2;
  noisy.seed = 99;
  const double m1 = simulate_execution(g, plan.schedule, m, noisy).makespan;
  const double m2 = simulate_execution(g, plan.schedule, m, noisy).makespan;
  EXPECT_DOUBLE_EQ(m1, m2);
  noisy.seed = 100;
  const double m3 = simulate_execution(g, plan.schedule, m, noisy).makespan;
  EXPECT_NE(m1, m3);
}

TEST(EventSim, SinglePortNeverFasterThanParallel) {
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 8;
  Rng rng(6);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(8);
  const CommModel m(c);
  const LocBSResult plan = locbs(g, Allocation(g.num_tasks(), 2), m);
  SimOptions par, sp;
  par.single_port = false;
  sp.single_port = true;
  const double mk_par = simulate_execution(g, plan.schedule, m, par).makespan;
  const double mk_sp = simulate_execution(g, plan.schedule, m, sp).makespan;
  EXPECT_GE(mk_sp, mk_par - 1e-9);
}

TEST(EventSim, NoOverlapNeverFasterThanOverlap) {
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 8;
  Rng rng(7);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster ov(8, kFastEthernetBytesPerSec, true);
  const Cluster nov(8, kFastEthernetBytesPerSec, false);
  const LocBSResult plan = locbs(g, Allocation(g.num_tasks(), 2),
                                 CommModel(ov));
  const double mk_ov =
      simulate_execution(g, plan.schedule, CommModel(ov)).makespan;
  const double mk_nov =
      simulate_execution(g, plan.schedule, CommModel(nov)).makespan;
  EXPECT_GE(mk_nov, mk_ov - 1e-9);
}

TEST(EventSim, NoOverlapStallsTheSender) {
  // a -> b with a transfer, plus an independent task c sharing a's
  // processor: on a no-overlap platform the transfer holds a's processor,
  // delaying c.
  TaskGraph g;
  const TaskId a = g.add_task("a", test::serial(5.0, 2));
  const TaskId b = g.add_task("b", test::serial(5.0, 2));
  const TaskId c = g.add_task("c", test::serial(5.0, 2));
  g.add_edge(a, b, 1000.0);  // 10 s at 100 B/s
  (void)c;
  Schedule s(3, 2);
  s.place(a, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(b, 5, 15, 20, ProcessorSet::of(2, {1}));
  s.place(c, 20, 20, 25, ProcessorSet::of(2, {0}));
  const CommModel nov{Cluster(2, 100.0, false)};
  const SimResult r = simulate_execution(g, s, nov);
  // The transfer occupies proc 0 during [5, 15): c cannot start before 15.
  EXPECT_GE(r.executed.at(c).start, 15.0 - 1e-9);
  const CommModel ov{Cluster(2, 100.0, true)};
  const SimResult r2 = simulate_execution(g, s, ov);
  EXPECT_DOUBLE_EQ(r2.executed.at(c).start, 5.0);  // overlap frees the CPU
}

TEST(EventSim, ReleaseTimesDelayTasks) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 5, 5, 10, ProcessorSet::of(2, {0}));
  std::vector<double> release{0.0, 42.0};
  SimOptions opt;
  opt.release_times = &release;
  const SimResult r = simulate_execution(g, s, m, opt);
  EXPECT_DOUBLE_EQ(r.executed.at(1).start, 42.0);
  EXPECT_DOUBLE_EQ(r.makespan, 47.0);
}

TEST(EventSim, ExplicitNoiseFactorsOverrideSeed) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 5, 5, 10, ProcessorSet::of(2, {0}));
  std::vector<double> factors{2.0, 1.0};  // first task takes twice as long
  SimOptions opt;
  opt.noise_factors = &factors;
  opt.runtime_noise = 0.9;  // would otherwise randomize
  const SimResult r = simulate_execution(g, s, m, opt);
  EXPECT_DOUBLE_EQ(r.executed.at(0).finish, 10.0);
  EXPECT_DOUBLE_EQ(r.makespan, 15.0);
  std::vector<double> wrong_size{1.0};
  opt.noise_factors = &wrong_size;
  EXPECT_THROW(simulate_execution(g, s, m, opt), std::invalid_argument);
}

TEST(EventSim, ReleaseTimesComposeWithSinglePort) {
  // Two remote producers feed one consumer through a single-port network
  // while a release time also holds the consumer back; the executed
  // schedule must still be a valid Schedule.
  const TaskGraph g = test::diamond(5.0, 4, 2000.0);
  const Cluster c(4, 100.0);
  const CommModel m(c);
  Schedule s(4, 4);
  s.place(0, 0, 0, 5, ProcessorSet::of(4, {0}));
  s.place(1, 25, 25, 30, ProcessorSet::of(4, {1}));
  s.place(2, 25, 25, 30, ProcessorSet::of(4, {2}));
  s.place(3, 70, 70, 75, ProcessorSet::of(4, {3}));
  std::vector<double> release{0.0, 0.0, 31.0, 40.0};
  SimOptions opt;
  opt.release_times = &release;
  opt.single_port = true;
  const SimResult single = simulate_execution(g, s, m, opt);
  EXPECT_EQ(single.executed.validate(g, m), "");
  EXPECT_GE(single.executed.at(2).start, 31.0);
  EXPECT_GE(single.executed.at(3).start, 40.0);

  // Against a multi-port network under the same release times, the
  // single-port run serializes the two 20 s transfers into t3 and can
  // only be later.
  opt.single_port = false;
  const SimResult multi = simulate_execution(g, s, m, opt);
  EXPECT_EQ(multi.executed.validate(g, m), "");
  EXPECT_GT(single.executed.at(3).start, multi.executed.at(3).start);
  EXPECT_GE(single.makespan, multi.makespan);
}

TEST(EventSim, NoiseFactorsOverrideKeepsScheduleValid) {
  // Explicit stretch factors (>= 1) override runtime_noise entirely and
  // the stretched execution still passes full Schedule validation.
  const TaskGraph g = test::diamond(5.0, 4, 1000.0);
  const Cluster c(4, 100.0);
  const CommModel m(c);
  Schedule s(4, 4);
  s.place(0, 0, 0, 5, ProcessorSet::of(4, {0}));
  s.place(1, 15, 15, 20, ProcessorSet::of(4, {1}));
  s.place(2, 15, 15, 20, ProcessorSet::of(4, {2}));
  s.place(3, 30, 30, 35, ProcessorSet::of(4, {0}));
  std::vector<double> factors{1.5, 1.0, 2.0, 1.0};
  SimOptions opt;
  opt.noise_factors = &factors;
  opt.runtime_noise = 0.9;  // must be ignored in favor of the factors
  opt.seed = 1234;
  const SimResult r = simulate_execution(g, s, m, opt);
  EXPECT_EQ(r.executed.validate(g, m), "");
  EXPECT_DOUBLE_EQ(r.executed.at(0).finish - r.executed.at(0).start, 7.5);
  EXPECT_DOUBLE_EQ(r.executed.at(2).finish - r.executed.at(2).start, 10.0);
  // Same options, same result: the override leaves nothing to the seed.
  SimOptions opt2 = opt;
  opt2.seed = 99;
  const SimResult r2 = simulate_execution(g, s, m, opt2);
  EXPECT_DOUBLE_EQ(r.makespan, r2.makespan);
}

TEST(EventSim, MakeNoiseFactorsIsDeterministicAndBounded) {
  const auto a = make_noise_factors(64, 0.3, 7);
  const auto b = make_noise_factors(64, 0.3, 7);
  EXPECT_EQ(a, b);
  for (double f : a) {
    EXPECT_GE(f, 0.7 - 1e-12);
    EXPECT_LE(f, 1.3 + 1e-12);
  }
  const auto none = make_noise_factors(8, 0.0, 7);
  for (double f : none) EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(EventSim, NonLocalityVolumesChargeFullTransfers) {
  // Overlapping but non-identical sets: locality accounting moves only
  // the remote share; the non-locality model moves everything.
  const TaskGraph g = test::chain(2, 5.0, 4, 1000.0);
  const CommModel m{Cluster(4, 100.0)};
  Schedule s(2, 4);
  s.place(0, 0, 0, 5, ProcessorSet::of(4, {0, 1}));
  s.place(1, 50, 50, 55, ProcessorSet::of(4, {0, 2}));
  SimOptions exact;
  const SimResult r1 = simulate_execution(g, s, m, exact);
  SimOptions full;
  full.locality_volumes = false;
  const SimResult r2 = simulate_execution(g, s, m, full);
  EXPECT_LT(r1.total_transfer_bytes, r2.total_transfer_bytes);
  EXPECT_DOUBLE_EQ(r2.total_transfer_bytes, 1000.0);
  // Identical layouts stay free in both models.
  Schedule same(2, 4);
  same.place(0, 0, 0, 5, ProcessorSet::of(4, {0, 1}));
  same.place(1, 5, 5, 10, ProcessorSet::of(4, {0, 1}));
  EXPECT_DOUBLE_EQ(
      simulate_execution(g, same, m, full).total_transfer_bytes, 0.0);
}

TEST(EventSim, ReTimingIsIdempotent) {
  // Executing an executed schedule changes nothing.
  SyntheticParams p;
  p.ccr = 0.1;
  p.max_procs = 8;
  Rng rng(8);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const CommModel m{Cluster(8)};
  const LocBSResult plan = locbs(g, Allocation(g.num_tasks(), 1), m);
  const SimResult once = simulate_execution(g, plan.schedule, m);
  const SimResult twice = simulate_execution(g, once.executed, m);
  EXPECT_NEAR(once.makespan, twice.makespan, 1e-9);
}

}  // namespace
}  // namespace locmps
