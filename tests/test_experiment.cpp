#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "schedulers/registry.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

TEST(Experiment, EvaluateSchemeFillsAllFields) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 4;
  Rng rng(1);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(4);
  const SchemeRun run = evaluate_scheme("cpa", g, c);
  EXPECT_EQ(run.scheme, "cpa");
  EXPECT_GT(run.makespan, 0.0);
  EXPECT_GT(run.estimated, 0.0);
  EXPECT_GE(run.scheduling_seconds, 0.0);
  EXPECT_EQ(run.allocation.size(), g.num_tasks());
  EXPECT_TRUE(run.schedule.complete());
}

TEST(Experiment, RealizedNeverBeatsPlanByMuch) {
  // Re-timing can only compact or preserve a consistent plan.
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 4;
  Rng rng(2);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(4);
  for (const auto& s : {"loc-mps", "task", "data"}) {
    const SchemeRun run = evaluate_scheme(s, g, c);
    EXPECT_LE(run.makespan, run.estimated * (1.0 + 1e-9)) << s;
  }
}

TEST(Experiment, ComparisonReferenceRatioIsOne) {
  SyntheticParams p;
  p.ccr = 0.1;
  p.max_procs = 4;
  const auto graphs = make_synthetic_suite(p, 2, 3);
  const Comparison c = compare_schemes(graphs, {"cpa", "task", "data"},
                                       {2, 4}, kFastEthernetBytesPerSec);
  ASSERT_EQ(c.relative.size(), 2u);
  for (const auto& row : c.relative) {
    ASSERT_EQ(row.size(), 3u);
    EXPECT_DOUBLE_EQ(row[0], 1.0);  // reference scheme vs itself
    for (double v : row) EXPECT_GT(v, 0.0);
  }
}

TEST(Experiment, ComparisonRecordsMakespansAndTimes) {
  SyntheticParams p;
  p.ccr = 0.0;
  p.max_procs = 4;
  const auto graphs = make_synthetic_suite(p, 2, 5);
  const Comparison c = compare_schemes(graphs, {"task", "data"}, {4},
                                       kFastEthernetBytesPerSec);
  EXPECT_GT(c.makespan[0][0], 0.0);
  EXPECT_GT(c.makespan[0][1], 0.0);
  EXPECT_GE(c.sched_seconds[0][0], 0.0);
}

TEST(Experiment, TablesHaveSchemeColumnsAndProcRows) {
  SyntheticParams p;
  p.max_procs = 4;
  const auto graphs = make_synthetic_suite(p, 1, 7);
  const Comparison c = compare_schemes(graphs, {"task", "data"}, {2, 4},
                                       kFastEthernetBytesPerSec);
  const Table rel = relative_performance_table(c);
  EXPECT_EQ(rel.rows(), 2u);
  std::ostringstream os;
  rel.print(os);
  EXPECT_NE(os.str().find("task"), std::string::npos);
  EXPECT_NE(os.str().find("data"), std::string::npos);
  const Table times = scheduling_time_table(c);
  EXPECT_EQ(times.rows(), 2u);
}

TEST(Experiment, ThreadedSweepMatchesSequential) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 4;
  const auto graphs = make_synthetic_suite(p, 3, 9);
  const std::vector<std::string> schemes{"cpa", "task", "data"};
  const Comparison seq = compare_schemes(graphs, schemes, {2, 4},
                                         kFastEthernetBytesPerSec, true, {},
                                         1);
  const Comparison par = compare_schemes(graphs, schemes, {2, 4},
                                         kFastEthernetBytesPerSec, true, {},
                                         4);
  for (std::size_t pi = 0; pi < seq.procs.size(); ++pi)
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      EXPECT_DOUBLE_EQ(par.relative[pi][si], seq.relative[pi][si]);
      EXPECT_DOUBLE_EQ(par.makespan[pi][si], seq.makespan[pi][si]);
    }
}

TEST(Experiment, NonLocalitySchemesChargedFullVolumes) {
  // The same plan evaluated as a locality scheme vs not: evaluate_scheme
  // uses the registry's classification, so iCASLB's realized makespan is
  // at least its own estimate (which already charges full transfers).
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 4;
  Rng rng(10);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(4);
  const SchemeRun run = evaluate_scheme("icaslb", g, c);
  EXPECT_NEAR(run.makespan, run.estimated, 1e-9 * run.estimated);
}

TEST(Experiment, EveryPaperSchemeReportsIterationsFromCounters) {
  // SchemeRun::iterations is sourced from the per-run metrics registry
  // ("scheduler.iterations"): the instrumented LoCBS-call count where one
  // exists (loc-mps, and icaslb via its inner allocator — its scheduler
  // reports 0 itself), the scheduler's own report otherwise. It must be
  // at least 1 for every paper scheme.
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 4;
  Rng rng(3);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(4);
  for (const std::string& s : paper_schemes()) {
    const SchemeRun run = evaluate_scheme(s, g, c);
    EXPECT_GE(run.iterations, 1u) << s;
    EXPECT_EQ(run.iterations,
              static_cast<std::size_t>(
                  run.counters.counter("scheduler.iterations")))
        << s;
  }
}

TEST(Experiment, EveryRunCarriesHarnessCounters) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 4;
  Rng rng(5);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(4);
  for (const std::string& s : paper_schemes()) {
    const SchemeRun run = evaluate_scheme(s, g, c);
    EXPECT_GE(run.counters.counter("scheduler.plan_seconds"), 0.0) << s;
    EXPECT_NEAR(run.counters.counter("sim.makespan"), run.makespan,
                1e-12 + 1e-9 * run.makespan)
        << s;
    EXPECT_NE(run.counters.timer("sim.execute"), nullptr) << s;
  }
}

TEST(Experiment, LocMpsRunExposesPlannerCounters) {
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 4;
  Rng rng(6);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const SchemeRun run = evaluate_scheme("loc-mps", g, Cluster(4));
  const obs::MetricsSnapshot& c = run.counters;
  EXPECT_GT(c.counter("locmps.locbs_calls"), 0.0);
  EXPECT_GT(c.counter("locbs.tasks_placed"), 0.0);
  EXPECT_GT(c.counter("comm.cost_evals"), 0.0);
  EXPECT_NE(c.timer("locmps.run"), nullptr);
  EXPECT_NE(c.timer("locmps.critical_path"), nullptr);
  EXPECT_NE(c.timer("locbs.pass"), nullptr);
  const obs::SeriesStats* ms = c.find_series("locmps.best_makespan");
  ASSERT_NE(ms, nullptr);
  ASSERT_FALSE(ms->points.empty());
  // The refinement series is non-increasing and ends at the estimate.
  for (std::size_t i = 1; i < ms->points.size(); ++i)
    EXPECT_LE(ms->points[i].value, ms->points[i - 1].value + 1e-12);
  EXPECT_NEAR(ms->points.back().value, run.estimated,
              1e-9 * run.estimated);
}

TEST(Experiment, NoOverlapPlatformIsHonoured) {
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 4;
  Rng rng(4);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const SchemeRun ov = evaluate_scheme(
      "task", g, Cluster(4, kFastEthernetBytesPerSec, true));
  const SchemeRun nov = evaluate_scheme(
      "task", g, Cluster(4, kFastEthernetBytesPerSec, false));
  EXPECT_GE(nov.makespan, ov.makespan - 1e-9);
}

}  // namespace
}  // namespace locmps
