#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "schedule/event_sim.hpp"
#include "test_util.hpp"

namespace locmps {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan: validation and queries.

TEST(FaultPlan, RejectsMalformedEvents) {
  EXPECT_THROW(FaultPlan(2, {{2, 1.0, kNeverRepaired}}),
               std::invalid_argument);  // proc out of range
  EXPECT_THROW(FaultPlan(2, {{0, -1.0, kNeverRepaired}}),
               std::invalid_argument);  // negative onset
  EXPECT_THROW(FaultPlan(2, {{0, 5.0, 5.0}}),
               std::invalid_argument);  // repair not after onset
  EXPECT_THROW(FaultPlan(2, {{0, 1.0, kNeverRepaired},
                             {0, 2.0, kNeverRepaired}}),
               std::invalid_argument);  // two events on one proc
}

TEST(FaultPlan, AnswersLivenessQueries) {
  const FaultPlan plan(3, {{1, 5.0, 8.0}, {2, 2.0, kNeverRepaired}});
  EXPECT_TRUE(plan.alive(0, 100.0));  // never fails
  EXPECT_TRUE(plan.alive(1, 4.9));
  EXPECT_FALSE(plan.alive(1, 5.0));   // onset inclusive
  EXPECT_FALSE(plan.alive(1, 7.9));
  EXPECT_TRUE(plan.alive(1, 8.0));    // repair instant is up again
  EXPECT_FALSE(plan.alive(2, 50.0));  // never repaired

  EXPECT_DOUBLE_EQ(plan.repaired_at(1, 6.0), 8.0);
  EXPECT_DOUBLE_EQ(plan.repaired_at(1, 1.0), 1.0);  // alive: now
  EXPECT_DOUBLE_EQ(plan.repaired_at(2, 3.0), kNeverRepaired);

  double onset = 0.0;
  EXPECT_TRUE(plan.first_onset(1, 0.0, 10.0, &onset));
  EXPECT_DOUBLE_EQ(onset, 5.0);
  EXPECT_FALSE(plan.first_onset(1, 5.5, 10.0, &onset));  // window misses it
  EXPECT_FALSE(plan.first_onset(0, 0.0, 1e9, &onset));

  EXPECT_EQ(plan.event_of(0), nullptr);
  ASSERT_NE(plan.event_of(2), nullptr);
  EXPECT_DOUBLE_EQ(plan.event_of(2)->fail_at, 2.0);

  const ProcessorSet at3 = plan.failed_by(3.0);
  EXPECT_EQ(at3.count(), 1u);
  EXPECT_TRUE(at3.contains(2));
  EXPECT_EQ(plan.failed_by(10.0).count(), 2u);  // repair does not un-fail
}

TEST(FaultPlan, GeneratorIsDeterministicAndBounded) {
  FaultPlanParams prm;
  prm.fail_fraction = 0.5;
  prm.horizon_s = 40.0;
  prm.repairs = true;
  prm.repair_delay_s = 5.0;
  prm.min_survivors = 3;
  prm.seed = 99;
  const FaultPlan a = make_fault_plan(16, prm);
  const FaultPlan b = make_fault_plan(16, prm);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].proc, b.events()[i].proc);
    EXPECT_DOUBLE_EQ(a.events()[i].fail_at, b.events()[i].fail_at);
    EXPECT_DOUBLE_EQ(a.events()[i].repair_at, b.events()[i].repair_at);
  }
  EXPECT_EQ(a.events().size(), 8u);  // 0.5 * 16
  for (const FaultEvent& e : a.events()) {
    EXPECT_GE(e.fail_at, 0.0);
    EXPECT_LT(e.fail_at, prm.horizon_s);
    EXPECT_GT(e.repair_at, e.fail_at);
    EXPECT_GE(e.repair_at - e.fail_at, 0.5 * prm.repair_delay_s);
    EXPECT_LE(e.repair_at - e.fail_at, 1.5 * prm.repair_delay_s);
  }

  prm.seed = 100;
  const FaultPlan c = make_fault_plan(16, prm);
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i)
    differs = a.events()[i].proc != c.events()[i].proc ||
              a.events()[i].fail_at != c.events()[i].fail_at;
  EXPECT_TRUE(differs);  // the seed actually matters
}

TEST(FaultPlan, GeneratorHonorsMinSurvivors) {
  FaultPlanParams prm;
  prm.fail_fraction = 1.0;
  prm.min_survivors = 2;
  const FaultPlan p = make_fault_plan(4, prm);
  EXPECT_EQ(p.events().size(), 2u);  // 4 - 2 survivors
}

// ---------------------------------------------------------------------------
// Event-simulator kill semantics.

SimOptions with_faults(const FaultPlan& plan) {
  SimOptions opt;
  opt.faults = &plan;
  return opt;
}

TEST(EventSimFaults, NullAndEmptyPlansAreIdentityTransforms) {
  const TaskGraph g = test::diamond(10.0, 4, 1000.0);
  const Cluster c(4, 100.0);
  const CommModel m(c);
  Schedule s(4, 4);
  s.place(0, 0, 0, 10, ProcessorSet::of(4, {0}));
  s.place(1, 20, 20, 30, ProcessorSet::of(4, {1}));
  s.place(2, 20, 20, 30, ProcessorSet::of(4, {2}));
  s.place(3, 40, 40, 50, ProcessorSet::of(4, {0}));

  const FaultPlan empty(4);
  const SimResult plain = simulate_execution(g, s, m);
  const SimResult faulted = simulate_execution(g, s, m, with_faults(empty));
  EXPECT_TRUE(faulted.clean());
  EXPECT_EQ(faulted.skipped, 0u);
  EXPECT_DOUBLE_EQ(faulted.makespan, plain.makespan);
  for (TaskId t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(faulted.executed.at(t).start, plain.executed.at(t).start);
    EXPECT_DOUBLE_EQ(faulted.executed.at(t).finish,
                     plain.executed.at(t).finish);
  }
}

TEST(EventSimFaults, RejectsWrongSizedPlan) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 5, 5, 10, ProcessorSet::of(2, {0}));
  const FaultPlan wrong(3);
  EXPECT_THROW(simulate_execution(g, s, m, with_faults(wrong)),
               std::invalid_argument);
}

TEST(EventSimFaults, KillsComputeMidFlightAndSkipsSuccessors) {
  const TaskGraph g = test::chain(3, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(3, 2);
  const auto p0 = ProcessorSet::of(2, {0});
  s.place(0, 0, 0, 5, p0);
  s.place(1, 5, 5, 10, p0);
  s.place(2, 10, 10, 15, p0);

  // Proc 0 dies at t=7, mid-way through t1.
  const FaultPlan plan(2, {{0, 7.0, kNeverRepaired}});
  const SimResult r = simulate_execution(g, s, m, with_faults(plan));
  EXPECT_FALSE(r.clean());
  ASSERT_EQ(r.kills.size(), 1u);
  const TaskKill& k = r.kills.front();
  EXPECT_EQ(k.task, 1u);
  EXPECT_EQ(k.proc, 0u);
  EXPECT_EQ(k.kind, TaskKill::Kind::kCompute);
  EXPECT_DOUBLE_EQ(k.at, 7.0);
  EXPECT_DOUBLE_EQ(k.start, 5.0);
  EXPECT_DOUBLE_EQ(k.planned_finish, 10.0);
  EXPECT_DOUBLE_EQ(k.wasted_s, 2.0);  // (7 - 5) * 1 proc
  // t0 completed before the failure; t1 killed; t2 orphan-skipped.
  EXPECT_TRUE(r.executed.at(0).scheduled());
  EXPECT_FALSE(r.executed.at(1).scheduled());
  EXPECT_FALSE(r.executed.at(2).scheduled());
  EXPECT_EQ(r.skipped, 1u);
}

TEST(EventSimFaults, DeadProcessorKillsAtStart) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 5, 5, 10, ProcessorSet::of(2, {1}));

  // Proc 1 died long before t1's start and never comes back.
  const FaultPlan plan(2, {{1, 1.0, kNeverRepaired}});
  const SimResult r = simulate_execution(g, s, m, with_faults(plan));
  ASSERT_EQ(r.kills.size(), 1u);
  EXPECT_EQ(r.kills[0].task, 1u);
  EXPECT_EQ(r.kills[0].kind, TaskKill::Kind::kDeadAtStart);
  EXPECT_DOUBLE_EQ(r.kills[0].at, 5.0);       // observed at the start
  EXPECT_DOUBLE_EQ(r.kills[0].wasted_s, 0.0);  // nothing ran
}

TEST(EventSimFaults, RepairedProcessorRunsItsTask) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 5, 5, 10, ProcessorSet::of(2, {1}));

  // Proc 1's outage [1, 4) ends before t1 starts: no kill.
  const FaultPlan plan(2, {{1, 1.0, 4.0}});
  const SimResult r = simulate_execution(g, s, m, with_faults(plan));
  EXPECT_TRUE(r.clean());
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
}

TEST(EventSimFaults, FailureAfterFinishIsHarmless) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  const auto p0 = ProcessorSet::of(2, {0});
  s.place(0, 0, 0, 5, p0);
  s.place(1, 5, 5, 10, p0);
  const FaultPlan plan(2, {{0, 10.0, kNeverRepaired}});  // at the finish
  const SimResult r = simulate_execution(g, s, m, with_faults(plan));
  EXPECT_TRUE(r.clean());
}

TEST(EventSimFaults, TransferTimesOutWhenAnEndpointDies) {
  // 1000 B at 100 B/s: the transfer occupies [5, 15) between p0 and p1.
  const TaskGraph g = test::chain(2, 5.0, 2, 1000.0);
  const Cluster c(2, 100.0);
  const CommModel m(c);
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 15, 15, 20, ProcessorSet::of(2, {1}));

  // The sender dies mid-transfer: the consumer's redistribution times out.
  const FaultPlan plan(2, {{0, 8.0, kNeverRepaired}});
  const SimResult r = simulate_execution(g, s, m, with_faults(plan));
  ASSERT_EQ(r.kills.size(), 1u);
  EXPECT_EQ(r.kills[0].task, 1u);
  EXPECT_EQ(r.kills[0].proc, 0u);
  EXPECT_EQ(r.kills[0].kind, TaskKill::Kind::kTransfer);
  EXPECT_DOUBLE_EQ(r.kills[0].at, 8.0);
  EXPECT_DOUBLE_EQ(r.kills[0].wasted_s, 0.0);
}

TEST(EventSimFaults, TransferStartedAfterOnsetSucceeds) {
  // Completed output data survives a later failure (it is on disk): a
  // transfer whose window begins at/after the onset is a re-request and
  // must not time out. Here the sender fails exactly when the transfer
  // begins.
  const TaskGraph g = test::chain(2, 5.0, 2, 1000.0);
  const Cluster c(2, 100.0);
  const CommModel m(c);
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 15, 15, 20, ProcessorSet::of(2, {1}));
  const FaultPlan plan(2, {{0, 5.0, kNeverRepaired}});
  const SimResult r = simulate_execution(g, s, m, with_faults(plan));
  EXPECT_TRUE(r.clean());
  EXPECT_DOUBLE_EQ(r.makespan, 20.0);
}

TEST(EventSimFaults, KillsAreSortedByInstant) {
  // Two independent tasks on two procs failing in reverse id order.
  TaskGraph g;
  g.add_task("a", test::serial(10.0, 2));
  g.add_task("b", test::serial(10.0, 2));
  const CommModel m{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 10, ProcessorSet::of(2, {0}));
  s.place(1, 0, 0, 10, ProcessorSet::of(2, {1}));
  const FaultPlan plan(2, {{0, 8.0, kNeverRepaired}, {1, 3.0, kNeverRepaired}});
  const SimResult r = simulate_execution(g, s, m, with_faults(plan));
  ASSERT_EQ(r.kills.size(), 2u);
  EXPECT_DOUBLE_EQ(r.kills[0].at, 3.0);
  EXPECT_EQ(r.kills[0].task, 1u);
  EXPECT_DOUBLE_EQ(r.kills[1].at, 8.0);
  EXPECT_EQ(r.kills[1].task, 0u);
}

}  // namespace
}  // namespace locmps
