#include "schedule/gantt.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace locmps {
namespace {

TEST(Gantt, EmptyScheduleRendersPlaceholder) {
  const TaskGraph g = test::chain(1);
  const Schedule s(1, 2);
  EXPECT_EQ(render_gantt(g, s), "(empty schedule)\n");
}

TEST(Gantt, RendersOneRowPerProcessor) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  Schedule s(2, 3);
  s.place(0, 0, 0, 5, ProcessorSet::of(3, {0}));
  s.place(1, 5, 5, 10, ProcessorSet::of(3, {1, 2}));
  const std::string out = render_gantt(g, s, 20);
  EXPECT_NE(out.find("P0"), std::string::npos);
  EXPECT_NE(out.find("P2"), std::string::npos);
  // Task names appear in their cells.
  EXPECT_NE(out.find("t0"), std::string::npos);
  EXPECT_NE(out.find("t1"), std::string::npos);
}

TEST(Gantt, IdleTimeShownAsDots) {
  const TaskGraph g = test::chain(1, 5.0, 2, 0.0);
  Schedule s(1, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  const std::string out = render_gantt(g, s, 10);
  // Processor 1 never runs anything.
  EXPECT_NE(out.find("P1   |.........."), std::string::npos);
}

TEST(Gantt, ReportsUtilization) {
  const TaskGraph g = test::chain(1, 5.0, 2, 0.0);
  Schedule s(1, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0, 1}));
  const std::string out = render_gantt(g, s, 10);
  EXPECT_NE(out.find("utilization 100.0%"), std::string::npos);
}

TEST(Gantt, WidthZeroIsSafe) {
  const TaskGraph g = test::chain(1);
  Schedule s(1, 1);
  s.place(0, 0, 0, 5, ProcessorSet::of(1, {0}));
  EXPECT_EQ(render_gantt(g, s, 0), "(empty schedule)\n");
}

}  // namespace
}  // namespace locmps
