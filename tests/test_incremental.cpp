/// Differential-equivalence oracle for incremental replanning
/// (schedulers/incremental.hpp, docs/incremental.md).
///
/// The contract: LoC-MPS with `incremental = true` — prefix replay of
/// recorded LoCBS evaluations, memoized redistribution fractions, memo
/// replay at threads = 1 — must be observably identical to the
/// from-scratch reference on every workload: same placements, same
/// makespan, same counters (outside the digest-excluded incr.* family),
/// same sample-series values, same decision-event stream when traced,
/// and the same post-mortem analysis. Only the incr.* counters may
/// reveal which path ran. The suite runs every workload of the seeded
/// sweep through both sides and asserts with the shared
/// DifferentialChecker (tests/test_util.hpp).

#include "schedulers/incremental.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "network/block_cyclic.hpp"
#include "network/comm_model.hpp"
#include "obs/analysis.hpp"
#include "schedulers/loc_mps.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "workloads/strassen.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

using namespace locmps;
using test::DifferentialChecker;
using test::RunCapture;

namespace {

RunCapture run(const TaskGraph& g, const Cluster& cluster, bool incremental,
               bool with_sink, std::size_t threads = 1) {
  LocMPSOptions opt;
  opt.incremental = incremental;
  opt.threads = threads;
  return test::run_locmps_capture(g, cluster, opt, with_sink);
}

/// The seeded workload sweep: synthetic DAGs across CCR regimes, Strassen,
/// and a TCE CCSD T1 instance (scaled to test size).
std::vector<std::pair<std::string, TaskGraph>> sweep_workloads() {
  std::vector<std::pair<std::string, TaskGraph>> ws;
  for (const double ccr : {0.0, 0.5, 2.0}) {
    SyntheticParams p;
    p.ccr = ccr;
    p.max_procs = 16;
    const auto suite = make_synthetic_suite(
        p, 2, 9000 + static_cast<std::uint64_t>(ccr * 10.0));
    for (std::size_t i = 0; i < suite.size(); ++i)
      ws.emplace_back("synthetic ccr=" + std::to_string(ccr) + " #" +
                          std::to_string(i),
                      suite[i]);
  }
  StrassenParams sp;
  sp.n = 512;
  sp.max_procs = 16;
  ws.emplace_back("strassen 512", make_strassen(sp));
  TCEParams tp;
  tp.occupied = 8;
  tp.virt = 32;
  tp.max_procs = 16;
  ws.emplace_back("ccsd t1 (8,32)", make_ccsd_t1(tp));
  return ws;
}

// ---------------------------------------------------------------------------
// The oracle: incremental on vs off, every workload

TEST(IncrementalOracle, MetricsOnlyRunsAreBitIdentical) {
  const Cluster cluster(16);
  for (const auto& [label, g] : sweep_workloads()) {
    const RunCapture off = run(g, cluster, /*incremental=*/false, false);
    const RunCapture on = run(g, cluster, /*incremental=*/true, false);
    DifferentialChecker(g).expect_identical(off, on, label);
  }
}

TEST(IncrementalOracle, TracedRunsAreBitIdentical) {
  // With an event sink the machinery stands down (the reference path runs
  // so traces keep their exact shape) — the differential contract must
  // hold all the same, including the full decision-event stream.
  const Cluster cluster(16);
  for (const auto& [label, g] : sweep_workloads()) {
    const RunCapture off = run(g, cluster, false, /*with_sink=*/true);
    const RunCapture on = run(g, cluster, true, /*with_sink=*/true);
    DifferentialChecker(g).expect_identical(off, on, label + " traced");
  }
}

TEST(IncrementalOracle, ThreadedRunsAreBitIdentical) {
  // Incremental replay composes with the speculative probe fan-out:
  // per-probe contexts replay their own evaluation streams. The oracle is
  // the sequential from-scratch run.
  const Cluster cluster(16);
  for (const auto& [label, g] : sweep_workloads()) {
    const RunCapture off = run(g, cluster, false, false, 1);
    for (const std::size_t threads : {2u, 8u}) {
      const RunCapture on = run(g, cluster, true, false, threads);
      DifferentialChecker(g).expect_identical(
          off, on, label + " @" + std::to_string(threads) + "t");
    }
  }
}

TEST(IncrementalOracle, AnalysesAgree) {
  // The post-mortem analyzer consumes the realized schedule; both sides
  // must decompose to the same utilization, holes, locality, and blame.
  const Cluster cluster(16);
  const CommModel comm{cluster};
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 16;
  Rng rng(777);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const RunCapture off = run(g, cluster, false, false);
  const RunCapture on = run(g, cluster, true, false);
  const DifferentialChecker check(g);
  check.expect_identical(off, on, "analysis workload");
  const auto a_off = obs::analyze_schedule(g, off.result.schedule, comm);
  const auto a_on = obs::analyze_schedule(g, on.result.schedule, comm);
  check.expect_same_analysis(a_off, a_on, "analysis");
}

TEST(IncrementalOracle, CountersExposeTheReplay) {
  // The incremental run accounts its work in the digest-excluded incr.*
  // family: dirty (re-scanned) tasks, evaluation-memo hits, replayed
  // tasks. The from-scratch side reports none of them.
  const Cluster cluster(16);
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 16;
  Rng rng(777);
  const TaskGraph g = make_synthetic_dag(p, rng);

  const RunCapture off = run(g, cluster, false, false);
  for (const auto& kv : off.metrics.counters)
    EXPECT_FALSE(kv.first.rfind("incr.", 0) == 0) << kv.first;

  const RunCapture on = run(g, cluster, true, false);
  EXPECT_GT(on.metrics.counter("incr.dirty_tasks"), 0.0);
  EXPECT_GT(on.metrics.counter("incr.replayed_tasks"), 0.0);
  EXPECT_GT(on.metrics.counter("incr.cache_hits"), 0.0);
  // Replay amortizes: across a whole refinement run most placements come
  // from the recorded prefix, not a fresh scan.
  EXPECT_GT(on.metrics.counter("incr.replayed_tasks"),
            on.metrics.counter("incr.dirty_tasks"));
}

TEST(IncrementalOracle, FixedPrefixReplansAreBitIdentical) {
  // The online-rescheduling entry point threads the same machinery;
  // replanning around a frozen prefix must also be mode-invariant.
  const Cluster cluster(16);
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 16;
  Rng rng(4242);
  const TaskGraph g = make_synthetic_dag(p, rng);

  // Freeze the earliest-starting quarter of an initial schedule — a
  // start-time-closed prefix, as a real mid-run replan would see.
  LocMPSOptions base;
  base.incremental = false;
  const SchedulerResult seed = LocMPSScheduler(base).schedule(g, cluster);
  std::vector<TaskId> by_start(g.num_tasks());
  for (TaskId t = 0; t < g.num_tasks(); ++t) by_start[t] = t;
  std::sort(by_start.begin(), by_start.end(), [&](TaskId a, TaskId b) {
    return seed.schedule.at(a).start < seed.schedule.at(b).start;
  });
  FixedPrefix fixed;
  fixed.frozen.assign(g.num_tasks(), 0);
  fixed.placements = &seed.schedule;
  double latest = 0.0;
  for (std::size_t i = 0; i < by_start.size() / 4; ++i) {
    fixed.frozen[by_start[i]] = 1;
    latest = std::max(latest, seed.schedule.at(by_start[i]).start);
  }
  fixed.not_before = latest;

  auto replan = [&](bool incremental) {
    LocMPSOptions opt;
    opt.incremental = incremental;
    return LocMPSScheduler(opt).schedule_with_fixed(g, cluster, fixed);
  };
  const SchedulerResult off = replan(false);
  const SchedulerResult on = replan(true);
  EXPECT_EQ(off.estimated_makespan, on.estimated_makespan);
  ASSERT_EQ(off.allocation, on.allocation);
  for (TaskId t : g.task_ids()) {
    const Placement& a = off.schedule.at(t);
    const Placement& b = on.schedule.at(t);
    EXPECT_EQ(a.start, b.start) << "task " << t;
    EXPECT_EQ(a.finish, b.finish) << "task " << t;
    EXPECT_TRUE(a.procs == b.procs) << "task " << t;
  }
}

// ---------------------------------------------------------------------------
// Unit coverage of the incremental building blocks

TEST(RedistMemo, ServesExactRemoteFractions) {
  RedistMemo memo;
  Rng rng(99);
  std::vector<std::pair<std::vector<ProcId>, std::vector<ProcId>>> pairs;
  for (int i = 0; i < 64; ++i) {
    std::vector<ProcId> src, dst;
    const auto draw = [&rng](std::vector<ProcId>& v) {
      const int n = static_cast<int>(rng.uniform_int(1, 8));
      for (int k = 0; k < n; ++k)
        v.push_back(static_cast<ProcId>(rng.uniform_int(0, 15)));
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    draw(src);
    draw(dst);
    pairs.emplace_back(std::move(src), std::move(dst));
  }
  // First pass computes, second pass must serve bit-equal values from
  // the memo (fraction() returns exactly remote_fraction()'s double).
  std::vector<double> first;
  for (const auto& [s, d] : pairs) first.push_back(memo.fraction(s, d));
  const std::uint64_t lookups0 = memo.lookups();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const double f = memo.fraction(pairs[i].first, pairs[i].second);
    EXPECT_EQ(f, first[i]) << "pair " << i;
    EXPECT_EQ(f, remote_fraction(pairs[i].first, pairs[i].second))
        << "pair " << i;
  }
  EXPECT_EQ(memo.lookups(), lookups0 + pairs.size());
  EXPECT_GE(memo.hits(), pairs.size());  // every second-pass lookup hits
}

TEST(IncrementalContext, PicksTheLongestMatchingRecord) {
  IncrementalContext ctx;
  auto mk = [](std::initializer_list<std::size_t> np) {
    ReplayRecord r;
    r.np = np;
    for (std::size_t i = 0; i < r.np.size(); ++i) {
      auto s = std::make_shared<ReplayStep>();
      s->task = static_cast<TaskId>(i);
      s->np = r.np[i];
      r.steps.push_back(std::move(s));
    }
    return r;
  };
  EXPECT_EQ(ctx.pick_record({1, 1, 1}), nullptr);
  ctx.remember(mk({1, 1, 1}));
  ctx.remember(mk({1, 2, 1}));
  // {1, 2, 2} shares a 2-allocation prefix with {1, 2, 1} but only 1 with
  // {1, 1, 1}; the longer match wins.
  const ReplayRecord* r = ctx.pick_record({1, 2, 2});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->np, (Allocation{1, 2, 1}));
  // Bounded history: remembering past the cap drops the oldest record.
  for (std::size_t w = 0; w < IncrementalContext::kMaxRecords; ++w)
    ctx.remember(mk({4 + w, 4 + w, 4 + w}));
  EXPECT_EQ(ctx.pick_record({1, 1, 1}), nullptr);
}

}  // namespace
