#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.hpp"
#include "util/rng.hpp"
#include "workloads/strassen.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

namespace locmps {
namespace {

TEST(GraphIO, RoundTripPreservesStructure) {
  const TaskGraph g = test::diamond(10.0, 4, 1234.5);
  std::stringstream ss;
  write_text(ss, g);
  const TaskGraph h = read_text(ss);
  ASSERT_EQ(h.num_tasks(), g.num_tasks());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (TaskId t : g.task_ids()) {
    EXPECT_EQ(h.task(t).name, g.task(t).name);
    EXPECT_EQ(h.task(t).profile.table(), g.task(t).profile.table());
  }
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e).src, g.edge(e).src);
    EXPECT_EQ(h.edge(e).dst, g.edge(e).dst);
    EXPECT_DOUBLE_EQ(h.edge(e).volume_bytes, g.edge(e).volume_bytes);
  }
}

TEST(GraphIO, RejectsBadHeader) {
  std::stringstream ss("nonsense v1\n");
  EXPECT_THROW(read_text(ss), std::runtime_error);
}

TEST(GraphIO, RejectsTruncatedProfile) {
  std::stringstream ss("taskgraph v1\ntasks 1\ntask a 3 1.0 2.0\nedges 0\n");
  EXPECT_THROW(read_text(ss), std::runtime_error);
}

TEST(GraphIO, RejectsMalformedEdge) {
  std::stringstream ss(
      "taskgraph v1\ntasks 2\ntask a 1 1.0\ntask b 1 1.0\nedges 1\nedge 0\n");
  EXPECT_THROW(read_text(ss), std::runtime_error);
}

TEST(GraphIO, RejectsCyclicInput) {
  std::stringstream ss(
      "taskgraph v1\ntasks 2\ntask a 1 1.0\ntask b 1 1.0\nedges 2\n"
      "edge 0 1 0\nedge 1 0 0\n");
  EXPECT_THROW(read_text(ss), std::runtime_error);
}

std::string read_error(const std::string& text) {
  std::istringstream in(text);
  try {
    read_text(in);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(GraphIO, EveryMalformedInputNamesItsLine) {
  struct BadCase {
    const char* name;
    const char* text;
    const char* line;    // the "line N" tag the message must carry
    const char* phrase;  // the diagnostic it must contain
  };
  const BadCase cases[] = {
      {"bad header", "taskgraph v2\n", "line 1", "header"},
      {"empty file", "", "line 1", "truncated file"},
      {"file ends mid-tasks", "taskgraph v1\ntasks 2\ntask a 1 1.0\n",
       "line 4", "truncated file"},
      {"file ends before edges",
       "taskgraph v1\ntasks 1\ntask a 1 1.0\n", "line 4",
       "truncated file"},
      {"negative task count", "taskgraph v1\ntasks -1\n", "line 2",
       "negative task count"},
      {"trailing tokens on a record", "taskgraph v1\ntasks 1 junk\n",
       "line 2", "trailing tokens"},
      {"duplicate task id",
       "taskgraph v1\ntasks 2\ntask a 1 1.0\ntask a 1 1.0\nedges 0\n",
       "line 4", "duplicate task id 'a'"},
      {"negative execution time",
       "taskgraph v1\ntasks 1\ntask a 1 -1.0\nedges 0\n", "line 3",
       "must be positive"},
      {"zero execution time",
       "taskgraph v1\ntasks 1\ntask a 1 0\nedges 0\n", "line 3",
       "must be positive"},
      {"truncated profile",
       "taskgraph v1\ntasks 1\ntask a 3 1.0 2.0\nedges 0\n", "line 3",
       "truncated profile"},
      {"zero-length profile",
       "taskgraph v1\ntasks 1\ntask a 0\nedges 0\n", "line 3",
       "profile length"},
      {"malformed edge endpoints",
       "taskgraph v1\ntasks 2\ntask a 1 1.0\ntask b 1 1.0\nedges 1\n"
       "edge 0\n",
       "line 6", "malformed edge endpoints"},
      {"dangling edge endpoint",
       "taskgraph v1\ntasks 2\ntask a 1 1.0\ntask b 1 1.0\nedges 1\n"
       "edge 0 5 0\n",
       "line 6", "dangling"},
      {"negative edge endpoint",
       "taskgraph v1\ntasks 2\ntask a 1 1.0\ntask b 1 1.0\nedges 1\n"
       "edge -1 1 0\n",
       "line 6", "dangling"},
      {"negative edge volume",
       "taskgraph v1\ntasks 2\ntask a 1 1.0\ntask b 1 1.0\nedges 1\n"
       "edge 0 1 -5\n",
       "line 6", "non-negative"},
      {"self loop",
       "taskgraph v1\ntasks 1\ntask a 1 1.0\nedges 1\nedge 0 0 0\n",
       "line 5", "invalid edge"},
      {"content after the last edge",
       "taskgraph v1\ntasks 1\ntask a 1 1.0\nedges 0\nsurprise\n",
       "line 5", "unexpected content"},
      {"cycle",
       "taskgraph v1\ntasks 2\ntask a 1 1.0\ntask b 1 1.0\nedges 2\n"
       "edge 0 1 0\nedge 1 0 0\n",
       "line 7", "invalid graph"},
  };
  for (const BadCase& bc : cases) {
    SCOPED_TRACE(bc.name);
    const std::string err = read_error(bc.text);
    ASSERT_FALSE(err.empty()) << "input was accepted";
    EXPECT_NE(err.find(bc.line), std::string::npos) << err;
    EXPECT_NE(err.find(bc.phrase), std::string::npos) << err;
  }
}

TEST(GraphIO, BlankLinesAndIndentationAreTolerated) {
  std::stringstream ss(
      "taskgraph v1\n\n  tasks 2\ntask a 1 1.0\n\ntask b 1 2.0\n"
      "edges 1\n  edge 0 1 10\n\n");
  const TaskGraph g = read_text(ss);
  EXPECT_EQ(g.num_tasks(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphIO, RoundTripsEveryWorkloadFamily) {
  // The text format must capture any graph the library can generate.
  std::vector<TaskGraph> graphs;
  {
    TCEParams tp;
    tp.occupied = 8;
    tp.virt = 16;
    tp.max_procs = 4;
    graphs.push_back(make_ccsd_t1(tp));
    graphs.push_back(make_ccsd_t2(tp));
    StrassenParams sp;
    sp.n = 64;
    sp.max_procs = 4;
    graphs.push_back(make_strassen(sp));
    SyntheticParams p;
    p.ccr = 0.7;
    p.max_procs = 4;
    Rng rng(5);
    graphs.push_back(make_synthetic_dag(p, rng));
  }
  for (const TaskGraph& g : graphs) {
    std::stringstream ss;
    write_text(ss, g);
    const TaskGraph h = read_text(ss);
    ASSERT_EQ(h.num_tasks(), g.num_tasks());
    ASSERT_EQ(h.num_edges(), g.num_edges());
    EXPECT_DOUBLE_EQ(h.total_serial_work(), g.total_serial_work());
  }
}

/// Random DAG with irregular names, profile lengths, weights, and fan-out;
/// edges only run from lower to higher ids, so the result is acyclic by
/// construction.
TaskGraph fuzz_graph(Rng& rng) {
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 39));
  TaskGraph g;
  for (std::size_t t = 0; t < n; ++t) {
    std::string name = "n" + std::to_string(t);
    const int decorations = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < decorations; ++i)
      name += static_cast<char>('a' + rng.uniform_int(0, 25));
    const std::size_t len =
        1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
    std::vector<double> times(len);
    for (double& v : times) v = rng.uniform(1e-3, 1e3);
    g.add_task(std::move(name), ExecutionProfile(std::move(times)));
  }
  const double density = rng.uniform(0.0, 0.5);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(density)) {
        const double vol = rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.0, 1e9);
        g.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(j), vol);
      }
  return g;
}

TEST(GraphIO, FuzzedGraphsRoundTripExactly) {
  // write_text uses setprecision(17), so every double must survive the
  // trip bit-for-bit: names, profile tables, edge endpoints, and volumes.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 0x9e37u);
    const TaskGraph g = fuzz_graph(rng);
    std::stringstream ss;
    write_text(ss, g);
    const TaskGraph h = read_text(ss);
    ASSERT_EQ(h.num_tasks(), g.num_tasks());
    ASSERT_EQ(h.num_edges(), g.num_edges());
    for (TaskId t : g.task_ids()) {
      ASSERT_EQ(h.task(t).name, g.task(t).name);
      ASSERT_EQ(h.task(t).profile.table(), g.task(t).profile.table());
      ASSERT_EQ(h.in_degree(t), g.in_degree(t));
      ASSERT_EQ(h.out_degree(t), g.out_degree(t));
    }
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const EdgeId id = static_cast<EdgeId>(e);
      ASSERT_EQ(h.edge(id).src, g.edge(id).src);
      ASSERT_EQ(h.edge(id).dst, g.edge(id).dst);
      ASSERT_EQ(h.edge(id).volume_bytes, g.edge(id).volume_bytes);
    }
    // A second trip must be a fixed point: identical text both times.
    std::stringstream again;
    write_text(again, h);
    std::stringstream first;
    write_text(first, g);
    ASSERT_EQ(again.str(), first.str());
  }
}

TEST(GraphIO, DotContainsTasksAndEdges) {
  const TaskGraph g = test::chain(2, 5.0, 4, 2e6);
  const std::string dot = to_dot(g, "chain");
  EXPECT_NE(dot.find("digraph chain"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("2.00MB"), std::string::npos);
  EXPECT_NE(dot.find("5.00s"), std::string::npos);
}

TEST(GraphIO, DotOmitsZeroVolumeLabels) {
  const TaskGraph g = test::chain(2, 5.0, 4, 0.0);
  const std::string dot = to_dot(g);
  EXPECT_EQ(dot.find("MB"), std::string::npos);
}

}  // namespace
}  // namespace locmps
