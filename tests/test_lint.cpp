// Fixture-driven tests for locmps-lint (tools/lint/lint_core.*).
//
// Each known-bad fixture under tests/lint_fixtures/ must trip exactly its
// rule (right count, right lines, no collateral findings from the other
// rules), the clean fixture must trip nothing, and the LINT-ALLOW fixture
// must be fully suppressed. Fixtures are linted under a synthetic src/
// path so every decision-path rule is armed regardless of where the test
// binary runs.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint_core.hpp"

namespace {

using locmps::lint::Finding;
using locmps::lint::Options;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lints fixture \p name as if it lived at src/<name>, arming all rules.
std::vector<Finding> lint_fixture(const std::string& name) {
  const std::string as_path = "src/" + name;
  return locmps::lint::lint_source(as_path, read_fixture(name),
                                   locmps::lint::options_for(as_path));
}

std::vector<int> lines_of(const std::vector<Finding>& fs) {
  std::vector<int> out;
  for (const Finding& f : fs) out.push_back(f.line);
  return out;
}

void expect_only_rule(const std::vector<Finding>& fs,
                      const std::string& rule, std::size_t count) {
  EXPECT_EQ(fs.size(), count);
  for (const Finding& f : fs)
    EXPECT_EQ(f.rule, rule) << locmps::lint::format(f);
}

TEST(Lint, UnorderedIterationFixture) {
  const auto fs = lint_fixture("unordered_iteration.cpp");
  expect_only_rule(fs, "unordered-iteration", 2);
  EXPECT_EQ(lines_of(fs), (std::vector<int>{12, 14}));
}

TEST(Lint, NondetSourceFixture) {
  const auto fs = lint_fixture("nondet_source.cpp");
  expect_only_rule(fs, "nondet-source", 5);
}

TEST(Lint, FloatSortFixture) {
  const auto fs = lint_fixture("float_sort.cpp");
  expect_only_rule(fs, "float-sort", 1);
  EXPECT_EQ(fs[0].line, 6);
}

TEST(Lint, FloatEqFixture) {
  const auto fs = lint_fixture("float_eq.cpp");
  expect_only_rule(fs, "float-eq", 2);
}

TEST(Lint, IncludeHygieneFixture) {
  const auto fs = lint_fixture("include_hygiene.hpp");
  expect_only_rule(fs, "include-hygiene", 2);
}

TEST(Lint, RawMutexFixture) {
  const auto fs = lint_fixture("raw_mutex.cpp");
  expect_only_rule(fs, "raw-mutex", 3);
}

TEST(Lint, CleanFixtureHasNoFindings) {
  const auto fs = lint_fixture("clean.cpp");
  EXPECT_TRUE(fs.empty()) << locmps::lint::format(fs.front());
}

TEST(Lint, LintAllowSuppressesBothPositions) {
  // suppressed.cpp holds one same-line and one preceding-line pragma over
  // real violations; with the pragmas honored nothing must surface.
  const auto fs = lint_fixture("suppressed.cpp");
  EXPECT_TRUE(fs.empty()) << locmps::lint::format(fs.front());
}

TEST(Lint, SuppressionIsRuleSpecific) {
  // A pragma for the wrong rule must not silence the finding.
  const std::string bad =
      "bool f(double a, double b) {\n"
      "  return a == b;  // LINT-ALLOW(nondet-source)\n"
      "}\n";
  const auto fs = locmps::lint::lint_source("src/x.cpp", bad,
                                            locmps::lint::options_for(
                                                "src/x.cpp"));
  expect_only_rule(fs, "float-eq", 1);
}

TEST(Lint, OptionsForPathPolicy) {
  // tests/ may compare floats exactly and read wall clocks.
  const Options t = locmps::lint::options_for("tests/test_x.cpp");
  EXPECT_FALSE(t.check_float_eq);
  EXPECT_FALSE(t.check_nondet);
  EXPECT_FALSE(t.check_unordered_iter);  // not a decision path
  // src/ arms everything...
  const Options s = locmps::lint::options_for("src/schedulers/x.cpp");
  EXPECT_TRUE(s.check_float_eq);
  EXPECT_TRUE(s.check_nondet);
  EXPECT_TRUE(s.check_unordered_iter);
  EXPECT_TRUE(s.check_raw_sync);
  // ...except the annotations header, which wraps the raw primitives.
  EXPECT_FALSE(
      locmps::lint::options_for("src/util/annotations.hpp").check_raw_sync);
  // The deliberately-bad fixtures are skipped entirely by the driver.
  EXPECT_TRUE(locmps::lint::skip_path("tests/lint_fixtures/clean.cpp"));
  EXPECT_FALSE(locmps::lint::skip_path("src/schedulers/loc_mps.cpp"));
}

TEST(Lint, SeededViolationIsCaught) {
  // The CI gate's premise: introducing a fresh violation into a decision
  // path fails the lint (the workflow seeds exactly this line).
  const std::string seeded =
      "#include <unordered_map>\n"
      "int tie(const std::unordered_map<int,int>& m) {\n"
      "  int k = 0;\n"
      "  for (const auto& kv : m) k = kv.first;\n"
      "  return k;\n"
      "}\n";
  const auto fs = locmps::lint::lint_source(
      "src/schedulers/seeded.cpp", seeded,
      locmps::lint::options_for("src/schedulers/seeded.cpp"));
  expect_only_rule(fs, "unordered-iteration", 1);
  EXPECT_EQ(fs[0].line, 4);
}

TEST(Lint, RuleCatalogue) {
  const std::vector<std::string> rules = locmps::lint::rule_names();
  const std::set<std::string> got(rules.begin(), rules.end());
  const std::set<std::string> want{"unordered-iteration", "nondet-source",
                                   "float-sort", "float-eq",
                                   "include-hygiene", "raw-mutex"};
  EXPECT_EQ(got, want);
}

TEST(Lint, FormatIsFileLineRuleMessage) {
  const Finding f{"src/a.cpp", 12, "float-eq", "exact =="};
  EXPECT_EQ(locmps::lint::format(f), "src/a.cpp:12: [float-eq] exact ==");
}

}  // namespace
