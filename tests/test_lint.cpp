// Fixture-driven tests for locmps-lint (tools/lint/).
//
// Each known-bad fixture under tests/lint_fixtures/ must trip exactly its
// rule (right count, right lines, no collateral findings from the other
// rules), the clean fixture must trip nothing, and the LINT-ALLOW fixture
// must be fully suppressed. Fixtures are linted under a synthetic src/
// path so every decision-path rule is armed regardless of where the test
// binary runs. The dependency passes (dep_graph.hpp) are exercised over
// in-memory SourceSets assembled from the deps/ fixture tree, and the CLI
// driver (driver.hpp) is run in-process against scratch trees so exit
// codes and output formats are pinned without shelling out.

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dep_graph.hpp"
#include "driver.hpp"
#include "lint_core.hpp"

namespace {

using locmps::lint::DepGraph;
using locmps::lint::Finding;
using locmps::lint::LayerPolicy;
using locmps::lint::Options;
using locmps::lint::SourceSet;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lints fixture \p name as if it lived at src/<name>, arming all rules.
std::vector<Finding> lint_fixture(const std::string& name) {
  const std::string as_path = "src/" + name;
  return locmps::lint::lint_source(as_path, read_fixture(name),
                                   locmps::lint::options_for(as_path));
}

std::vector<int> lines_of(const std::vector<Finding>& fs) {
  std::vector<int> out;
  for (const Finding& f : fs) out.push_back(f.line);
  return out;
}

void expect_only_rule(const std::vector<Finding>& fs,
                      const std::string& rule, std::size_t count) {
  EXPECT_EQ(fs.size(), count);
  for (const Finding& f : fs)
    EXPECT_EQ(f.rule, rule) << locmps::lint::format(f);
}

TEST(Lint, UnorderedIterationFixture) {
  const auto fs = lint_fixture("unordered_iteration.cpp");
  expect_only_rule(fs, "unordered-iteration", 2);
  EXPECT_EQ(lines_of(fs), (std::vector<int>{12, 14}));
}

TEST(Lint, NondetSourceFixture) {
  const auto fs = lint_fixture("nondet_source.cpp");
  expect_only_rule(fs, "nondet-source", 5);
}

TEST(Lint, FloatSortFixture) {
  const auto fs = lint_fixture("float_sort.cpp");
  expect_only_rule(fs, "float-sort", 1);
  EXPECT_EQ(fs[0].line, 6);
}

TEST(Lint, FloatEqFixture) {
  const auto fs = lint_fixture("float_eq.cpp");
  expect_only_rule(fs, "float-eq", 2);
}

TEST(Lint, IncludeHygieneFixture) {
  const auto fs = lint_fixture("include_hygiene.hpp");
  expect_only_rule(fs, "include-hygiene", 2);
}

TEST(Lint, RawMutexFixture) {
  const auto fs = lint_fixture("raw_mutex.cpp");
  expect_only_rule(fs, "raw-mutex", 3);
}

TEST(Lint, AliasUnorderedFixture) {
  // The hash container hides behind `using` and a typedef-of-the-alias;
  // the symbol table must resolve the chain to flag both iterations.
  const auto fs = lint_fixture("alias_unordered.cpp");
  expect_only_rule(fs, "unordered-iteration", 2);
  EXPECT_EQ(lines_of(fs), (std::vector<int>{13, 18}));
}

TEST(Lint, MemberUnorderedFixture) {
  // The container is a private member declared after its use; the
  // membership tests in the same class must stay clean.
  const auto fs = lint_fixture("member_unordered.cpp");
  expect_only_rule(fs, "unordered-iteration", 1);
  EXPECT_EQ(fs[0].line, 17);
}

TEST(Lint, DigestTaintFixture) {
  // Hash-order-derived values into emit(), add() on a sink variable, an
  // Event fluent chain, and a sort key; the collect-keys-then-sort fix
  // in the same function must not trip the rule.
  const auto fs = lint_fixture("digest_taint.cpp");
  expect_only_rule(fs, "digest-taint", 4);
  EXPECT_EQ(lines_of(fs), (std::vector<int>{26, 32, 33, 36}));
}

TEST(Lint, CleanFixtureHasNoFindings) {
  const auto fs = lint_fixture("clean.cpp");
  EXPECT_TRUE(fs.empty()) << locmps::lint::format(fs.front());
}

TEST(Lint, LintAllowSuppressesBothPositions) {
  // suppressed.cpp holds one same-line and one preceding-line pragma over
  // real violations; with the pragmas honored nothing must surface.
  const auto fs = lint_fixture("suppressed.cpp");
  EXPECT_TRUE(fs.empty()) << locmps::lint::format(fs.front());
}

TEST(Lint, SuppressionIsRuleSpecific) {
  // A pragma for the wrong rule must not silence the finding.
  const std::string bad =
      "bool f(double a, double b) {\n"
      "  return a == b;  // LINT-ALLOW(nondet-source)\n"
      "}\n";
  const auto fs = locmps::lint::lint_source("src/x.cpp", bad,
                                            locmps::lint::options_for(
                                                "src/x.cpp"));
  expect_only_rule(fs, "float-eq", 1);
}

TEST(Lint, OptionsForPathPolicy) {
  // tests/ may compare floats exactly and read wall clocks.
  const Options t = locmps::lint::options_for("tests/test_x.cpp");
  EXPECT_FALSE(t.check_float_eq);
  EXPECT_FALSE(t.check_nondet);
  EXPECT_FALSE(t.check_unordered_iter);  // not a decision path
  // src/ arms everything...
  const Options s = locmps::lint::options_for("src/schedulers/x.cpp");
  EXPECT_TRUE(s.check_float_eq);
  EXPECT_TRUE(s.check_nondet);
  EXPECT_TRUE(s.check_unordered_iter);
  EXPECT_TRUE(s.check_raw_sync);
  // ...except the annotations header, which wraps the raw primitives.
  EXPECT_FALSE(
      locmps::lint::options_for("src/util/annotations.hpp").check_raw_sync);
  // The deliberately-bad fixtures are skipped entirely by the driver.
  EXPECT_TRUE(locmps::lint::skip_path("tests/lint_fixtures/clean.cpp"));
  EXPECT_FALSE(locmps::lint::skip_path("src/schedulers/loc_mps.cpp"));
}

TEST(Lint, SeededViolationIsCaught) {
  // The CI gate's premise: introducing a fresh violation into a decision
  // path fails the lint (the workflow seeds exactly this line).
  const std::string seeded =
      "#include <unordered_map>\n"
      "int tie(const std::unordered_map<int,int>& m) {\n"
      "  int k = 0;\n"
      "  for (const auto& kv : m) k = kv.first;\n"
      "  return k;\n"
      "}\n";
  const auto fs = locmps::lint::lint_source(
      "src/schedulers/seeded.cpp", seeded,
      locmps::lint::options_for("src/schedulers/seeded.cpp"));
  expect_only_rule(fs, "unordered-iteration", 1);
  EXPECT_EQ(fs[0].line, 4);
}

TEST(Lint, RuleCatalogue) {
  const std::vector<std::string> rules = locmps::lint::rule_names();
  const std::set<std::string> got(rules.begin(), rules.end());
  const std::set<std::string> want{
      "unordered-iteration", "nondet-source", "float-sort",
      "float-eq",            "include-hygiene", "raw-mutex",
      "digest-taint",        "layer-violation", "include-cycle"};
  EXPECT_EQ(got, want);
}

TEST(Lint, FormatIsFileLineRuleMessage) {
  const Finding f{"src/a.cpp", 12, "float-eq", "exact =="};
  EXPECT_EQ(locmps::lint::format(f), "src/a.cpp:12: [float-eq] exact ==");
}

// ---------------------------------------------------------------------------
// Dependency passes (dep_graph.hpp) over the deps/ fixture tree
// ---------------------------------------------------------------------------

/// Assembles an in-memory SourceSet from files of the deps/ fixture tree,
/// keyed by their repo-like "src/<module>/<file>" paths.
SourceSet deps_sources(const std::vector<std::string>& names) {
  SourceSet src;
  src.roots = {"src"};
  for (const std::string& n : names)
    src.files["src/" + n] = read_fixture("deps/src/" + n);
  return src;
}

LayerPolicy deps_policy() {
  LayerPolicy p;
  std::string err;
  EXPECT_TRUE(locmps::lint::parse_layers(read_fixture("deps/layers.txt"),
                                         p, err))
      << err;
  return p;
}

TEST(LintDeps, ModuleOf) {
  EXPECT_EQ(locmps::lint::module_of("src/graph/transform.hpp"), "graph");
  EXPECT_EQ(locmps::lint::module_of("src/version.hpp"), "src");
  EXPECT_EQ(locmps::lint::module_of("seeded/src/schedulers/x.cpp"),
            "schedulers");
  EXPECT_EQ(locmps::lint::module_of("tools/lint/driver.cpp"), "tools");
  EXPECT_EQ(locmps::lint::module_of("bench/fig10.cpp"), "bench");
}

TEST(LintDeps, ParseLayersErrors) {
  LayerPolicy p;
  std::string err;
  EXPECT_FALSE(locmps::lint::parse_layers("layer a\nlayer a\n", p, err));
  EXPECT_NE(err.find("more than one layer"), std::string::npos) << err;
  EXPECT_FALSE(locmps::lint::parse_layers("tier a\n", p, err));
  EXPECT_NE(err.find("unknown keyword"), std::string::npos) << err;
  EXPECT_FALSE(locmps::lint::parse_layers("open a\nlayer a\n", p, err));
  EXPECT_NE(err.find("declared in a layer first"), std::string::npos) << err;
  EXPECT_FALSE(locmps::lint::parse_layers("# only comments\n", p, err));
}

TEST(LintDeps, CleanMultiModuleTree) {
  const SourceSet src = deps_sources(
      {"util/strings.hpp", "graph/graph.hpp", "sched/plan.hpp"});
  const DepGraph g = locmps::lint::build_dep_graph(src);
  EXPECT_EQ(g.edges.size(), 3u);  // graph->util, sched->graph, sched->util
  EXPECT_TRUE(locmps::lint::check_layers(g, deps_policy()).empty());
  EXPECT_TRUE(locmps::lint::find_cycles(g).empty());
}

TEST(LintDeps, UpEdgeLayerViolation) {
  const SourceSet src = deps_sources(
      {"util/strings.hpp", "graph/graph.hpp", "util/uplink.hpp"});
  const DepGraph g = locmps::lint::build_dep_graph(src);
  const auto fs = locmps::lint::check_layers(g, deps_policy());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "layer-violation");
  EXPECT_EQ(fs[0].file, "src/util/uplink.hpp");
  EXPECT_NE(fs[0].message.find("upward"), std::string::npos)
      << fs[0].message;
  EXPECT_TRUE(locmps::lint::find_cycles(g).empty());
}

TEST(LintDeps, TwoFileIncludeCycle) {
  const SourceSet src =
      deps_sources({"sched/cycle_a.hpp", "sched/cycle_b.hpp"});
  const DepGraph g = locmps::lint::build_dep_graph(src);
  EXPECT_TRUE(locmps::lint::check_layers(g, deps_policy()).empty());
  const auto fs = locmps::lint::find_cycles(g);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "include-cycle");
  EXPECT_EQ(fs[0].file, "src/sched/cycle_a.hpp");  // smallest member
  EXPECT_NE(fs[0].message.find("src/sched/cycle_a.hpp -> "
                               "src/sched/cycle_b.hpp -> "
                               "src/sched/cycle_a.hpp"),
            std::string::npos)
      << fs[0].message;
}

TEST(LintDeps, InlineAllowSuppressesLayerViolation) {
  SourceSet src = deps_sources({"util/strings.hpp", "graph/graph.hpp"});
  src.files["src/util/uplink.hpp"] =
      "#pragma once\n"
      "#include \"graph/graph.hpp\"  // LINT-ALLOW(layer-violation)\n";
  const DepGraph g = locmps::lint::build_dep_graph(src);
  EXPECT_TRUE(locmps::lint::check_layers(g, deps_policy()).empty());
}

TEST(LintDeps, DotOutput) {
  const SourceSet src = deps_sources(
      {"util/strings.hpp", "graph/graph.hpp", "sched/plan.hpp"});
  const DepGraph g = locmps::lint::build_dep_graph(src);
  const std::string dot = locmps::lint::to_dot(g, deps_policy());
  EXPECT_NE(dot.find("digraph locmps_modules"), std::string::npos);
  EXPECT_NE(dot.find("\"graph\" -> \"util\" [label=\"1\"]"),
            std::string::npos)
      << dot;
  EXPECT_NE(dot.find("\"sched\" -> \"graph\" [label=\"1\"]"),
            std::string::npos);
  EXPECT_NE(dot.find("rankdir=BT"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CLI driver (driver.hpp): exit codes and output formats, in-process
// ---------------------------------------------------------------------------

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = locmps::lint::run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

/// Writes a scratch source tree under the test's working directory (the
/// name must not contain "build" or "lint_fixtures" — the driver skips
/// those) and returns its root.
std::string make_tree(const std::string& name,
                      const std::map<std::string, std::string>& files) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path("locmps_cli_scratch") / name;
  fs::remove_all(root);
  for (const auto& [rel, text] : files) {
    const fs::path p = root / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << text;
  }
  return root.generic_string();
}

constexpr const char* kSeededUnordered =
    "#include <unordered_map>\n"
    "int tie(const std::unordered_map<int,int>& m) {\n"
    "  int k = 0;\n"
    "  for (const auto& kv : m) k = kv.first;\n"
    "  return k;\n"
    "}\n";

TEST(LintCli, HelpAndVersionExitZero) {
  const CliResult help = run({"--help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage: locmps-lint"), std::string::npos);
  const CliResult ver = run({"--version"});
  EXPECT_EQ(ver.code, 0);
  EXPECT_NE(ver.out.find("locmps-lint "), std::string::npos);
}

TEST(LintCli, UnknownFlagExitsTwoWithUsage) {
  const CliResult r = run({"--bogus"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown option --bogus"), std::string::npos);
  EXPECT_NE(r.err.find("usage: locmps-lint"), std::string::npos);
  EXPECT_EQ(run({}).code, 2);                      // no paths
  EXPECT_EQ(run({"--format", "yaml"}).code, 2);    // bad format value
}

TEST(LintCli, ListRulesIncludesDependencyRules) {
  const CliResult r = run({"--list-rules"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("digest-taint"), std::string::npos);
  EXPECT_NE(r.out.find("layer-violation"), std::string::npos);
  EXPECT_NE(r.out.find("include-cycle"), std::string::npos);
}

TEST(LintCli, CleanTreeExitsZero) {
  const std::string root = make_tree(
      "clean", {{"src/util/a.hpp", "#pragma once\ninline int one() "
                                   "{ return 1; }\n"}});
  const CliResult r = run({root});
  EXPECT_EQ(r.code, 0) << r.out << r.err;
  EXPECT_TRUE(r.out.empty());
}

TEST(LintCli, FindingsExitOneInEveryFormat) {
  const std::string root =
      make_tree("seeded", {{"src/schedulers/seeded.cpp", kSeededUnordered}});

  const CliResult text = run({root});
  EXPECT_EQ(text.code, 1);
  EXPECT_NE(text.out.find("[unordered-iteration]"), std::string::npos);

  const CliResult json = run({"--format=json", root});
  EXPECT_EQ(json.code, 1);
  EXPECT_NE(json.out.find("\"tool\": \"locmps-lint\""), std::string::npos);
  EXPECT_NE(json.out.find("\"files_checked\": 1"), std::string::npos);
  EXPECT_NE(json.out.find("\"rule\": \"unordered-iteration\""),
            std::string::npos)
      << json.out;
  EXPECT_NE(json.out.find("\"line\": 4"), std::string::npos);

  const CliResult gh = run({"--format", "github", root});
  EXPECT_EQ(gh.code, 1);
  EXPECT_NE(gh.out.find("::error file="), std::string::npos);
  EXPECT_NE(gh.out.find(",title=unordered-iteration::"), std::string::npos)
      << gh.out;
}

TEST(LintCli, DepsPassReportsCycleAndEmitsDot) {
  const std::string root = make_tree(
      "cycle",
      {{"layers.txt", "layer sched\n"},
       {"src/sched/cycle_a.hpp",
        "#pragma once\n#include \"sched/cycle_b.hpp\"\n"},
       {"src/sched/cycle_b.hpp",
        "#pragma once\n#include \"sched/cycle_a.hpp\"\n"}});
  const CliResult r = run({"--deps", "--layers", root + "/layers.txt",
                           "--deps-dot", "-", root + "/src"});
  EXPECT_EQ(r.code, 1) << r.out << r.err;
  EXPECT_NE(r.out.find("digraph locmps_modules"), std::string::npos);
  EXPECT_NE(r.out.find("[include-cycle]"), std::string::npos) << r.out;
}

TEST(LintCli, DepsRequiresReadableLayersFile) {
  const std::string root = make_tree(
      "nolayers", {{"src/util/a.hpp", "#pragma once\n"}});
  const CliResult r =
      run({"--deps", "--layers", root + "/missing.txt", root + "/src"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("cannot read layers file"), std::string::npos);
}

}  // namespace
