#include "schedulers/loc_mps.hpp"

#include <gtest/gtest.h>

#include "schedule/event_sim.hpp"
#include "schedulers/task_parallel.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

using test::serial;

TEST(LocMPS, SingleSerialTaskStaysNarrow) {
  TaskGraph g;
  g.add_task("a", serial(10.0, 8));
  const Cluster c(8);
  const SchedulerResult r = LocMPSScheduler().schedule(g, c);
  EXPECT_EQ(r.allocation[0], 1u);  // Pbest of a serial task is 1
  EXPECT_DOUBLE_EQ(r.estimated_makespan, 10.0);
}

TEST(LocMPS, WidensScalableTask) {
  TaskGraph g;
  g.add_task("a", test::profile({16.0, 8.0, 6.0, 4.0}));
  const Cluster c(4);
  const SchedulerResult r = LocMPSScheduler().schedule(g, c);
  EXPECT_EQ(r.allocation[0], 4u);
  EXPECT_DOUBLE_EQ(r.estimated_makespan, 4.0);
}

TEST(LocMPS, AllocationCappedByPbest) {
  // Time worsens past 2 processors: never allocate more.
  TaskGraph g;
  g.add_task("a", test::profile({10.0, 6.0, 7.0, 9.0}));
  const Cluster c(4);
  const SchedulerResult r = LocMPSScheduler().schedule(g, c);
  EXPECT_EQ(r.allocation[0], 2u);
}

TEST(LocMPS, EscapesLocalMinimumViaLookAhead) {
  // Paper Fig 3: two independent linear-speedup tasks of 40 and 80 on 4
  // processors. The greedy path stalls at {T1:1, T2:3} (makespan 40); the
  // data-parallel allocation {4, 4} reaches 30.
  test::LinearSpeedup lin;
  TaskGraph g;
  g.add_task("T1", ExecutionProfile(lin, 40.0, 4));
  g.add_task("T2", ExecutionProfile(lin, 80.0, 4));
  const Cluster c(4);
  const SchedulerResult r = LocMPSScheduler().schedule(g, c);
  EXPECT_DOUBLE_EQ(r.estimated_makespan, 30.0);
  EXPECT_EQ(r.allocation, (Allocation{4, 4}));
}

TEST(LocMPS, NoLookAheadStaysInLocalMinimum) {
  // Same instance with look-ahead depth 1: the pure greedy scheme cannot
  // accept the temporary makespan increase and stalls above 30.
  test::LinearSpeedup lin;
  TaskGraph g;
  g.add_task("T1", ExecutionProfile(lin, 40.0, 4));
  g.add_task("T2", ExecutionProfile(lin, 80.0, 4));
  const Cluster c(4);
  LocMPSOptions opt;
  opt.look_ahead_depth = 1;
  const SchedulerResult r = LocMPSScheduler(opt).schedule(g, c);
  EXPECT_GT(r.estimated_makespan, 30.0);
  EXPECT_DOUBLE_EQ(r.estimated_makespan, 40.0);
}

TEST(LocMPS, NeverWorseThanPureTaskParallel) {
  SyntheticParams p;
  p.ccr = 0.1;
  p.max_procs = 8;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const TaskGraph g = make_synthetic_dag(p, rng);
    const Cluster c(8);
    const double mps =
        LocMPSScheduler().schedule(g, c).estimated_makespan;
    const double task =
        TaskParallelScheduler().schedule(g, c).estimated_makespan;
    EXPECT_LE(mps, task + 1e-9) << "seed=" << seed;
  }
}

TEST(LocMPS, EstimateMatchesEventSimulation) {
  // The scheduler's internal makespan must agree with an independent
  // re-execution of the plan under the same platform model.
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 8;
  Rng rng(11);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(8);
  const SchedulerResult r = LocMPSScheduler().schedule(g, c);
  const SimResult sim =
      simulate_execution(g, r.schedule, CommModel(c));
  EXPECT_NEAR(sim.makespan, r.estimated_makespan,
              1e-6 * r.estimated_makespan);
}

TEST(LocMPS, ProducesValidSchedules) {
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 8;
  Rng rng(13);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(8);
  const CommModel m(c);
  const SchedulerResult r = LocMPSScheduler().schedule(g, c);
  EXPECT_EQ(r.schedule.validate(g, m), "");
  for (TaskId t : g.task_ids()) {
    EXPECT_GE(r.allocation[t], 1u);
    EXPECT_LE(r.allocation[t], 8u);
    EXPECT_EQ(r.schedule.at(t).np(), r.allocation[t]);
  }
}

TEST(LocMPS, RespectsMaxLocbsCallBudget) {
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 16;
  Rng rng(17);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(16);
  LocMPSOptions opt;
  opt.max_locbs_calls = 25;
  const SchedulerResult r = LocMPSScheduler(opt).schedule(g, c);
  EXPECT_LE(r.iterations, 25u + 2u);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
}

TEST(LocMPS, NamesReflectOptions) {
  EXPECT_EQ(LocMPSScheduler().name(), "LoC-MPS");
  LocMPSOptions nbf;
  nbf.locbs.backfill = false;
  EXPECT_EQ(LocMPSScheduler(nbf).name(), "LoC-MPS-nbf");
  LocMPSOptions blind;
  blind.locbs.comm_blind = true;
  EXPECT_EQ(LocMPSScheduler(blind).name(), "iCASLB");
}

TEST(LocMPS, CandidateFractionWidensThePool) {
  // With the pool at 100% the concurrency-ratio tie-break always applies;
  // both settings must still produce valid schedules and the paper's
  // default must not be worse than pure greedy on the Fig 2 instance.
  TaskGraph g;
  const TaskId t1 = g.add_task("T1", test::profile({10, 7, 5}));
  const TaskId t2 = g.add_task("T2", test::profile({8, 6, 5}));
  const TaskId t3 = g.add_task("T3", test::profile({9, 7, 5}));
  const TaskId t4 = g.add_task("T4", test::profile({7, 5, 4}));
  g.add_edge(t2, t1, 0.0);
  g.add_edge(t2, t3, 0.0);
  g.add_edge(t2, t4, 0.0);
  const Cluster c(3);
  LocMPSOptions wide;
  wide.candidate_top_fraction = 1.0;
  const double pooled =
      LocMPSScheduler(wide).schedule(g, c).estimated_makespan;
  const double standard = LocMPSScheduler().schedule(g, c).estimated_makespan;
  EXPECT_DOUBLE_EQ(pooled, 15.0);  // cr(T2)=0 wins immediately
  EXPECT_LE(standard, pooled + 1e-9);
}

TEST(LocMPS, LiteralMarkSemanticsRemainAvailable) {
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 8;
  Rng rng(19);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(8);
  LocMPSOptions literal;
  literal.marks_bind_lookahead = false;
  const SchedulerResult r = LocMPSScheduler(literal).schedule(g, c);
  EXPECT_EQ(r.schedule.validate(g, CommModel(c)), "");
}

TEST(LocMPS, WidensCommEdgesWhenCommDominates) {
  // A cheap computation chain with a huge transfer: LoC-MPS must widen
  // both endpoints to raise the aggregate bandwidth (Section III-D), since
  // with multiple children the data cannot all stay local.
  TaskGraph g;
  test::LinearSpeedup lin;
  const TaskId a = g.add_task("a", ExecutionProfile(lin, 2.0, 4));
  const TaskId b = g.add_task("b", ExecutionProfile(lin, 2.0, 4));
  const TaskId cld = g.add_task("c", ExecutionProfile(lin, 2.0, 4));
  g.add_edge(a, b, 50.0 * kFastEthernetBytesPerSec);
  g.add_edge(a, cld, 50.0 * kFastEthernetBytesPerSec);
  const Cluster c(4);
  const SchedulerResult r = LocMPSScheduler().schedule(g, c);
  // Pure task-parallel would pay ~50 s of redistribution on at least one
  // edge; widening + locality must do much better.
  EXPECT_LT(r.estimated_makespan, 56.0);
}

}  // namespace
}  // namespace locmps
