#include "schedulers/locbs.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.hpp"
#include "util/rng.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

using test::serial;

TEST(LoCBS, SchedulesIndependentTasksInParallel) {
  TaskGraph g;
  g.add_task("a", serial(10.0, 4));
  g.add_task("b", serial(10.0, 4));
  const CommModel m{Cluster(4)};
  const LocBSResult r = locbs(g, {1, 1}, m);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_TRUE(r.schedule.at(0).procs.disjoint(r.schedule.at(1).procs));
}

TEST(LoCBS, SerializesWhenProcessorsShort) {
  TaskGraph g;
  g.add_task("a", serial(10.0, 4));
  g.add_task("b", serial(10.0, 4));
  const CommModel m{Cluster(1)};
  const LocBSResult r = locbs(g, {1, 1}, m);
  EXPECT_DOUBLE_EQ(r.makespan, 20.0);
  // The wait is resource-induced: a pseudo-edge must record it.
  EXPECT_EQ(r.dag.num_pseudo_edges(), 1u);
}

TEST(LoCBS, RespectsAllocationSizes) {
  TaskGraph g;
  g.add_task("a", test::profile({10.0, 5.0, 4.0, 3.0}));
  const CommModel m{Cluster(4)};
  const LocBSResult r = locbs(g, {3}, m);
  EXPECT_EQ(r.schedule.at(0).np(), 3u);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
}

TEST(LoCBS, ValidatesArguments) {
  TaskGraph g;
  g.add_task("a", serial(1.0, 4));
  const CommModel m{Cluster(2)};
  EXPECT_THROW(locbs(g, {}, m), std::invalid_argument);       // wrong size
  EXPECT_THROW(locbs(g, {0}, m), std::invalid_argument);      // np < 1
  EXPECT_THROW(locbs(g, {3}, m), std::invalid_argument);      // np > P
}

TEST(LoCBS, PrefersDataLocalProcessors) {
  // Child should land on its parent's processor to avoid the transfer.
  const TaskGraph g = test::chain(2, 5.0, 2, 1e6);
  const CommModel m{Cluster(2)};
  const LocBSResult r = locbs(g, {1, 1}, m);
  EXPECT_EQ(r.schedule.at(1).procs, r.schedule.at(0).procs);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);  // no transfer charged
}

TEST(LoCBS, LocalityOffIgnoresPlacementReuse) {
  const TaskGraph g = test::chain(2, 5.0, 2, 1e6);
  const CommModel m{Cluster(2, 100.0)};
  LocBSOptions opt;
  opt.locality = false;
  const LocBSResult r = locbs(g, {1, 1}, m, opt);
  // Full volume is charged regardless of placement: 1e6 / 100 B/s = 1e4 s.
  EXPECT_NEAR(r.makespan, 5.0 + 1e4 + 5.0, 1e-6);
}

TEST(LoCBS, CommBlindChargesNothing) {
  const TaskGraph g = test::chain(2, 5.0, 2, 1e9);
  const CommModel m{Cluster(2, 100.0)};
  LocBSOptions opt;
  opt.comm_blind = true;
  const LocBSResult r = locbs(g, {1, 1}, m, opt);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
}

TEST(LoCBS, BackfillFillsHoles) {
  // Wide task first creates a hole on other processors that a small,
  // independent task can backfill.
  TaskGraph g;
  const TaskId big = g.add_task("big", serial(10.0, 4));
  const TaskId dep = g.add_task("dep", serial(10.0, 4));
  const TaskId tiny = g.add_task("tiny", serial(2.0, 4));
  g.add_edge(big, dep, 0.0);
  const CommModel m{Cluster(2)};
  // big and dep chain on the critical path; tiny has lower priority and
  // must fit into the second processor's idle time.
  const LocBSResult r = locbs(g, {1, 1, 1}, m);
  EXPECT_DOUBLE_EQ(r.makespan, 20.0);
  EXPECT_LE(r.schedule.at(tiny).finish, 20.0);
}

TEST(LoCBS, NoBackfillStillValid) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 8;
  Rng rng(3);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(8);
  const CommModel m(c);
  LocBSOptions opt;
  opt.backfill = false;
  const LocBSResult r = locbs(g, Allocation(g.num_tasks(), 2), m, opt);
  EXPECT_EQ(r.schedule.validate(g, m), "");
}

TEST(LoCBS, PriorityOrderFollowsBottomLevel) {
  // Two ready tasks; the one heading the longer remaining path goes first
  // and therefore starts at 0 on the single processor.
  TaskGraph g;
  const TaskId small = g.add_task("small", serial(1.0, 2));
  const TaskId head = g.add_task("head", serial(1.0, 2));
  const TaskId tail = g.add_task("tail", serial(50.0, 2));
  g.add_edge(head, tail, 0.0);
  const CommModel m{Cluster(1)};
  const LocBSResult r = locbs(g, {1, 1, 1}, m);
  EXPECT_DOUBLE_EQ(r.schedule.at(head).start, 0.0);
  EXPECT_GE(r.schedule.at(small).start, 1.0);
}

TEST(LoCBS, LatencyPenalizesRemotePlacement) {
  // With a large startup latency, placing the child away from its parent
  // costs latency + transfer, so locality keeps it in place and the chain
  // still finishes at 10.
  const TaskGraph g = test::chain(2, 5.0, 2, 1000.0);
  const CommModel m{Cluster(2, 1e9, true, 50.0)};
  const LocBSResult r = locbs(g, {1, 1}, m);
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_EQ(r.schedule.at(1).procs, r.schedule.at(0).procs);
  // Forcing a remote transfer pays the startup cost.
  LocBSOptions opt;
  opt.locality = false;
  const LocBSResult r2 = locbs(g, {1, 1}, m, opt);
  EXPECT_GT(r2.makespan, 60.0 - 1e-6);
}

TEST(LoCBS, NoOverlapOccupiesProcessorsDuringTransfer) {
  // chain a->b with a transfer; on a no-overlap platform the destination
  // is held from transfer start (busy_from < start).
  const TaskGraph g = test::chain(2, 5.0, 2, 1000.0);
  const Cluster c(2, 100.0, false);
  const CommModel m(c);
  LocBSOptions opt;
  opt.locality = false;  // force a real transfer
  const LocBSResult r = locbs(g, {1, 1}, m, opt);
  const Placement& pb = r.schedule.at(1);
  EXPECT_LT(pb.busy_from, pb.start);
  EXPECT_NEAR(pb.start - pb.busy_from, 10.0, 1e-9);
  EXPECT_EQ(r.schedule.validate(g, m), "");
}

TEST(LoCBS, DagEdgeTimesReflectRealizedTransfers) {
  const TaskGraph g = test::chain(2, 5.0, 2, 1000.0);
  const CommModel m{Cluster(2, 100.0)};
  const LocBSResult r = locbs(g, {1, 1}, m);
  // Locality keeps the data in place: realized edge time 0.
  EXPECT_DOUBLE_EQ(r.dag.edge_time(0), 0.0);
  LocBSOptions opt;
  opt.locality = false;
  const LocBSResult r2 = locbs(g, {1, 1}, m, opt);
  EXPECT_DOUBLE_EQ(r2.dag.edge_time(0), 10.0);
}

TEST(LoCBS, ParallelEdgesBothCharged) {
  // Two edges between the same pair (e.g. two tensors flowing a -> b):
  // both volumes count.
  TaskGraph g;
  const TaskId a = g.add_task("a", serial(5.0, 2));
  const TaskId b = g.add_task("b", serial(5.0, 2));
  g.add_edge(a, b, 1000.0);
  g.add_edge(a, b, 500.0);
  LocBSOptions opt;
  opt.locality = false;  // force both transfers
  // Overlap platform: the two transfers run in parallel streams, so the
  // arrival is governed by the larger one (10 s).
  const CommModel ov{Cluster(2, 100.0, true)};
  const LocBSResult r = locbs(g, {1, 1}, ov, opt);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0 + 10.0 + 5.0);
  EXPECT_EQ(r.schedule.validate(g, ov), "");
  // No-overlap platform: transfers serialize (10 + 5 s).
  const CommModel nov{Cluster(2, 100.0, false)};
  const LocBSResult r2 = locbs(g, {1, 1}, nov, opt);
  EXPECT_DOUBLE_EQ(r2.makespan, 5.0 + 15.0 + 5.0);
  EXPECT_EQ(r2.schedule.validate(g, nov), "");
}

TEST(LoCBS, SingleProcessorChainOfPseudoEdges) {
  // n independent tasks on one processor serialize completely; every wait
  // is resource-induced and recorded.
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task("t", serial(2.0, 1));
  const CommModel m{Cluster(1)};
  const LocBSResult r = locbs(g, {1, 1, 1, 1}, m);
  EXPECT_DOUBLE_EQ(r.makespan, 8.0);
  EXPECT_EQ(r.dag.num_pseudo_edges(), 3u);
  EXPECT_DOUBLE_EQ(r.dag.critical_path().length, 8.0);
}

TEST(LoCBS, FullyFrozenPrefixReproducesSchedule) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 4;
  Rng rng(23);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const CommModel m{Cluster(4)};
  const Allocation np(g.num_tasks(), 2);
  const LocBSResult base = locbs(g, np, m);
  FixedPrefix fixed;
  fixed.frozen.assign(g.num_tasks(), 1);
  fixed.placements = &base.schedule;
  const LocBSResult again = locbs(g, np, m, {}, &fixed);
  EXPECT_DOUBLE_EQ(again.makespan, base.makespan);
  for (TaskId t : g.task_ids())
    EXPECT_DOUBLE_EQ(again.schedule.at(t).start, base.schedule.at(t).start);
}

TEST(LoCBS, EqualPriorityBreaksTowardsLowerId) {
  TaskGraph g;
  g.add_task("x", serial(3.0, 1));
  g.add_task("y", serial(3.0, 1));  // identical priority
  const CommModel m{Cluster(1)};
  const LocBSResult r = locbs(g, {1, 1}, m);
  EXPECT_DOUBLE_EQ(r.schedule.at(0).start, 0.0);
  EXPECT_DOUBLE_EQ(r.schedule.at(1).start, 3.0);
}

// Property sweep: LoCBS output is always a valid schedule whose makespan
// matches the schedule's, across allocations, platforms and options.
class LoCBSProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::size_t, bool, bool, bool>> {};

TEST_P(LoCBSProperty, ProducesValidSchedules) {
  const auto [seed, P, backfill, locality, overlap] = GetParam();
  SyntheticParams p;
  p.ccr = 0.8;
  p.max_procs = P;
  p.min_tasks = 8;
  p.max_tasks = 24;
  Rng rng(seed);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(P, kFastEthernetBytesPerSec, overlap);
  const CommModel m(c);
  LocBSOptions opt;
  opt.backfill = backfill;
  opt.locality = locality;
  Rng arng(seed ^ 0xfeed);
  Allocation np(g.num_tasks());
  for (auto& a : np)
    a = static_cast<std::size_t>(arng.uniform_int(1, static_cast<int>(P)));
  const LocBSResult r = locbs(g, np, m, opt);
  EXPECT_TRUE(r.schedule.complete());
  EXPECT_NEAR(r.makespan, r.schedule.makespan(), 1e-12);
  EXPECT_EQ(r.schedule.validate(g, m), "") << "P=" << P;
  for (TaskId t : g.task_ids()) EXPECT_EQ(r.schedule.at(t).np(), np[t]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoCBSProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(2, 5, 16),
                       ::testing::Bool(),   // backfill
                       ::testing::Bool(),   // locality
                       ::testing::Bool())); // overlap

}  // namespace
}  // namespace locmps
