#include "schedule/metrics.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "schedulers/registry.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

TEST(Metrics, HandComputedSchedule) {
  // Two serial tasks of 5 s in sequence on one of two processors, 1000 B
  // moved between disjoint processors at 100 B/s.
  const TaskGraph g = test::chain(2, 5.0, 2, 1000.0);
  const CommModel comm{Cluster(2, 100.0)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 15, 15, 20, ProcessorSet::of(2, {1}));
  const ScheduleMetrics m = compute_metrics(g, s, comm);
  EXPECT_DOUBLE_EQ(m.makespan, 20.0);
  EXPECT_DOUBLE_EQ(m.compute_area, 10.0);
  EXPECT_DOUBLE_EQ(m.idle_area, 30.0);
  EXPECT_DOUBLE_EQ(m.utilization, 0.25);
  EXPECT_DOUBLE_EQ(m.total_edge_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(m.remote_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(m.locality_fraction, 0.0);
  EXPECT_DOUBLE_EQ(m.transfer_time_sum, 10.0);
  EXPECT_EQ(m.widened_tasks, 0u);
  EXPECT_DOUBLE_EQ(m.mean_np, 1.0);
  EXPECT_EQ(m.max_np, 1u);
  // Bounds: CP = 10 (serial tasks), area = 10/2 = 5; gap = 20/10.
  EXPECT_DOUBLE_EQ(m.critical_path_bound, 10.0);
  EXPECT_DOUBLE_EQ(m.area_bound, 5.0);
  EXPECT_DOUBLE_EQ(m.optimality_gap, 2.0);
}

TEST(Metrics, PerfectLocalityDetected) {
  const TaskGraph g = test::chain(2, 5.0, 2, 1000.0);
  const CommModel comm{Cluster(2, 100.0)};
  Schedule s(2, 2);
  const auto p0 = ProcessorSet::of(2, {0});
  s.place(0, 0, 0, 5, p0);
  s.place(1, 5, 5, 10, p0);
  const ScheduleMetrics m = compute_metrics(g, s, comm);
  EXPECT_DOUBLE_EQ(m.locality_fraction, 1.0);
  EXPECT_DOUBLE_EQ(m.remote_bytes, 0.0);
  EXPECT_DOUBLE_EQ(m.optimality_gap, 1.0);  // provably optimal here
}

TEST(Metrics, NoDataMeansFullLocality) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel comm{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 5, 5, 10, ProcessorSet::of(2, {0}));
  EXPECT_DOUBLE_EQ(compute_metrics(g, s, comm).locality_fraction, 1.0);
}

TEST(Metrics, RejectsIncompleteSchedule) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel comm{Cluster(2)};
  EXPECT_THROW(compute_metrics(g, Schedule(2, 2), comm),
               std::invalid_argument);
}

TEST(Metrics, LowerBoundsAreConsistent) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 8;
  Rng rng(61);
  const TaskGraph g = make_synthetic_dag(p, rng);
  // CP bound shrinks (weakly) with P; area bound scales as 1/P.
  EXPECT_GE(critical_path_lower_bound(g, 2),
            critical_path_lower_bound(g, 8) - 1e-9);
  EXPECT_NEAR(area_lower_bound(g, 2), 4.0 * area_lower_bound(g, 8), 1e-9);
}

TEST(Metrics, EverySchemeIsAboveBothBounds) {
  SyntheticParams p;
  p.ccr = 0.5;
  p.max_procs = 8;
  Rng rng(62);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(8);
  const CommModel comm(c);
  for (const auto& scheme : {"loc-mps", "tsas", "twol", "data"}) {
    const SchemeRun run = evaluate_scheme(scheme, g, c);
    const ScheduleMetrics m = compute_metrics(g, run.schedule, comm);
    EXPECT_GE(m.optimality_gap, 1.0 - 1e-9) << scheme;
  }
}

TEST(Metrics, LocMPSHasBetterLocalityThanBlindScheme) {
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 8;
  Rng rng(63);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster c(8);
  const CommModel comm(c);
  const auto mps = compute_metrics(
      g, evaluate_scheme("loc-mps", g, c).schedule, comm);
  const auto blind = compute_metrics(
      g, evaluate_scheme("icaslb", g, c).schedule, comm);
  EXPECT_GE(mps.locality_fraction, blind.locality_fraction - 0.05);
}

TEST(Metrics, ToStringMentionsKeyNumbers) {
  const TaskGraph g = test::chain(2, 5.0, 2, 0.0);
  const CommModel comm{Cluster(2)};
  Schedule s(2, 2);
  s.place(0, 0, 0, 5, ProcessorSet::of(2, {0}));
  s.place(1, 5, 5, 10, ProcessorSet::of(2, {0}));
  const std::string txt = to_string(compute_metrics(g, s, comm));
  EXPECT_NE(txt.find("makespan"), std::string::npos);
  EXPECT_NE(txt.find("utilization"), std::string::npos);
  EXPECT_NE(txt.find("locality"), std::string::npos);
}

}  // namespace
}  // namespace locmps
