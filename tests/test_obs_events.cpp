#include "obs/events.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"

namespace locmps {
namespace {

using test::Json;
using test::parse_json;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

/// Evaluates \p scheme with a JSONL sink attached and parses every line.
struct TracedRun {
  SchemeRun run;
  std::vector<Json> events;
};

TracedRun run_traced(const std::string& scheme, const TaskGraph& g,
                     const Cluster& cluster) {
  std::ostringstream buf;
  obs::JsonlSink sink(buf);
  TracedRun out;
  out.run = evaluate_scheme(scheme, g, cluster, {}, &sink);
  for (const std::string& line : lines_of(buf.str()))
    out.events.push_back(parse_json(line));
  return out;
}

TaskGraph small_graph(std::size_t tasks = 12, double ccr = 0.5,
                      std::size_t max_procs = 4, unsigned seed = 42) {
  SyntheticParams p;
  p.ccr = ccr;
  p.min_tasks = tasks;
  p.max_tasks = tasks;
  p.max_procs = max_procs;
  Rng rng(seed);
  return make_synthetic_dag(p, rng);
}

TEST(ObsEvents, JsonlSinkWritesOneParsableObjectPerLine) {
  std::ostringstream buf;
  obs::JsonlSink sink(buf);
  sink.emit(obs::Event("alpha").with("flag", true).with("n", 42));
  sink.emit(obs::Event("beta").with("x", 1.5).with("s", "hi"));
  const auto lines = lines_of(buf.str());
  ASSERT_EQ(lines.size(), 2u);

  const Json a = parse_json(lines[0]);
  EXPECT_EQ(a.str_or("ev"), "alpha");
  ASSERT_TRUE(a.has("t"));
  EXPECT_TRUE(a.get("t")->is(Json::Kind::Number));
  EXPECT_GE(a.num_or("t", -1.0), 0.0);
  ASSERT_TRUE(a.has("flag"));
  EXPECT_TRUE(a.get("flag")->is(Json::Kind::Bool));
  EXPECT_TRUE(a.get("flag")->boolean);
  EXPECT_DOUBLE_EQ(a.num_or("n", 0.0), 42.0);

  const Json b = parse_json(lines[1]);
  EXPECT_DOUBLE_EQ(b.num_or("x", 0.0), 1.5);
  EXPECT_EQ(b.str_or("s"), "hi");
  // "t" is monotonic across emits on the same sink.
  EXPECT_GE(b.num_or("t", -1.0), a.num_or("t", 0.0));
}

TEST(ObsEvents, JsonlSinkEscapesAwkwardStrings) {
  std::ostringstream buf;
  obs::JsonlSink sink(buf);
  const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
  sink.emit(obs::Event("esc").with("s", nasty));
  const auto lines = lines_of(buf.str());
  ASSERT_EQ(lines.size(), 1u);
  const Json e = parse_json(lines[0]);  // throws if escaping is broken
  EXPECT_EQ(e.str_or("s"), nasty);      // and must round-trip exactly
}

TEST(ObsEvents, JsonlSinkWritesNullForNonFiniteNumbers) {
  std::ostringstream buf;
  obs::JsonlSink sink(buf);
  sink.emit(obs::Event("nf")
                .with("nan", std::numeric_limits<double>::quiet_NaN())
                .with("inf", std::numeric_limits<double>::infinity())
                .with("ok", 2.0));
  const Json e = parse_json(lines_of(buf.str()).at(0));
  ASSERT_TRUE(e.has("nan"));
  EXPECT_TRUE(e.get("nan")->is(Json::Kind::Null));
  ASSERT_TRUE(e.has("inf"));
  EXPECT_TRUE(e.get("inf")->is(Json::Kind::Null));
  EXPECT_DOUBLE_EQ(e.num_or("ok", 0.0), 2.0);
}

TEST(ObsEvents, LocMpsRunEmitsOnlyDocumentedEventsWithValidEnvelope) {
  const TaskGraph g = small_graph();
  const TracedRun tr = run_traced("loc-mps", g, Cluster(4));
  ASSERT_FALSE(tr.events.empty());

  const std::vector<std::string> taxonomy{
      "locmps.begin",  "locmps.lookahead_begin", "locmps.refine",
      "locmps.lookahead", "locmps.done",         "locbs.place",
      "locbs.decision", "sim.transfer"};
  std::size_t begins = 0, dones = 0;
  double prev_t = 0.0;
  for (const Json& e : tr.events) {
    ASSERT_TRUE(e.is(Json::Kind::Object));
    // Envelope: "ev" is a string from the documented taxonomy, "t" is a
    // non-negative, non-decreasing number.
    ASSERT_TRUE(e.has("ev"));
    ASSERT_TRUE(e.get("ev")->is(Json::Kind::String));
    const std::string ev = e.str_or("ev");
    EXPECT_NE(std::find(taxonomy.begin(), taxonomy.end(), ev),
              taxonomy.end())
        << "undocumented event " << ev;
    ASSERT_TRUE(e.has("t"));
    ASSERT_TRUE(e.get("t")->is(Json::Kind::Number));
    const double t = e.num_or("t", -1.0);
    EXPECT_GE(t, prev_t);
    prev_t = t;
    if (ev == "locmps.begin") ++begins;
    if (ev == "locmps.done") ++dones;
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(dones, 1u);
}

TEST(ObsEvents, PlacementEventsCarryConsistentFields) {
  const TaskGraph g = small_graph();
  const TracedRun tr = run_traced("loc-mps", g, Cluster(4));
  std::size_t places = 0;
  for (const Json& e : tr.events) {
    if (e.str_or("ev") != "locbs.place") continue;
    ++places;
    const double task = e.num_or("task", -1.0);
    EXPECT_GE(task, 0.0);
    EXPECT_LT(task, static_cast<double>(g.num_tasks()));
    EXPECT_GE(e.num_or("np", 0.0), 1.0);
    EXPECT_LE(e.num_or("busy_from", 0.0), e.num_or("start", -1.0));
    EXPECT_LE(e.num_or("start", 0.0), e.num_or("finish", -1.0));
    EXPECT_GE(e.num_or("holes_scanned", -1.0), 0.0);
    EXPECT_GE(e.num_or("local_bytes", -1.0), 0.0);
    EXPECT_GE(e.num_or("remote_bytes", -1.0), 0.0);
    ASSERT_TRUE(e.has("backfill"));
    EXPECT_TRUE(e.get("backfill")->is(Json::Kind::Bool));
    EXPECT_FALSE(e.str_or("procs").empty());
  }
  // Every LoCBS call places every task.
  const double calls = tr.run.counters.counter("locmps.locbs_calls");
  EXPECT_GT(calls, 0.0);
  EXPECT_EQ(places, static_cast<std::size_t>(calls) * g.num_tasks());
  EXPECT_DOUBLE_EQ(tr.run.counters.counter("locbs.tasks_placed"),
                   static_cast<double>(places));
}

// The acceptance test of the decision trace: replaying the per-iteration
// refinement events must reconstruct the exact final allocation the
// scheduler returned. Replay rules (docs/observability.md):
//  * locmps.begin          -> best = [1,1,...,1] (one slot per task)
//  * locmps.lookahead_begin -> np = best (look-ahead works on a copy)
//  * locmps.refine          -> apply the widening to np (absolute values:
//    np_new or src_np_new/dst_np_new); "adopted":true -> best = np
TEST(ObsEvents, DecisionTraceReconstructsFinalAllocation) {
  const TaskGraph g = small_graph(16, 0.5, 8, 7);
  const TracedRun tr = run_traced("loc-mps", g, Cluster(8));

  std::vector<std::size_t> best, np;
  std::size_t refines = 0, adoptions = 0;
  double traced_final = -1.0;
  for (const Json& e : tr.events) {
    const std::string ev = e.str_or("ev");
    if (ev == "locmps.begin") {
      best.assign(static_cast<std::size_t>(e.num_or("tasks", 0.0)), 1);
      np = best;
    } else if (ev == "locmps.lookahead_begin") {
      np = best;
    } else if (ev == "locmps.refine") {
      ++refines;
      ASSERT_FALSE(np.empty());
      if (e.str_or("kind") == "task") {
        const auto t = static_cast<std::size_t>(e.num_or("task", -1.0));
        ASSERT_LT(t, np.size());
        np[t] = static_cast<std::size_t>(e.num_or("np_new", 0.0));
      } else {
        const auto src = static_cast<std::size_t>(e.num_or("src", -1.0));
        const auto dst = static_cast<std::size_t>(e.num_or("dst", -1.0));
        ASSERT_LT(src, np.size());
        ASSERT_LT(dst, np.size());
        np[src] = static_cast<std::size_t>(e.num_or("src_np_new", 0.0));
        np[dst] = static_cast<std::size_t>(e.num_or("dst_np_new", 0.0));
      }
      const Json* adopted = e.get("adopted");
      ASSERT_NE(adopted, nullptr);
      if (adopted->boolean) {
        best = np;
        ++adoptions;
      }
    } else if (ev == "locmps.done") {
      traced_final = e.num_or("makespan", -1.0);
    }
  }

  // The run must be non-trivial for this test to mean anything.
  ASSERT_GT(refines, 0u);
  ASSERT_GT(adoptions, 0u);
  ASSERT_EQ(best.size(), tr.run.allocation.size());
  for (std::size_t t = 0; t < best.size(); ++t)
    EXPECT_EQ(best[t], tr.run.allocation[t]) << "task " << t;
  EXPECT_NEAR(traced_final, tr.run.estimated, 1e-9 * tr.run.estimated);
}

TEST(ObsEvents, CountersAgreeWithTheTrace) {
  const TaskGraph g = small_graph();
  const TracedRun tr = run_traced("loc-mps", g, Cluster(4));
  std::size_t refines = 0, lookaheads = 0, transfers = 0;
  double done_calls = -1.0;
  for (const Json& e : tr.events) {
    const std::string ev = e.str_or("ev");
    if (ev == "locmps.refine") ++refines;
    if (ev == "locmps.lookahead") ++lookaheads;
    if (ev == "sim.transfer") ++transfers;
    if (ev == "locmps.done") done_calls = e.num_or("locbs_calls", -1.0);
  }
  const obs::MetricsSnapshot& c = tr.run.counters;
  EXPECT_DOUBLE_EQ(c.counter("locmps.locbs_calls"), done_calls);
  EXPECT_DOUBLE_EQ(c.counter("locmps.widened_tasks") +
                       c.counter("locmps.widened_edges"),
                   static_cast<double>(refines));
  EXPECT_DOUBLE_EQ(c.counter("locmps.rounds"),
                   static_cast<double>(lookaheads));
  EXPECT_DOUBLE_EQ(c.counter("locmps.commits") + c.counter("locmps.reverts"),
                   static_cast<double>(lookaheads));
  EXPECT_DOUBLE_EQ(c.counter("sim.transfers"),
                   static_cast<double>(transfers));
  EXPECT_EQ(tr.run.iterations,
            static_cast<std::size_t>(c.counter("scheduler.iterations")));
  // Phase timers covering the plan and the execution must be present.
  EXPECT_NE(c.timer("locmps.run"), nullptr);
  EXPECT_NE(c.timer("locbs.pass"), nullptr);
  EXPECT_NE(c.timer("sim.execute"), nullptr);
}

TEST(ObsEvents, SchemesWithoutInstrumentationStillProduceCounters) {
  const TaskGraph g = small_graph();
  const TracedRun tr = run_traced("data", g, Cluster(4));
  // DATA never calls LoCBS, so the trace only has executor events; the
  // per-run registry still carries the harness-level counters.
  EXPECT_GT(tr.run.counters.counter("scheduler.iterations"), 0.0);
  EXPECT_GE(tr.run.counters.counter("scheduler.plan_seconds"), 0.0);
  EXPECT_GT(tr.run.counters.counter("sim.makespan"), 0.0);
  for (const Json& e : tr.events)
    EXPECT_EQ(e.str_or("ev").rfind("sim.", 0), 0u);
}

}  // namespace
}  // namespace locmps
