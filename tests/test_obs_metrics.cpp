#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

namespace locmps::obs {
namespace {

TEST(ObsMetrics, CountersAccumulateAndCreateAtZero) {
  MetricsRegistry m;
  EXPECT_DOUBLE_EQ(m.value("a"), 0.0);
  EXPECT_DOUBLE_EQ(m.value("a", -1.0), -1.0);  // absent -> fallback
  m.add("a");
  m.add("a", 2.5);
  EXPECT_DOUBLE_EQ(m.value("a"), 3.5);
  EXPECT_DOUBLE_EQ(m.value("a", -1.0), 3.5);
}

TEST(ObsMetrics, SetOverwritesLikeAGauge) {
  MetricsRegistry m;
  m.add("g", 10.0);
  m.set("g", 4.0);
  EXPECT_DOUBLE_EQ(m.value("g"), 4.0);
  m.set("fresh", 7.0);
  EXPECT_DOUBLE_EQ(m.value("fresh"), 7.0);
}

TEST(ObsMetrics, CellPtrIsStableAcrossInserts) {
  MetricsRegistry m;
  double* cell = m.cell_ptr("hot");
  // Insert names on both sides of "hot"; the slot must not move.
  for (int i = 0; i < 100; ++i) {
    m.add("a" + std::to_string(i));
    m.add("z" + std::to_string(i));
  }
  EXPECT_EQ(cell, m.cell_ptr("hot"));
  *cell += 5.0;
  ++*cell;
  EXPECT_DOUBLE_EQ(m.value("hot"), 6.0);
}

TEST(ObsMetrics, ResetClearsEverythingAndRestartsEpoch) {
  MetricsRegistry m;
  m.add("c", 3.0);
  m.sample("s", 1.0);
  { ScopedTimer t(&m, "ph"); }
  m.reset();
  const MetricsSnapshot snap = m.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.timers.empty());
  EXPECT_TRUE(snap.series.empty());
  EXPECT_GE(m.now(), 0.0);
}

TEST(ObsMetrics, SnapshotIsSortedAndIndependent) {
  MetricsRegistry m;
  m.add("zz", 2.0);
  m.add("aa", 1.0);
  MetricsSnapshot snap = m.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "aa");
  EXPECT_EQ(snap.counters[1].first, "zz");
  EXPECT_DOUBLE_EQ(snap.counter("aa"), 1.0);
  EXPECT_DOUBLE_EQ(snap.counter("absent", -2.0), -2.0);
  // The snapshot is a value copy: mutating the registry must not move it.
  m.add("aa", 100.0);
  m.reset();
  EXPECT_DOUBLE_EQ(snap.counter("aa"), 1.0);
}

TEST(ObsMetrics, ScopedTimerRecordsOrderedSpans) {
  MetricsRegistry m;
  { ScopedTimer t(&m, "phase"); }
  { ScopedTimer t(&m, "phase"); }
  const MetricsSnapshot snap = m.snapshot();
  const TimerStats* ph = snap.timer("phase");
  ASSERT_NE(ph, nullptr);
  EXPECT_EQ(ph->count, 2u);
  ASSERT_EQ(ph->spans.size(), 2u);
  EXPECT_GE(ph->total_s, 0.0);
  for (const TimerSpan& s : ph->spans) {
    EXPECT_GE(s.begin_s, 0.0);
    EXPECT_GE(s.end_s, s.begin_s);
  }
  // Spans are recorded in completion order.
  EXPECT_LE(ph->spans[0].end_s, ph->spans[1].end_s);
  EXPECT_EQ(snap.timer("absent"), nullptr);
}

TEST(ObsMetrics, ScopedTimersNest) {
  MetricsRegistry m;
  {
    ScopedTimer outer(&m, "outer");
    {
      ScopedTimer inner(&m, "inner");
    }
  }
  const MetricsSnapshot snap = m.snapshot();
  const TimerStats* outer = snap.timer("outer");
  const TimerStats* inner = snap.timer("inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_EQ(outer->spans.size(), 1u);
  ASSERT_EQ(inner->spans.size(), 1u);
  // The inner span is contained in the outer one, and the inner
  // accumulated time cannot exceed the outer.
  EXPECT_LE(outer->spans[0].begin_s, inner->spans[0].begin_s);
  EXPECT_GE(outer->spans[0].end_s, inner->spans[0].end_s);
  EXPECT_LE(inner->total_s, outer->total_s + 1e-12);
}

TEST(ObsMetrics, ScopedTimerStopIsIdempotent) {
  MetricsRegistry m;
  {
    ScopedTimer t(&m, "once");
    t.stop();
    t.stop();  // second stop and the destructor must not add spans
  }
  const MetricsSnapshot snap = m.snapshot();
  const TimerStats* once = snap.timer("once");
  ASSERT_NE(once, nullptr);
  EXPECT_EQ(once->count, 1u);
}

TEST(ObsMetrics, NullRegistryTimerIsANoOp) {
  ScopedTimer t(nullptr, "ignored");
  t.stop();  // must not crash, must not dereference anything
}

TEST(ObsMetrics, SampleSeriesKeepTimeOrderedPoints) {
  MetricsRegistry m;
  m.sample("ms", 10.0);
  m.sample("ms", 8.0);
  m.sample("ms", 9.0);
  const MetricsSnapshot snap = m.snapshot();
  const SeriesStats* ms = snap.find_series("ms");
  ASSERT_NE(ms, nullptr);
  ASSERT_EQ(ms->points.size(), 3u);
  EXPECT_DOUBLE_EQ(ms->points[0].value, 10.0);
  EXPECT_DOUBLE_EQ(ms->points[1].value, 8.0);
  EXPECT_DOUBLE_EQ(ms->points[2].value, 9.0);
  for (std::size_t i = 1; i < ms->points.size(); ++i)
    EXPECT_LE(ms->points[i - 1].t_s, ms->points[i].t_s);
  EXPECT_EQ(snap.find_series("absent"), nullptr);
}

TEST(ObsMetrics, TimePhaseHelperReturnsAWorkingTimer) {
  MetricsRegistry m;
  { auto t = m.time_phase("helper"); }
  const MetricsSnapshot snap = m.snapshot();
  const TimerStats* h = snap.timer("helper");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
}

TEST(ObsMetrics, NowIsMonotonic) {
  MetricsRegistry m;
  const double a = m.now();
  const double b = m.now();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
}  // namespace locmps::obs
