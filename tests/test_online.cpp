#include "schedulers/online.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "schedule/event_sim.hpp"
#include "test_util.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

namespace locmps {
namespace {

TaskGraph noisy_workload(std::uint64_t seed) {
  SyntheticParams p;
  p.ccr = 0.3;
  p.max_procs = 8;
  p.min_tasks = 12;
  p.max_tasks = 24;
  Rng rng(seed);
  return make_synthetic_dag(p, rng);
}

TEST(FixedPrefix, LocbsReproducesFrozenPlacements) {
  const TaskGraph g = test::chain(3, 5.0, 2, 0.0);
  const CommModel comm{Cluster(2)};
  const LocBSResult full = locbs(g, {1, 1, 1}, comm);
  FixedPrefix fixed;
  fixed.frozen = {1, 1, 0};
  fixed.placements = &full.schedule;
  const LocBSResult partial = locbs(g, {1, 1, 1}, comm, {}, &fixed);
  for (TaskId t = 0; t < 2; ++t) {
    EXPECT_DOUBLE_EQ(partial.schedule.at(t).start, full.schedule.at(t).start);
    EXPECT_EQ(partial.schedule.at(t).procs, full.schedule.at(t).procs);
  }
  EXPECT_EQ(partial.schedule.validate(g, comm), "");
}

TEST(FixedPrefix, FrozenWindowsBlockTheirProcessors) {
  // Freeze one long task on proc 0; a new independent task must avoid it.
  TaskGraph g;
  g.add_task("long", test::serial(10.0, 2));
  g.add_task("free", test::serial(2.0, 2));
  const CommModel comm{Cluster(2)};
  Schedule committed(2, 2);
  committed.place(0, 0, 0, 10, ProcessorSet::of(2, {0}));
  FixedPrefix fixed;
  fixed.frozen = {1, 0};
  fixed.placements = &committed;
  const LocBSResult r = locbs(g, {1, 1}, comm, {}, &fixed);
  EXPECT_DOUBLE_EQ(r.schedule.at(0).finish, 10.0);
  EXPECT_TRUE(r.schedule.at(1).procs.contains(1));
  EXPECT_DOUBLE_EQ(r.schedule.at(1).start, 0.0);
}

TEST(FixedPrefix, NotBeforeKeepsNewTasksOutOfThePast) {
  TaskGraph g;
  g.add_task("a", test::serial(2.0, 2));
  const CommModel comm{Cluster(2)};
  Schedule committed(1, 2);
  FixedPrefix fixed;
  fixed.frozen = {0};
  fixed.placements = &committed;
  fixed.not_before = 7.5;
  const LocBSResult r = locbs(g, {1}, comm, {}, &fixed);
  EXPECT_GE(r.schedule.at(0).busy_from, 7.5);
}

TEST(FixedPrefix, RejectsUnplacedFrozenTask) {
  TaskGraph g;
  g.add_task("a", test::serial(2.0, 2));
  const CommModel comm{Cluster(2)};
  Schedule empty(1, 2);
  FixedPrefix fixed;
  fixed.frozen = {1};
  fixed.placements = &empty;
  EXPECT_THROW(locbs(g, {1}, comm, {}, &fixed), std::invalid_argument);
}

TEST(FixedPrefix, LocMPSKeepsFrozenAllocations) {
  const TaskGraph g = noisy_workload(3);
  const Cluster c(8);
  const CommModel comm(c);
  const LocMPSScheduler planner;
  const SchedulerResult base = planner.schedule(g, c);
  // Freeze the first half of the tasks (by start time).
  std::vector<TaskId> by_start(g.num_tasks());
  for (TaskId t = 0; t < g.num_tasks(); ++t) by_start[t] = t;
  std::sort(by_start.begin(), by_start.end(), [&](TaskId a, TaskId b) {
    return base.schedule.at(a).start < base.schedule.at(b).start;
  });
  FixedPrefix fixed;
  fixed.frozen.assign(g.num_tasks(), 0);
  fixed.placements = &base.schedule;
  double latest = 0.0;
  for (std::size_t i = 0; i < by_start.size() / 2; ++i) {
    fixed.frozen[by_start[i]] = 1;
    latest = std::max(latest, base.schedule.at(by_start[i]).start);
  }
  // Frozen prefix must be start-time closed (no unfrozen task may have
  // started earlier); freezing by start order guarantees it.
  fixed.not_before = latest;
  const SchedulerResult replanned = planner.schedule_with_fixed(g, c, fixed);
  EXPECT_EQ(replanned.schedule.validate(g, comm), "");
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!fixed.frozen[t]) continue;
    EXPECT_DOUBLE_EQ(replanned.schedule.at(t).start,
                     base.schedule.at(t).start);
    EXPECT_EQ(replanned.allocation[t], base.schedule.at(t).np());
  }
}

TEST(Online, NoNoiseMeansNoReplans) {
  const TaskGraph g = noisy_workload(5);
  OnlineOptions opt;
  opt.runtime_noise = 0.0;
  const OnlineResult r = run_online(g, Cluster(8), opt);
  EXPECT_EQ(r.replans, 0u);
  EXPECT_NEAR(r.makespan, r.static_makespan, 1e-9);
}

TEST(Online, DeviationsTriggerReplans) {
  const TaskGraph g = noisy_workload(7);
  OnlineOptions opt;
  opt.runtime_noise = 0.4;
  opt.replan_threshold = 0.10;
  const OnlineResult r = run_online(g, Cluster(8), opt);
  EXPECT_GT(r.replans, 0u);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_TRUE(r.executed.complete());
}

TEST(Online, RespectsMaxReplans) {
  const TaskGraph g = noisy_workload(9);
  OnlineOptions opt;
  opt.runtime_noise = 0.5;
  opt.replan_threshold = 0.01;  // everything deviates
  opt.max_replans = 3;
  const OnlineResult r = run_online(g, Cluster(8), opt);
  EXPECT_LE(r.replans, 3u);
}

/// Captures event names only — enough to see the cap-hit trip fire.
class NameSink final : public obs::EventSink {
 public:
  void emit(const obs::Event& e) override { names.push_back(e.name()); }
  std::vector<std::string> names;
};

TEST(Online, SurfacesTheReplanCapTrip) {
  const TaskGraph g = noisy_workload(9);
  obs::MetricsRegistry met;
  NameSink sink;
  obs::ObsContext ctx{&met, &sink};
  OnlineOptions opt;
  opt.runtime_noise = 0.5;
  opt.replan_threshold = 0.01;  // everything deviates
  opt.max_replans = 1;          // ...so a tiny cap must trip
  opt.obs = &ctx;
  const OnlineResult r = run_online(g, Cluster(8), opt);
  EXPECT_TRUE(r.cap_hit);
  EXPECT_EQ(r.replans, 1u);
  EXPECT_EQ(met.snapshot().counter("online.replan_cap_hit"), 1.0);
  EXPECT_EQ(std::count(sink.names.begin(), sink.names.end(),
                       "online.replan_cap_hit"),
            1);

  // A generous cap that is never reached must not raise the flag.
  obs::MetricsRegistry met2;
  opt.max_replans = 1000;
  opt.obs = nullptr;
  const OnlineResult ok = run_online(g, Cluster(8), opt);
  EXPECT_FALSE(ok.cap_hit);
}

class OnlineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineProperty, ReplanningNeverLosesMuchToStatic) {
  // The online executor replans with full knowledge of the committed
  // prefix; across seeds it should at worst roughly match the static plan
  // and usually improve on it.
  const TaskGraph g = noisy_workload(GetParam());
  OnlineOptions opt;
  opt.runtime_noise = 0.4;
  opt.seed = GetParam() * 977;
  const OnlineResult r = run_online(g, Cluster(8), opt);
  EXPECT_LE(r.makespan, r.static_makespan * 1.10)
      << "seed=" << GetParam() << " replans=" << r.replans;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(Online, WorksOnApplicationGraph) {
  TCEParams tp;
  tp.occupied = 8;
  tp.virt = 32;
  tp.max_procs = 8;
  const TaskGraph g = make_ccsd_t1(tp);
  OnlineOptions opt;
  opt.runtime_noise = 0.3;
  const OnlineResult r = run_online(g, Cluster(8, 250e6), opt);
  EXPECT_TRUE(r.executed.complete());
  EXPECT_GT(r.makespan, 0.0);
}

}  // namespace
}  // namespace locmps
