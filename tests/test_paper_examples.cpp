/// Reconstructions of the worked examples in the paper (Figures 1-3),
/// checked end-to-end against the algorithms.

#include <gtest/gtest.h>

#include "schedulers/loc_mps.hpp"
#include "schedulers/locbs.hpp"
#include "test_util.hpp"

namespace locmps {
namespace {

/// Fig 1 / Fig 2 task graph: T2 -> {T1, T3, T4} with the execution-time
/// profile of Fig 2(b).
TaskGraph fig2_graph() {
  TaskGraph g;
  const TaskId t1 = g.add_task("T1", test::profile({10, 7, 5}));
  const TaskId t2 = g.add_task("T2", test::profile({8, 6, 5}));
  const TaskId t3 = g.add_task("T3", test::profile({9, 7, 5}));
  const TaskId t4 = g.add_task("T4", test::profile({7, 5, 4}));
  g.add_edge(t2, t1, 0.0);
  g.add_edge(t2, t3, 0.0);
  g.add_edge(t2, t4, 0.0);
  return g;
}

TEST(PaperExamples, Fig2PureTaskParallelSchedule) {
  // One processor each on P=3: T2 (8), then T1/T3/T4 in parallel.
  const TaskGraph g = fig2_graph();
  const CommModel m{Cluster(3)};
  const LocBSResult r = locbs(g, {1, 1, 1, 1}, m);
  EXPECT_DOUBLE_EQ(r.makespan, 18.0);  // 8 + max(10, 9, 7)
}

TEST(PaperExamples, Fig2GreedyChoiceIsWorse) {
  // Widening T1 (the max-gain task) to 2 procs serializes T3 or T4.
  const TaskGraph g = fig2_graph();
  const CommModel m{Cluster(3)};
  const LocBSResult r = locbs(g, {2, 1, 1, 1}, m);
  // T2=8; T1 on 2 procs [8,15); T3 or T4 must wait.
  EXPECT_GT(r.makespan, 18.0 - 1e-9);
}

TEST(PaperExamples, Fig2BestChoiceReaches15) {
  // The paper's better choice: run T2 on all 3 processors (et=5), then the
  // three independent tasks in parallel: 5 + max(10,9,7) = 15.
  const TaskGraph g = fig2_graph();
  const CommModel m{Cluster(3)};
  const LocBSResult r = locbs(g, {1, 3, 1, 1}, m);
  EXPECT_DOUBLE_EQ(r.makespan, 15.0);
}

TEST(PaperExamples, Fig2LocMPSFindsTheGoodAllocation) {
  // LoC-MPS's concurrency-ratio guard plus look-ahead must reach the
  // paper's makespan of 15 on 3 processors.
  const TaskGraph g = fig2_graph();
  const SchedulerResult r = LocMPSScheduler().schedule(g, Cluster(3));
  EXPECT_DOUBLE_EQ(r.estimated_makespan, 15.0);
}

TEST(PaperExamples, Fig1PseudoEdgeAppearsInScheduleDag) {
  // Fig 1: T1 -> {T2, T3} -> T4 on 4 processors with allocations
  // (4, 3, 2, 4): T2 and T3 cannot run together, so the schedule-DAG gains
  // a pseudo-edge and its critical path becomes 30.
  TaskGraph g;
  const TaskId t1 = g.add_task("T1", test::profile({10, 10, 10, 10}));
  const TaskId t2 = g.add_task("T2", test::profile({7, 7, 7, 7}));
  const TaskId t3 = g.add_task("T3", test::profile({5, 5, 5, 5}));
  const TaskId t4 = g.add_task("T4", test::profile({8, 8, 8, 8}));
  g.add_edge(t1, t2, 0.0);
  g.add_edge(t1, t3, 0.0);
  g.add_edge(t2, t4, 0.0);
  g.add_edge(t3, t4, 0.0);
  const CommModel m{Cluster(4)};
  const LocBSResult r = locbs(g, {4, 3, 2, 4}, m);
  EXPECT_DOUBLE_EQ(r.makespan, 30.0);
  ASSERT_GE(r.dag.num_pseudo_edges(), 1u);
  const CriticalPathInfo cp = r.dag.critical_path();
  EXPECT_DOUBLE_EQ(cp.length, 30.0);
  EXPECT_EQ(cp.tasks.size(), 4u);  // T1, T2, T3, T4 chained
}

TEST(PaperExamples, Fig3LookAheadBeatsGreedy) {
  // Fig 3: two independent tasks, linear speedup, et(T1,1)=40 and
  // et(T2,1)=80 on P=4. Greedy stalls at 40 (T2 on 3); the bounded
  // look-ahead reaches the data-parallel optimum of 30.
  test::LinearSpeedup lin;
  TaskGraph g;
  g.add_task("T1", ExecutionProfile(lin, 40.0, 4));
  g.add_task("T2", ExecutionProfile(lin, 80.0, 4));
  const SchedulerResult r = LocMPSScheduler().schedule(g, Cluster(4));
  EXPECT_DOUBLE_EQ(r.estimated_makespan, 30.0);
  // Fig 3's profile table itself (linear speedup).
  EXPECT_DOUBLE_EQ(g.task(1).profile.time(2), 40.0);
  EXPECT_NEAR(g.task(1).profile.time(3), 26.7, 0.05);
  EXPECT_DOUBLE_EQ(g.task(1).profile.time(4), 20.0);
}

TEST(PaperExamples, Fig3IntermediateStateIsTheLocalMinimum) {
  // The local minimum the paper describes: np = (1, 3) has makespan 40 and
  // no single increment improves it.
  test::LinearSpeedup lin;
  TaskGraph g;
  g.add_task("T1", ExecutionProfile(lin, 40.0, 4));
  g.add_task("T2", ExecutionProfile(lin, 80.0, 4));
  const CommModel m{Cluster(4)};
  EXPECT_DOUBLE_EQ(locbs(g, {1, 3}, m).makespan, 40.0);
  // Both single increments serialize the pair and are strictly worse:
  EXPECT_GT(locbs(g, {2, 3}, m).makespan, 40.0);  // 26.67 + 20
  EXPECT_GT(locbs(g, {1, 4}, m).makespan, 40.0);  // 40 + 20
}

}  // namespace
}  // namespace locmps
