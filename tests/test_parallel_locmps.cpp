/// Determinism-equivalence wall for the parallel speculative LoCBS probes
/// (schedulers/loc_mps.cpp) and the thread pool underneath them.
///
/// The contract under test (docs/parallelism.md): for every workload and
/// every thread count, LoC-MPS produces schedules bit-identical to the
/// sequential reference — same placements (start/finish/processor sets),
/// same makespan, same locbs-call count — and the observability output
/// reconciles too: counters (minus the locmps.parallel.* accounting),
/// sample-series values, and the full decision-event stream are equal.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "schedulers/loc_mps.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/strassen.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

using namespace locmps;
using test::DifferentialChecker;
using test::RunCapture;

namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, ParallelMapVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.parallel_map(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_map(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  ThreadPool pool(4);
  // Every invocation must complete before the rethrow, and the surfaced
  // exception is the lowest failing index — the deterministic choice.
  std::atomic<int> completed{0};
  try {
    pool.parallel_map(64, [&](std::size_t i) {
      ++completed;
      if (i == 7 || i == 3 || i == 50)
        throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "parallel_map should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
  EXPECT_EQ(completed, 64);
}

TEST(ThreadPool, SubmitFutureCarriesResultAndException) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran);
  auto f = pool.submit([] { throw std::logic_error("probe died"); });
  EXPECT_THROW(f.get(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Determinism equivalence
//
// RunCapture, the digest-excluded counter families (locmps.parallel.*,
// incr.*), and the comparison machinery live in tests/test_util.hpp —
// shared with the incremental-replanning oracle (test_incremental.cpp).

RunCapture run_locmps(const TaskGraph& g, const Cluster& cluster,
                      std::size_t threads, bool with_sink,
                      std::size_t max_locbs_calls = 100000,
                      bool incremental = true) {
  LocMPSOptions opt;
  opt.threads = threads;
  opt.max_locbs_calls = max_locbs_calls;
  opt.incremental = incremental;
  return test::run_locmps_capture(g, cluster, opt, with_sink);
}

void expect_identical(const RunCapture& ref, const RunCapture& par,
                      const TaskGraph& g, const std::string& label) {
  DifferentialChecker(g).expect_identical(ref, par, label);
}

/// The seeded workload sweep: synthetic DAGs across CCR regimes, Strassen,
/// and a TCE CCSD T1 instance (scaled to test size).
std::vector<std::pair<std::string, TaskGraph>> sweep_workloads() {
  std::vector<std::pair<std::string, TaskGraph>> ws;
  for (const double ccr : {0.0, 0.5, 2.0}) {
    SyntheticParams p;
    p.ccr = ccr;
    p.max_procs = 16;
    const auto suite =
        make_synthetic_suite(p, 2, 9000 + static_cast<std::uint64_t>(
                                             ccr * 10.0));
    for (std::size_t i = 0; i < suite.size(); ++i)
      ws.emplace_back("synthetic ccr=" + std::to_string(ccr) + " #" +
                          std::to_string(i),
                      suite[i]);
  }
  StrassenParams sp;
  sp.n = 512;
  sp.max_procs = 16;
  ws.emplace_back("strassen 512", make_strassen(sp));
  TCEParams tp;
  tp.occupied = 8;
  tp.virt = 32;
  tp.max_procs = 16;
  ws.emplace_back("ccsd t1 (8,32)", make_ccsd_t1(tp));
  return ws;
}

TEST(ParallelLocMPS, ThreadSweepIsBitIdenticalWithTrace) {
  // Full-fidelity mode (event sink attached): every probe runs for real
  // and the buffered traces are replayed in candidate order.
  const Cluster cluster(16);
  for (const auto& [label, g] : sweep_workloads()) {
    const RunCapture ref = run_locmps(g, cluster, 1, /*with_sink=*/true);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      const RunCapture par = run_locmps(g, cluster, threads, true);
      expect_identical(ref, par, g,
                       label + " @" + std::to_string(threads) + "t");
    }
  }
}

TEST(ParallelLocMPS, MetricsOnlyModeMatchesViaMemo) {
  // Without a sink the speculative path may elide repeated pure
  // evaluations through the allocation-keyed memo; counters and schedules
  // must still be bit-identical to the sequential reference.
  const Cluster cluster(16);
  for (const auto& [label, g] : sweep_workloads()) {
    const RunCapture ref = run_locmps(g, cluster, 1, /*with_sink=*/false);
    for (const std::size_t threads : {4u, 8u}) {
      const RunCapture par = run_locmps(g, cluster, threads, false);
      expect_identical(ref, par, g,
                       label + " memo@" + std::to_string(threads) + "t");
    }
  }
}

TEST(ParallelLocMPS, RepeatedThreadedRunsAreIdentical) {
  // The reduction must also be deterministic run-to-run (no dependence on
  // which probe finished or populated the memo first).
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 16;
  Rng rng(4242);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster cluster(16);
  const RunCapture a = run_locmps(g, cluster, 4, false);
  const RunCapture b = run_locmps(g, cluster, 4, false);
  expect_identical(a, b, g, "repeat@4t");
}

TEST(ParallelLocMPS, BudgetCappedRunsMatchSequential) {
  // Tight budgets force the sequential fallback; the threaded scheduler
  // must honor the cap with the exact sequential behavior.
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 16;
  Rng rng(17);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster cluster(16);
  for (const std::size_t cap : {5u, 25u, 60u}) {
    const RunCapture ref = run_locmps(g, cluster, 1, true, cap);
    EXPECT_LE(ref.result.iterations, cap + 2);
    for (const std::size_t threads : {2u, 8u}) {
      const RunCapture par = run_locmps(g, cluster, threads, true, cap);
      expect_identical(ref, par, g,
                       "budget=" + std::to_string(cap) + " @" +
                           std::to_string(threads) + "t");
    }
  }
}

TEST(ParallelLocMPS, IncrementalModeReconcilesAcrossThreads) {
  // Three-way reconciliation of the execution knobs: the from-scratch
  // sequential oracle, the incremental sequential run, and the
  // incremental threaded runs must be pairwise identical on every
  // workload family (synthetic, Strassen, TCE). This is the cross
  // product the incremental oracle (test_incremental.cpp) and the
  // parallel wall each cover one axis of.
  const Cluster cluster(16);
  std::vector<std::pair<std::string, TaskGraph>> ws;
  {
    SyntheticParams p;
    p.ccr = 0.5;
    p.max_procs = 16;
    Rng rng(31337);
    ws.emplace_back("synthetic ccr=0.5", make_synthetic_dag(p, rng));
  }
  {
    StrassenParams sp;
    sp.n = 512;
    sp.max_procs = 16;
    ws.emplace_back("strassen 512", make_strassen(sp));
  }
  {
    TCEParams tp;
    tp.occupied = 8;
    tp.virt = 32;
    tp.max_procs = 16;
    ws.emplace_back("ccsd t1 (8,32)", make_ccsd_t1(tp));
  }
  for (const auto& [label, g] : ws) {
    const RunCapture oracle =
        run_locmps(g, cluster, 1, /*with_sink=*/false, 100000,
                   /*incremental=*/false);
    const RunCapture incr_seq = run_locmps(g, cluster, 1, false);
    expect_identical(oracle, incr_seq, g, label + " incr@1t");
    for (const std::size_t threads : {2u, 8u}) {
      const RunCapture incr_par = run_locmps(g, cluster, threads, false);
      expect_identical(oracle, incr_par, g,
                       label + " incr@" + std::to_string(threads) + "t");
      expect_identical(incr_seq, incr_par, g,
                       label + " incr 1t-vs-" + std::to_string(threads) +
                           "t");
    }
  }
}

TEST(ParallelLocMPS, ParallelCountersExposeTheFanOut) {
  // A workload with failed look-aheads ramps the speculative fan-out, so
  // a threaded run must account its batches/probes, while the sequential
  // reference reports none of the locmps.parallel.* family.
  SyntheticParams p;
  p.ccr = 1.0;
  p.max_procs = 16;
  Rng rng(4242);
  const TaskGraph g = make_synthetic_dag(p, rng);
  const Cluster cluster(16);
  const RunCapture ref = run_locmps(g, cluster, 1, false);
  // The sequential reference reports none of the fan-out accounting (the
  // incr.* family may appear — incremental replay runs at any threads).
  for (const auto& kv : ref.metrics.counters)
    EXPECT_FALSE(kv.first.rfind("locmps.parallel.", 0) == 0) << kv.first;
  ASSERT_GE(ref.metrics.counter("locmps.reverts"), 2.0)
      << "workload too easy to exercise speculation";

  const RunCapture par = run_locmps(g, cluster, 4, false);
  EXPECT_EQ(par.metrics.counter("locmps.parallel.threads"), 4.0);
  EXPECT_GE(par.metrics.counter("locmps.parallel.batches"), 1.0);
  // Every batch fans out at least two probes, and misspeculated probes
  // (discarded by the reduction) are the price of the speculation.
  EXPECT_GE(par.metrics.counter("locmps.parallel.probes"),
            2.0 * par.metrics.counter("locmps.parallel.batches"));
  EXPECT_GT(par.metrics.counter("locmps.parallel.wall_ms"), 0.0);
}

}  // namespace
