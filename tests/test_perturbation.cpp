#include "faults/perturbation.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "network/comm_model.hpp"
#include "obs/analysis.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "schedule/event_sim.hpp"
#include "test_util.hpp"

namespace locmps {
namespace {

// ---------------------------------------------------------------------------
// PerturbationPlan: validation.

TEST(PerturbationPlan, RejectsMalformedScripts) {
  EXPECT_THROW(PerturbationPlan(2, {{2, 0.0, 1.0, 2.0}}, {}),
               std::invalid_argument);  // proc out of range
  EXPECT_THROW(PerturbationPlan(2, {{0, -1.0, 1.0, 2.0}}, {}),
               std::invalid_argument);  // negative onset
  EXPECT_THROW(PerturbationPlan(2, {{0, 5.0, 5.0, 2.0}}, {}),
               std::invalid_argument);  // window not after onset
  EXPECT_THROW(PerturbationPlan(2, {{0, 0.0, 1.0, 0.5}}, {}),
               std::invalid_argument);  // factor below 1
  EXPECT_THROW(PerturbationPlan(2, {{0, 0.0, 5.0, 2.0}, {0, 4.0, 8.0, 3.0}},
                                {}),
               std::invalid_argument);  // overlapping windows on one proc
  EXPECT_THROW(PerturbationPlan(2, {}, {{5.0, 4.0, 0.5}}),
               std::invalid_argument);  // link window ends before it begins
  EXPECT_THROW(PerturbationPlan(2, {}, {{0.0, 5.0, 0.0}}),
               std::invalid_argument);  // link scale out of (0, 1]
  EXPECT_THROW(PerturbationPlan(2, {}, {{0.0, 5.0, 1.5}}),
               std::invalid_argument);  // link scale out of (0, 1]
  EXPECT_THROW(PerturbationPlan(2, {}, {{0.0, 5.0, 0.5}, {4.0, 8.0, 0.5}}),
               std::invalid_argument);  // overlapping link windows
  EXPECT_THROW(PerturbationPlan(2, {}, {}, {1.0, 0.0}),
               std::invalid_argument);  // non-positive noise factor
}

TEST(PerturbationPlan, BackToBackWindowsAreDisjoint) {
  // Half-open windows: [0, 5) and [5, 10) share only the boundary instant.
  const PerturbationPlan p(1, {{0, 0.0, 5.0, 2.0}, {0, 5.0, 10.0, 3.0}},
                           {{0.0, 4.0, 0.5}, {4.0, 8.0, 0.25}});
  EXPECT_DOUBLE_EQ(p.slowdown(0, 4.9), 2.0);
  EXPECT_DOUBLE_EQ(p.slowdown(0, 5.0), 3.0);
  EXPECT_DOUBLE_EQ(p.slowdown(0, 10.0), 1.0);  // end exclusive
  EXPECT_DOUBLE_EQ(p.link_scale(3.9), 0.5);
  EXPECT_DOUBLE_EQ(p.link_scale(4.0), 0.25);
  EXPECT_DOUBLE_EQ(p.link_scale(8.0), 1.0);
}

// ---------------------------------------------------------------------------
// Piecewise integration math (hand-computable cases).

TEST(PerturbationPlan, ComputeFinishIntegratesAcrossWindows) {
  // Proc 0 runs at half speed inside [5, 15).
  const PerturbationPlan p(2, {{0, 5.0, 15.0, 2.0}}, {});
  const ProcessorSet on0 = ProcessorSet::of(2, {0});
  const ProcessorSet on1 = ProcessorSet::of(2, {1});

  // Entirely before the window: unperturbed.
  EXPECT_DOUBLE_EQ(p.compute_finish(on0, 0.0, 5.0), 5.0);
  // 5 nominal seconds clean, then 5 more at half speed take 10: finish 15.
  EXPECT_DOUBLE_EQ(p.compute_finish(on0, 0.0, 10.0), 15.0);
  // Started inside the window: 5 nominal at half speed exactly drains the
  // window ([5,15) holds 5 nominal seconds), then 1 more runs clean.
  EXPECT_DOUBLE_EQ(p.compute_finish(on0, 5.0, 6.0), 16.0);
  // The clean processor is untouched.
  EXPECT_DOUBLE_EQ(p.compute_finish(on1, 0.0, 10.0), 10.0);
  // A gang spanning both advances at the slowest member's pace.
  const ProcessorSet gang = ProcessorSet::of(2, {0, 1});
  EXPECT_DOUBLE_EQ(p.compute_finish(gang, 0.0, 10.0), 15.0);
}

TEST(PerturbationPlan, TransferFinishIntegratesAcrossLinkWindows) {
  // Bandwidth halves inside [5, 15).
  const PerturbationPlan p(2, {}, {{5.0, 15.0, 0.5}});
  EXPECT_DOUBLE_EQ(p.transfer_finish(0.0, 5.0), 5.0);   // entirely clean
  EXPECT_DOUBLE_EQ(p.transfer_finish(0.0, 10.0), 15.0); // 5 clean + 5 at 1/2
  EXPECT_DOUBLE_EQ(p.transfer_finish(5.0, 6.0), 16.0);  // drains the window
  EXPECT_DOUBLE_EQ(p.transfer_finish(20.0, 5.0), 25.0); // after the window
}

// ---------------------------------------------------------------------------
// Seeded generator: determinism, bounds, 20-seed validation fuzz.

TEST(PerturbationGenerator, IsDeterministicAndSeedSensitive) {
  PerturbationParams prm;
  prm.slow_fraction = 0.5;
  prm.slow_factor = 4.0;
  prm.horizon_s = 50.0;
  prm.link_windows = 3;
  prm.task_noise = 0.1;
  prm.seed = 7;
  const PerturbationPlan a = make_perturbation_plan(8, 12, prm);
  const PerturbationPlan b = make_perturbation_plan(8, 12, prm);
  ASSERT_EQ(a.slowdowns().size(), b.slowdowns().size());
  for (std::size_t i = 0; i < a.slowdowns().size(); ++i) {
    EXPECT_EQ(a.slowdowns()[i].proc, b.slowdowns()[i].proc);
    EXPECT_EQ(a.slowdowns()[i].begin, b.slowdowns()[i].begin);
    EXPECT_EQ(a.slowdowns()[i].end, b.slowdowns()[i].end);
    EXPECT_EQ(a.slowdowns()[i].factor, b.slowdowns()[i].factor);
  }
  ASSERT_EQ(a.links().size(), b.links().size());
  ASSERT_EQ(a.task_noise(), b.task_noise());
  EXPECT_EQ(a.task_noise().size(), 12u);

  prm.seed = 8;
  const PerturbationPlan c = make_perturbation_plan(8, 12, prm);
  bool differs = c.slowdowns().size() != a.slowdowns().size() ||
                 c.task_noise() != a.task_noise();
  for (std::size_t i = 0; !differs && i < a.slowdowns().size(); ++i)
    differs = a.slowdowns()[i].proc != c.slowdowns()[i].proc ||
              a.slowdowns()[i].begin != c.slowdowns()[i].begin;
  EXPECT_TRUE(differs) << "the seed does not matter";
}

TEST(PerturbationGenerator, TwentySeedFuzzProducesValidBoundedPlans) {
  PerturbationParams prm;
  prm.slow_fraction = 0.75;
  prm.slow_factor = 6.0;
  prm.slow_duration_s = 12.0;
  prm.horizon_s = 80.0;
  prm.link_windows = 4;
  prm.link_scale = 0.3;
  prm.link_duration_s = 15.0;
  prm.task_noise = 0.2;
  prm.min_unperturbed = 2;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    prm.seed = seed;
    const PerturbationPlan p = make_perturbation_plan(8, 10, prm);

    // Re-constructing from the components re-runs the full validator: the
    // generator may only emit scripts the validating constructor accepts.
    EXPECT_NO_THROW(PerturbationPlan(8, p.slowdowns(), p.links(),
                                     p.task_noise()))
        << "seed " << seed << " generated an invalid plan";

    // Parameter bounds hold for every draw.
    ProcessorSet slowed(8);
    for (const SlowdownInterval& iv : p.slowdowns()) {
      slowed.insert(iv.proc);
      EXPECT_GE(iv.begin, 0.0);
      EXPECT_LT(iv.begin, prm.horizon_s);
      EXPECT_GE(iv.factor, 1.0 + (prm.slow_factor - 1.0) * 0.5);
      EXPECT_LT(iv.factor, 1.0 + (prm.slow_factor - 1.0) * 1.5);
      EXPECT_GE(iv.end - iv.begin, 0.5 * prm.slow_duration_s);
      EXPECT_LE(iv.end - iv.begin, 1.5 * prm.slow_duration_s);
    }
    EXPECT_LE(slowed.count(), 8u - prm.min_unperturbed);
    EXPECT_EQ(p.links().size(), prm.link_windows);
    for (const LinkDegradation& w : p.links()) {
      EXPECT_DOUBLE_EQ(w.scale, prm.link_scale);
      EXPECT_GE(w.begin, 0.0);
      EXPECT_LE(w.end, prm.horizon_s);
    }
    ASSERT_EQ(p.task_noise().size(), 10u);
    for (const double f : p.task_noise()) {
      EXPECT_GE(f, 1.0 - prm.task_noise);
      EXPECT_LT(f, 1.0 + prm.task_noise);
    }
  }
}

TEST(PerturbationGenerator, RejectsNonsensicalParameters) {
  const PerturbationParams ok;
  EXPECT_NO_THROW(make_perturbation_plan(4, 4, ok));
  EXPECT_THROW(make_perturbation_plan(0, 4, ok), std::invalid_argument);
  PerturbationParams bad = ok;
  bad.slow_fraction = -0.1;
  EXPECT_THROW(make_perturbation_plan(4, 4, bad), std::invalid_argument);
  bad = ok;
  bad.slow_factor = 0.5;
  EXPECT_THROW(make_perturbation_plan(4, 4, bad), std::invalid_argument);
  bad = ok;
  bad.horizon_s = 0.0;
  EXPECT_THROW(make_perturbation_plan(4, 4, bad), std::invalid_argument);
  bad = ok;
  bad.link_windows = 1;  // the link knobs are only validated when used
  bad.link_scale = 0.0;
  EXPECT_THROW(make_perturbation_plan(4, 4, bad), std::invalid_argument);
  bad = ok;
  bad.task_noise = 1.0;
  EXPECT_THROW(make_perturbation_plan(4, 4, bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Event-simulator injection.

SimOptions with_perturb(const PerturbationPlan& plan) {
  SimOptions opt;
  opt.perturb = &plan;
  return opt;
}

TEST(EventSimPerturb, EmptyPlanIsAnIdentityTransform) {
  const TaskGraph g = test::diamond(10.0, 4, 1000.0);
  const Cluster c(4, 100.0);
  const CommModel m(c);
  Schedule s(4, 4);
  s.place(0, 0, 0, 10, ProcessorSet::of(4, {0}));
  s.place(1, 20, 20, 30, ProcessorSet::of(4, {1}));
  s.place(2, 20, 20, 30, ProcessorSet::of(4, {2}));
  s.place(3, 40, 40, 50, ProcessorSet::of(4, {0}));

  const PerturbationPlan empty(4);
  const SimResult plain = simulate_execution(g, s, m);
  const SimResult perturbed = simulate_execution(g, s, m, with_perturb(empty));
  EXPECT_EQ(perturbed.slowed_tasks, 0u);
  EXPECT_DOUBLE_EQ(perturbed.stretch_seconds, 0.0);
  EXPECT_EQ(perturbed.degraded_transfers, 0u);
  EXPECT_DOUBLE_EQ(perturbed.makespan, plain.makespan);
  for (TaskId t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(perturbed.executed.at(t).start, plain.executed.at(t).start);
    EXPECT_DOUBLE_EQ(perturbed.executed.at(t).finish,
                     plain.executed.at(t).finish);
  }
}

TEST(EventSimPerturb, RejectsWrongSizedPlan) {
  const TaskGraph g = test::chain(2, 10.0, 1);
  const Cluster c(2, 100.0);
  const CommModel m(c);
  Schedule s(2, 2);
  s.place(0, 0, 0, 10, ProcessorSet::of(2, {0}));
  s.place(1, 10, 10, 20, ProcessorSet::of(2, {0}));
  const PerturbationPlan wrong(3);
  EXPECT_THROW(simulate_execution(g, s, m, with_perturb(wrong)),
               std::invalid_argument);
}

TEST(EventSimPerturb, StretchesComputeAndAccountsIt) {
  // A two-task chain on one processor that runs at half speed in [5, 15):
  // t0 takes 5 clean + 5 slowed nominal seconds -> finishes at 15 (stretch
  // 5); t1 then runs entirely clean -> makespan 25.
  const TaskGraph g = test::chain(2, 10.0, 1);
  const Cluster c(1, 100.0);
  const CommModel m(c);
  Schedule s(2, 1);
  s.place(0, 0, 0, 10, ProcessorSet::of(1, {0}));
  s.place(1, 10, 10, 20, ProcessorSet::of(1, {0}));

  const PerturbationPlan p(1, {{0, 5.0, 15.0, 2.0}}, {});
  const SimResult r = simulate_execution(g, s, m, with_perturb(p));
  EXPECT_EQ(r.slowed_tasks, 1u);
  EXPECT_DOUBLE_EQ(r.stretch_seconds, 5.0);
  EXPECT_DOUBLE_EQ(r.executed.at(0).finish, 15.0);
  EXPECT_DOUBLE_EQ(r.executed.at(1).start, 15.0);
  EXPECT_DOUBLE_EQ(r.makespan, 25.0);
}

TEST(EventSimPerturb, DegradesTransfersAndAccountsIt) {
  // One unit-volume edge between distinct processors; bandwidth halves for
  // the entire horizon, so the transfer takes twice its nominal duration.
  const TaskGraph g = test::chain(2, 10.0, 1, 1000.0);
  const Cluster c(2, 100.0);
  const CommModel m(c);
  Schedule s(2, 2);
  s.place(0, 0, 0, 10, ProcessorSet::of(2, {0}));
  s.place(1, 20, 20, 30, ProcessorSet::of(2, {1}));

  const PerturbationPlan clean_net(2);
  const SimResult base = simulate_execution(g, s, m, with_perturb(clean_net));
  ASSERT_GT(base.total_transfer_time, 0.0);

  const PerturbationPlan p(2, {}, {{0.0, 1e9, 0.5}});
  const SimResult r = simulate_execution(g, s, m, with_perturb(p));
  EXPECT_EQ(r.degraded_transfers, 1u);
  EXPECT_NEAR(r.link_delay_seconds, base.total_transfer_time, 1e-9);
  EXPECT_NEAR(r.executed.at(1).start - r.executed.at(0).finish,
              2.0 * base.total_transfer_time, 1e-9);
}

TEST(EventSimPerturb, PerturbedReplayIsDeterministicAndReconciles) {
  const TaskGraph g = test::diamond(10.0, 4, 5000.0);
  const Cluster c(4, 100.0);
  const CommModel m(c);
  Schedule s(4, 4);
  s.place(0, 0, 0, 10, ProcessorSet::of(4, {0}));
  s.place(1, 20, 20, 30, ProcessorSet::of(4, {1}));
  s.place(2, 20, 20, 30, ProcessorSet::of(4, {2}));
  s.place(3, 40, 40, 50, ProcessorSet::of(4, {0}));

  PerturbationParams prm;
  prm.slow_fraction = 0.75;
  prm.slow_factor = 3.0;
  prm.slow_duration_s = 30.0;
  prm.horizon_s = 60.0;
  prm.link_windows = 2;
  prm.link_duration_s = 10.0;
  prm.seed = 5;
  const PerturbationPlan plan = make_perturbation_plan(4, 4, prm);

  auto once = [&](obs::ObsContext* ctx) {
    SimOptions opt = with_perturb(plan);
    opt.obs = ctx;
    return simulate_execution(g, s, m, opt);
  };

  std::ostringstream jsonl;
  obs::MetricsRegistry met;
  obs::JsonlSink sink(jsonl);
  obs::ObsContext ctx{&met, &sink};
  const SimResult a = once(&ctx);
  const SimResult b = once(nullptr);

  // Pure function of (schedule, plan): bit-identical replays.
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.slowed_tasks, b.slowed_tasks);
  EXPECT_EQ(a.stretch_seconds, b.stretch_seconds);
  EXPECT_EQ(a.link_delay_seconds, b.link_delay_seconds);
  for (TaskId t = 0; t < 4; ++t) {
    EXPECT_EQ(a.executed.at(t).start, b.executed.at(t).start);
    EXPECT_EQ(a.executed.at(t).finish, b.executed.at(t).finish);
  }

  // Counters and the trace digest agree with the SimResult book.
  const obs::MetricsSnapshot snap = met.snapshot();
  EXPECT_EQ(snap.counter("perturb.slowed_tasks"),
            static_cast<double>(a.slowed_tasks));
  EXPECT_NEAR(snap.counter("perturb.stretch_seconds"), a.stretch_seconds,
              1e-9);
  EXPECT_EQ(snap.counter("perturb.degraded_transfers"),
            static_cast<double>(a.degraded_transfers));
  EXPECT_NEAR(snap.counter("perturb.link_delay_seconds"),
              a.link_delay_seconds, 1e-9);

  std::istringstream in(jsonl.str());
  const auto digest = obs::summarize_trace(obs::read_trace(in), 4);
  EXPECT_EQ(digest.perturb_slow_events, a.slowed_tasks);
  EXPECT_NEAR(digest.perturb_stretch_s, a.stretch_seconds, 1e-9);
  EXPECT_EQ(digest.perturb_link_events, a.degraded_transfers);
  EXPECT_NEAR(digest.perturb_link_delay_s, a.link_delay_seconds, 1e-9);
}

TEST(EventSimPerturb, TaskNoiseComposesWithRuntimeFactors) {
  const TaskGraph g = test::chain(1, 10.0, 1);
  const Cluster c(1, 100.0);
  const CommModel m(c);
  Schedule s(1, 1);
  s.place(0, 0, 0, 10, ProcessorSet::of(1, {0}));

  const PerturbationPlan p(1, {}, {}, {1.3});
  const SimResult r = simulate_execution(g, s, m, with_perturb(p));
  EXPECT_DOUBLE_EQ(r.makespan, 13.0);
}

}  // namespace
}  // namespace locmps
