#include "cluster/processor_set.hpp"

#include <gtest/gtest.h>

namespace locmps {
namespace {

TEST(ProcessorSet, StartsEmpty) {
  ProcessorSet s(10);
  EXPECT_EQ(s.capacity(), 10u);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(ProcessorSet, InsertEraseContains) {
  ProcessorSet s(70);  // spans two words
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(69);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_FALSE(s.contains(1));
  s.erase(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_EQ(s.count(), 3u);
}

TEST(ProcessorSet, AllHasFullCount) {
  for (std::size_t cap : {1u, 63u, 64u, 65u, 128u, 130u}) {
    const ProcessorSet s = ProcessorSet::all(cap);
    EXPECT_EQ(s.count(), cap) << "cap=" << cap;
    EXPECT_TRUE(s.contains(static_cast<ProcId>(cap - 1)));
  }
}

TEST(ProcessorSet, OfAndRange) {
  const auto s = ProcessorSet::of(16, {1, 3, 5});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.contains(3));
  const auto r = ProcessorSet::range(16, 4, 3);
  EXPECT_EQ(r.to_vector(), (std::vector<ProcId>{4, 5, 6}));
}

TEST(ProcessorSet, SetAlgebra) {
  const auto a = ProcessorSet::of(8, {0, 1, 2});
  const auto b = ProcessorSet::of(8, {2, 3});
  EXPECT_EQ((a | b).count(), 4u);
  EXPECT_EQ((a & b).to_vector(), (std::vector<ProcId>{2}));
  EXPECT_EQ((a - b).to_vector(), (std::vector<ProcId>{0, 1}));
}

TEST(ProcessorSet, IntersectionCountAndDisjoint) {
  const auto a = ProcessorSet::of(128, {0, 64, 127});
  const auto b = ProcessorSet::of(128, {64, 127});
  EXPECT_EQ(a.intersection_count(b), 2u);
  EXPECT_FALSE(a.disjoint(b));
  const auto c = ProcessorSet::of(128, {1, 2});
  EXPECT_TRUE(a.disjoint(c));
}

TEST(ProcessorSet, SubsetOf) {
  const auto a = ProcessorSet::of(8, {1, 2});
  const auto b = ProcessorSet::of(8, {0, 1, 2, 3});
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
}

TEST(ProcessorSet, Equality) {
  auto a = ProcessorSet::of(8, {1, 2});
  auto b = ProcessorSet::of(8, {1, 2});
  EXPECT_EQ(a, b);
  b.insert(3);
  EXPECT_NE(a, b);
}

TEST(ProcessorSet, FirstAndIteration) {
  const auto s = ProcessorSet::of(128, {5, 70, 100});
  EXPECT_EQ(s.first(), 5u);
  std::vector<ProcId> seen;
  s.for_each([&](ProcId p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<ProcId>{5, 70, 100}));
  EXPECT_EQ(ProcessorSet(4).first(), 4u);  // empty -> capacity
}

TEST(ProcessorSet, ToString) {
  EXPECT_EQ(ProcessorSet::of(8, {0, 2}).to_string(), "{0,2}");
  EXPECT_EQ(ProcessorSet(8).to_string(), "{}");
}

TEST(ProcessorSet, ClearEmptiesSet) {
  auto s = ProcessorSet::all(65);
  s.clear();
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace locmps
