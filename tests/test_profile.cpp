#include "speedup/profile.hpp"

#include <gtest/gtest.h>

#include "speedup/downey.hpp"

namespace locmps {
namespace {

TEST(Profile, ExplicitTableLookup) {
  const ExecutionProfile p({10.0, 6.0, 5.0});
  EXPECT_EQ(p.max_procs(), 3u);
  EXPECT_DOUBLE_EQ(p.time(1), 10.0);
  EXPECT_DOUBLE_EQ(p.time(2), 6.0);
  EXPECT_DOUBLE_EQ(p.time(3), 5.0);
  EXPECT_DOUBLE_EQ(p.serial_time(), 10.0);
}

TEST(Profile, ClampsBeyondTable) {
  const ExecutionProfile p({10.0, 6.0});
  EXPECT_DOUBLE_EQ(p.time(100), 6.0);
}

TEST(Profile, RejectsBadInput) {
  EXPECT_THROW(ExecutionProfile(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(ExecutionProfile({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(ExecutionProfile({1.0, -2.0}), std::invalid_argument);
  const ExecutionProfile p({1.0});
  EXPECT_THROW(p.time(0), std::invalid_argument);
}

TEST(Profile, PbestIsLeastMinimizer) {
  // Minimum value 4 first attained at p=3.
  const ExecutionProfile p({10.0, 6.0, 4.0, 4.0, 5.0});
  EXPECT_EQ(p.pbest(), 3u);
}

TEST(Profile, PbestOfMonotoneProfileIsLast) {
  const ExecutionProfile p({8.0, 4.0, 3.0, 2.5});
  EXPECT_EQ(p.pbest(), 4u);
}

TEST(Profile, PbestOfSerialTaskIsOne) {
  const auto p = ExecutionProfile::constant(7.0, 16);
  EXPECT_EQ(p.pbest(), 1u);
  EXPECT_DOUBLE_EQ(p.time(16), 7.0);
}

TEST(Profile, GainIsForwardDifference) {
  const ExecutionProfile p({10.0, 6.0, 5.0});
  EXPECT_DOUBLE_EQ(p.gain(1), 4.0);
  EXPECT_DOUBLE_EQ(p.gain(2), 1.0);
  EXPECT_DOUBLE_EQ(p.gain(3), 0.0);  // clamped beyond table
}

TEST(Profile, SpeedupRelativeToSerial) {
  const ExecutionProfile p({12.0, 6.0, 4.0});
  EXPECT_DOUBLE_EQ(p.speedup(3), 3.0);
}

TEST(Profile, FromModelMatchesModel) {
  const DowneyModel m(8.0, 0.0);
  const ExecutionProfile p(m, 40.0, 16);
  EXPECT_EQ(p.max_procs(), 16u);
  for (std::size_t n = 1; n <= 16; ++n)
    EXPECT_NEAR(p.time(n), m.exec_time(40.0, n), 1e-12);
}

TEST(Profile, FromModelRejectsBadArgs) {
  const DowneyModel m(8.0, 0.0);
  EXPECT_THROW(ExecutionProfile(m, 40.0, 0), std::invalid_argument);
  EXPECT_THROW(ExecutionProfile(m, 0.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace locmps
