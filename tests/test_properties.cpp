/// Cross-cutting property suite: every scheduling scheme, on randomized
/// workloads and platforms, must produce complete valid schedules whose
/// makespans respect the fundamental lower bounds.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/experiment.hpp"
#include "schedule/event_sim.hpp"
#include "graph/algorithms.hpp"
#include "schedulers/registry.hpp"
#include "workloads/strassen.hpp"
#include "workloads/synthetic.hpp"
#include "workloads/tce.hpp"

namespace locmps {
namespace {

/// Lower bound on any makespan: the critical path with every task at its
/// best width and free communication.
double critical_path_bound(const TaskGraph& g, std::size_t P) {
  const Levels lv = compute_levels(
      g,
      [&](TaskId t) {
        const auto& p = g.task(t).profile;
        return p.time(std::min(P, p.pbest()));
      },
      [](EdgeId) { return 0.0; });
  return lv.critical_path_length();
}

/// Lower bound on any makespan: total work divided by the machine size
/// (valid because speedups never exceed the processor count, so np * et
/// >= serial time for every task).
double area_bound(const TaskGraph& g, std::size_t P) {
  return g.total_serial_work() / static_cast<double>(P);
}

using Param = std::tuple<std::string, std::uint64_t, std::size_t, double>;

class SchemeProperty : public ::testing::TestWithParam<Param> {};

TEST_P(SchemeProperty, ValidScheduleAboveLowerBounds) {
  const auto& [scheme, seed, P, ccr] = GetParam();
  SyntheticParams sp;
  sp.ccr = ccr;
  sp.max_procs = P;
  sp.min_tasks = 8;
  sp.max_tasks = 28;
  Rng rng(seed);
  const TaskGraph g = make_synthetic_dag(sp, rng);
  const Cluster cluster(P);
  const SchemeRun run = evaluate_scheme(scheme, g, cluster);

  EXPECT_TRUE(run.schedule.complete());
  EXPECT_EQ(run.schedule.validate(g, CommModel(cluster)), "")
      << scheme << " seed=" << seed << " P=" << P;
  EXPECT_GE(run.makespan,
            critical_path_bound(g, P) * (1.0 - 1e-9));
  EXPECT_GE(run.makespan, area_bound(g, P) * (1.0 - 1e-9));
  // Allocation invariants.
  for (TaskId t : g.task_ids()) {
    EXPECT_GE(run.allocation[t], 1u);
    EXPECT_LE(run.allocation[t], P);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeProperty,
    ::testing::Combine(
        ::testing::Values("loc-mps", "loc-mps-nbf", "loc-mps-noloc",
                          "icaslb", "cpr", "cpa", "task", "data"),
        ::testing::Values(21, 22),
        ::testing::Values(3, 8),
        ::testing::Values(0.0, 1.0)));

class NoOverlapProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(NoOverlapProperty, ValidOnBlockingPlatforms) {
  // On a platform without compute/communication overlap every scheme must
  // still produce complete schedules above the bounds, and no scheme's
  // realized makespan may beat its overlap-platform counterpart.
  const std::string scheme = GetParam();
  SyntheticParams sp;
  sp.ccr = 0.8;
  sp.max_procs = 8;
  sp.min_tasks = 10;
  sp.max_tasks = 20;
  Rng rng(29);
  const TaskGraph g = make_synthetic_dag(sp, rng);
  const Cluster blocking(8, kFastEthernetBytesPerSec, false);
  const Cluster async(8, kFastEthernetBytesPerSec, true);
  const SchemeRun nov = evaluate_scheme(scheme, g, blocking);
  EXPECT_TRUE(nov.schedule.complete());
  EXPECT_GE(nov.makespan, area_bound(g, 8) * (1.0 - 1e-9));
  // Re-timing the *same* plan without overlap can only delay it (plans
  // made for different platforms are not pointwise comparable).
  const SchemeRun ov = evaluate_scheme(scheme, g, async);
  const double same_plan_nov =
      simulate_execution(g, ov.schedule, CommModel(blocking)).makespan;
  EXPECT_GE(same_plan_nov, ov.makespan * (1.0 - 1e-9)) << scheme;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, NoOverlapProperty,
                         ::testing::Values("loc-mps", "loc-mps-nbf",
                                           "icaslb", "cpr", "cpa", "tsas",
                                           "twol", "task", "data"));

class AppGraphProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(AppGraphProperty, SchedulesApplicationGraphs) {
  const std::string scheme = GetParam();
  TCEParams tp;
  tp.occupied = 8;
  tp.virt = 32;
  tp.max_procs = 8;
  const TaskGraph tce = make_ccsd_t1(tp);
  StrassenParams stp;
  stp.n = 256;
  stp.max_procs = 8;
  const TaskGraph strassen = make_strassen(stp);
  const Cluster cluster(8, 250e6);  // 2 Gbps Myrinet-like
  for (const TaskGraph* g : {&tce, &strassen}) {
    const SchemeRun run = evaluate_scheme(scheme, *g, cluster);
    EXPECT_EQ(run.schedule.validate(*g, CommModel(cluster)), "") << scheme;
    EXPECT_GE(run.makespan, area_bound(*g, 8) * (1.0 - 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AppGraphProperty,
                         ::testing::Values("loc-mps", "loc-mps-nbf",
                                           "icaslb", "cpr", "cpa", "task",
                                           "data"));

TEST(SchemeOrdering, LocMPSLeadsOnCommHeavyGraphs) {
  // The headline claim, in miniature: on communication-heavy graphs
  // LoC-MPS beats the comm-blind and non-locality-aware baselines on
  // average (individual graphs may tie).
  SyntheticParams sp;
  sp.ccr = 1.0;
  sp.max_procs = 8;
  const auto graphs = make_synthetic_suite(sp, 4, 31);
  const Cluster cluster(8);
  double mps = 0, icaslb = 0, cpr = 0;
  for (const auto& g : graphs) {
    mps += evaluate_scheme("loc-mps", g, cluster).makespan;
    icaslb += evaluate_scheme("icaslb", g, cluster).makespan;
    cpr += evaluate_scheme("cpr", g, cluster).makespan;
  }
  EXPECT_LT(mps, icaslb);
  EXPECT_LT(mps, cpr);
}

TEST(SchemeOrdering, BackfillNeverHurtsOnAverage) {
  SyntheticParams sp;
  sp.ccr = 0.1;
  sp.amax = 48;
  sp.sigma = 2;
  sp.max_procs = 8;
  const auto graphs = make_synthetic_suite(sp, 4, 37);
  const Cluster cluster(8);
  double with_bf = 0, without_bf = 0;
  for (const auto& g : graphs) {
    with_bf += evaluate_scheme("loc-mps", g, cluster).makespan;
    without_bf += evaluate_scheme("loc-mps-nbf", g, cluster).makespan;
  }
  EXPECT_LE(with_bf, without_bf * 1.02);
}

}  // namespace
}  // namespace locmps
